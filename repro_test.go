package repro

import (
	"testing"
	"time"
)

// TestFacadeEndToEnd exercises the public API exactly as the README shows.
func TestFacadeEndToEnd(t *testing.T) {
	sys := NewSystem()
	a := sys.MustAddPrincipal("A", 320)
	b := sys.MustAddPrincipal("B", 320)
	sys.MustSetAgreement(b, a, 0.5, 0.5)

	eng, err := NewEngine(EngineConfig{Mode: Community, System: sys})
	if err != nil {
		t.Fatal(err)
	}
	red := eng.NewRedirector(0)
	admitted := 0
	for w := 0; w < 10; w++ {
		now := time.Duration(w) * eng.Window()
		red.SetGlobal(red.LocalEstimate(), now)
		if err := red.StartWindow(now); err != nil {
			t.Fatal(err)
		}
		admitted = 0
		for i := 0; i < 80; i++ {
			if d := red.Admit(a); d.Admitted {
				admitted++
				if d.Owner != a && d.Owner != b {
					t.Fatalf("owner = %v", d.Owner)
				}
			}
		}
	}
	// A's entitlement is 48 per 100 ms window (480 req/s).
	if admitted < 45 || admitted > 50 {
		t.Fatalf("steady-state admissions = %d, want ≈48", admitted)
	}
}

func TestFacadeCurrencies(t *testing.T) {
	sys := NewSystem()
	a := sys.MustAddPrincipal("A", 1000)
	b := sys.MustAddPrincipal("B", 1500)
	sys.MustSetAgreement(a, b, 0.4, 0.6)
	curr, err := sys.Currencies(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(curr) != 2 || curr[0].MandatoryValue != 600 {
		t.Fatalf("currencies = %+v", curr)
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) == 0 {
		t.Fatal("no experiments registered")
	}
	res, err := RunExperiment("fig3")
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Violations(); len(v) > 0 {
		t.Fatalf("fig3 violations: %v", v)
	}
	if _, err := RunExperiment("bogus"); err == nil {
		t.Fatal("bogus experiment ran")
	}
}
