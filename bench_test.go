package repro

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/agreement"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
)

// The benchmarks below regenerate every figure of the paper's evaluation:
// each iteration runs the full (virtual-time) experiment and reports the
// headline measured rates as custom metrics, so `go test -bench=.` prints
// the numbers next to the timing. EXPERIMENTS.md records the
// paper-vs-measured comparison.

// benchFigure runs one experiment per iteration and reports the given
// (phase, series) means as custom benchmark metrics.
func benchFigure(b *testing.B, id string, metricsWanted [][2]string) {
	b.Helper()
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last == nil {
		return
	}
	if v := last.Violations(); len(v) > 0 {
		b.Fatalf("%s no longer reproduces the paper: %v", id, v)
	}
	for _, m := range metricsWanted {
		if val, ok := last.Measured(m[0], m[1]); ok {
			b.ReportMetric(val, m[1]+"@"+m[0]+"_req/s")
		}
	}
}

// BenchmarkFig1EndpointViolation regenerates the intro example: end-point
// enforcement yields (A:30, B:70) against B's 80% SLA; coordinated yields
// (A:20, B:80).
func BenchmarkFig1EndpointViolation(b *testing.B) {
	benchFigure(b, "fig1", [][2]string{{"endpoint", "B"}, {"coordinated", "B"}})
}

// BenchmarkFig3FlowComputation regenerates the currency valuation example
// (A 600/400, B 760/1340, C 1140/960).
func BenchmarkFig3FlowComputation(b *testing.B) {
	benchFigure(b, "fig3", nil)
}

// BenchmarkFig6L7SharingAgreements regenerates Figure 6: provider context,
// B's 135 req/s fully served under its 80% mandatory share, A absorbing the
// remainder, across two redirectors.
func BenchmarkFig6L7SharingAgreements(b *testing.B) {
	benchFigure(b, "fig6", [][2]string{{"phase1", "A"}, {"phase1", "B"}})
}

// BenchmarkFig7GlobalResponseTime regenerates Figure 7: equal agreements,
// A's doubled load served at twice B's rate (max-min fairness).
func BenchmarkFig7GlobalResponseTime(b *testing.B) {
	benchFigure(b, "fig7", [][2]string{{"steady", "A"}, {"steady", "B"}})
}

// BenchmarkFig8NetworkDelay regenerates Figure 8: 10 s combining-tree lag —
// conservative half-mandatory start, competition during the lag, then
// enforcement at 255/65.
func BenchmarkFig8NetworkDelay(b *testing.B) {
	benchFigure(b, "fig8", [][2]string{{"phase1", "B"}, {"phase4", "A"}, {"phase4", "B"}})
}

// BenchmarkFig9L4Community regenerates Figure 9: community sharing with
// per-phase rates 480/160 → 0/320 → 400/240 → 0/320.
func BenchmarkFig9L4Community(b *testing.B) {
	benchFigure(b, "fig9", [][2]string{{"phase1", "A"}, {"phase1", "B"}, {"phase3", "B"}})
}

// BenchmarkFig10ProviderIncome regenerates Figure 10: income maximization
// pinning B to its 128 req/s mandatory share while A pays for the rest.
func BenchmarkFig10ProviderIncome(b *testing.B) {
	benchFigure(b, "fig10", [][2]string{{"phase1", "A"}, {"phase1", "B"}})
}

// BenchmarkAblationExplicitVsImplicitQueuing regenerates the §4.1 anomaly:
// explicit window queuing depresses throughput versus the credit scheme.
func BenchmarkAblationExplicitVsImplicitQueuing(b *testing.B) {
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run("abl-queue")
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		b.ReportMetric(last.Values["implicit@T=32"], "implicit@T=32_req/s")
		b.ReportMetric(last.Values["explicit@T=32"], "explicit@T=32_req/s")
	}
}

// BenchmarkAblationTreeVsPairwise regenerates the coordination-cost claim:
// 2(n−1) tree messages per epoch versus n(n−1) pairwise.
func BenchmarkAblationTreeVsPairwise(b *testing.B) {
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run("abl-tree")
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		b.ReportMetric(last.Values["tree@n=64"], "tree@n=64_msgs")
		b.ReportMetric(last.Values["pairwise@n=64"], "pairwise@n=64_msgs")
	}
}

// BenchmarkExtHierarchicalReselling regenerates the sub-ASP extension
// (§2.1): transitive reselling gives X and Y 80 req/s guarantees through
// two agreement hops.
func BenchmarkExtHierarchicalReselling(b *testing.B) {
	benchFigure(b, "ext-resell", [][2]string{{"overload", "X"}, {"X-idle", "M"}})
}

// BenchmarkExtLocalityCaps regenerates the locality extension (§3.1.2): a
// 280 req/s cap on B's server shifts the max–min point from 480/160 to
// 400/200.
func BenchmarkExtLocalityCaps(b *testing.B) {
	benchFigure(b, "ext-local", [][2]string{{"capped", "A"}, {"capped", "B"}})
}

// BenchmarkAblationWindowSize regenerates the window-length sweep: the
// 100 ms window tracks phase changes tightly; multi-second windows lag.
func BenchmarkAblationWindowSize(b *testing.B) {
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run("abl-window")
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		b.ReportMetric(last.Values["error@w=100ms"], "err@100ms_req/s")
		b.ReportMetric(last.Values["error@w=2s"], "err@2s_req/s")
	}
}

// BenchmarkAblationConservativeFallback regenerates the blind-redirector
// ablation: MC/R claiming vs the 2× entitlement violation of full claiming.
func BenchmarkAblationConservativeFallback(b *testing.B) {
	benchFigure(b, "abl-conservative", [][2]string{
		{"conservative", "B"}, {"aggressive", "B"},
	})
}

// BenchmarkExtDynamicCapacity regenerates the §2.2 dynamic-interpretation
// property: halving B's server re-scales A's transitive entitlement from
// 480 to 400 req/s mid-run.
func BenchmarkExtDynamicCapacity(b *testing.B) {
	benchFigure(b, "ext-dynamic", [][2]string{{"degraded", "A"}, {"degraded", "B"}})
}

// BenchmarkExtFailover regenerates the redirector-failure scenario: the
// combining tree reconfigures and the 70/30 split survives.
func BenchmarkExtFailover(b *testing.B) {
	benchFigure(b, "ext-failover", [][2]string{{"failed", "A"}, {"failed", "B"}})
}

// --- Microbenchmarks: the per-request and per-window costs that make the
// scheme viable at the paper's 100 ms windows. ---

func benchEngine(b *testing.B) (*Engine, Principal, Principal) {
	b.Helper()
	s := agreement.New()
	a := s.MustAddPrincipal("A", 320)
	bb := s.MustAddPrincipal("B", 320)
	s.MustSetAgreement(bb, a, 0.5, 0.5)
	eng, err := core.NewEngine(core.Config{Mode: core.Community, System: s, NumRedirectors: 2})
	if err != nil {
		b.Fatal(err)
	}
	return eng, a, bb
}

// BenchmarkAdmitPerRequest measures the per-request admission cost (the
// paper's L4 switch spends <15% CPU; ours is nanoseconds per decision).
func BenchmarkAdmitPerRequest(b *testing.B) {
	eng, a, _ := benchEngine(b)
	r := eng.NewRedirector(0)
	r.SetGlobal([]float64{1e12, 1e12}, 0)
	for i := 0; i < 200; i++ {
		r.Admit(a)
	}
	if err := r.StartWindow(0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Admit(a)
	}
}

// benchPlane builds a sharded admission plane over a community with enough
// capacity (and a warmed-up grant) that a full benchmark run never drains
// the window's credits — every iteration measures the admit path, not the
// reject path.
func benchPlane(b *testing.B, shards int) (*admission.Plane, Principal) {
	b.Helper()
	s := agreement.New()
	a := s.MustAddPrincipal("A", 1e9)
	bb := s.MustAddPrincipal("B", 1e9)
	s.MustSetAgreement(bb, a, 0.5, 0.5)
	eng, err := core.NewEngine(core.Config{
		Mode: core.Community, System: s, NumRedirectors: 1, Window: time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	red := eng.NewRedirector(0)
	pl, err := admission.New(admission.Config{Redirector: red, Engine: eng, Shards: shards})
	if err != nil {
		b.Fatal(err)
	}
	demand := []float64{1e9, 1e9}
	for w := 0; w < 3; w++ {
		red.AddWindowSample(demand, nil, 0, 0)
		red.SetGlobal(demand, time.Duration(w)*time.Second)
		if err := pl.StartWindow(time.Duration(w) * time.Second); err != nil {
			b.Fatal(err)
		}
	}
	return pl, a
}

// BenchmarkAdmitParallel measures concurrent admission throughput through
// the sharded admission plane: shards=1 serializes every CAS on one credit
// cell (the moral equivalent of the old global mutex), shards=8 gives each
// core its own cache line. On multi-core hardware the sharded variant
// scales near-linearly; the steals/op metric confirms the steady state
// stays on the shard-local fast path.
func BenchmarkAdmitParallel(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			pl, a := benchPlane(b, shards)
			var rejected atomic.Int64
			b.ReportAllocs()
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if !pl.Admit(a).Admitted {
						rejected.Add(1)
					}
				}
			})
			b.StopTimer()
			if r := rejected.Load(); r > 0 {
				b.Fatalf("%d rejects: credits drained mid-run, timings are polluted", r)
			}
			b.ReportMetric(float64(pl.Steals())/float64(b.N), "steals/op")
		})
	}
}

// BenchmarkWindowSchedule measures one full window computation (EWMA fold +
// LP solve + credit refill) — the work done every 100 ms.
func BenchmarkWindowSchedule(b *testing.B) {
	eng, a, bb := benchEngine(b)
	r := eng.NewRedirector(0)
	for i := 0; i < 80; i++ {
		r.Admit(a)
	}
	for i := 0; i < 40; i++ {
		r.Admit(bb)
	}
	r.SetGlobal([]float64{80, 40}, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.StartWindow(time.Duration(i) * 100 * time.Millisecond); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWindowScheduleSteadyState measures the fast path's common case:
// four redirectors re-scheduling an unchanged queue vector window after
// window, where the shared plan cache collapses the 4R solves into one LP
// solve total. The cache hit rate is reported alongside the timing.
func BenchmarkWindowScheduleSteadyState(b *testing.B) {
	const R = 4
	eng, a, bb := benchEngine(b)
	reds := make([]*core.Redirector, R)
	for ri := range reds {
		reds[ri] = eng.NewRedirector(ri)
		for i := 0; i < 80; i++ {
			reds[ri].Admit(a)
		}
		for i := 0; i < 40; i++ {
			reds[ri].Admit(bb)
		}
		reds[ri].SetGlobal([]float64{80, 40}, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := time.Duration(i) * 100 * time.Millisecond
		for _, r := range reds {
			if err := r.StartWindow(now); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(eng.Stats().HitRate(), "cache_hit_rate")
	b.ReportMetric(float64(eng.Stats().Solves())/float64(b.N*R), "solves/window")
}

// TestWindowComputationBudget is a performance regression guard: one window
// computation must complete in a small fraction of the 100 ms window even
// for a ten-principal community, or the enforcement scheme stops being
// "fine-grained".
func TestWindowComputationBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	s := agreement.New()
	var ps []Principal
	for i := 0; i < 10; i++ {
		ps = append(ps, s.MustAddPrincipal(string(rune('A'+i)), 100))
	}
	for i := 0; i+1 < 10; i++ {
		s.MustSetAgreement(ps[i], ps[i+1], 0.3, 0.7)
	}
	eng, err := core.NewEngine(core.Config{Mode: core.Community, System: s, NumRedirectors: 2})
	if err != nil {
		t.Fatal(err)
	}
	r := eng.NewRedirector(0)
	q := make([]float64, 10)
	for i := range q {
		q[i] = 50
		for j := 0; j < 50; j++ {
			r.Admit(ps[i])
		}
	}
	r.SetGlobal(q, 0)
	const windows = 50
	start := time.Now()
	for w := 0; w < windows; w++ {
		if err := r.StartWindow(time.Duration(w) * 100 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	per := time.Since(start) / windows
	if per > 10*time.Millisecond {
		t.Fatalf("window computation takes %v, exceeds 10%% of the 100 ms window", per)
	}
}

// BenchmarkFlowsTenPrincipals measures folding a 10-principal transitive
// agreement chain into entitlements (done once per agreement change).
func BenchmarkFlowsTenPrincipals(b *testing.B) {
	s := agreement.New()
	var ps []Principal
	for i := 0; i < 10; i++ {
		ps = append(ps, s.MustAddPrincipal(string(rune('A'+i)), 100))
	}
	for i := 0; i+1 < 10; i++ {
		s.MustSetAgreement(ps[i], ps[i+1], 0.3, 0.7)
	}
	for i := 0; i+2 < 10; i += 2 {
		s.MustSetAgreement(ps[i+2], ps[i], 0.2, 0.4)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.SystemAccess(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWindowTraceOverhead measures the observability cost added to
// every window: filling one trace record, snapshotting the combining-tree
// counters, and committing into the ring + auditor. The path must stay at
// 0 allocs/op — it runs inside the window loop's critical section.
func BenchmarkWindowTraceOverhead(b *testing.B) {
	eng, _, _ := benchEngine(b)
	o := eng.NewObserver(0, nil, 0)
	o.SetTreeInfo(func() obs.TreeInfo {
		return obs.TreeInfo{Epoch: 1, GlobalEpoch: 1, MsgsIn: 2, MsgsOut: 2}
	})
	rec := o.NewRecord()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Window = uint64(i)
		rec.Conservative = i%7 == 0
		rec.CacheHit = i%2 == 0
		for p := range rec.Local {
			rec.Local[p] = float64(i)
			rec.Granted[p] = float64(i)
			rec.Floor[p] = float64(i)
			rec.Ceil[p] = float64(i + 1)
			rec.Arrived[p] = float64(i)
			rec.Served[p] = float64(i)
		}
		o.FillTree(rec)
		o.Commit(rec)
	}
}

// BenchmarkWindowScheduleTraced is BenchmarkWindowSchedule with an observer
// attached — the delta between the two is the real-world tracing overhead
// of the full window computation.
func BenchmarkWindowScheduleTraced(b *testing.B) {
	eng, a, bb := benchEngine(b)
	r := eng.NewRedirector(0)
	r.SetObserver(eng.NewObserver(0, nil, 0))
	for i := 0; i < 80; i++ {
		r.Admit(a)
	}
	for i := 0; i < 40; i++ {
		r.Admit(bb)
	}
	r.SetGlobal([]float64{80, 40}, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.StartWindow(time.Duration(i) * 100 * time.Millisecond); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpanOverhead measures the per-request cost of the tracing span
// path on the admission fast path. Both variants must stay at 0 allocs/op:
// /off is the price every request pays when tracing is disabled (one
// predicted branch per stamp), /sampled the full Begin → stamps → Finish
// record path with 1% head sampling plus a slowest-8 tail keeper — the
// production sweep configuration.
func BenchmarkSpanOverhead(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		tr := obs.NewTracer(obs.TraceConfig{}, 0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sp := tr.Begin("alpha")
			sp.StampAdmit(obs.VerdictAdmit, 0)
			sp.StampBackend()
			sp.Finish()
		}
	})
	b.Run("sampled", func(b *testing.B) {
		tr := obs.NewTracer(obs.TraceConfig{SampleEvery: 100, SlowestK: 8}, 0)
		tr.StartWindow(1, 1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sp := tr.Begin("alpha")
			sp.StampAdmit(obs.VerdictAdmit, 0)
			sp.StampBackend()
			sp.Finish()
		}
	})
}
