# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short race bench bench-json bench-scale experiments fmt cover apicompat doclint linkcheck

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# One-pass scheduling fast-path report: run the window benchmarks with
# -benchmem and emit BENCH_lp_fastpath.json (ns/op, allocs/op, cache hit
# rate) with the committed seed numbers embedded as the baseline.
bench-json:
	$(GO) test -run XXX -bench 'WindowSchedule|AdmitPerRequest|AdmitParallel|WindowTraceOverhead|SpanOverhead' -benchmem . \
		| $(GO) run ./cmd/benchjson -baseline BENCH_seed.json -o BENCH_lp_fastpath.json
	@cat BENCH_lp_fastpath.json

# Macro-benchmark scale sweep: boot an in-process Layer-7 fleet per grid
# point (redirector count × tree fanout × offered load), drive it with
# open-loop seeded Poisson streams over loopback TCP, and emit
# BENCH_scale.json (benchjson shape). Fails if any point settles with
# under-floor windows or transport errors.
bench-scale:
	$(GO) run ./cmd/loadgen -sweep -o BENCH_scale.json
	@cat BENCH_scale.json

# Documentation gates: exported-identifier godoc coverage and markdown
# link integrity (both also run in CI).
doclint:
	scripts/doclint.sh

linkcheck:
	scripts/linkcheck.sh

# Regenerate every paper figure and print paper-vs-measured tables.
experiments:
	$(GO) run ./cmd/experiment -id all

# Exported-API compatibility against the parent commit (see
# scripts/apicompat.allow for deliberate breaks).
apicompat:
	scripts/apicompat.sh

fmt:
	gofmt -w .

cover:
	$(GO) test -coverprofile=cover.out ./... && $(GO) tool cover -func=cover.out | tail -1
