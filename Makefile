# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short race bench experiments fmt cover

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper figure and print paper-vs-measured tables.
experiments:
	$(GO) run ./cmd/experiment -id all

fmt:
	gofmt -w .

cover:
	$(GO) test -coverprofile=cover.out ./... && $(GO) tool cover -func=cover.out | tail -1
