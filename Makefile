# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short race bench bench-json experiments fmt cover apicompat

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# One-pass scheduling fast-path report: run the window benchmarks with
# -benchmem and emit BENCH_lp_fastpath.json (ns/op, allocs/op, cache hit
# rate) with the committed seed numbers embedded as the baseline.
bench-json:
	$(GO) test -run XXX -bench 'WindowSchedule|AdmitPerRequest|WindowTraceOverhead' -benchmem . \
		| $(GO) run ./cmd/benchjson -baseline BENCH_seed.json -o BENCH_lp_fastpath.json
	@cat BENCH_lp_fastpath.json

# Regenerate every paper figure and print paper-vs-measured tables.
experiments:
	$(GO) run ./cmd/experiment -id all

# Exported-API compatibility against the parent commit (see
# scripts/apicompat.allow for deliberate breaks).
apicompat:
	scripts/apicompat.sh

fmt:
	gofmt -w .

cover:
	$(GO) test -coverprofile=cover.out ./... && $(GO) tool cover -func=cover.out | tail -1
