// Command apisurface prints the repository's exported Go API surface as
// sorted plain text, one declaration per line:
//
//	internal/core: func (*Engine) StageSet(set *agreement.Set, gateEpoch int) (Version, error)
//	internal/core: type Engine struct
//	internal/core: type Config struct { field System *agreement.System }
//
// It is the fingerprint behind scripts/apicompat.sh: CI renders the surface
// of HEAD and its parent and diffs them, so removing or re-typing an
// exported declaration fails the build unless the change is allowlisted.
// Only exported identifiers reachable from an exported parent appear;
// unexported struct fields, interface embeds of unexported types, and test
// files are invisible to the fingerprint.
//
// Usage: apisurface [root] (default ".") — walks every non-test Go file
// under root, skipping vendor/, testdata/, and hidden directories.
package main

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	lines, err := surface(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apisurface:", err)
		os.Exit(1)
	}
	for _, l := range lines {
		fmt.Println(l)
	}
}

// surface renders the exported API of every package under root as sorted
// "pkgdir: decl" lines.
func surface(root string) ([]string, error) {
	fset := token.NewFileSet()
	var lines []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "vendor" || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if perr != nil {
			return perr
		}
		pkg, rerr := filepath.Rel(root, filepath.Dir(path))
		if rerr != nil {
			pkg = filepath.Dir(path)
		}
		lines = append(lines, fileSurface(fset, pkg, f)...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(lines)
	// The same declaration can repeat across files only by build-tag
	// duplication; dedupe so it cannot double-count.
	out := lines[:0]
	for i, l := range lines {
		if i == 0 || l != lines[i-1] {
			out = append(out, l)
		}
	}
	return out, nil
}

func fileSurface(fset *token.FileSet, pkg string, f *ast.File) []string {
	var lines []string
	add := func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf("%s: ", pkg)+fmt.Sprintf(format, args...))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !exportedRecv(d.Recv) {
				continue
			}
			add("%s", render(fset, &ast.FuncDecl{Recv: d.Recv, Name: d.Name, Type: d.Type}))
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if !s.Name.IsExported() {
						continue
					}
					lines = append(lines, typeSurface(fset, pkg, s)...)
				case *ast.ValueSpec:
					kw := "var"
					if d.Tok == token.CONST {
						kw = "const"
					}
					for _, n := range s.Names {
						if !n.IsExported() {
							continue
						}
						if s.Type != nil {
							add("%s %s %s", kw, n.Name, render(fset, s.Type))
						} else {
							add("%s %s", kw, n.Name)
						}
					}
				}
			}
		}
	}
	return lines
}

// typeSurface renders an exported type: its kind, then one line per exported
// struct field or interface method, so adding an unexported field is
// invisible while removing an exported one is a distinct diff line.
func typeSurface(fset *token.FileSet, pkg string, s *ast.TypeSpec) []string {
	var lines []string
	add := func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf("%s: ", pkg)+fmt.Sprintf(format, args...))
	}
	switch t := s.Type.(type) {
	case *ast.StructType:
		add("type %s struct", s.Name.Name)
		for _, f := range t.Fields.List {
			if len(f.Names) == 0 { // embedded
				if name := embeddedName(f.Type); name != "" && ast.IsExported(name) {
					add("type %s struct { embed %s }", s.Name.Name, render(fset, f.Type))
				}
				continue
			}
			for _, n := range f.Names {
				if n.IsExported() {
					add("type %s struct { field %s %s }", s.Name.Name, n.Name, render(fset, f.Type))
				}
			}
		}
	case *ast.InterfaceType:
		add("type %s interface", s.Name.Name)
		for _, m := range t.Methods.List {
			if len(m.Names) == 0 {
				add("type %s interface { embed %s }", s.Name.Name, render(fset, m.Type))
				continue
			}
			for _, n := range m.Names {
				if n.IsExported() {
					add("type %s interface { method %s%s }", s.Name.Name, n.Name,
						strings.TrimPrefix(render(fset, m.Type), "func"))
				}
			}
		}
	default:
		add("type %s = %s", s.Name.Name, render(fset, s.Type))
	}
	return lines
}

// exportedRecv reports whether a method's receiver type is itself exported
// (methods on unexported types are not API).
func exportedRecv(recv *ast.FieldList) bool {
	if recv == nil || len(recv.List) == 0 {
		return true // plain function
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

func embeddedName(t ast.Expr) string {
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.SelectorExpr:
			return x.Sel.Name
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// render prints an AST node on one line.
func render(fset *token.FileSet, node any) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, node); err != nil {
		return fmt.Sprintf("<%v>", err)
	}
	return strings.Join(strings.Fields(buf.String()), " ")
}
