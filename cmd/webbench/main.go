// Command webbench is the synthetic load generator modeled on the paper's
// WebBench setup: N client workers issue requests for one organization
// against a redirector, follow redirects (retrying self-redirects), and
// report achieved throughput once per second.
//
// Usage:
//
//	webbench -layer l7 -target http://127.0.0.1:8080/svc/alpha/page -workers 4 -duration 30s
//	webbench -layer l4 -target 127.0.0.1:9090 -workers 4 -duration 30s
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/l4"
	"repro/internal/l7"
)

func main() {
	layer := flag.String("layer", "l7", "l7 (HTTP) or l4 (TCP)")
	target := flag.String("target", "", "URL (l7) or host:port (l4) to hammer (required)")
	workers := flag.Int("workers", 4, "concurrent client workers")
	duration := flag.Duration("duration", 30*time.Second, "run length")
	pace := flag.Duration("pace", 0, "per-worker minimum time between requests (0 = closed loop)")
	flag.Parse()
	if *target == "" {
		flag.Usage()
		log.Fatal("missing -target")
	}

	var completed, failed int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			httpClient := l7.NewClient()
			for !stop.Load() {
				start := time.Now()
				var err error
				switch *layer {
				case "l7":
					_, err = httpClient.Fetch(*target)
				case "l4":
					var ok bool
					ok, err = l4.Do(*target, "GET /", 5*time.Second)
					if err == nil && !ok {
						err = fmt.Errorf("bad reply")
					}
				default:
					log.Fatalf("unknown layer %q", *layer)
				}
				if err != nil {
					atomic.AddInt64(&failed, 1)
					time.Sleep(10 * time.Millisecond)
				} else {
					atomic.AddInt64(&completed, 1)
				}
				if *pace > 0 {
					if rest := *pace - time.Since(start); rest > 0 {
						time.Sleep(rest)
					}
				}
			}
		}()
	}

	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	deadline := time.After(*duration)
	var last int64
	for done := false; !done; {
		select {
		case <-ticker.C:
			cur := atomic.LoadInt64(&completed)
			fmt.Printf("%s\t%d req/s\t(total %d, failed %d)\n",
				time.Now().Format("15:04:05"), cur-last, cur, atomic.LoadInt64(&failed))
			last = cur
		case <-deadline:
			done = true
		}
	}
	stop.Store(true)
	wg.Wait()
	fmt.Printf("done: %d completed, %d failed over %v (%.1f req/s)\n",
		completed, failed, *duration, float64(completed)/duration.Seconds())
}
