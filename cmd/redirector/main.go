// Command redirector runs one agreement-enforcing redirector node from a
// JSON scenario file (see internal/config), at Layer 7 or Layer 4,
// optionally joined to a combining tree of peer redirectors.
//
// Usage:
//
//	redirector -config scenario.json -layer l7 -id 0
//
// A minimal provider-mode scenario:
//
//	{
//	  "mode": "provider", "provider": "S",
//	  "window_ms": 100, "num_redirectors": 2,
//	  "principals": [{"name":"S","capacity":320},{"name":"A"},{"name":"B"}],
//	  "agreements": [
//	    {"owner":"S","user":"A","lb":0.2,"ub":1.0},
//	    {"owner":"S","user":"B","lb":0.8,"ub":1.0}],
//	  "l7": {"addr":"127.0.0.1:8080",
//	         "orgs": {"alpha":"A","beta":"B"},
//	         "backends": {"S": ["http://127.0.0.1:8081"]}}
//	}
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"syscall"
	"time"

	"repro/internal/agreement"
	"repro/internal/budget"
	"repro/internal/combining"
	"repro/internal/config"
	"repro/internal/l4"
	"repro/internal/l7"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/treenet"
)

func main() {
	path := flag.String("config", "", "scenario JSON file (required)")
	layer := flag.String("layer", "l7", "l7 (HTTP 302 switch) or l4 (TCP NAT-style switch)")
	id := flag.Int("id", 0, "this redirector's id")
	admin := flag.String("admin", "", "admin listener for /v1/metrics, /v1/debug/windows and pprof (overrides scenario admin_addr)")
	mutexProfile := flag.Int("mutex-profile-fraction", 0,
		"sample 1/n of contended mutex events on /debug/pprof/mutex (0 disables; requires -admin or admin_addr)")
	blockProfile := flag.Int("block-profile-rate", 0,
		"sample goroutine blocking events of >= n ns on /debug/pprof/block (0 disables; requires -admin or admin_addr)")
	flag.Parse()
	if *path == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := config.Load(*path)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := f.BuildEngine()
	if err != nil {
		log.Fatal(err)
	}
	sys, err := f.BuildSystem()
	if err != nil {
		log.Fatal(err)
	}
	tree, err := treeSpec(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(eng.DescribeEntitlements())
	// Hierarchical scenarios: show how the budget tree folded into the flat
	// entitlements above, floors and ceilings per principal.
	if len(f.Budget) > 0 {
		fmt.Print(budget.Describe(budget.Spec{Roots: f.Budget}))
	}

	adminAddr := f.AdminAddr
	if *admin != "" {
		adminAddr = *admin
	}
	// Contention profiling is gated on the admin surface: without a
	// listener to scrape /debug/pprof/{mutex,block} the samples would only
	// slow the data path down.
	if *mutexProfile > 0 || *blockProfile > 0 {
		if adminAddr == "" {
			log.Print("ignoring -mutex-profile-fraction/-block-profile-rate: no admin listener (-admin or admin_addr)")
		} else {
			obs.EnableContentionProfiling(*mutexProfile, *blockProfile)
		}
	}

	// Durable state: each redirector process owns a node-scoped directory
	// under state_dir, so co-located nodes never share a window log.
	var st *persist.Store
	if f.StateDir != "" {
		dir := filepath.Join(f.StateDir, fmt.Sprintf("redirector-%d", *id))
		st, err = persist.Open(dir)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("durable state in %s\n", dir)
	}

	// Shutdown hooks, installed per layer below: the flight recorder whose
	// armed captures a SIGTERM must flush, and the front-end to stop before
	// the store closes.
	var flight *obs.FlightRecorder
	var closeFront func() error

	switch *layer {
	case "l7":
		if f.L7 == nil {
			log.Fatal("scenario has no l7 section")
		}
		orgs := make(map[string]agreement.Principal, len(f.L7.Orgs))
		for org, name := range f.L7.Orgs {
			p, ok := sys.Lookup(name)
			if !ok {
				log.Fatalf("l7 org %q maps to unknown principal %q", org, name)
			}
			orgs[org] = p
		}
		backends, err := config.ResolvePrincipals(sys, f.L7.Backends)
		if err != nil {
			log.Fatal(err)
		}
		r, err := l7.NewRedirector(l7.RedirectorConfig{
			Engine: eng, ID: *id, Addr: f.L7.Addr,
			Orgs: orgs, Backends: backends, Tree: tree,
			Proxy:           f.L7.Proxy,
			Health:          f.Health.Options(),
			Ctrl:            f.Ctrl != nil && f.Ctrl.Enabled,
			CtrlLead:        ctrlLead(f),
			AdmissionShards: f.AdmissionShards,
			Trace:           f.Trace.TraceConfig(),
			Flight:          f.Trace.FlightConfig(),
			Persist:         st,
		})
		if err != nil {
			log.Fatal(err)
		}
		flight, closeFront = r.Flight(), r.Close
		fmt.Printf("l7 redirector %d at %s", *id, r.URL())
		if ta := r.TreeAddr(); ta != "" {
			fmt.Printf(" (tree %s)", ta)
		}
		if bound := serveAdmin(adminAddr, r.ObsHandler()); bound != "" {
			fmt.Printf(" (admin %s)", bound)
		}
		fmt.Println()
	case "l4":
		if f.L4 == nil {
			log.Fatal("scenario has no l4 section")
		}
		var services []l4.ServiceSpec
		for name, addr := range f.L4.Services {
			p, ok := sys.Lookup(name)
			if !ok {
				log.Fatalf("l4 service for unknown principal %q", name)
			}
			services = append(services, l4.ServiceSpec{Principal: p, Addr: addr})
		}
		backends, err := config.ResolvePrincipals(sys, f.L4.Backends)
		if err != nil {
			log.Fatal(err)
		}
		r, err := l4.NewRedirector(l4.Config{
			Engine: eng, ID: *id, Services: services, Backends: backends, Tree: tree,
			Health:          f.Health.Options(),
			Ctrl:            f.Ctrl != nil && f.Ctrl.Enabled,
			CtrlLead:        ctrlLead(f),
			AdmissionShards: f.AdmissionShards,
			Trace:           f.Trace.TraceConfig(),
			Flight:          f.Trace.FlightConfig(),
			Persist:         st,
		})
		if err != nil {
			log.Fatal(err)
		}
		flight, closeFront = r.Flight(), r.Close
		fmt.Printf("l4 redirector %d up:", *id)
		for name := range f.L4.Services {
			p, _ := sys.Lookup(name)
			fmt.Printf(" %s=%s", name, r.Addr(p))
		}
		if ta := r.TreeAddr(); ta != "" {
			fmt.Printf(" (tree %s)", ta)
		}
		if bound := serveAdmin(adminAddr, r.ObsHandler()); bound != "" {
			fmt.Printf(" (admin %s)", bound)
		}
		fmt.Println()
	default:
		log.Fatalf("unknown layer %q", *layer)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	// Graceful shutdown: flush armed forensic captures first (they are the
	// evidence of whatever preceded the signal), then stop the front-end
	// (which checkpoints the durable log), then close the store.
	if n := flight.Flush(); n > 0 {
		log.Printf("flushed %d flight captures", n)
	}
	if closeFront != nil {
		if err := closeFront(); err != nil {
			log.Printf("front-end close: %v", err)
		}
	}
	if st != nil {
		if err := st.Close(); err != nil {
			log.Printf("state store close: %v", err)
		}
	}
}

// serveAdmin starts the optional observability listener; returns the bound
// address ("" when disabled).
func serveAdmin(addr string, h *obs.Handler) string {
	if addr == "" {
		return ""
	}
	bound, err := obs.Serve(addr, h, nil)
	if err != nil {
		log.Fatalf("admin listener %s: %v", addr, err)
	}
	return bound
}

// ctrlLead extracts the rollout lead (0 lets the front-end pick the
// default) from the optional ctrl section.
func ctrlLead(f *config.File) int {
	if f.Ctrl == nil {
		return 0
	}
	return f.Ctrl.RolloutLeadEpochs
}

func treeSpec(f *config.File) (*treenet.Spec, error) {
	if f.Tree == nil {
		return nil, nil
	}
	spec := &treenet.Spec{
		NodeID:         combining.NodeID(f.Tree.NodeID),
		Parent:         combining.NodeID(f.Tree.Parent),
		ListenAddr:     f.Tree.ListenAddr,
		Peers:          make(map[combining.NodeID]string, len(f.Tree.Peers)),
		Fanout:         f.Tree.Fanout,
		FailureTimeout: time.Duration(f.Tree.FailureTimeoutMS) * time.Millisecond,
	}
	for _, c := range f.Tree.Children {
		spec.Children = append(spec.Children, combining.NodeID(c))
	}
	for _, m := range f.Tree.Members {
		spec.Members = append(spec.Members, combining.NodeID(m))
	}
	for idStr, addr := range f.Tree.Peers {
		n, err := strconv.Atoi(idStr)
		if err != nil {
			return nil, fmt.Errorf("tree peer id %q: %v", idStr, err)
		}
		spec.Peers[combining.NodeID(n)] = addr
	}
	if f.Tree.Topology != nil {
		spec.Topology = f.Tree.Topology.Spec()
		spec.FailureTimeout = time.Duration(f.Tree.Topology.FailureTimeoutMS) * time.Millisecond
	}
	return spec, nil
}
