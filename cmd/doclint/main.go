// Command doclint enforces godoc coverage: every package must carry a
// package comment, and every exported top-level identifier — functions,
// methods, types, and grouped or standalone consts and vars — must have a
// doc comment on the declaration or its enclosing group. In _test.go files
// it checks godoc Example functions instead: every example must carry an
// "Output:" comment so it actually executes (and is verified) under go
// test rather than merely compiling.
//
// Usage:
//
//	doclint [dir ...]
//
// With no arguments it walks the current module (., cmd/..., internal/...),
// skipping testdata directories. Findings are printed one per line as
// file:line: message; any finding makes the exit status 1, which is how CI
// fails the documentation gate.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// finding is one missing-documentation report.
type finding struct {
	pos token.Position
	msg string
}

// lintDir parses one directory's non-test Go files and reports
// documentation gaps. Test files are parsed separately for the Example
// runnability check.
func lintDir(fset *token.FileSet, dir string) ([]finding, error) {
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []finding
	for _, pkg := range pkgs {
		out = append(out, lintPackage(fset, pkg)...)
	}
	tests, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	for _, pkg := range tests {
		for _, f := range pkg.Files {
			out = append(out, lintExamples(fset, f)...)
		}
	}
	return out, nil
}

// lintExamples enforces that godoc Example functions are runnable: an
// example without an "Output:" (or "Unordered output:") comment compiles
// but never executes under go test, so it can silently rot. Helpers named
// Example* with parameters or results are not examples and are skipped.
func lintExamples(fset *token.FileSet, f *ast.File) []finding {
	var out []finding
	for _, decl := range f.Decls {
		d, ok := decl.(*ast.FuncDecl)
		if !ok || d.Recv != nil || !strings.HasPrefix(d.Name.Name, "Example") {
			continue
		}
		if d.Type.Params.NumFields() != 0 || d.Type.Results.NumFields() != 0 {
			continue
		}
		if d.Body == nil || exampleHasOutput(f, d) {
			continue
		}
		out = append(out, finding{
			pos: fset.Position(d.Pos()),
			msg: fmt.Sprintf("example %s has no // Output: comment (never runs under go test)", d.Name.Name),
		})
	}
	return out
}

// exampleHasOutput reports whether any comment inside the example's body
// declares expected output.
func exampleHasOutput(f *ast.File, d *ast.FuncDecl) bool {
	for _, g := range f.Comments {
		if g.Pos() < d.Body.Lbrace || g.End() > d.Body.Rbrace {
			continue
		}
		for _, c := range g.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			lower := strings.ToLower(text)
			if strings.HasPrefix(lower, "output:") || strings.HasPrefix(lower, "unordered output:") {
				return true
			}
		}
	}
	return false
}

// lintPackage checks one parsed package: a package comment somewhere, and a
// doc comment on every exported declaration.
func lintPackage(fset *token.FileSet, pkg *ast.Package) []finding {
	var out []finding
	hasPkgDoc := false
	var firstFile *ast.File
	var firstName string
	names := make([]string, 0, len(pkg.Files))
	for name := range pkg.Files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := pkg.Files[name]
		if firstFile == nil {
			firstFile, firstName = f, name
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			hasPkgDoc = true
		}
		out = append(out, lintFile(fset, f)...)
	}
	if !hasPkgDoc && firstFile != nil {
		out = append(out, finding{
			pos: token.Position{Filename: firstName, Line: 1},
			msg: fmt.Sprintf("package %s has no package comment", pkg.Name),
		})
	}
	return out
}

// lintFile checks one file's top-level declarations.
func lintFile(fset *token.FileSet, f *ast.File) []finding {
	var out []finding
	report := func(pos token.Pos, format string, args ...interface{}) {
		out = append(out, finding{pos: fset.Position(pos), msg: fmt.Sprintf(format, args...)})
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || hasDoc(d.Doc) {
				continue
			}
			if d.Recv != nil {
				recv := receiverName(d.Recv)
				if recv != "" && !ast.IsExported(recv) {
					continue // method on an unexported type
				}
				report(d.Pos(), "exported method %s.%s has no doc comment", recv, d.Name.Name)
			} else {
				report(d.Pos(), "exported function %s has no doc comment", d.Name.Name)
			}
		case *ast.GenDecl:
			lintGenDecl(report, d)
		}
	}
	return out
}

// lintGenDecl checks a const/var/type declaration. A doc comment on the
// group (`const ( ... )`) covers every spec inside it; an undocumented
// group requires per-spec comments on each exported name.
func lintGenDecl(report func(token.Pos, string, ...interface{}), d *ast.GenDecl) {
	if d.Tok == token.IMPORT {
		return
	}
	groupDoc := hasDoc(d.Doc)
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDoc && !hasDoc(s.Doc) && !hasDoc(s.Comment) {
				report(s.Pos(), "exported type %s has no doc comment", s.Name.Name)
			}
		case *ast.ValueSpec:
			if groupDoc || hasDoc(s.Doc) || hasDoc(s.Comment) {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(name.Pos(), "exported %s %s has no doc comment", d.Tok, name.Name)
					break
				}
			}
		}
	}
}

// hasDoc reports whether a comment group carries actual text.
func hasDoc(g *ast.CommentGroup) bool {
	return g != nil && strings.TrimSpace(g.Text()) != ""
}

// receiverName extracts the receiver's type name (sans pointer).
func receiverName(fields *ast.FieldList) string {
	if fields == nil || len(fields.List) == 0 {
		return ""
	}
	t := fields.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	switch e := t.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr: // generic receiver T[P]
		if id, ok := e.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}

// collectDirs walks roots for directories containing Go files.
func collectDirs(roots []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if name == "testdata" || strings.HasPrefix(name, ".") && path != root {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
				dir := filepath.Dir(path)
				if !seen[dir] {
					seen[dir] = true
					dirs = append(dirs, dir)
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func main() {
	flag.Parse()
	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}
	dirs, err := collectDirs(roots)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doclint:", err)
		os.Exit(2)
	}
	fset := token.NewFileSet()
	var all []finding
	for _, dir := range dirs {
		fs, err := lintDir(fset, dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doclint:", err)
			os.Exit(2)
		}
		all = append(all, fs...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].pos.Filename != all[j].pos.Filename {
			return all[i].pos.Filename < all[j].pos.Filename
		}
		return all[i].pos.Line < all[j].pos.Line
	})
	for _, f := range all {
		fmt.Printf("%s:%d: %s\n", f.pos.Filename, f.pos.Line, f.msg)
	}
	if len(all) > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d undocumented exported identifiers\n", len(all))
		os.Exit(1)
	}
}
