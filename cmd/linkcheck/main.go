// Command linkcheck validates markdown cross-references offline: every
// relative link target must exist on disk, and every fragment — in-page or
// cross-file — must match a heading anchor computed the way GitHub computes
// them. External http(s) and mailto links are skipped, so the check is
// deterministic and runs without network access.
//
// Usage:
//
//	linkcheck README.md DESIGN.md ...
//
// Findings print as file:line: message; any finding exits 1.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links and images: [text](target).
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// headingRe matches ATX headings.
var headingRe = regexp.MustCompile("^#{1,6}\\s+(.*)$")

// codeSpanRe strips inline code from heading text before slugging.
var codeSpanRe = regexp.MustCompile("`([^`]*)`")

// anchorStrip removes everything GitHub's slugger drops: anything that is
// not a letter, digit, space, hyphen, or underscore.
var anchorStrip = regexp.MustCompile(`[^\p{L}\p{N} _-]`)

// slug converts one heading to its GitHub anchor.
func slug(heading string) string {
	s := codeSpanRe.ReplaceAllString(heading, "$1")
	s = strings.ToLower(strings.TrimSpace(s))
	s = anchorStrip.ReplaceAllString(s, "")
	s = strings.ReplaceAll(s, " ", "-")
	return s
}

// anchors extracts the set of heading anchors of one markdown file,
// numbering duplicates -1, -2, ... as GitHub does.
func anchors(path string) (map[string]bool, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := make(map[string]bool)
	counts := make(map[string]int)
	inFence := false
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		m := headingRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		base := slug(m[1])
		if n := counts[base]; n > 0 {
			out[fmt.Sprintf("%s-%d", base, n)] = true
		} else {
			out[base] = true
		}
		counts[base]++
	}
	return out, nil
}

// checkFile validates every link in one markdown file, returning findings.
func checkFile(path string, anchorCache map[string]map[string]bool) ([]string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var findings []string
	dir := filepath.Dir(path)
	inFence := false
	for ln, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			file, frag, _ := strings.Cut(target, "#")
			resolved := path
			if file != "" {
				resolved = filepath.Join(dir, file)
				if _, err := os.Stat(resolved); err != nil {
					findings = append(findings,
						fmt.Sprintf("%s:%d: broken link %q: %s does not exist", path, ln+1, target, resolved))
					continue
				}
			}
			if frag == "" {
				continue
			}
			if !strings.HasSuffix(strings.ToLower(resolved), ".md") {
				continue // fragments into non-markdown files are not ours to judge
			}
			set, ok := anchorCache[resolved]
			if !ok {
				set, err = anchors(resolved)
				if err != nil {
					return nil, err
				}
				anchorCache[resolved] = set
			}
			if !set[frag] {
				findings = append(findings,
					fmt.Sprintf("%s:%d: broken anchor %q: no heading in %s slugs to #%s",
						path, ln+1, target, resolved, frag))
			}
		}
	}
	return findings, nil
}

func main() {
	files := os.Args[1:]
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "usage: linkcheck file.md ...")
		os.Exit(2)
	}
	cache := make(map[string]map[string]bool)
	bad := 0
	for _, f := range files {
		findings, err := checkFile(f, cache)
		if err != nil {
			fmt.Fprintln(os.Stderr, "linkcheck:", err)
			os.Exit(2)
		}
		for _, msg := range findings {
			fmt.Println(msg)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken links\n", bad)
		os.Exit(1)
	}
}
