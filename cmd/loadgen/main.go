// Command loadgen is the macro-benchmark driver: open-loop, seeded request
// streams against a redirector fleet, with latency percentiles and
// agreement-conformance deltas in one report.
//
// It runs in one of two modes:
//
// External mode drives an already-running fleet over real sockets —
// Layer-7 base URLs via -targets (round-robinned) or Layer-4 service
// addresses via -l4. Conformance counters are scraped from the fleet's
// /v1/metrics endpoints (-scrape) before and after the measured span:
//
//	loadgen -targets http://127.0.0.1:8080,http://127.0.0.1:8081 \
//	        -scrape http://127.0.0.1:9090/v1/metrics,http://127.0.0.1:9091/v1/metrics \
//	        -orgs alpha,beta -rate 200 -duration 30s -warmup 5s -process poisson -seed 1
//
// Sweep mode (-sweep) is what `make bench-scale` runs: it boots an
// in-process Layer-7 fleet per point of the scale grid (redirector count ×
// combining-tree fanout × offered load, see loadgen.DefaultSweep), drives
// every point over loopback TCP, and writes a BENCH_scale.json report in
// the same shape cmd/benchjson emits. Every point is asserted to settle
// with zero under-floor windows and zero transport errors; any violation
// fails the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/loadgen"
	"repro/internal/obs"
)

// benchResult mirrors cmd/benchjson's JSON result shape so BENCH_scale.json
// and BENCH_lp_fastpath.json read the same way.
type benchResult struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BPerOp      float64            `json:"b_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type report struct {
	Baseline json.RawMessage `json:"baseline,omitempty"`
	Results  []benchResult   `json:"results"`
}

// pointMetrics folds one run plus its conformance delta into the flat
// metric map carried per sweep point.
func pointMetrics(res *loadgen.Result, offered float64, delta loadgen.Conformance) (benchResult, *obs.Histogram) {
	agg := obs.NewHistogram()
	var ok int64
	for i := range res.Streams {
		agg.Merge(res.Streams[i].Hist)
		ok += res.Streams[i].OK
	}
	_, _, rejected, errors := res.Totals()
	r := benchResult{
		Iterations: ok,
		NsPerOp:    float64(agg.Mean().Nanoseconds()),
		Metrics: map[string]float64{
			"p50_ms":               float64(agg.Quantile(0.50)) / 1e6,
			"p95_ms":               float64(agg.Quantile(0.95)) / 1e6,
			"p99_ms":               float64(agg.Quantile(0.99)) / 1e6,
			"p999_ms":              float64(agg.Quantile(0.999)) / 1e6,
			"max_ms":               float64(agg.Max()) / 1e6,
			"qps":                  float64(ok) / res.Measured.Seconds(),
			"offered_qps":          offered,
			"rejected":             float64(rejected),
			"errors":               float64(errors),
			"windows":              delta.Windows,
			"under_floor_windows":  delta.UnderFloor,
			"over_ceiling_windows": delta.OverCeiling,
			"conservative_windows": delta.Conservative,
		},
	}
	return r, agg
}

// runSweepPoint boots a fleet for one grid point, drives it, and returns
// the point's result row. The conformance delta is measured from the
// warmup boundary so convergence-phase fallback windows don't count
// against the settled assertion.
func runSweepPoint(pt loadgen.SweepPoint) (benchResult, error) {
	def := loadgen.SweepDefaults
	capacity, window := def.Capacity, def.Window
	duration, warmup := def.Duration, def.Warmup
	if pt.Capacity > 0 {
		capacity = pt.Capacity
	}
	if pt.Window > 0 {
		window = pt.Window
	}
	if pt.Duration > 0 {
		duration = pt.Duration
	}
	if pt.Warmup > 0 {
		warmup = pt.Warmup
	}
	fleet, err := loadgen.StartFleet(loadgen.FleetConfig{
		Redirectors: pt.Redirectors,
		Fanout:      pt.Fanout,
		Capacity:    capacity,
		Backends:    def.Backends,
		Window:      window,
		Regions:     pt.Regions,
		// 1% head sampling plus the slowest 8 per window: enough spans to
		// attribute each point's tail to a phase without perturbing it.
		Trace: &obs.TraceConfig{SampleEvery: 100, SlowestK: 8},
	})
	if err != nil {
		return benchResult{}, err
	}
	defer fleet.Close()
	target, err := fleet.Target()
	if err != nil {
		return benchResult{}, err
	}

	settled := make(chan loadgen.Conformance, 1)
	timer := time.AfterFunc(warmup, func() { settled <- fleet.Conformance() })
	defer timer.Stop()

	res, err := loadgen.Run(target, loadgen.Options{
		Streams:  pt.Streams(fleet.Capacity, fleet.Orgs),
		Duration: duration,
		Warmup:   warmup,
	})
	if err != nil {
		return benchResult{}, err
	}
	delta := fleet.Conformance().Sub(<-settled)

	offered := pt.Load * fleet.Capacity
	row, _ := pointMetrics(res, offered, delta)
	row.Name = pt.Name()
	// Per-phase tail attribution: which stage of the request path the
	// point's p99 actually lives in (span clocks, not client clocks).
	ph := fleet.Phases()
	row.Metrics["phase_admit_p99_ms"] = float64(ph.Admit.Quantile(0.99)) / 1e6
	row.Metrics["phase_park_p99_ms"] = float64(ph.Park.Quantile(0.99)) / 1e6
	row.Metrics["phase_dial_p99_ms"] = float64(ph.Dial.Quantile(0.99)) / 1e6
	row.Metrics["phase_proxy_p99_ms"] = float64(ph.Proxy.Quantile(0.99)) / 1e6
	// Hierarchical points record the fleet-wide delta-compression counters
	// (the in-process sum of every node's rsa_tree_delta_* series) so the
	// report shows upstream message volume, not just latency.
	if pt.Regions > 1 {
		ts := fleet.TreeStats()
		row.Metrics["delta_frames"] = float64(ts.Delta.Frames)
		row.Metrics["delta_full_frames"] = float64(ts.Delta.FullFrames)
		row.Metrics["delta_entries_sent"] = float64(ts.Delta.EntriesSent)
		row.Metrics["delta_entries_suppressed"] = float64(ts.Delta.EntriesSuppressed)
		row.Metrics["delta_bytes_saved"] = float64(ts.Delta.BytesSaved)
		row.Metrics["delta_desyncs"] = float64(ts.Delta.Desyncs)
	}

	if delta.UnderFloor > 0 {
		return row, fmt.Errorf("%s: %.0f settled under-floor windows (agreement violated)",
			pt.Name(), delta.UnderFloor)
	}
	if delta.MixedVersion > 0 {
		return row, fmt.Errorf("%s: %.0f mixed-version windows", pt.Name(), delta.MixedVersion)
	}
	if errs := row.Metrics["errors"]; errs > 0 {
		return row, fmt.Errorf("%s: %.0f transport errors against a healthy fleet", pt.Name(), errs)
	}
	if row.Iterations == 0 {
		return row, fmt.Errorf("%s: no requests completed", pt.Name())
	}
	return row, nil
}

// runSweep executes the full grid and writes the report.
func runSweep(outPath, baselinePath string) error {
	rep := report{Results: []benchResult{}}
	if baselinePath != "" {
		raw, err := os.ReadFile(baselinePath)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		if !json.Valid(raw) {
			return fmt.Errorf("baseline %s: not valid JSON", baselinePath)
		}
		rep.Baseline = json.RawMessage(raw)
	}
	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
		fmt.Fprintln(os.Stderr, "loadgen: FAIL", err)
	}
	hier := make(map[int]benchResult)
	for _, pt := range loadgen.DefaultSweep() {
		row, err := runSweepPoint(pt)
		if err != nil {
			fail(err)
		} else if pt.Regions > 1 {
			hier[pt.Redirectors] = row
		}
		if row.Name != "" {
			rep.Results = append(rep.Results, row)
			fmt.Fprintf(os.Stderr,
				"loadgen: %-24s qps=%7.1f/%7.1f p50=%6.2fms p99=%7.2fms p999=%7.2fms under_floor=%.0f\n",
				row.Name, row.Metrics["qps"], row.Metrics["offered_qps"],
				row.Metrics["p50_ms"], row.Metrics["p99_ms"], row.Metrics["p999_ms"],
				row.Metrics["under_floor_windows"])
		}
	}
	// Hierarchical-grid assertions: delta compression must actually bite on
	// every hier point, and the 64→256 quadrupling of the fleet must cost
	// strictly less than 4× the transmitted delta entries — the sub-linear
	// upstream message volume the hierarchical plane exists to buy.
	for r, row := range hier {
		if row.Metrics["delta_entries_suppressed"] == 0 || row.Metrics["delta_bytes_saved"] == 0 {
			fail(fmt.Errorf("%s: delta compression suppressed nothing (r=%d)", row.Name, r))
		}
		if row.Metrics["delta_desyncs"] > 0 {
			fail(fmt.Errorf("%s: %.0f delta decoder desyncs on a healthy fleet", row.Name, row.Metrics["delta_desyncs"]))
		}
	}
	if lo, ok := hier[64]; ok {
		if hi, ok := hier[256]; ok && lo.Metrics["delta_entries_sent"] > 0 {
			ratio := hi.Metrics["delta_entries_sent"] / lo.Metrics["delta_entries_sent"]
			fmt.Fprintf(os.Stderr, "loadgen: delta entries sent 64→256: %.0f → %.0f (ratio %.2f, want < 4.0)\n",
				lo.Metrics["delta_entries_sent"], hi.Metrics["delta_entries_sent"], ratio)
			if ratio >= 4.0 {
				fail(fmt.Errorf("upstream message volume grew super-linearly: 4x redirectors cost %.2fx delta entries", ratio))
			}
		}
	}
	enc, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if outPath == "" || outPath == "-" {
		_, _ = os.Stdout.Write(enc)
	} else if err := os.WriteFile(outPath, enc, 0o644); err != nil {
		return err
	}
	return firstErr
}

// buildTarget assembles the external-mode target from flags.
func buildTarget(targets, l4addrs string, timeout time.Duration) (loadgen.Target, error) {
	if targets != "" && l4addrs != "" {
		return nil, fmt.Errorf("use -targets or -l4, not both")
	}
	if targets != "" {
		var list []loadgen.Target
		for _, base := range strings.Split(targets, ",") {
			t, err := loadgen.NewHTTPTarget(strings.TrimSpace(base))
			if err != nil {
				return nil, err
			}
			list = append(list, t)
		}
		if len(list) == 1 {
			return list[0], nil
		}
		return &loadgen.MultiTarget{Targets: list}, nil
	}
	if l4addrs != "" {
		addrs := make(map[int]string)
		for _, pair := range strings.Split(l4addrs, ",") {
			p, addr, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if !ok {
				return nil, fmt.Errorf("bad -l4 entry %q (want principal=host:port)", pair)
			}
			idx, err := strconv.Atoi(p)
			if err != nil {
				return nil, fmt.Errorf("bad -l4 principal %q: %w", p, err)
			}
			addrs[idx] = addr
		}
		return &loadgen.TCPTarget{Addrs: addrs, Timeout: timeout}, nil
	}
	return nil, fmt.Errorf("external mode needs -targets or -l4 (or use -sweep)")
}

// scrapeAll sums conformance over every configured metrics endpoint.
func scrapeAll(urls []string) (loadgen.Conformance, error) {
	var sum loadgen.Conformance
	for _, u := range urls {
		c, err := loadgen.Scrape(u)
		if err != nil {
			return sum, err
		}
		sum = sum.Add(c)
	}
	return sum, nil
}

// runExternal drives an already-running fleet and prints the summary.
func runExternal(target loadgen.Target, streams []loadgen.Stream, duration, warmup time.Duration,
	workers int, scrapeURLs []string, outPath string) error {
	type snap struct {
		c   loadgen.Conformance
		err error
	}
	haveScrape := len(scrapeURLs) > 0
	settled := make(chan snap, 1)
	if haveScrape {
		// Snapshot at the warmup boundary, concurrent with the run.
		time.AfterFunc(warmup, func() {
			c, err := scrapeAll(scrapeURLs)
			settled <- snap{c, err}
		})
	}
	res, err := loadgen.Run(target, loadgen.Options{
		Streams: streams, Duration: duration, Warmup: warmup, Workers: workers,
	})
	if err != nil {
		return err
	}
	var delta loadgen.Conformance
	if haveScrape {
		before := <-settled
		if before.err != nil {
			return fmt.Errorf("warmup scrape: %w", before.err)
		}
		after, err := scrapeAll(scrapeURLs)
		if err != nil {
			return fmt.Errorf("final scrape: %w", err)
		}
		delta = after.Sub(before.c)
	}

	var offered float64
	for _, s := range streams {
		offered += s.Rate
	}
	row, agg := pointMetrics(res, offered, delta)
	row.Name = "External"

	fmt.Printf("measured %v (of %v wall), %d streams\n", res.Measured, res.Wall, len(res.Streams))
	for i := range res.Streams {
		s := &res.Streams[i]
		fmt.Printf("  stream %d (org=%s rate=%.1f %s): ok=%d rejected=%d errors=%d p50=%v p99=%v\n",
			i, s.Stream.Org, s.Stream.Rate, s.Stream.Process, s.OK, s.Rejected, s.Errors,
			s.Hist.Quantile(0.50), s.Hist.Quantile(0.99))
	}
	fmt.Printf("total: qps=%.1f (offered %.1f) p50=%v p95=%v p99=%v p999=%v max=%v\n",
		row.Metrics["qps"], offered,
		agg.Quantile(0.50), agg.Quantile(0.95), agg.Quantile(0.99), agg.Quantile(0.999), agg.Max())
	if haveScrape {
		fmt.Printf("conformance delta: windows=%.0f under_floor=%.0f over_ceiling=%.0f conservative=%.0f mixed_version=%.0f\n",
			delta.Windows, delta.UnderFloor, delta.OverCeiling, delta.Conservative, delta.MixedVersion)
	}
	if outPath != "" {
		enc, err := json.MarshalIndent(&report{Results: []benchResult{row}}, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(enc, '\n'), 0o644); err != nil {
			return err
		}
	}
	if haveScrape && delta.UnderFloor > 0 {
		return fmt.Errorf("%.0f settled under-floor windows (agreement violated)", delta.UnderFloor)
	}
	return nil
}

func main() {
	sweep := flag.Bool("sweep", false, "run the in-process scale sweep and emit a BENCH-style JSON report")
	out := flag.String("o", "", "report output path ('-' or empty for stdout in sweep mode)")
	baseline := flag.String("baseline", "", "JSON file to embed verbatim as the report baseline (sweep mode)")
	targets := flag.String("targets", "", "comma-separated Layer-7 redirector base URLs (round-robinned)")
	l4 := flag.String("l4", "", "comma-separated Layer-4 principal=host:port service addresses")
	scrape := flag.String("scrape", "", "comma-separated /v1/metrics URLs for conformance deltas")
	orgs := flag.String("orgs", "alpha,beta", "comma-separated Layer-7 org segments, one stream per org")
	rate := flag.Float64("rate", 100, "total offered load in requests/second, split evenly over streams")
	duration := flag.Duration("duration", 30*time.Second, "scheduled run length")
	warmup := flag.Duration("warmup", 5*time.Second, "span excluded from counters while the fleet converges")
	process := flag.String("process", "poisson", "arrival process: uniform|poisson|bursty")
	seed := flag.Uint64("seed", 1, "schedule seed; stream i uses seed+i")
	workers := flag.Int("workers", 0, "max in-flight requests (default 256)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request timeout for Layer-4 targets")
	flag.Parse()

	if *sweep {
		if err := runSweep(*out, *baseline); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		return
	}

	proc, err := loadgen.ParseProcess(*process)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(2)
	}
	target, err := buildTarget(*targets, *l4, *timeout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(2)
	}
	orgList := strings.Split(*orgs, ",")
	streams := make([]loadgen.Stream, len(orgList))
	for i, org := range orgList {
		streams[i] = loadgen.Stream{
			Principal: i,
			Org:       strings.TrimSpace(org),
			Rate:      *rate / float64(len(orgList)),
			Process:   proc,
			Seed:      *seed + uint64(i),
		}
	}
	var scrapeURLs []string
	if *scrape != "" {
		for _, u := range strings.Split(*scrape, ",") {
			scrapeURLs = append(scrapeURLs, strings.TrimSpace(u))
		}
	}
	if err := runExternal(target, streams, *duration, *warmup, *workers, scrapeURLs, *out); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}
