// Command chaos is the CI chaos smoke. Phase 1 boots a single-process
// Layer-7 enforcement plane (proxy mode, two backends, active health
// checking), replays a deterministic fault schedule that kills and
// restarts one backend, and fails unless the /metrics endpoint proves the
// plane went degraded and recovered — rsa_health_degraded_transitions_total
// and rsa_health_recovered_transitions_total both ≥ 1 — while requests
// kept flowing through the surviving backend. Phase 2 boots a two-region
// hierarchical combining plane over real TCP and kills a regional
// sub-root; the run fails unless the survivors re-parent through the
// promoted member into the global tier (never sideways to a sibling leaf)
// and fresh globals flow again.
//
// Faults address members by stable topology node id, never raw address:
// the victim backend is bound as a node in the health plane's registry
// (resolved at kill/restart time), and the sub-root kill names a tree
// node id directly.
//
// Usage: chaos [-down 2s] [-up 6s] [-run 10s]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/agreement"
	"repro/internal/combining"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/health"
	"repro/internal/l7"
	"repro/internal/topology"
	"repro/internal/treenet"
)

func main() {
	down := flag.Duration("down", 2*time.Second, "when to kill the backend")
	up := flag.Duration("up", 6*time.Second, "when to restart it")
	runFor := flag.Duration("run", 10*time.Second, "total run time before verdict")
	flag.Parse()

	s := agreement.New()
	sp := s.MustAddPrincipal("S", 200)
	a := s.MustAddPrincipal("A", 0)
	b := s.MustAddPrincipal("B", 0)
	s.MustSetAgreement(sp, a, 0.8, 1)
	s.MustSetAgreement(sp, b, 0.2, 1)
	eng, err := core.NewEngine(core.Config{
		Mode: core.Provider, System: s, ProviderPrincipal: sp,
		NumRedirectors: 1, Window: 50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}

	b0, err := l7.NewBackend("127.0.0.1:0", 500)
	if err != nil {
		log.Fatal(err)
	}
	defer b0.Close()
	b1, err := l7.NewBackend("127.0.0.1:0", 500)
	if err != nil {
		log.Fatal(err)
	}
	victimURL := b1.URL()
	const victimNode = 1 // topology node id the victim backend serves

	red, err := l7.NewRedirector(l7.RedirectorConfig{
		Engine: eng, Addr: "127.0.0.1:0", Proxy: true,
		Orgs:     map[string]agreement.Principal{"alpha": a, "beta": b},
		Backends: map[agreement.Principal][]string{sp: {b0.URL(), victimURL}},
		Health: &health.Options{
			Interval:         100 * time.Millisecond,
			Timeout:          500 * time.Millisecond,
			FailThreshold:    2,
			SuccessThreshold: 1,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer red.Close()
	log.Printf("chaos: redirector %s, backends %s + %s (victim)", red.URL(), b0.URL(), victimURL)

	// Closed-loop load for the whole run.
	var served, failed atomic.Int64
	stop := make(chan struct{})
	go func() {
		client := &http.Client{Timeout: 2 * time.Second}
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := client.Get(red.URL() + "/svc/alpha/x")
			if err == nil {
				io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					served.Add(1)
					continue
				}
			}
			failed.Add(1)
			time.Sleep(10 * time.Millisecond)
		}
	}()

	// Faults address the victim by topology node id; the raw address is
	// resolved through the health plane's node registry at fire time, so
	// the plan survives restarts that change the address.
	if err := red.BindNode(victimNode, victimURL); err != nil {
		log.Fatalf("chaos: bind node %d: %v", victimNode, err)
	}
	plan := fault.NewSchedule(1).
		CrashBackend(*down, strconv.Itoa(victimNode)).
		RestartBackend(*up, strconv.Itoa(victimNode))
	log.Print(plan)
	resolve := func(target string) string {
		node, err := strconv.Atoi(target)
		if err != nil {
			log.Fatalf("chaos: fault target %q is not a node id", target)
		}
		addr, ok := red.NodeTarget(node)
		if !ok {
			log.Fatalf("chaos: node %d not bound", node)
		}
		return addr
	}
	cancel := plan.Play(fault.Hooks{
		BackendDown: func(target string) {
			log.Printf("chaos: killing backend node %s (%s)", target, resolve(target))
			b1.Close() //nolint:errcheck // fault injection
		},
		BackendUp: func(target string) {
			addr := strings.TrimPrefix(resolve(target), "http://")
			nb, err := l7.NewBackend(addr, 500)
			if err != nil {
				log.Fatalf("chaos: restart backend node %s: %v", target, err)
			}
			b1 = nb
			log.Printf("chaos: restarted backend node %s (%s)", target, nb.URL())
		},
	})
	defer cancel()

	time.Sleep(*runFor)
	close(stop)

	metrics := scrape(red.URL() + "/v1/metrics")
	deg := counter(metrics, "rsa_health_degraded_transitions_total")
	rec := counter(metrics, "rsa_health_recovered_transitions_total")
	log.Printf("chaos: served=%d failed=%d degraded=%g recovered=%g",
		served.Load(), failed.Load(), deg, rec)
	if deg < 1 || rec < 1 {
		log.Fatalf("chaos: metrics never showed degraded->recovered (degraded=%g recovered=%g)", deg, rec)
	}
	if served.Load() == 0 {
		log.Fatal("chaos: no request ever served")
	}
	log.Print("chaos: phase 1 OK — plane degraded and recovered under a backend kill/restart")

	subRootChaos()
	fmt.Println("chaos smoke OK: backend kill/restart recovered; sub-root kill re-parented into the global tier")
}

// subRootChaos boots a two-region hierarchical combining plane over real
// TCP, kills the west regional sub-root by its topology node id, and
// fails unless the region's survivors re-parent through the promoted
// member into the global tier and fresh globals reach a west leaf again.
func subRootChaos() {
	spec := topology.Spec{
		Regions: []topology.Region{
			{Name: "east", Members: []int{0, 1, 2}},
			{Name: "west", Members: []int{3, 4, 5}},
		},
		Fanout: 2,
	}
	plane, err := topology.Compile(spec)
	if err != nil {
		log.Fatalf("chaos: compile topology: %v", err)
	}
	ids := plane.Members()
	nodes := make(map[combining.NodeID]*combining.Node)
	trs := make(map[combining.NodeID]*treenet.Transport)
	reps := make(map[combining.NodeID]*treenet.PlaneReparenter)
	var mu sync.Mutex
	start := time.Now()
	now := func() time.Duration { return time.Since(start) }

	for _, id := range ids {
		id := id
		tr, err := treenet.Listen(id, "127.0.0.1:0", func(tree int, from combining.NodeID, msg interface{}) {
			mu.Lock()
			defer mu.Unlock()
			if n, ok := nodes[id]; ok {
				n.OnMessage(from, msg)
			}
		})
		if err != nil {
			log.Fatalf("chaos: tree listen: %v", err)
		}
		trs[id] = tr
	}
	defer func() {
		for _, tr := range trs {
			tr.Close() //nolint:errcheck // teardown
		}
	}()
	for _, id := range ids {
		for _, other := range ids {
			if id != other {
				trs[id].SetPeer(other, trs[other].Addr())
			}
		}
		pl, _ := plane.Placement(id)
		nodes[id] = combining.NewBuilder(id).Parent(pl.Parent).Children(pl.Children...).
			Transport(trs[id].Send).Clock(now).Build()
		rep, err := treenet.NewPlaneReparenter(id, spec, 300*time.Millisecond)
		if err != nil {
			log.Fatalf("chaos: reparenter: %v", err)
		}
		reps[id] = rep
		nodes[id].SetLocal([]float64{float64(int(id) + 1)})
	}
	tick := func(live []combining.NodeID) {
		byDepth := append([]combining.NodeID(nil), live...)
		sort.Slice(byDepth, func(i, j int) bool {
			pi, _ := reps[byDepth[i]].Plane().Placement(byDepth[i])
			pj, _ := reps[byDepth[j]].Plane().Placement(byDepth[j])
			return pi.Level > pj.Level
		})
		mu.Lock()
		defer mu.Unlock()
		for _, id := range byDepth {
			nodes[id].Tick()
		}
		for _, id := range live {
			reps[id].Check(nodes[id], now())
		}
	}
	waitGlobal := func(at combining.NodeID, want float64, after time.Duration, live []combining.NodeID) {
		deadline := time.Now().Add(20 * time.Second)
		for {
			tick(live)
			mu.Lock()
			g, ts, ok := nodes[at].Global()
			mu.Unlock()
			if ok && g.Sum[0] == want && ts > after {
				return
			}
			if time.Now().After(deadline) {
				log.Fatalf("chaos: node %d never saw global %v (got %v ok=%v)", at, want, g.Sum, ok)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	waitGlobal(5, 21, 0, ids) // 1+2+…+6 across both regions
	log.Print("chaos: hierarchical plane settled; killing west sub-root (node 3)")

	// The kill addresses a topology node id, not an address: the plan's
	// RedirectorDown event carries the id and the hook resolves it.
	var killedAt time.Duration
	survivors := []combining.NodeID{0, 1, 2, 4, 5}
	subPlan := fault.NewSchedule(2).CrashRedirector(0, 3)
	done := make(chan struct{})
	subPlan.Play(fault.Hooks{
		RedirectorDown: func(a int) {
			trs[combining.NodeID(a)].Close() //nolint:errcheck // fault injection
			mu.Lock()
			delete(nodes, combining.NodeID(a))
			mu.Unlock()
			killedAt = now()
			close(done)
		},
	})
	<-done

	// Post-repair sum drops node 3's contribution (21−4=17) and must reach
	// a west leaf again through the promoted sub-root.
	waitGlobal(5, 17, killedAt, survivors)
	if p := reps[4].Parent(); p != 0 {
		log.Fatalf("chaos: promoted sub-root parent = %d, want global root 0", p)
	}
	if p := reps[5].Parent(); p != 4 {
		log.Fatalf("chaos: west leaf parent = %d, want promoted sub-root 4 (re-parented sideways?)", p)
	}
	if got := reps[4].Removed(); len(got) != 1 || got[0] != 3 {
		log.Fatalf("chaos: removed = %v, want [3]", got)
	}
	log.Print("chaos: phase 2 OK — west survivors re-parented through node 4 into the global tier")
}

// scrape fetches a text exposition page.
func scrape(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatalf("chaos: scrape %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatalf("chaos: scrape %s: %v", url, err)
	}
	return string(body)
}

// counter extracts the value of an unlabeled series (−1 when absent).
func counter(metrics, name string) float64 {
	for _, line := range strings.Split(metrics, "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name+" ")), 64)
		if err == nil {
			return v
		}
	}
	return -1
}
