// Command chaos is the CI chaos smoke: it boots a single-process Layer-7
// enforcement plane (proxy mode, two backends, active health checking),
// replays a deterministic fault schedule that kills and restarts one
// backend, and fails unless the /metrics endpoint proves the plane went
// degraded and recovered — rsa_health_degraded_transitions_total and
// rsa_health_recovered_transitions_total both ≥ 1 — while requests kept
// flowing through the surviving backend.
//
// Usage: chaos [-down 2s] [-up 6s] [-run 10s]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/agreement"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/health"
	"repro/internal/l7"
)

func main() {
	down := flag.Duration("down", 2*time.Second, "when to kill the backend")
	up := flag.Duration("up", 6*time.Second, "when to restart it")
	runFor := flag.Duration("run", 10*time.Second, "total run time before verdict")
	flag.Parse()

	s := agreement.New()
	sp := s.MustAddPrincipal("S", 200)
	a := s.MustAddPrincipal("A", 0)
	b := s.MustAddPrincipal("B", 0)
	s.MustSetAgreement(sp, a, 0.8, 1)
	s.MustSetAgreement(sp, b, 0.2, 1)
	eng, err := core.NewEngine(core.Config{
		Mode: core.Provider, System: s, ProviderPrincipal: sp,
		NumRedirectors: 1, Window: 50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}

	b0, err := l7.NewBackend("127.0.0.1:0", 500)
	if err != nil {
		log.Fatal(err)
	}
	defer b0.Close()
	b1, err := l7.NewBackend("127.0.0.1:0", 500)
	if err != nil {
		log.Fatal(err)
	}
	victimURL := b1.URL()
	victimAddr := strings.TrimPrefix(victimURL, "http://")

	red, err := l7.NewRedirector(l7.RedirectorConfig{
		Engine: eng, Addr: "127.0.0.1:0", Proxy: true,
		Orgs:     map[string]agreement.Principal{"alpha": a, "beta": b},
		Backends: map[agreement.Principal][]string{sp: {b0.URL(), victimURL}},
		Health: &health.Options{
			Interval:         100 * time.Millisecond,
			Timeout:          500 * time.Millisecond,
			FailThreshold:    2,
			SuccessThreshold: 1,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer red.Close()
	log.Printf("chaos: redirector %s, backends %s + %s (victim)", red.URL(), b0.URL(), victimURL)

	// Closed-loop load for the whole run.
	var served, failed atomic.Int64
	stop := make(chan struct{})
	go func() {
		client := &http.Client{Timeout: 2 * time.Second}
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := client.Get(red.URL() + "/svc/alpha/x")
			if err == nil {
				io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					served.Add(1)
					continue
				}
			}
			failed.Add(1)
			time.Sleep(10 * time.Millisecond)
		}
	}()

	// The deterministic fault plan: kill the victim, restart it in place.
	plan := fault.NewSchedule(1).
		CrashBackend(*down, victimAddr).
		RestartBackend(*up, victimAddr)
	log.Print(plan)
	cancel := plan.Play(fault.Hooks{
		BackendDown: func(target string) {
			log.Printf("chaos: killing backend %s", target)
			b1.Close() //nolint:errcheck // fault injection
		},
		BackendUp: func(target string) {
			nb, err := l7.NewBackend(target, 500)
			if err != nil {
				log.Fatalf("chaos: restart backend %s: %v", target, err)
			}
			b1 = nb
			log.Printf("chaos: restarted backend %s", target)
		},
	})
	defer cancel()

	time.Sleep(*runFor)
	close(stop)

	metrics := scrape(red.URL() + "/v1/metrics")
	deg := counter(metrics, "rsa_health_degraded_transitions_total")
	rec := counter(metrics, "rsa_health_recovered_transitions_total")
	log.Printf("chaos: served=%d failed=%d degraded=%g recovered=%g",
		served.Load(), failed.Load(), deg, rec)
	if deg < 1 || rec < 1 {
		log.Fatalf("chaos: metrics never showed degraded->recovered (degraded=%g recovered=%g)", deg, rec)
	}
	if served.Load() == 0 {
		log.Fatal("chaos: no request ever served")
	}
	fmt.Println("chaos smoke OK: plane degraded and recovered under a backend kill/restart")
}

// scrape fetches a text exposition page.
func scrape(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatalf("chaos: scrape %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatalf("chaos: scrape %s: %v", url, err)
	}
	return string(body)
}

// counter extracts the value of an unlabeled series (−1 when absent).
func counter(metrics, name string) float64 {
	for _, line := range strings.Split(metrics, "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name+" ")), 64)
		if err == nil {
			return v
		}
	}
	return -1
}
