// Command benchjson converts `go test -bench` text output (read on stdin)
// into a machine-readable JSON report, optionally embedding a committed
// baseline file so before/after numbers travel together.
//
// Usage:
//
//	go test -run XXX -bench WindowSchedule -benchmem . | benchjson -baseline BENCH_seed.json -o BENCH_lp_fastpath.json
//
// Each benchmark line like
//
//	BenchmarkWindowSchedule-8  8116778  139.6 ns/op  16 B/op  1 allocs/op  1.000 cache_hit_rate
//
// becomes {"name": "WindowSchedule", "iterations": 8116778,
// "ns_per_op": 139.6, "b_per_op": 16, "allocs_per_op": 1,
// "metrics": {"cache_hit_rate": 1}}. Unrecognized lines are ignored, so the
// full `go test` transcript can be piped through unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type benchResult struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BPerOp      float64            `json:"b_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type report struct {
	Baseline json.RawMessage `json:"baseline,omitempty"`
	Results  []benchResult   `json:"results"`
}

// parseLine decodes one benchmark output line, reporting ok=false for
// anything that is not a benchmark result.
func parseLine(line string) (benchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return benchResult{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the -<GOMAXPROCS> suffix go test appends.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	r := benchResult{Name: name, Iterations: iters}
	// The remainder alternates value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchResult{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		case "MB/s":
			// Throughput is a standard column; keep it with the custom metrics.
			fallthrough
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	return r, r.NsPerOp > 0
}

func run(baselinePath, outPath string) error {
	rep := report{Results: []benchResult{}}
	if baselinePath != "" {
		raw, err := os.ReadFile(baselinePath)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		if !json.Valid(raw) {
			return fmt.Errorf("baseline %s: not valid JSON", baselinePath)
		}
		rep.Baseline = json.RawMessage(raw)
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			rep.Results = append(rep.Results, r)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(rep.Results) == 0 {
		return fmt.Errorf("no benchmark results on stdin")
	}

	enc, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if outPath == "" || outPath == "-" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(outPath, enc, 0o644)
}

func main() {
	baseline := flag.String("baseline", "", "JSON file to embed verbatim as the before-numbers baseline")
	out := flag.String("o", "-", "output path ('-' for stdout)")
	flag.Parse()
	if err := run(*baseline, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
