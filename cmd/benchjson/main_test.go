package main

import "testing"

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkWindowSchedule-8  \t 8116778\t       139.6 ns/op\t      16 B/op\t       1 allocs/op")
	if !ok {
		t.Fatal("line rejected")
	}
	if r.Name != "WindowSchedule" || r.Iterations != 8116778 {
		t.Fatalf("parsed %+v", r)
	}
	if r.NsPerOp != 139.6 || r.BPerOp != 16 || r.AllocsPerOp != 1 {
		t.Fatalf("parsed %+v", r)
	}
}

func TestParseLineCustomMetrics(t *testing.T) {
	r, ok := parseLine("BenchmarkWindowScheduleSteadyState \t 2183952\t       560.9 ns/op\t         1.000 cache_hit_rate\t      64 B/op\t       4 allocs/op")
	if !ok {
		t.Fatal("line rejected")
	}
	if r.Metrics["cache_hit_rate"] != 1 {
		t.Fatalf("metrics = %v", r.Metrics)
	}
	if r.AllocsPerOp != 4 {
		t.Fatalf("parsed %+v", r)
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"pkg: repro",
		"PASS",
		"ok  \trepro\t5.1s",
		"BenchmarkBroken notanumber 5 ns/op",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("accepted %q", line)
		}
	}
}
