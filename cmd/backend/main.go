// Command backend runs one capacity-limited backend server — the stand-in
// for the paper's Apache boxes — at Layer 7 (HTTP) or Layer 4 (TCP
// request/response).
//
// Usage:
//
//	backend -layer l7 -addr 127.0.0.1:8081 -capacity 320
//	backend -layer l4 -addr 127.0.0.1:9081 -capacity 320
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/l4"
	"repro/internal/l7"
	"repro/internal/obs"
)

func main() {
	layer := flag.String("layer", "l7", "l7 (HTTP) or l4 (TCP)")
	addr := flag.String("addr", "127.0.0.1:0", "listen address")
	capacity := flag.Float64("capacity", 320, "service capacity in requests/second")
	stats := flag.Duration("stats", 10*time.Second, "stats print interval (0 disables)")
	admin := flag.String("admin", "", "admin listener for /metrics and pprof")
	flag.Parse()

	var served func() int64
	var closeFn func() error
	switch *layer {
	case "l7":
		b, err := l7.NewBackend(*addr, *capacity)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("l7 backend serving at %s (capacity %.0f req/s)\n", b.URL(), *capacity)
		served, closeFn = b.Served, b.Close
	case "l4":
		b, err := l4.NewBackend(*addr, *capacity)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("l4 backend serving at %s (capacity %.0f req/s)\n", b.Addr(), *capacity)
		served, closeFn = b.Served, b.Close
	default:
		log.Fatalf("unknown layer %q (want l7 or l4)", *layer)
	}
	defer closeFn() //nolint:errcheck // process exit

	if *admin != "" {
		h := obs.NewHandler(obs.HandlerConfig{
			Extra: func(w io.Writer) {
				obs.WriteMetric(w, "rsa_backend_served_total", "counter",
					"Requests this backend has completed.", float64(served()))
				obs.WriteMetric(w, "rsa_backend_capacity", "gauge",
					"Configured service capacity in requests/second.", *capacity)
			},
		})
		bound, err := obs.Serve(*admin, h, nil)
		if err != nil {
			log.Fatalf("admin listener %s: %v", *admin, err)
		}
		fmt.Printf("admin endpoints at %s\n", bound)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if *stats <= 0 {
		<-sig
		return
	}
	tick := time.NewTicker(*stats)
	defer tick.Stop()
	last := int64(0)
	for {
		select {
		case <-sig:
			return
		case <-tick.C:
			cur := served()
			fmt.Printf("served %d total (%.1f req/s)\n", cur, float64(cur-last)/stats.Seconds())
			last = cur
		}
	}
}
