// Command experiment runs the paper's experiments end-to-end (in
// deterministic virtual time) and prints paper-vs-measured tables, plus
// optionally the full per-second time series behind each figure.
//
// Usage:
//
//	experiment -id fig9           # one experiment
//	experiment -id all            # everything, in paper order
//	experiment -id fig8 -series   # include the time series (plot input)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
)

func main() {
	id := flag.String("id", "all", "experiment id or 'all' (see -list)")
	series := flag.Bool("series", false, "also dump the per-second rate series as a TSV table")
	out := flag.String("out", "", "directory to write one <id>.tsv per figure (plot input)")
	list := flag.Bool("list", false, "print the experiment ids and exit")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}
	ids := []string{*id}
	if *id == "all" {
		ids = experiments.IDs()
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	failed := false
	for _, one := range ids {
		res, err := experiments.Run(one)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s: %v\n", one, err)
			failed = true
			continue
		}
		fmt.Print(res.Summary())
		if len(res.Violations()) > 0 {
			failed = true
		}
		if *series && res.Recorder != nil {
			if err := res.Recorder.WriteTable(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "experiment %s: %v\n", one, err)
				failed = true
			}
		}
		if *out != "" && res.Recorder != nil {
			path := filepath.Join(*out, one+".tsv")
			f, err := os.Create(path)
			if err == nil {
				err = res.Recorder.WriteTable(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiment %s: write %s: %v\n", one, path, err)
				failed = true
			}
		}
		fmt.Println()
	}
	if failed {
		os.Exit(1)
	}
}
