// Quickstart: express agreements with tickets and currencies, fold them
// into entitlements, and run a few admission windows — the paper's Figure 3
// worked example brought to life.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	// Three principals: A owns 1000 units/s, B owns 1500; A grants B
	// [40%, 60%] of its resources, B grants C [60%, 100%] of its currency
	// (which includes what flows in from A).
	sys := repro.NewSystem()
	a := sys.MustAddPrincipal("A", 1000)
	b := sys.MustAddPrincipal("B", 1500)
	c := sys.MustAddPrincipal("C", 0)
	sys.MustSetAgreement(a, b, 0.4, 0.6)
	sys.MustSetAgreement(b, c, 0.6, 1.0)

	// Value every currency and ticket (paper Figure 3).
	currencies, err := sys.Currencies(100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Currency valuations:")
	for _, cur := range currencies {
		fmt.Printf("  %v\n", cur)
		for _, tk := range cur.Issued {
			fmt.Printf("    %v to %s: face %.0f, real value %.0f units/s\n",
				tk.Kind, sys.Name(tk.Holder), tk.Face, tk.Real)
		}
	}

	// Fold into schedulable entitlements.
	acc, err := sys.SystemAccess()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nEntitlements (mandatory, optional) in units/s:")
	for _, p := range []repro.Principal{a, b, c} {
		fmt.Printf("  %s: (%.0f, %.0f)\n", sys.Name(p), acc.MC[p], acc.OC[p])
	}

	// Drive a redirector by hand for a few 100 ms windows: C's clients
	// submit 150 requests per window against its 114/window mandatory share.
	eng, err := repro.NewEngine(repro.EngineConfig{
		Mode:   repro.Community,
		System: sys,
	})
	if err != nil {
		log.Fatal(err)
	}
	red := eng.NewRedirector(0)
	fmt.Println("\nAdmission against C's entitlement (150 offered per window):")
	for win := 0; win < 6; win++ {
		now := time.Duration(win) * eng.Window()
		red.SetGlobal(red.LocalEstimate(), now)
		if err := red.StartWindow(now); err != nil {
			log.Fatal(err)
		}
		admitted := 0
		for i := 0; i < 150; i++ {
			if d := red.Admit(c); d.Admitted {
				admitted++
			}
		}
		fmt.Printf("  window %d: admitted %3d / 150\n", win, admitted)
	}
	fmt.Println("\n(Early windows admit little until the demand estimator warms up;")
	fmt.Println(" steady state settles at C's entitlement.)")
}
