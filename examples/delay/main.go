// Wide-area delay: two redirectors coordinate through a combining tree with
// a 10-second one-way lag (the paper's Figure 8 scenario). The output shows
// the conservative half-mandatory start, the competition window while the
// lag hides A's arrival, and enforcement once the global view catches up.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	sys := repro.NewSystem()
	s := sys.MustAddPrincipal("S", 320)
	a := sys.MustAddPrincipal("A", 0)
	b := sys.MustAddPrincipal("B", 0)
	sys.MustSetAgreement(s, a, 0.8, 1.0)
	sys.MustSetAgreement(s, b, 0.2, 1.0)

	eng, err := repro.NewEngine(repro.EngineConfig{
		Mode:              repro.Provider,
		System:            sys,
		ProviderPrincipal: s,
		NumRedirectors:    2,
	})
	if err != nil {
		log.Fatal(err)
	}
	sm, err := sim.New(sim.Config{
		Engine:      eng,
		Redirectors: 2,
		Servers:     []sim.ServerSpec{{Owner: s, Capacity: 320, Count: 1}},
		TreeDelay:   10 * time.Second, // the deliberately large WAN lag
		Names:       []string{"S", "A", "B"},
		MaxBacklog:  160,
	})
	if err != nil {
		log.Fatal(err)
	}

	// B's single client reaches the leaf redirector: it starts blind and
	// must behave conservatively for one lag period.
	bClient := sm.NewClient(1, workload.Config{Principal: int(b), Rate: workload.RateL7})
	a1 := sm.NewClient(0, workload.Config{Principal: int(a), Rate: workload.RateL7})
	a2 := sm.NewClient(0, workload.Config{Principal: int(a), Rate: workload.RateL7})

	bClient.SetActive(true)
	sm.At(40*time.Second, func() { a1.SetActive(true); a2.SetActive(true) })
	sm.At(100*time.Second, func() { a1.SetActive(false); a2.SetActive(false) })
	sm.Run(140 * time.Second)

	phases := []metrics.Phase{
		{Name: "conservative", From: 2 * time.Second, To: 9 * time.Second},
		{Name: "B alone", From: 14 * time.Second, To: 39 * time.Second},
		{Name: "lag/compete", From: 42 * time.Second, To: 49 * time.Second},
		{Name: "enforced", From: 56 * time.Second, To: 99 * time.Second},
		{Name: "B again", From: 115 * time.Second, To: 139 * time.Second},
	}
	fmt.Println("Processed requests/second by phase (10 s combining-tree lag):")
	fmt.Print(metrics.FormatPhaseMeans(sm.Recorder.PhaseMeans(phases)))
	fmt.Println("\nPer-second series (note the 10 s transitions):")
	if err := sm.Recorder.WriteTable(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
