// Server-side resource containers for long-lived requests: the orthogonal
// support the paper (§2, §6) says is needed to extend agreement enforcement
// beyond short web requests — media streams, batch jobs. Shares are derived
// from the same agreement graph the redirectors enforce at the edge.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/container"
	"repro/internal/vclock"
)

func main() {
	// The Figure 9 community: A and B own 320-unit/s servers, B grants A
	// half of its server. B's server therefore runs two containers whose
	// shares come straight from the folded entitlements.
	sys := repro.NewSystem()
	a := sys.MustAddPrincipal("A", 320)
	b := sys.MustAddPrincipal("B", 320)
	sys.MustSetAgreement(b, a, 0.5, 0.5)
	acc, err := sys.SystemAccess()
	if err != nil {
		log.Fatal(err)
	}
	shares := container.SharesFromAccess(acc.MI, int(b), sys.Capacity(b))
	fmt.Printf("container shares on B's server: A %.0f%%, B %.0f%%\n\n",
		100*shares[a], 100*shares[b])

	clock := vclock.New()
	m := container.NewManager(clock, 320, 100*time.Millisecond)
	classA, err := m.AddClass("A", shares[a])
	if err != nil {
		log.Fatal(err)
	}
	classB, err := m.AddClass("B", shares[b])
	if err != nil {
		log.Fatal(err)
	}

	// A long-running job per class, plus a burst of B batch jobs later.
	report := func(label string) {
		fmt.Printf("%-22s A consumed %6.0f units, B consumed %6.0f units\n",
			label, classA.ConsumedWork, classB.ConsumedWork)
	}
	if _, err := m.Submit(classA, 1e9, nil); err != nil {
		log.Fatal(err)
	}
	if _, err := m.Submit(classB, 1e9, nil); err != nil {
		log.Fatal(err)
	}
	clock.RunUntil(10 * time.Second)
	report("both busy (10s):")

	// A batch of five 160-unit jobs lands in B's class: they complete at
	// B's guaranteed 160 units/s (processor-shared, so they finish
	// together) while A's long job keeps saturating its own share.
	done := 0
	for i := 0; i < 5; i++ {
		if _, err := m.Submit(classB, 160, func(at time.Duration) {
			done++
			fmt.Printf("  batch job %d finished at t=%v\n", done, at)
		}); err != nil {
			log.Fatal(err)
		}
	}
	clock.RunUntil(20 * time.Second)
	report("after B's batch (20s):")
	fmt.Printf("\nA's long job held exactly its 50%% share throughout: %.0f%% of capacity·time\n",
		100*classA.ConsumedWork/(320*20))
}
