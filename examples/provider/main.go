// Provider income maximization: a service provider with two servers and
// two customers at different price points (the paper's Figure 10 scenario).
// The scheduler pins the cheaper customer to its mandatory share whenever
// the higher payer has demand.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	sys := repro.NewSystem()
	s := sys.MustAddPrincipal("S", 640) // provider: two 320 req/s servers
	a := sys.MustAddPrincipal("A", 0)
	b := sys.MustAddPrincipal("B", 0)
	sys.MustSetAgreement(s, a, 0.8, 1.0) // A: 80% guaranteed, pays 2/req extra
	sys.MustSetAgreement(s, b, 0.2, 1.0) // B: 20% guaranteed, pays 1/req extra

	eng, err := repro.NewEngine(repro.EngineConfig{
		Mode:              repro.Provider,
		System:            sys,
		ProviderPrincipal: s,
		Prices:            map[repro.Principal]float64{a: 2, b: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	sm, err := sim.New(sim.Config{
		Engine:      eng,
		Redirectors: 1,
		Servers:     []sim.ServerSpec{{Owner: s, Capacity: 320, Count: 2}},
		Names:       []string{"S", "A", "B"},
		MaxBacklog:  160,
	})
	if err != nil {
		log.Fatal(err)
	}

	a1 := sm.NewClient(0, workload.Config{Principal: int(a), Rate: workload.RateL4})
	a2 := sm.NewClient(0, workload.Config{Principal: int(a), Rate: workload.RateL4})
	b1 := sm.NewClient(0, workload.Config{Principal: int(b), Rate: workload.RateL4})
	a1.SetActive(true)
	a2.SetActive(true)
	b1.SetActive(true)
	sm.At(30*time.Second, func() { a1.SetActive(false); a2.SetActive(false) })
	sm.Run(60 * time.Second)

	phases := []metrics.Phase{
		{Name: "contended", From: 8 * time.Second, To: 29 * time.Second},
		{Name: "A idle", From: 38 * time.Second, To: 59 * time.Second},
	}
	fmt.Println("Processed requests/second by phase (provider, price A > price B):")
	fmt.Print(metrics.FormatPhaseMeans(sm.Recorder.PhaseMeans(phases)))

	// Income estimate from the contended phase: A beyond its mandatory
	// share earns 2/request; B is pinned to mandatory and earns nothing.
	rateA := sm.Recorder.MeanRateBetween(int(a), 8*time.Second, 29*time.Second)
	rateB := sm.Recorder.MeanRateBetween(int(b), 8*time.Second, 29*time.Second)
	income := 2*(rateA-512) + 1*(rateB-128)
	fmt.Printf("\ncontended-phase income above mandatory: %.1f/s", income)
	fmt.Printf(" (A %.0f req/s of its 512 guarantee, B pinned to %.0f)\n", rateA, rateB)
}
