// Live Layer-7 demo on real sockets: a capacity-limited backend, an HTTP
// redirector enforcing a 3:1 agreement split, and two organizations'
// clients hammering it. Runs for a few wall-clock seconds and prints the
// achieved split.
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/agreement"
	"repro/internal/l7"
)

func main() {
	sys := repro.NewSystem()
	s := sys.MustAddPrincipal("S", 200)
	alpha := sys.MustAddPrincipal("alpha", 0)
	beta := sys.MustAddPrincipal("beta", 0)
	sys.MustSetAgreement(s, alpha, 0.75, 1.0)
	sys.MustSetAgreement(s, beta, 0.25, 1.0)

	eng, err := repro.NewEngine(repro.EngineConfig{
		Mode:              repro.Provider,
		System:            sys,
		ProviderPrincipal: s,
		Window:            20 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}

	backend, err := l7.NewBackend("127.0.0.1:0", 300)
	if err != nil {
		log.Fatal(err)
	}
	defer backend.Close()

	red, err := l7.NewRedirector(l7.RedirectorConfig{
		Engine: eng,
		Addr:   "127.0.0.1:0",
		Orgs:   map[string]agreement.Principal{"alpha": alpha, "beta": beta},
		Backends: map[agreement.Principal][]string{
			s: {backend.URL()},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer red.Close()
	fmt.Printf("backend %s, redirector %s\n", backend.URL(), red.URL())
	fmt.Println("agreements: alpha [0.75,1.0], beta [0.25,1.0] of 200 req/s")

	var stop atomic.Bool
	var gotAlpha, gotBeta int64
	var wg sync.WaitGroup
	hammer := func(counter *int64, org string) {
		for w := 0; w < 3; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c := l7.NewClient()
				c.RetryDelay = 5 * time.Millisecond
				for !stop.Load() {
					if _, err := c.Fetch(red.URL() + "/svc/" + org + "/page?size=512"); err == nil {
						atomic.AddInt64(counter, 1)
					}
				}
			}()
		}
	}
	hammer(&gotAlpha, "alpha")
	hammer(&gotBeta, "beta")

	const warm, measure = time.Second, 3 * time.Second
	time.Sleep(warm)
	a0, b0 := atomic.LoadInt64(&gotAlpha), atomic.LoadInt64(&gotBeta)
	time.Sleep(measure)
	a1, b1 := atomic.LoadInt64(&gotAlpha), atomic.LoadInt64(&gotBeta)
	stop.Store(true)
	wg.Wait()

	rateA := float64(a1-a0) / measure.Seconds()
	rateB := float64(b1-b0) / measure.Seconds()
	fmt.Printf("\nachieved: alpha %.1f req/s, beta %.1f req/s (ratio %.2f, want ≈3)\n",
		rateA, rateB, rateA/rateB)
	adm, rej := red.Stats()
	fmt.Printf("redirector admitted %d, self-redirected %d\n", adm, rej)
}
