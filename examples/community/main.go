// Community sharing: two organizations pool their servers under a
// [0.5, 0.5] agreement (the paper's Figure 9 scenario) and the simulation
// shows the aggregate pool following A's client population up and down.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	sys := repro.NewSystem()
	a := sys.MustAddPrincipal("A", 320)
	b := sys.MustAddPrincipal("B", 320)
	// B lets A use exactly half of its server, guaranteed.
	sys.MustSetAgreement(b, a, 0.5, 0.5)

	eng, err := repro.NewEngine(repro.EngineConfig{
		Mode:           repro.Community,
		System:         sys,
		NumRedirectors: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	var _ *core.Engine = eng // the facade returns the core engine directly

	sm, err := sim.New(sim.Config{
		Engine:      eng,
		Redirectors: 1,
		Servers: []sim.ServerSpec{
			{Owner: a, Capacity: 320, Count: 1},
			{Owner: b, Capacity: 320, Count: 1},
		},
		Names:      []string{"A", "B"},
		MaxBacklog: 160,
	})
	if err != nil {
		log.Fatal(err)
	}

	a1 := sm.NewClient(0, workload.Config{Principal: int(a), Rate: workload.RateL4})
	a2 := sm.NewClient(0, workload.Config{Principal: int(a), Rate: workload.RateL4})
	b1 := sm.NewClient(0, workload.Config{Principal: int(b), Rate: workload.RateL4})

	a1.SetActive(true)
	a2.SetActive(true)
	b1.SetActive(true)
	sm.At(30*time.Second, func() { a1.SetActive(false); a2.SetActive(false) })
	sm.At(60*time.Second, func() { a1.SetActive(true) })
	sm.Run(90 * time.Second)

	phases := []metrics.Phase{
		{Name: "A:2 clients", From: 8 * time.Second, To: 29 * time.Second},
		{Name: "A:idle", From: 38 * time.Second, To: 59 * time.Second},
		{Name: "A:1 client", From: 68 * time.Second, To: 89 * time.Second},
	}
	fmt.Println("Processed requests/second by phase (community, B shares 50% with A):")
	fmt.Print(metrics.FormatPhaseMeans(sm.Recorder.PhaseMeans(phases)))
	fmt.Println("\nFull per-second series:")
	if err := sm.Recorder.WriteTable(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
