package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// FlightConfig parameterizes a FlightRecorder.
type FlightConfig struct {
	// Max bounds retained captures (oldest evicted; default 4).
	Max int
	// Spans bounds the slowest spans frozen per capture (default 64).
	Spans int
	// Windows bounds the window trace records frozen per capture
	// (default 32).
	Windows int
	// SLO, when positive, arms the latency trigger: any finished span
	// slower than SLO fires a capture (at most one per window).
	SLO time.Duration
	// Dir, when non-empty, additionally writes each capture to
	// flight-<seq>-<reason>.json under it.
	Dir string
	// Logger, when non-nil, gets one warn line per capture.
	Logger *Logger
}

// Capture is one frozen flight-recorder snapshot: the spans and window
// records surrounding an SLO breach or a settled under-floor window, plus
// the admission-plane counters at freeze time.
type Capture struct {
	// Seq numbers captures per recorder, starting at 1.
	Seq uint64 `json:"seq"`
	// AtUnixNanos is the freeze wall-clock time.
	AtUnixNanos int64 `json:"at_unix_ns"`
	// Reason is "under_floor" or "slo_breach".
	Reason string `json:"reason"`
	// Window is the window sequence that tripped the trigger.
	Window uint64 `json:"window"`
	// Principal names the under-floor principal or the breaching span's
	// principal.
	Principal string `json:"principal,omitempty"`
	// Trigger is the breaching span, when the trigger was a span.
	Trigger *Span `json:"trigger,omitempty"`
	// Spans holds the slowest spans in the ring at freeze time,
	// slowest first.
	Spans []Span `json:"spans"`
	// Windows holds the most recent window trace records at freeze time.
	Windows []Record `json:"windows"`
	// Counters snapshots the bound counter sources (admission shard
	// counters and the like).
	Counters map[string]float64 `json:"counters,omitempty"`
}

// FlightRecorder freezes bounded forensic snapshots when the system misses
// its marks: a settled window that under-serves a floor, or a request span
// breaching the configured SLO. Triggers fire at most once per window so a
// bad window can't flood the capture buffer. All methods are safe for
// concurrent use; a nil *FlightRecorder is valid and inert.
type FlightRecorder struct {
	cfg FlightConfig

	tracer   *Tracer
	windows  []*Ring
	counters func() map[string]float64

	lastWindow atomic.Uint64 // highest window a capture fired for, +1
	seq        atomic.Uint64
	triggers   atomic.Uint64

	mu       sync.Mutex
	captures []*Capture
}

// NewFlightRecorder builds a recorder; bind data sources with BindTracer,
// BindWindows, BindAuditor and SetCounters before traffic starts.
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder {
	if cfg.Max <= 0 {
		cfg.Max = 4
	}
	if cfg.Spans <= 0 {
		cfg.Spans = 64
	}
	if cfg.Windows <= 0 {
		cfg.Windows = 32
	}
	return &FlightRecorder{cfg: cfg}
}

// BindTracer attaches the span source and arms the SLO trigger on its
// Finish path.
func (f *FlightRecorder) BindTracer(tr *Tracer) {
	if f == nil || tr == nil {
		return
	}
	f.tracer = tr
	tr.flight = f
}

// BindWindows attaches the window trace rings whose recent records each
// capture freezes.
func (f *FlightRecorder) BindWindows(rings ...*Ring) {
	if f == nil {
		return
	}
	for _, r := range rings {
		if r != nil {
			f.windows = append(f.windows, r)
		}
	}
}

// BindAuditor arms the under-floor trigger: a settled window (global state
// present, non-conservative) that under-serves a principal's effective
// floor freezes a capture.
func (f *FlightRecorder) BindAuditor(a *Auditor) {
	if f == nil || a == nil {
		return
	}
	a.setOnUnderFloor(func(rec *Record, principal int) {
		if !rec.HaveGlobal || rec.Conservative {
			return
		}
		name := fmt.Sprintf("p%d", principal)
		if principal >= 0 && principal < len(a.names) {
			name = a.names[principal]
		}
		f.Trigger("under_floor", rec.Window, name, nil)
	})
}

// SetCounters installs the counter snapshot source included in each
// capture (typically the admission plane's per-shard counters).
func (f *FlightRecorder) SetCounters(fn func() map[string]float64) {
	if f == nil {
		return
	}
	f.counters = fn
}

// noteSpan is the Tracer.Finish hook: it fires the SLO trigger for spans
// slower than the configured threshold.
func (f *FlightRecorder) noteSpan(s *Span, d time.Duration) {
	if f.cfg.SLO <= 0 || d < f.cfg.SLO {
		return
	}
	c := *s
	c.tr = nil
	f.Trigger("slo_breach", s.Window, s.Principal, &c)
}

// Trigger freezes a capture for the given window unless one already fired
// for it (exactly-once-per-window, enforced with a CAS loop so concurrent
// triggers on the same window collapse to one capture). It reports whether
// a capture was taken. Exposed for tests and operator tooling.
func (f *FlightRecorder) Trigger(reason string, window uint64, principal string, trigger *Span) bool {
	if f == nil {
		return false
	}
	for {
		last := f.lastWindow.Load()
		if window+1 <= last {
			return false
		}
		if f.lastWindow.CompareAndSwap(last, window+1) {
			break
		}
	}
	f.triggers.Add(1)
	f.capture(reason, window, principal, trigger)
	return true
}

// Triggers reports how many captures have fired.
func (f *FlightRecorder) Triggers() uint64 {
	if f == nil {
		return 0
	}
	return f.triggers.Load()
}

func (f *FlightRecorder) capture(reason string, window uint64, principal string, trigger *Span) {
	cap := &Capture{
		Seq:         f.seq.Add(1),
		AtUnixNanos: time.Now().UnixNano(),
		Reason:      reason,
		Window:      window,
		Principal:   principal,
		Trigger:     trigger,
	}
	if tr := f.tracer; tr != nil {
		spans := tr.Ring().Snapshot(tr.Ring().Depth())
		sort.Slice(spans, func(i, j int) bool { return spans[i].TotalNanos > spans[j].TotalNanos })
		if len(spans) > f.cfg.Spans {
			spans = spans[:f.cfg.Spans]
		}
		cap.Spans = spans
	}
	for _, r := range f.windows {
		cap.Windows = append(cap.Windows, r.Snapshot(f.cfg.Windows)...)
	}
	if f.counters != nil {
		cap.Counters = f.counters()
	}

	f.mu.Lock()
	f.captures = append(f.captures, cap)
	if len(f.captures) > f.cfg.Max {
		f.captures = f.captures[len(f.captures)-f.cfg.Max:]
	}
	f.mu.Unlock()

	if f.cfg.Logger != nil {
		f.cfg.Logger.Warn("flight capture frozen",
			"seq", cap.Seq, "reason", reason, "window", window, "principal", principal,
			"spans", len(cap.Spans), "windows", len(cap.Windows))
	}
	if f.cfg.Dir != "" {
		f.persist(cap)
	}
}

func (f *FlightRecorder) persist(c *Capture) error {
	if err := os.MkdirAll(f.cfg.Dir, 0o755); err != nil {
		if f.cfg.Logger != nil {
			f.cfg.Logger.Error("flight capture dir", "err", err)
		}
		return err
	}
	path := filepath.Join(f.cfg.Dir, fmt.Sprintf("flight-%d-%s.json", c.Seq, c.Reason))
	b, err := json.MarshalIndent(c, "", "  ")
	if err == nil {
		err = os.WriteFile(path, b, 0o644)
	}
	if err != nil && f.cfg.Logger != nil {
		f.cfg.Logger.Error("flight capture persist", "path", path, "err", err)
	}
	return err
}

// Flush writes every retained capture to the configured Dir and reports how
// many landed on disk. File names are derived from each capture's sequence
// number, so a flush is idempotent: captures already written at freeze time
// are rewritten in place, not duplicated. Intended for graceful shutdown —
// a SIGTERM handler calls Flush so forensic state armed in memory survives
// the process. A nil recorder, an empty Dir, or zero captures flush 0.
func (f *FlightRecorder) Flush() int {
	if f == nil || f.cfg.Dir == "" {
		return 0
	}
	f.mu.Lock()
	caps := make([]*Capture, len(f.captures))
	copy(caps, f.captures)
	f.mu.Unlock()
	written := 0
	for _, c := range caps {
		if f.persist(c) == nil {
			written++
		}
	}
	return written
}

// Captures returns up to max retained captures, newest first (all when
// max ≤ 0).
func (f *FlightRecorder) Captures(max int) []*Capture {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*Capture, 0, len(f.captures))
	for i := len(f.captures) - 1; i >= 0; i-- {
		out = append(out, f.captures[i])
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out
}
