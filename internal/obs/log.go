package obs

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"
)

// Level orders log severities.
type Level int32

// Severity levels, in ascending order.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
	// LevelOff suppresses everything (Nop loggers).
	LevelOff
)

// String names the level for logfmt output.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "off"
	}
}

// Logger is a small leveled structured logger emitting logfmt lines
// (`t=<RFC3339> level=warn comp=sched msg="..." key=value ...`). It replaces
// the repo's ad-hoc log.Printf calls so enforcement events carry machine-
// greppable fields. Loggers derived with With share one sink, so lines from
// different components interleave without tearing. A nil *Logger falls back
// to Default().
type Logger struct {
	sink *logSink
	comp string
}

type logSink struct {
	mu  sync.Mutex
	w   io.Writer
	min Level
	now func() time.Time
}

// NewLogger builds a logger writing lines at or above min to w.
func NewLogger(w io.Writer, min Level) *Logger {
	return &Logger{sink: &logSink{w: w, min: min, now: time.Now}}
}

// Nop returns a logger that discards everything.
func Nop() *Logger { return NewLogger(io.Discard, LevelOff) }

var (
	defaultOnce sync.Once
	defaultLog  *Logger
)

// Default returns the process-wide fallback logger (stderr, info level).
func Default() *Logger {
	defaultOnce.Do(func() { defaultLog = NewLogger(os.Stderr, LevelInfo) })
	return defaultLog
}

// With returns a logger tagged with a component name, sharing this logger's
// sink and level.
func (l *Logger) With(component string) *Logger {
	if l == nil {
		l = Default()
	}
	return &Logger{sink: l.sink, comp: component}
}

// Enabled reports whether lines at lvl would be emitted.
func (l *Logger) Enabled(lvl Level) bool {
	if l == nil {
		l = Default()
	}
	return lvl >= l.sink.min && l.sink.min < LevelOff
}

// Debug logs at debug level. kv alternates keys and values.
func (l *Logger) Debug(msg string, kv ...interface{}) { l.log(LevelDebug, msg, kv) }

// Info logs at info level.
func (l *Logger) Info(msg string, kv ...interface{}) { l.log(LevelInfo, msg, kv) }

// Warn logs at warn level.
func (l *Logger) Warn(msg string, kv ...interface{}) { l.log(LevelWarn, msg, kv) }

// Error logs at error level.
func (l *Logger) Error(msg string, kv ...interface{}) { l.log(LevelError, msg, kv) }

func (l *Logger) log(lvl Level, msg string, kv []interface{}) {
	if l == nil {
		l = Default()
	}
	if !l.Enabled(lvl) {
		return
	}
	var sb strings.Builder
	sb.Grow(96)
	sb.WriteString("t=")
	sb.WriteString(l.sink.now().UTC().Format(time.RFC3339Nano))
	sb.WriteString(" level=")
	sb.WriteString(lvl.String())
	if l.comp != "" {
		sb.WriteString(" comp=")
		sb.WriteString(l.comp)
	}
	sb.WriteString(" msg=")
	appendLogValue(&sb, msg)
	for i := 0; i+1 < len(kv); i += 2 {
		sb.WriteByte(' ')
		fmt.Fprintf(&sb, "%v", kv[i])
		sb.WriteByte('=')
		appendLogValue(&sb, fmt.Sprintf("%v", kv[i+1]))
	}
	if len(kv)%2 == 1 {
		sb.WriteString(" !MISSING-VALUE=")
		appendLogValue(&sb, fmt.Sprintf("%v", kv[len(kv)-1]))
	}
	sb.WriteByte('\n')
	l.sink.mu.Lock()
	_, _ = io.WriteString(l.sink.w, sb.String())
	l.sink.mu.Unlock()
}

// appendLogValue writes v, quoting it when it contains logfmt-breaking
// characters.
func appendLogValue(sb *strings.Builder, v string) {
	if strings.ContainsAny(v, " \"=\n\t") {
		fmt.Fprintf(sb, "%q", v)
		return
	}
	if v == "" {
		sb.WriteString(`""`)
		return
	}
	sb.WriteString(v)
}
