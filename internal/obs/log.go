package obs

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders log severities.
type Level int32

// Severity levels, in ascending order.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
	// LevelOff suppresses everything (Nop loggers).
	LevelOff
)

// String names the level for logfmt output.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "off"
	}
}

// Logger is a small leveled structured logger emitting logfmt lines
// (`t=<RFC3339> level=warn comp=sched msg="..." key=value ...`). It replaces
// the repo's ad-hoc log.Printf calls so enforcement events carry machine-
// greppable fields. Loggers derived with With share one sink, so lines from
// different components interleave without tearing. A nil *Logger falls back
// to Default().
type Logger struct {
	sink *logSink
	comp string
}

type logSink struct {
	mu  sync.Mutex
	w   io.Writer
	min Level
	now func() time.Time
}

// NewLogger builds a logger writing lines at or above min to w.
func NewLogger(w io.Writer, min Level) *Logger {
	return &Logger{sink: &logSink{w: w, min: min, now: time.Now}}
}

// Nop returns a logger that discards everything.
func Nop() *Logger { return NewLogger(io.Discard, LevelOff) }

var (
	defaultOnce sync.Once
	defaultLog  *Logger
)

// Default returns the process-wide fallback logger (stderr, info level).
func Default() *Logger {
	defaultOnce.Do(func() { defaultLog = NewLogger(os.Stderr, LevelInfo) })
	return defaultLog
}

// With returns a logger tagged with a component name, sharing this logger's
// sink and level.
func (l *Logger) With(component string) *Logger {
	if l == nil {
		l = Default()
	}
	return &Logger{sink: l.sink, comp: component}
}

// Enabled reports whether lines at lvl would be emitted.
func (l *Logger) Enabled(lvl Level) bool {
	if l == nil {
		l = Default()
	}
	return lvl >= l.sink.min && l.sink.min < LevelOff
}

// Debug logs at debug level. kv alternates keys and values.
func (l *Logger) Debug(msg string, kv ...interface{}) { l.log(LevelDebug, msg, kv) }

// Info logs at info level.
func (l *Logger) Info(msg string, kv ...interface{}) { l.log(LevelInfo, msg, kv) }

// Warn logs at warn level.
func (l *Logger) Warn(msg string, kv ...interface{}) { l.log(LevelWarn, msg, kv) }

// Error logs at error level.
func (l *Logger) Error(msg string, kv ...interface{}) { l.log(LevelError, msg, kv) }

func (l *Logger) log(lvl Level, msg string, kv []interface{}) {
	if l == nil {
		l = Default()
	}
	if !l.Enabled(lvl) {
		return
	}
	var sb strings.Builder
	sb.Grow(96)
	sb.WriteString("t=")
	sb.WriteString(l.sink.now().UTC().Format(time.RFC3339Nano))
	sb.WriteString(" level=")
	sb.WriteString(lvl.String())
	if l.comp != "" {
		sb.WriteString(" comp=")
		sb.WriteString(l.comp)
	}
	sb.WriteString(" msg=")
	appendLogValue(&sb, msg)
	for i := 0; i+1 < len(kv); i += 2 {
		sb.WriteByte(' ')
		fmt.Fprintf(&sb, "%v", kv[i])
		sb.WriteByte('=')
		appendLogValue(&sb, fmt.Sprintf("%v", kv[i+1]))
	}
	if len(kv)%2 == 1 {
		sb.WriteString(" !MISSING-VALUE=")
		appendLogValue(&sb, fmt.Sprintf("%v", kv[len(kv)-1]))
	}
	sb.WriteByte('\n')
	l.sink.mu.Lock()
	_, _ = io.WriteString(l.sink.w, sb.String())
	l.sink.mu.Unlock()
}

// RateLimit is a token-bucket gate for hot-path log lines: at most burst
// lines immediately, refilled one token per interval. It replaces the
// once-per-process sync.Once suppression pattern — a recurring condition
// logs once per interval instead of once per lifetime, and each emitted
// line reports how many occurrences the gate swallowed since the last one.
// Allow is a few atomic operations with no locks or allocations; a nil
// *RateLimit always allows.
type RateLimit struct {
	interval   int64 // nanoseconds per refilled token
	burst      int64
	tokens     atomic.Int64 // tokens × rlScale, time-scaled
	last       atomic.Int64 // last refill time, unix nanos
	suppressed atomic.Int64
}

// NewRateLimit builds a limiter allowing burst lines immediately and one
// more per interval after that. burst < 1 is treated as 1.
func NewRateLimit(interval time.Duration, burst int) *RateLimit {
	if interval <= 0 {
		interval = time.Second
	}
	if burst < 1 {
		burst = 1
	}
	rl := &RateLimit{interval: int64(interval), burst: int64(burst)}
	rl.tokens.Store(int64(burst))
	rl.last.Store(time.Now().UnixNano())
	return rl
}

// Allow reports whether a line may be emitted now and, when it may, how
// many prior calls were suppressed since the last allowed one.
func (rl *RateLimit) Allow() (ok bool, suppressed int64) {
	if rl == nil {
		return true, 0
	}
	now := time.Now().UnixNano()
	last := rl.last.Load()
	if refill := (now - last) / rl.interval; refill > 0 {
		if rl.last.CompareAndSwap(last, last+refill*rl.interval) {
			// One winner credits the elapsed tokens, capped at burst.
			for {
				cur := rl.tokens.Load()
				next := cur + refill
				if next > rl.burst {
					next = rl.burst
				}
				if cur == next || rl.tokens.CompareAndSwap(cur, next) {
					break
				}
			}
		}
	}
	for {
		cur := rl.tokens.Load()
		if cur <= 0 {
			rl.suppressed.Add(1)
			return false, 0
		}
		if rl.tokens.CompareAndSwap(cur, cur-1) {
			return true, rl.suppressed.Swap(0)
		}
	}
}

// Suppressed reports calls swallowed since the last allowed line.
func (rl *RateLimit) Suppressed() int64 {
	if rl == nil {
		return 0
	}
	return rl.suppressed.Load()
}

// WarnRate logs at warn level through a rate limiter: when the limiter
// denies, the line is dropped (and counted); when it allows after drops,
// a `suppressed=<n>` field is appended so operators can see the true
// occurrence rate. A nil limiter degrades to plain Warn.
func (l *Logger) WarnRate(rl *RateLimit, msg string, kv ...interface{}) {
	ok, suppressed := rl.Allow()
	if !ok {
		return
	}
	if suppressed > 0 {
		kv = append(kv, "suppressed", suppressed)
	}
	l.log(LevelWarn, msg, kv)
}

// appendLogValue writes v, quoting it when it contains logfmt-breaking
// characters.
func appendLogValue(sb *strings.Builder, v string) {
	if strings.ContainsAny(v, " \"=\n\t") {
		fmt.Fprintf(sb, "%q", v)
		return
	}
	if v == "" {
		sb.WriteString(`""`)
		return
	}
	sb.WriteString(v)
}
