package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSpanLifecycle walks one traced request through every stamp and checks
// the committed span's fields.
func TestSpanLifecycle(t *testing.T) {
	tr := NewTracer(TraceConfig{SampleEvery: 1}, 3)
	tr.StartWindow(7, 2)
	sp := tr.Begin("alpha")
	if sp == nil {
		t.Fatal("Begin returned nil with sampling on")
	}
	sp.StampAdmit(VerdictAdmit, 5)
	sp.AddPark(3 * time.Millisecond)
	sp.StampBackend()
	sp.StampDial()
	sp.StampFirstByte()
	id := sp.Finish()
	if id == 0 {
		t.Fatal("span sampled out at SampleEvery=1")
	}
	spans := tr.Ring().Snapshot(0)
	if len(spans) != 1 {
		t.Fatalf("ring holds %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.ID != id {
		t.Errorf("ID = %d, want %d", s.ID, id)
	}
	if s.Redirector != 3 || s.Window != 7 || s.ConfigVersion != 2 {
		t.Errorf("tags = (%d, %d, %d), want (3, 7, 2)", s.Redirector, s.Window, s.ConfigVersion)
	}
	if s.Principal != "alpha" || s.Shard != 5 || s.Verdict != VerdictAdmit {
		t.Errorf("identity = (%q, %d, %v)", s.Principal, s.Shard, s.Verdict)
	}
	if s.ParkNanos != int64(3*time.Millisecond) || s.Reparks != 1 {
		t.Errorf("park = (%d, %d), want (3ms, 1)", s.ParkNanos, s.Reparks)
	}
	if s.AdmitNanos <= 0 || s.TotalNanos < s.FirstByteNanos || s.FirstByteNanos < s.DialNanos {
		t.Errorf("phase order violated: admit=%d dial=%d first_byte=%d total=%d",
			s.AdmitNanos, s.DialNanos, s.FirstByteNanos, s.TotalNanos)
	}
	begun, kept, dropped := tr.Counts()
	if begun != 1 || kept != 1 || dropped != 0 {
		t.Errorf("counts = (%d, %d, %d), want (1, 1, 0)", begun, kept, dropped)
	}
}

// TestSpanNilSafety exercises every stamp on a nil span (disabled tracer)
// and on a nil tracer.
func TestSpanNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	tr.StartWindow(1, 1)
	tr.ObserveDial(time.Millisecond)
	sp := tr.Begin("alpha")
	if sp != nil {
		t.Fatal("nil tracer handed out a span")
	}
	sp.StampAdmit(VerdictAdmit, 0)
	sp.SetVerdict(VerdictDrop)
	sp.AddPark(time.Millisecond)
	sp.StampBackend()
	sp.StampDial()
	sp.StampFirstByte()
	if id := sp.Finish(); id != 0 {
		t.Errorf("nil span finished with id %d", id)
	}

	disabled := NewTracer(TraceConfig{}, 0)
	if disabled.Enabled() {
		t.Error("zero-config tracer reports enabled")
	}
	if sp := disabled.Begin("alpha"); sp != nil {
		t.Error("disabled tracer handed out a span")
	}
}

// TestTracerTailKeeper drives a window where only the slowest K spans must
// survive with head sampling off.
func TestTracerTailKeeper(t *testing.T) {
	tr := NewTracer(TraceConfig{SlowestK: 2}, 0)
	tr.StartWindow(1, 1)
	// A streaming top-K keeps everything until it fills, then only spans
	// slower than the K-th slowest seen so far.
	for _, c := range []struct {
		d    int64
		keep bool
	}{
		{50, true},  // keeper not yet full
		{10, true},  // keeper not yet full: {10, 50}
		{90, true},  // evicts 10: {50, 90}
		{20, false}, // under the kept tail
		{70, true},  // evicts 50: {70, 90}
		{95, true},  // evicts 70: {90, 95}
		{80, false}, // under the kept tail
	} {
		if got := tr.tailOffer(c.d); got != c.keep {
			t.Errorf("tailOffer(%d) = %v, want %v", c.d, got, c.keep)
		}
	}
	// A new window resets the keeper.
	tr.StartWindow(2, 1)
	if !tr.tailOffer(1) {
		t.Error("tailOffer rejected the first span of a fresh window")
	}
}

// TestSpanRingConcurrent hammers one tracer from concurrent writers while a
// scraper snapshots the ring — the -race CI step runs this; the assertions
// check the ticket discipline (every snapshot span is internally
// consistent).
func TestSpanRingConcurrent(t *testing.T) {
	tr := NewTracer(TraceConfig{SampleEvery: 1, SlowestK: 4, Depth: 64}, 1)
	tr.StartWindow(1, 1)

	const writers = 8
	const perWriter = 500
	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, sp := range tr.Ring().Snapshot(0) {
				if sp.ID == 0 {
					t.Error("snapshot returned an uncommitted span")
					return
				}
				if sp.TotalNanos < 0 || sp.Principal == "" {
					t.Errorf("torn span: %+v", sp)
					return
				}
			}
			tr.Ring().Len()
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("w%d", w)
			for i := 0; i < perWriter; i++ {
				sp := tr.Begin(name)
				if sp == nil {
					continue // pool momentarily exhausted: a counted drop
				}
				sp.StampAdmit(VerdictAdmit, w)
				if i%3 == 0 {
					sp.StampBackend()
					sp.StampFirstByte()
				}
				sp.Finish()
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	scraper.Wait()

	begun, kept, dropped := tr.Counts()
	if begun+dropped != writers*perWriter {
		t.Errorf("begun %d + dropped %d != %d requests", begun, dropped, writers*perWriter)
	}
	if kept != begun {
		t.Errorf("kept %d of %d begun at SampleEvery=1", kept, begun)
	}
	if got := tr.Ring().Len(); got != kept {
		t.Errorf("ring committed %d, tracer kept %d", got, kept)
	}
}

// TestFlightRecorderExactlyOnce checks the per-window trigger dedup under
// concurrency: many triggers for one window collapse to one capture, a
// later window fires again, an older window never does.
func TestFlightRecorderExactlyOnce(t *testing.T) {
	rec := NewFlightRecorder(FlightConfig{Max: 8})

	const racers = 16
	var fired sync.WaitGroup
	wins := make(chan bool, racers)
	for i := 0; i < racers; i++ {
		fired.Add(1)
		go func() {
			defer fired.Done()
			wins <- rec.Trigger("under_floor", 10, "alpha", nil)
		}()
	}
	fired.Wait()
	close(wins)
	won := 0
	for w := range wins {
		if w {
			won++
		}
	}
	if won != 1 {
		t.Fatalf("%d of %d concurrent triggers captured window 10, want exactly 1", won, racers)
	}
	if rec.Trigger("slo_breach", 9, "beta", nil) {
		t.Error("an older window re-armed the trigger")
	}
	if rec.Trigger("slo_breach", 10, "beta", nil) {
		t.Error("the same window fired twice")
	}
	if !rec.Trigger("slo_breach", 11, "beta", nil) {
		t.Error("the next window did not fire")
	}
	if got := rec.Triggers(); got != 2 {
		t.Errorf("Triggers() = %d, want 2", got)
	}
	caps := rec.Captures(0)
	if len(caps) != 2 {
		t.Fatalf("%d captures retained, want 2", len(caps))
	}
	if caps[0].Window != 11 || caps[0].Reason != "slo_breach" {
		t.Errorf("newest capture = (%d, %s), want (11, slo_breach)", caps[0].Window, caps[0].Reason)
	}
	if caps[1].Window != 10 || caps[1].Reason != "under_floor" || caps[1].Principal != "alpha" {
		t.Errorf("oldest capture = %+v", caps[1])
	}
}

// TestFlightRecorderSLOTrigger drives a breach through the real
// Tracer.Finish path and checks the capture freezes the slowest spans.
func TestFlightRecorderSLOTrigger(t *testing.T) {
	tr := NewTracer(TraceConfig{SampleEvery: 1}, 0)
	tr.StartWindow(3, 1)
	rec := NewFlightRecorder(FlightConfig{SLO: time.Nanosecond, Logger: Nop()})
	rec.BindTracer(tr)
	rec.SetCounters(func() map[string]float64 { return map[string]float64{"shard0_admits": 42} })

	sp := tr.Begin("alpha")
	sp.StampAdmit(VerdictAdmit, 0)
	sp.Finish() // any span is slower than a 1ns SLO

	caps := rec.Captures(0)
	if len(caps) != 1 {
		t.Fatalf("%d captures after an SLO breach, want 1", len(caps))
	}
	c := caps[0]
	if c.Reason != "slo_breach" || c.Window != 3 || c.Principal != "alpha" {
		t.Errorf("capture = (%s, %d, %s)", c.Reason, c.Window, c.Principal)
	}
	if c.Trigger == nil || c.Trigger.Principal != "alpha" {
		t.Error("capture lost the triggering span")
	}
	if len(c.Spans) != 1 {
		t.Errorf("capture froze %d spans, want 1", len(c.Spans))
	}
	if c.Counters["shard0_admits"] != 42 {
		t.Errorf("capture counters = %v", c.Counters)
	}
}

// TestFlightRecorderUnderFloorTrigger drives the auditor hook: a settled
// under-floor window captures, a conservative one does not.
func TestFlightRecorderUnderFloorTrigger(t *testing.T) {
	a := NewAuditor([]string{"alpha", "beta"})
	rec := NewFlightRecorder(FlightConfig{Logger: Nop()})
	rec.BindAuditor(a)

	under := NewRecord(2)
	under.Window = 5
	under.HaveGlobal = true
	under.Arrived = []float64{10, 10}
	under.Served = []float64{1, 10}
	under.Floor = []float64{5, 1}
	under.Ceil = []float64{100, 100}
	a.Observe(under)
	caps := rec.Captures(0)
	if len(caps) != 1 {
		t.Fatalf("%d captures after a settled under-floor window, want 1", len(caps))
	}
	if caps[0].Reason != "under_floor" || caps[0].Principal != "alpha" || caps[0].Window != 5 {
		t.Errorf("capture = %+v", caps[0])
	}

	// A conservative under-floor window is expected degradation, not a
	// forensic event.
	conservative := NewRecord(2)
	conservative.Window = 6
	conservative.HaveGlobal = true
	conservative.Conservative = true
	conservative.Arrived = []float64{10, 10}
	conservative.Served = []float64{1, 10}
	conservative.Floor = []float64{5, 1}
	conservative.Ceil = []float64{100, 100}
	a.Observe(conservative)
	if got := rec.Triggers(); got != 1 {
		t.Errorf("conservative window fired a capture (triggers=%d)", got)
	}
}

// TestFlightRecorderFlush pins the graceful-shutdown path: Flush writes
// every retained capture to the capture directory, re-writes missing files
// (a capture whose eager write was lost), and is idempotent — flushing
// twice leaves exactly one file per capture.
func TestFlightRecorderFlush(t *testing.T) {
	var nilRec *FlightRecorder
	if got := nilRec.Flush(); got != 0 {
		t.Fatalf("nil recorder Flush = %d, want 0", got)
	}
	if got := NewFlightRecorder(FlightConfig{}).Flush(); got != 0 {
		t.Fatalf("Flush without a Dir = %d, want 0", got)
	}

	dir := t.TempDir()
	rec := NewFlightRecorder(FlightConfig{Max: 8, Dir: dir, Logger: Nop()})
	rec.Trigger("under_floor", 10, "alpha", nil)
	rec.Trigger("slo_breach", 11, "beta", nil)

	// Simulate a lost eager write: the flush must restore it.
	lost := filepath.Join(dir, "flight-1-under_floor.json")
	if err := os.Remove(lost); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // idempotent: same result on a second flush
		if got := rec.Flush(); got != 2 {
			t.Fatalf("flush %d wrote %d captures, want 2", i, got)
		}
		files, err := filepath.Glob(filepath.Join(dir, "flight-*.json"))
		if err != nil {
			t.Fatal(err)
		}
		if len(files) != 2 {
			t.Fatalf("flush %d left %d files, want 2: %v", i, len(files), files)
		}
	}
	b, err := os.ReadFile(lost)
	if err != nil {
		t.Fatalf("flush did not restore the lost capture file: %v", err)
	}
	var c Capture
	if err := json.Unmarshal(b, &c); err != nil {
		t.Fatal(err)
	}
	if c.Seq != 1 || c.Reason != "under_floor" || c.Window != 10 || c.Principal != "alpha" {
		t.Fatalf("restored capture = %+v", c)
	}
}

// TestServeTraceFilter is the golden /v1/debug/trace filter test: a ring
// with known spans, filtered by principal and min_ms, must come back
// slowest first.
func TestServeTraceFilter(t *testing.T) {
	tr := NewTracer(TraceConfig{SampleEvery: 1}, 0)
	// Commit deterministic spans directly: (principal, total).
	for _, c := range []struct {
		principal string
		total     time.Duration
	}{
		{"alpha", 5 * time.Millisecond},
		{"beta", 50 * time.Millisecond},
		{"alpha", 30 * time.Millisecond},
		{"alpha", 1 * time.Millisecond},
		{"beta", 2 * time.Millisecond},
		{"alpha", 80 * time.Millisecond},
	} {
		tr.Ring().Append(&Span{Principal: c.principal, Verdict: VerdictAdmit, TotalNanos: int64(c.total)})
	}
	h := NewHandler(HandlerConfig{Tracer: tr})

	get := func(url string) []Span {
		t.Helper()
		req := httptest.NewRequest("GET", url, nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != 200 {
			t.Fatalf("GET %s: %d %s", url, w.Code, w.Body.String())
		}
		var out struct {
			Spans []Span `json:"spans"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		return out.Spans
	}

	all := get("/v1/debug/trace")
	if len(all) != 6 {
		t.Fatalf("unfiltered: %d spans, want 6", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].TotalNanos > all[i-1].TotalNanos {
			t.Fatalf("spans not sorted slowest first: %d after %d", all[i].TotalNanos, all[i-1].TotalNanos)
		}
	}

	alpha := get("/v1/debug/trace?principal=alpha&min_ms=4")
	want := []time.Duration{80 * time.Millisecond, 30 * time.Millisecond, 5 * time.Millisecond}
	if len(alpha) != len(want) {
		t.Fatalf("principal=alpha&min_ms=4: %d spans, want %d", len(alpha), len(want))
	}
	for i, sp := range alpha {
		if sp.Principal != "alpha" || sp.TotalNanos != int64(want[i]) {
			t.Errorf("span %d = (%s, %d), want (alpha, %d)", i, sp.Principal, sp.TotalNanos, want[i])
		}
	}

	top := get("/v1/debug/trace?n=2")
	if len(top) != 2 || top[0].TotalNanos != int64(80*time.Millisecond) {
		t.Errorf("n=2 returned %d spans, slowest %d", len(top), top[0].TotalNanos)
	}

	req := httptest.NewRequest("GET", "/v1/debug/trace?min_ms=-1", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != 400 {
		t.Errorf("negative min_ms: %d, want 400", w.Code)
	}
}

// TestServeFlight checks the capture endpoint shape, including the empty
// case.
func TestServeFlight(t *testing.T) {
	rec := NewFlightRecorder(FlightConfig{})
	h := NewHandler(HandlerConfig{Flight: rec})

	req := httptest.NewRequest("GET", "/v1/debug/flight", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	var out struct {
		Captures []*Capture `json:"captures"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Captures == nil || len(out.Captures) != 0 {
		t.Errorf("empty recorder served %v, want []", out.Captures)
	}

	rec.Trigger("slo_breach", 1, "alpha", nil)
	rec.Trigger("slo_breach", 2, "alpha", nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/v1/debug/flight?n=1", nil))
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Captures) != 1 || out.Captures[0].Window != 2 {
		t.Errorf("n=1 served %d captures (window %d), want newest only", len(out.Captures), out.Captures[0].Window)
	}
}

// TestHistogramExemplar checks exemplar plumbing end to end: the bucket the
// observation lands in carries the trace ref in the scrape.
func TestHistogramExemplar(t *testing.T) {
	h := NewHistogram()
	h.ObserveExemplar(3*time.Millisecond, 77)
	h.Observe(10 * time.Millisecond)
	var sb bytes.Buffer
	WriteHistogram(&sb, "test_seconds", "help", h)
	if want := `# {trace_ref="77"}`; !strings.Contains(sb.String(), want) {
		t.Errorf("scrape lost the exemplar:\n%s", sb.String())
	}
}

// TestRateLimit checks the token bucket: burst, suppression counting, and
// refill after an interval.
func TestRateLimit(t *testing.T) {
	rl := NewRateLimit(50*time.Millisecond, 2)
	for i := 0; i < 2; i++ {
		if ok, _ := rl.Allow(); !ok {
			t.Fatalf("burst call %d denied", i)
		}
	}
	for i := 0; i < 3; i++ {
		if ok, _ := rl.Allow(); ok {
			t.Fatal("allowed past the burst with no refill")
		}
	}
	if got := rl.Suppressed(); got != 3 {
		t.Errorf("Suppressed() = %d, want 3", got)
	}
	time.Sleep(60 * time.Millisecond)
	ok, suppressed := rl.Allow()
	if !ok {
		t.Fatal("denied after a full refill interval")
	}
	if suppressed != 3 {
		t.Errorf("refilled Allow reported %d suppressed, want 3", suppressed)
	}

	var nilRL *RateLimit
	if ok, _ := nilRL.Allow(); !ok {
		t.Error("nil RateLimit denied")
	}
}
