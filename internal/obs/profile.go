package obs

import "runtime"

// EnableContentionProfiling arms the runtime's contention profilers so the
// pprof surface this package mounts (/debug/pprof/mutex and
// /debug/pprof/block) returns real samples. Both profilers are off by
// default because sampling costs a timestamp per contended event — on the
// admission fast path that is exactly the overhead the sharded plane
// removed — so front-ends expose this behind an explicit admin-gated flag
// rather than arming it unconditionally.
//
// mutexFraction feeds runtime.SetMutexProfileFraction: 0 disables, 1
// records every contended mutex event, n>1 samples 1/n of them. blockRateNs
// feeds runtime.SetBlockProfileRate: 0 disables, 1 records every blocking
// event, n>1 samples events lasting at least n nanoseconds on average.
// Negative values leave the corresponding profiler untouched.
func EnableContentionProfiling(mutexFraction, blockRateNs int) {
	if mutexFraction >= 0 {
		runtime.SetMutexProfileFraction(mutexFraction)
	}
	if blockRateNs >= 0 {
		runtime.SetBlockProfileRate(blockRateNs)
	}
}
