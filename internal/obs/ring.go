package obs

import (
	"sync"
	"sync/atomic"
)

// Ring is a fixed-capacity buffer of the most recent window trace records.
// Slot reservation is a single atomic ticket fetch, so concurrent writers
// (distinct redirectors sharing one ring, or a writer racing a wrap-around)
// never queue behind each other; each slot then carries its own mutex, held
// only for the bounded memcpy of one pre-allocated record. The write path
// allocates nothing. Readers (Snapshot) lock one slot at a time, so a
// scrape can never stall a window loop for more than one record copy.
type Ring struct {
	depth  uint64
	ticket atomic.Uint64 // next reservation; also the count of appends
	slots  []ringSlot
}

type ringSlot struct {
	mu     sync.Mutex
	ticket uint64 // 1 + the reservation that wrote rec; 0 = never written
	rec    Record
}

// NewRing builds a ring retaining the last depth records of principals-wide
// vectors. depth ≤ 0 selects DefaultRingDepth.
func NewRing(depth, principals int) *Ring {
	if depth <= 0 {
		depth = DefaultRingDepth
	}
	r := &Ring{depth: uint64(depth), slots: make([]ringSlot, depth)}
	for i := range r.slots {
		rec := NewRecord(principals)
		r.slots[i].rec = *rec
	}
	return r
}

// Depth reports the ring capacity.
func (r *Ring) Depth() int { return int(r.depth) }

// Len reports how many records have ever been appended (the ring holds the
// last min(Len, Depth) of them).
func (r *Ring) Len() uint64 { return r.ticket.Load() }

// Append copies rec into the next slot. The caller keeps ownership of rec.
// Zero allocations.
func (r *Ring) Append(rec *Record) {
	t := r.ticket.Add(1) - 1
	s := &r.slots[t%r.depth]
	s.mu.Lock()
	if s.ticket <= t { // a lagging writer must not clobber a newer record
		s.ticket = t + 1
		rec.copyInto(&s.rec)
	}
	s.mu.Unlock()
}

// Snapshot returns up to max of the most recent records, oldest first. Slots
// currently being rewritten by a wrapping writer are simply skipped, so the
// result can occasionally be shorter than max even on a full ring.
func (r *Ring) Snapshot(max int) []Record {
	if max <= 0 || max > int(r.depth) {
		max = int(r.depth)
	}
	end := r.ticket.Load()
	start := uint64(0)
	if end > uint64(max) {
		start = end - uint64(max)
	}
	out := make([]Record, 0, end-start)
	for t := start; t < end; t++ {
		s := &r.slots[t%r.depth]
		s.mu.Lock()
		if s.ticket == t+1 {
			dst := NewRecord(len(s.rec.Local))
			s.rec.copyInto(dst)
			out = append(out, *dst)
		}
		s.mu.Unlock()
	}
	return out
}
