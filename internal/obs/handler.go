package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"time"

	"repro/internal/metrics"
)

// HandlerConfig parameterizes NewHandler. Every field is optional: series
// whose source is nil are simply omitted, so a backend process can serve
// just pprof plus its Extra counters while a redirector serves the full set.
type HandlerConfig struct {
	// Observers supply trace rings for /debug/windows (one per admission
	// point in this process).
	Observers []*Observer
	// Auditor supplies the conformance counters.
	Auditor *Auditor
	// Solver supplies the engine's LP fast-path telemetry.
	Solver *metrics.SolverStats
	// Mode and Window label the rsa_redirector_info series.
	Mode   string
	Window time.Duration
	// Extra, when non-nil, appends additional Prometheus-text series (the
	// layer-specific counters: HTTP admits, parked connections, ...).
	Extra func(w io.Writer)
	// Histograms are latency distributions exported in the Prometheus
	// histogram format (per-layer request latency, loadgen distributions).
	Histograms []NamedHistogram
	// DisablePprof leaves net/http/pprof unregistered.
	DisablePprof bool

	// Tracer, when non-nil, serves request spans on /v1/debug/trace and
	// exports the rsa_trace_* counters.
	Tracer *Tracer
	// Flight, when non-nil, serves flight captures on /v1/debug/flight and
	// exports rsa_flight_captures_total.
	Flight *FlightRecorder

	// Control, when non-nil, is mounted under /v1/agreements,
	// /v1/principals and /v1/leases — the dynamic agreement control
	// plane's admin API
	// (internal/ctrlplane.Handler).
	Control http.Handler
	// Config, when non-nil, supplies the engine's configuration-version
	// state for the rsa_config_* series.
	Config func() ConfigInfo
	// Topology, when non-nil, serves the combining-plane snapshot on
	// GET /v1/topology (nil return → 404, no plane configured).
	Topology func() *TopologyInfo
}

// NamedHistogram pairs a latency Histogram with the series name and help
// text it is exported under on /v1/metrics.
type NamedHistogram struct {
	Name string
	Help string
	Hist *Histogram
}

// ConfigInfo is the configuration-version snapshot exported by /metrics
// (mirrors core.RolloutInfo without importing core).
type ConfigInfo struct {
	// Active and Staged are the engine generations (staged 0 when no
	// rollout is in flight); SetVersion is the newest agreement-set version
	// accepted; GateEpoch the tree epoch a staged generation waits on.
	Active     uint64
	Staged     uint64
	SetVersion uint64
	GateEpoch  int
	// Rollouts counts fully converged epoch-gated rollouts.
	Rollouts uint64
}

// Handler serves the versioned admin/observability API:
//
//	/v1/metrics          Prometheus text exposition
//	/v1/debug/windows    JSON array of the last N window trace records (?n=)
//	/v1/debug/trace      JSON request spans, slowest first (?principal=, ?min_ms=, ?n=)
//	/v1/debug/flight     JSON flight-recorder captures, newest first (?n=)
//	/v1/topology         combining-plane snapshot (when configured)
//	/v1/agreements       dynamic agreement control plane (when configured)
//	/v1/principals/...   principal join/leave (when configured)
//	/v1/leases           lease grant/renew/shrink/revoke (when configured)
//	/debug/pprof/...     net/http/pprof
//
// The pre-versioning paths /metrics and /debug/windows remain as aliases;
// responses on them carry a Deprecation header and a Link to the successor
// under /v1. Mount the handler on an existing mux with Register, or serve it
// directly (it implements http.Handler) on a dedicated admin listener.
type Handler struct {
	cfg HandlerConfig
	mux *http.ServeMux
}

// NewHandler builds a handler.
func NewHandler(cfg HandlerConfig) *Handler {
	h := &Handler{cfg: cfg, mux: http.NewServeMux()}
	h.Register(h.mux)
	return h
}

// ServeHTTP serves the observability endpoints from the handler's own mux.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

// deprecatedAlias wraps a /v1 handler for its legacy path: same behavior,
// plus RFC 8594-style headers pointing clients at the successor.
func deprecatedAlias(successor string, fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		fn(w, r)
	}
}

// Register mounts the endpoints on mux (for front-ends that already run an
// HTTP server, like the Layer-7 redirector).
func (h *Handler) Register(mux *http.ServeMux) {
	mux.HandleFunc("/v1/metrics", h.serveMetrics)
	mux.HandleFunc("/v1/debug/windows", h.serveWindows)
	if h.cfg.Tracer != nil {
		mux.HandleFunc("/v1/debug/trace", h.serveTrace)
	}
	if h.cfg.Flight != nil {
		mux.HandleFunc("/v1/debug/flight", h.serveFlight)
	}
	if h.cfg.Topology != nil {
		mux.HandleFunc("/v1/topology", h.serveTopology)
	}
	mux.HandleFunc("/metrics", deprecatedAlias("/v1/metrics", h.serveMetrics))
	mux.HandleFunc("/debug/windows", deprecatedAlias("/v1/debug/windows", h.serveWindows))
	if h.cfg.Control != nil {
		mux.Handle("/v1/agreements", h.cfg.Control)
		mux.Handle("/v1/agreements/", h.cfg.Control)
		mux.Handle("/v1/principals/", h.cfg.Control)
		mux.Handle("/v1/leases", h.cfg.Control)
		mux.Handle("/v1/leases/", h.cfg.Control)
	}
	if !h.cfg.DisablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// promMetric emits one un-labeled series with its HELP/TYPE preamble.
func promMetric(w io.Writer, name, kind, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %s\n",
		name, help, name, kind, name, formatFloat(v))
}

// promHeader emits just the HELP/TYPE preamble (for labeled families).
func promHeader(w io.Writer, name, kind, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
}

// promLabeled emits one sample with a principal label.
func promLabeled(w io.Writer, name, principal string, v float64) {
	fmt.Fprintf(w, "%s{principal=%q} %s\n", name, principal, formatFloat(v))
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteMetric emits one un-labeled Prometheus-text series with its HELP/TYPE
// preamble — the helper Extra callbacks use to append layer-specific
// counters (Layer-7 admits, Layer-4 parked connections, backend serves).
func WriteMetric(w io.Writer, name, kind, help string, v float64) {
	promMetric(w, name, kind, help, v)
}

// WriteMetricHeader emits just the HELP/TYPE preamble of a labeled family;
// follow it with WriteLabeled samples.
func WriteMetricHeader(w io.Writer, name, kind, help string) {
	promHeader(w, name, kind, help)
}

// WriteLabeled emits one sample of a labeled family with a single label
// (e.g. target="http://...", principal="A").
func WriteLabeled(w io.Writer, name, label, value string, v float64) {
	fmt.Fprintf(w, "%s{%s=%q} %s\n", name, label, value, formatFloat(v))
}

func (h *Handler) serveMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if h.cfg.Mode != "" || h.cfg.Window > 0 {
		promHeader(w, "rsa_redirector_info", "gauge", "Static redirector configuration.")
		fmt.Fprintf(w, "rsa_redirector_info{mode=%q,window_ms=%q} 1\n",
			h.cfg.Mode, strconv.FormatInt(h.cfg.Window.Milliseconds(), 10))
	}
	if a := h.cfg.Auditor; a != nil {
		promMetric(w, "rsa_windows_total", "counter",
			"Scheduling windows audited.", float64(a.Windows()))
		promMetric(w, "rsa_windows_conservative_total", "counter",
			"Windows run in the blind 1/R mandatory-claim fallback (missing or stale global view).",
			float64(a.Conservative()))
		promMetric(w, "rsa_windows_no_global_total", "counter",
			"Windows run before any combining-tree aggregate arrived.", float64(a.NoGlobal()))
		promMetric(w, "rsa_window_solve_errors_total", "counter",
			"Windows whose LP solve failed (previous credits kept).", float64(a.SolveErrors()))
		promMetric(w, "rsa_window_cache_hits_total", "counter",
			"Windows planned from the shared plan cache.", float64(a.CacheHits()))
		promMetric(w, "rsa_windows_degraded_total", "counter",
			"Windows scheduled on reduced, health-re-interpreted capacity (a backend was down).",
			float64(a.Degraded()))
		promMetric(w, "rsa_windows_mixed_version_total", "counter",
			"Same-numbered windows observed under different configuration versions (must stay 0).",
			float64(a.MixedVersion()))

		names := a.Names()
		promHeader(w, "rsa_windows_under_mc_total", "counter",
			"Windows in which the principal was served below its mandatory entitlement share despite demand.")
		for i, name := range names {
			promLabeled(w, "rsa_windows_under_mc_total", name, float64(a.UnderMC(i)))
		}
		promHeader(w, "rsa_windows_over_ub_total", "counter",
			"Windows in which the principal was admitted above its mandatory+optional ceiling.")
		for i, name := range names {
			promLabeled(w, "rsa_windows_over_ub_total", name, float64(a.OverUB(i)))
		}
		promHeader(w, "rsa_served_requests_total", "counter",
			"Admitted request volume per principal (average-request cost units).")
		for i, name := range names {
			promLabeled(w, "rsa_served_requests_total", name, a.Served(i))
		}
		promHeader(w, "rsa_arrived_requests_total", "counter",
			"Observed demand per principal (average-request cost units).")
		for i, name := range names {
			promLabeled(w, "rsa_arrived_requests_total", name, a.Arrived(i))
		}
	}
	if s := h.cfg.Solver; s != nil {
		promMetric(w, "rsa_solver_solves_total", "counter",
			"LP solves performed.", float64(s.Solves()))
		promMetric(w, "rsa_solver_cache_hits_total", "counter",
			"Plan-cache hits.", float64(s.CacheHits()))
		promMetric(w, "rsa_solver_cache_misses_total", "counter",
			"Plan-cache misses.", float64(s.CacheMisses()))
		promMetric(w, "rsa_solver_floor_fallbacks_total", "counter",
			"Windows re-solved (or scaled) without mandatory floors because entitlements exceed capacity.",
			float64(s.FloorFallbacks()))
		promMetric(w, "rsa_solver_solve_seconds_mean", "gauge",
			"Mean LP solve latency.", s.MeanSolve().Seconds())
		promMetric(w, "rsa_solver_solve_seconds_max", "gauge",
			"Max LP solve latency.", s.MaxSolve().Seconds())
	}
	if h.cfg.Config != nil {
		ci := h.cfg.Config()
		promMetric(w, "rsa_config_version", "gauge",
			"Active engine configuration generation.", float64(ci.Active))
		promMetric(w, "rsa_config_staged_version", "gauge",
			"Configuration generation staged behind the rollout epoch gate (0 when none).",
			float64(ci.Staged))
		promMetric(w, "rsa_config_set_version", "gauge",
			"Newest agreement-set version accepted from the control plane.", float64(ci.SetVersion))
		promMetric(w, "rsa_config_gate_epoch", "gauge",
			"Combining-tree epoch the staged generation is gated on (0 when none).",
			float64(ci.GateEpoch))
		promMetric(w, "rsa_config_rollouts_total", "counter",
			"Epoch-gated configuration rollouts fully converged.", float64(ci.Rollouts))
	}
	if tr := h.cfg.Tracer; tr != nil {
		begun, kept, dropped := tr.Counts()
		promMetric(w, "rsa_trace_spans_begun_total", "counter",
			"Request spans opened by the tracer.", float64(begun))
		promMetric(w, "rsa_trace_spans_kept_total", "counter",
			"Request spans committed to the span ring (head- or tail-sampled).", float64(kept))
		promMetric(w, "rsa_trace_spans_dropped_total", "counter",
			"Request spans dropped on in-flight pool exhaustion.", float64(dropped))
		admit, park, dial, proxy := tr.PhaseHistograms()
		WriteHistogram(w, "rsa_trace_phase_admit_seconds",
			"Accept-to-admission-verdict latency of traced requests.", admit)
		WriteHistogram(w, "rsa_trace_phase_park_seconds",
			"Total parked duration of traced requests that parked.", park)
		WriteHistogram(w, "rsa_trace_phase_dial_seconds",
			"Backend dial latency of traced requests.", dial)
		WriteHistogram(w, "rsa_trace_phase_proxy_seconds",
			"Backend-selection-to-close latency of traced requests.", proxy)
	}
	if fl := h.cfg.Flight; fl != nil {
		promMetric(w, "rsa_flight_captures_total", "counter",
			"Flight-recorder captures frozen (under-floor or SLO-breach triggers).",
			float64(fl.Triggers()))
	}
	for _, nh := range h.cfg.Histograms {
		WriteHistogram(w, nh.Name, nh.Help, nh.Hist)
	}
	if h.cfg.Extra != nil {
		h.cfg.Extra(w)
	}
}

// serveTrace returns spans from the tracer's ring as JSON, slowest first.
// ?principal= keeps one principal's spans, ?min_ms= drops spans faster than
// the threshold, ?n= bounds the result (default 64).
func (h *Handler) serveTrace(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	n := 64
	if s := q.Get("n"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v <= 0 {
			http.Error(w, "n must be a positive integer", http.StatusBadRequest)
			return
		}
		n = v
	}
	var minTotal int64
	if s := q.Get("min_ms"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v < 0 {
			http.Error(w, "min_ms must be a non-negative number", http.StatusBadRequest)
			return
		}
		minTotal = int64(v * float64(time.Millisecond))
	}
	principal := q.Get("principal")

	ring := h.cfg.Tracer.Ring()
	spans := ring.Snapshot(ring.Depth())
	filtered := spans[:0]
	for _, sp := range spans {
		if principal != "" && sp.Principal != principal {
			continue
		}
		if sp.TotalNanos < minTotal {
			continue
		}
		filtered = append(filtered, sp)
	}
	sort.SliceStable(filtered, func(i, j int) bool {
		return filtered[i].TotalNanos > filtered[j].TotalNanos
	})
	if len(filtered) > n {
		filtered = filtered[:n]
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(struct {
		Spans []Span `json:"spans"`
	}{Spans: filtered}); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// serveFlight returns retained flight captures as JSON, newest first
// (?n= bounds the count).
func (h *Handler) serveFlight(w http.ResponseWriter, r *http.Request) {
	n := 0
	if s := r.URL.Query().Get("n"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v <= 0 {
			http.Error(w, "n must be a positive integer", http.StatusBadRequest)
			return
		}
		n = v
	}
	caps := h.cfg.Flight.Captures(n)
	if caps == nil {
		caps = []*Capture{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(struct {
		Captures []*Capture `json:"captures"`
	}{Captures: caps}); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// serveWindows returns the last N trace records across all observers as
// JSON, ordered by (window, redirector). ?n= bounds the per-observer count
// (default 64).
func (h *Handler) serveWindows(w http.ResponseWriter, r *http.Request) {
	n := 64
	if s := r.URL.Query().Get("n"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v <= 0 {
			http.Error(w, "n must be a positive integer", http.StatusBadRequest)
			return
		}
		n = v
	}
	var records []Record
	for _, o := range h.cfg.Observers {
		if o != nil {
			records = append(records, o.Ring().Snapshot(n)...)
		}
	}
	sort.SliceStable(records, func(i, j int) bool {
		if records[i].Window != records[j].Window {
			return records[i].Window < records[j].Window
		}
		return records[i].Redirector < records[j].Redirector
	})
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(struct {
		Records []Record `json:"records"`
	}{Records: records}); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Serve starts a standalone admin listener for the handler (the optional
// side-channel for front-ends without their own HTTP server, like the
// Layer-4 redirector). It returns the bound address; the server stops when
// stop is closed.
func Serve(addr string, h http.Handler, stop <-chan struct{}) (string, error) {
	srv := &http.Server{Addr: addr, Handler: h}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() { _ = srv.Serve(ln) }()
	if stop != nil {
		go func() {
			<-stop
			_ = srv.Close()
		}()
	}
	return ln.Addr().String(), nil
}
