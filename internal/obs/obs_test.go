package obs

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

func mkRecord(window uint64, n int) *Record {
	rec := NewRecord(n)
	rec.Window = window
	for i := 0; i < n; i++ {
		rec.Local[i] = float64(i + 1)
	}
	return rec
}

func TestRingRetainsMostRecent(t *testing.T) {
	r := NewRing(4, 2)
	for w := uint64(1); w <= 10; w++ {
		r.Append(mkRecord(w, 2))
	}
	if r.Len() != 10 {
		t.Fatalf("Len = %d, want 10", r.Len())
	}
	snap := r.Snapshot(0)
	if len(snap) != 4 {
		t.Fatalf("snapshot length %d, want ring depth 4", len(snap))
	}
	for i, rec := range snap {
		if want := uint64(7 + i); rec.Window != want {
			t.Errorf("snapshot[%d].Window = %d, want %d (oldest first)", i, rec.Window, want)
		}
	}
	if snap2 := r.Snapshot(2); len(snap2) != 2 || snap2[0].Window != 9 {
		t.Errorf("Snapshot(2) = %d records starting at %d, want 2 starting at 9",
			len(snap2), snap2[0].Window)
	}
}

func TestRingSnapshotCopiesVectors(t *testing.T) {
	r := NewRing(2, 2)
	rec := mkRecord(1, 2)
	r.Append(rec)
	snap := r.Snapshot(0)
	rec.Local[0] = 99 // caller keeps ownership; ring must hold a copy
	r.Append(rec)
	if snap[0].Local[0] != 1 {
		t.Fatalf("snapshot aliases writer's record: Local[0] = %g, want 1", snap[0].Local[0])
	}
}

func TestRingConcurrentAppendSnapshot(t *testing.T) {
	r := NewRing(8, 3)
	var writers sync.WaitGroup
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				for _, rec := range r.Snapshot(0) {
					if len(rec.Local) != 3 {
						t.Errorf("torn record: %d principals", len(rec.Local))
						return
					}
				}
			}
		}
	}()
	for w := 0; w < 3; w++ {
		writers.Add(1)
		go func(id int) {
			defer writers.Done()
			rec := NewRecord(3)
			rec.Redirector = id
			for i := uint64(1); i <= 500; i++ {
				rec.Window = i
				r.Append(rec)
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if r.Len() != 1500 {
		t.Fatalf("Len = %d, want 1500", r.Len())
	}
}

func TestAuditorVerdicts(t *testing.T) {
	a := NewAuditor([]string{"A", "B"})

	// Window 1: A under-served (demand 10 ≥ floor 5, served 2); B fine.
	rec := NewRecord(2)
	rec.Conservative = true
	rec.Floor = []float64{5, 5}
	rec.Ceil = []float64{8, 8}
	rec.Arrived = []float64{10, 10}
	rec.Served = []float64{2, 6}
	a.Observe(rec)

	// Window 2: A over-admitted (served 10 > ceil 8 + carry 1); B's low
	// demand clips the floor, so serving 1 of 1 is conformant.
	rec2 := NewRecord(2)
	rec2.HaveGlobal = true
	rec2.CacheHit = true
	rec2.Floor = []float64{5, 5}
	rec2.Ceil = []float64{8, 8}
	rec2.Arrived = []float64{10, 1}
	rec2.Served = []float64{10, 1}
	a.Observe(rec2)

	// Window 3: solve error — MaxFloat64 ceiling disables the over check.
	rec3 := NewRecord(2)
	rec3.SolveErr = true
	rec3.Floor = []float64{0, 0}
	rec3.Ceil = []float64{math.MaxFloat64, math.MaxFloat64}
	rec3.Arrived = []float64{50, 50}
	rec3.Served = []float64{40, 40}
	a.Observe(rec3)

	if got := a.Windows(); got != 3 {
		t.Errorf("Windows = %d, want 3", got)
	}
	if got := a.Conservative(); got != 1 {
		t.Errorf("Conservative = %d, want 1", got)
	}
	if got := a.NoGlobal(); got != 2 {
		t.Errorf("NoGlobal = %d, want 2", got)
	}
	if got := a.SolveErrors(); got != 1 {
		t.Errorf("SolveErrors = %d, want 1", got)
	}
	if got := a.CacheHits(); got != 1 {
		t.Errorf("CacheHits = %d, want 1", got)
	}
	if got := a.UnderMC(0); got != 1 {
		t.Errorf("UnderMC(A) = %d, want 1", got)
	}
	if got := a.UnderMC(1); got != 0 {
		t.Errorf("UnderMC(B) = %d, want 0", got)
	}
	if got := a.OverUB(0); got != 1 {
		t.Errorf("OverUB(A) = %d, want 1", got)
	}
	if got := a.OverUB(1); got != 0 {
		t.Errorf("OverUB(B) = %d, want 0", got)
	}
	if got := a.Served(0); got != 52 {
		t.Errorf("Served(A) = %g, want 52", got)
	}
	if got := a.Arrived(1); got != 61 {
		t.Errorf("Arrived(B) = %g, want 61", got)
	}
	if !strings.Contains(a.String(), "A under=1 over=1") {
		t.Errorf("String() = %q", a.String())
	}
}

func TestAuditorNilSafe(t *testing.T) {
	var a *Auditor
	a.Observe(NewRecord(1))
	if a.Windows() != 0 || a.UnderMC(0) != 0 || a.Served(0) != 0 || a.Names() != nil {
		t.Fatal("nil auditor must be a no-op")
	}
	if a.String() != "auditor: disabled" {
		t.Fatalf("String() = %q", a.String())
	}
}

func TestLoggerFormat(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb, LevelInfo)
	l.sink.now = func() time.Time { return time.Unix(0, 0).UTC() }
	l.With("sched").Warn("floors dropped", "status", "Infeasible", "windows", 7)
	line := sb.String()
	for _, want := range []string{
		"t=1970-01-01T00:00:00Z", "level=warn", "comp=sched",
		`msg="floors dropped"`, "status=Infeasible", "windows=7",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("log line %q missing %q", line, want)
		}
	}
	sb.Reset()
	l.Debug("below threshold")
	if sb.Len() != 0 {
		t.Errorf("debug line emitted below min level: %q", sb.String())
	}
	if l.Enabled(LevelDebug) || !l.Enabled(LevelError) {
		t.Error("Enabled thresholds wrong")
	}
	sb.Reset()
	l.Error("odd kv", "dangling")
	if !strings.Contains(sb.String(), "!MISSING-VALUE=dangling") {
		t.Errorf("odd kv not flagged: %q", sb.String())
	}
}

func TestLoggerNilReceiver(t *testing.T) {
	var l *Logger
	if !l.Enabled(LevelError) {
		t.Fatal("nil logger should fall back to Default (info level)")
	}
	// Must not panic.
	l.With("x")
}

func TestObserverCommitAndTreeInfo(t *testing.T) {
	o := NewObserver(ObserverConfig{Redirector: 3, Names: []string{"A", "B"}, RingDepth: 8})
	o.SetTreeInfo(func() TreeInfo {
		return TreeInfo{Epoch: 5, GlobalEpoch: 4, MsgsIn: 10, MsgsOut: 6}
	})
	rec := o.NewRecord()
	if rec.Redirector != 3 || len(rec.Local) != 2 {
		t.Fatalf("NewRecord: redirector %d, %d principals", rec.Redirector, len(rec.Local))
	}
	o.FillTree(rec)
	rec.Window = 1
	rec.Arrived[0], rec.Served[0] = 4, 4
	o.Commit(rec)
	if o.Auditor().Windows() != 1 {
		t.Fatal("commit did not reach the auditor")
	}
	snap := o.Ring().Snapshot(0)
	if len(snap) != 1 || snap[0].TreeEpoch != 5 || snap[0].TreeMsgsIn != 10 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

// TestRecordPathZeroAlloc is the allocation guard behind
// BenchmarkWindowTraceOverhead: fill + commit of one window record must not
// touch the heap.
func TestRecordPathZeroAlloc(t *testing.T) {
	o := NewObserver(ObserverConfig{Names: []string{"A", "B", "C"}, RingDepth: 16})
	o.SetTreeInfo(func() TreeInfo { return TreeInfo{Epoch: 1} })
	rec := o.NewRecord()
	w := uint64(0)
	allocs := testing.AllocsPerRun(200, func() {
		w++
		rec.Window = w
		rec.Conservative = w%3 == 0
		for i := range rec.Local {
			rec.Local[i] = float64(w)
			rec.Granted[i] = float64(w)
			rec.Arrived[i] = float64(w)
			rec.Served[i] = float64(w)
		}
		o.FillTree(rec)
		o.Commit(rec)
	})
	if allocs != 0 {
		t.Fatalf("record path allocates %.1f times per window, want 0", allocs)
	}
}

func TestHandlerEndpoints(t *testing.T) {
	o := NewObserver(ObserverConfig{Redirector: 0, Names: []string{"A", "B"}, RingDepth: 8})
	rec := o.NewRecord()
	rec.Window = 1
	rec.Floor[0], rec.Ceil[0] = 5, 8
	rec.Arrived[0], rec.Served[0] = 10, 2 // under-enforced
	o.Commit(rec)
	rec.Window = 2
	rec.Served[0] = 6
	o.Commit(rec)

	solver := &metrics.SolverStats{}
	solver.CacheMiss()
	solver.RecordSolve(250 * time.Microsecond)
	solver.CacheHit()

	h := NewHandler(HandlerConfig{
		Observers: []*Observer{o},
		Auditor:   o.Auditor(),
		Solver:    solver,
		Mode:      "provider",
		Window:    100 * time.Millisecond,
		Extra: func(w io.Writer) {
			WriteMetric(w, "rsa_l7_admitted_total", "counter", "test", 42)
		},
	})

	rr := httptest.NewRecorder()
	rr.Body.Reset()
	req := httptest.NewRequest("GET", "/metrics", nil)
	h.ServeHTTP(rr, req)
	body := rr.Body.String()
	for _, want := range []string{
		`rsa_redirector_info{mode="provider",window_ms="100"} 1`,
		"rsa_windows_total 2",
		"rsa_windows_conservative_total 0",
		`rsa_windows_under_mc_total{principal="A"} 1`,
		`rsa_windows_over_ub_total{principal="A"} 0`,
		`rsa_served_requests_total{principal="A"} 8`,
		`rsa_arrived_requests_total{principal="A"} 20`,
		"rsa_solver_solves_total 1",
		"rsa_solver_cache_hits_total 1",
		"rsa_solver_cache_misses_total 1",
		"rsa_l7_admitted_total 42",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n---\n%s", want, body)
		}
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/windows?n=1", nil))
	var payload struct {
		Records []Record `json:"records"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &payload); err != nil {
		t.Fatalf("/debug/windows: %v\n%s", err, rr.Body.String())
	}
	if len(payload.Records) != 1 || payload.Records[0].Window != 2 {
		t.Fatalf("/debug/windows?n=1 = %+v, want the latest window (2)", payload.Records)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/windows?n=bogus", nil))
	if rr.Code != 400 {
		t.Errorf("bad n: status %d, want 400", rr.Code)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rr.Code != 200 {
		t.Errorf("pprof cmdline: status %d, want 200", rr.Code)
	}
}

func TestHandlerNilSources(t *testing.T) {
	h := NewHandler(HandlerConfig{})
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("/metrics with no sources: status %d", rr.Code)
	}
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/windows", nil))
	if rr.Code != 200 {
		t.Fatalf("/debug/windows with no observers: status %d", rr.Code)
	}
}

func TestHandlerControlMounts(t *testing.T) {
	// The control plane's admin API must be reachable through the admin
	// mux under every path family it serves — a handler that answers
	// /v1/agreements but 404s /v1/leases strands the lease runbook.
	ctrl := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, "ctrl:"+r.URL.Path)
	})
	h := NewHandler(HandlerConfig{Control: ctrl})
	for _, path := range []string{
		"/v1/agreements",
		"/v1/principals/join",
		"/v1/leases",
		"/v1/leases/renew",
		"/v1/leases/shrink",
	} {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
		if rr.Code != 200 || rr.Body.String() != "ctrl:"+path {
			t.Errorf("%s: status %d body %q, want the control plane", path, rr.Code, rr.Body.String())
		}
	}
}
