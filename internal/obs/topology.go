package obs

import (
	"encoding/json"
	"net/http"
)

// TopologyNode is one redirector's placement in the combining plane as
// reported by GET /v1/topology.
type TopologyNode struct {
	// ID is the tree node id; Region names the declared region ("flat" on
	// a non-hierarchical plane).
	ID     int    `json:"id"`
	Region string `json:"region,omitempty"`
	// Parent is the current parent node id (-1 at the global root).
	Parent int `json:"parent"`
	// Level is the hop distance from the global root (0 at the root).
	Level int `json:"level"`
	// SubRoot marks a regional sub-root (aggregates its region before
	// rolling up into the global tier).
	SubRoot bool `json:"sub_root,omitempty"`
	// Alive is false once the local failure detector pruned the node.
	Alive bool `json:"alive"`
}

// TopologyComponent is one agreement component's tree state.
type TopologyComponent struct {
	// Tree is the component-tree index frames are tagged with.
	Tree int `json:"tree"`
	// Principals names the component's members.
	Principals []string `json:"principals"`
	// Epoch and GlobalEpoch are this node's view of the component tree.
	Epoch       int `json:"epoch"`
	GlobalEpoch int `json:"global_epoch"`
}

// TopologyInfo is the GET /v1/topology response body: the serving node's
// current view of the combining plane. It mirrors internal/topology and
// internal/combining state without importing either (obs sits below both).
type TopologyInfo struct {
	// Self is the serving node's id; Root the current global root.
	Self int `json:"self"`
	Root int `json:"root"`
	// Levels is the tree depth (2 for a flat plane, >=3 hierarchical).
	Levels int `json:"levels"`
	// Nodes lists every declared member with its live placement.
	Nodes []TopologyNode `json:"nodes"`
	// Components lists the per-agreement-component trees and epochs.
	Components []TopologyComponent `json:"components"`
	// Delta compression counters (zero when disabled).
	DeltaEnabled           bool   `json:"delta_enabled"`
	DeltaBytesSaved        uint64 `json:"delta_bytes_saved"`
	DeltaEntriesSuppressed uint64 `json:"delta_entries_suppressed"`
}

// serveTopology answers GET /v1/topology with the node's plane snapshot.
func (h *Handler) serveTopology(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	info := h.cfg.Topology()
	if info == nil {
		http.Error(w, "no combining plane configured", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(info); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
