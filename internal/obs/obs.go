// Package obs is the enforcement observability layer: it turns the paper's
// per-window enforcement decisions — which every redirector takes silently
// against possibly-stale global state — into inspectable artifacts.
//
// Three pieces compose:
//
//   - Window tracing: core.Redirector fills one fixed-size Record per
//     scheduling window (queue snapshots, global-view age, conservative
//     fallback, combining-tree progress, LP solve status, granted credits
//     and the admissions actually made) and commits it to a pre-allocated
//     Ring. The record path performs zero heap allocations, so tracing can
//     stay on under production load (BenchmarkWindowTraceOverhead guards
//     this).
//   - SLA conformance auditing: an Auditor folds committed records into
//     per-principal counters of windows served below the mandatory
//     entitlement share (under-enforcement) and above the mandatory+optional
//     ceiling (over-admission), plus staleness-fallback and solve-failure
//     tallies — the paper's §3.1 guarantee as a scrapeable invariant.
//   - Exposition: Handler serves Prometheus-text /v1/metrics, JSON
//     /v1/debug/windows (the last N trace records) and net/http/pprof, mounted
//     on the Layer-7 redirector's mux and on the optional admin listener of
//     cmd/redirector and cmd/backend. Logger replaces ad-hoc log.Printf
//     calls with leveled logfmt events.
//
// An Observer bundles the three for one redirector. Every per-principal
// counter a single redirector exports is that redirector's local share of
// the global invariant; summing the series across redirectors (for example
// with PromQL sum by (principal)) recovers the aggregate guarantee.
package obs

import (
	"fmt"
	"time"
)

// Record is one per-window trace record. A record describes one completed
// scheduling window: the inputs the redirector scheduled with (filled when
// the window opens) and the outcome (filled when the next window closes it).
// All slices are indexed by principal and pre-allocated; durations are
// nanosecond integers so records marshal to JSON without losing resolution.
type Record struct {
	// Redirector is the admission point that ran the window.
	Redirector int `json:"redirector"`
	// Window is the redirector's window sequence number (1-based).
	Window uint64 `json:"window"`
	// AtNanos is the redirector-relative time the window opened.
	AtNanos int64 `json:"at_ns"`

	// Conservative reports that the window ran in the blind 1/R
	// mandatory-claim fallback (no global view, or one older than the
	// configured staleness bound).
	Conservative bool `json:"conservative"`
	// HaveGlobal reports whether any global aggregate had been received.
	HaveGlobal bool `json:"have_global"`
	// GlobalAgeNanos is how old the global view was when the window opened
	// (0 when none was held).
	GlobalAgeNanos int64 `json:"global_age_ns"`

	// TreeEpoch/TreeGlobalEpoch are the combining-tree's local epoch and the
	// epoch of the last global broadcast applied; the message counters are
	// cumulative since the node started. All zero without a tree.
	TreeEpoch       int    `json:"tree_epoch"`
	TreeGlobalEpoch int    `json:"tree_global_epoch"`
	TreeMsgsIn      uint64 `json:"tree_msgs_in"`
	TreeMsgsOut     uint64 `json:"tree_msgs_out"`

	// Degraded reports the window was scheduled while the health checker held
	// at least one backend down — entitlements were computed from reduced,
	// re-interpreted capacities (§2.2).
	Degraded bool `json:"degraded"`

	// CacheHit reports the window plan came from the engine's shared plan
	// cache; SolveNanos is the wall-clock latency of acquiring the plan
	// (lookup or LP solve). SolveErr marks a window whose solve failed, so
	// the previous window's credits stayed in force.
	CacheHit   bool  `json:"cache_hit"`
	SolveNanos int64 `json:"solve_ns"`
	SolveErr   bool  `json:"solve_err"`

	// ConfigVersion is the engine configuration generation (see
	// core.Engine.Version) the window was scheduled against — the rollout
	// audit trail for runtime renegotiations. 0 when unknown.
	ConfigVersion uint64 `json:"config_version"`

	// Local is the EWMA demand estimate the window scheduled with; Global is
	// the global queue aggregate used (zero when conservative).
	Local  []float64 `json:"local"`
	Global []float64 `json:"global"`
	// Granted is the admission credit issued per principal for this window
	// (excluding the ≤1 request carried over from the previous window).
	Granted []float64 `json:"granted"`
	// Floor and Ceil are this redirector's local share of the per-window
	// enforcement bounds: Floor is the mandatory entitlement share MC_i
	// (scaled by the local demand fraction, or 1/R when conservative), Ceil
	// the mandatory+optional ceiling share. The Auditor clips Floor to the
	// demand actually observed before judging under-enforcement.
	Floor []float64 `json:"floor"`
	Ceil  []float64 `json:"ceil"`
	// Arrived and Served are the outcome: submissions received and
	// admissions made during the window, in average-request cost units.
	Arrived []float64 `json:"arrived"`
	Served  []float64 `json:"served"`
}

// NewRecord pre-allocates a record for n principals.
func NewRecord(n int) *Record {
	return &Record{
		Local:   make([]float64, n),
		Global:  make([]float64, n),
		Granted: make([]float64, n),
		Floor:   make([]float64, n),
		Ceil:    make([]float64, n),
		Arrived: make([]float64, n),
		Served:  make([]float64, n),
	}
}

// copyInto deep-copies r into dst, which must be pre-sized for the same
// number of principals (ring slots are). No allocations.
func (r *Record) copyInto(dst *Record) {
	local, global := dst.Local, dst.Global
	granted, floor, ceil := dst.Granted, dst.Floor, dst.Ceil
	arrived, served := dst.Arrived, dst.Served
	*dst = *r
	dst.Local = append(local[:0], r.Local...)
	dst.Global = append(global[:0], r.Global...)
	dst.Granted = append(granted[:0], r.Granted...)
	dst.Floor = append(floor[:0], r.Floor...)
	dst.Ceil = append(ceil[:0], r.Ceil...)
	dst.Arrived = append(arrived[:0], r.Arrived...)
	dst.Served = append(served[:0], r.Served...)
}

// TreeInfo is a snapshot of combining-tree progress for trace records.
type TreeInfo struct {
	Epoch       int
	GlobalEpoch int
	MsgsIn      uint64
	MsgsOut     uint64
}

// ObserverConfig parameterizes NewObserver.
type ObserverConfig struct {
	// Redirector stamps every record with the admission point's id.
	Redirector int
	// Names labels the principals (defaults to P0, P1, ...); its length
	// fixes the per-record vector width.
	Names []string
	// Principals overrides the vector width when Names is nil.
	Principals int
	// RingDepth is how many trace records are retained (default 256).
	RingDepth int
	// Auditor, when non-nil, is shared with other observers (one auditor per
	// engine aggregates all admission points of a process); nil builds a
	// private one.
	Auditor *Auditor
	// Logger, when non-nil, receives window-level events; nil uses Default.
	Logger *Logger
}

// DefaultRingDepth is the trace-ring capacity used when none is configured:
// at the paper's 100 ms windows it retains the last ~25 s of decisions.
const DefaultRingDepth = 256

// Observer bundles the trace ring, the conformance auditor and the logger
// for one redirector. Commit is safe to call concurrently with ring
// snapshots and metric scrapes; each Observer expects a single committing
// writer (its redirector's window loop).
type Observer struct {
	id         int
	n          int
	ring       *Ring
	auditor    *Auditor
	logger     *Logger
	treeInfo   func() TreeInfo
	healthInfo func() bool
}

// NewObserver builds an observer.
func NewObserver(cfg ObserverConfig) *Observer {
	n := len(cfg.Names)
	if n == 0 {
		n = cfg.Principals
	}
	names := cfg.Names
	if names == nil {
		names = make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("P%d", i)
		}
	}
	depth := cfg.RingDepth
	if depth <= 0 {
		depth = DefaultRingDepth
	}
	aud := cfg.Auditor
	if aud == nil {
		aud = NewAuditor(names)
	}
	return &Observer{
		id:      cfg.Redirector,
		n:       n,
		ring:    NewRing(depth, n),
		auditor: aud,
		logger:  cfg.Logger,
	}
}

// Redirector returns the admission-point id records are stamped with.
func (o *Observer) Redirector() int { return o.id }

// NumPrincipals returns the per-record vector width.
func (o *Observer) NumPrincipals() int { return o.n }

// Ring exposes the trace ring (snapshots for /v1/debug/windows and tests).
func (o *Observer) Ring() *Ring { return o.ring }

// Auditor exposes the conformance auditor.
func (o *Observer) Auditor() *Auditor { return o.auditor }

// Logger returns the observer's logger (never nil).
func (o *Observer) Logger() *Logger {
	if o.logger != nil {
		return o.logger
	}
	return Default()
}

// SetTreeInfo installs a combining-tree snapshot callback, invoked once per
// committed window from the redirector's window loop. The callback runs
// under whatever lock serializes that loop; implementations read the tree
// node directly.
func (o *Observer) SetTreeInfo(fn func() TreeInfo) { o.treeInfo = fn }

// SetHealthInfo installs a degraded-state callback, invoked once per window
// alongside the tree snapshot. It reports whether any backend is currently
// held down by the health checker; windows scheduled in that state carry the
// Degraded flag.
func (o *Observer) SetHealthInfo(fn func() bool) { o.healthInfo = fn }

// NewRecord allocates a record sized for this observer's principals, stamped
// with its redirector id. Redirectors allocate one and reuse it every
// window.
func (o *Observer) NewRecord() *Record {
	rec := NewRecord(o.n)
	rec.Redirector = o.id
	return rec
}

// FillTree stamps rec with the current combining-tree snapshot (no-op
// without a callback). Zero allocations.
func (o *Observer) FillTree(rec *Record) {
	if o.treeInfo == nil {
		return
	}
	ti := o.treeInfo()
	rec.TreeEpoch = ti.Epoch
	rec.TreeGlobalEpoch = ti.GlobalEpoch
	rec.TreeMsgsIn = ti.MsgsIn
	rec.TreeMsgsOut = ti.MsgsOut
}

// FillHealth stamps rec with the current degraded flag (no-op without a
// callback). Zero allocations.
func (o *Observer) FillHealth(rec *Record) {
	if o.healthInfo == nil {
		return
	}
	rec.Degraded = o.healthInfo()
}

// Commit publishes one completed window: the record is appended to the ring
// and folded into the auditor. rec remains owned by the caller and may be
// reused immediately. Zero allocations.
func (o *Observer) Commit(rec *Record) {
	o.ring.Append(rec)
	o.auditor.Observe(rec)
}

// nanos converts a duration defensively (negative clamped to 0).
func nanos(d time.Duration) int64 {
	if d < 0 {
		return 0
	}
	return int64(d)
}

// Nanos is the exported helper record fillers use for duration fields.
func Nanos(d time.Duration) int64 { return nanos(d) }
