package obs

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Verdict classifies how a request span ended at the admission layer.
type Verdict uint8

// Span verdicts. Admit/Steal are the two admission fast/slow paths of the
// sharded plane; Dry is the saturated-principal short-circuit reject; Park,
// Expire and Drop describe the Layer-4 pending-queue outcomes (a span parked
// and later admitted keeps the admit verdict and carries its park time in
// ParkNanos/Reparks instead).
const (
	VerdictNone Verdict = iota
	VerdictAdmit
	VerdictSteal
	VerdictReject
	VerdictDry
	VerdictPark
	VerdictExpire
	VerdictDrop
)

// String names the verdict for JSON and log output.
func (v Verdict) String() string {
	switch v {
	case VerdictAdmit:
		return "admit"
	case VerdictSteal:
		return "admit-steal"
	case VerdictReject:
		return "reject"
	case VerdictDry:
		return "reject-dry"
	case VerdictPark:
		return "park"
	case VerdictExpire:
		return "expire"
	case VerdictDrop:
		return "drop"
	default:
		return "none"
	}
}

// MarshalJSON renders the verdict as its string name.
func (v Verdict) MarshalJSON() ([]byte, error) { return json.Marshal(v.String()) }

// UnmarshalJSON parses a verdict name back into its enum value, so span
// JSON round-trips (flight captures re-read from disk, client tooling).
func (v *Verdict) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for c := VerdictNone; c <= VerdictDrop; c++ {
		if c.String() == s {
			*v = c
			return nil
		}
	}
	return fmt.Errorf("obs: unknown span verdict %q", s)
}

// Span is one request's phase timeline through a redirector: accept,
// admission verdict, optional parking, backend selection, dial, first byte,
// close. All *Nanos fields except ParkNanos are offsets from StartUnixNanos
// (0 = phase never reached); ParkNanos is the total time the request spent
// parked in a pending queue, accumulated across Reparks park episodes.
// Spans are pre-allocated by a Tracer and recorded with zero heap
// allocations; all exported fields are plain values so a committed span
// marshals to JSON directly.
type Span struct {
	// ID is the span's trace reference (its span-ring ticket), assigned
	// when the span is committed; 0 for spans sampled out. Histogram
	// exemplars carry the same reference.
	ID uint64 `json:"id"`
	// Redirector, Window and ConfigVersion tag the span with the admission
	// point, its window sequence number, and the engine configuration
	// generation the window ran under.
	Redirector    int    `json:"redirector"`
	Window        uint64 `json:"window"`
	ConfigVersion uint64 `json:"config_version"`
	// Principal is the requesting principal's name; Shard the admission
	// shard that decided the request (-1 before the verdict).
	Principal string `json:"principal"`
	Shard     int    `json:"shard"`
	// Verdict is the admission outcome; Reparks counts pending-queue park
	// episodes (Layer-4 only).
	Verdict Verdict `json:"verdict"`
	Reparks int     `json:"reparks"`

	// StartUnixNanos is the wall-clock accept time.
	StartUnixNanos int64 `json:"start_unix_ns"`
	// AdmitNanos: admission verdict returned (covers plan/pool swap retries).
	AdmitNanos int64 `json:"admit_ns"`
	// ParkNanos: total parked duration (not an offset; see above).
	ParkNanos int64 `json:"park_ns"`
	// BackendNanos: backend selected.
	BackendNanos int64 `json:"backend_ns"`
	// DialNanos: backend connection established (Layer-4).
	DialNanos int64 `json:"dial_ns"`
	// FirstByteNanos: first response byte from the backend.
	FirstByteNanos int64 `json:"first_byte_ns"`
	// TotalNanos: span closed (set by Finish).
	TotalNanos int64 `json:"total_ns"`

	tr    *Tracer
	slot  uint32
	begin time.Time
}

func (s *Span) sinceStart() int64 { return int64(time.Since(s.begin)) }

// StampAdmit records the admission verdict, the deciding shard, and the
// time the decision took. Nil-safe; zero allocations.
func (s *Span) StampAdmit(v Verdict, shard int) {
	if s == nil {
		return
	}
	s.AdmitNanos = s.sinceStart()
	s.Verdict = v
	s.Shard = shard
}

// SetVerdict overrides the span's verdict (park → expire/drop transitions).
// Nil-safe.
func (s *Span) SetVerdict(v Verdict) {
	if s == nil {
		return
	}
	s.Verdict = v
}

// AddPark accumulates one completed park episode. Nil-safe.
func (s *Span) AddPark(d time.Duration) {
	if s == nil {
		return
	}
	s.ParkNanos += nanos(d)
	s.Reparks++
}

// StampBackend records the backend-selection time. Nil-safe.
func (s *Span) StampBackend() {
	if s == nil {
		return
	}
	s.BackendNanos = s.sinceStart()
}

// StampDial records the backend dial completing. Nil-safe.
func (s *Span) StampDial() {
	if s == nil {
		return
	}
	s.DialNanos = s.sinceStart()
}

// StampFirstByte records the first backend response byte. Nil-safe.
func (s *Span) StampFirstByte() {
	if s == nil {
		return
	}
	s.FirstByteNanos = s.sinceStart()
}

// Finish closes the span: the total duration is computed, the per-phase
// histograms are fed, the sampling decision is made (1-in-N head sampling
// OR slowest-K-per-window tail keep), and a kept span is committed to the
// span ring. It returns the committed span's trace reference (0 when the
// span was sampled out) for histogram exemplars. The span is recycled and
// must not be touched afterwards. Nil-safe; zero heap allocations.
func (s *Span) Finish() uint64 {
	if s == nil {
		return 0
	}
	tr := s.tr
	d := time.Since(s.begin)
	s.TotalNanos = int64(d)
	tr.observePhases(s)

	keep := false
	if n := tr.cfg.SampleEvery; n > 0 && tr.tick.Add(1)%uint64(n) == 0 {
		keep = true
	}
	if tr.tailOffer(s.TotalNanos) {
		keep = true
	}
	var id uint64
	if keep {
		id = tr.ring.Append(s)
		tr.kept.Add(1)
	}
	if fl := tr.flight; fl != nil {
		fl.noteSpan(s, d)
	}
	tr.pool[s.slot].busy.Store(0)
	return id
}

// TraceConfig parameterizes a Tracer. The tracer is enabled when either
// sampling dimension is on; a zero config builds a disabled tracer whose
// Begin returns nil.
type TraceConfig struct {
	// SampleEvery keeps 1 in N finished spans (head sampling); 0 disables.
	SampleEvery int
	// SlowestK always keeps the K slowest spans of each window regardless
	// of head sampling (tail sampling); 0 disables.
	SlowestK int
	// Depth is the span-ring capacity (default 512).
	Depth int
}

// DefaultSpanRingDepth is the span-ring capacity used when none is
// configured.
const DefaultSpanRingDepth = 512

// spanPoolSize bounds concurrently in-flight spans per tracer. Begin
// returns nil (a counted drop) beyond it — tracing stays best-effort
// rather than allocating on the hot path.
const spanPoolSize = 1024

type spanSlot struct {
	busy atomic.Uint32
	sp   Span
	_    [64 - 4]byte // keep adjacent slots' busy flags off one cache line
}

// Tracer hands out pre-allocated request spans and owns their ring. All
// methods are safe for unbounded concurrency; the record path (Begin,
// stamps, Finish) performs zero heap allocations — BenchmarkSpanOverhead
// guards this. A nil *Tracer is a valid disabled tracer.
type Tracer struct {
	cfg        TraceConfig
	redirector int
	ring       *SpanRing
	pool       []spanSlot
	next       atomic.Uint32

	window     atomic.Uint64
	cfgVersion atomic.Uint64

	tick atomic.Uint64 // head-sampling counter

	tailMu     sync.Mutex
	tailTop    []int64 // sorted ascending, ≤ SlowestK entries, reset per window
	tailThresh atomic.Int64

	begun   atomic.Uint64
	kept    atomic.Uint64
	dropped atomic.Uint64

	phaseAdmit *Histogram
	phasePark  *Histogram
	phaseDial  *Histogram
	phaseProxy *Histogram

	flight *FlightRecorder
}

// NewTracer builds a tracer for one redirector. A config with both sampling
// dimensions off yields a tracer whose Begin always returns nil (zero
// per-request cost beyond one predicted branch).
func NewTracer(cfg TraceConfig, redirector int) *Tracer {
	if cfg.Depth <= 0 {
		cfg.Depth = DefaultSpanRingDepth
	}
	tr := &Tracer{
		cfg:        cfg,
		redirector: redirector,
		ring:       NewSpanRing(cfg.Depth),
		pool:       make([]spanSlot, spanPoolSize),
		phaseAdmit: NewHistogram(),
		phasePark:  NewHistogram(),
		phaseDial:  NewHistogram(),
		phaseProxy: NewHistogram(),
	}
	if cfg.SlowestK > 0 {
		tr.tailTop = make([]int64, 0, cfg.SlowestK)
	}
	return tr
}

// Enabled reports whether Begin hands out spans at all.
func (tr *Tracer) Enabled() bool {
	return tr != nil && (tr.cfg.SampleEvery > 0 || tr.cfg.SlowestK > 0)
}

// StartWindow tags subsequent spans with the new window sequence number and
// configuration version and resets the slowest-K tail keeper. Call it from
// the window loop, after the admission plane's own StartWindow.
func (tr *Tracer) StartWindow(window, configVersion uint64) {
	if tr == nil {
		return
	}
	tr.window.Store(window)
	tr.cfgVersion.Store(configVersion)
	if tr.cfg.SlowestK > 0 {
		tr.tailMu.Lock()
		tr.tailTop = tr.tailTop[:0]
		tr.tailThresh.Store(0)
		tr.tailMu.Unlock()
	}
}

// Begin opens a span for one request from the named principal. It returns
// nil — and every stamp on nil is a no-op — when tracing is disabled or the
// in-flight pool is exhausted (a counted drop, never a stall). Zero heap
// allocations.
func (tr *Tracer) Begin(principal string) *Span {
	if !tr.Enabled() {
		return nil
	}
	for probe := 0; probe < 4; probe++ {
		idx := (tr.next.Add(1) - 1) % spanPoolSize
		sl := &tr.pool[idx]
		if sl.busy.CompareAndSwap(0, 1) {
			tr.begun.Add(1)
			now := time.Now()
			sl.sp = Span{
				Redirector:     tr.redirector,
				Window:         tr.window.Load(),
				ConfigVersion:  tr.cfgVersion.Load(),
				Principal:      principal,
				Shard:          -1,
				StartUnixNanos: now.UnixNano(),
				tr:             tr,
				slot:           idx,
				begin:          now,
			}
			return &sl.sp
		}
	}
	tr.dropped.Add(1)
	return nil
}

// tailOffer reports whether a finished span of the given duration belongs
// to the current window's slowest-K set. The fast path is one atomic load
// against the K-th slowest threshold; only genuine tail candidates take the
// mutex.
func (tr *Tracer) tailOffer(d int64) bool {
	k := tr.cfg.SlowestK
	if k <= 0 {
		return false
	}
	if th := tr.tailThresh.Load(); th != 0 && d <= th {
		return false
	}
	tr.tailMu.Lock()
	defer tr.tailMu.Unlock()
	top := tr.tailTop
	if len(top) >= k {
		if d <= top[0] {
			return false
		}
		top = top[1:] // evict the fastest of the kept tail
	}
	// Insert d keeping the slice sorted ascending (K is small).
	i := len(top)
	top = append(top, 0)
	for i > 0 && top[i-1] > d {
		top[i] = top[i-1]
		i--
	}
	top[i] = d
	copy(tr.tailTop[:cap(tr.tailTop)], top)
	tr.tailTop = tr.tailTop[:len(top)]
	if len(top) >= k {
		tr.tailThresh.Store(tr.tailTop[0])
	}
	return true
}

// observePhases feeds the per-phase duration histograms from a finished
// span: admit (accept → verdict), park (total parked), dial (backend
// selected → connected, Layer-4), proxy (backend selected → close).
func (tr *Tracer) observePhases(s *Span) {
	if s.AdmitNanos > 0 {
		tr.phaseAdmit.Observe(time.Duration(s.AdmitNanos))
	}
	if s.ParkNanos > 0 {
		tr.phasePark.Observe(time.Duration(s.ParkNanos))
	}
	if s.DialNanos > 0 && s.BackendNanos > 0 {
		tr.phaseDial.Observe(time.Duration(s.DialNanos - s.BackendNanos))
	}
	if s.BackendNanos > 0 {
		tr.phaseProxy.Observe(time.Duration(s.TotalNanos - s.BackendNanos))
	}
}

// ObserveDial records a backend dial latency directly (Layer-7 transports
// dial inside the HTTP client where no span is in scope). Nil-safe.
func (tr *Tracer) ObserveDial(d time.Duration) {
	if tr == nil {
		return
	}
	tr.phaseDial.Observe(d)
}

// PhaseHistograms exposes the per-phase duration distributions (admit,
// park, dial, proxy) for fleet aggregation and scrapes. Nil receivers
// return all-nil histograms.
func (tr *Tracer) PhaseHistograms() (admit, park, dial, proxy *Histogram) {
	if tr == nil {
		return nil, nil, nil, nil
	}
	return tr.phaseAdmit, tr.phasePark, tr.phaseDial, tr.phaseProxy
}

// Ring exposes the span ring (snapshots for /v1/debug/trace and flight
// captures). Nil for a nil tracer.
func (tr *Tracer) Ring() *SpanRing {
	if tr == nil {
		return nil
	}
	return tr.ring
}

// Counts reports the tracer's lifetime totals: spans begun, spans kept
// (committed to the ring), and spans dropped on pool exhaustion.
func (tr *Tracer) Counts() (begun, kept, dropped uint64) {
	if tr == nil {
		return 0, 0, 0
	}
	return tr.begun.Load(), tr.kept.Load(), tr.dropped.Load()
}

// SpanRing is a fixed-capacity buffer of the most recent committed spans,
// with the same discipline as Ring: one atomic ticket fetch to reserve a
// slot, a per-slot mutex held only for the bounded struct copy, zero
// allocations on the write path. The commit ticket doubles as the span's
// trace reference.
type SpanRing struct {
	depth  uint64
	ticket atomic.Uint64
	slots  []spanRingSlot
}

type spanRingSlot struct {
	mu     sync.Mutex
	ticket uint64 // 1 + the reservation that wrote sp; 0 = never written
	sp     Span
}

// NewSpanRing builds a ring retaining the last depth spans (≤ 0 selects
// DefaultSpanRingDepth).
func NewSpanRing(depth int) *SpanRing {
	if depth <= 0 {
		depth = DefaultSpanRingDepth
	}
	return &SpanRing{depth: uint64(depth), slots: make([]spanRingSlot, depth)}
}

// Depth reports the ring capacity.
func (r *SpanRing) Depth() int { return int(r.depth) }

// Len reports how many spans have ever been committed.
func (r *SpanRing) Len() uint64 { return r.ticket.Load() }

// Append commits one span and returns its trace reference (1-based commit
// ticket, also written to sp.ID). The caller keeps ownership of sp. Zero
// allocations.
func (r *SpanRing) Append(sp *Span) uint64 {
	t := r.ticket.Add(1) - 1
	sp.ID = t + 1
	s := &r.slots[t%r.depth]
	s.mu.Lock()
	if s.ticket <= t { // a lagging writer must not clobber a newer span
		s.ticket = t + 1
		s.sp = *sp
	}
	s.mu.Unlock()
	return t + 1
}

// Snapshot returns up to max of the most recent spans, oldest first. Slots
// being rewritten by a wrapping writer are skipped, so the result can be
// shorter than max even on a full ring.
func (r *SpanRing) Snapshot(max int) []Span {
	if max <= 0 || max > int(r.depth) {
		max = int(r.depth)
	}
	end := r.ticket.Load()
	start := uint64(0)
	if end > uint64(max) {
		start = end - uint64(max)
	}
	out := make([]Span, 0, end-start)
	for t := start; t < end; t++ {
		s := &r.slots[t%r.depth]
		s.mu.Lock()
		if s.ticket == t+1 {
			c := s.sp
			c.tr = nil
			out = append(out, c)
		}
		s.mu.Unlock()
	}
	return out
}
