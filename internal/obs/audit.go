package obs

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"
)

// auditTol absorbs floating-point dust when comparing served volume against
// entitlement bounds.
const auditTol = 1e-6

// carrySlack is the ≤1 request of unused credit §4.1's scheme carries across
// windows: a window may legitimately admit up to one request beyond its
// fresh grant.
const carrySlack = 1.0

// Auditor folds committed window records into the paper's enforcement
// invariant: every window, each principal must be served at least its
// mandatory entitlement share (clipped to observed demand) and at most its
// mandatory+optional ceiling. All counters are atomic; one auditor is
// typically shared by every redirector of a process. A nil *Auditor is a
// valid no-op receiver.
//
// The per-principal verdicts are local to the auditing redirector: Floor and
// Ceil in each record are that redirector's share of the global bounds, so a
// fleet-wide invariant check sums the exported counters across redirectors.
type Auditor struct {
	names []string

	windows      atomic.Int64
	conservative atomic.Int64 // staleness / blind fallback windows
	noGlobal     atomic.Int64 // windows with no global view at all
	solveErrors  atomic.Int64 // windows left on stale credits by LP failure
	cacheHits    atomic.Int64 // windows whose plan came from the shared cache
	degraded     atomic.Int64 // windows scheduled on reduced (re-interpreted) capacity

	underMC []atomic.Int64 // windows served below the mandatory share
	overUB  []atomic.Int64 // windows admitted above the MC+OC ceiling
	served  []atomicFloat64
	arrived []atomicFloat64

	// versionSlots detects mixed-version windows during configuration
	// rollouts: slot w%128 holds window<<16 | version&0xffff for the newest
	// window number observed in it. Two redirectors committing the same
	// window number with different configuration versions bump mixedVersion
	// — the epoch-gate invariant ("no window mixes old and new
	// entitlements") as a scrapeable counter. Windows are 1-based, so the
	// zero slot never aliases a real observation.
	versionSlots [versionSlotCount]atomic.Uint64
	mixedVersion atomic.Int64

	// onUnderFloor, when set, is called for each under-floor verdict with
	// the offending record and principal index (flight-recorder trigger).
	onUnderFloor atomic.Pointer[func(rec *Record, principal int)]
}

// versionSlotCount is the mixed-version detector's ring size; it only needs
// to cover the windows simultaneously in flight across redirectors.
const versionSlotCount = 128

// NewAuditor builds an auditor labeling principals with names.
func NewAuditor(names []string) *Auditor {
	n := len(names)
	return &Auditor{
		names:   append([]string(nil), names...),
		underMC: make([]atomic.Int64, n),
		overUB:  make([]atomic.Int64, n),
		served:  make([]atomicFloat64, n),
		arrived: make([]atomicFloat64, n),
	}
}

// Names returns the principal labels.
func (a *Auditor) Names() []string {
	if a == nil {
		return nil
	}
	return a.names
}

// Observe folds one completed window record into the counters. Zero
// allocations; safe for concurrent use.
func (a *Auditor) Observe(rec *Record) {
	if a == nil {
		return
	}
	a.windows.Add(1)
	if rec.Conservative {
		a.conservative.Add(1)
	}
	if !rec.HaveGlobal {
		a.noGlobal.Add(1)
	}
	if rec.SolveErr {
		a.solveErrors.Add(1)
	}
	if rec.CacheHit {
		a.cacheHits.Add(1)
	}
	if rec.Degraded {
		a.degraded.Add(1)
	}
	if rec.ConfigVersion > 0 {
		slot := &a.versionSlots[rec.Window%versionSlotCount]
		packed := rec.Window<<16 | (rec.ConfigVersion & 0xffff)
		for {
			old := slot.Load()
			if old>>16 > rec.Window {
				break // a newer window already owns the slot
			}
			if old>>16 == rec.Window {
				if old&0xffff != packed&0xffff {
					a.mixedVersion.Add(1)
				}
				break
			}
			if slot.CompareAndSwap(old, packed) {
				break
			}
		}
	}
	n := len(a.underMC)
	if len(rec.Served) < n {
		n = len(rec.Served)
	}
	for i := 0; i < n; i++ {
		served, demand := rec.Served[i], rec.Arrived[i]
		a.served[i].Add(served)
		a.arrived[i].Add(demand)
		// Under-enforcement: demand at or above the mandatory share existed
		// and the window still served less than that share.
		floor := rec.Floor[i]
		if demand < floor {
			floor = demand
		}
		if served+auditTol < floor {
			a.underMC[i].Add(1)
			if fn := a.onUnderFloor.Load(); fn != nil {
				(*fn)(rec, i)
			}
		}
		// Over-admission: the window admitted beyond the agreement ceiling
		// plus the one-request credit carry the scheme permits.
		if rec.Ceil[i] < math.MaxFloat64 && served > rec.Ceil[i]+carrySlack+auditTol {
			a.overUB[i].Add(1)
		}
	}
}

// setOnUnderFloor installs the under-floor verdict hook (nil clears it).
func (a *Auditor) setOnUnderFloor(fn func(rec *Record, principal int)) {
	if a == nil {
		return
	}
	if fn == nil {
		a.onUnderFloor.Store(nil)
		return
	}
	a.onUnderFloor.Store(&fn)
}

// Windows reports how many windows have been audited.
func (a *Auditor) Windows() int64 {
	if a == nil {
		return 0
	}
	return a.windows.Load()
}

// Conservative reports windows run in the blind 1/R mandatory fallback.
func (a *Auditor) Conservative() int64 {
	if a == nil {
		return 0
	}
	return a.conservative.Load()
}

// NoGlobal reports windows run before any global aggregate arrived.
func (a *Auditor) NoGlobal() int64 {
	if a == nil {
		return 0
	}
	return a.noGlobal.Load()
}

// SolveErrors reports windows whose LP solve failed (stale credits reused).
func (a *Auditor) SolveErrors() int64 {
	if a == nil {
		return 0
	}
	return a.solveErrors.Load()
}

// CacheHits reports windows planned from the shared plan cache.
func (a *Auditor) CacheHits() int64 {
	if a == nil {
		return 0
	}
	return a.cacheHits.Load()
}

// Degraded reports windows scheduled while the health checker held at least
// one backend down (entitlements recomputed from reduced capacity).
func (a *Auditor) Degraded() int64 {
	if a == nil {
		return 0
	}
	return a.degraded.Load()
}

// MixedVersion reports how many times two redirectors ran the same window
// number against different configuration versions — zero whenever the
// epoch-gated rollout swapped every admission point atomically at a window
// boundary.
func (a *Auditor) MixedVersion() int64 {
	if a == nil {
		return 0
	}
	return a.mixedVersion.Load()
}

// UnderMC reports windows in which principal i was served below its
// mandatory share despite sufficient demand.
func (a *Auditor) UnderMC(i int) int64 {
	if a == nil || i < 0 || i >= len(a.underMC) {
		return 0
	}
	return a.underMC[i].Load()
}

// OverUB reports windows in which principal i was admitted above its
// mandatory+optional ceiling (beyond the one-request carry).
func (a *Auditor) OverUB(i int) int64 {
	if a == nil || i < 0 || i >= len(a.overUB) {
		return 0
	}
	return a.overUB[i].Load()
}

// Served reports the cumulative admitted volume for principal i.
func (a *Auditor) Served(i int) float64 {
	if a == nil || i < 0 || i >= len(a.served) {
		return 0
	}
	return a.served[i].Load()
}

// Arrived reports the cumulative observed demand for principal i.
func (a *Auditor) Arrived(i int) float64 {
	if a == nil || i < 0 || i >= len(a.arrived) {
		return 0
	}
	return a.arrived[i].Load()
}

// String renders a one-line operator summary.
func (a *Auditor) String() string {
	if a == nil {
		return "auditor: disabled"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "audited %d windows (%d conservative, %d solve errors):",
		a.Windows(), a.Conservative(), a.SolveErrors())
	for i, name := range a.names {
		fmt.Fprintf(&sb, " %s under=%d over=%d", name, a.UnderMC(i), a.OverUB(i))
	}
	return sb.String()
}

// atomicFloat64 is an atomic float accumulator (CAS on the bit pattern).
type atomicFloat64 struct {
	bits atomic.Uint64
}

func (f *atomicFloat64) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat64) Load() float64 {
	return math.Float64frombits(f.bits.Load())
}
