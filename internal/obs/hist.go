package obs

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
	"time"
)

// histBuckets is the fixed bucket count of a Histogram: logarithmic upper
// bounds from 1 µs to 1µs·2^27 ≈ 134 s, which spans everything from an
// in-process admission decision to a request parked across many windows.
const histBuckets = 28

// histBase is the upper bound of bucket zero.
const histBase = time.Microsecond

// Histogram is a pre-allocated, log2-bucketed latency distribution safe for
// concurrent use: Observe is one atomic add per sample plus a lock-free max
// update, with no allocation anywhere on the record path. Bucket b holds
// samples ≤ 1µs·2^b; quantiles are therefore upper bounds at power-of-two
// resolution, which is exactly the precision a p99/p999 check needs while
// keeping the whole structure a few hundred bytes.
//
// The load generator records send-schedule-based latencies into Histograms
// (one per principal), and obs.Handler exposes them on /v1/metrics in the
// Prometheus histogram exposition format. A nil *Histogram is a valid no-op
// receiver.
type Histogram struct {
	bucket [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
	max    atomic.Int64 // nanoseconds
	ex     [histBuckets]exemplar
}

// exemplar is one per-bucket trace reference: the span ID and duration of
// the most recent exemplified sample landing in the bucket. The two words
// are stored independently (a torn read pairs a ref with a near-miss
// duration from the same bucket — harmless for a debugging breadcrumb).
type exemplar struct {
	ref   atomic.Uint64
	nanos atomic.Int64
}

// NewHistogram builds an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// histBucketFor maps a duration to its bucket index.
func histBucketFor(d time.Duration) int {
	if d <= histBase {
		return 0
	}
	b := int(math.Ceil(math.Log2(float64(d) / float64(histBase))))
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// HistogramBucketUpper is the inclusive upper bound of bucket b (the last
// bucket absorbs everything above it).
func HistogramBucketUpper(b int) time.Duration {
	if b < 0 {
		b = 0
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return histBase << uint(b)
}

// Observe records one sample. Negative durations are dropped.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil || d < 0 {
		return
	}
	h.bucket[histBucketFor(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		old := h.max.Load()
		if int64(d) <= old || h.max.CompareAndSwap(old, int64(d)) {
			return
		}
	}
}

// ObserveExemplar records one sample and, when ref is non-zero, tags the
// sample's bucket with the trace reference so a scrape can jump from a
// latency bucket to the span behind it (`/v1/debug/trace`). ref 0 (a span
// that was sampled out) degrades to a plain Observe. Zero allocations.
func (h *Histogram) ObserveExemplar(d time.Duration, ref uint64) {
	if h == nil || d < 0 {
		return
	}
	h.Observe(d)
	if ref != 0 {
		e := &h.ex[histBucketFor(d)]
		e.ref.Store(ref)
		e.nanos.Store(int64(d))
	}
}

// Count reports the number of recorded samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the total of all recorded samples.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Max reports the largest recorded sample.
func (h *Histogram) Max() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.max.Load())
}

// Mean reports the average sample (0 when empty).
func (h *Histogram) Mean() time.Duration {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile reports an upper bound on the q-quantile (0 < q ≤ 1) at bucket
// resolution. Concurrent Observe calls may be partially visible; quantiles
// of a live histogram are best read after the load has drained.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	need := int64(math.Ceil(q * float64(total)))
	var seen int64
	for b := 0; b < histBuckets; b++ {
		seen += h.bucket[b].Load()
		if seen >= need {
			return HistogramBucketUpper(b)
		}
	}
	return HistogramBucketUpper(histBuckets - 1)
}

// Merge folds other's samples into h (aggregating per-stream histograms
// into a fleet-wide distribution). Neither histogram may be receiving
// concurrent Observe calls during the merge.
func (h *Histogram) Merge(other *Histogram) {
	if h == nil || other == nil {
		return
	}
	for b := 0; b < histBuckets; b++ {
		if n := other.bucket[b].Load(); n != 0 {
			h.bucket[b].Add(n)
		}
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
	if m := other.max.Load(); m > h.max.Load() {
		h.max.Store(m)
	}
}

// Snapshot copies the cumulative bucket counts (counts of samples ≤ each
// bucket's upper bound), the Prometheus histogram convention.
func (h *Histogram) Snapshot() [histBuckets]int64 {
	var out [histBuckets]int64
	if h == nil {
		return out
	}
	var cum int64
	for b := 0; b < histBuckets; b++ {
		cum += h.bucket[b].Load()
		out[b] = cum
	}
	return out
}

// WriteHistogram emits one histogram family in the Prometheus text
// exposition format: <name>_bucket{le="..."} series in seconds, plus
// <name>_sum and <name>_count. Empty buckets below the first occupied one
// are skipped to keep scrapes small; the +Inf bucket is always present.
// Buckets holding an exemplar carry an OpenMetrics-style trailing
// `# {trace_ref="<id>"} <seconds>` annotation linking the bucket to a span
// in /v1/debug/trace.
func WriteHistogram(w io.Writer, name, help string, h *Histogram) {
	if h == nil {
		return
	}
	promHeader(w, name, "histogram", help)
	cum := h.Snapshot()
	started := false
	for b := 0; b < histBuckets; b++ {
		if !started && cum[b] == 0 {
			continue
		}
		started = true
		if ref := h.ex[b].ref.Load(); ref != 0 {
			fmt.Fprintf(w, "%s_bucket{le=%q} %d # {trace_ref=\"%d\"} %s\n",
				name, formatFloat(HistogramBucketUpper(b).Seconds()), cum[b],
				ref, formatFloat(time.Duration(h.ex[b].nanos.Load()).Seconds()))
			continue
		}
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n",
			name, formatFloat(HistogramBucketUpper(b).Seconds()), cum[b])
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count())
	fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(h.Sum().Seconds()))
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
}
