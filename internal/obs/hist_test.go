package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	// 90 fast samples, 9 mid, 1 slow: p50 small, p99 mid, p999 ≥ slow bucket.
	for i := 0; i < 90; i++ {
		h.Observe(500 * time.Microsecond)
	}
	for i := 0; i < 9; i++ {
		h.Observe(40 * time.Millisecond)
	}
	h.Observe(2 * time.Second)

	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	if got := h.Max(); got != 2*time.Second {
		t.Fatalf("max = %v, want 2s", got)
	}
	p50 := h.Quantile(0.50)
	if p50 > time.Millisecond {
		t.Fatalf("p50 = %v, want ≤ 1ms", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 40*time.Millisecond || p99 > 128*time.Millisecond {
		t.Fatalf("p99 = %v, want in the ~64ms bucket", p99)
	}
	if p999 := h.Quantile(0.999); p999 < 2*time.Second {
		t.Fatalf("p999 = %v, want ≥ 2s", p999)
	}
	// Quantiles are monotone in q.
	if p50 > p99 || p99 > h.Quantile(1) {
		t.Fatalf("quantiles not monotone: p50=%v p99=%v p100=%v", p50, p99, h.Quantile(1))
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(time.Second)
	if h.Count() != 0 || h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("nil histogram must be a no-op")
	}
	var sb strings.Builder
	WriteHistogram(&sb, "x", "help", h)
	if sb.Len() != 0 {
		t.Fatalf("nil histogram wrote %q", sb.String())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w+1) * time.Millisecond)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
	if got := h.Max(); got != workers*time.Millisecond {
		t.Fatalf("max = %v, want %v", got, workers*time.Millisecond)
	}
}

func TestWriteHistogramExposition(t *testing.T) {
	h := NewHistogram()
	h.Observe(3 * time.Millisecond)
	h.Observe(10 * time.Millisecond)
	var sb strings.Builder
	WriteHistogram(&sb, "rsa_test_seconds", "Test latency.", h)
	out := sb.String()
	for _, want := range []string{
		"# TYPE rsa_test_seconds histogram",
		`rsa_test_seconds_bucket{le="+Inf"} 2`,
		"rsa_test_seconds_count 2",
		"rsa_test_seconds_sum 0.013",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative buckets must be non-decreasing and end at the count.
	snap := h.Snapshot()
	for b := 1; b < len(snap); b++ {
		if snap[b] < snap[b-1] {
			t.Fatalf("bucket %d cumulative %d < %d", b, snap[b], snap[b-1])
		}
	}
	if snap[len(snap)-1] != h.Count() {
		t.Fatalf("last cumulative bucket %d != count %d", snap[len(snap)-1], h.Count())
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Observe(time.Millisecond)
	a.Observe(2 * time.Millisecond)
	b.Observe(50 * time.Millisecond)
	a.Merge(b)
	if a.Count() != 3 {
		t.Fatalf("count = %d, want 3", a.Count())
	}
	if a.Sum() != 53*time.Millisecond {
		t.Fatalf("sum = %v", a.Sum())
	}
	if a.Max() != 50*time.Millisecond {
		t.Fatalf("max = %v", a.Max())
	}
	if q := a.Quantile(1); q < 50*time.Millisecond {
		t.Fatalf("p100 = %v, want ≥ 50ms", q)
	}
	a.Merge(nil)
	var nilh *Histogram
	nilh.Merge(a) // must not panic
}
