package lp

import (
	"math"
	"math/rand"
	"testing"
)

// lexCold is the from-scratch reference for SolveLex: solve the primary
// problem, then build a brand-new problem with the floor row appended and the
// secondary objective, and solve that cold. SolveLex's warm-started second
// pass must agree on both objective values (the optimal point need not be
// unique, the objectives are).
func lexCold(t *testing.T, p *Problem, tol float64, obj2 []float64) *LexSolution {
	t.Helper()
	sol1, err := Solve(p)
	if err != nil {
		t.Fatalf("cold primary solve: %v", err)
	}
	out := &LexSolution{Status: sol1.Status}
	if sol1.Status != Optimal {
		return out
	}
	out.Primary = sol1.Objective
	out.X = append([]float64(nil), sol1.X...)

	floor := &Problem{
		Objective:   obj2,
		Constraints: make([]Constraint, 0, len(p.Constraints)+1),
	}
	floor.Constraints = append(floor.Constraints, p.Constraints...)
	floor.Constraints = append(floor.Constraints, Constraint{
		Coeffs: append([]float64(nil), p.Objective...),
		Rel:    GE,
		RHS:    sol1.Objective - tol,
	})
	sol2, err := Solve(floor)
	if err != nil || sol2.Status != Optimal {
		out.Secondary = dot(obj2, out.X)
		return out
	}
	out.X = append(out.X[:0], sol2.X...)
	out.Secondary = sol2.Objective
	return out
}

// randomLexProblem builds a bounded feasible LP: random objective, a few
// random LE rows with non-negative coefficients and positive RHS (so x = 0 is
// feasible and the non-negative orthant slice is bounded).
func randomLexProblem(rng *rand.Rand) (*Problem, []float64) {
	nv := 2 + rng.Intn(5)
	nc := 1 + rng.Intn(5)
	p := &Problem{Objective: make([]float64, nv)}
	for j := range p.Objective {
		p.Objective[j] = math.Round(rng.Float64()*20-5) / 2
	}
	for c := 0; c < nc; c++ {
		coeffs := make([]float64, nv)
		for j := range coeffs {
			coeffs[j] = math.Round(rng.Float64()*10) / 2
		}
		p.Constraints = append(p.Constraints, Constraint{
			Coeffs: coeffs, Rel: LE, RHS: 1 + math.Round(rng.Float64()*50),
		})
	}
	// A box keeps every instance bounded even when a column has all-zero
	// constraint coefficients.
	box := make([]float64, nv)
	for j := range box {
		box[j] = 1
	}
	p.Constraints = append(p.Constraints, Constraint{Coeffs: box, Rel: LE, RHS: 1e4})

	obj2 := make([]float64, nv)
	for j := range obj2 {
		obj2[j] = 1
	}
	return p, obj2
}

func TestSolveLexMatchesColdTwoPass(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewSolver()
	for iter := 0; iter < 300; iter++ {
		p, obj2 := randomLexProblem(rng)
		warm, err := s.SolveLex(p, 1e-9, obj2)
		if err != nil {
			t.Fatalf("iter %d: SolveLex: %v", iter, err)
		}
		cold := lexCold(t, p, 1e-9, obj2)
		if warm.Status != cold.Status {
			t.Fatalf("iter %d: status %v vs cold %v", iter, warm.Status, cold.Status)
		}
		if warm.Status != Optimal {
			continue
		}
		if math.Abs(warm.Primary-cold.Primary) > 1e-6 {
			t.Fatalf("iter %d: primary %g vs cold %g\n%+v", iter, warm.Primary, cold.Primary, p)
		}
		if math.Abs(warm.Secondary-cold.Secondary) > 1e-5 {
			t.Fatalf("iter %d: secondary %g vs cold %g\n%+v", iter, warm.Secondary, cold.Secondary, p)
		}
		if !feasible(p, warm.X, 1e-6) {
			t.Fatalf("iter %d: warm point infeasible: %v", iter, warm.X)
		}
	}
}

func TestSolverReuseMatchesSolve(t *testing.T) {
	// One Solver across problems of different shapes must reproduce the
	// package-level Solve exactly — tableau reuse may not leak state.
	rng := rand.New(rand.NewSource(11))
	s := NewSolver()
	for iter := 0; iter < 200; iter++ {
		p, _ := randomLexProblem(rng)
		got, err := s.Solve(p)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		want := mustSolve(t, p)
		if got.Status != want.Status {
			t.Fatalf("iter %d: status %v vs %v", iter, got.Status, want.Status)
		}
		if got.Status == Optimal {
			if math.Abs(got.Objective-want.Objective) > 1e-6 {
				t.Fatalf("iter %d: objective %g vs %g", iter, got.Objective, want.Objective)
			}
			for j := range want.X {
				if math.Abs(got.X[j]-want.X[j]) > 1e-6 {
					t.Fatalf("iter %d: x = %v, want %v", iter, got.X, want.X)
				}
			}
		}
	}
}

func TestSolveLexInfeasible(t *testing.T) {
	p := &Problem{
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Rel: GE, RHS: 2},
			{Coeffs: []float64{1}, Rel: LE, RHS: 1},
		},
	}
	sol, err := NewSolver().SolveLex(p, 1e-9, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestSolveLexUnbounded(t *testing.T) {
	p := &Problem{
		Objective: []float64{1, 0},
		Constraints: []Constraint{
			{Coeffs: []float64{0, 1}, Rel: LE, RHS: 1},
		},
	}
	sol, err := NewSolver().SolveLex(p, 1e-9, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestSolveLexImprovesSecondary(t *testing.T) {
	// max x1 s.t. x1 ≤ 1, x1+x2 ≤ 3: primary optimum x1=1 leaves x2 free in
	// [0,2]; the throughput pass must push x1+x2 to 3.
	p := &Problem{
		Objective: []float64{1, 0},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 0}, Rel: LE, RHS: 1},
			{Coeffs: []float64{1, 1}, Rel: LE, RHS: 3},
		},
	}
	sol, err := NewSolver().SolveLex(p, 1e-9, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Primary-1) > 1e-9 || math.Abs(sol.Secondary-3) > 1e-9 {
		t.Fatalf("primary %g secondary %g, want 1 and 3", sol.Primary, sol.Secondary)
	}
	if math.Abs(sol.X[0]-1) > 1e-9 || math.Abs(sol.X[1]-2) > 1e-9 {
		t.Fatalf("x = %v, want [1 2]", sol.X)
	}
}

func TestSolverValidatesInput(t *testing.T) {
	s := NewSolver()
	if _, err := s.Solve(&Problem{Objective: []float64{math.NaN()}}); err == nil {
		t.Fatal("NaN objective accepted")
	}
	if _, err := s.SolveLex(&Problem{Objective: []float64{1}}, 1e-9, []float64{1, 2}); err == nil {
		t.Fatal("mismatched obj2 length accepted")
	}
}

func BenchmarkSolverReuse(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	p, obj2 := randomLexProblem(rng)
	s := NewSolver()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SolveLex(p, 1e-9, obj2); err != nil {
			b.Fatal(err)
		}
	}
}
