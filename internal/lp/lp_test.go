package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustSolve(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return sol
}

func wantOptimal(t *testing.T, sol *Solution, obj float64, x []float64) {
	t.Helper()
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if math.Abs(sol.Objective-obj) > 1e-6 {
		t.Fatalf("objective = %g, want %g", sol.Objective, obj)
	}
	if x != nil {
		for j := range x {
			if math.Abs(sol.X[j]-x[j]) > 1e-6 {
				t.Fatalf("x = %v, want %v", sol.X, x)
			}
		}
	}
}

func TestSimpleMaximize(t *testing.T) {
	// max 3x + 2y s.t. x+y ≤ 4, x+3y ≤ 6 → x=4, y=0, obj 12.
	p := &Problem{
		Objective: []float64{3, 2},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: LE, RHS: 4},
			{Coeffs: []float64{1, 3}, Rel: LE, RHS: 6},
		},
	}
	wantOptimal(t, mustSolve(t, p), 12, []float64{4, 0})
}

func TestClassicTwoVar(t *testing.T) {
	// max 5x + 4y s.t. 6x+4y ≤ 24, x+2y ≤ 6 → x=3, y=1.5, obj 21.
	p := &Problem{
		Objective: []float64{5, 4},
		Constraints: []Constraint{
			{Coeffs: []float64{6, 4}, Rel: LE, RHS: 24},
			{Coeffs: []float64{1, 2}, Rel: LE, RHS: 6},
		},
	}
	wantOptimal(t, mustSolve(t, p), 21, []float64{3, 1.5})
}

func TestEqualityConstraint(t *testing.T) {
	// max x + y s.t. x + y = 5, x ≤ 3 → obj 5.
	p := &Problem{
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: EQ, RHS: 5},
			{Coeffs: []float64{1, 0}, Rel: LE, RHS: 3},
		},
	}
	sol := mustSolve(t, p)
	wantOptimal(t, sol, 5, nil)
	if sol.X[0] > 3+1e-9 {
		t.Fatalf("x exceeds bound: %v", sol.X)
	}
}

func TestGEConstraintNeedsPhase1(t *testing.T) {
	// min x+y s.t. x+y ≥ 4, i.e. max −x−y → obj −4.
	p := &Problem{
		Objective: []float64{-1, -1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: GE, RHS: 4},
		},
	}
	wantOptimal(t, mustSolve(t, p), -4, nil)
}

func TestInfeasible(t *testing.T) {
	p := &Problem{
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Rel: GE, RHS: 5},
			{Coeffs: []float64{1}, Rel: LE, RHS: 3},
		},
	}
	sol := mustSolve(t, p)
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := &Problem{
		Objective: []float64{1, 0},
		Constraints: []Constraint{
			{Coeffs: []float64{0, 1}, Rel: LE, RHS: 1},
		},
	}
	sol := mustSolve(t, p)
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// x − y ≤ −2 with max x, x,y ≥ 0 and y ≤ 10 → x = 8.
	p := &Problem{
		Objective: []float64{1, 0},
		Constraints: []Constraint{
			{Coeffs: []float64{1, -1}, Rel: LE, RHS: -2},
			{Coeffs: []float64{0, 1}, Rel: LE, RHS: 10},
		},
	}
	wantOptimal(t, mustSolve(t, p), 8, []float64{8, 10})
}

func TestRedundantEqualityRows(t *testing.T) {
	// Duplicate equality rows force evictArtificials to drop a redundant row.
	p := &Problem{
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: EQ, RHS: 4},
			{Coeffs: []float64{2, 2}, Rel: EQ, RHS: 8},
			{Coeffs: []float64{1, 0}, Rel: LE, RHS: 1},
		},
	}
	wantOptimal(t, mustSolve(t, p), 4, nil)
}

func TestDegenerateCyclingGuard(t *testing.T) {
	// Beale's classic cycling example; Bland's rule must terminate.
	p := &Problem{
		Objective: []float64{0.75, -150, 0.02, -6},
		Constraints: []Constraint{
			{Coeffs: []float64{0.25, -60, -0.04, 9}, Rel: LE, RHS: 0},
			{Coeffs: []float64{0.5, -90, -0.02, 3}, Rel: LE, RHS: 0},
			{Coeffs: []float64{0, 0, 1, 0}, Rel: LE, RHS: 1},
		},
	}
	wantOptimal(t, mustSolve(t, p), 0.05, nil)
}

func TestZeroRHSEquality(t *testing.T) {
	p := &Problem{
		Objective: []float64{1, -1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, -1}, Rel: EQ, RHS: 0},
			{Coeffs: []float64{1, 0}, Rel: LE, RHS: 7},
		},
	}
	wantOptimal(t, mustSolve(t, p), 0, nil)
}

func TestShortCoeffRowsArePadded(t *testing.T) {
	p := &Problem{
		Objective: []float64{1, 1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Rel: LE, RHS: 2},       // x0 ≤ 2
			{Coeffs: []float64{0, 1, 1}, Rel: LE, RHS: 3}, // x1+x2 ≤ 3
		},
	}
	wantOptimal(t, mustSolve(t, p), 5, nil)
}

func TestMalformedProblems(t *testing.T) {
	cases := []*Problem{
		{Objective: nil},
		{Objective: []float64{1}, Constraints: []Constraint{{Coeffs: []float64{1, 2}, Rel: LE, RHS: 1}}},
		{Objective: []float64{math.NaN()}},
		{Objective: []float64{1}, Constraints: []Constraint{{Coeffs: []float64{math.Inf(1)}, Rel: LE, RHS: 1}}},
		{Objective: []float64{1}, Constraints: []Constraint{{Coeffs: []float64{1}, Rel: LE, RHS: math.NaN()}}},
	}
	for i, p := range cases {
		if _, err := Solve(p); err == nil {
			t.Errorf("case %d: want error for malformed problem", i)
		}
	}
}

func TestBuilderEndToEnd(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 3)
	y := b.Var("y", 2)
	b.Constrain(LE, 4, T(x, 1), T(y, 1))
	b.Constrain(LE, 6, T(x, 1), T(y, 3))
	sol, err := b.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	wantOptimal(t, sol, 12, nil)
	if got := b.Value(sol, x); math.Abs(got-4) > 1e-6 {
		t.Fatalf("Value(x) = %g, want 4", got)
	}
	if b.String() == "" {
		t.Fatal("String() should render the model")
	}
}

func TestBuilderBounds(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 1)
	b.Bound(x, 2, 5)
	sol, err := b.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	wantOptimal(t, sol, 5, []float64{5})

	b2 := NewBuilder()
	y := b2.Var("y", -1) // minimize y with y ≥ 2
	b2.Bound(y, 2, math.Inf(1))
	sol2, err := b2.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	wantOptimal(t, sol2, -2, []float64{2})
}

func TestBuilderDuplicateTermsAccumulate(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 1)
	b.Constrain(LE, 6, T(x, 1), T(x, 2)) // 3x ≤ 6
	sol, err := b.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	wantOptimal(t, sol, 2, []float64{2})
}

func TestBuilderProblemIsACopy(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 1)
	b.Constrain(LE, 1, T(x, 1))
	p := b.Problem()
	b.Constrain(LE, 0, T(x, 1)) // mutate builder afterwards
	if len(p.Constraints) != 1 {
		t.Fatal("Problem snapshot should not see later constraints")
	}
}

// feasibility checks a solution against the original constraints.
func feasible(p *Problem, x []float64, tol float64) bool {
	for _, c := range p.Constraints {
		dot := 0.0
		for j, v := range c.Coeffs {
			dot += v * x[j]
		}
		switch c.Rel {
		case LE:
			if dot > c.RHS+tol {
				return false
			}
		case GE:
			if dot < c.RHS-tol {
				return false
			}
		case EQ:
			if math.Abs(dot-c.RHS) > tol {
				return false
			}
		}
	}
	for _, v := range x {
		if v < -tol {
			return false
		}
	}
	return true
}

// TestQuickRandomBoundedLPs property-tests the solver on random problems that
// are feasible by construction (x=0 satisfies every row) and bounded by a box.
func TestQuickRandomBoundedLPs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		m := 1 + rng.Intn(6)
		p := &Problem{Objective: make([]float64, n)}
		for j := range p.Objective {
			p.Objective[j] = rng.Float64()*4 - 2
		}
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = rng.Float64()*4 - 2
			}
			// RHS ≥ 0 keeps x=0 feasible for LE rows.
			p.Constraints = append(p.Constraints,
				Constraint{Coeffs: row, Rel: LE, RHS: rng.Float64() * 10})
		}
		for j := 0; j < n; j++ { // bounding box ⇒ never unbounded
			row := make([]float64, n)
			row[j] = 1
			p.Constraints = append(p.Constraints,
				Constraint{Coeffs: row, Rel: LE, RHS: 50})
		}
		sol, err := Solve(p)
		if err != nil || sol.Status != Optimal {
			return false
		}
		if !feasible(p, sol.X, 1e-6) {
			return false
		}
		// Optimality sanity: the solution must beat a handful of random
		// feasible points.
		for trial := 0; trial < 20; trial++ {
			cand := make([]float64, n)
			for j := range cand {
				cand[j] = rng.Float64() * 5
			}
			if !feasible(p, cand, 0) {
				continue
			}
			obj := 0.0
			for j := range cand {
				obj += p.Objective[j] * cand[j]
			}
			if obj > sol.Objective+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEqualityFeasible property-tests phase-1 handling: random equality
// systems built from a known solution must be solved and remain feasible.
func TestQuickEqualityFeasible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		m := 1 + rng.Intn(n) // fewer equalities than variables
		x0 := make([]float64, n)
		for j := range x0 {
			x0[j] = rng.Float64() * 5
		}
		p := &Problem{Objective: make([]float64, n)}
		for j := range p.Objective {
			p.Objective[j] = rng.Float64()*2 - 1
		}
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			rhs := 0.0
			for j := range row {
				row[j] = rng.Float64()*4 - 2
				rhs += row[j] * x0[j]
			}
			p.Constraints = append(p.Constraints, Constraint{Coeffs: row, Rel: EQ, RHS: rhs})
		}
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			p.Constraints = append(p.Constraints, Constraint{Coeffs: row, Rel: LE, RHS: 100})
		}
		sol, err := Solve(p)
		if err != nil {
			return false
		}
		if sol.Status != Optimal {
			return false // x0 is feasible by construction
		}
		return feasible(p, sol.X, 1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// bruteForce2D finds the optimum of a 2-variable LP by enumerating all
// vertices of the feasible polygon: intersections of constraint boundary
// lines (including the axes x=0, y=0) filtered for feasibility. An
// independent geometric oracle for the simplex implementation.
func bruteForce2D(p *Problem) (best float64, found bool) {
	type line struct{ a, b, c float64 } // a·x + b·y = c
	var lines []line
	for _, con := range p.Constraints {
		a, b := 0.0, 0.0
		if len(con.Coeffs) > 0 {
			a = con.Coeffs[0]
		}
		if len(con.Coeffs) > 1 {
			b = con.Coeffs[1]
		}
		lines = append(lines, line{a, b, con.RHS})
	}
	lines = append(lines, line{1, 0, 0}, line{0, 1, 0})

	best = math.Inf(-1)
	for i := 0; i < len(lines); i++ {
		for j := i + 1; j < len(lines); j++ {
			det := lines[i].a*lines[j].b - lines[j].a*lines[i].b
			if math.Abs(det) < 1e-12 {
				continue
			}
			x := (lines[i].c*lines[j].b - lines[j].c*lines[i].b) / det
			y := (lines[i].a*lines[j].c - lines[j].a*lines[i].c) / det
			if !feasible(p, []float64{x, y}, 1e-7) {
				continue
			}
			found = true
			if v := p.Objective[0]*x + p.Objective[1]*y; v > best {
				best = v
			}
		}
	}
	return best, found
}

// TestQuickAgainstVertexEnumeration cross-checks simplex optima against the
// geometric vertex oracle on random bounded 2-variable programs.
func TestQuickAgainstVertexEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := &Problem{Objective: []float64{rng.Float64()*8 - 4, rng.Float64()*8 - 4}}
		rows := 1 + rng.Intn(4)
		for i := 0; i < rows; i++ {
			p.Constraints = append(p.Constraints, Constraint{
				Coeffs: []float64{rng.Float64()*4 - 2, rng.Float64()*4 - 2},
				Rel:    LE,
				RHS:    rng.Float64() * 20,
			})
		}
		// Bounding box keeps the polygon finite.
		p.Constraints = append(p.Constraints,
			Constraint{Coeffs: []float64{1, 0}, Rel: LE, RHS: 30},
			Constraint{Coeffs: []float64{0, 1}, Rel: LE, RHS: 30},
		)
		sol, err := Solve(p)
		if err != nil {
			return false
		}
		want, found := bruteForce2D(p)
		switch sol.Status {
		case Optimal:
			return found && math.Abs(sol.Objective-want) < 1e-5*(1+math.Abs(want))
		case Infeasible:
			return !found
		default:
			return false // boxed: unbounded impossible
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSolveSmall(b *testing.B) {
	p := &Problem{
		Objective: []float64{5, 4},
		Constraints: []Constraint{
			{Coeffs: []float64{6, 4}, Rel: LE, RHS: 24},
			{Coeffs: []float64{1, 2}, Rel: LE, RHS: 6},
		},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveSchedulerSized(b *testing.B) {
	// A community-LP-sized instance: 5 principals ⇒ 26 variables (θ + 25 x_ik),
	// with capacity, agreement and queue rows — representative of one
	// scheduling window.
	rng := rand.New(rand.NewSource(1))
	n := 26
	p := &Problem{Objective: make([]float64, n)}
	p.Objective[0] = 1
	for i := 0; i < 5; i++ {
		// Σ_k x_ik − θ·n_i ≥ 0
		row := make([]float64, n)
		row[0] = -float64(50 + rng.Intn(100))
		for k := 0; k < 5; k++ {
			row[1+i*5+k] = 1
		}
		p.Constraints = append(p.Constraints, Constraint{Coeffs: row, Rel: GE, RHS: 0})
		// capacity Σ_k x_ki ≤ V_i
		cap := make([]float64, n)
		for k := 0; k < 5; k++ {
			cap[1+k*5+i] = 1
		}
		p.Constraints = append(p.Constraints, Constraint{Coeffs: cap, Rel: LE, RHS: float64(100 + rng.Intn(200))})
		for k := 0; k < 5; k++ {
			up := make([]float64, n)
			up[1+i*5+k] = 1
			p.Constraints = append(p.Constraints, Constraint{Coeffs: up, Rel: LE, RHS: float64(20 + rng.Intn(80))})
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sol, err := Solve(p)
		if err != nil || sol.Status != Optimal {
			b.Fatalf("status=%v err=%v", sol.Status, err)
		}
	}
}
