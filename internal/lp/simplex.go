package lp

import "fmt"

// tableau is a dense simplex tableau kept in canonical form: the columns of
// the current basis always form an identity submatrix, and the objective row
// z holds reduced costs (z[j] = c_B·B⁻¹A_j − c_j) so that optimality is
// "all z[j] ≥ 0" and the entering rule is "most negative / Bland".
//
// All backing storage (the flat coefficient buffer, RHS, basis, objective
// rows) is grown on demand and reused across init calls, so a long-lived
// tableau — via Solver — performs no per-solve allocations once warm.
type tableau struct {
	m    int // constraint rows (may shrink if redundant rows are dropped)
	n    int // structural variables
	cols int // structural + slack/surplus + artificial columns

	a     [][]float64 // m × cols constraint matrix
	flat  []float64   // backing storage for a
	b     []float64   // RHS, kept ≥ 0
	basis []int       // basis[i] = column basic in row i

	artStart int // first artificial column; artificials occupy [artStart, cols)

	obj2 []float64 // structural objective for phase 2 (length n)

	z    []float64 // reduced-cost row for the active objective
	zrhs float64   // current objective value c_B·B⁻¹b

	objScratch []float64 // phase-1 objective buffer
}

// newTableau allocates a fresh tableau for p (the one-shot Solve path).
func newTableau(p *Problem) *tableau {
	t := &tableau{}
	t.init(p, false)
	return t
}

// init sizes the tableau for p and fills in the initial canonical form,
// reusing any backing storage from a previous solve. With reserveLex set,
// one extra row and one extra column are reserved so that lexReopt can later
// append a floor constraint without reallocating.
func (t *tableau) init(p *Problem, reserveLex bool) {
	m := len(p.Constraints)
	n := len(p.Objective)

	slacks := 0
	arts := 0
	for _, c := range p.Constraints {
		rel, rhs := c.Rel, c.RHS
		if rhs < 0 { // row will be negated; relation flips
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		switch rel {
		case LE:
			slacks++
		case GE:
			slacks++
			arts++
		case EQ:
			arts++
		}
	}

	cols := n + slacks + arts
	stride, rows := cols, m
	if reserveLex {
		stride, rows = cols+1, m+1
	}
	t.m, t.n, t.cols = m, n, cols
	t.artStart = n + slacks

	need := rows * stride
	if cap(t.flat) < need {
		t.flat = make([]float64, need)
	} else {
		t.flat = t.flat[:need]
		for i := range t.flat {
			t.flat[i] = 0
		}
	}
	if cap(t.a) < rows {
		t.a = make([][]float64, rows)
	}
	t.a = t.a[:rows]
	for i := 0; i < rows; i++ {
		// Three-index slices: a row may grow only into its reserved column.
		t.a[i] = t.flat[i*stride : i*stride+cols : (i+1)*stride]
	}
	t.a = t.a[:m]
	if cap(t.b) < rows {
		t.b = make([]float64, rows)
		t.basis = make([]int, rows)
	}
	t.b = t.b[:m]
	t.basis = t.basis[:m]
	if cap(t.z) < stride {
		t.z = make([]float64, stride)
	}

	slackCol := n
	artCol := t.artStart
	for i, c := range p.Constraints {
		sign := 1.0
		rel := c.Rel
		if c.RHS < 0 {
			sign = -1.0
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		for j, v := range c.Coeffs {
			t.a[i][j] = sign * v
		}
		t.b[i] = sign * c.RHS
		switch rel {
		case LE:
			t.a[i][slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			t.a[i][slackCol] = -1
			slackCol++
			t.a[i][artCol] = 1
			t.basis[i] = artCol
			artCol++
		case EQ:
			t.a[i][artCol] = 1
			t.basis[i] = artCol
			artCol++
		}
	}
}

// setObjective installs the reduced-cost row for "maximize obj·x" (obj indexed
// by column, zero-padded) under the current basis.
func (t *tableau) setObjective(obj []float64) {
	if cap(t.z) < t.cols {
		t.z = make([]float64, t.cols)
	}
	t.z = t.z[:t.cols]
	for j := range t.z {
		t.z[j] = 0
	}
	for j := 0; j < t.cols && j < len(obj); j++ {
		t.z[j] = -obj[j]
	}
	t.zrhs = 0
	for i := 0; i < t.m; i++ {
		cb := 0.0
		if t.basis[i] < len(obj) {
			cb = obj[t.basis[i]]
		}
		if cb == 0 {
			continue
		}
		row := t.a[i]
		for j := 0; j < t.cols; j++ {
			t.z[j] += cb * row[j]
		}
		t.zrhs += cb * t.b[i]
	}
}

// pivot makes column c basic in row r via Gauss–Jordan elimination, updating
// the objective row alongside.
func (t *tableau) pivot(r, c int) {
	prow := t.a[r]
	pv := prow[c]
	inv := 1 / pv
	for j := 0; j < t.cols; j++ {
		prow[j] *= inv
	}
	t.b[r] *= inv
	prow[c] = 1 // remove roundoff on the pivot itself

	for i := 0; i < t.m; i++ {
		if i == r {
			continue
		}
		f := t.a[i][c]
		if f == 0 {
			continue
		}
		row := t.a[i]
		for j := 0; j < t.cols; j++ {
			row[j] -= f * prow[j]
		}
		row[c] = 0
		t.b[i] -= f * t.b[r]
		if t.b[i] < 0 && t.b[i] > -eps {
			t.b[i] = 0
		}
	}
	f := t.z[c]
	if f != 0 {
		for j := 0; j < t.cols; j++ {
			t.z[j] -= f * prow[j]
		}
		t.z[c] = 0
		t.zrhs -= f * t.b[r]
	}
	t.basis[r] = c
}

// run iterates simplex pivots until optimality, using Bland's rule for both
// the entering and leaving variable so that cycling is impossible.
// maxCols limits which columns may enter (used to exclude artificials in
// phase 2). It reports false if the objective is unbounded above.
func (t *tableau) run(maxCols int) bool {
	// Bland's rule terminates after finitely many pivots; the guard below
	// only trips on an internal invariant violation.
	limit := 200 * (t.m + t.cols + 16)
	for iter := 0; ; iter++ {
		if iter > limit {
			panic(fmt.Sprintf("lp: simplex did not terminate in %d pivots (m=%d cols=%d)", limit, t.m, t.cols))
		}
		enter := -1
		for j := 0; j < maxCols; j++ {
			if t.z[j] < -eps {
				enter = j
				break
			}
		}
		if enter < 0 {
			return true // optimal
		}
		leave := -1
		best := 0.0
		for i := 0; i < t.m; i++ {
			aic := t.a[i][enter]
			if aic <= eps {
				continue
			}
			ratio := t.b[i] / aic
			if leave < 0 || ratio < best-eps ||
				(ratio < best+eps && t.basis[i] < t.basis[leave]) {
				leave = i
				best = ratio
			}
		}
		if leave < 0 {
			return false // unbounded
		}
		t.pivot(leave, enter)
	}
}

// phase1 finds an initial basic feasible solution. It reports false when the
// problem is infeasible.
func (t *tableau) phase1() bool {
	if t.artStart == t.cols {
		return true // pure-slack basis is already feasible
	}
	if cap(t.objScratch) < t.cols {
		t.objScratch = make([]float64, t.cols)
	}
	obj := t.objScratch[:t.cols]
	for j := range obj {
		obj[j] = 0
	}
	for j := t.artStart; j < t.cols; j++ {
		obj[j] = -1 // maximize −Σ artificials
	}
	t.setObjective(obj)
	if !t.run(t.cols) {
		// −Σ artificials is bounded above by 0; unbounded cannot happen.
		panic("lp: phase 1 reported unbounded")
	}
	if t.zrhs < -1e-7 {
		return false // artificials cannot all reach zero
	}
	t.evictArtificials()
	return true
}

// evictArtificials pivots any artificial variable still basic (at value zero)
// out of the basis, dropping rows that turn out to be redundant.
func (t *tableau) evictArtificials() {
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.artStart {
			continue
		}
		pivoted := false
		for j := 0; j < t.artStart; j++ {
			if t.a[i][j] > eps || t.a[i][j] < -eps {
				t.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// The row is 0=0 after reduction: redundant. Remove it.
			last := t.m - 1
			t.a[i], t.a[last] = t.a[last], t.a[i]
			t.b[i], t.b[last] = t.b[last], t.b[i]
			t.basis[i], t.basis[last] = t.basis[last], t.basis[i]
			t.m--
			t.a = t.a[:t.m]
			t.b = t.b[:t.m]
			t.basis = t.basis[:t.m]
			i--
		}
	}
}

// phase2 optimizes the structural objective from the feasible basis produced
// by phase1. It reports false when the program is unbounded. Artificial
// columns are excluded from entering; after evictArtificials none is basic,
// so they stay at zero.
func (t *tableau) phase2() bool {
	t.setObjective(t.obj2)
	return t.run(t.artStart)
}

// lexReopt warm-starts the lexicographic second pass from the current
// optimal basis: it appends the floor row primObj·x ≥ floor — satisfied by
// the pass-1 optimum, so no new phase 1 is needed — gives it a fresh surplus
// column, and re-optimizes obj2 (indexed by structural variable). Requires a
// tableau built with init(p, true). It reports false when the secondary
// objective is unbounded; the caller then keeps the pass-1 solution.
func (t *tableau) lexReopt(primObj []float64, floor float64, obj2 []float64) bool {
	// Artificial columns are dead after phase 1 (all nonbasic at zero); zero
	// them out so the unrestricted run below can never pivot one back in.
	for i := 0; i < t.m; i++ {
		row := t.a[i]
		for j := t.artStart; j < t.cols; j++ {
			row[j] = 0
		}
	}

	surplus := t.cols
	t.cols++
	for i := 0; i < t.m; i++ {
		t.a[i] = t.a[i][:t.cols]
	}

	// Build the floor row in the reserved slot and reduce it against the
	// basis so the basic columns stay an identity submatrix. Every active
	// row has zeros in all basic columns except its own, so a single sweep
	// suffices regardless of order.
	t.a = t.a[:t.m+1]
	row := t.a[t.m][:t.cols]
	t.a[t.m] = row
	for j := range row {
		row[j] = 0
	}
	for j := 0; j < t.n && j < len(primObj); j++ {
		row[j] = primObj[j]
	}
	rhs := floor
	for i := 0; i < t.m; i++ {
		f := row[t.basis[i]]
		if f == 0 {
			continue
		}
		ri := t.a[i]
		for j := 0; j < t.cols; j++ {
			row[j] -= f * ri[j]
		}
		row[t.basis[i]] = 0
		rhs -= f * t.b[i]
	}
	row[surplus] = -1
	// Negate so the surplus enters the basis with coefficient +1. The
	// current point satisfies the floor (it attains the pass-1 optimum), so
	// the negated RHS is ≥ 0 up to roundoff; clamp the roundoff.
	for j := 0; j < t.cols; j++ {
		row[j] = -row[j]
	}
	rhs = -rhs
	if rhs < 0 {
		rhs = 0
	}
	t.b = t.b[:t.m+1]
	t.basis = t.basis[:t.m+1]
	t.b[t.m] = rhs
	t.basis[t.m] = surplus
	t.m++

	t.setObjective(obj2)
	return t.run(t.cols)
}

// extract reads the structural variable values out of the basis.
func (t *tableau) extract(n int) []float64 {
	x := make([]float64, n)
	t.extractInto(x)
	return x
}

// extractInto writes the structural variable values into x (len n).
func (t *tableau) extractInto(x []float64) {
	for j := range x {
		x[j] = 0
	}
	for i := 0; i < t.m; i++ {
		if t.basis[i] < len(x) {
			v := t.b[i]
			if v < 0 && v > -eps {
				v = 0
			}
			x[t.basis[i]] = v
		}
	}
}
