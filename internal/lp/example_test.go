package lp_test

import (
	"fmt"

	"repro/internal/lp"
)

// Maximize 3x + 2y subject to x+y ≤ 4 and x+3y ≤ 6.
func ExampleSolve() {
	sol, err := lp.Solve(&lp.Problem{
		Objective: []float64{3, 2},
		Constraints: []lp.Constraint{
			{Coeffs: []float64{1, 1}, Rel: lp.LE, RHS: 4},
			{Coeffs: []float64{1, 3}, Rel: lp.LE, RHS: 6},
		},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%v objective=%.0f x=%.0f y=%.0f\n", sol.Status, sol.Objective, sol.X[0], sol.X[1])
	// Output: optimal objective=12 x=4 y=0
}

// The Builder names variables so scheduling models read like the paper's
// formulations.
func ExampleBuilder() {
	b := lp.NewBuilder()
	theta := b.Var("theta", 1)
	x := b.Var("x", 0)
	b.Bound(theta, 0, 1)
	b.Constrain(lp.GE, 0, lp.T(x, 1), lp.T(theta, -100)) // x ≥ θ·100
	b.Constrain(lp.LE, 80, lp.T(x, 1))                   // capacity 80
	sol, err := b.Solve()
	if err != nil {
		panic(err)
	}
	fmt.Printf("theta=%.1f x=%.0f\n", b.Value(sol, theta), b.Value(sol, x))
	// Output: theta=0.8 x=80
}
