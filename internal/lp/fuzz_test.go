package lp

import (
	"math"
	"testing"
)

// FuzzSolveTwoVar feeds arbitrary two-variable programs with up to three
// rows into the solver: it must never panic, and optimal solutions must be
// feasible for the constraints it was given.
func FuzzSolveTwoVar(f *testing.F) {
	f.Add(3.0, 2.0, 1.0, 1.0, 4.0, int8(0), 1.0, 3.0, 6.0, int8(0))
	f.Add(-1.0, -1.0, 1.0, 1.0, 4.0, int8(1), 0.0, 1.0, 2.0, int8(2))
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, int8(0), 0.0, 0.0, -1.0, int8(1))
	f.Fuzz(func(t *testing.T, c1, c2, a1, a2, b1 float64, r1 int8,
		d1, d2, b2 float64, r2 int8) {
		for _, v := range []float64{c1, c2, a1, a2, b1, d1, d2, b2} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				return // malformed-input rejection is covered elsewhere
			}
		}
		rel := func(r int8) Relation { return Relation(((int(r) % 3) + 3) % 3) }
		p := &Problem{
			Objective: []float64{c1, c2},
			Constraints: []Constraint{
				{Coeffs: []float64{a1, a2}, Rel: rel(r1), RHS: b1},
				{Coeffs: []float64{d1, d2}, Rel: rel(r2), RHS: b2},
				// A box keeps most instances bounded; unbounded results
				// remain legal outcomes.
				{Coeffs: []float64{1, 1}, Rel: LE, RHS: 1e6},
			},
		}
		sol, err := Solve(p)
		if err != nil {
			t.Fatalf("Solve error on finite input: %v", err)
		}
		if sol.Status == Optimal && !feasible(p, sol.X, 1e-4*(1+math.Abs(b1)+math.Abs(b2))) {
			t.Fatalf("optimal point infeasible: %v for %+v", sol.X, p)
		}
	})
}
