package lp

import "fmt"

// Solver runs the two-phase simplex method while keeping the tableau, basis,
// and every scratch slice alive between calls, so a scheduler that re-solves
// a structurally stable program every window (only coefficients and RHS
// values changed in place) performs no per-solve heap allocations once warm.
//
// A Solver is not safe for concurrent use. The Solution/LexSolution returned
// by its methods — including the X slice — is owned by the solver and
// overwritten by the next call; callers must copy anything they keep.
type Solver struct {
	t      tableau
	x      []float64 // final solution buffer
	x1     []float64 // pass-1 solution buffer (SolveLex)
	sol    Solution
	lexSol LexSolution
}

// NewSolver returns an empty solver; buffers grow on first use.
func NewSolver() *Solver { return &Solver{} }

// Solve runs the two-phase simplex method on p, like the package-level Solve
// but reusing the solver's internal state. The returned error is non-nil only
// for malformed input; infeasibility and unboundedness are reported via
// Solution.Status.
func (s *Solver) Solve(p *Problem) (*Solution, error) {
	if err := validate(p); err != nil {
		return nil, err
	}
	t := &s.t
	t.init(p, false)
	t.obj2 = p.Objective
	if !t.phase1() {
		s.sol = Solution{Status: Infeasible}
		return &s.sol, nil
	}
	if !t.phase2() {
		s.sol = Solution{Status: Unbounded}
		return &s.sol, nil
	}
	n := len(p.Objective)
	s.x = grow(s.x, n)
	t.extractInto(s.x)
	s.sol = Solution{Status: Optimal, X: s.x, Objective: dot(p.Objective, s.x)}
	return &s.sol, nil
}

// LexSolution is the result of a lexicographic SolveLex call.
type LexSolution struct {
	Status Status
	// X is the assignment after the secondary pass (length =
	// len(Problem.Objective)). Meaningful only when Status == Optimal.
	X []float64
	// Primary is the optimal value of the problem's own objective, attained
	// in the first pass and held (within the tolerance) by X.
	Primary float64
	// Secondary is obj2·X.
	Secondary float64
}

// SolveLex solves p lexicographically: first it maximizes p.Objective, then —
// holding that objective within tol of its optimum — it maximizes obj2
// (indexed by structural variable, zero-padded) starting from the first
// pass's optimal basis. Warm-starting skips the second phase 1 entirely: the
// floor row "p.Objective·x ≥ Primary − tol" is appended to the solved tableau
// with its own surplus column and the basis stays feasible by construction.
//
// If the secondary pass fails (unbounded secondary objective), the first
// pass's solution is returned unchanged, mirroring a from-scratch
// lexicographic re-solve that keeps the primary solution on failure.
func (s *Solver) SolveLex(p *Problem, tol float64, obj2 []float64) (*LexSolution, error) {
	if err := validate(p); err != nil {
		return nil, err
	}
	if len(obj2) > len(p.Objective) {
		return nil, fmt.Errorf("%w: secondary objective has %d coefficients for %d variables",
			ErrBadProblem, len(obj2), len(p.Objective))
	}
	t := &s.t
	t.init(p, true)
	t.obj2 = p.Objective
	if !t.phase1() {
		s.lexSol = LexSolution{Status: Infeasible}
		return &s.lexSol, nil
	}
	if !t.phase2() {
		s.lexSol = LexSolution{Status: Unbounded}
		return &s.lexSol, nil
	}
	n := len(p.Objective)
	s.x = grow(s.x, n)
	s.x1 = grow(s.x1, n)
	t.extractInto(s.x1)
	primary := dot(p.Objective, s.x1)

	if t.lexReopt(p.Objective, primary-tol, obj2) {
		t.extractInto(s.x)
	} else {
		copy(s.x, s.x1)
	}
	s.lexSol = LexSolution{
		Status:    Optimal,
		X:         s.x,
		Primary:   primary,
		Secondary: dot(obj2, s.x),
	}
	return &s.lexSol, nil
}

// SolveLex is the allocating form of Solver.SolveLex: it runs the identical
// pivot sequence on a fresh solver, so its plans are byte-identical to the
// reusing fast path. It exists as the reference for differential tests.
func SolveLex(p *Problem, tol float64, obj2 []float64) (*LexSolution, error) {
	return NewSolver().SolveLex(p, tol, obj2)
}

func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func dot(a, b []float64) float64 {
	v := 0.0
	for i := range a {
		v += a[i] * b[i]
	}
	return v
}
