package lp

import "fmt"

// Var is a handle to a variable created through a Builder.
type Var int

// Term is one coefficient·variable product inside a constraint row.
type Term struct {
	Var   Var
	Coeff float64
}

// T is shorthand for constructing a Term.
func T(v Var, coeff float64) Term { return Term{Var: v, Coeff: coeff} }

// Builder assembles a Problem incrementally with named variables. It exists
// because the scheduling models in internal/sched are much easier to audit
// against the paper's formulation when rows are written as terms instead of
// positional coefficient slices.
type Builder struct {
	names []string
	obj   []float64
	cons  []Constraint
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{} }

// Var adds a variable (implicitly ≥ 0) with the given objective coefficient
// and returns its handle. The name is used only in String/diagnostics; hot
// paths should prefer NewVar, which skips name bookkeeping entirely.
func (b *Builder) Var(name string, objCoeff float64) Var {
	if b.names == nil {
		b.names = make([]string, len(b.obj), len(b.obj)+1)
	}
	b.names = append(b.names, name)
	b.obj = append(b.obj, objCoeff)
	return Var(len(b.obj) - 1)
}

// NewVar adds an unnamed variable (implicitly ≥ 0) with the given objective
// coefficient. Diagnostics render such variables as x<index>; no per-variable
// string is ever built, keeping builders off the allocation hot path.
func (b *Builder) NewVar(objCoeff float64) Var {
	if b.names != nil {
		b.names = append(b.names, "")
	}
	b.obj = append(b.obj, objCoeff)
	return Var(len(b.obj) - 1)
}

// NumVars reports how many variables have been declared.
func (b *Builder) NumVars() int { return len(b.obj) }

// NumConstraints reports how many constraint rows have been emitted. Callers
// compiling a reusable template read it before Constrain/Bound to record the
// row indices they will mutate per solve.
func (b *Builder) NumConstraints() int { return len(b.cons) }

// Constrain appends the row Σ terms (rel) rhs.
func (b *Builder) Constrain(rel Relation, rhs float64, terms ...Term) {
	coeffs := make([]float64, len(b.obj))
	for _, t := range terms {
		if int(t.Var) < 0 || int(t.Var) >= len(b.obj) {
			panic(fmt.Sprintf("lp: constraint references unknown variable %d", t.Var))
		}
		coeffs[t.Var] += t.Coeff
	}
	b.cons = append(b.cons, Constraint{Coeffs: coeffs, Rel: rel, RHS: rhs})
}

// Bound constrains lo ≤ v ≤ hi using one or two rows. Infinite bounds may be
// expressed with math.Inf; lo ≤ 0 adds no lower-bound row (variables are
// non-negative already).
func (b *Builder) Bound(v Var, lo, hi float64) {
	if lo > 0 {
		b.Constrain(GE, lo, T(v, 1))
	}
	if !isPosInf(hi) {
		b.Constrain(LE, hi, T(v, 1))
	}
}

func isPosInf(v float64) bool { return v > 1e300 }

// Problem freezes the builder into a Problem. The builder remains usable;
// subsequent mutations do not affect the returned Problem.
func (b *Builder) Problem() *Problem {
	obj := make([]float64, len(b.obj))
	copy(obj, b.obj)
	cons := make([]Constraint, len(b.cons))
	for i, c := range b.cons {
		coeffs := make([]float64, len(c.Coeffs))
		copy(coeffs, c.Coeffs)
		cons[i] = Constraint{Coeffs: coeffs, Rel: c.Rel, RHS: c.RHS}
	}
	return &Problem{Objective: obj, Constraints: cons}
}

// Solve builds and solves the problem.
func (b *Builder) Solve() (*Solution, error) {
	return Solve(b.Problem())
}

// Value reads a variable out of a solution produced for this builder's
// problem. It returns 0 for non-optimal solutions.
func (b *Builder) Value(sol *Solution, v Var) float64 {
	if sol == nil || sol.Status != Optimal || int(v) >= len(sol.X) {
		return 0
	}
	return sol.X[v]
}

// name returns the display name of variable j, synthesizing x<j> for
// variables declared without one.
func (b *Builder) name(j int) string {
	if j < len(b.names) && b.names[j] != "" {
		return b.names[j]
	}
	return fmt.Sprintf("x%d", j)
}

// String renders the model in a human-readable form for debugging.
func (b *Builder) String() string {
	s := "maximize"
	for j, c := range b.obj {
		if c != 0 {
			s += fmt.Sprintf(" %+g·%s", c, b.name(j))
		}
	}
	s += "\nsubject to\n"
	for _, c := range b.cons {
		row := " "
		for j, v := range c.Coeffs {
			if v != 0 {
				row += fmt.Sprintf(" %+g·%s", v, b.name(j))
			}
		}
		s += fmt.Sprintf("%s %s %g\n", row, c.Rel, c.RHS)
	}
	return s
}
