// Package lp implements a small, dependency-free linear programming solver
// based on the two-phase primal simplex method over dense tableaus.
//
// The solver targets the scheduling problems that arise in agreement
// enforcement (see internal/sched): a few dozen variables and constraints per
// 100 ms scheduling window. At that scale an exact dense simplex with Bland's
// anti-cycling rule is both fast and numerically dependable.
//
// Problems are stated in the form
//
//	maximize  c·x
//	subject to a_i·x (≤|=|≥) b_i   for each constraint i
//	           x ≥ 0
//
// Variables are implicitly non-negative; use two variables (x = x⁺ − x⁻) for
// a free variable, or the Builder helpers which do such rewrites.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Relation is the comparison operator of a constraint row.
type Relation int

const (
	// LE constrains a·x ≤ b.
	LE Relation = iota
	// GE constrains a·x ≥ b.
	GE
	// EQ constrains a·x = b.
	EQ
)

// String returns the conventional symbol for the relation.
func (r Relation) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return fmt.Sprintf("Relation(%d)", int(r))
}

// Constraint is a single row a·x (≤|=|≥) b. Coeffs shorter than the number of
// problem variables are implicitly zero-padded.
type Constraint struct {
	Coeffs []float64
	Rel    Relation
	RHS    float64
}

// Problem is a linear program in maximization form.
type Problem struct {
	// Objective holds c in "maximize c·x". Its length fixes the number of
	// structural variables.
	Objective []float64
	// Constraints are the rows of the program.
	Constraints []Constraint
}

// Status reports the outcome of a Solve call.
type Status int

const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means the constraint set has no solution with x ≥ 0.
	Infeasible
	// Unbounded means the objective can be made arbitrarily large.
	Unbounded
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status Status
	// X is the optimal assignment (length = len(Problem.Objective)).
	// Meaningful only when Status == Optimal.
	X []float64
	// Objective is c·X. Meaningful only when Status == Optimal.
	Objective float64
}

// ErrBadProblem reports a structurally invalid problem (for example a
// constraint row longer than the objective vector).
var ErrBadProblem = errors.New("lp: malformed problem")

const eps = 1e-9

// validate rejects structurally invalid or non-finite problems.
func validate(p *Problem) error {
	n := len(p.Objective)
	if n == 0 {
		return fmt.Errorf("%w: empty objective", ErrBadProblem)
	}
	for i, c := range p.Constraints {
		if len(c.Coeffs) > n {
			return fmt.Errorf("%w: constraint %d has %d coefficients for %d variables",
				ErrBadProblem, i, len(c.Coeffs), n)
		}
		for _, v := range c.Coeffs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%w: constraint %d has non-finite coefficient", ErrBadProblem, i)
			}
		}
		if math.IsNaN(c.RHS) || math.IsInf(c.RHS, 0) {
			return fmt.Errorf("%w: constraint %d has non-finite RHS", ErrBadProblem, i)
		}
	}
	for _, v := range p.Objective {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: non-finite objective coefficient", ErrBadProblem)
		}
	}
	return nil
}

// Solve runs the two-phase simplex method on p. The returned error is non-nil
// only for malformed input; infeasibility and unboundedness are reported via
// Solution.Status.
func Solve(p *Problem) (*Solution, error) {
	if err := validate(p); err != nil {
		return nil, err
	}
	n := len(p.Objective)
	t := newTableau(p)
	t.obj2 = p.Objective
	if !t.phase1() {
		return &Solution{Status: Infeasible}, nil
	}
	if !t.phase2() {
		return &Solution{Status: Unbounded}, nil
	}
	x := t.extract(n)
	obj := 0.0
	for j := 0; j < n; j++ {
		obj += p.Objective[j] * x[j]
	}
	return &Solution{Status: Optimal, X: x, Objective: obj}, nil
}

// Clone returns a deep copy of p: mutating one does not affect the other.
// Schedulers use it to stamp out per-worker copies of a compiled constraint
// template (see internal/sched).
func (p *Problem) Clone() *Problem {
	obj := make([]float64, len(p.Objective))
	copy(obj, p.Objective)
	cons := make([]Constraint, len(p.Constraints))
	for i, c := range p.Constraints {
		coeffs := make([]float64, len(c.Coeffs))
		copy(coeffs, c.Coeffs)
		cons[i] = Constraint{Coeffs: coeffs, Rel: c.Rel, RHS: c.RHS}
	}
	return &Problem{Objective: obj, Constraints: cons}
}
