package combining

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Forest runs one combining tree per disjoint agreement component over a
// shared physical plane. All trees use the same parent/child wiring (one
// TCP mesh, one topology), but each ships only its own component's
// principals and counts epochs independently, so a slow or partitioned
// component never stalls another component's window gating.
//
// The driver-facing surface mirrors Node — SetLocal/Tick/OnMessage plus
// epoch, config, and rejoin accessors — with per-component globals read
// through ComponentGlobal. A single-component forest behaves exactly like
// one flat tree.
type Forest struct {
	n       int
	trees   []*Node
	members [][]int // tree → ascending principal indices

	mu      sync.Mutex
	gather  [][]float64 // per-tree local-vector scratch
	cfgSeen uint64      // newest config version handed to the handler
}

// ForestConfig assembles a forest. All trees share the node placement and
// clock; Send returns the per-tree transport hook (frames are tagged with
// the tree index on the wire).
type ForestConfig struct {
	// ID, Parent, Children place this node in the shared plane (Parent
	// −1 at the root).
	ID       NodeID
	Parent   NodeID
	Children []NodeID
	// NumPrincipals is the fleet-wide principal-vector length.
	NumPrincipals int
	// Components lists each tree's principal indices. Empty means a
	// single tree over all principals.
	Components [][]int
	// Send returns the outbound hook for one tree's messages.
	Send func(tree int) SendFunc
	// Now is the shared time base (nil for wall clock).
	Now func() time.Duration
	// Hop, when set, instruments hop timing on every tree.
	Hop *HopMetrics
}

// NewForest validates the component partition and builds the trees.
func NewForest(cfg ForestConfig) (*Forest, error) {
	if cfg.NumPrincipals < 1 {
		return nil, fmt.Errorf("combining: forest needs at least one principal")
	}
	comps := cfg.Components
	if len(comps) == 0 {
		all := make([]int, cfg.NumPrincipals)
		for i := range all {
			all[i] = i
		}
		comps = [][]int{all}
	}
	seen := make(map[int]bool, cfg.NumPrincipals)
	f := &Forest{n: cfg.NumPrincipals}
	for ti, comp := range comps {
		if len(comp) == 0 {
			return nil, fmt.Errorf("combining: forest component %d is empty", ti)
		}
		ms := append([]int(nil), comp...)
		sort.Ints(ms)
		for _, p := range ms {
			if p < 0 || p >= cfg.NumPrincipals {
				return nil, fmt.Errorf("combining: forest component %d: principal %d out of range", ti, p)
			}
			if seen[p] {
				return nil, fmt.Errorf("combining: principal %d in two forest components", p)
			}
			seen[p] = true
		}
		send := SendFunc(nil)
		if cfg.Send != nil {
			send = cfg.Send(ti)
		}
		node := NewBuilder(cfg.ID).
			Parent(cfg.Parent).
			Children(cfg.Children...).
			Principals(len(ms)).
			Transport(send).
			Clock(cfg.Now).
			Metrics(cfg.Hop).
			Build()
		f.trees = append(f.trees, node)
		f.members = append(f.members, ms)
		f.gather = append(f.gather, make([]float64, len(ms)))
	}
	return f, nil
}

// Trees returns the number of component trees.
func (f *Forest) Trees() int { return len(f.trees) }

// Tree returns one component's node (tests and metrics).
func (f *Forest) Tree(t int) *Node { return f.trees[t] }

// Component returns tree t's ascending principal indices. The slice is
// shared; callers must not mutate it.
func (f *Forest) Component(t int) []int { return f.members[t] }

// ID returns the shared node id.
func (f *Forest) ID() NodeID { return f.trees[0].ID() }

// IsRoot reports whether this node roots the plane (identical for every
// tree).
func (f *Forest) IsRoot() bool { return f.trees[0].IsRoot() }

// SetLocal installs this node's fleet-length local vector, scattered into
// each component tree.
func (f *Forest) SetLocal(values []float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for t, ms := range f.members {
		buf := f.gather[t]
		for k, p := range ms {
			if p < len(values) {
				buf[k] = values[p]
			} else {
				buf[k] = 0
			}
		}
		f.trees[t].SetLocal(buf)
	}
}

// Tick advances every component tree one epoch.
func (f *Forest) Tick() {
	for _, t := range f.trees {
		t.Tick()
	}
}

// OnMessage dispatches a wire message to its component tree. Out-of-range
// tree indices (peers running a different component layout) are dropped.
func (f *Forest) OnMessage(tree int, from NodeID, msg interface{}) {
	if tree < 0 || tree >= len(f.trees) {
		return
	}
	f.trees[tree].OnMessage(from, msg)
}

// ComponentGlobal returns tree t's settled global aggregate (component-
// local vector length) with its timestamp; ok is false before the first
// global arrives.
func (f *Forest) ComponentGlobal(t int) (Aggregate, time.Duration, bool) {
	return f.trees[t].Global()
}

// Epoch returns the slowest component's local epoch: gating on the
// minimum keeps every rollout decision behind the least-advanced tree.
func (f *Forest) Epoch() int {
	min := f.trees[0].Epoch()
	for _, t := range f.trees[1:] {
		if e := t.Epoch(); e < min {
			min = e
		}
	}
	return min
}

// GlobalEpoch returns the slowest component's settled global epoch.
func (f *Forest) GlobalEpoch() int {
	min := f.trees[0].GlobalEpoch()
	for _, t := range f.trees[1:] {
		if e := t.GlobalEpoch(); e < min {
			min = e
		}
	}
	return min
}

// Config returns the newest config update any tree has seen.
func (f *Forest) Config() *ConfigUpdate {
	var newest *ConfigUpdate
	for _, t := range f.trees {
		if cu := t.Config(); cu != nil && (newest == nil || cu.Version > newest.Version) {
			newest = cu
		}
	}
	return newest
}

// SetConfig stages a config update on every tree: snapshots ride each
// component's broadcasts, so a component partitioned at its own level
// still converges when its tree heals.
func (f *Forest) SetConfig(cu *ConfigUpdate) {
	for _, t := range f.trees {
		t.SetConfig(cu)
	}
}

// SetConfigHandler installs the delivery callback. The forest dedupes by
// version — the update rides every component tree, but the handler fires
// once per distinct version (whichever tree delivers it first).
func (f *Forest) SetConfigHandler(fn func(*ConfigUpdate)) {
	for _, t := range f.trees {
		t.SetConfigHandler(func(cu *ConfigUpdate) {
			f.mu.Lock()
			if cu.Version <= f.cfgSeen {
				f.mu.Unlock()
				return
			}
			f.cfgSeen = cu.Version
			f.mu.Unlock()
			fn(cu)
		})
	}
}

// ChildConfigAcks returns each child's lowest acked config version over
// every tree (the rollout lead's convergence signal).
func (f *Forest) ChildConfigAcks() map[NodeID]uint64 {
	out := make(map[NodeID]uint64)
	for ti, t := range f.trees {
		for c, v := range t.ChildConfigAcks() {
			if prev, ok := out[c]; ti == 0 || !ok || v < prev {
				out[c] = v
			}
		}
	}
	return out
}

// Reset restores epoch and config state on every tree after a crash
// restart (the rejoin handshake completes the resync per tree).
func (f *Forest) Reset(epoch int, cu *ConfigUpdate) {
	f.mu.Lock()
	if cu != nil && cu.Version > f.cfgSeen {
		// The restored snapshot is already staged by recovery; the handler
		// must not re-fire for it when a peer broadcasts the same version.
		f.cfgSeen = cu.Version
	}
	f.mu.Unlock()
	for _, t := range f.trees {
		t.Reset(epoch, cu)
	}
}

// AnnounceRejoin runs the rejoin handshake on every tree.
func (f *Forest) AnnounceRejoin() {
	for _, t := range f.trees {
		t.AnnounceRejoin()
	}
}

// Reconfigure rewires every tree to a new placement (failure re-parenting
// or a restored peer).
func (f *Forest) Reconfigure(parent NodeID, children []NodeID) {
	for _, t := range f.trees {
		t.Reconfigure(parent, children)
	}
}

// LastHeard returns the most recent traffic time from a neighbor across
// all trees (a peer is alive if any component heard from it).
func (f *Forest) LastHeard(nb NodeID) (time.Duration, bool) {
	var best time.Duration
	ok := false
	for _, t := range f.trees {
		if at, heard := t.LastHeard(nb); heard && (!ok || at > best) {
			best, ok = at, true
		}
	}
	return best, ok
}

// MessageCounts sums message counters over every tree.
func (f *Forest) MessageCounts() (reportsIn, broadcastsIn, sent uint64) {
	for _, t := range f.trees {
		r, b, s := t.MessageCounts()
		reportsIn += r
		broadcastsIn += b
		sent += s
	}
	return
}
