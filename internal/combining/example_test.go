package combining_test

import (
	"fmt"
	"time"

	"repro/internal/combining"
)

// A two-node tree with an in-process transport: the leaf reports its queue
// vector, the root combines and broadcasts the global view.
func Example() {
	var root, leaf *combining.Node
	now := func() time.Duration { return 0 }
	// Deliver messages synchronously for the example.
	toRoot := func(to combining.NodeID, msg interface{}) { root.OnMessage(1, msg) }
	toLeaf := func(to combining.NodeID, msg interface{}) { leaf.OnMessage(0, msg) }
	root = combining.NewBuilder(0).Children(1).Principals(2).
		Transport(toLeaf).Clock(now).Build()
	leaf = combining.NewBuilder(1).Parent(0).Principals(2).
		Transport(toRoot).Clock(now).Build()

	root.SetLocal([]float64{10, 0})
	leaf.SetLocal([]float64{5, 20})
	leaf.Tick() // report up
	root.Tick() // combine + broadcast down

	g, _, _ := leaf.Global()
	fmt.Printf("global queues: %v across %d nodes\n", g.Sum, g.Count)
	// Output: global queues: [15 20] across 2 nodes
}

// A builder assembles one node of the tree declaratively: identity, wiring,
// and principal count, with the transport and clock injected. A node with
// no parent and no children is a complete single-node tree — its local
// queue vector is the global view.
func ExampleNewBuilder() {
	now := func() time.Duration { return 0 }
	solo := combining.NewBuilder(0).Principals(3).
		Transport(func(to combining.NodeID, msg interface{}) {}).
		Clock(now).Build()

	solo.SetLocal([]float64{4, 2, 0})
	solo.Tick()

	g, _, _ := solo.Global()
	fmt.Printf("global queues: %v across %d node\n", g.Sum, g.Count)
	// Output: global queues: [4 2 0] across 1 node
}
