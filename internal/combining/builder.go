package combining

import "time"

// Builder constructs combining-tree nodes. It replaces the old positional
// constructor: placement (parent, children), sizing, transport, clock, and
// metrics each read as named steps, and compiled topologies plug in
// directly via Place.
//
//	node := combining.NewBuilder(3).
//		Parent(1).Children(7, 8).
//		Principals(numPrincipals).
//		Transport(send).
//		Clock(clock.Elapsed).
//		Build()
type Builder struct {
	id       NodeID
	parent   NodeID
	children []NodeID
	numPrin  int
	send     SendFunc
	now      func() time.Duration
	hop      *HopMetrics
}

// NewBuilder starts a builder for node id. The node defaults to a root
// (no parent, no children) with a one-principal vector and a wall-clock
// time base.
func NewBuilder(id NodeID) *Builder {
	return &Builder{id: id, parent: -1, numPrin: 1}
}

// Parent sets the node's parent (-1 for a root).
func (b *Builder) Parent(parent NodeID) *Builder {
	b.parent = parent
	return b
}

// Children sets the node's children, replacing any previous set.
func (b *Builder) Children(children ...NodeID) *Builder {
	b.children = append(b.children[:0], children...)
	return b
}

// Place positions the node according to a flat topology: parent and
// children are read from t (the node is t's root when it has no parent
// entry).
func (b *Builder) Place(t Topology) *Builder {
	if b.id == t.Root {
		b.parent = -1
	} else {
		b.parent = t.Parent[b.id]
	}
	return b.Children(t.Children[b.id]...)
}

// Principals sets the aggregate vector length (minimum 1).
func (b *Builder) Principals(n int) *Builder {
	if n < 1 {
		n = 1
	}
	b.numPrin = n
	return b
}

// Transport sets the outbound send hook.
func (b *Builder) Transport(send SendFunc) *Builder {
	b.send = send
	return b
}

// Clock sets the node's time base (virtual time in the simulator, process
// uptime in the redirectors). nil restores the wall-clock default.
func (b *Builder) Clock(now func() time.Duration) *Builder {
	b.now = now
	return b
}

// Metrics attaches per-hop timing instruments.
func (b *Builder) Metrics(hm *HopMetrics) *Builder {
	b.hop = hm
	return b
}

// Build constructs the node. The builder may be reused afterwards (each
// Build returns an independent node).
func (b *Builder) Build() *Node {
	now := b.now
	if now == nil {
		start := time.Now()
		now = func() time.Duration { return time.Since(start) }
	}
	n := newNode(b.id, b.parent, b.children, b.numPrin, b.send, now)
	if b.hop != nil {
		n.SetHopMetrics(b.hop)
	}
	return n
}
