package combining

import (
	"io"

	"repro/internal/obs"
)

// WriteHopMetrics appends the per-hop tree timing histograms to a
// Prometheus-text scrape:
//
//	rsa_tree_hop_round_trip_seconds  report→broadcast round trip (non-root)
//	rsa_tree_hop_child_lag_seconds   broadcast→next-report lag per child (parent)
//	rsa_tree_hop_gate_lag_seconds    config-version held→child-ack lag (parent)
//
// A nil hm writes nothing (node outside a tree or hop timing unarmed).
func WriteHopMetrics(w io.Writer, hm *HopMetrics) {
	if hm == nil {
		return
	}
	obs.WriteHistogram(w, "rsa_tree_hop_round_trip_seconds",
		"Combining-tree round trip from sending an epoch report to receiving the next global broadcast.",
		hm.RoundTrip)
	obs.WriteHistogram(w, "rsa_tree_hop_child_lag_seconds",
		"Lag from forwarding a broadcast to a child to that child's next report arriving.",
		hm.ChildLag)
	obs.WriteHistogram(w, "rsa_tree_hop_gate_lag_seconds",
		"Epoch-gate crossing lag: from holding a configuration version to a child acknowledging it.",
		hm.GateLag)
}
