package combining

import (
	"math"
	"testing"
)

// deltaRng is a tiny deterministic generator (splitmix64) so the property
// test replays identically on every run.
type deltaRng struct{ s uint64 }

func (r *deltaRng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *deltaRng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

func aggEqual(a, b Aggregate) bool {
	if a.Count != b.Count || len(a.Sum) != len(b.Sum) {
		return false
	}
	for i := range a.Sum {
		if a.Sum[i] != b.Sum[i] || a.Max[i] != b.Max[i] ||
			a.Min[i] != b.Min[i] || a.SumSq[i] != b.SumSq[i] {
			return false
		}
	}
	return true
}

// randomAgg mutates vec into the next "true" aggregate: most principals
// drift by small amounts, some move sharply, and some transition to zero.
func randomAgg(r *deltaRng, vec []float64) Aggregate {
	for i := range vec {
		switch r.next() % 8 {
		case 0:
			vec[i] = 0 // idle: must reach the receiver exactly
		case 1, 2:
			vec[i] += 5 * r.float() // a real move, above any test threshold
		default:
			vec[i] += 0.05 * (r.float() - 0.5) // sub-threshold jitter
		}
		if vec[i] < 0 {
			vec[i] = 0
		}
	}
	return FromLocal(vec)
}

// TestDeltaPropertyReconstruction is the delta-compression correctness
// property: for any interleaving of delta frames with occasional drops, a
// decoder (a) refuses frames after a gap instead of corrupting state, (b)
// reconstructs the exact full vector on the next resync frame, (c) never
// drifts more than the threshold per statistic while synced, and (d)
// always holds exact zeros for principals that went idle.
func TestDeltaPropertyReconstruction(t *testing.T) {
	const (
		n         = 7
		threshold = 0.1
		resync    = 8
		frames    = 600
	)
	r := &deltaRng{s: 42}
	enc := NewDeltaEncoder(n, threshold, resync)
	dec := NewDeltaDecoder(n)
	vec := make([]float64, n)
	synced := false
	sawPostDropResync := false
	for fn := 0; fn < frames; fn++ {
		truth := randomAgg(r, vec)
		f := enc.Encode(truth)
		if r.next()%11 == 0 && !f.Full {
			synced = false // drop this delta frame in transit
			continue
		}
		got, ok := dec.Apply(f)
		if f.Full {
			if !ok {
				t.Fatalf("frame %d: resync frame rejected", fn)
			}
			if !aggEqual(got, truth) {
				t.Fatalf("frame %d: resync did not reconstruct exactly:\n got %+v\nwant %+v", fn, got, truth)
			}
			if !synced {
				sawPostDropResync = true
			}
			synced = true
			continue
		}
		if !synced {
			if ok {
				t.Fatalf("frame %d: delta accepted across a gap", fn)
			}
			continue
		}
		if !ok {
			t.Fatalf("frame %d: in-sequence delta rejected", fn)
		}
		if got.Count != truth.Count {
			t.Fatalf("frame %d: count = %d, want %d", fn, got.Count, truth.Count)
		}
		for i := 0; i < n; i++ {
			if truth.Sum[i] == 0 && got.Sum[i] != 0 {
				t.Fatalf("frame %d: principal %d went to zero but decoder holds %g", fn, i, got.Sum[i])
			}
			for _, pair := range [][2]float64{
				{got.Sum[i], truth.Sum[i]},
				{got.Max[i], truth.Max[i]},
				{got.Min[i], truth.Min[i]},
				{got.SumSq[i], truth.SumSq[i]},
			} {
				if math.Abs(pair[0]-pair[1]) > threshold+1e-12 {
					t.Fatalf("frame %d: principal %d drifted beyond threshold: got %g want %g",
						fn, i, pair[0], pair[1])
				}
			}
		}
	}
	if !sawPostDropResync {
		t.Fatal("test never exercised a resync after a dropped frame")
	}
	st := enc.Stats()
	if st.EntriesSuppressed == 0 || st.FullFrames < frames/resync {
		t.Fatalf("stats = %+v: expected suppression and periodic resyncs", st)
	}
	if dec.Desyncs() == 0 {
		t.Fatal("decoder never recorded a desync despite drops")
	}
}

// TestDeltaZeroThresholdIsExact: with threshold 0 every changed entry is
// transmitted, so a gap-free stream reconstructs the truth exactly on
// every frame.
func TestDeltaZeroThresholdIsExact(t *testing.T) {
	const n = 5
	r := &deltaRng{s: 7}
	enc := NewDeltaEncoder(n, 0, 16)
	dec := NewDeltaDecoder(n)
	vec := make([]float64, n)
	for fn := 0; fn < 200; fn++ {
		truth := randomAgg(r, vec)
		got, ok := dec.Apply(enc.Encode(truth))
		if !ok {
			t.Fatalf("frame %d rejected", fn)
		}
		if !aggEqual(got, truth) {
			t.Fatalf("frame %d: got %+v want %+v", fn, got, truth)
		}
	}
}

// TestDeltaEncoderReset: after a transport reconnect the encoder must lead
// with a full frame so a restarted receiver can rebuild state.
func TestDeltaEncoderReset(t *testing.T) {
	enc := NewDeltaEncoder(3, 0.1, 64)
	a := FromLocal([]float64{1, 2, 3})
	if f := enc.Encode(a); !f.Full {
		t.Fatal("first frame not full")
	}
	if f := enc.Encode(a); f.Full {
		t.Fatal("second frame unexpectedly full")
	}
	enc.Reset()
	if f := enc.Encode(a); !f.Full {
		t.Fatal("post-reset frame not full")
	}
	// A fresh decoder (receiver restart) syncs from the post-reset frame.
	dec := NewDeltaDecoder(3)
	enc2 := NewDeltaEncoder(3, 0.1, 64)
	enc2.Encode(a) // lost before the receiver started
	enc2.Reset()
	if _, ok := dec.Apply(enc2.Encode(a)); !ok {
		t.Fatal("decoder rejected post-reset full frame")
	}
}

// TestDeltaFrameBoundsChecked: malformed frames (bad index, short values)
// must desync the decoder, not panic or corrupt it.
func TestDeltaFrameBoundsChecked(t *testing.T) {
	dec := NewDeltaDecoder(3)
	full := DeltaFrame{Seq: 1, Full: true, N: 3, Count: 1,
		Sum: []float64{1, 2, 3}, Max: []float64{1, 2, 3}, Min: []float64{1, 2, 3}, SumSq: []float64{1, 4, 9}}
	if _, ok := dec.Apply(full); !ok {
		t.Fatal("full frame rejected")
	}
	bad := DeltaFrame{Seq: 2, N: 3, Count: 1, Idx: []int{5}, Sum: []float64{9}, Max: []float64{9}, Min: []float64{9}, SumSq: []float64{81}}
	if _, ok := dec.Apply(bad); ok {
		t.Fatal("out-of-range index accepted")
	}
	// Desynced now: even a well-formed successor delta is refused.
	good := DeltaFrame{Seq: 3, N: 3, Count: 1, Idx: []int{0}, Sum: []float64{9}, Max: []float64{9}, Min: []float64{9}, SumSq: []float64{81}}
	if _, ok := dec.Apply(good); ok {
		t.Fatal("delta accepted after desync")
	}
	if dec.Desyncs() != 2 {
		t.Fatalf("desyncs = %d, want 2", dec.Desyncs())
	}
}
