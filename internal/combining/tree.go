package combining

import "sort"

// Topology maps every node to its parent (−1 for the root) and children.
type Topology struct {
	Root     NodeID
	Parent   map[NodeID]NodeID
	Children map[NodeID][]NodeID
}

// BuildTree lays the given nodes out as a complete tree with the given
// fan-out (heap ordering over the sorted id list): ids[0] is the root,
// ids[i]'s parent is ids[(i−1)/fanout]. A fan-out below 2 is treated as 2.
func BuildTree(ids []NodeID, fanout int) Topology {
	if fanout < 2 {
		fanout = 2
	}
	sorted := append([]NodeID(nil), ids...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	t := Topology{
		Parent:   make(map[NodeID]NodeID, len(sorted)),
		Children: make(map[NodeID][]NodeID, len(sorted)),
	}
	if len(sorted) == 0 {
		t.Root = -1
		return t
	}
	t.Root = sorted[0]
	t.Parent[t.Root] = -1
	for i := 1; i < len(sorted); i++ {
		p := sorted[(i-1)/fanout]
		t.Parent[sorted[i]] = p
		t.Children[p] = append(t.Children[p], sorted[i])
	}
	return t
}

// RemoveNode rebuilds the topology without the failed node: its children are
// re-parented to the failed node's parent (or one of them becomes the new
// root if the root failed). The returned topology shares no state with t.
func (t Topology) RemoveNode(failed NodeID) Topology {
	out := Topology{
		Parent:   make(map[NodeID]NodeID, len(t.Parent)),
		Children: make(map[NodeID][]NodeID, len(t.Children)),
	}
	for id, p := range t.Parent {
		if id == failed {
			continue
		}
		out.Parent[id] = p
	}
	orphans := append([]NodeID(nil), t.Children[failed]...)
	sort.Slice(orphans, func(i, j int) bool { return orphans[i] < orphans[j] })

	if failed == t.Root {
		if len(orphans) == 0 {
			// Tree may still contain other nodes only if failed had no
			// children — then the tree had exactly one node.
			out.Root = -1
			return out
		}
		newRoot := orphans[0]
		out.Root = newRoot
		out.Parent[newRoot] = -1
		for _, o := range orphans[1:] {
			out.Parent[o] = newRoot
		}
	} else {
		out.Root = t.Root
		gp := t.Parent[failed]
		for _, o := range orphans {
			out.Parent[o] = gp
		}
	}
	for id, p := range out.Parent {
		if p >= 0 {
			out.Children[p] = append(out.Children[p], id)
		}
	}
	for _, cs := range out.Children {
		sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	}
	return out
}

// Depth returns the number of edges on the longest root-to-leaf path.
func (t Topology) Depth() int {
	depth := func(id NodeID) int {
		d := 0
		for t.Parent[id] >= 0 {
			id = t.Parent[id]
			d++
		}
		return d
	}
	max := 0
	for id := range t.Parent {
		if d := depth(id); d > max {
			max = d
		}
	}
	return max
}

// Apply reconfigures a set of live nodes to this topology.
func (t Topology) Apply(nodes map[NodeID]*Node) {
	for id, n := range nodes {
		p, ok := t.Parent[id]
		if !ok {
			continue
		}
		n.Reconfigure(p, t.Children[id])
	}
}

// PairwiseExchanger is the O(n²) baseline the paper compares the combining
// tree against: every node unicasts its local vector to every other node
// each epoch and sums whatever it has heard.
type PairwiseExchanger struct {
	id      NodeID
	peers   []NodeID
	numPrin int
	send    SendFunc
	local   []float64
	latest  map[NodeID][]float64
}

// NewPairwiseExchanger constructs the baseline node.
func NewPairwiseExchanger(id NodeID, peers []NodeID, numPrincipals int, send SendFunc) *PairwiseExchanger {
	return &PairwiseExchanger{
		id:      id,
		peers:   append([]NodeID(nil), peers...),
		numPrin: numPrincipals,
		send:    send,
		local:   make([]float64, numPrincipals),
		latest:  make(map[NodeID][]float64),
	}
}

// SetLocal records the node's local vector.
func (p *PairwiseExchanger) SetLocal(values []float64) { copy(p.local, values) }

// Tick unicasts the local vector to every peer.
func (p *PairwiseExchanger) Tick() {
	for _, peer := range p.peers {
		if peer == p.id {
			continue
		}
		p.send(peer, Report{Agg: FromLocal(p.local)})
	}
}

// OnMessage stores a peer's latest vector.
func (p *PairwiseExchanger) OnMessage(from NodeID, msg interface{}) {
	if r, ok := msg.(Report); ok {
		p.latest[from] = append([]float64(nil), r.Agg.Sum...)
	}
}

// Global sums the local vector with the latest values heard from peers.
func (p *PairwiseExchanger) Global() Aggregate {
	agg := FromLocal(p.local)
	for _, v := range p.latest {
		agg.Combine(FromLocal(v))
	}
	return agg
}
