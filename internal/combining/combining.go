// Package combining implements the dynamic combining tree of §3.2: redirector
// nodes organized into a tree that aggregates per-principal queue lengths
// upward each epoch and broadcasts the global aggregate back down, costing
// 2(n−1) messages per epoch instead of the O(n²) of pairwise exchange.
//
// Beyond the total queue length the paper needs, nodes aggregate max, min,
// count and sum-of-squares, so schedulers can also consume average and
// variance (the paper's "other aggregate queue metrics").
//
// The package is transport-agnostic: a Node is driven by Tick/OnMessage and
// emits messages through a send callback. internal/sim wires nodes to
// simnet; cmd/redirector wires them to TCP.
package combining

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/obs"
)

// NodeID identifies a tree node (a redirector).
type NodeID int

// Aggregate is the combinable statistic vector, indexed by principal.
type Aggregate struct {
	Sum   []float64
	Max   []float64
	Min   []float64
	SumSq []float64
	Count int // number of contributing nodes
}

// NewAggregate returns an identity aggregate for n principals.
func NewAggregate(n int) Aggregate {
	a := Aggregate{
		Sum:   make([]float64, n),
		Max:   make([]float64, n),
		Min:   make([]float64, n),
		SumSq: make([]float64, n),
	}
	for i := range a.Min {
		a.Max[i] = math.Inf(-1)
		a.Min[i] = math.Inf(1)
	}
	return a
}

// FromLocal wraps one node's local vector as an aggregate.
func FromLocal(local []float64) Aggregate {
	a := NewAggregate(len(local))
	for i, v := range local {
		a.Sum[i] = v
		a.Max[i] = v
		a.Min[i] = v
		a.SumSq[i] = v * v
	}
	a.Count = 1
	return a
}

// Combine merges other into a (pointwise sum/max/min).
func (a *Aggregate) Combine(other Aggregate) {
	for i := range a.Sum {
		if i >= len(other.Sum) {
			break
		}
		a.Sum[i] += other.Sum[i]
		a.SumSq[i] += other.SumSq[i]
		if other.Max[i] > a.Max[i] {
			a.Max[i] = other.Max[i]
		}
		if other.Min[i] < a.Min[i] {
			a.Min[i] = other.Min[i]
		}
	}
	a.Count += other.Count
}

// Avg returns the per-principal mean queue length across nodes.
func (a Aggregate) Avg(i int) float64 {
	if a.Count == 0 {
		return 0
	}
	return a.Sum[i] / float64(a.Count)
}

// Variance returns the per-principal population variance across nodes.
func (a Aggregate) Variance(i int) float64 {
	if a.Count == 0 {
		return 0
	}
	m := a.Avg(i)
	v := a.SumSq[i]/float64(a.Count) - m*m
	if v < 0 {
		return 0
	}
	return v
}

// clone deep-copies the aggregate so stored snapshots cannot alias callers'
// slices.
func (a Aggregate) clone() Aggregate {
	c := Aggregate{
		Sum:   append([]float64(nil), a.Sum...),
		Max:   append([]float64(nil), a.Max...),
		Min:   append([]float64(nil), a.Min...),
		SumSq: append([]float64(nil), a.SumSq...),
		Count: a.Count,
	}
	return c
}

// ConfigUpdate is a versioned configuration payload piggybacked on the
// tree's own epoch messages: the control plane hands the root an encoded
// agreement-set snapshot, every downward Broadcast carries the newest one,
// and upward Reports acknowledge the version each node holds. No extra
// messages are spent — distribution rides the existing 2(n−1)/epoch flow.
// A ConfigUpdate is immutable once published; nodes share the pointer.
type ConfigUpdate struct {
	// Version is the fleet-wide agreement-set version (monotonic).
	Version uint64
	// GateEpoch is the root epoch at which redirectors swap to this
	// configuration's scheduling state (the epoch gate).
	GateEpoch int
	// Payload is the encoded agreement.Set.
	Payload []byte
}

// Report flows up the tree: the combined aggregate of a subtree.
type Report struct {
	Epoch int
	Agg   Aggregate
	// AckVersion is the configuration version the sender currently holds
	// (0 when none) — the root's visibility into rollout progress.
	AckVersion uint64
}

// Broadcast flows down the tree: the global aggregate computed at the root,
// plus the newest configuration update (nil when none has been published).
type Broadcast struct {
	Epoch  int
	Agg    Aggregate
	Config *ConfigUpdate
}

// Rejoin is the crash-recovery handshake a restarted node sends its parent:
// its last durable (epoch, configuration version) position. The parent
// resets the child's stale-report gate (the restarted process counts epochs
// from its restored position, which may trail what the parent last heard)
// and immediately replies with the current global broadcast and newest
// configuration, so the child converges before its next scheduling window
// instead of waiting out a full epoch round.
type Rejoin struct {
	// Epoch is the sender's restored local epoch (0 on a cold start).
	Epoch int
	// AckVersion is the newest configuration version the sender holds
	// from durable state (0 when none).
	AckVersion uint64
}

// SendFunc transmits a message toward another node.
type SendFunc func(to NodeID, msg interface{})

// Node is one combining-tree participant. All methods are safe for
// concurrent use: the window loop Ticks it, the transport goroutine feeds
// OnMessage, and the control plane reads Epoch/Config and publishes
// SetConfig from admin handlers. Message sends are asynchronous in every
// transport (simnet schedules deliveries, treenet enqueues), so the
// internal lock is never held across a blocking operation.
type Node struct {
	mu sync.Mutex

	id          NodeID
	parent      NodeID // -1 at the root
	children    []NodeID
	numPrin     int
	send        SendFunc
	now         func() time.Duration
	local       []float64
	childAggs   map[NodeID]Aggregate
	childEpochs map[NodeID]int
	lastHeard   map[NodeID]time.Duration
	epoch       int
	global      Aggregate
	globalAt    time.Duration
	globalEpoch int
	haveGlobal  bool

	// config is the newest configuration update seen (nil when none);
	// onConfig fires when a strictly newer version arrives from the parent.
	config    *ConfigUpdate
	onConfig  func(*ConfigUpdate)
	childAcks map[NodeID]uint64

	reportsIn    uint64
	broadcastsIn uint64
	msgsOut      uint64

	// Hop timing (nil hop disables; all under mu). A non-root stamps
	// reportSentAt at each Tick and observes the broadcast→report round
	// trip when the next broadcast lands. A parent stamps bcastSentAt per
	// child when forwarding a broadcast and observes the child's lag when
	// its next report arrives. configAt stamps when the current config
	// version was first held, for per-child epoch-gate crossing lag.
	hop               *HopMetrics
	reportSentAt      time.Duration
	reportOutstanding bool
	bcastSentAt       map[NodeID]time.Duration
	configAt          time.Duration
	configAtVer       uint64
}

// HopMetrics holds the per-hop combining-tree timing distributions a node
// feeds when SetHopMetrics arms it: the report→broadcast round trip seen by
// a child, the broadcast→report lag a parent observes per child, and the
// lag between this node holding a configuration version and each child
// acknowledging it (epoch-gate crossing). The histograms are atomic; share
// them across nodes of a process or give each node its own.
type HopMetrics struct {
	// RoundTrip: non-root nodes, time from sending an epoch report to
	// receiving the next global broadcast.
	RoundTrip *obs.Histogram
	// ChildLag: parent nodes, time from forwarding a broadcast to a child
	// to that child's next report arriving.
	ChildLag *obs.Histogram
	// GateLag: parent nodes, time from first holding a configuration
	// version to a child acknowledging it.
	GateLag *obs.Histogram
}

// NewHopMetrics builds an armed HopMetrics with fresh histograms.
func NewHopMetrics() *HopMetrics {
	return &HopMetrics{
		RoundTrip: obs.NewHistogram(),
		ChildLag:  obs.NewHistogram(),
		GateLag:   obs.NewHistogram(),
	}
}

// newNode constructs a node (the Builder's backend). parent is −1 for the
// root. now supplies timestamps for staleness tracking (virtual or wall
// time).
func newNode(id NodeID, parent NodeID, children []NodeID, numPrincipals int,
	send SendFunc, now func() time.Duration) *Node {
	return &Node{
		id:          id,
		parent:      parent,
		children:    append([]NodeID(nil), children...),
		numPrin:     numPrincipals,
		send:        send,
		now:         now,
		local:       make([]float64, numPrincipals),
		childAggs:   make(map[NodeID]Aggregate),
		childEpochs: make(map[NodeID]int),
		lastHeard:   make(map[NodeID]time.Duration),
		childAcks:   make(map[NodeID]uint64),
		bcastSentAt: make(map[NodeID]time.Duration),
	}
}

// SetHopMetrics arms per-hop timing on this node (nil disables). Call it
// before the first Tick; the observations go to hm's histograms, exported
// as the rsa_tree_hop_* families by WriteHopMetrics.
func (n *Node) SetHopMetrics(hm *HopMetrics) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.hop = hm
}

// ID returns the node's identity.
func (n *Node) ID() NodeID { return n.id }

// IsRoot reports whether this node is the tree root.
func (n *Node) IsRoot() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.isRoot()
}

// isRoot is IsRoot with the lock already held.
func (n *Node) isRoot() bool { return n.parent < 0 }

// SetLocal records the node's current local queue-length vector.
func (n *Node) SetLocal(values []float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	copy(n.local, values)
	for i := len(values); i < n.numPrin; i++ {
		n.local[i] = 0
	}
}

// subtree combines the local vector with the latest child reports.
func (n *Node) subtree() Aggregate {
	agg := FromLocal(n.local)
	for _, c := range n.children {
		if ca, ok := n.childAggs[c]; ok {
			agg.Combine(ca)
		}
	}
	return agg
}

// Tick runs one epoch: leaves and intermediates push their subtree aggregate
// to their parent; the root computes the global aggregate and broadcasts it.
func (n *Node) Tick() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.epoch++
	agg := n.subtree()
	if n.isRoot() {
		n.acceptGlobal(Broadcast{Epoch: n.epoch, Agg: agg, Config: n.config})
		return
	}
	n.msgsOut++
	if n.hop != nil {
		n.reportSentAt = n.now()
		n.reportOutstanding = true
	}
	n.send(n.parent, Report{Epoch: n.epoch, Agg: agg.clone(), AckVersion: n.configVersion()})
}

func (n *Node) acceptGlobal(b Broadcast) {
	n.global = b.Agg.clone()
	n.globalAt = n.now()
	n.globalEpoch = b.Epoch
	n.haveGlobal = true
	if b.Config != nil && (n.config == nil || b.Config.Version > n.config.Version) {
		n.config = b.Config
		if n.hop != nil {
			n.configAt = n.now()
			n.configAtVer = b.Config.Version
		}
		if n.onConfig != nil {
			n.onConfig(b.Config)
		}
	}
	for _, c := range n.children {
		n.msgsOut++
		if n.hop != nil {
			n.bcastSentAt[c] = n.now()
		}
		// Always forward the newest configuration held, not the incoming
		// one: a reordered older broadcast must not regress descendants.
		n.send(c, Broadcast{Epoch: b.Epoch, Agg: b.Agg.clone(), Config: n.config})
	}
}

// OnMessage processes a Report from a child or a Broadcast from the parent.
// Unknown message types are ignored, as are messages older (by epoch) than
// what is already held — TCP transports may reorder deliveries, and a stale
// report must not overwrite a fresher one.
func (n *Node) OnMessage(from NodeID, msg interface{}) {
	n.mu.Lock()
	defer n.mu.Unlock()
	switch m := msg.(type) {
	case Report:
		n.reportsIn++
		n.lastHeard[from] = n.now()
		if n.hop != nil {
			if sentAt, ok := n.bcastSentAt[from]; ok {
				n.hop.ChildLag.Observe(n.now() - sentAt)
				delete(n.bcastSentAt, from)
			}
		}
		if m.Epoch < n.childEpochs[from] {
			return
		}
		n.childAggs[from] = m.Agg
		n.childEpochs[from] = m.Epoch
		if m.AckVersion > n.childAcks[from] {
			prev := n.childAcks[from]
			n.childAcks[from] = m.AckVersion
			// Epoch-gate crossing: the child just acknowledged the version
			// this node holds for the first time.
			if n.hop != nil && n.configAtVer > 0 &&
				m.AckVersion >= n.configAtVer && prev < n.configAtVer {
				n.hop.GateLag.Observe(n.now() - n.configAt)
			}
		}
	case Broadcast:
		n.broadcastsIn++
		n.lastHeard[from] = n.now()
		if n.haveGlobal && m.Epoch < n.globalEpoch {
			return
		}
		if n.hop != nil && n.reportOutstanding {
			n.hop.RoundTrip.Observe(n.now() - n.reportSentAt)
			n.reportOutstanding = false
		}
		n.acceptGlobal(m)
	case Rejoin:
		n.lastHeard[from] = n.now()
		// The restarted child's epoch counter resumed from its durable
		// position (or zero): drop the pre-crash gate and aggregate so its
		// fresh reports are accepted rather than rejected as stale.
		delete(n.childAggs, from)
		n.childEpochs[from] = 0
		n.childAcks[from] = m.AckVersion
		delete(n.bcastSentAt, from)
		// Reply immediately with the newest global + configuration held:
		// the child converges now, not an epoch round from now.
		if n.haveGlobal {
			n.msgsOut++
			n.send(from, Broadcast{Epoch: n.globalEpoch, Agg: n.global.clone(), Config: n.config})
		}
	}
}

// AnnounceRejoin sends the crash-recovery handshake to the parent: the
// node's restored (epoch, configuration version) position. Call it once
// after constructing or Resetting a node whose process restarted (the
// transport may also re-announce after a reconnect). A no-op at the root —
// the root recovers its configuration from durable state directly.
func (n *Node) AnnounceRejoin() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.isRoot() {
		return
	}
	n.msgsOut++
	n.send(n.parent, Rejoin{Epoch: n.epoch, AckVersion: n.configVersion()})
}

// Reset rewinds the node to a restarted process's state: the epoch counter
// resumes from the durable position (epoch), the newest durable
// configuration (cu, may be nil) is reinstalled, and all volatile state —
// child aggregates, epoch gates, acks, the last global broadcast — is
// dropped, exactly as if the process had been re-exec'd around the same
// Node object. Topology (parent, children) and transport wiring survive.
// Follow with AnnounceRejoin on non-root nodes.
func (n *Node) Reset(epoch int, cu *ConfigUpdate) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.epoch = epoch
	n.config = cu
	n.haveGlobal = false
	n.globalEpoch = 0
	n.globalAt = 0
	n.global = Aggregate{}
	for i := range n.local {
		n.local[i] = 0
	}
	n.childAggs = make(map[NodeID]Aggregate)
	n.childEpochs = make(map[NodeID]int)
	n.childAcks = make(map[NodeID]uint64)
	n.lastHeard = make(map[NodeID]time.Duration)
	n.bcastSentAt = make(map[NodeID]time.Duration)
	n.reportOutstanding = false
	if n.hop != nil && cu != nil {
		n.configAt = n.now()
		n.configAtVer = cu.Version
	}
}

// LastHeard reports when a message from the given neighbor last arrived;
// ok is false if it has never been heard. Failure detectors use this to
// decide when to rebuild the tree.
func (n *Node) LastHeard(neighbor NodeID) (time.Duration, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	at, ok := n.lastHeard[neighbor]
	return at, ok
}

// Global returns the latest global aggregate, its timestamp, and whether one
// has been received at all.
func (n *Node) Global() (Aggregate, time.Duration, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.global, n.globalAt, n.haveGlobal
}

// Epoch reports the node's local epoch (incremented each Tick).
func (n *Node) Epoch() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.epoch
}

// GlobalEpoch reports the epoch of the last global broadcast applied (0 when
// none has arrived).
func (n *Node) GlobalEpoch() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.globalEpoch
}

// SetConfig publishes a configuration update from this node (the root of
// the tree; the control plane lives there). Older or equal versions are
// ignored. The update rides on the next Tick's broadcast; the publisher is
// expected to have applied it locally already, so no handler fires here.
func (n *Node) SetConfig(cu *ConfigUpdate) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if cu == nil || (n.config != nil && cu.Version <= n.config.Version) {
		return
	}
	n.config = cu
	if n.hop != nil {
		n.configAt = n.now()
		n.configAtVer = cu.Version
	}
}

// Config returns the newest configuration update this node holds (nil when
// none has arrived). The returned value is shared and must not be mutated.
func (n *Node) Config() *ConfigUpdate {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.config
}

// SetConfigHandler installs the callback fired when a strictly newer
// configuration version arrives from the parent. It runs on the goroutine
// delivering the message, with the node's lock held — the handler must not
// call back into this Node.
func (n *Node) SetConfigHandler(fn func(*ConfigUpdate)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.onConfig = fn
}

// configVersion is the version this node acknowledges upward.
func (n *Node) configVersion() uint64 {
	if n.config == nil {
		return 0
	}
	return n.config.Version
}

// ChildConfigAcks returns the newest configuration version each current
// child has acknowledged — the root's rollout-progress view.
func (n *Node) ChildConfigAcks() map[NodeID]uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[NodeID]uint64, len(n.children))
	for _, c := range n.children {
		out[c] = n.childAcks[c]
	}
	return out
}

// MessageCounts reports cumulative tree traffic at this node: reports and
// broadcasts received, and messages sent. Together with Epoch they verify
// the 2(n−1) messages/epoch bound and feed per-window trace records.
func (n *Node) MessageCounts() (reportsIn, broadcastsIn, sent uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.reportsIn, n.broadcastsIn, n.msgsOut
}

// Reconfigure rewires the node's position in the tree (dynamic membership:
// a failed parent is replaced by the grandparent, new children attach).
// Stale child reports from nodes no longer children are discarded, and the
// broadcast-epoch gate resets: a replacement root starts from its own (lower)
// epoch counter, and its broadcasts must not be rejected as stale against the
// dead root's. The last global aggregate is kept — it stays usable until its
// timestamp ages past the staleness bound.
func (n *Node) Reconfigure(parent NodeID, children []NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.parent = parent
	n.children = append(n.children[:0], children...)
	n.globalEpoch = 0
	keep := make(map[NodeID]bool, len(children))
	for _, c := range children {
		keep[c] = true
	}
	for id := range n.childAggs {
		if !keep[id] {
			delete(n.childAggs, id)
			delete(n.childEpochs, id)
			delete(n.childAcks, id)
		}
	}
	// n.config survives reconfiguration: the newest agreement set stays in
	// force while the tree heals, and a promoted root keeps re-broadcasting
	// it so late joiners converge.
}

// String renders the node's tree position.
func (n *Node) String() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return fmt.Sprintf("combining.Node{id=%d parent=%d children=%v}", n.id, n.parent, n.children)
}
