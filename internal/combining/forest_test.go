package combining

import (
	"testing"
	"time"
)

// twoNodeForest wires a root and a leaf forest with synchronous in-process
// delivery, two components ({0,2} and {1}) over three principals.
func twoNodeForest(t *testing.T) (root, leaf *Forest) {
	t.Helper()
	comps := [][]int{{0, 2}, {1}}
	now := func() time.Duration { return 0 }
	var r, l *Forest
	mk := func(id, parent NodeID, children []NodeID, deliver func(tree int, from NodeID, msg interface{})) *Forest {
		f, err := NewForest(ForestConfig{
			ID: id, Parent: parent, Children: children,
			NumPrincipals: 3, Components: comps,
			Send: func(tree int) SendFunc {
				return func(to NodeID, msg interface{}) { deliver(tree, id, msg) }
			},
			Now: now,
		})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	r = mk(0, -1, []NodeID{1}, func(tree int, from NodeID, msg interface{}) { l.OnMessage(tree, from, msg) })
	l = mk(1, 0, nil, func(tree int, from NodeID, msg interface{}) { r.OnMessage(tree, from, msg) })
	return r, l
}

func TestForestScatterGather(t *testing.T) {
	root, leaf := twoNodeForest(t)
	root.SetLocal([]float64{10, 100, 0})
	leaf.SetLocal([]float64{5, 11, 20})
	leaf.Tick()
	root.Tick()

	// Component 0 carries principals 0 and 2, component 1 carries 1.
	g0, _, ok := leaf.ComponentGlobal(0)
	if !ok || g0.Sum[0] != 15 || g0.Sum[1] != 20 || g0.Count != 2 {
		t.Fatalf("component 0 global = %+v ok=%v", g0, ok)
	}
	g1, _, ok := leaf.ComponentGlobal(1)
	if !ok || g1.Sum[0] != 111 {
		t.Fatalf("component 1 global = %+v ok=%v", g1, ok)
	}
	if root.Trees() != 2 || !root.IsRoot() || leaf.IsRoot() {
		t.Fatal("forest shape wrong")
	}
}

func TestForestEpochsAreIndependent(t *testing.T) {
	root, leaf := twoNodeForest(t)
	leaf.SetLocal([]float64{1, 1, 1})
	leaf.Tick()
	// Advance only component 1's tree on the root: component epochs must
	// diverge, and the forest-level epoch reports the slowest.
	root.Tree(1).Tick()
	root.Tree(1).Tick()
	if e0, e1 := root.Tree(0).Epoch(), root.Tree(1).Epoch(); e0 >= e1 {
		t.Fatalf("epochs did not diverge: %d vs %d", e0, e1)
	}
	if root.Epoch() != root.Tree(0).Epoch() {
		t.Fatalf("forest epoch %d, want slowest tree's %d", root.Epoch(), root.Tree(0).Epoch())
	}
}

func TestForestConfigDedupe(t *testing.T) {
	root, leaf := twoNodeForest(t)
	fired := 0
	leaf.SetConfigHandler(func(cu *ConfigUpdate) { fired++ })
	root.SetConfig(&ConfigUpdate{Version: 7, Payload: []byte("x")})
	// The update rides both component trees; two epochs flush broadcasts.
	for i := 0; i < 2; i++ {
		leaf.Tick()
		root.Tick()
	}
	if fired != 1 {
		t.Fatalf("config handler fired %d times, want 1 (deduped)", fired)
	}
	if cu := leaf.Config(); cu == nil || cu.Version != 7 {
		t.Fatalf("leaf config = %+v", cu)
	}
	// A replayed older version never re-fires.
	root.SetConfig(&ConfigUpdate{Version: 7, Payload: []byte("x")})
	leaf.Tick()
	root.Tick()
	if fired != 1 {
		t.Fatalf("stale version re-fired handler: %d", fired)
	}
}

func TestForestSingleComponentDefault(t *testing.T) {
	f, err := NewForest(ForestConfig{ID: 0, Parent: -1, NumPrincipals: 4})
	if err != nil {
		t.Fatal(err)
	}
	if f.Trees() != 1 || len(f.Component(0)) != 4 {
		t.Fatalf("default forest = %d trees, component %v", f.Trees(), f.Component(0))
	}
	f.SetLocal([]float64{1, 2, 3, 4})
	f.Tick()
	g, _, ok := f.ComponentGlobal(0)
	if !ok || g.Sum[3] != 4 {
		t.Fatalf("global = %+v ok=%v", g, ok)
	}
}

func TestForestValidation(t *testing.T) {
	bad := []ForestConfig{
		{NumPrincipals: 0},
		{NumPrincipals: 2, Components: [][]int{{}}},
		{NumPrincipals: 2, Components: [][]int{{0, 2}}},
		{NumPrincipals: 2, Components: [][]int{{0}, {0}}},
		{NumPrincipals: 2, Components: [][]int{{-1}}},
	}
	for i, cfg := range bad {
		if _, err := NewForest(cfg); err == nil {
			t.Fatalf("case %d: NewForest accepted %+v", i, cfg)
		}
	}
}

func TestForestRejoinAndReconfigure(t *testing.T) {
	root, leaf := twoNodeForest(t)
	leaf.Reset(9, &ConfigUpdate{Version: 3})
	fired := 0
	leaf.SetConfigHandler(func(cu *ConfigUpdate) { fired++ })
	leaf.AnnounceRejoin()
	if e := leaf.Epoch(); e != 9 {
		t.Fatalf("leaf epoch after reset = %d, want 9", e)
	}
	// The restored version must not re-fire when a peer re-broadcasts it.
	root.SetConfig(&ConfigUpdate{Version: 3})
	leaf.Tick()
	root.Tick()
	if fired != 0 {
		t.Fatalf("restored config version re-fired handler %d times", fired)
	}
	leaf.Reconfigure(-1, nil)
	if !leaf.IsRoot() {
		t.Fatal("reconfigure to root failed")
	}
}
