package combining

// Delta compression for upstream queue vectors (the hierarchical plane's
// bandwidth lever): instead of shipping the full per-principal aggregate
// every epoch, a sender transmits only the principals whose statistics
// moved by more than a configurable threshold since their last transmitted
// value. Two rules bound the loss:
//
//   - transitions to exactly zero are always transmitted, so an idle
//     principal is never stuck at a stale nonzero queue estimate, and
//   - every ResyncEvery-th frame is a full-state resync, so suppressed
//     drift (at most the threshold per statistic) is flushed periodically.
//
// Frames are sequence-numbered per sender stream. A receiver that misses a
// frame (the tree transport is best-effort) detects the gap, discards
// deltas, and waits for the next full frame — it never applies a delta to
// a base it does not hold.

// deltaEntryBytes is the bookkeeping estimate of one suppressed entry's
// wire cost (four statistics plus an index in the JSON envelope), used for
// the bytes-saved counter.
const deltaEntryBytes = 52

// DeltaFrame is the wire form of one delta-compressed aggregate. A full
// frame (Full true) carries dense statistic vectors of length N; a delta
// frame carries sparse entries at the positions listed in Idx.
type DeltaFrame struct {
	// Seq numbers frames consecutively per sender stream.
	Seq uint64 `json:"seq"`
	// Full marks a resync frame carrying the complete vector.
	Full bool `json:"full,omitempty"`
	// N is the principal-vector length.
	N int `json:"n"`
	// Count is the aggregate's contributing-node count (always carried;
	// it is one scalar).
	Count int `json:"count"`
	// Idx lists the principal indices of the sparse entries (delta frames
	// only).
	Idx []int `json:"idx,omitempty"`
	// Sum, Max, Min, SumSq are the statistic values: dense when Full,
	// parallel to Idx otherwise.
	Sum   []float64 `json:"sum,omitempty"`
	Max   []float64 `json:"max,omitempty"`
	Min   []float64 `json:"min,omitempty"`
	SumSq []float64 `json:"sumsq,omitempty"`
}

// DeltaStats counts a delta codec's work. Encoder-side counters accumulate
// per stream and are summed by the transport; Desyncs is receiver-side.
type DeltaStats struct {
	// Frames is the number of frames encoded.
	Frames uint64
	// FullFrames is how many of them were full-state resyncs.
	FullFrames uint64
	// EntriesSent counts transmitted per-principal entries.
	EntriesSent uint64
	// EntriesSuppressed counts entries withheld as under-threshold.
	EntriesSuppressed uint64
	// BytesSaved estimates the wire bytes avoided by suppression.
	BytesSaved uint64
	// Desyncs counts receiver-side sequence gaps (frames discarded until
	// the next full frame).
	Desyncs uint64
}

// Add accumulates other into s.
func (s *DeltaStats) Add(other DeltaStats) {
	s.Frames += other.Frames
	s.FullFrames += other.FullFrames
	s.EntriesSent += other.EntriesSent
	s.EntriesSuppressed += other.EntriesSuppressed
	s.BytesSaved += other.BytesSaved
	s.Desyncs += other.Desyncs
}

// DeltaEncoder compresses one sender→receiver aggregate stream. Not
// concurrency-safe; the transport serializes access per peer.
type DeltaEncoder struct {
	n           int
	threshold   float64
	resyncEvery int
	seq         uint64
	sinceFull   int
	primed      bool // the receiver lineage holds a full frame
	last        Aggregate
	stats       DeltaStats
}

// NewDeltaEncoder returns an encoder for n-principal vectors. Entries move
// only when a statistic changed by more than threshold (or went to zero);
// every resyncEvery-th frame is a full resync (values < 1 mean every
// frame, i.e. compression off).
func NewDeltaEncoder(n int, threshold float64, resyncEvery int) *DeltaEncoder {
	if resyncEvery < 1 {
		resyncEvery = 1
	}
	if threshold < 0 {
		threshold = 0
	}
	return &DeltaEncoder{n: n, threshold: threshold, resyncEvery: resyncEvery, last: NewAggregate(n)}
}

// Reset forces the next frame to be a full resync (called after the
// transport reconnects: the receiver may have restarted or missed frames).
func (e *DeltaEncoder) Reset() { e.primed = false }

// N returns the principal-vector length this encoder was built for.
func (e *DeltaEncoder) N() int { return e.n }

// Stats returns the encoder's counters.
func (e *DeltaEncoder) Stats() DeltaStats { return e.stats }

// Encode compresses a into the next frame of the stream.
func (e *DeltaEncoder) Encode(a Aggregate) DeltaFrame {
	e.seq++
	e.stats.Frames++
	full := !e.primed || e.sinceFull >= e.resyncEvery-1
	f := DeltaFrame{Seq: e.seq, N: e.n, Count: a.Count}
	if full {
		f.Full = true
		f.Sum = append([]float64(nil), a.Sum...)
		f.Max = append([]float64(nil), a.Max...)
		f.Min = append([]float64(nil), a.Min...)
		f.SumSq = append([]float64(nil), a.SumSq...)
		e.last = a.clone()
		e.primed = true
		e.sinceFull = 0
		e.stats.FullFrames++
		e.stats.EntriesSent += uint64(e.n)
		return f
	}
	e.sinceFull++
	for i := 0; i < e.n && i < len(a.Sum); i++ {
		if !e.dirty(a, i) {
			e.stats.EntriesSuppressed++
			e.stats.BytesSaved += deltaEntryBytes
			continue
		}
		f.Idx = append(f.Idx, i)
		f.Sum = append(f.Sum, a.Sum[i])
		f.Max = append(f.Max, a.Max[i])
		f.Min = append(f.Min, a.Min[i])
		f.SumSq = append(f.SumSq, a.SumSq[i])
		e.last.Sum[i] = a.Sum[i]
		e.last.Max[i] = a.Max[i]
		e.last.Min[i] = a.Min[i]
		e.last.SumSq[i] = a.SumSq[i]
		e.stats.EntriesSent++
	}
	e.last.Count = a.Count
	return f
}

// dirty reports whether principal i's entry must be transmitted: a
// statistic moved beyond the threshold, or any statistic transitioned to
// exactly zero (zeros are always exact on the wire).
func (e *DeltaEncoder) dirty(a Aggregate, i int) bool {
	pairs := [4][2]float64{
		{a.Sum[i], e.last.Sum[i]},
		{a.Max[i], e.last.Max[i]},
		{a.Min[i], e.last.Min[i]},
		{a.SumSq[i], e.last.SumSq[i]},
	}
	for _, p := range pairs {
		cur, prev := p[0], p[1]
		if cur == 0 && prev != 0 {
			return true
		}
		d := cur - prev
		if d < 0 {
			d = -d
		}
		if d > e.threshold {
			return true
		}
	}
	return false
}

// DeltaDecoder reconstructs a sender's aggregate stream. Not
// concurrency-safe; the transport serializes access per peer.
type DeltaDecoder struct {
	n       int
	agg     Aggregate
	seq     uint64
	synced  bool
	desyncs uint64
}

// NewDeltaDecoder returns a decoder for n-principal vectors.
func NewDeltaDecoder(n int) *DeltaDecoder {
	return &DeltaDecoder{n: n, agg: NewAggregate(n)}
}

// Desyncs returns how many frames the decoder discarded on sequence gaps.
func (d *DeltaDecoder) Desyncs() uint64 { return d.desyncs }

// N returns the principal-vector length this decoder was built for.
func (d *DeltaDecoder) N() int { return d.n }

// Apply folds one frame into the reconstructed state and returns the
// resulting aggregate. It returns ok false — and the caller must drop the
// message — when the frame is a delta that does not extend the decoder's
// sequence (lost frame, sender restart, or length mismatch); the decoder
// then stays desynchronized until the next full frame.
func (d *DeltaDecoder) Apply(f DeltaFrame) (Aggregate, bool) {
	if f.Full {
		if f.N != d.n || len(f.Sum) != d.n {
			d.synced = false
			d.desyncs++
			return Aggregate{}, false
		}
		copy(d.agg.Sum, f.Sum)
		copy(d.agg.Max, f.Max)
		copy(d.agg.Min, f.Min)
		copy(d.agg.SumSq, f.SumSq)
		d.agg.Count = f.Count
		d.seq = f.Seq
		d.synced = true
		return d.agg.clone(), true
	}
	if !d.synced || f.Seq != d.seq+1 || f.N != d.n {
		d.synced = false
		d.desyncs++
		return Aggregate{}, false
	}
	for k, i := range f.Idx {
		if i < 0 || i >= d.n || k >= len(f.Sum) {
			d.synced = false
			d.desyncs++
			return Aggregate{}, false
		}
		d.agg.Sum[i] = f.Sum[k]
		d.agg.Max[i] = f.Max[k]
		d.agg.Min[i] = f.Min[k]
		d.agg.SumSq[i] = f.SumSq[k]
	}
	d.agg.Count = f.Count
	d.seq = f.Seq
	return d.agg.clone(), true
}
