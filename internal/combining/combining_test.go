package combining

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/vclock"
)

// rig wires a set of combining-tree nodes over a simulated network.
type rig struct {
	clock *vclock.Clock
	net   *simnet.Network
	nodes map[NodeID]*Node
	topo  Topology
}

func newRig(t testing.TB, n, numPrin, fanout int, delay time.Duration) *rig {
	t.Helper()
	r := &rig{
		clock: vclock.New(),
		nodes: make(map[NodeID]*Node),
	}
	r.net = simnet.New(r.clock, delay)
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = NodeID(i)
	}
	r.topo = BuildTree(ids, fanout)
	for _, id := range ids {
		id := id
		send := func(to NodeID, msg interface{}) {
			r.net.Send(simnet.NodeID(id), simnet.NodeID(to), msg)
		}
		r.nodes[id] = NewBuilder(id).Place(r.topo).Principals(numPrin).
			Transport(send).Clock(r.clock.Now).Build()
		r.net.Handle(simnet.NodeID(id), func(from simnet.NodeID, msg interface{}) {
			r.nodes[id].OnMessage(NodeID(from), msg)
		})
	}
	return r
}

// tickAll runs one epoch leaves-first so a zero-delay network converges in a
// single sweep, mirroring "an intermediate node waits for information from
// its children".
func (r *rig) tickAll() {
	byDepth := make([][]NodeID, 0)
	depth := func(id NodeID) int {
		d := 0
		for r.topo.Parent[id] >= 0 {
			id = r.topo.Parent[id]
			d++
		}
		return d
	}
	maxD := 0
	for id := range r.nodes {
		if d := depth(id); d > maxD {
			maxD = d
		}
	}
	byDepth = make([][]NodeID, maxD+1)
	for id := range r.nodes {
		byDepth[depth(id)] = append(byDepth[depth(id)], id)
	}
	for d := maxD; d >= 0; d-- {
		for _, id := range byDepth[d] {
			r.nodes[id].Tick()
		}
		r.clock.RunFor(0) // drain same-instant deliveries between levels
	}
}

func TestTreeAggregatesSum(t *testing.T) {
	r := newRig(t, 7, 2, 2, 0)
	for i := 0; i < 7; i++ {
		r.nodes[NodeID(i)].SetLocal([]float64{float64(i + 1), 10 * float64(i+1)})
	}
	r.tickAll()
	r.clock.RunFor(time.Millisecond)
	for id, n := range r.nodes {
		g, _, ok := n.Global()
		if !ok {
			t.Fatalf("node %d has no global aggregate", id)
		}
		if math.Abs(g.Sum[0]-28) > 1e-9 || math.Abs(g.Sum[1]-280) > 1e-9 {
			t.Fatalf("node %d sum = %v, want [28 280]", id, g.Sum)
		}
		if g.Count != 7 {
			t.Fatalf("node %d count = %d", id, g.Count)
		}
		if g.Max[0] != 7 || g.Min[0] != 1 {
			t.Fatalf("node %d max/min = %v/%v", id, g.Max[0], g.Min[0])
		}
		if math.Abs(g.Avg(0)-4) > 1e-9 {
			t.Fatalf("avg = %g, want 4", g.Avg(0))
		}
		if math.Abs(g.Variance(0)-4) > 1e-9 {
			t.Fatalf("variance = %g, want 4", g.Variance(0))
		}
	}
}

func TestMessageCountPerEpoch(t *testing.T) {
	const n = 16
	r := newRig(t, n, 1, 2, 0)
	r.net.ResetCounters()
	r.tickAll()
	r.clock.RunFor(time.Millisecond)
	// The paper's claim: 2(n−1) messages per epoch (n−1 up, n−1 down).
	if r.net.Sent != 2*(n-1) {
		t.Fatalf("tree sent %d messages, want %d", r.net.Sent, 2*(n-1))
	}
}

func TestPairwiseMessageCountAndAgreement(t *testing.T) {
	const n = 8
	clock := vclock.New()
	net := simnet.New(clock, 0)
	peers := make([]NodeID, n)
	for i := range peers {
		peers[i] = NodeID(i)
	}
	nodes := make([]*PairwiseExchanger, n)
	for i := 0; i < n; i++ {
		i := i
		send := func(to NodeID, msg interface{}) {
			net.Send(simnet.NodeID(i), simnet.NodeID(to), msg)
		}
		nodes[i] = NewPairwiseExchanger(NodeID(i), peers, 1, send)
		net.Handle(simnet.NodeID(i), func(from simnet.NodeID, msg interface{}) {
			nodes[i].OnMessage(NodeID(from), msg)
		})
		nodes[i].SetLocal([]float64{float64(i)})
	}
	for _, nd := range nodes {
		nd.Tick()
	}
	clock.RunFor(time.Millisecond)
	if net.Sent != n*(n-1) {
		t.Fatalf("pairwise sent %d, want %d", net.Sent, n*(n-1))
	}
	want := float64(n*(n-1)) / 2
	for i, nd := range nodes {
		if g := nd.Global(); math.Abs(g.Sum[0]-want) > 1e-9 {
			t.Fatalf("node %d global = %v, want %g", i, g.Sum, want)
		}
	}
}

func TestDelayLagsGlobalView(t *testing.T) {
	// Two nodes, 10 s one-way delay on every link (the Figure 8 setup):
	// a change at node 1 is invisible at node 1's own global view until the
	// report has travelled up and the broadcast back down.
	r := newRig(t, 2, 1, 2, 10*time.Second)
	r.nodes[0].SetLocal([]float64{5})
	r.nodes[1].SetLocal([]float64{7})

	epoch := r.clock.ScheduleEvery(100*time.Millisecond, func() {
		r.nodes[1].Tick()
		r.nodes[0].Tick()
	})
	defer epoch.Stop()

	r.clock.RunUntil(5 * time.Second)
	if _, _, ok := r.nodes[1].Global(); ok {
		t.Fatal("leaf saw a global aggregate before the round trip completed")
	}
	// Root (node 0) sees its own broadcast immediately but without node 1's
	// report for the first 10 s.
	g, _, ok := r.nodes[0].Global()
	if !ok || g.Sum[0] != 5 {
		t.Fatalf("root early view = %v ok=%v, want only local 5", g.Sum, ok)
	}
	r.clock.RunUntil(25 * time.Second)
	g, _, ok = r.nodes[0].Global()
	if !ok || g.Sum[0] != 12 {
		t.Fatalf("root late view = %v, want 12", g.Sum)
	}
	g1, at, ok := r.nodes[1].Global()
	if !ok || g1.Sum[0] != 12 {
		t.Fatalf("leaf late view = %v, want 12", g1.Sum)
	}
	if at < 10*time.Second {
		t.Fatalf("leaf global timestamp %v implausibly early", at)
	}
}

func TestStaleChildDataPersistsUntilNextReport(t *testing.T) {
	r := newRig(t, 3, 1, 2, 0)
	r.nodes[1].SetLocal([]float64{100})
	r.nodes[2].SetLocal([]float64{50})
	r.tickAll()
	r.clock.RunFor(time.Millisecond)
	g, _, _ := r.nodes[0].Global()
	if g.Sum[0] != 150 {
		t.Fatalf("sum = %v", g.Sum)
	}
	// Node 1's queue drains but only node 2 reports this epoch: the root
	// still uses node 1's stale 100 — the lag the paper accepts.
	r.nodes[1].SetLocal([]float64{0})
	r.nodes[2].Tick()
	r.clock.RunFor(0)
	r.nodes[0].Tick()
	r.clock.RunFor(time.Millisecond)
	g, _, _ = r.nodes[0].Global()
	if g.Sum[0] != 150 {
		t.Fatalf("stale view should remain 150, got %v", g.Sum)
	}
	r.tickAll()
	r.clock.RunFor(time.Millisecond)
	g, _, _ = r.nodes[0].Global()
	if g.Sum[0] != 50 {
		t.Fatalf("fresh view = %v, want 50", g.Sum)
	}
}

func TestBuildTreeShape(t *testing.T) {
	ids := []NodeID{4, 2, 0, 1, 3}
	topo := BuildTree(ids, 2)
	if topo.Root != 0 {
		t.Fatalf("root = %d", topo.Root)
	}
	if topo.Parent[1] != 0 || topo.Parent[2] != 0 || topo.Parent[3] != 1 || topo.Parent[4] != 1 {
		t.Fatalf("parents = %v", topo.Parent)
	}
	if topo.Depth() != 2 {
		t.Fatalf("depth = %d", topo.Depth())
	}
	if got := BuildTree(nil, 2); got.Root != -1 {
		t.Fatalf("empty tree root = %d", got.Root)
	}
	// Fan-out below 2 is clamped.
	if topo2 := BuildTree(ids, 0); topo2.Parent[2] != 0 {
		t.Fatalf("clamped fanout parents = %v", topo2.Parent)
	}
}

func TestRemoveNodeReparenting(t *testing.T) {
	ids := []NodeID{0, 1, 2, 3, 4, 5, 6}
	topo := BuildTree(ids, 2)
	// Node 1 (children 3,4) fails: 3 and 4 re-parent to 0.
	topo2 := topo.RemoveNode(1)
	if topo2.Parent[3] != 0 || topo2.Parent[4] != 0 {
		t.Fatalf("orphans not re-parented: %v", topo2.Parent)
	}
	if _, ok := topo2.Parent[1]; ok {
		t.Fatal("failed node still present")
	}
	// Root fails: smallest orphan becomes root.
	topo3 := topo.RemoveNode(0)
	if topo3.Root != 1 || topo3.Parent[1] != -1 || topo3.Parent[2] != 1 {
		t.Fatalf("root replacement wrong: root=%d parents=%v", topo3.Root, topo3.Parent)
	}
}

func TestReconfigureDropsStaleChildren(t *testing.T) {
	r := newRig(t, 3, 1, 2, 0)
	r.nodes[1].SetLocal([]float64{100})
	r.nodes[2].SetLocal([]float64{50})
	r.tickAll()
	r.clock.RunFor(time.Millisecond)
	// Node 2 fails; rebuild and re-apply the topology.
	topo2 := r.topo.RemoveNode(2)
	live := map[NodeID]*Node{0: r.nodes[0], 1: r.nodes[1]}
	topo2.Apply(live)
	r.topo = topo2
	delete(r.nodes, 2)
	r.tickAll()
	r.clock.RunFor(time.Millisecond)
	g, _, _ := r.nodes[0].Global()
	if g.Sum[0] != 100 || g.Count != 2 {
		t.Fatalf("after failure sum=%v count=%d, want 100/2", g.Sum, g.Count)
	}
}

func TestSingleNodeTree(t *testing.T) {
	r := newRig(t, 1, 1, 2, 0)
	r.nodes[0].SetLocal([]float64{42})
	r.nodes[0].Tick()
	g, _, ok := r.nodes[0].Global()
	if !ok || g.Sum[0] != 42 {
		t.Fatalf("single-node global = %v ok=%v", g.Sum, ok)
	}
	if !r.nodes[0].IsRoot() {
		t.Fatal("single node must be root")
	}
	if !strings.Contains(r.nodes[0].String(), "id=0") {
		t.Fatalf("String() = %q", r.nodes[0].String())
	}
}

func TestSetLocalShorterVectorZeroFills(t *testing.T) {
	n := NewBuilder(0).Principals(3).Transport(func(NodeID, interface{}) {}).
		Clock(func() time.Duration { return 0 }).Build()
	n.SetLocal([]float64{1, 2, 3})
	n.SetLocal([]float64{9})
	n.Tick()
	g, _, _ := n.Global()
	if g.Sum[0] != 9 || g.Sum[1] != 0 || g.Sum[2] != 0 {
		t.Fatalf("sum = %v", g.Sum)
	}
}

func TestAggregateCombineMismatchedLengths(t *testing.T) {
	a := FromLocal([]float64{1, 2})
	b := FromLocal([]float64{10})
	a.Combine(b)
	if a.Sum[0] != 11 || a.Sum[1] != 2 {
		t.Fatalf("sum = %v", a.Sum)
	}
}

func TestUnknownMessageIgnored(t *testing.T) {
	n := NewBuilder(0).Transport(func(NodeID, interface{}) {}).
		Clock(func() time.Duration { return 0 }).Build()
	n.OnMessage(5, "garbage")
	if _, _, ok := n.Global(); ok {
		t.Fatal("garbage message produced a global view")
	}
	if _, heard := n.LastHeard(5); heard {
		t.Fatal("garbage message counted as heard")
	}
}

func TestOutOfOrderMessagesIgnored(t *testing.T) {
	n := NewBuilder(0).Children(1).Transport(func(NodeID, interface{}) {}).
		Clock(func() time.Duration { return 0 }).Build()
	n.OnMessage(1, Report{Epoch: 5, Agg: FromLocal([]float64{50})})
	n.OnMessage(1, Report{Epoch: 3, Agg: FromLocal([]float64{999})}) // reordered
	n.Tick()
	g, _, _ := n.Global()
	if g.Sum[0] != 50 {
		t.Fatalf("stale report overwrote fresher data: %v", g.Sum)
	}

	leaf := NewBuilder(1).Parent(0).Transport(func(NodeID, interface{}) {}).
		Clock(func() time.Duration { return 0 }).Build()
	leaf.OnMessage(0, Broadcast{Epoch: 9, Agg: FromLocal([]float64{9})})
	leaf.OnMessage(0, Broadcast{Epoch: 2, Agg: FromLocal([]float64{2})})
	g, _, _ = leaf.Global()
	if g.Sum[0] != 9 {
		t.Fatalf("stale broadcast accepted: %v", g.Sum)
	}
}

func TestLastHeardTracksNeighbors(t *testing.T) {
	at := 7 * time.Second
	n := NewBuilder(0).Children(1).Transport(func(NodeID, interface{}) {}).
		Clock(func() time.Duration { return at }).Build()
	if _, heard := n.LastHeard(1); heard {
		t.Fatal("unheard neighbor reported heard")
	}
	n.OnMessage(1, Report{Agg: FromLocal([]float64{1})})
	if lh, heard := n.LastHeard(1); !heard || lh != 7*time.Second {
		t.Fatalf("LastHeard = %v,%v", lh, heard)
	}
	if n.ID() != 0 {
		t.Fatal("ID wrong")
	}
}

func BenchmarkTreeEpoch(b *testing.B) {
	r := newRig(b, 31, 4, 2, 0)
	for i := 0; i < 31; i++ {
		r.nodes[NodeID(i)].SetLocal([]float64{1, 2, 3, 4})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.tickAll()
		r.clock.RunFor(time.Millisecond)
	}
}

func TestNodeMessageCountersAndEpochs(t *testing.T) {
	const n = 7
	r := newRig(t, n, 2, 2, 0)
	r.tickAll()
	r.clock.RunFor(time.Millisecond)

	var reports, broadcasts, sent uint64
	for _, nd := range r.nodes {
		ri, bi, so := nd.MessageCounts()
		reports += ri
		broadcasts += bi
		sent += so
		if nd.Epoch() != 1 {
			t.Fatalf("node %d epoch = %d, want 1", nd.ID(), nd.Epoch())
		}
		if nd.GlobalEpoch() != 1 {
			t.Fatalf("node %d global epoch = %d, want 1", nd.ID(), nd.GlobalEpoch())
		}
	}
	// The paper's 2(n−1) bound, now visible per node: n−1 reports up and
	// n−1 broadcasts down, every message counted exactly once on each side.
	if reports != n-1 {
		t.Fatalf("reports in = %d, want %d", reports, n-1)
	}
	if broadcasts != n-1 {
		t.Fatalf("broadcasts in = %d, want %d", broadcasts, n-1)
	}
	if sent != 2*(n-1) {
		t.Fatalf("messages sent = %d, want %d", sent, 2*(n-1))
	}
}
