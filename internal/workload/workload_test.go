package workload

import (
	"math"
	"testing"
	"time"

	"repro/internal/vclock"
)

// sinkFunc adapts a function to the Sink interface.
type sinkFunc func(Request) bool

func (f sinkFunc) Submit(r Request) bool { return f(r) }

func TestClientRate(t *testing.T) {
	clock := vclock.New()
	var got []Request
	sink := sinkFunc(func(r Request) bool { got = append(got, r); return true })
	c := NewClient(clock, sink, Config{Principal: 3, Rate: 100})
	c.SetActive(true)
	clock.RunUntil(time.Second)
	if len(got) != 100 {
		t.Fatalf("issued %d requests in 1s at rate 100", len(got))
	}
	for _, r := range got {
		if r.Principal != 3 || r.Attempts != 1 || r.Size <= 0 {
			t.Fatalf("bad request %+v", r)
		}
	}
	if c.Issued != 100 || c.Retried != 0 {
		t.Fatalf("counters: issued=%d retried=%d", c.Issued, c.Retried)
	}
}

func TestSetActiveIdempotentAndStop(t *testing.T) {
	clock := vclock.New()
	n := 0
	sink := sinkFunc(func(Request) bool { n++; return true })
	c := NewClient(clock, sink, Config{Rate: 10})
	c.SetActive(true)
	c.SetActive(true) // no double ticker
	clock.RunUntil(time.Second)
	if n != 10 {
		t.Fatalf("n = %d, want 10", n)
	}
	c.SetActive(false)
	c.SetActive(false)
	clock.RunUntil(2 * time.Second)
	if n != 10 {
		t.Fatalf("client kept emitting after stop: %d", n)
	}
	if c.Active() {
		t.Fatal("Active() after stop")
	}
}

func TestRetryOnDenial(t *testing.T) {
	clock := vclock.New()
	denies := 3
	var attempts []int
	sink := sinkFunc(func(r Request) bool {
		attempts = append(attempts, r.Attempts)
		if denies > 0 {
			denies--
			return false
		}
		return true
	})
	c := NewClient(clock, sink, Config{Rate: 1, RetryDelay: 50 * time.Millisecond})
	c.SetActive(true)
	clock.RunUntil(4500 * time.Millisecond)
	c.SetActive(false)
	// The denied request is retried on subsequent ticks instead of new work:
	// attempts 1,2,3 denied, attempt 4 admitted.
	if len(attempts) != 4 {
		t.Fatalf("attempts = %v", attempts)
	}
	for i := 0; i < 4; i++ {
		if attempts[i] != i+1 {
			t.Fatalf("attempts = %v", attempts)
		}
	}
	if c.Retried != 3 {
		t.Fatalf("Retried = %d", c.Retried)
	}
	// Closed-loop property: only one fresh request was generated while the
	// retry was outstanding.
	if c.Issued != 1 {
		t.Fatalf("Issued = %d, want 1", c.Issued)
	}
}

func TestOfferedLoadBoundedUnderDenial(t *testing.T) {
	clock := vclock.New()
	submits := 0
	sink := sinkFunc(func(Request) bool { submits++; return false })
	c := NewClient(clock, sink, Config{Rate: 100})
	c.SetActive(true)
	clock.RunUntil(10 * time.Second)
	// Every submission is denied, yet the machine never exceeds its rate.
	if submits > 1000 {
		t.Fatalf("offered %d submissions in 10 s at rate 100", submits)
	}
	// The pool stabilizes near rate×retryDelay (10 here): once a denied
	// request ripens it is retried in place of fresh work.
	if c.PendingRetries() > 64 {
		t.Fatalf("pending pool unbounded: %d", c.PendingRetries())
	}
}

func TestPendingPoolOverflowAbandonsOldest(t *testing.T) {
	clock := vclock.New()
	sink := sinkFunc(func(Request) bool { return false })
	// A long retry delay keeps denied requests unripe, so the pool fills to
	// its cap and overflows.
	c := NewClient(clock, sink, Config{Rate: 100, RetryDelay: time.Hour, MaxPending: 8})
	c.SetActive(true)
	clock.RunUntil(time.Second)
	if c.PendingRetries() != 8 {
		t.Fatalf("pool = %d, want cap 8", c.PendingRetries())
	}
	if c.Abandoned == 0 {
		t.Fatal("overflow should abandon oldest requests")
	}
}

func TestMaxRetriesAbandons(t *testing.T) {
	clock := vclock.New()
	sink := sinkFunc(func(Request) bool { return false })
	c := NewClient(clock, sink, Config{Rate: 1, RetryDelay: 10 * time.Millisecond, MaxRetries: 2})
	c.SetActive(true)
	clock.RunUntil(2500 * time.Millisecond) // tick 1: deny; tick 2: retry hits cap
	c.SetActive(false)
	if c.Abandoned == 0 {
		t.Fatal("no abandonment despite permanent denial")
	}
}

func TestRetryStopsWhenClientDeactivates(t *testing.T) {
	clock := vclock.New()
	submits := 0
	sink := sinkFunc(func(Request) bool { submits++; return false })
	c := NewClient(clock, sink, Config{Rate: 1, RetryDelay: time.Second})
	c.SetActive(true)
	clock.RunUntil(1100 * time.Millisecond) // one emission, denied
	c.SetActive(false)
	clock.RunUntil(10 * time.Second)
	if submits != 1 {
		t.Fatalf("retries continued after deactivation: %d submits", submits)
	}
}

func TestSetRateReArmsLiveClient(t *testing.T) {
	clock := vclock.New()
	n := 0
	sink := sinkFunc(func(Request) bool { n++; return true })
	c := NewClient(clock, sink, Config{Rate: 10})
	c.SetActive(true)
	clock.RunUntil(time.Second) // 10 requests
	c.SetRate(100)
	if c.Rate() != 100 {
		t.Fatalf("Rate = %v", c.Rate())
	}
	clock.RunUntil(2 * time.Second) // +100 requests
	if n < 105 || n > 115 {
		t.Fatalf("requests after rate change = %d, want ≈110", n)
	}
	c.SetRate(0) // ignored
	if c.Rate() != 100 {
		t.Fatal("non-positive rate accepted")
	}
	// Rate change on an inactive client only takes effect on activation.
	c.SetActive(false)
	c.SetRate(1)
	clock.RunUntil(3 * time.Second)
	if c.Active() {
		t.Fatal("SetRate activated a stopped client")
	}
}

func TestSetRateKeepsPendingRetries(t *testing.T) {
	clock := vclock.New()
	deny := true
	sink := sinkFunc(func(Request) bool { return !deny })
	c := NewClient(clock, sink, Config{Rate: 10, RetryDelay: 10 * time.Millisecond})
	c.SetActive(true)
	clock.RunUntil(500 * time.Millisecond)
	if c.PendingRetries() == 0 {
		t.Fatal("no pending retries accumulated")
	}
	pending := c.PendingRetries()
	c.SetRate(20)
	if c.PendingRetries() != pending {
		t.Fatal("SetRate dropped pending retries")
	}
	deny = false
	clock.RunUntil(2 * time.Second)
	if c.PendingRetries() != 0 {
		t.Fatal("retries never drained after rate change")
	}
}

func TestSizeMixMeanNearSixKB(t *testing.T) {
	m := DefaultSizes()
	mean := m.Mean()
	if mean < 4_000 || mean > 10_000 {
		t.Fatalf("default size mix mean = %.0f, want ≈6KB", mean)
	}
	// Bounds match the paper's 200 B – 500 KB.
	lo, hi := 1<<30, 0
	for i := 0; i < 200; i++ {
		s := m.Next()
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	if lo < 200 || hi > 500_000 {
		t.Fatalf("sizes out of range: [%d, %d]", lo, hi)
	}
}

func TestFixedSize(t *testing.T) {
	m := FixedSize(6000)
	for i := 0; i < 3; i++ {
		if m.Next() != 6000 {
			t.Fatal("FixedSize not fixed")
		}
	}
	if m.Mean() != 6000 {
		t.Fatal("FixedSize mean wrong")
	}
}

func TestPaperRates(t *testing.T) {
	if math.Abs(RateL4-400) > 0 || math.Abs(RateL7-135) > 0 {
		t.Fatal("paper rates changed")
	}
}

func TestBadRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewClient(vclock.New(), sinkFunc(func(Request) bool { return true }), Config{Rate: 0})
}
