// Package workload models the paper's synthetic load generator (WebBench):
// client machines that issue requests for one organization at a bounded
// rate, follow redirections, and retry requests the redirector turned away
// with a self-redirect. The paper's two client configurations are the
// defaults: 400 req/s per machine raw (Layer-4 experiments) and 135 req/s
// behind the modified Apache proxy (Layer-7 experiments).
package workload

import (
	"time"

	"repro/internal/vclock"
)

// Paper client rates (requests/second per client machine).
const (
	// RateL4 is a raw WebBench client machine.
	RateL4 = 400.0
	// RateL7 is a WebBench client behind the redirect-handling proxy the
	// paper added, which drops per-machine load to 135 req/s.
	RateL7 = 135.0
)

// Request is one client request traversing the system.
type Request struct {
	Principal int
	ID        uint64
	Attempts  int
	// Size is the reply size in bytes, drawn from the paper's WebBench mix
	// (200 B – 500 KB, ≈ 6 KB average). Informational for the simulator.
	Size int
	// IssuedAt is the virtual time of the first attempt; response-time
	// accounting measures completion against it, so self-redirect retries
	// count toward latency.
	IssuedAt time.Duration
}

// Sink receives client requests; the redirector front-end in the harness.
type Sink interface {
	// Submit delivers a request. It returns true if the request was
	// admitted toward a server, false if it was turned away (self-redirect)
	// and should be retried by the client.
	Submit(req Request) bool
}

// Client is one client machine generating requests for a single principal
// at a fixed *attempt* rate over virtual time. Like the WebBench threads it
// models, the machine is closed-loop with respect to denials: a request the
// redirector turned away is retried on a later tick instead of additional
// fresh requests being generated, so the machine's offered load never
// exceeds its configured rate.
type Client struct {
	clock      *vclock.Clock
	sink       Sink
	principal  int
	rate       float64
	retryDelay time.Duration
	maxRetries int
	maxPending int
	active     bool
	ticker     *vclock.Ticker
	nextID     uint64
	sizes      *SizeMix
	pending    []pendingReq

	// Issued counts first-attempt requests; Retried counts re-submissions;
	// Abandoned counts requests dropped after exhausting retries.
	Issued    int
	Retried   int
	Abandoned int
}

type pendingReq struct {
	req     Request
	readyAt time.Duration
}

// Config parameterizes a client machine.
type Config struct {
	Principal int
	// Rate is the request generation rate in requests/second.
	Rate float64
	// RetryDelay is how long the client waits before re-sending a request
	// the redirector self-redirected. The default is 100 ms.
	RetryDelay time.Duration
	// MaxRetries bounds re-submissions per request; ≤ 0 means retry forever
	// (WebBench keeps hammering).
	MaxRetries int
	// MaxPending bounds how many denied requests the machine holds for
	// retry (its "thread pool"); the default is 64. The oldest pending
	// request is abandoned when the pool overflows.
	MaxPending int
	// Sizes draws reply sizes; nil uses the paper's WebBench mix.
	Sizes *SizeMix
}

// NewClient creates an inactive client machine; call SetActive(true) to
// start it.
func NewClient(clock *vclock.Clock, sink Sink, cfg Config) *Client {
	if cfg.Rate <= 0 {
		panic("workload: client rate must be positive")
	}
	if cfg.RetryDelay <= 0 {
		cfg.RetryDelay = 100 * time.Millisecond
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 1 << 30
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = 64
	}
	if cfg.Sizes == nil {
		cfg.Sizes = DefaultSizes()
	}
	return &Client{
		clock:      clock,
		sink:       sink,
		principal:  cfg.Principal,
		rate:       cfg.Rate,
		retryDelay: cfg.RetryDelay,
		maxRetries: cfg.MaxRetries,
		maxPending: cfg.MaxPending,
		sizes:      cfg.Sizes,
	}
}

// Active reports whether the client is generating load.
func (c *Client) Active() bool { return c.active }

// Rate reports the configured attempt rate in requests/second.
func (c *Client) Rate() float64 { return c.rate }

// SetRate changes the attempt rate at runtime (the paper's "dynamically
// changing request loads"). An active client is re-armed at the new pace
// immediately, keeping its pending retries; non-positive rates are ignored.
func (c *Client) SetRate(rate float64) {
	if rate <= 0 {
		return
	}
	c.rate = rate
	if c.active && c.ticker != nil {
		c.ticker.Stop()
		c.arm()
	}
}

func (c *Client) arm() {
	interval := time.Duration(float64(time.Second) / c.rate)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	c.ticker = c.clock.ScheduleEvery(interval, c.emit)
}

// SetActive starts or stops request generation (the phase switches of the
// paper's experiments).
func (c *Client) SetActive(on bool) {
	if on == c.active {
		return
	}
	c.active = on
	if on {
		c.arm()
	} else if c.ticker != nil {
		c.ticker.Stop()
		c.ticker = nil
		c.Abandoned += len(c.pending)
		c.pending = c.pending[:0]
	}
}

// emit fires once per tick. A ripe denied request is retried in preference
// to fresh work — the closed-loop property that keeps offered load at the
// configured rate.
func (c *Client) emit() {
	if len(c.pending) > 0 && c.pending[0].readyAt <= c.clock.Now() {
		p := c.pending[0]
		c.pending = c.pending[1:]
		c.Retried++
		c.deliver(p.req)
		return
	}
	c.nextID++
	req := Request{
		Principal: c.principal,
		ID:        c.nextID,
		Attempts:  1,
		Size:      c.sizes.Next(),
		IssuedAt:  c.clock.Now(),
	}
	c.Issued++
	c.deliver(req)
}

func (c *Client) deliver(req Request) {
	if c.sink.Submit(req) {
		return
	}
	if req.Attempts >= c.maxRetries {
		c.Abandoned++
		return
	}
	req.Attempts++
	if len(c.pending) >= c.maxPending {
		c.pending = c.pending[1:]
		c.Abandoned++
	}
	c.pending = append(c.pending, pendingReq{req: req, readyAt: c.clock.Now() + c.retryDelay})
}

// PendingRetries reports how many denied requests await retry.
func (c *Client) PendingRetries() int { return len(c.pending) }

// SizeMix is a deterministic reply-size generator approximating the paper's
// WebBench configuration: sizes from 200 B to 500 KB with a ≈ 6 KB mean.
// A small weighted table cycled deterministically keeps runs reproducible.
type SizeMix struct {
	table []int
	idx   int
}

// DefaultSizes returns the WebBench-like mix. The table mixes many small
// pages with occasional large transfers; its mean is ≈ 6 KB.
func DefaultSizes() *SizeMix {
	table := make([]int, 0, 176)
	for i := 0; i < 150; i++ { // many small static pages, ≈2.4 KB average
		table = append(table, 200+i*30)
	}
	for i := 0; i < 24; i++ { // mid-size dynamic replies
		table = append(table, 4_000+i*250)
	}
	table = append(table, 500_000) // the rare large transfer
	return &SizeMix{table: table}
}

// FixedSize returns a mix that always yields n bytes.
func FixedSize(n int) *SizeMix { return &SizeMix{table: []int{n}} }

// Next returns the next reply size.
func (m *SizeMix) Next() int {
	v := m.table[m.idx%len(m.table)]
	m.idx++
	return v
}

// Mean returns the average size of the mix.
func (m *SizeMix) Mean() float64 {
	total := 0
	for _, v := range m.table {
		total += v
	}
	return float64(total) / float64(len(m.table))
}
