// Package cluster models capacity-limited backend servers for the
// experiment harness: the "Apache on a 1 GHz PC saturating at 320 req/s" of
// the paper's testbed becomes a deterministic fixed-rate queueing server
// over virtual time.
//
// The package also implements local (end-point) SLA enforcement — the
// strawman of the paper's Figure 1 — so the coordinated scheme can be
// compared against servers that enforce shares independently.
package cluster

import (
	"fmt"
	"time"

	"repro/internal/vclock"
)

// Request is one unit of work arriving at a server.
type Request struct {
	// Principal is the organization the request belongs to (an
	// agreement.Principal, kept as int to avoid the dependency).
	Principal int
	// ID is a caller-chosen identifier for tracing.
	ID uint64
	// Cost is the request's service demand in units of the average request
	// (the paper: "large requests are treated as multiple small ones").
	// Zero means 1.
	Cost float64
	// IssuedAt is when the client first issued the request (for response
	// time accounting); the server passes it through untouched.
	IssuedAt time.Duration
}

func (r Request) cost() float64 {
	if r.Cost <= 0 {
		return 1
	}
	return r.Cost
}

// DoneFunc is invoked at a request's completion time.
type DoneFunc func(req Request, completedAt time.Duration)

// Server is a single FIFO server draining at a fixed capacity (requests per
// second) over virtual time: a G/D/1 queue with a bounded backlog.
type Server struct {
	name     string
	clock    *vclock.Clock
	capacity float64 // req/s
	maxQueue int     // pending completions beyond which offers are refused

	pending  int
	lastDone time.Duration
	onDone   DoneFunc

	// Accepted and Dropped count Offer outcomes; Completed counts
	// completions fired so far.
	Accepted  int
	Dropped   int
	Completed int
}

// NewServer creates a server with the given capacity in requests/second.
// maxQueue bounds the backlog; a request offered beyond it is refused
// (≤ 0 means an effectively unbounded queue).
func NewServer(name string, clock *vclock.Clock, capacity float64, maxQueue int, onDone DoneFunc) *Server {
	if capacity <= 0 {
		panic(fmt.Sprintf("cluster: server %q needs positive capacity", name))
	}
	if maxQueue <= 0 {
		maxQueue = 1 << 30
	}
	return &Server{name: name, clock: clock, capacity: capacity, maxQueue: maxQueue, onDone: onDone}
}

// Name returns the server's display name.
func (s *Server) Name() string { return s.name }

// Capacity returns the server's service rate in requests/second.
func (s *Server) Capacity() float64 { return s.capacity }

// SetCapacity changes the service rate applied to subsequently accepted
// requests (hardware degradation or upgrade mid-run; the agreement layer
// re-interprets entitlements against the new level via
// core.Engine.UpdateCapacities). Non-positive values are ignored.
func (s *Server) SetCapacity(c float64) {
	if c > 0 {
		s.capacity = c
	}
}

// QueueLen reports the number of requests accepted but not yet completed.
func (s *Server) QueueLen() int { return s.pending }

// Offer submits a request. It returns false if the backlog is full; the
// request is then dropped (counted in Dropped). On acceptance the request
// completes after all earlier work, at the server's fixed service rate.
func (s *Server) Offer(req Request) bool {
	if s.pending >= s.maxQueue {
		s.Dropped++
		return false
	}
	s.Accepted++
	s.pending++
	service := time.Duration(req.cost() / s.capacity * float64(time.Second))
	start := s.clock.Now()
	if s.lastDone > start {
		start = s.lastDone
	}
	done := start + service
	s.lastDone = done
	s.clock.Schedule(done-s.clock.Now(), func() {
		s.pending--
		s.Completed++
		if s.onDone != nil {
			s.onDone(req, s.clock.Now())
		}
	})
	return true
}

// Utilization reports the fraction of time the server has been busy up to
// the current instant, measured as completed work over elapsed time.
func (s *Server) Utilization() float64 {
	now := s.clock.Now().Seconds()
	if now <= 0 {
		return 0
	}
	return float64(s.Completed) / s.capacity / now
}

// EnforceShares is end-point (per-server, uncoordinated) SLA enforcement:
// given per-principal demand and guaranteed shares of capacity V, each
// principal receives at least min(demand, share·V); unused reservations are
// redistributed to still-hungry principals in proportion to their remaining
// demand (work-conserving). This is exactly the behaviour that produces the
// Figure 1 violation when applied independently at each server.
func EnforceShares(demand, shares []float64, v float64) []float64 {
	n := len(demand)
	alloc := make([]float64, n)
	remaining := v
	// First pass: guaranteed shares, clipped to demand.
	for i := 0; i < n; i++ {
		g := shares[i] * v
		if g > demand[i] {
			g = demand[i]
		}
		if g < 0 {
			g = 0
		}
		alloc[i] = g
		remaining -= g
	}
	// Redistribute slack to unmet demand, proportionally, iterating because
	// a principal may saturate its demand mid-redistribution.
	for iter := 0; iter < n+1 && remaining > 1e-9; iter++ {
		totalUnmet := 0.0
		for i := 0; i < n; i++ {
			if d := demand[i] - alloc[i]; d > 0 {
				totalUnmet += d
			}
		}
		if totalUnmet <= 1e-12 {
			break
		}
		grant := remaining
		if totalUnmet < grant {
			grant = totalUnmet
		}
		for i := 0; i < n; i++ {
			if d := demand[i] - alloc[i]; d > 0 {
				alloc[i] += grant * d / totalUnmet
			}
		}
		remaining -= grant
	}
	return alloc
}
