package cluster

import (
	"math"
	"testing"
	"time"

	"repro/internal/vclock"
)

func TestServerDrainsAtCapacity(t *testing.T) {
	clock := vclock.New()
	var completions []time.Duration
	s := NewServer("s1", clock, 10, 0, func(req Request, at time.Duration) {
		completions = append(completions, at)
	})
	if s.Name() != "s1" || s.Capacity() != 10 {
		t.Fatal("metadata wrong")
	}
	for i := 0; i < 5; i++ {
		if !s.Offer(Request{Principal: 0, ID: uint64(i)}) {
			t.Fatal("offer refused under empty queue")
		}
	}
	if s.QueueLen() != 5 {
		t.Fatalf("QueueLen = %d", s.QueueLen())
	}
	clock.RunUntil(time.Second)
	if len(completions) != 5 {
		t.Fatalf("completed %d", len(completions))
	}
	// Service rate 10/s ⇒ completions at 100 ms, 200 ms, ...
	for i, at := range completions {
		want := time.Duration(i+1) * 100 * time.Millisecond
		if at != want {
			t.Fatalf("completion %d at %v, want %v", i, at, want)
		}
	}
	if s.QueueLen() != 0 || s.Completed != 5 || s.Accepted != 5 {
		t.Fatal("counters wrong after drain")
	}
}

func TestServerBacklogBound(t *testing.T) {
	clock := vclock.New()
	s := NewServer("s", clock, 1, 2, nil)
	if !s.Offer(Request{}) || !s.Offer(Request{}) {
		t.Fatal("first two offers should fit")
	}
	if s.Offer(Request{}) {
		t.Fatal("third offer should exceed maxQueue=2")
	}
	if s.Dropped != 1 {
		t.Fatalf("Dropped = %d", s.Dropped)
	}
	clock.RunUntil(3 * time.Second)
	if !s.Offer(Request{}) {
		t.Fatal("offer after drain refused")
	}
}

func TestRequestCostScalesService(t *testing.T) {
	clock := vclock.New()
	var last time.Duration
	s := NewServer("s", clock, 10, 0, func(_ Request, at time.Duration) { last = at })
	s.Offer(Request{Cost: 5}) // 5 average requests worth of work
	clock.RunUntil(time.Second)
	if last != 500*time.Millisecond {
		t.Fatalf("large request completed at %v, want 500ms", last)
	}
}

func TestIdleServerRestartsFromNow(t *testing.T) {
	clock := vclock.New()
	var times []time.Duration
	s := NewServer("s", clock, 10, 0, func(_ Request, at time.Duration) { times = append(times, at) })
	s.Offer(Request{})
	clock.RunUntil(5 * time.Second) // long idle gap
	s.Offer(Request{})
	clock.RunUntil(10 * time.Second)
	if times[1] != 5*time.Second+100*time.Millisecond {
		t.Fatalf("second completion at %v", times[1])
	}
}

func TestUtilization(t *testing.T) {
	clock := vclock.New()
	s := NewServer("s", clock, 10, 0, nil)
	if s.Utilization() != 0 {
		t.Fatal("utilization before time advances should be 0")
	}
	for i := 0; i < 10; i++ {
		s.Offer(Request{})
	}
	clock.RunUntil(2 * time.Second) // 10 completions over 2 s at cap 10/s
	if u := s.Utilization(); math.Abs(u-0.5) > 1e-9 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
}

func TestSetCapacityAffectsNewWork(t *testing.T) {
	clock := vclock.New()
	var times []time.Duration
	s := NewServer("s", clock, 10, 0, func(_ Request, at time.Duration) { times = append(times, at) })
	s.Offer(Request{})
	clock.RunUntil(time.Second)
	s.SetCapacity(100)
	s.SetCapacity(0) // ignored
	if s.Capacity() != 100 {
		t.Fatalf("capacity = %v", s.Capacity())
	}
	s.Offer(Request{})
	clock.RunUntil(2 * time.Second)
	if got := times[1] - time.Second; got != 10*time.Millisecond {
		t.Fatalf("post-upgrade service time = %v, want 10ms", got)
	}
}

func TestBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewServer("s", vclock.New(), 0, 0, nil)
}

func TestEnforceSharesUnderload(t *testing.T) {
	// Figure 1, server S1: demand (A:20, B:30) against V=50 with shares
	// (0.2, 0.8) — everything fits, everything is served.
	got := EnforceShares([]float64{20, 30}, []float64{0.2, 0.8}, 50)
	if math.Abs(got[0]-20) > 1e-9 || math.Abs(got[1]-30) > 1e-9 {
		t.Fatalf("alloc = %v, want [20 30]", got)
	}
}

func TestEnforceSharesOverload(t *testing.T) {
	// Figure 1, server S2: demand (A:20, B:50) against V=50 ⇒ (A:10, B:40).
	got := EnforceShares([]float64{20, 50}, []float64{0.2, 0.8}, 50)
	if math.Abs(got[0]-10) > 1e-9 || math.Abs(got[1]-40) > 1e-9 {
		t.Fatalf("alloc = %v, want [10 40]", got)
	}
}

func TestEnforceSharesRedistribution(t *testing.T) {
	// A uses only 5 of its 10 guaranteed; slack flows to B.
	got := EnforceShares([]float64{5, 100}, []float64{0.2, 0.8}, 50)
	if math.Abs(got[0]-5) > 1e-9 || math.Abs(got[1]-45) > 1e-9 {
		t.Fatalf("alloc = %v, want [5 45]", got)
	}
}

func TestEnforceSharesCascadingSaturation(t *testing.T) {
	// Three principals; redistribution must iterate as mid-demand
	// principals saturate.
	got := EnforceShares([]float64{5, 12, 100}, []float64{0.4, 0.3, 0.3}, 100)
	if math.Abs(got[0]-5) > 1e-6 || math.Abs(got[1]-12) > 1e-6 || math.Abs(got[2]-83) > 1e-6 {
		t.Fatalf("alloc = %v, want [5 12 83]", got)
	}
	total := got[0] + got[1] + got[2]
	if total > 100+1e-9 {
		t.Fatalf("over-allocated: %v", total)
	}
}

func TestEnforceSharesZeroDemand(t *testing.T) {
	got := EnforceShares([]float64{0, 0}, []float64{0.5, 0.5}, 50)
	if got[0] != 0 || got[1] != 0 {
		t.Fatalf("alloc = %v", got)
	}
}
