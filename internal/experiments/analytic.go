package experiments

import (
	"fmt"

	"repro/internal/agreement"
	"repro/internal/cluster"
	"repro/internal/sched"
)

// Fig1 reproduces the introduction's motivating example: end-point (per
// server, uncoordinated) enforcement versus coordinated enforcement.
//
// Provider S has servers S1 and S2 (50 req/s each) and SLAs A 20%, B 80%.
// Redirectors R1 and R2 see loads (A:20, B:20) and (A:20, B:60) and split
// them 75/25 and 25/75 across the servers for locality. Independent
// enforcement yields aggregate (A:30, B:70) — violating B's 80% — while
// coordinated scheduling yields (A:20, B:80).
func Fig1() (*Result, error) {
	const (
		v1, v2 = 50.0, 50.0
		shareA = 0.2
		shareB = 0.8
	)
	// Redirector loads and locality biases from Figure 1.
	r1 := []float64{20, 20} // A, B at R1
	r2 := []float64{20, 60} // A, B at R2
	// Per-server demand after the 75/25 locality split.
	s1Demand := []float64{r1[0]*0.75 + r2[0]*0.25, r1[1]*0.75 + r2[1]*0.25}
	s2Demand := []float64{r1[0]*0.25 + r2[0]*0.75, r1[1]*0.25 + r2[1]*0.75}

	// End-point enforcement: each server applies the shares independently.
	a1 := cluster.EnforceShares(s1Demand, []float64{shareA, shareB}, v1)
	a2 := cluster.EnforceShares(s2Demand, []float64{shareA, shareB}, v2)
	endpointA := a1[0] + a2[0]
	endpointB := a1[1] + a2[1]

	// Coordinated enforcement: the provider LP on aggregate demand and
	// aggregate capacity.
	p, err := sched.NewProvider(
		[]float64{shareA * (v1 + v2), shareB * (v1 + v2)},
		[]float64{0, 0},
		[]float64{1, 1}, v1+v2)
	if err != nil {
		return nil, err
	}
	plan, err := p.Schedule([]float64{r1[0] + r2[0], r1[1] + r2[1]})
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:    "fig1",
		Title: "End-point vs coordinated agreement enforcement (intro example)",
		Values: map[string]float64{
			"A@endpoint":    endpointA,
			"B@endpoint":    endpointB,
			"A@coordinated": plan.X[0],
			"B@coordinated": plan.X[1],
		},
		Expected: []Expectation{
			{Phase: "endpoint", Series: "A", Paper: 30, AbsTol: 0.01},
			{Phase: "endpoint", Series: "B", Paper: 70, AbsTol: 0.01},
			{Phase: "coordinated", Series: "A", Paper: 20, AbsTol: 0.01},
			{Phase: "coordinated", Series: "B", Paper: 80, AbsTol: 0.01},
		},
		Notes: []string{
			fmt.Sprintf("per-server end-point allocations: S1 (A:%.0f, B:%.0f), S2 (A:%.0f, B:%.0f)",
				a1[0], a1[1], a2[0], a2[1]),
			"end-point enforcement gives B only 70% of the pool despite its 80% SLA",
		},
	}
	return res, nil
}

// Fig3 reproduces the worked currency-valuation example of §2.3: the chain
// A (1000 u/s) —[0.4,0.6]→ B (1500 u/s) —[0.6,1.0]→ C.
func Fig3() (*Result, error) {
	s := agreement.New()
	a := s.MustAddPrincipal("A", 1000)
	b := s.MustAddPrincipal("B", 1500)
	c := s.MustAddPrincipal("C", 0)
	s.MustSetAgreement(a, b, 0.4, 0.6)
	s.MustSetAgreement(b, c, 0.6, 1.0)

	acc, err := s.SystemAccess()
	if err != nil {
		return nil, err
	}
	curr, err := s.Currencies(100)
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:     "fig3",
		Title:  "Ticket and currency valuation (worked example)",
		Values: map[string]float64{},
		Notes: []string{
			fmt.Sprintf("gross mandatory currency values: A %.0f, B %.0f, C %.0f",
				acc.Gross[a], acc.Gross[b], acc.Gross[c]),
		},
	}
	names := []string{"A", "B", "C"}
	want := [][2]float64{{600, 400}, {760, 1340}, {1140, 960}}
	for i, name := range names {
		res.Values["mc."+name+"@final"] = acc.MC[i]
		res.Values["oc."+name+"@final"] = acc.OC[i]
		res.Expected = append(res.Expected,
			Expectation{Phase: "final", Series: "mc." + name, Paper: want[i][0], AbsTol: 0.01},
			Expectation{Phase: "final", Series: "oc." + name, Paper: want[i][1], AbsTol: 0.01},
		)
	}
	// Ticket real values from the paper's walkthrough.
	tickets := map[string]float64{}
	for _, cur := range curr {
		for _, tk := range cur.Issued {
			key := fmt.Sprintf("%v.%s->%s", tk.Kind, cur.Name, names[tk.Holder])
			tickets[key] = tk.Real
		}
	}
	for key, real := range tickets {
		res.Values[key+"@tickets"] = real
	}
	res.Expected = append(res.Expected,
		Expectation{Phase: "tickets", Series: "M-Ticket.A->B", Paper: 400, AbsTol: 0.01},
		Expectation{Phase: "tickets", Series: "O-Ticket.A->B", Paper: 200, AbsTol: 0.01},
		Expectation{Phase: "tickets", Series: "M-Ticket.B->C", Paper: 1140, AbsTol: 0.01},
		Expectation{Phase: "tickets", Series: "O-Ticket.B->C", Paper: 960, AbsTol: 0.01},
	)
	return res, nil
}
