package experiments

import (
	"time"

	"repro/internal/agreement"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// settle is how long after a phase switch measurements start: the demand
// estimator, combining tree and server queue need a few seconds to converge
// (the paper's plots show the same transition ramps).
const settle = 8 * time.Second

// Fig6 reproduces "Sharing Agreements in a Service Provider Context"
// (Layer-7): one 320 req/s server; A [0.2,1] with two 135 req/s clients via
// R1; B [0.8,1] with one client via R2. Phases: both active / A only / both.
func Fig6() (*Result, error) {
	s := agreement.New()
	sp := s.MustAddPrincipal("S", 320)
	a := s.MustAddPrincipal("A", 0)
	b := s.MustAddPrincipal("B", 0)
	s.MustSetAgreement(sp, a, 0.2, 1)
	s.MustSetAgreement(sp, b, 0.8, 1)

	eng, err := core.NewEngine(core.Config{
		Mode:              core.Provider,
		System:            s,
		ProviderPrincipal: sp,
		NumRedirectors:    2,
	})
	if err != nil {
		return nil, err
	}
	sm, err := sim.New(sim.Config{
		Engine:      eng,
		Redirectors: 2,
		Servers:     []sim.ServerSpec{{Owner: sp, Capacity: 320, Count: 1}},
		Names:       []string{"S", "A", "B"},
		MaxBacklog:  160,
	})
	if err != nil {
		return nil, err
	}

	a1 := sm.NewClient(0, workload.Config{Principal: int(a), Rate: workload.RateL7})
	a2 := sm.NewClient(0, workload.Config{Principal: int(a), Rate: workload.RateL7})
	b1 := sm.NewClient(1, workload.Config{Principal: int(b), Rate: workload.RateL7})

	a1.SetActive(true)
	a2.SetActive(true)
	b1.SetActive(true)
	sm.At(60*time.Second, func() { b1.SetActive(false) })
	sm.At(120*time.Second, func() { b1.SetActive(true) })
	sm.Run(180 * time.Second)

	res := &Result{
		ID:       "fig6",
		Title:    "L7: sharing agreements respected in a provider context",
		Recorder: sm.Recorder,
		Phases: []metrics.Phase{
			trim("phase1", 0, 60*time.Second, settle),
			trim("phase2", 60*time.Second, 120*time.Second, settle),
			trim("phase3", 120*time.Second, 180*time.Second, settle),
		},
		Expected: []Expectation{
			// B under its 256 req/s mandatory level: all 135 served;
			// A absorbs the remainder (paper: "around 190").
			{Phase: "phase1", Series: "A", Paper: 185},
			{Phase: "phase1", Series: "B", Paper: 135},
			// B inactive: A limited only by its two client machines.
			{Phase: "phase2", Series: "A", Paper: 270},
			{Phase: "phase2", Series: "B", Paper: 0},
			// B returns: the system adapts back.
			{Phase: "phase3", Series: "A", Paper: 185},
			{Phase: "phase3", Series: "B", Paper: 135},
		},
		Notes: []string{"paper Figure 6; client rate 135 req/s (WebBench behind redirect proxy)"},
	}
	return res, nil
}

// Fig7 reproduces "Optimization of a Global Metric" (Layer-7, community):
// both A and B hold [0.2, 1] on a 250 req/s server; A generates twice B's
// load and is served at twice B's rate, equalizing queue fractions.
func Fig7() (*Result, error) {
	s := agreement.New()
	sp := s.MustAddPrincipal("S", 250)
	a := s.MustAddPrincipal("A", 0)
	b := s.MustAddPrincipal("B", 0)
	s.MustSetAgreement(sp, a, 0.2, 1)
	s.MustSetAgreement(sp, b, 0.2, 1)

	eng, err := core.NewEngine(core.Config{
		Mode:           core.Community,
		System:         s,
		NumRedirectors: 2,
	})
	if err != nil {
		return nil, err
	}
	sm, err := sim.New(sim.Config{
		Engine:      eng,
		Redirectors: 2,
		Servers:     []sim.ServerSpec{{Owner: sp, Capacity: 250, Count: 1}},
		Names:       []string{"S", "A", "B"},
		MaxBacklog:  125,
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < 2; i++ {
		c := sm.NewClient(0, workload.Config{Principal: int(a), Rate: workload.RateL7})
		c.SetActive(true)
	}
	c := sm.NewClient(1, workload.Config{Principal: int(b), Rate: workload.RateL7})
	c.SetActive(true)
	sm.Run(90 * time.Second)

	res := &Result{
		ID:       "fig7",
		Title:    "L7: optional tickets follow request rates (community max-min)",
		Recorder: sm.Recorder,
		Phases: []metrics.Phase{
			trim("steady", 0, 90*time.Second, settle),
		},
		Expected: []Expectation{
			{Phase: "steady", Series: "A", Paper: 250.0 * 2 / 3},
			{Phase: "steady", Series: "B", Paper: 250.0 / 3},
		},
		Notes: []string{"paper Figure 7; server restricted to 250 req/s"},
	}
	return res, nil
}

// Fig8 reproduces "Impact of Network Delay" (Layer-7): the combining tree
// carries a 10 s one-way lag. B ([0.2,1], one client, at the leaf
// redirector) starts alone and conservatively uses half its mandatory
// tickets until the first global broadcast arrives; A ([0.8,1], two
// clients, at the root) joins later, competing with B for one lag period
// before the agreements are enforced.
func Fig8() (*Result, error) {
	s := agreement.New()
	sp := s.MustAddPrincipal("S", 320)
	a := s.MustAddPrincipal("A", 0)
	b := s.MustAddPrincipal("B", 0)
	s.MustSetAgreement(sp, a, 0.8, 1)
	s.MustSetAgreement(sp, b, 0.2, 1)

	eng, err := core.NewEngine(core.Config{
		Mode:              core.Provider,
		System:            s,
		ProviderPrincipal: sp,
		NumRedirectors:    2,
	})
	if err != nil {
		return nil, err
	}
	sm, err := sim.New(sim.Config{
		Engine:      eng,
		Redirectors: 2,
		Servers:     []sim.ServerSpec{{Owner: sp, Capacity: 320, Count: 1}},
		TreeDelay:   10 * time.Second,
		Names:       []string{"S", "A", "B"},
		MaxBacklog:  160,
	})
	if err != nil {
		return nil, err
	}

	// A's clients at the root (redirector 0), B's at the leaf (1): the leaf
	// is the node that must wait a full lag for its first global view.
	a1 := sm.NewClient(0, workload.Config{Principal: int(a), Rate: workload.RateL7})
	a2 := sm.NewClient(0, workload.Config{Principal: int(a), Rate: workload.RateL7})
	b1 := sm.NewClient(1, workload.Config{Principal: int(b), Rate: workload.RateL7})

	b1.SetActive(true)
	sm.At(40*time.Second, func() { a1.SetActive(true); a2.SetActive(true) })
	sm.At(100*time.Second, func() { a1.SetActive(false); a2.SetActive(false) })
	sm.Run(140 * time.Second)

	res := &Result{
		ID:       "fig8",
		Title:    "L7: graceful behavior under 10 s combining-tree delay",
		Recorder: sm.Recorder,
		Phases: []metrics.Phase{
			// Phase 1: before the first broadcast reaches the leaf (10 s),
			// B conservatively uses half of its 64 req/s mandatory share.
			{Name: "phase1", From: 2 * time.Second, To: 9 * time.Second},
			// Phase 2: global view arrived; B limited only by its client.
			{Name: "phase2", From: 14 * time.Second, To: 39 * time.Second},
			// Phase 3: A active but invisible to the leaf for one lag:
			// competition (not asserted; see Notes).
			{Name: "phase3", From: 42 * time.Second, To: 49 * time.Second},
			// Phase 4: agreements enforced: A 80%, B 20% of 320.
			{Name: "phase4", From: 56 * time.Second, To: 99 * time.Second},
			// Phase 6: A gone and the leaf knows: B back to full client rate.
			{Name: "phase6", From: 115 * time.Second, To: 139 * time.Second},
		},
		Expected: []Expectation{
			{Phase: "phase1", Series: "B", Paper: 30, RelTol: 0.25},
			{Phase: "phase2", Series: "B", Paper: 135},
			{Phase: "phase4", Series: "A", Paper: 255},
			{Phase: "phase4", Series: "B", Paper: 65, RelTol: 0.15},
			{Phase: "phase6", Series: "B", Paper: 135},
		},
		Notes: []string{
			"paper Figure 8; one-way tree delay 10 s",
			"phase3/phase5 are the lag transitions where requests compete; asserted only by shape",
		},
	}
	return res, nil
}
