package experiments

import (
	"fmt"
	"hash/fnv"
	"math"
	"time"

	"repro/internal/agreement"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// hierOutcome is everything one ext-hier run produces: the figure data
// plus the plane's post-crash shape and a digest for the replay check.
type hierOutcome struct {
	sm *sim.Sim
	// Promoted west sub-root placement after the crash.
	promotedParent  int
	promotedSubRoot bool
	// The remaining west leaf's parent (must be the promoted sub-root,
	// never a sibling leaf or a foreign region).
	leafParent int
	removed    int
	levels     int
	// Under-floor counters at the settled pre-crash mark and once the
	// repaired plane settled again.
	preA, preB, postA, postB int64
	digest                   uint64
}

// runHier executes one deterministic hierarchical-plane run: six
// redirectors in two regions (east{0,1,2}, west{3,4,5}) under a global
// tier, provider S (100 req/s) with A [0.7,1] and B [0.3,1]. At t=60 s
// the west regional sub-root (node 3) is killed; the survivors must
// recompile the plane — promoting node 4 into the global tier — and keep
// the 70/30 split converged.
func runHier() (*hierOutcome, error) {
	s := agreement.New()
	sp := s.MustAddPrincipal("S", 100)
	a := s.MustAddPrincipal("A", 0)
	b := s.MustAddPrincipal("B", 0)
	s.MustSetAgreement(sp, a, 0.7, 1)
	s.MustSetAgreement(sp, b, 0.3, 1)
	eng, err := core.NewEngine(core.Config{
		Mode:              core.Provider,
		System:            s,
		ProviderPrincipal: sp,
		NumRedirectors:    6,
	})
	if err != nil {
		return nil, err
	}
	sm, err := sim.New(sim.Config{
		Engine:      eng,
		Redirectors: 6,
		Servers:     []sim.ServerSpec{{Owner: sp, Capacity: 100, Count: 1}},
		Topology: &topology.Spec{
			Regions: []topology.Region{
				{Name: "east", Members: []int{0, 1, 2}},
				{Name: "west", Members: []int{3, 4, 5}},
			},
			Fanout: 2,
		},
		Names:          []string{"S", "A", "B"},
		FailureTimeout: 2 * time.Second,
		MaxBacklog:     100,
	})
	if err != nil {
		return nil, err
	}
	// A's demand lands on an east leaf, B's on a west leaf: post-crash
	// convergence needs aggregates to cross the repaired global tier.
	sm.NewClient(1, workload.Config{Principal: int(a), Rate: 200}).SetActive(true)
	sm.NewClient(4, workload.Config{Principal: int(b), Rate: 200}).SetActive(true)

	out := &hierOutcome{sm: sm, levels: sm.Plane().Levels()}
	sm.At(59*time.Second, func() {
		out.preA, out.preB = sm.Auditor.UnderMC(int(a)), sm.Auditor.UnderMC(int(b))
	})
	sm.At(60*time.Second, func() { sm.FailRedirector(3) })
	sm.At(60*time.Second+2*settle, func() {
		out.postA, out.postB = sm.Auditor.UnderMC(int(a)), sm.Auditor.UnderMC(int(b))
	})
	sm.Run(120 * time.Second)

	pl := sm.Plane()
	if p4, ok := pl.Placement(4); ok {
		out.promotedParent = int(p4.Parent)
		out.promotedSubRoot = p4.SubRoot
	}
	if p5, ok := pl.Placement(5); ok {
		out.leafParent = int(p5.Parent)
	}
	out.removed = len(pl.Removed())
	out.digest = hierDigest(out)
	return out, nil
}

// hierDigest folds every per-second rate sample, the auditor's
// conformance counters, and the repaired plane's shape into one FNV-1a
// hash: two runs are bit-identical iff their digests match.
func hierDigest(out *hierOutcome) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		_, _ = h.Write(buf[:])
	}
	rec := out.sm.Recorder
	for i := 0; i < rec.NumSeries(); i++ {
		for _, v := range rec.Series(i) {
			put(math.Float64bits(v))
		}
	}
	for i := 0; i < rec.NumSeries(); i++ {
		put(uint64(out.sm.Auditor.UnderMC(i)))
		put(uint64(out.sm.Auditor.OverUB(i)))
	}
	put(uint64(out.sm.Auditor.Windows()))
	put(uint64(out.sm.Auditor.MixedVersion()))
	put(uint64(out.sm.Reconfigurations))
	put(uint64(out.promotedParent))
	put(uint64(out.leafParent))
	put(uint64(out.removed))
	return h.Sum64()
}

// ExtHierPlane is the hierarchical combining-plane experiment: a
// two-region fleet aggregates through regional sub-trees into a global
// tier, a regional sub-root crashes mid-run, and the survivors recompile
// the plane around it — the region's members re-parent through the
// promoted sub-root into the global tier, never sideways to a sibling
// leaf. Enforcement must stay converged (A 70 / B 30) in both phases,
// with no mixed-version windows and zero settled under-floor windows, and
// the whole run replays bit-identically (the experiment executes twice
// and compares digests).
func ExtHierPlane() (*Result, error) {
	first, err := runHier()
	if err != nil {
		return nil, err
	}
	second, err := runHier()
	if err != nil {
		return nil, err
	}
	replayIdentical := 0.0
	if first.digest == second.digest {
		replayIdentical = 1.0
	}
	subRoot := 0.0
	if first.promotedSubRoot {
		subRoot = 1.0
	}
	sm := first.sm
	res := &Result{
		ID:       "ext-hier",
		Title:    "Hierarchical combining plane: regional sub-root crash and recompile",
		Recorder: sm.Recorder,
		Phases: []metrics.Phase{
			trim("healthy", 0, 60*time.Second, settle),
			trim("failed", 60*time.Second, 120*time.Second, settle),
		},
		Values: map[string]float64{
			"levels@plane":           float64(first.levels),
			"reconfigurations@tree":  float64(sm.Reconfigurations),
			"removed@tree":           float64(first.removed),
			"promoted-parent@west":   float64(first.promotedParent),
			"promoted-subroot@west":  subRoot,
			"leaf-parent@west":       float64(first.leafParent),
			"mixed-version@windows":  float64(sm.Auditor.MixedVersion()),
			"A-under-floor@settled":  float64(first.preA),
			"B-under-floor@settled":  float64(first.preB),
			"A-under-floor@repaired": float64(sm.Auditor.UnderMC(1) - first.postA),
			"B-under-floor@repaired": float64(sm.Auditor.UnderMC(2) - first.postB),
			"identical@replay":       replayIdentical,
		},
		Expected: []Expectation{
			{Phase: "healthy", Series: "A", Paper: 70},
			{Phase: "healthy", Series: "B", Paper: 30},
			// B's 200 req/s at the west leaf still exceeds its 30 floor
			// and A's its 70: the split survives the sub-root crash.
			{Phase: "failed", Series: "A", Paper: 70},
			{Phase: "failed", Series: "B", Paper: 30},
			{Phase: "plane", Series: "levels", Paper: 3, AbsTol: 0.1},
			{Phase: "tree", Series: "reconfigurations", Paper: 1, AbsTol: 0.5},
			{Phase: "tree", Series: "removed", Paper: 1, AbsTol: 0.1},
			// The promoted west sub-root hangs off the global root, and
			// the surviving west leaf hangs under it — not sideways.
			{Phase: "west", Series: "promoted-parent", Paper: 0, AbsTol: 0.1},
			{Phase: "west", Series: "promoted-subroot", Paper: 1, AbsTol: 0.1},
			{Phase: "west", Series: "leaf-parent", Paper: 4, AbsTol: 0.1},
			// No window anywhere mixed agreement versions.
			{Phase: "windows", Series: "mixed-version", Paper: 0, AbsTol: 0.1},
			// Zero settled under-floor windows before and after repair.
			{Phase: "settled", Series: "A-under-floor", Paper: 0, AbsTol: 0.1},
			{Phase: "settled", Series: "B-under-floor", Paper: 0, AbsTol: 0.1},
			{Phase: "repaired", Series: "A-under-floor", Paper: 0, AbsTol: 0.1},
			{Phase: "repaired", Series: "B-under-floor", Paper: 0, AbsTol: 0.1},
			// Bit-identical replay: same digests across two full runs.
			{Phase: "replay", Series: "identical", Paper: 1, AbsTol: 0.01},
		},
		Notes: []string{
			"regions east{0,1,2} / west{3,4,5}, fanout 2, global root 0",
			fmt.Sprintf("west sub-root (node 3) dies at t=60 s; detection timeout 2 s; plane recompiled %d time(s)",
				sm.Reconfigurations),
		},
	}
	return res, nil
}
