package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/agreement"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// AblationWindowSize sweeps the scheduling window length — the design
// parameter the paper fixes at 100 ms and credits for "finer-grained
// enforcement" than Océano's minutes (§6). After a phase change (A's
// clients stop at t = 30 s), B should ramp from 160 to 320 req/s; longer
// windows converge later and track the target more loosely.
//
// Reported per window length: B's mean absolute deviation from its 320
// req/s target over the 20 s after the change.
func AblationWindowSize() (*Result, error) {
	res := &Result{
		ID:     "abl-window",
		Title:  "Scheduling window length vs enforcement responsiveness",
		Values: map[string]float64{},
		Notes: []string{
			"Figure 9 community; A's two clients stop at t=30 s; target B=320 req/s after",
			"error = mean |B − 320| over (30 s, 50 s]; the paper's 100 ms window keeps it small",
		},
	}
	for _, w := range []time.Duration{
		20 * time.Millisecond, 100 * time.Millisecond, 500 * time.Millisecond, 2 * time.Second,
	} {
		err, cErr := windowSweepRun(w)
		if cErr != nil {
			return nil, cErr
		}
		res.Values[fmt.Sprintf("error@w=%v", w)] = err
	}
	return res, nil
}

func windowSweepRun(window time.Duration) (float64, error) {
	s := agreement.New()
	a := s.MustAddPrincipal("A", 320)
	b := s.MustAddPrincipal("B", 320)
	s.MustSetAgreement(b, a, 0.5, 0.5)
	eng, err := core.NewEngine(core.Config{
		Mode:           core.Community,
		System:         s,
		NumRedirectors: 1,
		Window:         window,
	})
	if err != nil {
		return 0, err
	}
	sm, err := sim.New(sim.Config{
		Engine:      eng,
		Redirectors: 1,
		Servers: []sim.ServerSpec{
			{Owner: a, Capacity: 320, Count: 1},
			{Owner: b, Capacity: 320, Count: 1},
		},
		Names:      []string{"A", "B"},
		MaxBacklog: 160,
	})
	if err != nil {
		return 0, err
	}
	a1 := sm.NewClient(0, workload.Config{Principal: int(a), Rate: workload.RateL4})
	a2 := sm.NewClient(0, workload.Config{Principal: int(a), Rate: workload.RateL4})
	a1.SetActive(true)
	a2.SetActive(true)
	sm.NewClient(0, workload.Config{Principal: int(b), Rate: workload.RateL4}).SetActive(true)
	sm.At(30*time.Second, func() { a1.SetActive(false); a2.SetActive(false) })
	sm.Run(50 * time.Second)

	errSum, n := 0.0, 0
	for sec := 31; sec <= 49; sec++ {
		errSum += math.Abs(sm.Recorder.Rate(int(b), sec) - 320)
		n++
	}
	return errSum / float64(n), nil
}

// AblationConservativeFallback shows why a blind redirector claims only
// MC_i/R (§5.1, Figure 8 phase 1): B's client machines hit two leaf
// redirectors that will not see a global broadcast for 10 s (the root is
// never blind — it hears its own broadcast — so the subjects are leaves).
// Conservative claiming caps B's aggregate admissions at (2/3)·MC_B; each
// blind leaf claiming the FULL mandatory admits B at twice its entitlement,
// precisely the multi-claiming the paper's rule prevents.
//
// Admission rates (not completions) are compared: admission is the
// enforcement decision, while completions under the resulting server
// overload are distorted by FIFO mixing.
func AblationConservativeFallback() (*Result, error) {
	run := func(aggressive bool) (bAdmit, aAdmit float64, err error) {
		s := agreement.New()
		sp := s.MustAddPrincipal("S", 320)
		a := s.MustAddPrincipal("A", 0)
		b := s.MustAddPrincipal("B", 0)
		s.MustSetAgreement(sp, a, 0.8, 1)
		s.MustSetAgreement(sp, b, 0.2, 1)
		eng, cErr := core.NewEngine(core.Config{
			Mode:                core.Provider,
			System:              s,
			ProviderPrincipal:   sp,
			NumRedirectors:      3,
			AggressiveWhenBlind: aggressive,
		})
		if cErr != nil {
			return 0, 0, cErr
		}
		sm, cErr := sim.New(sim.Config{
			Engine:      eng,
			Redirectors: 3, // 0 is the root; 1 and 2 are blind leaves
			Servers:     []sim.ServerSpec{{Owner: sp, Capacity: 320, Count: 1}},
			TreeDelay:   10 * time.Second,
			Names:       []string{"S", "A", "B"},
			// A deep backlog so over-admitted requests are absorbed rather
			// than refused: the measurement is the admission decision.
			MaxBacklog: 2000,
		})
		if cErr != nil {
			return 0, 0, cErr
		}
		// A's demand at the root; one of B's client machines per leaf.
		sm.NewClient(0, workload.Config{Principal: int(a), Rate: 270}).SetActive(true)
		sm.NewClient(1, workload.Config{Principal: int(b), Rate: workload.RateL7}).SetActive(true)
		sm.NewClient(2, workload.Config{Principal: int(b), Rate: workload.RateL7}).SetActive(true)
		sm.Run(10 * time.Second)
		// Blind phase only: [2 s, 9 s], before any broadcast reaches a leaf.
		bAdmit = sm.Admit.MeanRateBetween(int(b), 2*time.Second, 9*time.Second)
		aAdmit = sm.Admit.MeanRateBetween(int(a), 2*time.Second, 9*time.Second)
		return bAdmit, aAdmit, nil
	}

	consB, consA, err := run(false)
	if err != nil {
		return nil, err
	}
	aggrB, aggrA, err := run(true)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:    "abl-conservative",
		Title: "Conservative MC/R fallback vs aggressive claiming while blind",
		Values: map[string]float64{
			"B@conservative": consB,
			"A@conservative": consA,
			"B@aggressive":   aggrB,
			"A@aggressive":   aggrA,
		},
		Expected: []Expectation{
			// Conservative: each blind leaf claims MC_B/3 ⇒ B ≈ 2/3·64 ≈ 43.
			{Phase: "conservative", Series: "B", Paper: 64 * 2.0 / 3, RelTol: 0.15},
			// Aggressive: each blind leaf claims the full 64 ⇒ ≈ 128 —
			// double B's agreement.
			{Phase: "aggressive", Series: "B", Paper: 128, RelTol: 0.15},
		},
		Notes: []string{
			"B's two client machines on two blind leaves, 10 s tree lag, first 10 s only",
			"the paper's rule (Figure 8 phase 1) prevents multi-claiming of the same entitlement",
		},
	}
	return res, nil
}
