package experiments

import (
	"strings"
	"testing"
)

// runAndCheck executes an experiment and fails on any shape violation,
// printing the paper-vs-measured summary for the log.
func runAndCheck(t *testing.T, id string) *Result {
	t.Helper()
	res, err := Run(id)
	if err != nil {
		t.Fatalf("Run(%s): %v", id, err)
	}
	t.Logf("\n%s", res.Summary())
	if v := res.Violations(); len(v) > 0 {
		t.Fatalf("%s does not reproduce the paper: %v", id, v)
	}
	return res
}

func TestFig1EndpointViolation(t *testing.T) {
	res := runAndCheck(t, "fig1")
	// The headline claim: end-point enforcement under-serves B.
	if res.Values["B@endpoint"] >= res.Values["B@coordinated"] {
		t.Fatal("end-point enforcement did not under-serve B")
	}
}

func TestFig3CurrencyValues(t *testing.T) {
	runAndCheck(t, "fig3")
}

func TestFig6ProviderL7(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	runAndCheck(t, "fig6")
}

func TestFig7CommunityThetaL7(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	res := runAndCheck(t, "fig7")
	// A must be served at about twice B's rate.
	a, _ := res.Measured("steady", "A")
	b, _ := res.Measured("steady", "B")
	if a < 1.7*b || a > 2.3*b {
		t.Fatalf("A/B ratio = %.2f, want ≈2", a/b)
	}
}

func TestFig8NetworkDelay(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	res := runAndCheck(t, "fig8")
	// Phase 3 (lag window) must show contention: B still above its
	// post-enforcement rate while A ramps.
	b3, _ := res.Measured("phase3", "B")
	b4, _ := res.Measured("phase4", "B")
	if b3 <= b4 {
		t.Fatalf("no competition during the lag: B phase3 %.1f <= phase4 %.1f", b3, b4)
	}
}

func TestFig9CommunityL4(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	runAndCheck(t, "fig9")
}

func TestFig10ProviderIncomeL4(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	runAndCheck(t, "fig10")
}

func TestAblationQueuing(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	res := runAndCheck(t, "abl-queue")
	// The qualitative claim: implicit beats explicit well before saturation.
	if res.Values["implicit@T=32"] < 1.5*res.Values["explicit@T=32"] {
		t.Fatalf("implicit %.0f vs explicit %.0f at T=32: anomaly not visible",
			res.Values["implicit@T=32"], res.Values["explicit@T=32"])
	}
}

func TestAblationTree(t *testing.T) {
	runAndCheck(t, "abl-tree")
}

func TestExtReselling(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	runAndCheck(t, "ext-resell")
}

func TestExtLocalityCaps(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	res := runAndCheck(t, "ext-local")
	// The cap must actually shift load: B gains, A loses.
	if res.Values["B@capped"] <= res.Values["B@uncapped"] {
		t.Fatalf("locality cap had no effect: %v", res.Values)
	}
}

func TestExtDynamicCapacity(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	runAndCheck(t, "ext-dynamic")
}

func TestExtFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	res := runAndCheck(t, "ext-failover")
	if res.Values["reconfigurations@failed"] < 1 {
		t.Fatal("tree never reconfigured")
	}
}

func TestAblationWindowSize(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	res := runAndCheck(t, "abl-window")
	// Longer windows must track the post-change target more loosely.
	short := res.Values["error@w=100ms"]
	long := res.Values["error@w=2s"]
	if long <= short {
		t.Fatalf("window sweep not monotone: err(100ms)=%.1f err(2s)=%.1f", short, long)
	}
	if short > 40 {
		t.Fatalf("100 ms window error = %.1f req/s, too loose", short)
	}
}

func TestAblationConservativeFallback(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	res := runAndCheck(t, "abl-conservative")
	if res.Values["B@aggressive"] < 1.6*res.Values["B@conservative"] {
		t.Fatalf("aggressive claiming did not over-serve B: %v", res.Values)
	}
}

// TestExtChaos: the seeded fault schedule kills one of S's two servers
// mid-run; served rates must re-converge to the re-interpreted (halved)
// entitlements, return to the original split after the restart, and — after
// each convergence settling period — no window may serve a principal below
// the recomputed mandatory floor. The run must also be bit-reproducible:
// same seed, same series.
func TestExtChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	res := runAndCheck(t, "ext-chaos")
	if res.Values["degraded-windows@plane"] <= 0 {
		t.Fatalf("no window was flagged degraded: %v", res.Values)
	}
	table := func(r *Result) string {
		var sb strings.Builder
		if err := r.Recorder.WriteTable(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	again, err := Run("ext-chaos")
	if err != nil {
		t.Fatal(err)
	}
	if table(res) != table(again) {
		t.Fatal("ext-chaos series differ between identical seeded runs")
	}
}

// TestExperimentsAreDeterministic: the virtual-time harness must produce
// bit-identical series on repeated runs — the property that makes every
// figure reproduction exactly repeatable.
func TestExperimentsAreDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	run := func() string {
		res, err := Run("fig9")
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := res.Recorder.WriteTable(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	first := run()
	second := run()
	if first != second {
		t.Fatal("fig9 series differ between identical runs")
	}
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) != 20 {
		t.Fatalf("IDs = %v", ids)
	}
	if _, err := Run("nope"); err == nil || !strings.Contains(err.Error(), "unknown id") {
		t.Fatalf("unknown id error = %v", err)
	}
}

func TestResultMeasuredMissing(t *testing.T) {
	res := &Result{}
	if _, ok := res.Measured("x", "y"); ok {
		t.Fatal("Measured on empty result succeeded")
	}
	res.Expected = []Expectation{{Phase: "x", Series: "y", Paper: 1}}
	if v := res.Violations(); len(v) != 1 || !strings.Contains(v[0], "no measurement") {
		t.Fatalf("violations = %v", v)
	}
	if !strings.Contains(res.Summary(), "MISMATCH") {
		t.Fatal("Summary must surface mismatches")
	}
}

// TestExtReconfig: a mid-run SLA renegotiation flows through the versioned
// control plane, rides the combining tree, and swaps fleet-wide at one
// epoch-gated window boundary — with no mixed-version windows, no settled
// under-floor windows, and a bit-identical replay.
func TestExtReconfig(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	res := runAndCheck(t, "ext-reconfig")
	if res.Values["mixed-version@windows"] != 0 {
		t.Fatalf("%v windows mixed agreement versions", res.Values["mixed-version@windows"])
	}
	if res.Values["identical@replay"] != 1 {
		t.Fatal("two runs of the experiment diverged: not deterministic")
	}
}

// TestExtHierPlane: the hierarchical plane experiment survives a regional
// sub-root crash with re-convergence, no mixed-version windows, and a
// bit-identical replay.
func TestExtHierPlane(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	res := runAndCheck(t, "ext-hier")
	if res.Values["identical@replay"] != 1 {
		t.Fatal("two runs of the experiment diverged: not deterministic")
	}
	if res.Values["mixed-version@windows"] != 0 {
		t.Fatalf("%v windows mixed agreement versions", res.Values["mixed-version@windows"])
	}
	if res.Values["promoted-parent@west"] != 0 || res.Values["leaf-parent@west"] != 4 {
		t.Fatalf("west region re-parented wrong: %v", res.Values)
	}
}

// TestExtBudget: entitlements fold down the budget tree, the burst never
// pushes a sibling under its floor, the mid-run lease sets capacity aside
// and reclaims it within the documented bound, and the run replays
// bit-identically.
func TestExtBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	res := runAndCheck(t, "ext-budget")
	if res.Values["identical@replay"] != 1 {
		t.Fatal("two runs of the experiment diverged: not deterministic")
	}
	if res.Values["set-aside@capacity"] != 120 || res.Values["restored@capacity"] != 160 {
		t.Fatalf("lease capacity set-aside/reclaim missed the %v-window bound: %v",
			res.Values["bound@reclaim"], res.Values)
	}
}
