package experiments

import (
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"time"

	"repro/internal/agreement"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// soakLead is the rollout gate lead for the soak's renegotiation: wider than
// ext-reconfig's because the root is killed shortly after publishing and the
// gate must still be ahead of every survivor's epoch when it crosses.
const soakLead = 4

// soakSeed seeds the fault schedule; the whole run is a pure function of it.
const soakSeed = 0x50AC

// Soak timeline (window = 100 ms, so epoch ≈ 10·t in seconds). The crash
// offsets are chosen off window boundaries so event order inside a tick is
// never ambiguous, and both restarts happen more than 128 windows (the
// auditor's mixed-version ring span) after the matching crash, so a
// restarted node replaying its durable window sequence — which permanently
// lags the survivors' — cannot alias a pre-renegotiation slot.
const (
	soakCrashLeaf   = 29550 * time.Millisecond // r2 dies before the set exists
	soakRenegotiate = 30050 * time.Millisecond // B halves A's grant
	soakCrashRoot   = 30750 * time.Millisecond // r0 dies after publish, before fleet convergence
	soakRestartLeaf = 43050 * time.Millisecond
	soakRestartRoot = 44050 * time.Millisecond
	soakBaseline    = 46 * time.Second // under-floor counters re-baselined here
	soakEnd         = 90 * time.Second
)

// soakOutcome is everything one ext-soak run produces.
type soakOutcome struct {
	sm *sim.Sim
	// Version-monotonicity violations observed by the 500 ms sampling loop
	// (engine set version and control-plane version must never move
	// backwards, crashes and restarts included).
	monotoneViolations int
	// evictedPeak is the largest evicted-quorum count sampled — both crashed
	// members must pass through the eviction valve for the rollout to
	// commit; evictedFinal must be zero again once both re-registered.
	evictedPeak, evictedFinal int
	rollouts                  uint64
	staged                    core.Version
	planeVersion              uint64
	reconverged               bool // every tree holds the newest set at run end
	preA, preB                int64
	postA, postB              int64
	digest                    uint64
}

// runSoak executes one deterministic crash/recovery soak: the ext-reconfig
// renegotiation with a redirector killed just before the new set exists,
// the root killed just after publishing it, and both restarted from their
// durable stores minutes (of virtual time) later.
func runSoak() (*soakOutcome, error) {
	s := agreement.New()
	a := s.MustAddPrincipal("A", 320)
	b := s.MustAddPrincipal("B", 320)
	s.MustSetAgreement(b, a, 0.5, 0.5)

	eng, err := core.NewEngine(core.Config{
		Mode:           core.Community,
		System:         s,
		NumRedirectors: 3,
	})
	if err != nil {
		return nil, err
	}
	sm, err := sim.New(sim.Config{
		Engine:      eng,
		Redirectors: 3,
		Servers: []sim.ServerSpec{
			{Owner: a, Capacity: 160, Count: 2},
			{Owner: b, Capacity: 160, Count: 2},
		},
		Names:      []string{"A", "B"},
		MaxBacklog: 200,
		TraceDepth: -1,
		// Failure detection drives both the tree rebuilds and the rollout
		// quorum evictions; 2 s is well clear of the (zero-delay) tree RTT.
		FailureTimeout: 2 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "rsa-soak-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	if err := sm.EnablePersistence(dir, 1); err != nil {
		return nil, err
	}
	plane, err := sm.EnableControlPlane(soakLead)
	if err != nil {
		return nil, err
	}
	// Demand spans the fleet so the crashes actually remove load: A arrives
	// at the root and the middle node, B at the middle node and the leaf.
	sm.NewClient(0, workload.Config{Principal: int(a), Rate: 300}).SetActive(true)
	sm.NewClient(1, workload.Config{Principal: int(a), Rate: 300}).SetActive(true)
	sm.NewClient(1, workload.Config{Principal: int(b), Rate: 300}).SetActive(true)
	sm.NewClient(2, workload.Config{Principal: int(b), Rate: 300}).SetActive(true)

	out := &soakOutcome{sm: sm}

	plan := fault.NewSchedule(soakSeed).
		CrashRedirector(soakCrashLeaf, 2).
		CrashRedirector(soakCrashRoot, 0).
		RestartRedirector(soakRestartLeaf, 2).
		RestartRedirector(soakRestartRoot, 0)
	sm.InjectFaults(plan, fault.Hooks{})

	sm.At(soakRenegotiate, func() {
		if _, err := plane.SetAgreement("B", "A", 0.25, 0.25); err != nil {
			panic(fmt.Sprintf("ext-soak: renegotiation rejected: %v", err))
		}
	})

	// Sampling loop: the accepted set version and the control-plane version
	// must be monotone through every crash, eviction, and restart.
	var lastSet, lastPlane uint64
	for t := 500 * time.Millisecond; t < soakEnd; t += 500 * time.Millisecond {
		sm.At(t, func() {
			info := eng.Rollout()
			if info.SetVersion < lastSet || plane.Version() < lastPlane {
				out.monotoneViolations++
			}
			lastSet, lastPlane = info.SetVersion, plane.Version()
			if info.Evicted > out.evictedPeak {
				out.evictedPeak = info.Evicted
			}
		})
	}

	// Under-floor audit bounds: settled windows before the first crash
	// (excluding the cold fleet-wide warm-up, where the EWMA estimators and
	// the combining tree are still converging), and every window after both
	// restarts settled.
	var warmA, warmB int64
	sm.At(2*settle, func() {
		warmA, warmB = sm.Auditor.UnderMC(int(a)), sm.Auditor.UnderMC(int(b))
	})
	sm.At(soakCrashLeaf-500*time.Millisecond, func() {
		out.preA = sm.Auditor.UnderMC(int(a)) - warmA
		out.preB = sm.Auditor.UnderMC(int(b)) - warmB
	})
	sm.At(soakBaseline, func() {
		out.postA, out.postB = sm.Auditor.UnderMC(int(a)), sm.Auditor.UnderMC(int(b))
	})

	sm.Run(soakEnd)

	info := eng.Rollout()
	out.rollouts, out.staged, out.evictedFinal = info.Rollouts, info.Staged, info.Evicted
	out.planeVersion = plane.Version()
	out.reconverged = true
	for _, rn := range sm.Redirectors {
		cu := rn.Tree.Config()
		if cu == nil || cu.Version != plane.Version() {
			out.reconverged = false
		}
	}
	if err := sm.ClosePersistence(); err != nil {
		return nil, err
	}
	out.digest = soakDigest(out)
	return out, nil
}

// soakDigest folds every rate sample, the auditor's conformance counters,
// and the recovery bookkeeping into one FNV-1a hash: two runs are
// bit-identical iff their digests match.
func soakDigest(out *soakOutcome) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		_, _ = h.Write(buf[:])
	}
	rec := out.sm.Recorder
	for i := 0; i < rec.NumSeries(); i++ {
		for _, v := range rec.Series(i) {
			put(math.Float64bits(v))
		}
	}
	for i := 0; i < rec.NumSeries(); i++ {
		put(uint64(out.sm.Auditor.UnderMC(i)))
		put(uint64(out.sm.Auditor.OverUB(i)))
	}
	put(uint64(out.sm.Auditor.Windows()))
	put(uint64(out.sm.Auditor.Conservative()))
	put(uint64(out.sm.Auditor.MixedVersion()))
	put(uint64(out.sm.Reconfigurations))
	put(out.rollouts)
	put(out.planeVersion)
	return h.Sum64()
}

// ExtSoak is the restart-safety soak: a mid-run renegotiation with the
// leaf killed just before the new agreement set exists, the root killed
// just after publishing it, and both processes later restarted from their
// durable stores. The rollout must commit anyway — failure detection
// evicts the silent members from the promotion quorum — and the restarted
// nodes must rejoin the combining tree, recover their carried credit and
// demand estimates, learn the newest set through the rejoin handshake, and
// re-enter enforcement without a single settled under-floor window, a
// mixed-version window, or a version moving backwards. The whole run
// executes twice and must replay bit-identically.
func ExtSoak() (*Result, error) {
	first, err := runSoak()
	if err != nil {
		return nil, err
	}
	second, err := runSoak()
	if err != nil {
		return nil, err
	}
	replayIdentical := 0.0
	if first.digest == second.digest {
		replayIdentical = 1.0
	}
	converged := 0.0
	if first.staged == 0 && first.rollouts == 1 {
		converged = 1.0
	}
	reconverged := 0.0
	if first.reconverged {
		reconverged = 1.0
	}
	sm := first.sm
	res := &Result{
		ID:       "ext-soak",
		Title:    "Crash-recovery soak: kill root and leaf mid-renegotiation, restart from durable state",
		Recorder: sm.Recorder,
		Phases: []metrics.Phase{
			trim("initial", 0, soakCrashLeaf, settle),
			trim("recovered", 50*time.Second, soakEnd, settle),
		},
		Values: map[string]float64{
			"version@plane":           float64(first.planeVersion),
			"rollouts@plane":          float64(first.rollouts),
			"converged@plane":         converged,
			"evicted-peak@plane":      float64(first.evictedPeak),
			"evicted-final@plane":     float64(first.evictedFinal),
			"reconverged@fleet":       reconverged,
			"monotone-violations@ver": float64(first.monotoneViolations),
			"mixed-version@windows":   float64(sm.Auditor.MixedVersion()),
			"A-under-floor@initial":   float64(first.preA),
			"B-under-floor@initial":   float64(first.preB),
			"A-under-floor@recovered": float64(sm.Auditor.UnderMC(0) - first.postA),
			"B-under-floor@recovered": float64(sm.Auditor.UnderMC(1) - first.postB),
			"reconfigurations@fleet":  float64(sm.Reconfigurations),
			"identical@replay":        replayIdentical,
		},
		Expected: []Expectation{
			// B grants A [0.5, 0.5] of 320: entitlements 480/160.
			{Phase: "initial", Series: "A", Paper: 480},
			{Phase: "initial", Series: "B", Paper: 160},
			// Renegotiated to [0.25, 0.25] and fully recovered: 400/240.
			{Phase: "recovered", Series: "A", Paper: 400},
			{Phase: "recovered", Series: "B", Paper: 240},
			{Phase: "plane", Series: "version", Paper: 1, AbsTol: 0.1},
			// The staged set committed exactly once, despite two of three
			// quorum members being dead: the eviction valve unblocked it.
			{Phase: "plane", Series: "rollouts", Paper: 1, AbsTol: 0.1},
			{Phase: "plane", Series: "converged", Paper: 1, AbsTol: 0.1},
			{Phase: "plane", Series: "evicted-peak", Paper: 2, AbsTol: 0.1},
			// Both restarted processes re-registered and re-entered the quorum.
			{Phase: "plane", Series: "evicted-final", Paper: 0, AbsTol: 0.1},
			// Every tree node holds the newest set at run end.
			{Phase: "fleet", Series: "reconverged", Paper: 1, AbsTol: 0.1},
			// Versions never move backwards, crashes included.
			{Phase: "ver", Series: "monotone-violations", Paper: 0, AbsTol: 0.1},
			// No window anywhere mixed old and new entitlements.
			{Phase: "windows", Series: "mixed-version", Paper: 0, AbsTol: 0.1},
			// Zero settled under-floor windows before the chaos and after
			// both restarts converged.
			{Phase: "initial", Series: "A-under-floor", Paper: 0, AbsTol: 0.1},
			{Phase: "initial", Series: "B-under-floor", Paper: 0, AbsTol: 0.1},
			{Phase: "recovered", Series: "A-under-floor", Paper: 0, AbsTol: 0.1},
			{Phase: "recovered", Series: "B-under-floor", Paper: 0, AbsTol: 0.1},
			// Bit-identical replay: same digests across two full runs.
			{Phase: "replay", Series: "identical", Paper: 1, AbsTol: 0.01},
		},
		Notes: []string{
			"r2 killed 0.5 s before the renegotiation exists, r0 (root) killed 0.7 s after publishing it",
			"both restart >128 windows later from their persist stores: credit, estimate, window seq, set",
			fmt.Sprintf("tree reconfigurations across the run: %d; restarts rejoin via the tree handshake",
				sm.Reconfigurations),
			"the control-plane host persists each accepted set at publish time, so the root crash loses nothing",
		},
	}
	return res, nil
}
