package experiments

import (
	"time"

	"repro/internal/agreement"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Fig9 reproduces "Sharing Agreements in a Community Context" (Layer-4):
// A and B each own a 320 req/s server; B shares its server with A under a
// [0.5, 0.5] agreement. Client machines generate 400 req/s each (no proxy
// at Layer 4). A's client count steps 2 → 0 → 1 → 0.
func Fig9() (*Result, error) {
	s := agreement.New()
	a := s.MustAddPrincipal("A", 320)
	b := s.MustAddPrincipal("B", 320)
	s.MustSetAgreement(b, a, 0.5, 0.5)

	eng, err := core.NewEngine(core.Config{
		Mode:           core.Community,
		System:         s,
		NumRedirectors: 1,
	})
	if err != nil {
		return nil, err
	}
	sm, err := sim.New(sim.Config{
		Engine:      eng,
		Redirectors: 1,
		Servers: []sim.ServerSpec{
			{Owner: a, Capacity: 320, Count: 1},
			{Owner: b, Capacity: 320, Count: 1},
		},
		Names:      []string{"A", "B"},
		MaxBacklog: 160,
	})
	if err != nil {
		return nil, err
	}

	a1 := sm.NewClient(0, workload.Config{Principal: int(a), Rate: workload.RateL4})
	a2 := sm.NewClient(0, workload.Config{Principal: int(a), Rate: workload.RateL4})
	b1 := sm.NewClient(0, workload.Config{Principal: int(b), Rate: workload.RateL4})

	a1.SetActive(true)
	a2.SetActive(true)
	b1.SetActive(true)
	sm.At(60*time.Second, func() { a1.SetActive(false); a2.SetActive(false) })
	sm.At(120*time.Second, func() { a1.SetActive(true) })
	sm.At(180*time.Second, func() { a1.SetActive(false) })
	sm.Run(240 * time.Second)

	res := &Result{
		ID:       "fig9",
		Title:    "L4: community agreements respected when both own servers",
		Recorder: sm.Recorder,
		Phases: []metrics.Phase{
			trim("phase1", 0, 60*time.Second, settle),
			trim("phase2", 60*time.Second, 120*time.Second, settle),
			trim("phase3", 120*time.Second, 180*time.Second, settle),
			trim("phase4", 180*time.Second, 240*time.Second, settle),
		},
		Expected: []Expectation{
			// A uses its own server plus half of B's: 480; B keeps 160.
			{Phase: "phase1", Series: "A", Paper: 480},
			{Phase: "phase1", Series: "B", Paper: 160},
			// A idle: B reclaims its full server.
			{Phase: "phase2", Series: "A", Paper: 0},
			{Phase: "phase2", Series: "B", Paper: 320},
			// A back with one client (400 req/s < its 480 entitlement):
			// B's server only carries A's overflow of 80.
			{Phase: "phase3", Series: "A", Paper: 400},
			{Phase: "phase3", Series: "B", Paper: 240},
			{Phase: "phase4", Series: "B", Paper: 320},
		},
		Notes: []string{"paper Figure 9; client rate 400 req/s (raw WebBench)"},
	}
	return res, nil
}

// Fig10 reproduces "Maximization of Service Provider Income" (Layer-4):
// a provider with two 320 req/s servers, customers A [0.8,1] and B [0.2,1],
// with A paying more per optional request. A's client count steps
// 2 → 0 → 1 → 0 while B keeps one client.
func Fig10() (*Result, error) {
	s := agreement.New()
	sp := s.MustAddPrincipal("S", 640)
	a := s.MustAddPrincipal("A", 0)
	b := s.MustAddPrincipal("B", 0)
	s.MustSetAgreement(sp, a, 0.8, 1)
	s.MustSetAgreement(sp, b, 0.2, 1)

	eng, err := core.NewEngine(core.Config{
		Mode:              core.Provider,
		System:            s,
		ProviderPrincipal: sp,
		NumRedirectors:    1,
		Prices:            map[agreement.Principal]float64{a: 2, b: 1},
	})
	if err != nil {
		return nil, err
	}
	sm, err := sim.New(sim.Config{
		Engine:      eng,
		Redirectors: 1,
		Servers:     []sim.ServerSpec{{Owner: sp, Capacity: 320, Count: 2}},
		Names:       []string{"S", "A", "B"},
		MaxBacklog:  160,
	})
	if err != nil {
		return nil, err
	}

	a1 := sm.NewClient(0, workload.Config{Principal: int(a), Rate: workload.RateL4})
	a2 := sm.NewClient(0, workload.Config{Principal: int(a), Rate: workload.RateL4})
	b1 := sm.NewClient(0, workload.Config{Principal: int(b), Rate: workload.RateL4})

	a1.SetActive(true)
	a2.SetActive(true)
	b1.SetActive(true)
	sm.At(60*time.Second, func() { a1.SetActive(false); a2.SetActive(false) })
	sm.At(120*time.Second, func() { a1.SetActive(true) })
	sm.At(180*time.Second, func() { a1.SetActive(false) })
	sm.Run(240 * time.Second)

	res := &Result{
		ID:       "fig10",
		Title:    "L4: provider income maximized, agreements respected",
		Recorder: sm.Recorder,
		Phases: []metrics.Phase{
			trim("phase1", 0, 60*time.Second, settle),
			trim("phase2", 60*time.Second, 120*time.Second, settle),
			trim("phase3", 120*time.Second, 180*time.Second, settle),
			trim("phase4", 180*time.Second, 240*time.Second, settle),
		},
		Expected: []Expectation{
			// B pinned to its 20% mandatory (128); top payer A takes the rest.
			{Phase: "phase1", Series: "A", Paper: 512},
			{Phase: "phase1", Series: "B", Paper: 128},
			// A idle: all of B's demand (one 400 req/s client) is served.
			{Phase: "phase2", Series: "B", Paper: 400},
			// A with one client gets first preference; B takes the remainder.
			{Phase: "phase3", Series: "A", Paper: 400},
			{Phase: "phase3", Series: "B", Paper: 240},
			{Phase: "phase4", Series: "B", Paper: 400},
		},
		Notes: []string{"paper Figure 10; price(A) > price(B)"},
	}
	return res, nil
}
