// Package experiments contains runnable reproductions of every figure in
// the paper's evaluation (Figures 6–10), the two analytic figures (1, 3),
// and two ablations the paper describes in prose (explicit-vs-implicit
// queuing, combining tree vs pairwise exchange).
//
// Each experiment returns a Result carrying the measured time series, the
// phase means, and the paper's expected values, so callers (tests, the
// benchmark harness, cmd/experiment) can print paper-vs-measured tables and
// check shapes mechanically.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/metrics"
)

// Expectation is one paper data point: the mean rate of a series during a
// phase (or a named scalar for analytic experiments).
type Expectation struct {
	// Phase names the interval (must match a Result.Phases entry), or is
	// the key prefix for Values-based experiments.
	Phase string
	// Series is the principal/series name.
	Series string
	// Paper is the value read off the paper's figure.
	Paper float64
	// RelTol is the acceptable relative deviation (default 0.10).
	RelTol float64
	// AbsTol is the acceptable absolute deviation used when Paper is small
	// (default 5).
	AbsTol float64
}

// Result is the outcome of one experiment run.
type Result struct {
	ID    string
	Title string

	// Recorder holds per-second rate series for figure experiments (nil
	// for analytic experiments).
	Recorder *metrics.Recorder
	// Phases are the assertable measurement intervals (transition edges
	// already trimmed).
	Phases []metrics.Phase

	// Values holds scalar results for analytic experiments, keyed
	// "series@phase".
	Values map[string]float64

	Expected []Expectation
	Notes    []string
}

// Measured returns the measured value for an expectation's (phase, series).
func (r *Result) Measured(phase, series string) (float64, bool) {
	if v, ok := r.Values[series+"@"+phase]; ok {
		return v, true
	}
	if r.Recorder == nil {
		return 0, false
	}
	var ph *metrics.Phase
	for i := range r.Phases {
		if r.Phases[i].Name == phase {
			ph = &r.Phases[i]
			break
		}
	}
	if ph == nil {
		return 0, false
	}
	for i := 0; i < r.Recorder.NumSeries(); i++ {
		if r.Recorder.Name(i) == series {
			return r.Recorder.MeanRateBetween(i, ph.From, ph.To), true
		}
	}
	return 0, false
}

// Violations compares every expectation against the measurement and returns
// human-readable mismatches (empty means the reproduction matches the
// paper's shape).
func (r *Result) Violations() []string {
	var out []string
	for _, e := range r.Expected {
		got, ok := r.Measured(e.Phase, e.Series)
		if !ok {
			out = append(out, fmt.Sprintf("%s/%s: no measurement", e.Phase, e.Series))
			continue
		}
		relTol := e.RelTol
		if relTol == 0 {
			relTol = 0.10
		}
		absTol := e.AbsTol
		if absTol == 0 {
			absTol = 5
		}
		diff := math.Abs(got - e.Paper)
		if diff > absTol && diff > relTol*math.Abs(e.Paper) {
			out = append(out, fmt.Sprintf("%s/%s: paper %.1f, measured %.1f",
				e.Phase, e.Series, e.Paper, got))
		}
	}
	return out
}

// Summary renders a paper-vs-measured table for EXPERIMENTS.md and the
// cmd/experiment output.
func (r *Result) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)
	for _, e := range r.Expected {
		got, _ := r.Measured(e.Phase, e.Series)
		fmt.Fprintf(&sb, "  %-12s %-10s paper %8.1f   measured %8.1f\n",
			e.Phase, e.Series, e.Paper, got)
	}
	if extra := r.unexpectedValues(); len(extra) > 0 {
		for _, k := range extra {
			fmt.Fprintf(&sb, "  %-23s measured %8.1f\n", k, r.Values[k])
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "  note: %s\n", n)
	}
	if v := r.Violations(); len(v) > 0 {
		for _, s := range v {
			fmt.Fprintf(&sb, "  MISMATCH: %s\n", s)
		}
	} else {
		sb.WriteString("  shape: OK\n")
	}
	return sb.String()
}

// unexpectedValues lists Values keys not covered by an expectation, sorted.
func (r *Result) unexpectedValues() []string {
	covered := make(map[string]bool)
	for _, e := range r.Expected {
		covered[e.Series+"@"+e.Phase] = true
	}
	var out []string
	for k := range r.Values {
		if !covered[k] {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Runner produces a Result; experiments are pure functions of their seed
// configuration, so repeated runs are identical.
type Runner func() (*Result, error)

// registry maps experiment ids to runners, in presentation order.
var registry = []struct {
	id     string
	runner Runner
}{
	{"fig1", Fig1},
	{"fig3", Fig3},
	{"fig6", Fig6},
	{"fig7", Fig7},
	{"fig8", Fig8},
	{"fig9", Fig9},
	{"fig10", Fig10},
	{"abl-queue", AblationQueuing},
	{"abl-tree", AblationTree},
	{"abl-window", AblationWindowSize},
	{"abl-conservative", AblationConservativeFallback},
	{"ext-hier", ExtHierPlane},
	{"ext-resell", ExtReselling},
	{"ext-local", ExtLocality},
	{"ext-dynamic", ExtDynamicCapacity},
	{"ext-failover", ExtFailover},
	{"ext-chaos", ExtChaos},
	{"ext-reconfig", ExtReconfig},
	{"ext-soak", ExtSoak},
	{"ext-budget", ExtBudget},
}

// IDs lists all experiment identifiers in order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.id
	}
	return out
}

// Run executes the experiment with the given id.
func Run(id string) (*Result, error) {
	for _, e := range registry {
		if e.id == id {
			return e.runner()
		}
	}
	return nil, fmt.Errorf("experiments: unknown id %q (have %s)", id, strings.Join(IDs(), ", "))
}

// trim returns a phase whose mean excludes settle seconds at the start and
// one second at the end — EWMA warm-up and tree lag.
func trim(name string, from, to, settle time.Duration) metrics.Phase {
	return metrics.Phase{Name: name, From: from + settle, To: to - time.Second}
}
