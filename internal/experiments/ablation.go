package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/combining"
	"repro/internal/simnet"
	"repro/internal/vclock"
	"repro/internal/window"
)

// AblationQueuing reproduces the §4.1 anomaly: the paper's first Layer-7
// implementation queued requests explicitly and released them at window
// boundaries, which bunches the requests of closed-loop clients and
// depresses server throughput; the credit-based implicit scheme forwards
// within-quota requests immediately and stays linear until the server
// saturates at 320 req/s.
//
// The experiment drives one 320 req/s server with T closed-loop client
// threads (think time 100 ms) under both admission mechanisms and reports
// steady-state throughput per thread count.
func AblationQueuing() (*Result, error) {
	threadCounts := []int{8, 16, 32, 48, 64}
	res := &Result{
		ID:     "abl-queue",
		Title:  "Explicit window queuing vs implicit (credit) forwarding",
		Values: map[string]float64{},
		Notes: []string{
			"closed-loop clients, think time 100 ms, one 320 req/s server, 100 ms windows",
			"explicit queuing bunches requests and lowers the throughput slope; the",
			"implicit credit scheme is the paper's fix (\"server processing rates",
			"linearly increase with client activity until the server saturates at 320\")",
		},
	}
	for _, tc := range threadCounts {
		imp := runQueueMode(false, tc)
		exp := runQueueMode(true, tc)
		res.Values[fmt.Sprintf("implicit@T=%d", tc)] = imp
		res.Values[fmt.Sprintf("explicit@T=%d", tc)] = exp
	}
	res.Expected = []Expectation{
		// Implicit: linear at ≈ T/(think+service) until saturation at 320.
		{Phase: "T=16", Series: "implicit", Paper: 155, RelTol: 0.10},
		{Phase: "T=32", Series: "implicit", Paper: 310, RelTol: 0.10},
		{Phase: "T=64", Series: "implicit", Paper: 320, RelTol: 0.05},
		// Explicit: roughly one request per thread per two windows.
		{Phase: "T=32", Series: "explicit", Paper: 160, RelTol: 0.30},
	}
	return res, nil
}

// runQueueMode measures steady-state throughput (req/s) of T closed-loop
// threads against one server under the chosen admission mechanism.
func runQueueMode(explicit bool, threads int) float64 {
	const (
		capacity = 320.0
		think    = 100 * time.Millisecond
		windowD  = 100 * time.Millisecond
		warmup   = 10 * time.Second
		measure  = 10 * time.Second
	)
	clock := vclock.New()
	completedInWindow := 0
	var srv *cluster.Server
	var submit func()

	srv = cluster.NewServer("s", clock, capacity, 1<<30, func(req cluster.Request, at time.Duration) {
		if at >= warmup {
			completedInWindow++
		}
		clock.Schedule(think, submit)
	})

	eq := window.NewExplicitQueue(1)
	if explicit {
		clock.ScheduleEvery(windowD, func() {
			// No contention: the whole window quota is the server capacity.
			eq.Release([]float64{capacity * windowD.Seconds()})
		})
	}
	submit = func() {
		if explicit {
			eq.Enqueue(0, func() { srv.Offer(cluster.Request{}) })
		} else {
			srv.Offer(cluster.Request{})
		}
	}
	for i := 0; i < threads; i++ {
		clock.Schedule(time.Duration(i)*time.Millisecond, submit)
	}
	clock.RunUntil(warmup + measure)
	return float64(completedInWindow) / measure.Seconds()
}

// AblationTree verifies the paper's coordination-cost claim: a combining
// tree needs 2(n−1) messages per epoch versus n(n−1) for pairwise exchange.
func AblationTree() (*Result, error) {
	res := &Result{
		ID:     "abl-tree",
		Title:  "Combining tree vs pairwise exchange message cost",
		Values: map[string]float64{},
		Notes:  []string{"one aggregation epoch; the paper's 2(n−1) vs O(n²) claim"},
	}
	for _, n := range []int{4, 16, 64} {
		res.Values[fmt.Sprintf("tree@n=%d", n)] = float64(treeMessages(n))
		res.Values[fmt.Sprintf("pairwise@n=%d", n)] = float64(pairwiseMessages(n))
		res.Expected = append(res.Expected,
			Expectation{Phase: fmt.Sprintf("n=%d", n), Series: "tree", Paper: float64(2 * (n - 1)), AbsTol: 0.01},
			Expectation{Phase: fmt.Sprintf("n=%d", n), Series: "pairwise", Paper: float64(n * (n - 1)), AbsTol: 0.01},
		)
	}
	return res, nil
}

func treeMessages(n int) int {
	clock := vclock.New()
	net := simnet.New(clock, 0)
	ids := make([]combining.NodeID, n)
	for i := range ids {
		ids[i] = combining.NodeID(i)
	}
	topo := combining.BuildTree(ids, 2)
	nodes := make(map[combining.NodeID]*combining.Node, n)
	for _, id := range ids {
		id := id
		nodes[id] = combining.NewBuilder(id).Place(topo).Principals(1).
			Transport(func(to combining.NodeID, msg interface{}) {
				net.Send(simnet.NodeID(id), simnet.NodeID(to), msg)
			}).Clock(clock.Now).Build()
		net.Handle(simnet.NodeID(id), func(from simnet.NodeID, msg interface{}) {
			nodes[id].OnMessage(combining.NodeID(from), msg)
		})
	}
	// Drive one full epoch leaves-first so every report reaches the root
	// and the broadcast reaches every leaf.
	order := make([][]combining.NodeID, topo.Depth()+1)
	for _, id := range ids {
		d := 0
		for at := id; topo.Parent[at] >= 0; at = topo.Parent[at] {
			d++
		}
		order[d] = append(order[d], id)
	}
	for d := len(order) - 1; d >= 0; d-- {
		for _, id := range order[d] {
			nodes[id].Tick()
		}
		clock.RunFor(0)
	}
	clock.RunFor(time.Millisecond)
	return net.Sent
}

func pairwiseMessages(n int) int {
	clock := vclock.New()
	net := simnet.New(clock, 0)
	peers := make([]combining.NodeID, n)
	for i := range peers {
		peers[i] = combining.NodeID(i)
	}
	for i := 0; i < n; i++ {
		i := i
		ex := combining.NewPairwiseExchanger(combining.NodeID(i), peers, 1,
			func(to combining.NodeID, msg interface{}) {
				net.Send(simnet.NodeID(i), simnet.NodeID(to), msg)
			})
		ex.Tick()
	}
	clock.RunFor(time.Millisecond)
	return net.Sent
}
