package experiments

import (
	"time"

	"repro/internal/agreement"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ExtChaos is the deterministic chaos experiment: a seeded fault schedule
// kills one of provider S's two servers mid-run, the §2.2 capacity
// re-interpretation shrinks every entitlement to the surviving hardware, and
// the enforcement plane re-converges to the reduced split — then returns to
// the original split when the server restarts. The run is audited: after a
// settling period in each phase, no window may serve a principal below its
// (re-interpreted) mandatory floor.
//
// S sells 400 req/s: A holds [0.8, 1.0] (mandatory 320), B holds [0.2, 1.0]
// (mandatory 80). The capacity lives on two 200 req/s servers; crashing
// S-srv1 at t=60 s halves the effective capacity, so the recomputed floors
// are A 160 / B 40, and the restart at t=120 s restores 320 / 80. (The
// numbers are chosen so the 100 ms windows carry integral floors — 32/8
// full, 16/4 degraded — letting the audit demand exactly zero under-floor
// windows once converged, with no credit-carry quantization noise.)
func ExtChaos() (*Result, error) {
	s := agreement.New()
	sp := s.MustAddPrincipal("S", 400)
	a := s.MustAddPrincipal("A", 0)
	b := s.MustAddPrincipal("B", 0)
	s.MustSetAgreement(sp, a, 0.8, 1)
	s.MustSetAgreement(sp, b, 0.2, 1)

	eng, err := core.NewEngine(core.Config{
		Mode:              core.Provider,
		System:            s,
		ProviderPrincipal: sp,
		NumRedirectors:    2,
	})
	if err != nil {
		return nil, err
	}
	sm, err := sim.New(sim.Config{
		Engine:      eng,
		Redirectors: 2,
		Servers:     []sim.ServerSpec{{Owner: sp, Capacity: 200, Count: 2}},
		Names:       []string{"S", "A", "B"},
		MaxBacklog:  200,
		TraceDepth:  -1,
	})
	if err != nil {
		return nil, err
	}
	reint := sm.EnableCapacityReinterpretation()
	for _, o := range sm.Observers {
		o.SetHealthInfo(reint.Degraded)
	}
	sm.NewClient(0, workload.Config{Principal: int(a), Rate: 600}).SetActive(true)
	sm.NewClient(1, workload.Config{Principal: int(b), Rate: 200}).SetActive(true)

	// The fault plan is seeded and explicit: replaying it reproduces the run
	// bit-for-bit.
	plan := fault.NewSchedule(42).
		CrashBackend(60*time.Second, "S-srv1").
		RestartBackend(120*time.Second, "S-srv1")
	sm.InjectFaults(plan, fault.Hooks{})

	// Freeze the under-floor counters once each post-fault phase has had
	// settle time to converge; any increment after that is an enforcement
	// violation against the re-interpreted floors.
	type snap struct{ a, b int64 }
	var atConverged, atDegradedEnd, atRestConverged, atEnd snap
	take := func(dst *snap) func() {
		return func() { dst.a, dst.b = sm.Auditor.UnderMC(int(a)), sm.Auditor.UnderMC(int(b)) }
	}
	sm.At(60*time.Second+2*settle, take(&atConverged))
	sm.At(119*time.Second, take(&atDegradedEnd))
	sm.At(120*time.Second+2*settle, take(&atRestConverged))

	sm.Run(180 * time.Second)
	take(&atEnd)()

	degTrans, recTrans := reint.Transitions()
	res := &Result{
		ID:       "ext-chaos",
		Title:    "Chaos: backend crash, capacity re-interpretation, recovery",
		Recorder: sm.Recorder,
		Phases: []metrics.Phase{
			trim("full", 0, 60*time.Second, settle),
			trim("degraded", 60*time.Second, 120*time.Second, settle),
			trim("restored", 120*time.Second, 180*time.Second, settle),
		},
		Values: map[string]float64{
			"degraded-transitions@plane":  float64(degTrans),
			"recovered-transitions@plane": float64(recTrans),
			"degraded-windows@plane":      float64(sm.Auditor.Degraded()),
			"A-under-floor@converged":     float64(atDegradedEnd.a - atConverged.a),
			"B-under-floor@converged":     float64(atDegradedEnd.b - atConverged.b),
			"A-under-floor@reconverged":   float64(atEnd.a - atRestConverged.a),
			"B-under-floor@reconverged":   float64(atEnd.b - atRestConverged.b),
		},
		Expected: []Expectation{
			{Phase: "full", Series: "A", Paper: 320},
			{Phase: "full", Series: "B", Paper: 80},
			// One of two 200 req/s servers down: floors re-interpret to half.
			{Phase: "degraded", Series: "A", Paper: 160},
			{Phase: "degraded", Series: "B", Paper: 40},
			{Phase: "restored", Series: "A", Paper: 320},
			{Phase: "restored", Series: "B", Paper: 80},
			{Phase: "plane", Series: "degraded-transitions", Paper: 1, AbsTol: 0.1},
			{Phase: "plane", Series: "recovered-transitions", Paper: 1, AbsTol: 0.1},
			// Converged enforcement: zero windows below the recomputed floor.
			{Phase: "converged", Series: "A-under-floor", Paper: 0, AbsTol: 0.1},
			{Phase: "converged", Series: "B-under-floor", Paper: 0, AbsTol: 0.1},
			{Phase: "reconverged", Series: "A-under-floor", Paper: 0, AbsTol: 0.1},
			{Phase: "reconverged", Series: "B-under-floor", Paper: 0, AbsTol: 0.1},
		},
		Notes: []string{
			"fault plan (seed 42): crash S-srv1 @60 s, restart @120 s — replayable bit-for-bit",
			"entitlements re-interpret automatically: no renegotiation, no restart",
		},
	}
	return res, nil
}
