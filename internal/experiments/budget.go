package experiments

import (
	"fmt"
	"hash/fnv"
	"math"
	"time"

	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// budgetLead is the rollout gate lead used by ext-budget. Lease grant and
// revocation ride the same epoch-gated rollout as any renegotiation, so the
// reclaim bound is lead+1 windows: the capacity change is staged behind an
// epoch gate of lead windows and every redirector swaps at the next window
// boundary past it.
const budgetLead = 2

// budgetOutcome is everything one ext-budget run produces: the figure data,
// the owner's published capacity sampled one reclaim bound after the grant
// and after the revocation, the under-floor checkpoints, and a digest for
// the replay check.
type budgetOutcome struct {
	sm *sim.Sim
	// S's published capacity sampled reclaim-bound windows after the grant
	// (must be nominal minus the leased rate) and after the revocation
	// (must be nominal again).
	capAfterGrant, capAfterRevoke float64
	reclaimBound                  int
	leaseVersion                  uint64
	// Under-floor counters: every phase's count is a delta from its own
	// settled mark, so EWMA warm-up and rollout transients are excluded.
	warmA1, warmA2, warmB                            int64
	burstA1, burstA2, burstB                         int64
	leasedMarkA1, leasedMarkA2, leasedMarkB          int64
	leasedA1, leasedA2, leasedB                      int64
	reclaimedMarkA1, reclaimedMarkA2, reclaimedMarkB int64
	digest                                           uint64
}

// runBudget executes one deterministic hierarchical-budget run. Provider S
// (160 req/s) delegates through a budget tree compiled by internal/budget:
// team T1 holds [0.5, 1] and splits it between services A1 and A2 ([0.5, 1]
// each — 40 req/s floors), tenant B holds [0.25, 1] (40 floor), and S keeps
// the last quarter unallocated. C is a principal with no standing agreement
// — a batch tenant that can only run on leased capacity.
//
// Phase 1 (0–40 s): A1 bursts to 300 req/s while A2 sits at its floor and B
// under it; A1 borrows every idle share but cannot push A2 under 40. At
// t=40 s the control plane grants C a 40 req/s lease out of S's unallocated
// quarter and C starts long-lived work; the set-aside rolls out within the
// reclaim bound and C runs entirely on lease credit. At t=80 s the lease is
// revoked mid-run: C's credit vanishes, S's published capacity is restored
// within reclaim-bound windows, and A1 re-absorbs the idle share.
func runBudget() (*budgetOutcome, error) {
	spec := budget.Spec{Roots: []budget.Node{{
		Name: "S", Capacity: 160,
		Children: []budget.Node{
			{Name: "T1", Floor: 0.5, Ceil: 1, Children: []budget.Node{
				{Name: "A1", Floor: 0.5, Ceil: 1},
				{Name: "A2", Floor: 0.5, Ceil: 1},
			}},
			{Name: "B", Floor: 0.25, Ceil: 1},
		},
	}}}
	s, err := budget.Compile(spec)
	if err != nil {
		return nil, err
	}
	c := s.MustAddPrincipal("C", 0)
	sp, _ := s.Lookup("S")
	a1, _ := s.Lookup("A1")
	a2, _ := s.Lookup("A2")
	b, _ := s.Lookup("B")

	eng, err := core.NewEngine(core.Config{
		Mode:              core.Provider,
		System:            s,
		ProviderPrincipal: sp,
		NumRedirectors:    2,
	})
	if err != nil {
		return nil, err
	}
	sm, err := sim.New(sim.Config{
		Engine:      eng,
		Redirectors: 2,
		Servers:     []sim.ServerSpec{{Owner: sp, Capacity: 80, Count: 2}},
		Names:       []string{"S", "T1", "A1", "A2", "B", "C"},
		MaxBacklog:  200,
		TraceDepth:  -1,
	})
	if err != nil {
		return nil, err
	}
	plane, err := sm.EnableControlPlane(budgetLead)
	if err != nil {
		return nil, err
	}
	sm.NewClient(0, workload.Config{Principal: int(a1), Rate: 300}).SetActive(true)
	sm.NewClient(1, workload.Config{Principal: int(a2), Rate: 40}).SetActive(true)
	sm.NewClient(0, workload.Config{Principal: int(b), Rate: 30}).SetActive(true)
	batch := sm.NewClient(1, workload.Config{Principal: int(c), Rate: 40})

	out := &budgetOutcome{sm: sm, reclaimBound: plane.ReclaimBound()}
	window := eng.Window()
	bound := time.Duration(out.reclaimBound) * window

	var leaseID budget.LeaseID
	sm.At(settle, func() {
		out.warmA1 = sm.Auditor.UnderMC(int(a1))
		out.warmA2 = sm.Auditor.UnderMC(int(a2))
		out.warmB = sm.Auditor.UnderMC(int(b))
	})
	sm.At(39*time.Second, func() {
		out.burstA1 = sm.Auditor.UnderMC(int(a1)) - out.warmA1
		out.burstA2 = sm.Auditor.UnderMC(int(a2)) - out.warmA2
		out.burstB = sm.Auditor.UnderMC(int(b)) - out.warmB
	})
	// The grant: C leases 30 req/s of S's capacity over the same API an
	// operator would hit (Plane.GrantLease is what POST /v1/leases calls),
	// and starts its long-lived work on the leased credit.
	sm.At(40*time.Second, func() {
		ls, err := plane.GrantLease("S", "C", 40, 0)
		if err != nil {
			panic(fmt.Sprintf("ext-budget: grant rejected: %v", err))
		}
		leaseID = ls.ID
		batch.SetActive(true)
	})
	// One reclaim bound past the grant, the set-aside has rolled out.
	sm.At(40*time.Second+bound+window/2, func() {
		out.capAfterGrant = eng.Capacities()[sp]
	})
	sm.At(40*time.Second+2*settle, func() {
		out.leasedMarkA1 = sm.Auditor.UnderMC(int(a1))
		out.leasedMarkA2 = sm.Auditor.UnderMC(int(a2))
		out.leasedMarkB = sm.Auditor.UnderMC(int(b))
	})
	sm.At(79*time.Second, func() {
		out.leasedA1 = sm.Auditor.UnderMC(int(a1)) - out.leasedMarkA1
		out.leasedA2 = sm.Auditor.UnderMC(int(a2)) - out.leasedMarkA2
		out.leasedB = sm.Auditor.UnderMC(int(b)) - out.leasedMarkB
	})
	// The mid-run revocation. C keeps demanding; without credit its work is
	// cut off and the capacity flows back to the agreement plane.
	sm.At(80*time.Second, func() {
		if _, err := plane.RevokeLease(leaseID); err != nil {
			panic(fmt.Sprintf("ext-budget: revoke rejected: %v", err))
		}
	})
	sm.At(80*time.Second+bound+window/2, func() {
		out.capAfterRevoke = eng.Capacities()[sp]
	})
	sm.At(80*time.Second+2*settle, func() {
		out.reclaimedMarkA1 = sm.Auditor.UnderMC(int(a1))
		out.reclaimedMarkA2 = sm.Auditor.UnderMC(int(a2))
		out.reclaimedMarkB = sm.Auditor.UnderMC(int(b))
	})

	sm.Run(120 * time.Second)
	out.leaseVersion = plane.LeaseTable().Version
	out.digest = budgetDigest(out)
	return out, nil
}

// budgetDigest folds every per-second rate sample, the auditor's
// conformance counters, and the lease plane's observable state into one
// FNV-1a hash: two runs are bit-identical iff their digests match.
func budgetDigest(out *budgetOutcome) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		_, _ = h.Write(buf[:])
	}
	rec := out.sm.Recorder
	for i := 0; i < rec.NumSeries(); i++ {
		for _, v := range rec.Series(i) {
			put(math.Float64bits(v))
		}
	}
	for i := 0; i < rec.NumSeries(); i++ {
		put(uint64(out.sm.Auditor.UnderMC(i)))
		put(uint64(out.sm.Auditor.OverUB(i)))
	}
	put(uint64(out.sm.Auditor.Windows()))
	put(uint64(out.sm.Auditor.MixedVersion()))
	put(math.Float64bits(out.capAfterGrant))
	put(math.Float64bits(out.capAfterRevoke))
	put(out.leaseVersion)
	return h.Sum64()
}

// ExtBudget is the hierarchical-budget experiment: entitlements fold down a
// declarative org→team→service budget tree (internal/budget) instead of a
// flat agreement list, and a lease carries capacity to a principal with no
// standing agreement. A1's 300 req/s burst soaks every idle share but a
// settled window never serves sibling A2 (or tenant B) under its floor; a
// mid-run 40 req/s lease to batch tenant C sets the rate aside out of S's
// published capacity within reclaim-bound windows and C runs on lease
// credit alone; revocation cuts C off and restores S's capacity within the
// same bound. The whole run replays bit-identically: the experiment
// executes twice and compares digests.
func ExtBudget() (*Result, error) {
	first, err := runBudget()
	if err != nil {
		return nil, err
	}
	second, err := runBudget()
	if err != nil {
		return nil, err
	}
	replayIdentical := 0.0
	if first.digest == second.digest {
		replayIdentical = 1.0
	}
	sm := first.sm
	aud := sm.Auditor
	res := &Result{
		ID:       "ext-budget",
		Title:    "Hierarchical budgets: tree floors under burst, lease grant and reclaim",
		Recorder: sm.Recorder,
		Phases: []metrics.Phase{
			trim("burst", 0, 40*time.Second, settle),
			trim("leased", 40*time.Second, 80*time.Second, settle),
			trim("reclaimed", 80*time.Second, 120*time.Second, settle),
		},
		Values: map[string]float64{
			"set-aside@capacity":       first.capAfterGrant,
			"restored@capacity":        first.capAfterRevoke,
			"bound@reclaim":            float64(first.reclaimBound),
			"version@leases":           float64(first.leaseVersion),
			"mixed-version@windows":    float64(aud.MixedVersion()),
			"A1-under-floor@burst":     float64(first.burstA1),
			"A2-under-floor@burst":     float64(first.burstA2),
			"B-under-floor@burst":      float64(first.burstB),
			"A1-under-floor@leased":    float64(first.leasedA1),
			"A2-under-floor@leased":    float64(first.leasedA2),
			"B-under-floor@leased":     float64(first.leasedB),
			"A1-under-floor@reclaimed": float64(aud.UnderMC(2) - first.reclaimedMarkA1),
			"A2-under-floor@reclaimed": float64(aud.UnderMC(3) - first.reclaimedMarkA2),
			"B-under-floor@reclaimed":  float64(aud.UnderMC(4) - first.reclaimedMarkB),
			"identical@replay":         replayIdentical,
		},
		Expected: []Expectation{
			// Tree floors: A1 = A2 = 160·0.5·0.5 = 40, B = 160·0.25 = 40,
			// S keeps the last 40 unallocated. A1's burst takes its floor
			// plus every idle share (S's 40, B's 10): 90. A2 holds its
			// floor exactly; B is served its full sub-floor demand.
			{Phase: "burst", Series: "A1", Paper: 90},
			{Phase: "burst", Series: "A2", Paper: 40},
			{Phase: "burst", Series: "B", Paper: 30},
			{Phase: "burst", Series: "C", Paper: 0, AbsTol: 2},
			// Leased: C runs 40 req/s purely on lease credit; the set-aside
			// shrinks the tree's published floors to 3/4 (30 each) and the
			// window LP hands the optional surplus to the burst, so A2
			// settles at its shrunken floor and A1 at 60.
			{Phase: "leased", Series: "C", Paper: 40},
			{Phase: "leased", Series: "B", Paper: 30},
			{Phase: "leased", Series: "A2", Paper: 30},
			{Phase: "leased", Series: "A1", Paper: 60},
			// Reclaimed: revocation cuts C off mid-demand and A1 re-absorbs
			// the freed share.
			{Phase: "reclaimed", Series: "A1", Paper: 90},
			{Phase: "reclaimed", Series: "A2", Paper: 40},
			{Phase: "reclaimed", Series: "B", Paper: 30},
			{Phase: "reclaimed", Series: "C", Paper: 0, AbsTol: 2},
			// The set-aside and the reclaim both land within reclaim-bound
			// windows of the mutation.
			{Phase: "capacity", Series: "set-aside", Paper: 120, AbsTol: 0.1},
			{Phase: "capacity", Series: "restored", Paper: 160, AbsTol: 0.1},
			{Phase: "reclaim", Series: "bound", Paper: float64(budgetLead + 1), AbsTol: 0.1},
			{Phase: "leases", Series: "version", Paper: 2, AbsTol: 0.1},
			// No window anywhere mixed configuration versions, and no
			// settled window served a tree principal under its floor.
			{Phase: "windows", Series: "mixed-version", Paper: 0, AbsTol: 0.1},
			{Phase: "burst", Series: "A1-under-floor", Paper: 0, AbsTol: 0.1},
			{Phase: "burst", Series: "A2-under-floor", Paper: 0, AbsTol: 0.1},
			{Phase: "burst", Series: "B-under-floor", Paper: 0, AbsTol: 0.1},
			{Phase: "leased", Series: "A1-under-floor", Paper: 0, AbsTol: 0.1},
			{Phase: "leased", Series: "A2-under-floor", Paper: 0, AbsTol: 0.1},
			{Phase: "leased", Series: "B-under-floor", Paper: 0, AbsTol: 0.1},
			{Phase: "reclaimed", Series: "A1-under-floor", Paper: 0, AbsTol: 0.1},
			{Phase: "reclaimed", Series: "A2-under-floor", Paper: 0, AbsTol: 0.1},
			{Phase: "reclaimed", Series: "B-under-floor", Paper: 0, AbsTol: 0.1},
			// Bit-identical replay: same digests across two full runs.
			{Phase: "replay", Series: "identical", Paper: 1, AbsTol: 0.01},
		},
		Notes: []string{
			"budget tree S(160) → {T1[0.5]{A1[0.5], A2[0.5]}, B[0.25]}; floors A1=A2=B=40, S keeps 40",
			fmt.Sprintf("lease mutations ride the epoch-gated rollout: reclaim bound %d windows (lead %d + 1)",
				first.reclaimBound, budgetLead),
			"C holds no agreement — every request it runs mid-lease is admitted on lease credit alone",
		},
	}
	return res, nil
}
