package experiments

import (
	"math"
	"time"

	"repro/internal/agreement"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ExtReselling exercises the hierarchical agreement model of §2.1 (the
// sub-ASP reselling case the paper says its techniques "naturally extend
// to"): ASP S (400 req/s) grants sub-ASP M [0.5, 0.8] of its resources; M
// resells [0.4, 0.6] of its currency to each of its customers X and Y.
//
// The flow computation gives X and Y a guaranteed 0.4·(0.5·400) = 80 req/s
// each, M retains 200·(1−0.8) = 40, and S keeps 400·0.5 = 200 — exactly
// partitioning capacity under full overload. When X goes idle, the max–min
// scheduler redistributes its share between M and Y.
func ExtReselling() (*Result, error) {
	s := agreement.New()
	asp := s.MustAddPrincipal("S", 400)
	m := s.MustAddPrincipal("M", 0)
	x := s.MustAddPrincipal("X", 0)
	y := s.MustAddPrincipal("Y", 0)
	s.MustSetAgreement(asp, m, 0.5, 0.8)
	s.MustSetAgreement(m, x, 0.4, 0.6)
	s.MustSetAgreement(m, y, 0.4, 0.6)

	eng, err := core.NewEngine(core.Config{
		Mode:           core.Community,
		System:         s,
		NumRedirectors: 1,
	})
	if err != nil {
		return nil, err
	}
	sm, err := sim.New(sim.Config{
		Engine:      eng,
		Redirectors: 1,
		Servers:     []sim.ServerSpec{{Owner: asp, Capacity: 400, Count: 1}},
		Names:       []string{"S", "M", "X", "Y"},
		MaxBacklog:  200,
	})
	if err != nil {
		return nil, err
	}
	for _, spec := range []struct {
		p    agreement.Principal
		offD time.Duration
	}{{asp, 0}, {m, 0}, {x, 60 * time.Second}, {y, 0}} {
		c := sm.NewClient(0, workload.Config{Principal: int(spec.p), Rate: 200})
		c.SetActive(true)
		if spec.offD > 0 {
			cc := c
			sm.At(spec.offD, func() { cc.SetActive(false) })
		}
	}
	sm.Run(120 * time.Second)

	res := &Result{
		ID:       "ext-resell",
		Title:    "Hierarchical sub-ASP reselling (paper §2.1 extension)",
		Recorder: sm.Recorder,
		Phases: []metrics.Phase{
			trim("overload", 0, 60*time.Second, settle),
			trim("X-idle", 60*time.Second, 120*time.Second, settle),
		},
		Expected: []Expectation{
			// Full overload: mandatory floors exactly partition 400.
			{Phase: "overload", Series: "S", Paper: 200},
			{Phase: "overload", Series: "M", Paper: 40, RelTol: 0.15},
			{Phase: "overload", Series: "X", Paper: 80},
			{Phase: "overload", Series: "Y", Paper: 80},
			// X idle: its 80 redistributed max–min between M and Y.
			{Phase: "X-idle", Series: "S", Paper: 200},
			{Phase: "X-idle", Series: "M", Paper: 100},
			{Phase: "X-idle", Series: "Y", Paper: 100},
			{Phase: "X-idle", Series: "X", Paper: 0},
		},
		Notes: []string{
			"transitive entitlements: MC_X = 0.4·(0.5·400) = 80 via two agreement hops",
			"all demands 200 req/s against a 400 req/s ASP",
		},
	}
	return res, nil
}

// ExtDynamicCapacity exercises the §2.2 dynamic-interpretation property:
// "changes in a principal's resource levels affect the amount available to
// others via agreements". In the Figure 9 community, B's server degrades
// from 320 to 160 req/s mid-run; A's transitive entitlement follows the
// physical resources down (480 → 400) without any renegotiation, and B's
// retained half shrinks to 80.
func ExtDynamicCapacity() (*Result, error) {
	s := agreement.New()
	a := s.MustAddPrincipal("A", 320)
	b := s.MustAddPrincipal("B", 320)
	s.MustSetAgreement(b, a, 0.5, 0.5)

	eng, err := core.NewEngine(core.Config{
		Mode:           core.Community,
		System:         s,
		NumRedirectors: 1,
	})
	if err != nil {
		return nil, err
	}
	sm, err := sim.New(sim.Config{
		Engine:      eng,
		Redirectors: 1,
		Servers: []sim.ServerSpec{
			{Owner: a, Capacity: 320, Count: 1},
			{Owner: b, Capacity: 320, Count: 1},
		},
		Names:      []string{"A", "B"},
		MaxBacklog: 160,
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < 2; i++ {
		sm.NewClient(0, workload.Config{Principal: int(a), Rate: workload.RateL4}).SetActive(true)
	}
	sm.NewClient(0, workload.Config{Principal: int(b), Rate: workload.RateL4}).SetActive(true)

	sm.At(60*time.Second, func() {
		sm.Servers[b][0].SetCapacity(160)
		if _, err := eng.UpdateCapacities([]float64{320, 160}); err != nil {
			panic(err)
		}
	})
	sm.Run(120 * time.Second)

	res := &Result{
		ID:       "ext-dynamic",
		Title:    "Dynamic re-interpretation under capacity change (paper §2.2)",
		Recorder: sm.Recorder,
		Phases: []metrics.Phase{
			trim("full", 0, 60*time.Second, settle),
			trim("degraded", 60*time.Second, 120*time.Second, settle),
		},
		Expected: []Expectation{
			{Phase: "full", Series: "A", Paper: 480},
			{Phase: "full", Series: "B", Paper: 160},
			// B's server at 160: A's entitlement 320 + 80, B retains 80.
			{Phase: "degraded", Series: "A", Paper: 400},
			{Phase: "degraded", Series: "B", Paper: 80},
		},
		Notes: []string{
			"B's server capacity halves at t=60 s; entitlements re-scale from cached flows",
		},
	}
	return res, nil
}

// ExtFailover exercises the "dynamic" in the dynamic combining tree: one
// of three redirectors dies mid-run; the survivors detect the silence,
// re-parent around the failure, and keep the aggregate agreements intact.
// A's demand arrives at two redirectors (one of which dies), B's at the
// third; the post-failure allocation must still honor the 70/30 split
// because A's surviving redirector picks up the enforcement.
func ExtFailover() (*Result, error) {
	s := agreement.New()
	sp := s.MustAddPrincipal("S", 100)
	a := s.MustAddPrincipal("A", 0)
	b := s.MustAddPrincipal("B", 0)
	s.MustSetAgreement(sp, a, 0.7, 1)
	s.MustSetAgreement(sp, b, 0.3, 1)
	eng, err := core.NewEngine(core.Config{
		Mode:              core.Provider,
		System:            s,
		ProviderPrincipal: sp,
		NumRedirectors:    3,
	})
	if err != nil {
		return nil, err
	}
	sm, err := sim.New(sim.Config{
		Engine:         eng,
		Redirectors:    3,
		Servers:        []sim.ServerSpec{{Owner: sp, Capacity: 100, Count: 1}},
		Names:          []string{"S", "A", "B"},
		FailureTimeout: 2 * time.Second,
		MaxBacklog:     100,
	})
	if err != nil {
		return nil, err
	}
	sm.NewClient(0, workload.Config{Principal: int(a), Rate: 100}).SetActive(true)
	sm.NewClient(2, workload.Config{Principal: int(a), Rate: 100}).SetActive(true)
	sm.NewClient(1, workload.Config{Principal: int(b), Rate: 200}).SetActive(true)
	sm.At(60*time.Second, func() { sm.FailRedirector(2) })
	sm.Run(120 * time.Second)

	res := &Result{
		ID:       "ext-failover",
		Title:    "Redirector failure and combining-tree reconfiguration",
		Recorder: sm.Recorder,
		Phases: []metrics.Phase{
			trim("healthy", 0, 60*time.Second, settle),
			trim("failed", 60*time.Second, 120*time.Second, settle),
		},
		Values: map[string]float64{
			"reconfigurations@failed": float64(sm.Reconfigurations),
		},
		Expected: []Expectation{
			{Phase: "healthy", Series: "A", Paper: 70},
			{Phase: "healthy", Series: "B", Paper: 30},
			// A's remaining 100 req/s demand still exceeds its 70
			// mandatory share: the split survives the failure.
			{Phase: "failed", Series: "A", Paper: 70},
			{Phase: "failed", Series: "B", Paper: 30},
			{Phase: "failed", Series: "reconfigurations", Paper: 1, AbsTol: 0.5},
		},
		Notes: []string{
			"redirector 2 (carrying half of A's load) dies at t=60 s; detection timeout 2 s",
		},
	}
	return res, nil
}

// ExtLocality exercises the locality-cost extension of §3.1.2: the
// redirector caps the load it pushes to B's (remote) server at 280 req/s.
// Without the cap the Figure 9 optimum is A 480 / B 160; under the cap the
// max–min point shifts to A 400 / B 200.
func ExtLocality() (*Result, error) {
	run := func(withCap bool) (*sim.Sim, error) {
		s := agreement.New()
		a := s.MustAddPrincipal("A", 320)
		b := s.MustAddPrincipal("B", 320)
		s.MustSetAgreement(b, a, 0.5, 0.5)
		cfg := core.Config{
			Mode:           core.Community,
			System:         s,
			NumRedirectors: 1,
		}
		if withCap {
			cfg.LocalityCaps = []float64{math.Inf(1), 280}
		}
		eng, err := core.NewEngine(cfg)
		if err != nil {
			return nil, err
		}
		sm, err := sim.New(sim.Config{
			Engine:      eng,
			Redirectors: 1,
			Servers: []sim.ServerSpec{
				{Owner: a, Capacity: 320, Count: 1},
				{Owner: b, Capacity: 320, Count: 1},
			},
			Names:      []string{"A", "B"},
			MaxBacklog: 160,
		})
		if err != nil {
			return nil, err
		}
		for i := 0; i < 2; i++ {
			sm.NewClient(0, workload.Config{Principal: int(a), Rate: workload.RateL4}).SetActive(true)
		}
		sm.NewClient(0, workload.Config{Principal: int(b), Rate: workload.RateL4}).SetActive(true)
		sm.Run(40 * time.Second)
		return sm, nil
	}

	capped, err := run(true)
	if err != nil {
		return nil, err
	}
	uncapped, err := run(false)
	if err != nil {
		return nil, err
	}
	mean := func(sm *sim.Sim, i int) float64 {
		return sm.Recorder.MeanRateBetween(i, 10*time.Second, 39*time.Second)
	}
	res := &Result{
		ID:    "ext-local",
		Title: "Locality caps on remote servers (paper §3.1.2 extension)",
		Values: map[string]float64{
			"A@capped":   mean(capped, 0),
			"B@capped":   mean(capped, 1),
			"A@uncapped": mean(uncapped, 0),
			"B@uncapped": mean(uncapped, 1),
		},
		Expected: []Expectation{
			{Phase: "uncapped", Series: "A", Paper: 480},
			{Phase: "uncapped", Series: "B", Paper: 160},
			// With ≤280 req/s pushable to B's server the mandatory floors
			// are unsatisfiable and the scheduler falls back to pure
			// max–min: θ = 0.5 ⇒ A 400, B 200.
			{Phase: "capped", Series: "A", Paper: 400},
			{Phase: "capped", Series: "B", Paper: 200},
		},
		Notes: []string{
			"cap 280 req/s on B's server from this redirector",
			"infeasible mandatory floors degrade gracefully to the floor-free max–min LP",
		},
	}
	return res, nil
}
