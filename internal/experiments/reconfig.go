package experiments

import (
	"fmt"
	"hash/fnv"
	"math"
	"time"

	"repro/internal/agreement"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// reconfigLead is the rollout gate lead used by ext-reconfig: the paper's
// combining tree needs one epoch to broadcast the update to every leaf and
// one of margin, so a mutation accepted at epoch E swaps fleet-wide at the
// window whose epoch is E+2.
const reconfigLead = 2

// reconfigOutcome is everything one ext-reconfig run produces: the figure
// data, the rollout checkpoints, and a digest for the replay check.
type reconfigOutcome struct {
	sm *sim.Sim
	// gateEpoch is the epoch gate assigned to the renegotiation; swapEpoch
	// is the root epoch at which the engine had promoted the staged
	// generation (observed one window after the gate).
	gateEpoch, swapEpoch int
	stagedAfterGate      core.Version // 0 once the rollout converged
	rollouts             uint64
	planeVersion         uint64
	// Under-floor counters: before the renegotiation (from a settled start)
	// and after it converged, to run end.
	preA, preB, postA, postB int64
	digest                   uint64
}

// runReconfig executes one deterministic mid-run SLA renegotiation:
// community principals A and B (320 req/s each) start with B granting A
// [0.5, 0.5] — mandatory entitlements 480/160 — and at t=60 s the control
// plane renegotiates the grant to [0.25, 0.25] (400/240). The accepted
// mutation is staged behind an epoch gate of lead 2, piggybacked on the
// combining tree's broadcasts, and every redirector swaps at the same
// window boundary.
func runReconfig() (*reconfigOutcome, error) {
	s := agreement.New()
	a := s.MustAddPrincipal("A", 320)
	b := s.MustAddPrincipal("B", 320)
	s.MustSetAgreement(b, a, 0.5, 0.5)

	eng, err := core.NewEngine(core.Config{
		Mode:           core.Community,
		System:         s,
		NumRedirectors: 2,
	})
	if err != nil {
		return nil, err
	}
	sm, err := sim.New(sim.Config{
		Engine:      eng,
		Redirectors: 2,
		Servers: []sim.ServerSpec{
			{Owner: a, Capacity: 160, Count: 2},
			{Owner: b, Capacity: 160, Count: 2},
		},
		Names:      []string{"A", "B"},
		MaxBacklog: 200,
		TraceDepth: -1,
	})
	if err != nil {
		return nil, err
	}
	plane, err := sm.EnableControlPlane(reconfigLead)
	if err != nil {
		return nil, err
	}
	sm.NewClient(0, workload.Config{Principal: int(a), Rate: 600}).SetActive(true)
	sm.NewClient(1, workload.Config{Principal: int(b), Rate: 600}).SetActive(true)

	out := &reconfigOutcome{sm: sm}
	window := eng.Window()

	// The renegotiation: B halves A's grant mid-run, over the same API an
	// operator would hit (Plane.SetAgreement is what POST /v1/agreements
	// calls).
	sm.At(60*time.Second, func() {
		if _, err := plane.SetAgreement("B", "A", 0.25, 0.25); err != nil {
			panic(fmt.Sprintf("ext-reconfig: renegotiation rejected: %v", err))
		}
		info := eng.Rollout()
		out.gateEpoch = info.GateEpoch
	})
	// One window past the gate, the rollout must have converged: the staged
	// generation promoted (Staged == 0) in exactly one epoch-gated swap.
	sm.At(60*time.Second+time.Duration(reconfigLead+1)*window+window/2, func() {
		info := eng.Rollout()
		out.stagedAfterGate = info.Staged
		out.rollouts = info.Rollouts
		out.swapEpoch = sm.Redirectors[0].Tree.Epoch()
	})

	// Under-floor audit bounds: settled windows before the renegotiation,
	// and every window after the swap has settled.
	sm.At(59*time.Second, func() {
		out.preA, out.preB = sm.Auditor.UnderMC(int(a)), sm.Auditor.UnderMC(int(b))
	})
	sm.At(60*time.Second+2*settle, func() {
		out.postA, out.postB = sm.Auditor.UnderMC(int(a)), sm.Auditor.UnderMC(int(b))
	})

	sm.Run(120 * time.Second)
	out.planeVersion = plane.Version()
	out.digest = reconfigDigest(out)
	return out, nil
}

// reconfigDigest folds every per-second rate sample and the auditor's
// conformance counters into one FNV-1a hash: two runs are bit-identical iff
// their digests match.
func reconfigDigest(out *reconfigOutcome) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		_, _ = h.Write(buf[:])
	}
	rec := out.sm.Recorder
	for i := 0; i < rec.NumSeries(); i++ {
		for _, v := range rec.Series(i) {
			put(math.Float64bits(v))
		}
	}
	for i := 0; i < rec.NumSeries(); i++ {
		put(uint64(out.sm.Auditor.UnderMC(i)))
		put(uint64(out.sm.Auditor.OverUB(i)))
	}
	put(uint64(out.sm.Auditor.Windows()))
	put(uint64(out.sm.Auditor.MixedVersion()))
	put(uint64(out.rollouts))
	return h.Sum64()
}

// ExtReconfig is the dynamic-reconfiguration experiment: a mid-run SLA
// renegotiation through the versioned control plane. B initially grants A
// half of its 320 req/s mandatorily (entitlements 480/160); at t=60 s the
// grant is renegotiated to a quarter (400/240) over the admin API. The
// versioned snapshot rides the combining tree's epoch broadcasts and every
// redirector swaps at the same gated window boundary, so no window mixes
// old and new entitlements and no settled window serves a principal under
// its (current-version) mandatory floor. The whole run replays
// bit-identically: the experiment executes twice and compares digests.
func ExtReconfig() (*Result, error) {
	first, err := runReconfig()
	if err != nil {
		return nil, err
	}
	second, err := runReconfig()
	if err != nil {
		return nil, err
	}
	replayIdentical := 0.0
	if first.digest == second.digest {
		replayIdentical = 1.0
	}
	converged := 1.0
	if first.stagedAfterGate != 0 {
		converged = 0.0
	}
	sm := first.sm
	res := &Result{
		ID:       "ext-reconfig",
		Title:    "Dynamic reconfiguration: mid-run SLA renegotiation, epoch-gated rollout",
		Recorder: sm.Recorder,
		Phases: []metrics.Phase{
			trim("initial", 0, 60*time.Second, settle),
			trim("renegotiated", 60*time.Second, 120*time.Second, settle),
		},
		Values: map[string]float64{
			"version@plane":           float64(first.planeVersion),
			"rollouts@plane":          float64(first.rollouts),
			"converged-by-gate@plane": converged,
			"mixed-version@windows":   float64(sm.Auditor.MixedVersion()),
			"A-under-floor@initial":   float64(first.preA),
			"B-under-floor@initial":   float64(first.preB),
			"A-under-floor@converged": float64(sm.Auditor.UnderMC(0) - first.postA),
			"B-under-floor@converged": float64(sm.Auditor.UnderMC(1) - first.postB),
			"identical@replay":        replayIdentical,
		},
		Expected: []Expectation{
			// B grants A [0.5, 0.5] of 320: entitlements 480/160.
			{Phase: "initial", Series: "A", Paper: 480},
			{Phase: "initial", Series: "B", Paper: 160},
			// Renegotiated to [0.25, 0.25]: 400/240.
			{Phase: "renegotiated", Series: "A", Paper: 400},
			{Phase: "renegotiated", Series: "B", Paper: 240},
			{Phase: "plane", Series: "version", Paper: 1, AbsTol: 0.1},
			{Phase: "plane", Series: "rollouts", Paper: 1, AbsTol: 0.1},
			// The staged generation promoted within one window of the gate.
			{Phase: "plane", Series: "converged-by-gate", Paper: 1, AbsTol: 0.1},
			// No window anywhere mixed old and new entitlements.
			{Phase: "windows", Series: "mixed-version", Paper: 0, AbsTol: 0.1},
			// Zero under-floor windows once settled, before and after.
			{Phase: "initial", Series: "A-under-floor", Paper: 0, AbsTol: 0.1},
			{Phase: "initial", Series: "B-under-floor", Paper: 0, AbsTol: 0.1},
			{Phase: "converged", Series: "A-under-floor", Paper: 0, AbsTol: 0.1},
			{Phase: "converged", Series: "B-under-floor", Paper: 0, AbsTol: 0.1},
			// Bit-identical replay: same digests across two full runs.
			{Phase: "replay", Series: "identical", Paper: 1, AbsTol: 0.01},
		},
		Notes: []string{
			fmt.Sprintf("gate epoch %d, swap observed by epoch %d (lead %d windows)",
				first.gateEpoch, first.swapEpoch, reconfigLead),
			"renegotiation flows through ctrlplane.Plane — the same path as POST /v1/agreements",
			"snapshot distribution piggybacks on combining-tree broadcasts: zero extra messages",
		},
	}
	return res, nil
}
