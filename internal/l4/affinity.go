package l4

import (
	"sync"
	"time"

	"repro/internal/agreement"
)

// affinityStripes is the lock-stripe count of the client→owner affinity
// cache. Striping exists so concurrent accept loops touching different
// clients never serialize on one map mutex; 32 stripes is plenty for the
// handful of accept goroutines a redirector runs.
const affinityStripes = 32

type affinityEntry struct {
	owner agreement.Principal
	at    time.Time
}

type affinityStripe struct {
	mu sync.Mutex
	m  map[string]affinityEntry
	_  [64]byte
}

// affinityCache pins client addresses to owners for the affinity TTL — the
// §4.2 "to the extent allowed by the sharing agreements" stickiness — using
// striped locks so lookups on the admission path stay contention-free.
type affinityCache struct {
	ttl     time.Duration
	stripes [affinityStripes]affinityStripe
}

func newAffinityCache(ttl time.Duration) *affinityCache {
	a := &affinityCache{ttl: ttl}
	for i := range a.stripes {
		a.stripes[i].m = make(map[string]affinityEntry)
	}
	return a
}

// stripe hashes the client key onto its stripe (FNV-1a, inlined to avoid an
// allocation per lookup).
func (a *affinityCache) stripe(client string) *affinityStripe {
	h := uint32(2166136261)
	for i := 0; i < len(client); i++ {
		h = (h ^ uint32(client[i])) * 16777619
	}
	return &a.stripes[h%affinityStripes]
}

// lookup returns the live pinned owner for client, or -1.
func (a *affinityCache) lookup(client string, now time.Time) agreement.Principal {
	s := a.stripe(client)
	s.mu.Lock()
	e, ok := s.m[client]
	s.mu.Unlock()
	if ok && now.Sub(e.at) < a.ttl {
		return e.owner
	}
	return agreement.Principal(-1)
}

// pin records (or refreshes) the client's owner.
func (a *affinityCache) pin(client string, owner agreement.Principal, now time.Time) {
	s := a.stripe(client)
	s.mu.Lock()
	s.m[client] = affinityEntry{owner: owner, at: now}
	s.mu.Unlock()
}

// sweep drops expired pins; called once per window, off the admission path.
func (a *affinityCache) sweep(now time.Time) {
	for i := range a.stripes {
		s := &a.stripes[i]
		s.mu.Lock()
		for k, e := range s.m {
			if now.Sub(e.at) > a.ttl {
				delete(s.m, k)
			}
		}
		s.mu.Unlock()
	}
}
