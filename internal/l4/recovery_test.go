package l4

import (
	"testing"
	"time"

	"repro/internal/agreement"
	"repro/internal/core"
	"repro/internal/persist"
)

// TestBootRestore pins the crash-recovery boot path at Layer 4: a switch
// handed a store holding a window record and a newer agreement set resumes
// from them — window sequence restored, recovered set staged and
// committed — and keeps appending its own records to the same store.
func TestBootRestore(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket test")
	}
	s := agreement.New()
	a := s.MustAddPrincipal("A", 320)
	b := s.MustAddPrincipal("B", 320)
	s.MustSetAgreement(b, a, 0.5, 0.5)
	eng, err := core.NewEngine(core.Config{
		Mode: core.Community, System: s, Window: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	// What the previous process left behind: a renegotiated set (v3) and
	// the last window's state.
	st, err := persist.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	prev := s.Clone()
	if err := prev.SetAgreement(b, a, 0.25, 0.25); err != nil {
		t.Fatal(err)
	}
	set := prev.Snapshot(3)
	if err := st.SaveSet(set); err != nil {
		t.Fatal(err)
	}
	ws := persist.WindowState{
		WindowSeq:  42,
		Epoch:      42,
		SetVersion: 3,
		Estimate:   []float64{7, 5},
		Credit:     [][]float64{{3, 0}, {1, 2}},
	}
	if err := st.AppendWindow(ws); err != nil {
		t.Fatal(err)
	}

	bk, err := NewBackend("127.0.0.1:0", 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer bk.Close()
	r, err := NewRedirector(Config{
		Engine:   eng,
		Services: []ServiceSpec{{Principal: a, Addr: "127.0.0.1:0"}},
		Backends: map[agreement.Principal][]string{b: {bk.Addr()}},
		Persist:  st,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The recovered set committed (gate 0) and version numbering resumed.
	if got := eng.LastSetVersion(); got != 3 {
		t.Fatalf("recovered set version = %d, want 3", got)
	}
	// The window sequence resumed from the durable record, not from zero.
	r.mu.Lock()
	windows := r.red.Windows
	r.mu.Unlock()
	if windows < 42 {
		t.Fatalf("window sequence = %d, want >= 42 (restored)", windows)
	}

	// The live process keeps extending the same log past the restored seq.
	deadline := time.Now().Add(5 * time.Second)
	for {
		last, ok := st.LastWindow()
		if ok && last.WindowSeq > 42 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no durable window record appended past the restored sequence")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Close checkpointed: the log replays to the newest record.
	last, ok := st.LastWindow()
	if !ok || last.WindowSeq <= 42 {
		t.Fatalf("post-close LastWindow = (%+v, %v), want seq > 42", last, ok)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}
