package l4

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/agreement"
	"repro/internal/combining"
	"repro/internal/core"
	"repro/internal/health"
	"repro/internal/treenet"
)

func TestBackendServesAndLimits(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket test")
	}
	b, err := NewBackend("127.0.0.1:0", 100)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	ok, err := Do(b.Addr(), "GET /x", 2*time.Second)
	if err != nil || !ok {
		t.Fatalf("Do = %v, %v", ok, err)
	}
	start := time.Now()
	for i := 0; i < 20; i++ {
		if ok, err := Do(b.Addr(), "GET /x", 5*time.Second); err != nil || !ok {
			t.Fatalf("request %d: %v %v", i, ok, err)
		}
	}
	if el := time.Since(start); el < 150*time.Millisecond {
		t.Fatalf("20 requests at 100/s finished in %v", el)
	}
	if b.Served() != 21 {
		t.Fatalf("Served = %d", b.Served())
	}
}

func TestBackendRejectsBadCapacity(t *testing.T) {
	if _, err := NewBackend("127.0.0.1:0", -1); err == nil {
		t.Fatal("negative capacity accepted")
	}
}

func TestRedirectorConfigErrors(t *testing.T) {
	if _, err := NewRedirector(Config{}); err == nil {
		t.Fatal("nil engine accepted")
	}
	s := agreement.New()
	sp := s.MustAddPrincipal("S", 10)
	eng, err := core.NewEngine(core.Config{Mode: core.Provider, System: s, ProviderPrincipal: sp})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRedirector(Config{Engine: eng}); err == nil {
		t.Fatal("missing services accepted")
	}
}

// communityRig builds the Figure 9 community at 1/4 scale: A and B own
// 80 req/s backends, B shares [0.5, 0.5] with A.
func communityRig(t *testing.T) (*Redirector, *Backend, *Backend, agreement.Principal, agreement.Principal) {
	t.Helper()
	s := agreement.New()
	a := s.MustAddPrincipal("A", 80)
	b := s.MustAddPrincipal("B", 80)
	s.MustSetAgreement(b, a, 0.5, 0.5)
	eng, err := core.NewEngine(core.Config{
		Mode:           core.Community,
		System:         s,
		NumRedirectors: 1,
		Window:         20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ba, err := NewBackend("127.0.0.1:0", 80)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ba.Close() })
	bb, err := NewBackend("127.0.0.1:0", 80)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bb.Close() })

	r, err := NewRedirector(Config{
		Engine: eng,
		Services: []ServiceSpec{
			{Principal: a, Addr: "127.0.0.1:0"},
			{Principal: b, Addr: "127.0.0.1:0"},
		},
		Backends: map[agreement.Principal][]string{
			a: {ba.Addr()},
			b: {bb.Addr()},
		},
		PendingTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r, ba, bb, a, b
}

// hammerL4 runs closed-loop connection generators against addr.
func hammerL4(wg *sync.WaitGroup, stop, warm *atomic.Bool, counter *int64, addr string, workers int) {
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				ok, err := Do(addr, "GET /", 3*time.Second)
				if err != nil || !ok {
					time.Sleep(5 * time.Millisecond)
					continue
				}
				if warm.Load() {
					atomic.AddInt64(counter, 1)
				}
			}
		}()
	}
}

func TestCommunityEnforcementOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket test")
	}
	r, _, _, a, b := communityRig(t)

	var wg sync.WaitGroup
	var stop, warm atomic.Bool
	var gotA, gotB int64
	hammerL4(&wg, &stop, &warm, &gotA, r.Addr(a), 6)
	hammerL4(&wg, &stop, &warm, &gotB, r.Addr(b), 6)

	time.Sleep(800 * time.Millisecond)
	warm.Store(true)
	const measure = 2 * time.Second
	time.Sleep(measure)
	stop.Store(true)
	wg.Wait()

	rateA := float64(gotA) / measure.Seconds()
	rateB := float64(gotB) / measure.Seconds()
	// Entitlements: A 120 (own 80 + half of B's), B 40.
	if rateA < 1.5*rateB {
		t.Fatalf("A/B = %.1f/%.1f, want A ≈ 3×B", rateA, rateB)
	}
	total := rateA + rateB
	if total < 90 || total > 200 {
		t.Fatalf("total = %.1f, want ≈160", total)
	}
	fwd, parked, _, _ := r.Stats()
	if fwd == 0 {
		t.Fatal("nothing forwarded")
	}
	_ = parked
}

func TestParkedConnectionsReinjected(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket test")
	}
	r, _, _, a, _ := communityRig(t)
	// Burst connections faster than one window's credit: some park, then
	// complete in later windows rather than being refused.
	var wg sync.WaitGroup
	var okCount int64
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if ok, err := Do(r.Addr(a), "GET /burst", 4*time.Second); err == nil && ok {
				atomic.AddInt64(&okCount, 1)
			}
		}()
	}
	wg.Wait()
	if okCount < 10 {
		t.Fatalf("only %d/12 burst connections completed", okCount)
	}
	_, parked, _, _ := r.Stats()
	if parked == 0 {
		t.Skip("burst admitted without parking on this machine")
	}
}

func TestTwoRedirectorsCoordinateOverTree(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket test")
	}
	// Provider with one 160 req/s backend; A [0.75,1] arrives at r0's
	// listener, B [0.25,1] at r1's. Enforcement must hold across the two
	// admission points via the TCP combining tree.
	s := agreement.New()
	sp := s.MustAddPrincipal("S", 160)
	a := s.MustAddPrincipal("A", 0)
	b := s.MustAddPrincipal("B", 0)
	s.MustSetAgreement(sp, a, 0.75, 1)
	s.MustSetAgreement(sp, b, 0.25, 1)
	eng, err := core.NewEngine(core.Config{
		Mode: core.Provider, System: s, ProviderPrincipal: sp,
		NumRedirectors: 2, Window: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	bk, err := NewBackend("127.0.0.1:0", 240)
	if err != nil {
		t.Fatal(err)
	}
	defer bk.Close()

	backends := map[agreement.Principal][]string{sp: {bk.Addr()}}
	newRed := func(id int, p agreement.Principal, parent int, children []int) *Redirector {
		spec := &treenet.Spec{NodeID: combining.NodeID(id), Parent: combining.NodeID(parent)}
		for _, c := range children {
			spec.Children = append(spec.Children, combining.NodeID(c))
		}
		r, err := NewRedirector(Config{
			Engine:   eng,
			ID:       id,
			Services: []ServiceSpec{{Principal: p, Addr: "127.0.0.1:0"}},
			Backends: backends,
			Tree:     spec,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { r.Close() })
		return r
	}
	r0 := newRed(0, a, -1, []int{1})
	r1 := newRed(1, b, 0, nil)
	r0.SetTreePeer(1, r1.TreeAddr())
	r1.SetTreePeer(0, r0.TreeAddr())

	var wg sync.WaitGroup
	var stop, warm atomic.Bool
	var gotA, gotB int64
	hammerL4(&wg, &stop, &warm, &gotA, r0.Addr(a), 6)
	hammerL4(&wg, &stop, &warm, &gotB, r1.Addr(b), 6)
	time.Sleep(time.Second)
	warm.Store(true)
	const measure = 2 * time.Second
	time.Sleep(measure)
	stop.Store(true)
	wg.Wait()

	rateA := float64(gotA) / measure.Seconds()
	rateB := float64(gotB) / measure.Seconds()
	if rateB > 75 {
		t.Fatalf("B = %.1f req/s through its own redirector, exceeds its ≈40 entitlement plus slack", rateB)
	}
	if rateA < rateB {
		t.Fatalf("A (%.1f) below B (%.1f) despite 3× mandatory share", rateA, rateB)
	}
}

func TestPendingTimeoutExpiresConnections(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket test")
	}
	// An engine whose only principal has zero entitlement: every connection
	// parks and must expire.
	s := agreement.New()
	sp := s.MustAddPrincipal("S", 10)
	cust := s.MustAddPrincipal("C", 0)
	s.MustSetAgreement(sp, cust, 0, 0.001)
	eng, err := core.NewEngine(core.Config{
		Mode: core.Provider, System: s, ProviderPrincipal: sp,
		Window: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	bk, err := NewBackend("127.0.0.1:0", 10)
	if err != nil {
		t.Fatal(err)
	}
	defer bk.Close()
	r, err := NewRedirector(Config{
		Engine:         eng,
		Services:       []ServiceSpec{{Principal: cust, Addr: "127.0.0.1:0"}},
		Backends:       map[agreement.Principal][]string{sp: {bk.Addr()}},
		PendingTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if ok, _ := Do(r.Addr(cust), "GET /", 600*time.Millisecond); ok {
		t.Fatal("zero-entitlement principal served")
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if _, _, _, expired := r.Stats(); expired > 0 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("parked connection never expired")
}

func TestBackendDeathReparksAndFailsOver(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket test")
	}
	// Provider S owns two backends; one dies mid-run. Admitted connections
	// whose dial fails must be re-parked (and complete on a later window)
	// rather than silently dropped, the health checker must take the dead
	// backend out of rotation, and service must continue on the survivor.
	s := agreement.New()
	sp := s.MustAddPrincipal("S", 200)
	cust := s.MustAddPrincipal("C", 0)
	s.MustSetAgreement(sp, cust, 0.9, 1)
	eng, err := core.NewEngine(core.Config{
		Mode: core.Provider, System: s, ProviderPrincipal: sp,
		Window: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	b1, err := NewBackend("127.0.0.1:0", 200)
	if err != nil {
		t.Fatal(err)
	}
	defer b1.Close()
	b2, err := NewBackend("127.0.0.1:0", 200)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	r, err := NewRedirector(Config{
		Engine:         eng,
		Services:       []ServiceSpec{{Principal: cust, Addr: "127.0.0.1:0"}},
		Backends:       map[agreement.Principal][]string{sp: {b1.Addr(), b2.Addr()}},
		PendingTimeout: 2 * time.Second,
		Health: &health.Options{
			Interval:         50 * time.Millisecond,
			Timeout:          200 * time.Millisecond,
			FailThreshold:    2,
			SuccessThreshold: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Warm up: both backends reachable.
	for i := 0; i < 4; i++ {
		if ok, err := Do(r.Addr(cust), "GET /warm", 3*time.Second); err != nil || !ok {
			t.Fatalf("warm-up request %d: %v %v", i, ok, err)
		}
	}

	b1.Close() // kill one backend mid-run

	// Keep offering traffic; dials to the dead backend re-park, the checker
	// trips, and requests keep completing via the survivor.
	served := 0
	deadline := time.Now().Add(8 * time.Second)
	for time.Now().Before(deadline) {
		if ok, err := Do(r.Addr(cust), "GET /after", 3*time.Second); err == nil && ok {
			served++
		}
		fails, reparked := r.DialStats()
		if served >= 5 && fails > 0 && reparked > 0 {
			return
		}
	}
	fails, reparked := r.DialStats()
	t.Fatalf("after backend death: served=%d dialFailures=%d reparked=%d",
		served, fails, reparked)
}

func TestAffinityPinsClientToOwner(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket test")
	}
	r, ba, bb, a, _ := communityRig(t)
	// A single client (one source IP) doing sequential requests should be
	// served predominantly by one owner while credits allow.
	for i := 0; i < 10; i++ {
		if ok, err := Do(r.Addr(a), "GET /aff", 3*time.Second); err != nil || !ok {
			t.Fatalf("request %d failed: %v %v", i, ok, err)
		}
	}
	servedA, servedB := ba.Served(), bb.Served()
	if servedA+servedB < 10 {
		t.Fatalf("backends served %d+%d", servedA, servedB)
	}
	if servedA != 0 && servedB != 0 {
		// Both sides used: acceptable when credits forced a fallback, but
		// the majority must sit with one owner.
		major := servedA
		if servedB > major {
			major = servedB
		}
		if float64(major) < 0.7*float64(servedA+servedB) {
			t.Fatalf("affinity too weak: %d vs %d", servedA, servedB)
		}
	}
}
