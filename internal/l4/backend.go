package l4

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Backend is a capacity-limited request/response TCP server standing in for
// the paper's web servers behind the Layer-4 switch. Each connection
// carries one request line; the reply is sent after the server's next free
// service slot, bounding throughput at the configured rate.
type Backend struct {
	ln       net.Listener
	interval time.Duration

	mu       sync.Mutex
	nextSlot time.Time

	served int64 // atomic
	wg     sync.WaitGroup
	done   chan struct{}
}

// NewBackend starts a backend on addr with the given capacity in
// requests/second.
func NewBackend(addr string, capacity float64) (*Backend, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("l4: backend capacity must be positive, got %v", capacity)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("l4: backend listen %s: %w", addr, err)
	}
	b := &Backend{
		ln:       ln,
		interval: time.Duration(float64(time.Second) / capacity),
		done:     make(chan struct{}),
	}
	b.wg.Add(1)
	go b.acceptLoop()
	return b, nil
}

// Addr returns the backend's listen address.
func (b *Backend) Addr() string { return b.ln.Addr().String() }

// Served reports completed requests.
func (b *Backend) Served() int64 { return atomic.LoadInt64(&b.served) }

func (b *Backend) acceptLoop() {
	defer b.wg.Done()
	for {
		conn, err := b.ln.Accept()
		if err != nil {
			return
		}
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			defer conn.Close()
			_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
			line, err := bufio.NewReader(conn).ReadString('\n')
			if err != nil || line == "" {
				return
			}
			// Wait for the next service slot: fixed-rate server.
			b.mu.Lock()
			now := time.Now()
			slot := b.nextSlot
			if slot.Before(now) {
				slot = now
			}
			b.nextSlot = slot.Add(b.interval)
			b.mu.Unlock()
			select {
			case <-time.After(time.Until(slot)):
			case <-b.done:
				return
			}
			atomic.AddInt64(&b.served, 1)
			fmt.Fprintf(conn, "OK %s", line)
		}()
	}
}

// Close shuts the backend down.
func (b *Backend) Close() error {
	select {
	case <-b.done:
	default:
		close(b.done)
	}
	err := b.ln.Close()
	b.wg.Wait()
	return err
}

// Do performs one request against a backend through addr (typically a
// redirector service address) and reports whether a well-formed reply
// arrived. It is the unit of load generation for Layer-4 tests and tools.
func Do(addr string, payload string, timeout time.Duration) (bool, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return false, err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(timeout))
	if _, err := fmt.Fprintf(conn, "%s\n", payload); err != nil {
		return false, err
	}
	reply, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return false, err
	}
	return len(reply) >= 2 && reply[:2] == "OK", nil
}
