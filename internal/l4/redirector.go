// Package l4 is the transport-layer (Layer-4) prototype of §4.2 on real
// sockets. The paper's implementation is a Linux Virtual Server kernel
// module doing NAT; here the same scheduling-relevant behavior runs in user
// space:
//
//   - one listener per principal plays the role of the per-customer virtual
//     IP the NAT switch matches on;
//   - an accepted connection is the SYN: admission is decided at accept
//     time against the window credits — through the sharded admission plane
//     (internal/admission), so concurrent accepts never serialize on a
//     shared mutex;
//   - admitted connections are spliced byte-for-byte to a backend (the NAT
//     rewrite) with pooled 32 KiB buffers (and the kernel splice(2) fast
//     path when both ends are TCP), preserving client→server affinity to
//     the extent the agreements allow;
//   - connections over quota are parked in sharded pending queues and
//     reinjected in later windows, exactly like the paper's kernel thread
//     re-queuing packets.
package l4

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/agreement"
	"repro/internal/budget"
	"repro/internal/combining"
	"repro/internal/core"
	"repro/internal/ctrlplane"
	"repro/internal/health"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/topology"
	"repro/internal/treenet"
)

// persistCheckpointEvery is how many durable window appends accumulate
// before the record log is compacted to its newest record.
const persistCheckpointEvery = 256

// ServiceSpec binds a listener (virtual IP analogue) to a principal.
type ServiceSpec struct {
	Principal agreement.Principal
	// Addr is the listen address; use "127.0.0.1:0" for tests.
	Addr string
}

// Config parameterizes a Layer-4 redirector.
type Config struct {
	Engine *core.Engine
	ID     int
	// Services lists the per-principal listeners.
	Services []ServiceSpec
	// Backends maps owner principals to backend TCP addresses.
	Backends map[agreement.Principal][]string
	// MaxPending bounds each principal's pending-connection queue
	// (default 512); beyond it new over-quota connections are dropped.
	MaxPending int
	// PendingTimeout closes connections parked longer than this
	// (default 5 s).
	PendingTimeout time.Duration
	// AffinityTTL is how long a client address stays pinned to an owner
	// (default 30 s).
	AffinityTTL time.Duration
	// AdmissionShards sets the admission plane's credit shard count
	// (0 selects GOMAXPROCS; see internal/admission).
	AdmissionShards int
	// Tree, if non-nil, joins a combining tree of redirectors.
	Tree *treenet.Spec
	// TraceDepth is the window-trace ring capacity served at /debug/windows
	// (0 selects obs.DefaultRingDepth). The Layer-4 switch has no HTTP
	// server of its own; mount ObsHandler on an admin listener to scrape it.
	TraceDepth int
	// Trace, if non-nil, enables request-span tracing: per-connection phase
	// timestamps (admit, park, dial, first byte, close) recorded with zero
	// allocations, head-sampled plus slowest-K-per-window, served at
	// /v1/debug/trace on the ObsHandler.
	Trace *obs.TraceConfig
	// Flight, if non-nil, arms the SLO flight recorder: an under-floor
	// settled window or a span breaching Flight.SLO freezes a bounded
	// capture (span ring + window records + admission shard counters)
	// served at /v1/debug/flight. Requires Trace.
	Flight *obs.FlightConfig
	// Health, if non-nil, enables active backend health checking: down
	// backends are skipped by backend choice and every down/up transition
	// re-interprets the agreements against the surviving capacity.
	Health *health.Options
	// Ctrl, if true, attaches the dynamic agreement control plane to the
	// ObsHandler admin surface (/v1/agreements, /v1/principals/...). With
	// a tree, accepted mutations are epoch-gated and piggybacked on this
	// node's downward broadcasts — enable Ctrl on the tree root only.
	Ctrl bool
	// CtrlLead is the rollout gate lead in tree epochs (<=0 selects
	// ctrlplane.DefaultLead). Ignored unless Ctrl is set.
	CtrlLead int
	// Persist, if non-nil, arms the durable-state plane (internal/persist):
	// at boot the switch restores its window position, carried credit,
	// demand estimate and newest agreement set from the store, announces a
	// tree rejoin from the durable epoch, and resumes appending one window
	// record per PersistEvery windows. The caller owns the store's
	// lifecycle; Close checkpoints but does not close it.
	Persist *persist.Store
	// PersistEvery is the durable append cadence in windows (<=1 appends
	// every window — the tightest crash-loss bound). Ignored without
	// Persist.
	PersistEvery int
}

type heldConn struct {
	conn     net.Conn
	client   string
	parkedAt time.Time
	span     *obs.Span // nil when the request was not sampled for tracing
}

// pendShard is one stripe of the parked-connection state. Parking and
// reinjection lock one stripe at a time, so the accept path never waits on
// a fleet-wide reinjection pass.
type pendShard struct {
	mu sync.Mutex
	q  map[agreement.Principal][]heldConn
	_  [64]byte
}

// Redirector is the Layer-4 switch.
type Redirector struct {
	cfg       Config
	start     time.Time
	listeners []net.Listener
	svcAddrs  map[agreement.Principal]string

	// mu guards the window-boundary state only (core redirector, combining
	// tree, estimate buffer). The admission path never takes it: per-request
	// decisions go through the sharded admission plane.
	mu     sync.Mutex
	red    *core.Redirector
	estBuf []float64 // reused local-estimate buffer (under mu)

	adm       *admission.Plane
	aff       *affinityCache
	rr        []atomic.Uint32 // round-robin cursor per owner principal
	pend      []pendShard
	pendCount []atomic.Int64 // parked connections per principal (MaxPending bound)
	parkSeq   atomic.Uint32  // round-robin park stripe cursor

	tree      *combining.Forest
	hop       *combining.HopMetrics
	transport *treenet.Transport
	reparent  treenet.Detector
	topoPlane func() *topology.Plane // nil on a flat layout

	checker *health.Checker
	reint   *health.Reinterpreter

	obsv    *obs.Observer
	handler *obs.Handler
	plane   *ctrlplane.Plane
	tracer  *obs.Tracer
	flight  *obs.FlightRecorder
	names   []string // principal index → name, for span tags

	ticker    *time.Ticker
	done      chan struct{}
	closeOnce sync.Once
	stopped   atomic.Bool // Close drained the pending queues
	wg        sync.WaitGroup

	// Durable-state scratch (window loop only, under mu): export buffers,
	// append cadence, and the newest set version already saved.
	persistM     [][]float64
	persistT     []float64
	persistE     []float64
	persistSince int
	persistSeq   int
	savedSet     uint64

	// Stats (atomic; admitted/rejected counts live in the admission plane).
	parked       atomic.Int64
	dropped      atomic.Int64
	expired      atomic.Int64
	dialFailures atomic.Int64 // backend dials that failed after admission
	reparked     atomic.Int64 // connections returned to pending after a failed dial
	copyErrIn    atomic.Int64 // client→backend transport errors mid-splice
	copyErrOut   atomic.Int64 // backend→client transport errors mid-splice
}

// NewRedirector starts the listeners and the window loop.
func NewRedirector(cfg Config) (*Redirector, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("l4: nil engine")
	}
	if len(cfg.Services) == 0 || len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("l4: need services and backends")
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = 512
	}
	if cfg.PendingTimeout <= 0 {
		cfg.PendingTimeout = 5 * time.Second
	}
	if cfg.AffinityTTL <= 0 {
		cfg.AffinityTTL = 30 * time.Second
	}
	r := &Redirector{
		cfg:      cfg,
		start:    time.Now(),
		svcAddrs: make(map[agreement.Principal]string),
		red:      cfg.Engine.NewRedirector(cfg.ID),
		aff:      newAffinityCache(cfg.AffinityTTL),
		rr:       make([]atomic.Uint32, cfg.Engine.NumPrincipals()),
		done:     make(chan struct{}),
	}
	var err error
	r.adm, err = admission.New(admission.Config{
		Redirector: r.red, Engine: cfg.Engine, Shards: cfg.AdmissionShards,
	})
	if err != nil {
		return nil, err
	}
	r.pend = make([]pendShard, r.adm.Shards())
	for i := range r.pend {
		r.pend[i].q = make(map[agreement.Principal][]heldConn)
	}
	r.pendCount = make([]atomic.Int64, cfg.Engine.NumPrincipals())

	if cfg.Tree != nil {
		addr := cfg.Tree.ListenAddr
		if addr == "" {
			addr = "127.0.0.1:0"
		}
		wiring, werr := cfg.Tree.Resolve()
		if werr != nil {
			return nil, werr
		}
		r.transport, err = treenet.Listen(cfg.Tree.NodeID, addr, r.onTreeMessage)
		if err != nil {
			return nil, err
		}
		for id, peerAddr := range cfg.Tree.Peers {
			r.transport.SetPeer(id, peerAddr)
		}
		r.reparent = wiring.Detector
		r.topoPlane = wiring.Plane
		// Principal sharding: under the component policy each disjoint
		// agreement component runs its own tree (independent epochs) over
		// the shared plane; otherwise one tree carries the full vector.
		var comps [][]int
		if top := cfg.Tree.Topology; top != nil {
			if top.Sharding == topology.ShardComponent {
				for _, c := range cfg.Engine.System().Components() {
					ms := make([]int, len(c))
					for i, p := range c {
						ms[i] = int(p)
					}
					comps = append(comps, ms)
				}
			}
			if d := top.Normalize().Delta; d.Enabled() {
				r.transport.EnableDelta(d.Threshold, d.ResyncEvery)
			}
		}
		r.hop = combining.NewHopMetrics()
		r.tree, err = combining.NewForest(combining.ForestConfig{
			ID: cfg.Tree.NodeID, Parent: wiring.Parent, Children: wiring.Children,
			NumPrincipals: cfg.Engine.NumPrincipals(), Components: comps,
			Send: r.transport.TreeSend, Now: r.elapsed, Hop: r.hop,
		})
		if err != nil {
			r.transport.Close()
			return nil, err
		}
		// Configuration updates arriving from the parent stage a new
		// scheduling generation on the local engine behind the sender's
		// epoch gate; runWindow swaps once this node's epoch crosses it.
		// Runs on the transport goroutine under r.mu (OnMessage).
		r.tree.SetConfigHandler(func(cu *combining.ConfigUpdate) {
			set, derr := agreement.DecodeSet(cu.Payload)
			if derr != nil {
				cfg.Engine.Logger().Error("bad config payload", "version", cu.Version, "err", derr)
				return
			}
			if _, serr := cfg.Engine.StageSet(set, cu.GateEpoch); serr != nil {
				cfg.Engine.Logger().Error("stage agreement set", "version", cu.Version, "err", serr)
				return
			}
			// Every set the tree delivers becomes durable before the gate
			// can arrive: a crash after this point recovers the newest
			// entitlements instead of rejoining blind.
			if cfg.Persist != nil {
				if perr := cfg.Persist.SaveSet(set); perr != nil {
					cfg.Engine.Logger().Error("persist agreement set", "version", cu.Version, "err", perr)
				}
			}
		})
	}

	// Crash recovery: restore the durable window position, carried credit,
	// demand estimate and newest agreement set before the first window or
	// tree tick, then announce a rejoin so the parent unblocks this node's
	// (rewound) epoch and streams back the current global + configuration.
	var resumeSet *agreement.Set
	if cfg.Persist != nil {
		resumeSet, err = cfg.Persist.LoadNewestSet()
		if err != nil {
			if r.transport != nil {
				r.transport.Close()
			}
			return nil, fmt.Errorf("l4: recover agreement set: %w", err)
		}
		if resumeSet != nil {
			// Gate 0: a recovered set the fleet already converged on commits
			// locally at the next window boundary, no quorum round needed.
			if _, serr := cfg.Engine.StageSet(resumeSet, 0); serr != nil {
				cfg.Engine.Logger().Error("restage recovered set", "version", resumeSet.Version, "err", serr)
				resumeSet = nil
			} else {
				r.savedSet = resumeSet.Version
			}
		}
		if ws, ok := cfg.Persist.LastWindow(); ok {
			r.red.RestoreState(ws.WindowSeq, ws.Estimate, ws.Credit, ws.CreditTotal)
			r.red.SetRollout(ws.Epoch, ws.SetVersion)
			if r.tree != nil {
				var cu *combining.ConfigUpdate
				if resumeSet != nil {
					if data, perr := resumeSet.Encode(); perr == nil {
						cu = &combining.ConfigUpdate{
							Version: resumeSet.Version, GateEpoch: ws.Gate, Payload: data,
						}
					}
				}
				r.tree.Reset(ws.Epoch, cu)
				r.tree.AnnounceRejoin()
			}
		}
	}

	if cfg.Ctrl {
		// A restarted control-plane host resumes version numbering from the
		// recovered snapshot, so its next mutation is not discarded
		// fleet-wide as stale.
		opt := ctrlplane.Options{Lead: cfg.CtrlLead, Logger: cfg.Engine.Logger(), Resume: resumeSet}
		if cfg.Persist != nil {
			// Leases ride the same durable store: the table is saved after
			// every lease mutation and recovered on restart, so long-lived
			// reservations survive a crash with bounded loss.
			store := cfg.Persist
			logger := cfg.Engine.Logger()
			opt.SaveLeases = func(t *budget.Table) {
				if perr := store.SaveLeases(t); perr != nil {
					logger.Error("persist lease table", "version", t.Version, "err", perr)
				}
			}
			if lt, perr := store.LoadNewestLeases(); perr == nil {
				opt.ResumeLeases = lt
			} else {
				logger.Error("load lease table", "err", perr)
			}
		}
		if r.tree != nil {
			tree := r.tree
			opt.Epoch = func() int {
				r.mu.Lock()
				defer r.mu.Unlock()
				return tree.Epoch()
			}
			opt.Publish = func(set *agreement.Set, gate int) {
				// Durable before distributed: a root crash between publish
				// and fleet convergence must not lose the renegotiation.
				if cfg.Persist != nil {
					if perr := cfg.Persist.SaveSet(set); perr != nil {
						cfg.Engine.Logger().Error("persist agreement set", "version", set.Version, "err", perr)
					}
				}
				data, perr := set.Encode()
				if perr != nil {
					cfg.Engine.Logger().Error("encode agreement set", "version", set.Version, "err", perr)
					return
				}
				r.mu.Lock()
				tree.SetConfig(&combining.ConfigUpdate{Version: set.Version, GateEpoch: gate, Payload: data})
				r.mu.Unlock()
			}
		} else if cfg.Persist != nil {
			opt.Publish = func(set *agreement.Set, gate int) {
				if perr := cfg.Persist.SaveSet(set); perr != nil {
					cfg.Engine.Logger().Error("persist agreement set", "version", set.Version, "err", perr)
				}
			}
		}
		var perr error
		r.plane, perr = ctrlplane.New(cfg.Engine.System(), cfg.Engine, opt)
		if perr != nil {
			if r.transport != nil {
				r.transport.Close()
			}
			return nil, perr
		}
	}

	// Window tracing: the tree snapshot runs inside runWindow under r.mu, so
	// reading the node directly is safe.
	r.obsv = cfg.Engine.NewObserver(cfg.ID, nil, cfg.TraceDepth)
	if r.tree != nil {
		tree := r.tree
		r.obsv.SetTreeInfo(func() obs.TreeInfo {
			reports, broadcasts, sent := tree.MessageCounts()
			return obs.TreeInfo{
				Epoch:       tree.Epoch(),
				GlobalEpoch: tree.GlobalEpoch(),
				MsgsIn:      reports + broadcasts,
				MsgsOut:     sent,
			}
		})
	}
	if cfg.Health != nil {
		owners := make(map[string]agreement.Principal)
		for p, bs := range cfg.Backends {
			for _, b := range bs {
				owners[b] = p
			}
		}
		r.reint = health.NewReinterpreter(cfg.Engine, owners)
		r.checker = health.New(*cfg.Health, health.TCPProber(cfg.Health.Timeout))
		r.checker.OnTransition(r.reint.HandleTransition)
		r.checker.Watch(r.reint.Targets()...)
		r.obsv.SetHealthInfo(r.reint.Degraded)
		r.checker.Start()
	}

	r.names = cfg.Engine.PrincipalNames()
	if cfg.Trace != nil {
		r.tracer = obs.NewTracer(*cfg.Trace, cfg.ID)
		if cfg.Flight != nil {
			fl := *cfg.Flight
			if fl.Logger == nil {
				fl.Logger = cfg.Engine.Logger().With("flight")
			}
			r.flight = obs.NewFlightRecorder(fl)
			r.flight.BindTracer(r.tracer)
			r.flight.BindWindows(r.obsv.Ring())
			r.flight.BindAuditor(r.obsv.Auditor())
			r.flight.SetCounters(r.adm.CountersSnapshot)
		}
	}

	r.red.SetObserver(r.obsv)
	hcfg := obs.HandlerConfig{
		Observers: []*obs.Observer{r.obsv},
		Auditor:   r.obsv.Auditor(),
		Solver:    cfg.Engine.Stats(),
		Mode:      cfg.Engine.Mode().String(),
		Window:    cfg.Engine.Window(),
		Extra:     r.extraMetrics,
		Config: func() obs.ConfigInfo {
			info := cfg.Engine.Rollout()
			return obs.ConfigInfo{
				Active:     uint64(info.Active),
				Staged:     uint64(info.Staged),
				SetVersion: info.SetVersion,
				GateEpoch:  info.GateEpoch,
				Rollouts:   info.Rollouts,
			}
		},
	}
	if r.plane != nil {
		hcfg.Control = r.plane.Handler()
	}
	if r.tree != nil {
		hcfg.Topology = r.topologyInfo
	}
	if r.tracer != nil {
		hcfg.Tracer = r.tracer
		hcfg.Flight = r.flight
	}
	r.handler = obs.NewHandler(hcfg)

	for _, svc := range cfg.Services {
		ln, lerr := net.Listen("tcp", svc.Addr)
		if lerr != nil {
			r.Close()
			return nil, fmt.Errorf("l4: listen %s: %w", svc.Addr, lerr)
		}
		r.listeners = append(r.listeners, ln)
		r.svcAddrs[svc.Principal] = ln.Addr().String()
		p := svc.Principal
		r.wg.Add(1)
		go r.acceptLoop(ln, p)
	}

	r.ticker = time.NewTicker(cfg.Engine.Window())
	r.wg.Add(1)
	go r.windowLoop()
	return r, nil
}

// Addr returns the listen address serving principal p.
func (r *Redirector) Addr(p agreement.Principal) string { return r.svcAddrs[p] }

// TreeAddr returns the tree transport address ("" without a tree).
func (r *Redirector) TreeAddr() string {
	if r.transport == nil {
		return ""
	}
	return r.transport.Addr()
}

// SetTreePeer registers a peer address after construction (tests wire nodes
// once all transports are listening).
func (r *Redirector) SetTreePeer(id combining.NodeID, addr string) {
	if r.transport != nil {
		r.transport.SetPeer(id, addr)
	}
}

// TreeStats snapshots the tree transport's health and delta-compression
// counters (all zero without a tree).
func (r *Redirector) TreeStats() treenet.Stats {
	if r.transport == nil {
		return treenet.Stats{}
	}
	return r.transport.Stats()
}

// BindNode binds a topology node id to the raw backend target currently
// serving it in the health plane, so chaos harnesses can address members
// by stable id across restarts and re-parenting (see
// health.Reinterpreter.BindNode). Errors without health checking.
func (r *Redirector) BindNode(node int, target string) error {
	if r.reint == nil {
		return fmt.Errorf("l4: health checking disabled, no node registry")
	}
	return r.reint.BindNode(node, target)
}

// NodeTarget resolves a bound topology node id to its current raw target
// ("" when unbound or health checking is off).
func (r *Redirector) NodeTarget(node int) (string, bool) {
	if r.reint == nil {
		return "", false
	}
	return r.reint.NodeTarget(node)
}

func (r *Redirector) elapsed() time.Duration { return time.Since(r.start) }

// topologyInfo snapshots the combining plane for GET /v1/topology. On a
// hierarchical layout it reports every member's current placement from the
// (possibly repaired) compiled plane; on a flat layout it reports this
// node's own neighborhood — the authoritative local view either way.
func (r *Redirector) topologyInfo() *obs.TopologyInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.tree == nil {
		return nil
	}
	self := r.tree.ID()
	info := &obs.TopologyInfo{Self: int(self)}
	if r.topoPlane != nil {
		plane := r.topoPlane()
		info.Root = int(plane.Root())
		info.Levels = plane.Levels()
		for _, id := range plane.Members() {
			node := obs.TopologyNode{ID: int(id), Parent: -1, Alive: plane.Alive(id)}
			if pl, ok := plane.Placement(id); ok {
				node.Region, node.Parent = pl.Region, int(pl.Parent)
				node.Level, node.SubRoot = pl.Level, pl.SubRoot
			}
			info.Nodes = append(info.Nodes, node)
		}
	} else {
		// Flat layout: this node only knows its own placement (and, with a
		// detector, which neighbors it pruned).
		parent, children := r.cfg.Tree.Parent, r.cfg.Tree.Children
		if r.reparent != nil {
			parent, children = r.reparent.Parent(), r.reparent.Children()
		}
		info.Levels = 2
		if parent < 0 {
			info.Root = int(self)
		} else {
			info.Root = int(parent)
		}
		removed := make(map[combining.NodeID]bool)
		if r.reparent != nil {
			for _, id := range r.reparent.Removed() {
				removed[id] = true
			}
		}
		level := 0
		if parent >= 0 {
			level = 1
			info.Nodes = append(info.Nodes, obs.TopologyNode{
				ID: int(parent), Region: "flat", Parent: -1, Alive: !removed[parent],
			})
		}
		info.Nodes = append(info.Nodes, obs.TopologyNode{
			ID: int(self), Region: "flat", Parent: int(parent), Level: level, Alive: true,
		})
		for _, c := range children {
			info.Nodes = append(info.Nodes, obs.TopologyNode{
				ID: int(c), Region: "flat", Parent: int(self), Level: level + 1, Alive: !removed[c],
			})
		}
	}
	names := r.names
	for t := 0; t < r.tree.Trees(); t++ {
		comp := obs.TopologyComponent{
			Tree:        t,
			Epoch:       r.tree.Tree(t).Epoch(),
			GlobalEpoch: r.tree.Tree(t).GlobalEpoch(),
		}
		for _, p := range r.tree.Component(t) {
			if p >= 0 && p < len(names) {
				comp.Principals = append(comp.Principals, names[p])
			}
		}
		info.Components = append(info.Components, comp)
	}
	if r.transport != nil {
		st := r.transport.Stats()
		info.DeltaBytesSaved = st.Delta.BytesSaved
		info.DeltaEntriesSuppressed = st.Delta.EntriesSuppressed
		info.DeltaEnabled = r.cfg.Tree.Topology != nil && r.cfg.Tree.Topology.Delta.Enabled()
	}
	return info
}

func (r *Redirector) onTreeMessage(tree int, from combining.NodeID, msg interface{}) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tree.OnMessage(tree, from, msg)
	if _, ok := msg.(combining.Broadcast); ok {
		r.pushGlobalLocked()
		// Pre-solve the plan the next window boundary will need while we
		// are already off the request path; the boundary's solve becomes a
		// plan-cache hit and never stalls admissions.
		r.red.Presolve(r.elapsed())
	}
}

// pushGlobalLocked publishes the settled aggregates to the engine: the
// flat single-tree path keeps the uniform SetGlobal semantics, sharded
// forests stamp each agreement component with its own tree's timestamp.
func (r *Redirector) pushGlobalLocked() {
	if r.tree.Trees() == 1 {
		if agg, at, ok := r.tree.ComponentGlobal(0); ok {
			r.red.SetGlobal(agg.Sum, at)
		}
		return
	}
	for t := 0; t < r.tree.Trees(); t++ {
		if agg, at, ok := r.tree.ComponentGlobal(t); ok {
			r.red.SetGlobalComponent(r.tree.Component(t), agg.Sum, at)
		}
	}
}

func (r *Redirector) acceptLoop(ln net.Listener, p agreement.Principal) {
	defer r.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		r.handleConn(conn, p)
	}
}

// principalName maps a principal to its span tag.
func (r *Redirector) principalName(p agreement.Principal) string {
	if int(p) >= 0 && int(p) < len(r.names) {
		return r.names[p]
	}
	return ""
}

// spanVerdict maps an admission outcome to its span verdict.
func spanVerdict(out admission.Outcome) obs.Verdict {
	switch out {
	case admission.OutcomeAdmit:
		return obs.VerdictAdmit
	case admission.OutcomeSteal:
		return obs.VerdictSteal
	case admission.OutcomeDry:
		return obs.VerdictDry
	default:
		return obs.VerdictReject
	}
}

// handleConn is the SYN-time decision: forward now, park, or drop. The
// whole path is mutex-free — affinity lookup on a striped cache, admission
// on the sharded plane, backend choice on an atomic cursor. Tracing adds
// only nil-safe stamp calls on pre-allocated spans (Begin returns nil when
// sampling is off).
func (r *Redirector) handleConn(conn net.Conn, p agreement.Principal) {
	now := time.Now()
	client := clientKey(conn)
	sp := r.tracer.Begin(r.principalName(p))
	d, det := r.adm.AdmitTraced(p, r.aff.lookup(client, now), 1)
	sp.StampAdmit(spanVerdict(det.Outcome), det.Shard)
	if !d.Admitted {
		if r.park(conn, client, p, now, sp) {
			r.parked.Add(1)
		}
		return
	}
	r.aff.pin(client, d.Owner, now)
	backend := r.chooseBackend(d.Owner)
	sp.StampBackend()
	if backend == "" {
		conn.Close()
		sp.Finish()
		return
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.spliceOrRepark(conn, client, p, backend, sp)
	}()
}

// park enqueues an over-quota connection on a pending stripe, holding the
// per-principal MaxPending bound with an atomic count. Returns false when
// the connection was dropped (bound hit or redirector stopped) instead.
// The span (nil when untraced) rides the queue entry; park/drop verdicts
// are stamped here, expiry and reinjection at the reinject pass.
func (r *Redirector) park(conn net.Conn, client string, p agreement.Principal, now time.Time, sp *obs.Span) bool {
	if r.stopped.Load() {
		conn.Close()
		sp.SetVerdict(obs.VerdictDrop)
		sp.Finish()
		return false
	}
	if r.pendCount[p].Add(1) > int64(r.cfg.MaxPending) {
		r.pendCount[p].Add(-1)
		r.dropped.Add(1)
		conn.Close()
		sp.SetVerdict(obs.VerdictDrop)
		sp.Finish()
		return false
	}
	sp.SetVerdict(obs.VerdictPark)
	sh := &r.pend[int(r.parkSeq.Add(1))%len(r.pend)]
	sh.mu.Lock()
	sh.q[p] = append(sh.q[p], heldConn{conn: conn, client: client, parkedAt: now, span: sp})
	sh.mu.Unlock()
	if r.stopped.Load() {
		// Close raced the enqueue; drain again so the connection cannot
		// leak past shutdown.
		r.drainShard(sh)
	}
	return true
}

// drainShard closes and forgets every connection parked on the stripe.
func (r *Redirector) drainShard(sh *pendShard) {
	sh.mu.Lock()
	taken := sh.q
	sh.q = make(map[agreement.Principal][]heldConn)
	sh.mu.Unlock()
	for p, queue := range taken {
		for _, hc := range queue {
			hc.conn.Close()
			hc.span.SetVerdict(obs.VerdictDrop)
			hc.span.Finish()
		}
		r.pendCount[p].Add(-int64(len(queue)))
	}
}

// chooseBackend round-robins over the owner's backends, skipping ones the
// health checker holds down. Safe without the redirector mutex: the cursor
// is atomic and the checker locks internally.
func (r *Redirector) chooseBackend(owner agreement.Principal) string {
	backends := r.cfg.Backends[owner]
	if len(backends) == 0 {
		return ""
	}
	for range backends {
		idx := int(r.rr[owner].Add(1)-1) % len(backends)
		b := backends[idx]
		if r.checker == nil || r.checker.Up(b) {
			return b
		}
	}
	return ""
}

// spliceOrRepark dials the backend and splices. A failed dial is not a
// silent connection drop: the failure feeds the health checker and the
// untouched client connection goes back to the pending queue (respecting
// MaxPending) for reinjection toward a healthier backend next window.
func (r *Redirector) spliceOrRepark(conn net.Conn, client string, svc agreement.Principal, backendAddr string, sp *obs.Span) {
	backend, err := net.DialTimeout("tcp", backendAddr, 2*time.Second)
	if err != nil {
		if r.checker != nil {
			r.checker.ReportFailure(backendAddr, r.elapsed())
		}
		r.dialFailures.Add(1)
		// The pending clock restarts: the connection already waited zero
		// windows, the dial failure is the backend's fault, not the client's.
		if r.park(conn, client, svc, time.Now(), sp) {
			r.reparked.Add(1)
		}
		return
	}
	sp.StampDial()
	r.splice(conn, backend, sp)
}

// copyBufs pools the splice buffers: 32 KiB is io.Copy's own default and
// large enough that a buffered copy of a short-lived connection needs one
// refill at most. Pooling removes a per-connection-direction allocation from
// the data path.
var copyBufs = sync.Pool{
	New: func() any { b := make([]byte, 32<<10); return &b },
}

// splice is the NAT analogue: copy bytes both ways until either side closes,
// propagating the client's half-close to the backend. A traced connection
// stamps first-byte on the backend→client direction and finishes its span
// once both halves drain.
func (r *Redirector) splice(client, backend net.Conn, sp *obs.Span) {
	defer client.Close()
	defer backend.Close()
	done := make(chan struct{})
	go func() {
		r.copyHalf(backend, client, &r.copyErrIn)
		if tc, ok := backend.(*net.TCPConn); ok {
			_ = tc.CloseWrite()
		}
		close(done)
	}()
	if sp != nil {
		r.copyHalfFirstByte(client, backend, sp, &r.copyErrOut)
	} else {
		r.copyHalf(client, backend, &r.copyErrOut)
	}
	<-done
	sp.Finish()
}

// copyHalf shuttles one splice direction through a pooled buffer and
// classifies how it ended: a clean half-close (EOF, or our own shutdown
// closing the socket) is the normal end of a TCP conversation, anything
// else — connection reset, broken pipe, a timeout — is a transport error
// worth counting. When dst is a *net.TCPConn, io.CopyBuffer defers to its
// ReadFrom and the kernel moves the bytes (splice(2)/sendfile on Linux)
// without touching the buffer at all.
func (r *Redirector) copyHalf(dst, src net.Conn, errCounter *atomic.Int64) {
	bp := copyBufs.Get().(*[]byte)
	_, err := io.CopyBuffer(dst, src, *bp)
	copyBufs.Put(bp)
	if err != nil && !errors.Is(err, net.ErrClosed) {
		errCounter.Add(1)
	}
}

// copyHalfFirstByte is copyHalf for a traced backend→client direction: the
// first read is taken by hand so the span's first-byte stamp lands on real
// response bytes, then the remainder goes through io.CopyBuffer (which still
// defers to the kernel splice fast path for the bulk of the transfer).
func (r *Redirector) copyHalfFirstByte(dst, src net.Conn, sp *obs.Span, errCounter *atomic.Int64) {
	bp := copyBufs.Get().(*[]byte)
	defer copyBufs.Put(bp)
	buf := *bp
	n, rerr := src.Read(buf)
	if n > 0 {
		sp.StampFirstByte()
		if _, werr := dst.Write(buf[:n]); werr != nil {
			if !errors.Is(werr, net.ErrClosed) {
				errCounter.Add(1)
			}
			return
		}
	}
	if rerr != nil {
		if rerr != io.EOF && !errors.Is(rerr, net.ErrClosed) {
			errCounter.Add(1)
		}
		return
	}
	_, err := io.CopyBuffer(dst, src, buf)
	if err != nil && !errors.Is(err, net.ErrClosed) {
		errCounter.Add(1)
	}
}

// windowLoop drives scheduling windows and reinjects parked connections.
func (r *Redirector) windowLoop() {
	defer r.wg.Done()
	for {
		select {
		case <-r.done:
			return
		case <-r.ticker.C:
			r.runWindow()
		}
	}
}

type launch struct {
	conn    net.Conn
	client  string
	svc     agreement.Principal
	backend string
	span    *obs.Span
}

func (r *Redirector) runWindow() {
	r.mu.Lock()
	// Parked connections already counted as demand for the estimator when
	// their admission was attempted.
	r.estBuf = r.red.LocalEstimateInto(r.estBuf)
	if r.tree != nil {
		if r.reparent != nil {
			r.reparent.Check(r.tree, r.elapsed())
		}
		r.tree.SetLocal(r.estBuf)
		r.tree.Tick()
		if r.tree.IsRoot() {
			r.pushGlobalLocked()
		}
	} else {
		r.red.SetGlobal(r.estBuf, r.elapsed())
	}
	var epoch, gate int
	var known uint64
	if r.tree != nil {
		// Rollout view for the epoch gate: this node's epoch and the
		// newest agreement-set version the tree delivered.
		epoch = r.tree.Epoch()
		if ge := r.tree.GlobalEpoch(); ge > epoch {
			epoch = ge
		}
		if cu := r.tree.Config(); cu != nil {
			known, gate = cu.Version, cu.GateEpoch
		}
		r.red.SetRollout(epoch, known)
	}
	// The plane folds the shards' arrival/admission counters, schedules the
	// next window, and flips the credit pool — in-flight admits keep
	// draining the old pool until the new one is published, so the boundary
	// never stalls them.
	err := r.adm.StartWindow(r.elapsed())
	r.persistWindowLocked(epoch, known, gate)
	r.tracer.StartWindow(uint64(r.red.Windows), uint64(r.cfg.Engine.Version()))
	r.mu.Unlock()
	if err != nil {
		return
	}

	// Reinjection: stripe by stripe, oldest parked connections first, while
	// credits last. Only one stripe's lock is held at a time, so the accept
	// path keeps parking concurrently.
	now := time.Now()
	var launches []launch
	for i := range r.pend {
		launches = append(launches, r.reinjectShard(&r.pend[i], now)...)
	}
	r.aff.sweep(now)

	for _, l := range launches {
		if l.backend == "" {
			l.conn.Close()
			l.span.Finish()
			continue
		}
		l := l
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			r.spliceOrRepark(l.conn, l.client, l.svc, l.backend, l.span)
		}()
	}
}

// persistWindowLocked appends the just-started window's durable record —
// carried credit, demand estimate, window sequence, rollout position — to
// the store, compacting the record log every persistCheckpointEvery
// appends. Runs at the window boundary under r.mu; a no-op without a
// store. Persistence errors are logged, never fatal: enforcement continues
// with a wider crash-loss bound.
func (r *Redirector) persistWindowLocked(epoch int, known uint64, gate int) {
	st := r.cfg.Persist
	if st == nil {
		return
	}
	r.persistSince++
	every := r.cfg.PersistEvery
	if every <= 1 {
		every = 1
	}
	if r.persistSince < every {
		return
	}
	r.persistSince = 0
	n := r.cfg.Engine.NumPrincipals()
	if r.persistT == nil {
		r.persistT = make([]float64, n)
		r.persistM = make([][]float64, n)
		for i := range r.persistM {
			r.persistM[i] = make([]float64, n)
		}
	}
	r.red.ExportCredits(r.persistM, r.persistT)
	r.persistE = r.red.ExportEstimate(r.persistE)
	ws := persist.WindowState{
		WindowSeq:  r.red.Windows,
		Epoch:      epoch,
		SetVersion: known,
		Gate:       gate,
		Estimate:   r.persistE,
	}
	if r.cfg.Engine.Mode() == core.Provider {
		ws.CreditTotal = r.persistT
	} else {
		ws.Credit = r.persistM
	}
	if err := st.AppendWindow(ws); err != nil {
		r.cfg.Engine.Logger().Error("persist window record", "window", ws.WindowSeq, "err", err)
		return
	}
	r.persistSeq++
	if r.persistSeq%persistCheckpointEvery == 0 {
		if err := st.Checkpoint(); err != nil {
			r.cfg.Engine.Logger().Error("persist checkpoint", "err", err)
		}
	}
}

// reinjectShard re-admits one stripe's parked connections: expired ones are
// closed, admitted ones become launches, the rest keep their queue position
// ahead of connections parked meanwhile.
func (r *Redirector) reinjectShard(sh *pendShard, now time.Time) []launch {
	sh.mu.Lock()
	taken := sh.q
	sh.q = make(map[agreement.Principal][]heldConn)
	sh.mu.Unlock()

	var launches []launch
	for p, queue := range taken {
		kept := queue[:0]
		for _, hc := range queue {
			if now.Sub(hc.parkedAt) > r.cfg.PendingTimeout {
				hc.conn.Close()
				r.expired.Add(1)
				r.pendCount[p].Add(-1)
				hc.span.AddPark(now.Sub(hc.parkedAt))
				hc.span.SetVerdict(obs.VerdictExpire)
				hc.span.Finish()
				continue
			}
			d, det := r.adm.AdmitTraced(p, r.aff.lookup(hc.client, now), 1)
			if !d.Admitted {
				kept = append(kept, hc)
				continue
			}
			r.pendCount[p].Add(-1)
			r.aff.pin(hc.client, d.Owner, now)
			hc.span.AddPark(now.Sub(hc.parkedAt))
			hc.span.StampAdmit(spanVerdict(det.Outcome), det.Shard)
			backend := r.chooseBackend(d.Owner)
			hc.span.StampBackend()
			launches = append(launches, launch{
				conn: hc.conn, client: hc.client, svc: p,
				backend: backend, span: hc.span,
			})
		}
		if len(kept) > 0 {
			sh.mu.Lock()
			sh.q[p] = append(kept, sh.q[p]...)
			sh.mu.Unlock()
		}
	}
	if r.stopped.Load() {
		r.drainShard(sh)
	}
	return launches
}

// Stats returns the forwarding counters.
func (r *Redirector) Stats() (forwarded, parked, dropped, expired int) {
	admits, _ := r.adm.Counts()
	return int(admits), int(r.parked.Load()), int(r.dropped.Load()), int(r.expired.Load())
}

// DialStats returns the backend-dial failure counters: dials that failed
// after admission, and how many of those connections were re-parked rather
// than dropped.
func (r *Redirector) DialStats() (dialFailures, reparked int) {
	return int(r.dialFailures.Load()), int(r.reparked.Load())
}

// CopyErrorStats returns the splice transport-error counters per direction
// (client→backend, backend→client). Clean half-closes are not errors.
func (r *Redirector) CopyErrorStats() (in, out int) {
	return int(r.copyErrIn.Load()), int(r.copyErrOut.Load())
}

// Observer exposes the window-trace observer (auditor counters, trace ring).
func (r *Redirector) Observer() *obs.Observer { return r.obsv }

// Tracer exposes the request-span tracer (nil unless Config.Trace was set).
func (r *Redirector) Tracer() *obs.Tracer { return r.tracer }

// Flight exposes the SLO flight recorder (nil unless Config.Flight was set).
func (r *Redirector) Flight() *obs.FlightRecorder { return r.flight }

// Plane exposes the dynamic agreement control plane (nil unless Ctrl was
// set); its HTTP surface is part of ObsHandler.
func (r *Redirector) Plane() *ctrlplane.Plane { return r.plane }

// ObsHandler exposes the observability endpoints (/metrics, /debug/windows,
// pprof) for mounting on an admin listener — the Layer-4 switch itself
// speaks raw TCP only.
func (r *Redirector) ObsHandler() *obs.Handler { return r.handler }

// extraMetrics appends the Layer-4 forwarding counters to /metrics. All of
// them fold per-shard atomics at scrape time; a scrape never contends with
// the admission path.
func (r *Redirector) extraMetrics(w io.Writer) {
	forwarded, parked, dropped, expired := r.Stats()
	obs.WriteMetric(w, "rsa_l4_forwarded_total", "counter",
		"Connections admitted and spliced to a backend.", float64(forwarded))
	obs.WriteMetric(w, "rsa_l4_parked_total", "counter",
		"Connections parked in a pending queue for lack of window credit.", float64(parked))
	obs.WriteMetric(w, "rsa_l4_dropped_total", "counter",
		"Connections dropped because a pending queue was full.", float64(dropped))
	obs.WriteMetric(w, "rsa_l4_expired_total", "counter",
		"Parked connections closed after exceeding the pending timeout.", float64(expired))
	dialFailures, reparked := r.DialStats()
	obs.WriteMetric(w, "rsa_l4_dial_failures_total", "counter",
		"Backend dials that failed after a connection was admitted.", float64(dialFailures))
	obs.WriteMetric(w, "rsa_l4_reparked_total", "counter",
		"Admitted connections returned to the pending queue after a failed backend dial.", float64(reparked))
	in, out := r.CopyErrorStats()
	obs.WriteMetricHeader(w, "rsa_l4_copy_errors_total", "counter",
		"Splice copies ended by a transport error rather than a clean half-close, by direction.")
	obs.WriteLabeled(w, "rsa_l4_copy_errors_total", "direction", "client_to_backend", float64(in))
	obs.WriteLabeled(w, "rsa_l4_copy_errors_total", "direction", "backend_to_client", float64(out))
	admission.WriteMetrics(w, r.adm)
	health.WriteMetrics(w, r.checker, r.reint)
	treenet.WriteMetrics(w, r.transport, r.reparent)
	combining.WriteHopMetrics(w, r.hop)
}

// Close stops all listeners, the window loop, and parked connections. It
// waits for in-flight spliced connections to drain, so callers should close
// or deadline long-lived client connections first.
func (r *Redirector) Close() error {
	r.closeOnce.Do(func() {
		close(r.done)
		if r.ticker != nil {
			r.ticker.Stop()
		}
		if r.checker != nil {
			r.checker.Stop()
		}
		for _, ln := range r.listeners {
			ln.Close()
		}
		r.stopped.Store(true)
		for i := range r.pend {
			r.drainShard(&r.pend[i])
		}
		if r.transport != nil {
			r.transport.Close()
		}
		// Compact the durable record log on the way out so the next boot
		// replays one record, not the whole run. The caller owns (and
		// closes) the store itself.
		if r.cfg.Persist != nil {
			if cerr := r.cfg.Persist.Checkpoint(); cerr != nil {
				r.cfg.Engine.Logger().Error("persist checkpoint", "err", cerr)
			}
		}
	})
	r.wg.Wait()
	return nil
}

func clientKey(conn net.Conn) string {
	host, _, err := net.SplitHostPort(conn.RemoteAddr().String())
	if err != nil {
		return conn.RemoteAddr().String()
	}
	return host
}
