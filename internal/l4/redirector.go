// Package l4 is the transport-layer (Layer-4) prototype of §4.2 on real
// sockets. The paper's implementation is a Linux Virtual Server kernel
// module doing NAT; here the same scheduling-relevant behavior runs in user
// space:
//
//   - one listener per principal plays the role of the per-customer virtual
//     IP the NAT switch matches on;
//   - an accepted connection is the SYN: admission is decided at accept
//     time against the window credits;
//   - admitted connections are spliced byte-for-byte to a backend (the NAT
//     rewrite), preserving client→server affinity to the extent the
//     agreements allow;
//   - connections over quota are parked in a per-principal pending queue
//     and reinjected in later windows, exactly like the paper's kernel
//     thread re-queuing packets.
package l4

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/agreement"
	"repro/internal/combining"
	"repro/internal/core"
	"repro/internal/ctrlplane"
	"repro/internal/health"
	"repro/internal/obs"
	"repro/internal/treenet"
)

// ServiceSpec binds a listener (virtual IP analogue) to a principal.
type ServiceSpec struct {
	Principal agreement.Principal
	// Addr is the listen address; use "127.0.0.1:0" for tests.
	Addr string
}

// Config parameterizes a Layer-4 redirector.
type Config struct {
	Engine *core.Engine
	ID     int
	// Services lists the per-principal listeners.
	Services []ServiceSpec
	// Backends maps owner principals to backend TCP addresses.
	Backends map[agreement.Principal][]string
	// MaxPending bounds each principal's pending-connection queue
	// (default 512); beyond it new over-quota connections are dropped.
	MaxPending int
	// PendingTimeout closes connections parked longer than this
	// (default 5 s).
	PendingTimeout time.Duration
	// AffinityTTL is how long a client address stays pinned to an owner
	// (default 30 s).
	AffinityTTL time.Duration
	// Tree, if non-nil, joins a combining tree of redirectors.
	Tree *treenet.Spec
	// TraceDepth is the window-trace ring capacity served at /debug/windows
	// (0 selects obs.DefaultRingDepth). The Layer-4 switch has no HTTP
	// server of its own; mount ObsHandler on an admin listener to scrape it.
	TraceDepth int
	// Health, if non-nil, enables active backend health checking: down
	// backends are skipped by backend choice and every down/up transition
	// re-interprets the agreements against the surviving capacity.
	Health *health.Options
	// Ctrl, if true, attaches the dynamic agreement control plane to the
	// ObsHandler admin surface (/v1/agreements, /v1/principals/...). With
	// a tree, accepted mutations are epoch-gated and piggybacked on this
	// node's downward broadcasts — enable Ctrl on the tree root only.
	Ctrl bool
	// CtrlLead is the rollout gate lead in tree epochs (<=0 selects
	// ctrlplane.DefaultLead). Ignored unless Ctrl is set.
	CtrlLead int
}

type heldConn struct {
	conn     net.Conn
	client   string
	parkedAt time.Time
}

// Redirector is the Layer-4 switch.
type Redirector struct {
	cfg       Config
	start     time.Time
	listeners []net.Listener
	svcAddrs  map[agreement.Principal]string

	mu       sync.Mutex
	red      *core.Redirector
	pending  map[agreement.Principal][]heldConn
	affinity map[string]affinityEntry
	rr       map[agreement.Principal]int

	tree      *combining.Node
	transport *treenet.Transport
	reparent  *treenet.Reparenter
	estBuf    []float64 // reused local-estimate buffer (under mu)

	checker *health.Checker
	reint   *health.Reinterpreter

	obsv    *obs.Observer
	handler *obs.Handler
	plane   *ctrlplane.Plane

	ticker    *time.Ticker
	done      chan struct{}
	closeOnce sync.Once
	stopped   bool // under mu: Close drained the pending queues
	wg        sync.WaitGroup

	// Stats (under mu).
	Forwarded    int
	Parked       int
	Dropped      int
	Expired      int
	DialFailures int // backend dials that failed after admission
	Reparked     int // connections returned to pending after a failed dial
}

type affinityEntry struct {
	owner agreement.Principal
	at    time.Time
}

// NewRedirector starts the listeners and the window loop.
func NewRedirector(cfg Config) (*Redirector, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("l4: nil engine")
	}
	if len(cfg.Services) == 0 || len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("l4: need services and backends")
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = 512
	}
	if cfg.PendingTimeout <= 0 {
		cfg.PendingTimeout = 5 * time.Second
	}
	if cfg.AffinityTTL <= 0 {
		cfg.AffinityTTL = 30 * time.Second
	}
	r := &Redirector{
		cfg:      cfg,
		start:    time.Now(),
		svcAddrs: make(map[agreement.Principal]string),
		red:      cfg.Engine.NewRedirector(cfg.ID),
		pending:  make(map[agreement.Principal][]heldConn),
		affinity: make(map[string]affinityEntry),
		rr:       make(map[agreement.Principal]int),
		done:     make(chan struct{}),
	}

	if cfg.Tree != nil {
		addr := cfg.Tree.ListenAddr
		if addr == "" {
			addr = "127.0.0.1:0"
		}
		var err error
		r.transport, err = treenet.Listen(cfg.Tree.NodeID, addr, r.onTreeMessage)
		if err != nil {
			return nil, err
		}
		for id, peerAddr := range cfg.Tree.Peers {
			r.transport.SetPeer(id, peerAddr)
		}
		r.tree = combining.NewNode(cfg.Tree.NodeID, cfg.Tree.Parent, cfg.Tree.Children,
			cfg.Engine.NumPrincipals(), r.transport.Send, r.elapsed)
		if cfg.Tree.FailureTimeout > 0 {
			members := cfg.Tree.Members
			if len(members) == 0 {
				members = append(members, cfg.Tree.NodeID)
				for id := range cfg.Tree.Peers {
					members = append(members, id)
				}
			}
			fanout := cfg.Tree.Fanout
			if fanout < 2 {
				fanout = 2
			}
			r.reparent = treenet.NewReparenter(cfg.Tree.NodeID, members, fanout, cfg.Tree.FailureTimeout)
		}
		// Configuration updates arriving from the parent stage a new
		// scheduling generation on the local engine behind the sender's
		// epoch gate; runWindow swaps once this node's epoch crosses it.
		// Runs on the transport goroutine under r.mu (OnMessage).
		r.tree.SetConfigHandler(func(cu *combining.ConfigUpdate) {
			set, derr := agreement.DecodeSet(cu.Payload)
			if derr != nil {
				cfg.Engine.Logger().Error("bad config payload", "version", cu.Version, "err", derr)
				return
			}
			if _, serr := cfg.Engine.StageSet(set, cu.GateEpoch); serr != nil {
				cfg.Engine.Logger().Error("stage agreement set", "version", cu.Version, "err", serr)
			}
		})
	}

	if cfg.Ctrl {
		opt := ctrlplane.Options{Lead: cfg.CtrlLead, Logger: cfg.Engine.Logger()}
		if r.tree != nil {
			tree := r.tree
			opt.Epoch = func() int {
				r.mu.Lock()
				defer r.mu.Unlock()
				return tree.Epoch()
			}
			opt.Publish = func(set *agreement.Set, gate int) {
				data, perr := set.Encode()
				if perr != nil {
					cfg.Engine.Logger().Error("encode agreement set", "version", set.Version, "err", perr)
					return
				}
				r.mu.Lock()
				tree.SetConfig(&combining.ConfigUpdate{Version: set.Version, GateEpoch: gate, Payload: data})
				r.mu.Unlock()
			}
		}
		var perr error
		r.plane, perr = ctrlplane.New(cfg.Engine.System(), cfg.Engine, opt)
		if perr != nil {
			if r.transport != nil {
				r.transport.Close()
			}
			return nil, perr
		}
	}

	// Window tracing: the tree snapshot runs inside runWindow under r.mu, so
	// reading the node directly is safe.
	r.obsv = cfg.Engine.NewObserver(cfg.ID, nil, cfg.TraceDepth)
	if r.tree != nil {
		tree := r.tree
		r.obsv.SetTreeInfo(func() obs.TreeInfo {
			reports, broadcasts, sent := tree.MessageCounts()
			return obs.TreeInfo{
				Epoch:       tree.Epoch(),
				GlobalEpoch: tree.GlobalEpoch(),
				MsgsIn:      reports + broadcasts,
				MsgsOut:     sent,
			}
		})
	}
	if cfg.Health != nil {
		owners := make(map[string]agreement.Principal)
		for p, bs := range cfg.Backends {
			for _, b := range bs {
				owners[b] = p
			}
		}
		r.reint = health.NewReinterpreter(cfg.Engine, owners)
		r.checker = health.New(*cfg.Health, health.TCPProber(cfg.Health.Timeout))
		r.checker.OnTransition(r.reint.HandleTransition)
		r.checker.Watch(r.reint.Targets()...)
		r.obsv.SetHealthInfo(r.reint.Degraded)
		r.checker.Start()
	}

	r.red.SetObserver(r.obsv)
	hcfg := obs.HandlerConfig{
		Observers: []*obs.Observer{r.obsv},
		Auditor:   r.obsv.Auditor(),
		Solver:    cfg.Engine.Stats(),
		Mode:      cfg.Engine.Mode().String(),
		Window:    cfg.Engine.Window(),
		Extra:     r.extraMetrics,
		Config: func() obs.ConfigInfo {
			info := cfg.Engine.Rollout()
			return obs.ConfigInfo{
				Active:     uint64(info.Active),
				Staged:     uint64(info.Staged),
				SetVersion: info.SetVersion,
				GateEpoch:  info.GateEpoch,
				Rollouts:   info.Rollouts,
			}
		},
	}
	if r.plane != nil {
		hcfg.Control = r.plane.Handler()
	}
	r.handler = obs.NewHandler(hcfg)

	for _, svc := range cfg.Services {
		ln, err := net.Listen("tcp", svc.Addr)
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("l4: listen %s: %w", svc.Addr, err)
		}
		r.listeners = append(r.listeners, ln)
		r.svcAddrs[svc.Principal] = ln.Addr().String()
		p := svc.Principal
		r.wg.Add(1)
		go r.acceptLoop(ln, p)
	}

	r.ticker = time.NewTicker(cfg.Engine.Window())
	r.wg.Add(1)
	go r.windowLoop()
	return r, nil
}

// Addr returns the listen address serving principal p.
func (r *Redirector) Addr(p agreement.Principal) string { return r.svcAddrs[p] }

// TreeAddr returns the tree transport address ("" without a tree).
func (r *Redirector) TreeAddr() string {
	if r.transport == nil {
		return ""
	}
	return r.transport.Addr()
}

// SetTreePeer registers a peer address after construction (tests wire nodes
// once all transports are listening).
func (r *Redirector) SetTreePeer(id combining.NodeID, addr string) {
	if r.transport != nil {
		r.transport.SetPeer(id, addr)
	}
}

func (r *Redirector) elapsed() time.Duration { return time.Since(r.start) }

func (r *Redirector) onTreeMessage(from combining.NodeID, msg interface{}) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tree.OnMessage(from, msg)
	if _, ok := msg.(combining.Broadcast); ok {
		r.pushGlobalLocked()
	}
}

func (r *Redirector) pushGlobalLocked() {
	if agg, at, ok := r.tree.Global(); ok {
		r.red.SetGlobal(agg.Sum, at)
	}
}

func (r *Redirector) acceptLoop(ln net.Listener, p agreement.Principal) {
	defer r.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		r.handleConn(conn, p)
	}
}

// handleConn is the SYN-time decision: forward now, park, or drop.
func (r *Redirector) handleConn(conn net.Conn, p agreement.Principal) {
	client := clientKey(conn)
	r.mu.Lock()
	preferred := agreement.Principal(-1)
	if e, ok := r.affinity[client]; ok && time.Since(e.at) < r.cfg.AffinityTTL {
		preferred = e.owner
	}
	d := r.red.AdmitPreferring(p, preferred)
	if !d.Admitted {
		if len(r.pending[p]) >= r.cfg.MaxPending {
			r.Dropped++
			r.mu.Unlock()
			conn.Close()
			return
		}
		r.pending[p] = append(r.pending[p], heldConn{conn: conn, client: client, parkedAt: time.Now()})
		r.Parked++
		r.mu.Unlock()
		return
	}
	backend := r.chooseBackendLocked(d.Owner)
	r.affinity[client] = affinityEntry{owner: d.Owner, at: time.Now()}
	r.Forwarded++
	r.mu.Unlock()

	if backend == "" {
		conn.Close()
		return
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.spliceOrRepark(conn, client, p, backend)
	}()
}

// chooseBackendLocked round-robins over the owner's backends, skipping ones
// the health checker holds down.
func (r *Redirector) chooseBackendLocked(owner agreement.Principal) string {
	backends := r.cfg.Backends[owner]
	for range backends {
		idx := r.rr[owner] % len(backends)
		r.rr[owner]++
		b := backends[idx]
		if r.checker == nil || r.checker.Up(b) {
			return b
		}
	}
	return ""
}

// spliceOrRepark dials the backend and splices. A failed dial is not a
// silent connection drop: the failure feeds the health checker and the
// untouched client connection goes back to the pending queue (respecting
// MaxPending) for reinjection toward a healthier backend next window.
func (r *Redirector) spliceOrRepark(conn net.Conn, client string, svc agreement.Principal, backendAddr string) {
	backend, err := net.DialTimeout("tcp", backendAddr, 2*time.Second)
	if err != nil {
		if r.checker != nil {
			r.checker.ReportFailure(backendAddr, r.elapsed())
		}
		r.mu.Lock()
		r.DialFailures++
		if r.stopped || len(r.pending[svc]) >= r.cfg.MaxPending {
			r.Dropped++
			r.mu.Unlock()
			conn.Close()
			return
		}
		// The pending clock restarts: the connection already waited zero
		// windows, the dial failure is the backend's fault, not the client's.
		r.pending[svc] = append(r.pending[svc], heldConn{conn: conn, client: client, parkedAt: time.Now()})
		r.Reparked++
		r.mu.Unlock()
		return
	}
	splice(conn, backend)
}

// splice is the NAT analogue: copy bytes both ways until either side closes.
func splice(client, backend net.Conn) {
	defer client.Close()
	defer backend.Close()
	done := make(chan struct{})
	go func() {
		_, _ = io.Copy(backend, client)
		if tc, ok := backend.(*net.TCPConn); ok {
			_ = tc.CloseWrite()
		}
		close(done)
	}()
	_, _ = io.Copy(client, backend)
	<-done
}

// windowLoop drives scheduling windows and reinjects parked connections.
func (r *Redirector) windowLoop() {
	defer r.wg.Done()
	for {
		select {
		case <-r.done:
			return
		case <-r.ticker.C:
			r.runWindow()
		}
	}
}

func (r *Redirector) runWindow() {
	type launch struct {
		conn    net.Conn
		client  string
		svc     agreement.Principal
		backend string
	}
	var launches []launch

	r.mu.Lock()
	// Pending connections count as demand for the estimator.
	r.estBuf = r.red.LocalEstimateInto(r.estBuf)
	if r.tree != nil {
		if r.reparent != nil {
			r.reparent.Check(r.tree, r.elapsed())
		}
		r.tree.SetLocal(r.estBuf)
		r.tree.Tick()
		if r.tree.IsRoot() {
			r.pushGlobalLocked()
		}
	} else {
		r.red.SetGlobal(r.estBuf, r.elapsed())
	}
	if r.tree != nil {
		// Rollout view for the epoch gate: this node's epoch and the
		// newest agreement-set version the tree delivered.
		epoch := r.tree.Epoch()
		if ge := r.tree.GlobalEpoch(); ge > epoch {
			epoch = ge
		}
		var known uint64
		if cu := r.tree.Config(); cu != nil {
			known = cu.Version
		}
		r.red.SetRollout(epoch, known)
	}
	if err := r.red.StartWindow(r.elapsed()); err != nil {
		r.mu.Unlock()
		return
	}
	// Reinjection: oldest parked connections first, while credits last.
	now := time.Now()
	for p, queue := range r.pending {
		kept := queue[:0]
		for _, hc := range queue {
			if now.Sub(hc.parkedAt) > r.cfg.PendingTimeout {
				hc.conn.Close()
				r.Expired++
				continue
			}
			preferred := agreement.Principal(-1)
			if e, ok := r.affinity[hc.client]; ok && time.Since(e.at) < r.cfg.AffinityTTL {
				preferred = e.owner
			}
			d := r.red.AdmitPreferring(p, preferred)
			if !d.Admitted {
				kept = append(kept, hc)
				continue
			}
			backend := r.chooseBackendLocked(d.Owner)
			r.affinity[hc.client] = affinityEntry{owner: d.Owner, at: now}
			r.Forwarded++
			launches = append(launches, launch{conn: hc.conn, client: hc.client, svc: p, backend: backend})
		}
		r.pending[p] = kept
	}
	// Affinity table hygiene.
	for k, e := range r.affinity {
		if time.Since(e.at) > r.cfg.AffinityTTL {
			delete(r.affinity, k)
		}
	}
	r.mu.Unlock()

	for _, l := range launches {
		if l.backend == "" {
			l.conn.Close()
			continue
		}
		l := l
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			r.spliceOrRepark(l.conn, l.client, l.svc, l.backend)
		}()
	}
}

// Stats returns the forwarding counters.
func (r *Redirector) Stats() (forwarded, parked, dropped, expired int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.Forwarded, r.Parked, r.Dropped, r.Expired
}

// DialStats returns the backend-dial failure counters: dials that failed
// after admission, and how many of those connections were re-parked rather
// than dropped.
func (r *Redirector) DialStats() (dialFailures, reparked int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.DialFailures, r.Reparked
}

// Observer exposes the window-trace observer (auditor counters, trace ring).
func (r *Redirector) Observer() *obs.Observer { return r.obsv }

// Plane exposes the dynamic agreement control plane (nil unless Ctrl was
// set); its HTTP surface is part of ObsHandler.
func (r *Redirector) Plane() *ctrlplane.Plane { return r.plane }

// ObsHandler exposes the observability endpoints (/metrics, /debug/windows,
// pprof) for mounting on an admin listener — the Layer-4 switch itself
// speaks raw TCP only.
func (r *Redirector) ObsHandler() *obs.Handler { return r.handler }

// extraMetrics appends the Layer-4 forwarding counters to /metrics.
func (r *Redirector) extraMetrics(w io.Writer) {
	forwarded, parked, dropped, expired := r.Stats()
	obs.WriteMetric(w, "rsa_l4_forwarded_total", "counter",
		"Connections admitted and spliced to a backend.", float64(forwarded))
	obs.WriteMetric(w, "rsa_l4_parked_total", "counter",
		"Connections parked in a pending queue for lack of window credit.", float64(parked))
	obs.WriteMetric(w, "rsa_l4_dropped_total", "counter",
		"Connections dropped because a pending queue was full.", float64(dropped))
	obs.WriteMetric(w, "rsa_l4_expired_total", "counter",
		"Parked connections closed after exceeding the pending timeout.", float64(expired))
	dialFailures, reparked := r.DialStats()
	obs.WriteMetric(w, "rsa_l4_dial_failures_total", "counter",
		"Backend dials that failed after a connection was admitted.", float64(dialFailures))
	obs.WriteMetric(w, "rsa_l4_reparked_total", "counter",
		"Admitted connections returned to the pending queue after a failed backend dial.", float64(reparked))
	health.WriteMetrics(w, r.checker, r.reint)
	treenet.WriteMetrics(w, r.transport, r.reparent)
}

// Close stops all listeners, the window loop, and parked connections. It
// waits for in-flight spliced connections to drain, so callers should close
// or deadline long-lived client connections first.
func (r *Redirector) Close() error {
	r.closeOnce.Do(func() {
		close(r.done)
		if r.ticker != nil {
			r.ticker.Stop()
		}
		if r.checker != nil {
			r.checker.Stop()
		}
		for _, ln := range r.listeners {
			ln.Close()
		}
		r.mu.Lock()
		r.stopped = true
		for _, queue := range r.pending {
			for _, hc := range queue {
				hc.conn.Close()
			}
		}
		r.pending = make(map[agreement.Principal][]heldConn)
		r.mu.Unlock()
		if r.transport != nil {
			r.transport.Close()
		}
	})
	r.wg.Wait()
	return nil
}

func clientKey(conn net.Conn) string {
	host, _, err := net.SplitHostPort(conn.RemoteAddr().String())
	if err != nil {
		return conn.RemoteAddr().String()
	}
	return host
}
