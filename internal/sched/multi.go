package sched

import (
	"fmt"
	"math"

	"repro/internal/agreement"
	"repro/internal/lp"
)

// MultiCommunity is the community scheduler generalized to multiple
// resource dimensions (§3.1.1: "in case of multiple resource types, above
// quantities should be represented as vectors"). Each request of principal
// i consumes Cost[i][d] units of resource d on whichever server processes
// it; capacities and entitlements are per dimension.
type MultiCommunity struct {
	n, dims  int
	accs     []*agreement.Access // one per dimension
	capacity [][]float64         // [dim][owner], units/window
	cost     [][]float64         // [principal][dim], units per request
}

// NewMultiCommunity builds a multi-resource community scheduler.
//
// accs[d] is the entitlement structure for dimension d (from
// Flows.MultiAccess), capacity[d][k] is owner k's capacity in dimension d
// per window, and cost[i][d] is how much of dimension d one request of
// principal i consumes (must be positive in at least one dimension).
func NewMultiCommunity(accs []*agreement.Access, capacity, cost [][]float64) (*MultiCommunity, error) {
	if len(accs) == 0 {
		return nil, fmt.Errorf("%w: no dimensions", ErrInput)
	}
	dims := len(accs)
	n := len(accs[0].MC)
	if len(capacity) != dims {
		return nil, fmt.Errorf("%w: capacity has %d dimensions, want %d", ErrInput, len(capacity), dims)
	}
	for d := 0; d < dims; d++ {
		if len(accs[d].MC) != n {
			return nil, fmt.Errorf("%w: dimension %d has %d principals, want %d", ErrInput, d, len(accs[d].MC), n)
		}
		if len(capacity[d]) != n {
			return nil, fmt.Errorf("%w: capacity[%d] length %d, want %d", ErrInput, d, len(capacity[d]), n)
		}
	}
	if len(cost) != n {
		return nil, fmt.Errorf("%w: cost has %d principals, want %d", ErrInput, len(cost), n)
	}
	for i := range cost {
		if len(cost[i]) != dims {
			return nil, fmt.Errorf("%w: cost[%d] has %d dimensions, want %d", ErrInput, i, len(cost[i]), dims)
		}
		positive := false
		for _, c := range cost[i] {
			if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
				return nil, fmt.Errorf("%w: cost[%d] = %v", ErrInput, i, cost[i])
			}
			if c > 0 {
				positive = true
			}
		}
		if !positive {
			return nil, fmt.Errorf("%w: principal %d consumes nothing in any dimension", ErrInput, i)
		}
	}
	return &MultiCommunity{n: n, dims: dims, accs: accs, capacity: capacity, cost: cost}, nil
}

// Schedule solves the multi-dimensional max–min LP for the given global
// queue lengths (requests per window).
//
// Model: maximize θ subject to, for every principal i with n_i > 0,
//
//	Σ_k x_ik ≥ θ·n_i                     (served fraction)
//	Σ_k x_ik ≤ n_i                       (demand)
//	Σ_k x_ik ≥ min(n_i, mandatory_i)     (guarantee; mandatory_i is the
//	                                      binding minimum across dimensions)
//	x_ik ≤ min_d (MI_d+OI_d)[k][i]/cost[i][d]   (per-pair entitlements)
//	Σ_i x_ik·cost[i][d] ≤ V_k_d ∀k,d     (per-dimension capacities)
func (m *MultiCommunity) Schedule(queues []float64) (*Plan, error) {
	if len(queues) != m.n {
		return nil, fmt.Errorf("%w: queues length %d, want %d", ErrInput, len(queues), m.n)
	}
	for i, q := range queues {
		if q < 0 || math.IsNaN(q) || math.IsInf(q, 0) {
			return nil, fmt.Errorf("%w: queue[%d] = %v", ErrInput, i, q)
		}
	}

	b := lp.NewBuilder()
	theta := b.NewVar(1)
	b.Bound(theta, 0, 1)

	x := make([][]lp.Var, m.n)
	for i := 0; i < m.n; i++ {
		x[i] = make([]lp.Var, m.n)
		for k := 0; k < m.n; k++ {
			x[i][k] = -1
			if queues[i] <= 0 {
				continue
			}
			hi := m.pairLimit(i, k)
			if hi > 0 {
				x[i][k] = b.NewVar(0)
				b.Bound(x[i][k], 0, hi)
			}
		}
	}

	for i := 0; i < m.n; i++ {
		if queues[i] <= 0 {
			continue
		}
		var sum []lp.Term
		terms := []lp.Term{lp.T(theta, -queues[i])}
		for k := 0; k < m.n; k++ {
			if x[i][k] >= 0 {
				sum = append(sum, lp.T(x[i][k], 1))
				terms = append(terms, lp.T(x[i][k], 1))
			}
		}
		if len(sum) == 0 {
			b.Constrain(lp.LE, 0, lp.T(theta, queues[i]))
			continue
		}
		b.Constrain(lp.GE, 0, terms...)
		b.Constrain(lp.LE, queues[i], sum...)
		if floor := math.Min(queues[i], m.mandatoryRequests(i)); floor > 0 {
			b.Constrain(lp.GE, floor, sum...)
		}
	}

	for d := 0; d < m.dims; d++ {
		for k := 0; k < m.n; k++ {
			var load []lp.Term
			for i := 0; i < m.n; i++ {
				if x[i][k] >= 0 && m.cost[i][d] > 0 {
					load = append(load, lp.T(x[i][k], m.cost[i][d]))
				}
			}
			if len(load) > 0 {
				b.Constrain(lp.LE, m.capacity[d][k], load...)
			}
		}
	}

	sol, err := b.Solve()
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("sched: multi-community LP %v", sol.Status)
	}
	thetaStar := b.Value(sol, theta)

	// Lexicographic throughput pass at the optimal θ.
	b.Constrain(lp.GE, thetaStar-1e-9, lp.T(theta, 1))
	p2 := b.Problem()
	for j := 1; j < len(p2.Objective); j++ {
		p2.Objective[j] = 1
	}
	p2.Objective[0] = 0
	if sol2, err := lp.Solve(p2); err == nil && sol2.Status == lp.Optimal {
		sol = sol2
	}

	plan := &Plan{X: make([][]float64, m.n), Total: make([]float64, m.n), Theta: thetaStar}
	for i := 0; i < m.n; i++ {
		plan.X[i] = make([]float64, m.n)
		for k := 0; k < m.n; k++ {
			if x[i][k] >= 0 {
				v := b.Value(sol, x[i][k])
				if v < 0 {
					v = 0
				}
				plan.X[i][k] = v
				plan.Total[i] += v
			}
		}
	}
	return plan, nil
}

// pairLimit is the number of i's requests owner k can entitle: the binding
// minimum across dimensions of entitlement divided by per-request cost.
func (m *MultiCommunity) pairLimit(i, k int) float64 {
	limit := math.Inf(1)
	for d := 0; d < m.dims; d++ {
		if m.cost[i][d] <= 0 {
			continue
		}
		ent := (m.accs[d].MI[k][i] + m.accs[d].OI[k][i]) / m.cost[i][d]
		if ent < limit {
			limit = ent
		}
	}
	if math.IsInf(limit, 1) {
		return 0
	}
	return limit
}

// mandatoryRequests is the guaranteed request rate of principal i. Each
// owner k can mandatorily entitle min_d MI_d[k][i]/cost[i][d] requests (the
// binding dimension on that owner); the jointly-achievable guarantee is the
// sum of those per-owner minima. (Using min_d of the aggregate MC_d instead
// would over-promise: a floor larger than what any assignment satisfies
// simultaneously in every dimension.)
func (m *MultiCommunity) mandatoryRequests(i int) float64 {
	total := 0.0
	for k := 0; k < m.n; k++ {
		lim := math.Inf(1)
		for d := 0; d < m.dims; d++ {
			if m.cost[i][d] <= 0 {
				continue
			}
			if v := m.accs[d].MI[k][i] / m.cost[i][d]; v < lim {
				lim = v
			}
		}
		if !math.IsInf(lim, 1) {
			total += lim
		}
	}
	return total
}
