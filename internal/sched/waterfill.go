package sched

import (
	"fmt"
	"math"
	"sort"
)

// Waterfill is a direct (non-LP) max–min scheduler for a single capacity
// pool: mandatory floors first, then a progressively rising common served
// fraction until capacity or per-principal caps bind. It computes the same
// allocation as the community LP restricted to one owner, in O(n log n)
// — demonstrating the paper's claim (§3.1.2) that the architecture "is
// general and flexible enough to host other optimization criteria and
// solving methods".
type Waterfill struct {
	n        int
	mc, oc   []float64
	capacity float64
}

// NewWaterfill builds a waterfilling scheduler over one pool of capacity
// (requests/window) with per-principal mandatory/optional entitlements.
func NewWaterfill(mc, oc []float64, capacity float64) (*Waterfill, error) {
	if len(mc) != len(oc) {
		return nil, fmt.Errorf("%w: mc/oc lengths %d/%d", ErrInput, len(mc), len(oc))
	}
	if capacity < 0 || math.IsNaN(capacity) || math.IsInf(capacity, 0) {
		return nil, fmt.Errorf("%w: capacity %v", ErrInput, capacity)
	}
	for i := range mc {
		if mc[i] < 0 || oc[i] < 0 {
			return nil, fmt.Errorf("%w: negative entitlement for %d", ErrInput, i)
		}
	}
	return &Waterfill{n: len(mc), mc: mc, oc: oc, capacity: capacity}, nil
}

// WaterfillPlan is the result of one waterfilling decision.
type WaterfillPlan struct {
	// X[i] is the number of principal i's requests to admit this window.
	X []float64
	// Theta is the achieved minimum served fraction among principals with
	// demand.
	Theta float64
}

// Schedule computes the max–min allocation for the given queue lengths.
//
// Allocation model: x_i(f) = clamp(max(floor_i, f·q_i), cap_i) where
// floor_i = min(q_i, MC_i) and cap_i = min(q_i, MC_i + OC_i). Σ x_i(f) is
// non-decreasing and piecewise linear in f, so the largest feasible f is
// found over the sorted breakpoints; remaining slack beyond f = 1 is
// impossible by construction (x_i ≤ q_i).
func (w *Waterfill) Schedule(queues []float64) (*WaterfillPlan, error) {
	if len(queues) != w.n {
		return nil, fmt.Errorf("%w: queues length %d, want %d", ErrInput, len(queues), w.n)
	}
	floor := make([]float64, w.n)
	cap := make([]float64, w.n)
	sumFloor := 0.0
	for i, q := range queues {
		if q < 0 || math.IsNaN(q) || math.IsInf(q, 0) {
			return nil, fmt.Errorf("%w: queue[%d] = %v", ErrInput, i, q)
		}
		floor[i] = math.Min(q, w.mc[i])
		cap[i] = math.Min(q, w.mc[i]+w.oc[i])
		sumFloor += floor[i]
	}

	plan := &WaterfillPlan{X: make([]float64, w.n)}
	if sumFloor > w.capacity {
		// Overloaded mandatory floors: scale proportionally (the same
		// degradation the LP schedulers fall back to).
		scale := 0.0
		if sumFloor > 0 {
			scale = w.capacity / sumFloor
		}
		minFrac := math.Inf(1)
		for i := range plan.X {
			plan.X[i] = floor[i] * scale
			if queues[i] > 0 {
				minFrac = math.Min(minFrac, plan.X[i]/queues[i])
			}
		}
		if !math.IsInf(minFrac, 1) {
			plan.Theta = minFrac
		}
		return plan, nil
	}

	total := func(f float64) float64 {
		s := 0.0
		for i := range queues {
			s += clampAlloc(f, queues[i], floor[i], cap[i])
		}
		return s
	}

	// Candidate breakpoints of Σx(f): where f·q_i crosses floor_i or cap_i.
	bps := []float64{0, 1}
	for i, q := range queues {
		if q <= 0 {
			continue
		}
		bps = append(bps, floor[i]/q, cap[i]/q)
	}
	sort.Float64s(bps)
	fStar := 0.0
	for _, f := range bps {
		if f < 0 || f > 1 {
			continue
		}
		if total(f) <= w.capacity+1e-9 {
			fStar = f
		}
	}
	// Interpolate within the segment above fStar if capacity remains.
	if rem := w.capacity - total(fStar); rem > 1e-9 && fStar < 1 {
		slope := 0.0
		for i, q := range queues {
			if q > 0 && fStar*q >= floor[i]-1e-12 && fStar*q < cap[i]-1e-12 {
				slope += q
			}
		}
		if slope > 0 {
			fStar = math.Min(1, fStar+rem/slope)
		}
	}

	minFrac := math.Inf(1)
	for i, q := range queues {
		plan.X[i] = clampAlloc(fStar, q, floor[i], cap[i])
		if q > 0 {
			minFrac = math.Min(minFrac, plan.X[i]/q)
		}
	}
	if !math.IsInf(minFrac, 1) {
		plan.Theta = minFrac
	}
	return plan, nil
}

func clampAlloc(f, q, floor, cap float64) float64 {
	x := f * q
	if x < floor {
		x = floor
	}
	if x > cap {
		x = cap
	}
	return x
}
