package sched

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/metrics"
)

func TestPlanCacheHitsQuantizedVectors(t *testing.T) {
	stats := &metrics.SolverStats{}
	c := NewPlanCache[int](1e-6, 0, stats)
	solves := 0
	solve := func() (int, error) { solves++; return 7, nil }

	plan, hit, err := c.Do([]float64{80, 40}, solve)
	if err != nil || hit || plan != 7 {
		t.Fatalf("first Do = (%d, %v, %v)", plan, hit, err)
	}
	// Within half a quantum: same key, no new solve.
	plan, hit, err = c.Do([]float64{80 + 4e-7, 40}, solve)
	if err != nil || !hit || plan != 7 {
		t.Fatalf("quantized Do = (%d, %v, %v)", plan, hit, err)
	}
	// More than a quantum away: distinct key.
	if _, hit, _ = c.Do([]float64{80 + 5e-6, 40}, solve); hit {
		t.Fatal("vector a few quanta away hit the cache")
	}
	if solves != 2 {
		t.Fatalf("solves = %d, want 2", solves)
	}
	if stats.CacheHits() != 1 || stats.CacheMisses() != 2 {
		t.Fatalf("stats = %d hits / %d misses, want 1/2", stats.CacheHits(), stats.CacheMisses())
	}
}

func TestPlanCacheSingleflight(t *testing.T) {
	c := NewPlanCache[int](0, 0, nil)
	var solves atomic.Int32
	release := make(chan struct{})
	const callers = 8
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			plan, _, err := c.Do([]float64{1, 2, 3}, func() (int, error) {
				solves.Add(1)
				<-release
				return 42, nil
			})
			if err != nil || plan != 42 {
				t.Errorf("Do = (%d, %v)", plan, err)
			}
		}()
	}
	close(release)
	wg.Wait()
	// At least one caller solved; racing callers may each have won the map
	// insert before any finished, but identical keys collapse once present.
	if n := solves.Load(); n < 1 || n > callers {
		t.Fatalf("solves = %d", n)
	}
	if _, hit, _ := c.Do([]float64{1, 2, 3}, func() (int, error) { return 0, nil }); !hit {
		t.Fatal("follow-up lookup missed")
	}
}

func TestPlanCacheDoesNotRetainErrors(t *testing.T) {
	c := NewPlanCache[int](0, 0, nil)
	boom := errors.New("boom")
	if _, _, err := c.Do([]float64{5}, func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if c.Len() != 0 {
		t.Fatalf("failed solve retained, Len = %d", c.Len())
	}
	plan, hit, err := c.Do([]float64{5}, func() (int, error) { return 9, nil })
	if err != nil || hit || plan != 9 {
		t.Fatalf("retry Do = (%d, %v, %v)", plan, hit, err)
	}
}

func TestPlanCacheEviction(t *testing.T) {
	c := NewPlanCache[int](0, 4, nil)
	for i := 0; i < 9; i++ {
		v := float64(i)
		if _, _, err := c.Do([]float64{v}, func() (int, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() > 4 {
		t.Fatalf("Len = %d exceeds limit 4", c.Len())
	}
	// Entries from before the epoch reset are gone; re-solving works.
	plan, _, err := c.Do([]float64{0}, func() (int, error) { return 100, nil })
	if err != nil || plan == 0 {
		t.Fatalf("post-eviction Do = (%d, %v)", plan, err)
	}
}

func TestPlanCacheDefaults(t *testing.T) {
	c := NewPlanCache[int](0, 0, nil)
	if c.Quantum() != DefaultQuantum {
		t.Fatalf("quantum = %g, want %g", c.Quantum(), DefaultQuantum)
	}
	if c.limit != DefaultCacheLimit {
		t.Fatalf("limit = %d, want %d", c.limit, DefaultCacheLimit)
	}
}

func TestPlanCacheSaturatesExtremeQueues(t *testing.T) {
	c := NewPlanCache[int](0, 0, nil)
	// Far beyond int64 quanta both vectors saturate to one key — still a
	// deterministic lookup, never an overflow panic.
	k1 := string(c.appendKey(nil, []float64{1e300}))
	k2 := string(c.appendKey(nil, []float64{2e300}))
	if k1 != k2 {
		t.Fatal("saturated coordinates should share a key")
	}
}
