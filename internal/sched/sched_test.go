package sched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/agreement"
)

const tol = 1e-6

// fig9System: A and B each own a 320 req/s server; B shares [0.5, 0.5] with A.
func fig9System(t testing.TB) (*agreement.System, *agreement.Access) {
	t.Helper()
	s := agreement.New()
	a := s.MustAddPrincipal("A", 320)
	b := s.MustAddPrincipal("B", 320)
	_ = a
	s.MustSetAgreement(b, a, 0.5, 0.5)
	acc, err := s.SystemAccess()
	if err != nil {
		t.Fatal(err)
	}
	return s, acc
}

func TestCommunityFig9Phase1(t *testing.T) {
	s, acc := fig9System(t)
	c, err := NewCommunity(acc, s.Capacities(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1: A has two 400 req/s clients, B one.
	plan, err := c.Schedule([]float64{800, 400})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.Total[0]-480) > tol || math.Abs(plan.Total[1]-160) > tol {
		t.Fatalf("phase 1: totals = %v, want [480 160]", plan.Total)
	}
}

func TestCommunityFig9Phase3(t *testing.T) {
	s, acc := fig9System(t)
	c, err := NewCommunity(acc, s.Capacities(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Phase 3: A down to one client (400 req/s) — below its MC of 480.
	plan, err := c.Schedule([]float64{400, 400})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.Total[0]-400) > tol || math.Abs(plan.Total[1]-240) > tol {
		t.Fatalf("phase 3: totals = %v, want [400 240]", plan.Total)
	}
	// The paper notes B's server should only carry 80 of A's requests.
	if math.Abs(plan.X[0][1]-80) > tol {
		t.Fatalf("A's load on B's server = %g, want 80", plan.X[0][1])
	}
}

func TestCommunityFig9Phase2BAlone(t *testing.T) {
	s, acc := fig9System(t)
	c, err := NewCommunity(acc, s.Capacities(), nil)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := c.Schedule([]float64{0, 400})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.Total[1]-320) > tol || plan.Total[0] != 0 {
		t.Fatalf("phase 2: totals = %v, want [0 320]", plan.Total)
	}
}

// TestCommunityFig7ThetaSplit: both principals have [0.2, 1] agreements with
// a 250 req/s owner; A's queue is twice B's, so A is served at twice B's rate.
func TestCommunityFig7ThetaSplit(t *testing.T) {
	s := agreement.New()
	owner := s.MustAddPrincipal("S", 250)
	a := s.MustAddPrincipal("A", 0)
	bb := s.MustAddPrincipal("B", 0)
	s.MustSetAgreement(owner, a, 0.2, 1)
	s.MustSetAgreement(owner, bb, 0.2, 1)
	acc, err := s.SystemAccess()
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCommunity(acc, s.Capacities(), nil)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := c.Schedule([]float64{0, 270, 135})
	if err != nil {
		t.Fatal(err)
	}
	wantA, wantB := 250.0*270/405, 250.0*135/405 // 166.7 and 83.3
	if math.Abs(plan.Total[a]-wantA) > 1e-3 || math.Abs(plan.Total[bb]-wantB) > 1e-3 {
		t.Fatalf("totals = %v, want A=%g B=%g", plan.Total, wantA, wantB)
	}
	if math.Abs(plan.Theta-250.0/405) > 1e-6 {
		t.Fatalf("theta = %g, want %g", plan.Theta, 250.0/405)
	}
}

// TestCommunityWorkConservation: the lexicographic pass must use leftover
// capacity beyond the max-min point when one queue saturates at its demand.
func TestCommunityWorkConservation(t *testing.T) {
	s := agreement.New()
	owner := s.MustAddPrincipal("S", 100)
	a := s.MustAddPrincipal("A", 0)
	bb := s.MustAddPrincipal("B", 0)
	s.MustSetAgreement(owner, a, 0, 1)
	s.MustSetAgreement(owner, bb, 0, 1)
	acc, err := s.SystemAccess()
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCommunity(acc, s.Capacities(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// θ* = 1 (total demand 60 < capacity 100); both queues fully served.
	plan, err := c.Schedule([]float64{0, 40, 20})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.Total[a]-40) > tol || math.Abs(plan.Total[bb]-20) > tol {
		t.Fatalf("totals = %v, want [0 40 20]", plan.Total)
	}
}

func TestCommunityLocalityCap(t *testing.T) {
	s, acc := fig9System(t)
	// This redirector may push at most 100 req/window to B's server.
	loc := []float64{math.Inf(1), 100}
	c, err := NewCommunity(acc, s.Capacities(), loc)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := c.Schedule([]float64{800, 400})
	if err != nil {
		t.Fatal(err)
	}
	if plan.X[0][1]+plan.X[1][1] > 100+tol {
		t.Fatalf("locality cap violated: load on B = %g", plan.X[0][1]+plan.X[1][1])
	}
}

func TestCommunityInputValidation(t *testing.T) {
	s, acc := fig9System(t)
	if _, err := NewCommunity(acc, []float64{1}, nil); err == nil {
		t.Error("short capacity vector accepted")
	}
	if _, err := NewCommunity(acc, s.Capacities(), []float64{1}); err == nil {
		t.Error("short locality vector accepted")
	}
	c, err := NewCommunity(acc, s.Capacities(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Schedule([]float64{1}); err == nil {
		t.Error("short queue vector accepted")
	}
	if _, err := c.Schedule([]float64{-1, 0}); err == nil {
		t.Error("negative queue accepted")
	}
	if _, err := c.Schedule([]float64{math.NaN(), 0}); err == nil {
		t.Error("NaN queue accepted")
	}
}

func TestCommunityZeroQueues(t *testing.T) {
	s, acc := fig9System(t)
	c, err := NewCommunity(acc, s.Capacities(), nil)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := c.Schedule([]float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Total[0] != 0 || plan.Total[1] != 0 {
		t.Fatalf("totals = %v, want zeros", plan.Total)
	}
}

// TestCommunityUnentitledQueueDragsTheta: a principal with requests but no
// entitlement anywhere forces θ to 0 (its queue can never be served).
func TestCommunityUnentitledQueueDragsTheta(t *testing.T) {
	s := agreement.New()
	owner := s.MustAddPrincipal("S", 100)
	a := s.MustAddPrincipal("A", 0)
	out := s.MustAddPrincipal("outsider", 0)
	s.MustSetAgreement(owner, a, 0.5, 1)
	acc, err := s.SystemAccess()
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCommunity(acc, s.Capacities(), nil)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := c.Schedule([]float64{0, 50, 10})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Theta > tol {
		t.Fatalf("theta = %g, want 0 (outsider unservable)", plan.Theta)
	}
	if plan.Total[out] != 0 {
		t.Fatalf("outsider served %g requests", plan.Total[out])
	}
	// Work conservation still serves A fully.
	if math.Abs(plan.Total[a]-50) > tol {
		t.Fatalf("A served %g, want 50", plan.Total[a])
	}
}

func fig10Provider(t testing.TB, priceA, priceB float64) *Provider {
	t.Helper()
	// Provider with two 320 req/s servers; A [0.8,1], B [0.2,1].
	s := agreement.New()
	sp := s.MustAddPrincipal("S", 640)
	a := s.MustAddPrincipal("A", 0)
	bb := s.MustAddPrincipal("B", 0)
	s.MustSetAgreement(sp, a, 0.8, 1)
	s.MustSetAgreement(sp, bb, 0.2, 1)
	acc, err := s.SystemAccess()
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProvider(
		[]float64{acc.MC[a], acc.MC[bb]},
		[]float64{acc.OC[a], acc.OC[bb]},
		[]float64{priceA, priceB}, 640)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProviderFig10Phase1(t *testing.T) {
	p := fig10Provider(t, 2, 1)
	// Two clients for A (800 req/s), one for B (400 req/s).
	plan, err := p.Schedule([]float64{800, 400})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.X[0]-512) > tol || math.Abs(plan.X[1]-128) > tol {
		t.Fatalf("phase 1: X = %v, want [512 128]", plan.X)
	}
}

func TestProviderFig10Phase3(t *testing.T) {
	p := fig10Provider(t, 2, 1)
	// A down to one client machine (400 req/s).
	plan, err := p.Schedule([]float64{400, 400})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.X[0]-400) > tol || math.Abs(plan.X[1]-240) > tol {
		t.Fatalf("phase 3: X = %v, want [400 240]", plan.X)
	}
}

func TestProviderFig10Phase2BAlone(t *testing.T) {
	p := fig10Provider(t, 2, 1)
	plan, err := p.Schedule([]float64{0, 400})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.X[1]-400) > tol {
		t.Fatalf("phase 2: X = %v, want B=400", plan.X)
	}
}

// TestProviderFig6 reproduces the L7 experiment's arithmetic with equal
// prices: V=320, A [0.2,1] with 270 req/s demand, B [0.8,1] with 135.
func TestProviderFig6(t *testing.T) {
	s := agreement.New()
	sp := s.MustAddPrincipal("S", 320)
	a := s.MustAddPrincipal("A", 0)
	bb := s.MustAddPrincipal("B", 0)
	s.MustSetAgreement(sp, a, 0.2, 1)
	s.MustSetAgreement(sp, bb, 0.8, 1)
	acc, err := s.SystemAccess()
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProvider(
		[]float64{acc.MC[a], acc.MC[bb]},
		[]float64{acc.OC[a], acc.OC[bb]},
		[]float64{1, 1}, 320)
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1/3: both active. B's 135 < its 256 mandatory ⇒ all served;
	// A absorbs the remaining 185.
	plan, err := p.Schedule([]float64{270, 135})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.X[1]-135) > tol || math.Abs(plan.X[0]-185) > tol {
		t.Fatalf("phase 1: X = %v, want [185 135]", plan.X)
	}
	// Phase 2: only A active, limited by its two clients.
	plan, err = p.Schedule([]float64{270, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.X[0]-270) > tol {
		t.Fatalf("phase 2: X = %v, want A=270", plan.X)
	}
}

func TestProviderIncomeValue(t *testing.T) {
	p := fig10Provider(t, 2, 1)
	plan, err := p.Schedule([]float64{800, 400})
	if err != nil {
		t.Fatal(err)
	}
	want := 2*(512-512.0) + 1*(128-128.0)
	if math.Abs(plan.Income-want) > tol {
		t.Fatalf("income = %g, want %g", plan.Income, want)
	}
	// With extra capacity beyond mandatory, income becomes positive.
	p2, err := NewProvider([]float64{100, 100}, []float64{100, 100}, []float64{3, 1}, 300)
	if err != nil {
		t.Fatal(err)
	}
	plan2, err := p2.Schedule([]float64{200, 200})
	if err != nil {
		t.Fatal(err)
	}
	// A gets 200 (mandatory 100 + 100 optional at price 3), B the rest (100).
	if math.Abs(plan2.X[0]-200) > tol || math.Abs(plan2.X[1]-100) > tol {
		t.Fatalf("X = %v, want [200 100]", plan2.X)
	}
	if math.Abs(plan2.Income-(3*100+1*0)) > tol {
		t.Fatalf("income = %g, want 300", plan2.Income)
	}
}

func TestProviderValidation(t *testing.T) {
	if _, err := NewProvider([]float64{1}, []float64{1, 2}, []float64{1}, 10); err == nil {
		t.Error("mismatched oc length accepted")
	}
	if _, err := NewProvider([]float64{1}, []float64{1}, []float64{-1}, 10); err == nil {
		t.Error("negative price accepted")
	}
	if _, err := NewProvider([]float64{1}, []float64{1}, []float64{1}, -5); err == nil {
		t.Error("negative capacity accepted")
	}
	p, err := NewProvider([]float64{1}, []float64{1}, []float64{1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Schedule([]float64{1, 2}); err == nil {
		t.Error("wrong queue length accepted")
	}
	if _, err := p.Schedule([]float64{math.Inf(1)}); err == nil {
		t.Error("infinite queue accepted")
	}
}

// TestProviderOverloadFallback: mandatory floors exceeding capacity must not
// error; capacity is split proportionally to clipped mandatory demand.
func TestProviderOverloadFallback(t *testing.T) {
	p, err := NewProvider([]float64{300, 100}, []float64{0, 0}, []float64{1, 1}, 200)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := p.Schedule([]float64{300, 100})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.X[0]-150) > tol || math.Abs(plan.X[1]-50) > tol {
		t.Fatalf("X = %v, want proportional [150 50]", plan.X)
	}
}

// TestQuickCommunityInvariants property-checks every plan against the LP's
// own constraints: capacity, entitlement bounds, demand, non-negativity.
func TestQuickCommunityInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := agreement.New()
		n := 2 + rng.Intn(4)
		for i := 0; i < n; i++ {
			s.MustAddPrincipal(string(rune('A'+i)), float64(50+rng.Intn(500)))
		}
		for i := 0; i < n; i++ {
			budget := 1.0
			for j := 0; j < n; j++ {
				if j == i || rng.Float64() < 0.5 {
					continue
				}
				lb := rng.Float64() * budget * 0.8
				ub := lb + rng.Float64()*(1-lb)
				if s.SetAgreement(agreement.Principal(i), agreement.Principal(j), lb, ub) != nil {
					continue
				}
				budget -= lb
			}
		}
		acc, err := s.SystemAccess()
		if err != nil {
			return false
		}
		c, err := NewCommunity(acc, s.Capacities(), nil)
		if err != nil {
			return false
		}
		queues := make([]float64, n)
		for i := range queues {
			queues[i] = float64(rng.Intn(1000))
		}
		plan, err := c.Schedule(queues)
		if err != nil {
			return false
		}
		for k := 0; k < n; k++ {
			load := 0.0
			for i := 0; i < n; i++ {
				if plan.X[i][k] < -tol {
					return false
				}
				if plan.X[i][k] > acc.MI[k][i]+acc.OI[k][i]+1e-5 {
					return false
				}
				load += plan.X[i][k]
			}
			if load > s.Capacity(agreement.Principal(k))+1e-5 {
				return false
			}
		}
		for i := 0; i < n; i++ {
			if plan.Total[i] > queues[i]+1e-5 {
				return false
			}
			// Mandatory guarantee: every principal is served at least
			// min(queue, MC) — the heart of agreement enforcement.
			floor := math.Min(queues[i], acc.MC[i])
			if plan.Total[i] < floor-1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickProviderInvariants property-checks provider plans.
func TestQuickProviderInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		capTotal := float64(100 + rng.Intn(900))
		mc := make([]float64, n)
		oc := make([]float64, n)
		prices := make([]float64, n)
		budget := 1.0
		for i := 0; i < n; i++ {
			frac := rng.Float64() * budget
			budget -= frac
			mc[i] = frac * capTotal
			oc[i] = rng.Float64() * (capTotal - mc[i])
			prices[i] = rng.Float64() * 5
		}
		p, err := NewProvider(mc, oc, prices, capTotal)
		if err != nil {
			return false
		}
		queues := make([]float64, n)
		for i := range queues {
			queues[i] = float64(rng.Intn(2000))
		}
		plan, err := p.Schedule(queues)
		if err != nil {
			return false
		}
		total := 0.0
		for i := 0; i < n; i++ {
			x := plan.X[i]
			if x < -tol || x > queues[i]+1e-5 || x > mc[i]+oc[i]+1e-5 {
				return false
			}
			if x < math.Min(mc[i], queues[i])-1e-5 {
				return false // mandatory guarantee violated
			}
			total += x
		}
		return total <= capTotal+1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCommunitySchedule(b *testing.B) {
	s, acc := fig9System(b)
	c, err := NewCommunity(acc, s.Capacities(), nil)
	if err != nil {
		b.Fatal(err)
	}
	q := []float64{800, 400}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Schedule(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProviderSchedule(b *testing.B) {
	p, err := NewProvider(
		[]float64{512, 128}, []float64{128, 512}, []float64{2, 1}, 640)
	if err != nil {
		b.Fatal(err)
	}
	q := []float64{800, 400}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Schedule(q); err != nil {
			b.Fatal(err)
		}
	}
}
