// Package sched implements the window schedulers of §3.1.2: given the
// per-principal entitlements computed by internal/agreement and the queue
// lengths observed in the current time window, decide how many requests from
// each principal's queue to forward to each owner's servers.
//
// Two optimization models are provided, matching the paper's two contexts:
//
//   - Community: maximize θ = min_i Σ_k x_ik / n_i, the minimum fraction of
//     any queue served this window (a proxy for minimizing the maximum
//     response time), subject to capacities and agreement bounds.
//   - Provider: maximize the provider's income Σ_i p_i (x_i − MC_i) subject
//     to capacity and agreement bounds.
//
// Both models are solved as linear programs (internal/lp) and then re-solved
// lexicographically to maximize total throughput at the optimal primary
// objective, so the plans are work-conserving: no server capacity is left
// idle while admissible requests wait.
//
// Because the paper re-solves every 100 ms window, both schedulers compile
// their constraint structure once at construction: each Schedule call only
// rewrites the handful of coefficients that depend on the queue vector and
// re-solves on a pooled lp.Solver whose tableau memory persists across
// windows, with the lexicographic second pass warm-started from the first
// pass's basis. The allocating from-scratch path is kept as scheduleSlow for
// differential tests; fast and slow plans are byte-identical.
//
// All quantities are in requests per time window: callers scale rate
// entitlements (req/s) by the window duration before building a scheduler.
package sched

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/agreement"
	"repro/internal/lp"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// ErrInput reports malformed scheduler input.
var ErrInput = errors.New("sched: invalid input")

// lexTol is how far below its optimum the primary objective may sit during
// the lexicographic throughput pass.
const lexTol = 1e-9

// Community schedules a community context. Construct with NewCommunity.
type Community struct {
	n        int
	acc      *agreement.Access
	capacity []float64 // per-owner server capacity, requests/window
	locality []float64 // optional per-owner push caps c_i (nil: none)

	// Compiled fast-path structure: tmpl is the LP for an all-positive
	// queue vector; the row indices below locate the entries Schedule
	// rewrites per call. xv[i][k] is the LP variable carrying traffic from
	// principal i to owner k (-1 when no entitlement exists).
	tmpl      *lp.Problem
	obj2      []float64 // lexicographic throughput objective
	xv        [][]lp.Var
	servedRow []int // Σ_k x_ik − θ n_i ≥ 0      (θ coefficient ← −n_i)
	demandRow []int // Σ_k x_ik ≤ n_i            (RHS ← n_i)
	floorRow  []int // Σ_k x_ik ≥ min(n_i, MC_i) (RHS ← floor, 0 on fallback)
	blockRow  []int // θ n_i ≤ 0 for unentitled i (θ coefficient ← n_i)
	// Bound/capacity row positions, recorded so NewCommunityFrom can
	// re-derive an existing template's bounds under renegotiated
	// entitlements without recompiling: varHiRow[v] is variable v's upper
	// bound row (x_ik ≤ MI+OI), capRow/locRow[k] owner k's capacity and
	// locality rows (-1 when absent).
	varHiRow []int
	capRow   []int
	locRow   []int

	// states pools per-worker template clones + solvers so that distinct
	// queue vectors can be scheduled in parallel.
	states sync.Pool

	stats     *metrics.SolverStats
	logger    *obs.Logger
	warnLimit *obs.RateLimit
}

// commState is one worker's mutable solve state.
type commState struct {
	p      *lp.Problem
	solver *lp.Solver
}

// NewCommunity builds a community scheduler. capacity[k] is owner k's server
// capacity in requests per window; acc must come from the same principal
// numbering. locality, if non-nil, caps the requests this redirector may
// push to each owner's servers per window (the paper's c_i extension).
func NewCommunity(acc *agreement.Access, capacity, locality []float64) (*Community, error) {
	n := len(acc.MC)
	if len(capacity) != n {
		return nil, fmt.Errorf("%w: capacity length %d, want %d", ErrInput, len(capacity), n)
	}
	if locality != nil && len(locality) != n {
		return nil, fmt.Errorf("%w: locality length %d, want %d", ErrInput, len(locality), n)
	}
	c := &Community{n: n, acc: acc, capacity: capacity, locality: locality}
	c.warnLimit = obs.NewRateLimit(5*time.Second, 1)
	c.compile()
	c.states.New = func() any {
		return &commState{p: c.tmpl.Clone(), solver: lp.NewSolver()}
	}
	return c, nil
}

// NewCommunityFrom builds a community scheduler for renegotiated
// entitlements by re-deriving the bounds of prev's compiled template: when
// the new Access has the same entitlement sparsity and mandatory-floor
// pattern (the common case for a pure [lb, ub] or capacity renegotiation),
// the constraint layout is identical and only the upper-bound, capacity, and
// locality rows need new right-hand sides — no recompilation, and the
// template stays row-for-row identical to a fresh compile, so plans are
// bit-identical too. Structurally incompatible inputs fall back to a full
// NewCommunity. prev is read-only and remains valid: in-flight windows on
// the previous generation are unaffected.
func NewCommunityFrom(prev *Community, acc *agreement.Access, capacity, locality []float64) (*Community, error) {
	n := len(acc.MC)
	if prev == nil || prev.n != n || !prev.compatible(acc, locality) {
		return NewCommunity(acc, capacity, locality)
	}
	if len(capacity) != n {
		return nil, fmt.Errorf("%w: capacity length %d, want %d", ErrInput, len(capacity), n)
	}
	c := &Community{
		n: n, acc: acc, capacity: capacity, locality: locality,
		obj2: prev.obj2, xv: prev.xv,
		servedRow: prev.servedRow, demandRow: prev.demandRow,
		floorRow: prev.floorRow, blockRow: prev.blockRow,
		varHiRow: prev.varHiRow, capRow: prev.capRow, locRow: prev.locRow,
	}
	c.warnLimit = obs.NewRateLimit(5*time.Second, 1)
	c.tmpl = prev.tmpl.Clone()
	cons := c.tmpl.Constraints
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			if v := c.xv[i][k]; v >= 0 {
				cons[c.varHiRow[v]].RHS = acc.MI[k][i] + acc.OI[k][i]
			}
		}
	}
	for k := 0; k < n; k++ {
		if r := c.capRow[k]; r >= 0 {
			cons[r].RHS = capacity[k]
		}
		if r := c.locRow[k]; r >= 0 {
			cons[r].RHS = locality[k]
		}
	}
	c.states.New = func() any {
		return &commState{p: c.tmpl.Clone(), solver: lp.NewSolver()}
	}
	return c, nil
}

// compatible reports whether acc/locality produce the same compiled row
// structure as the receiver's: same entitlement sparsity (which x variables
// exist), same floor pattern (which floor rows exist), and the same locality
// row pattern.
func (c *Community) compatible(acc *agreement.Access, locality []float64) bool {
	if len(acc.MC) != c.n {
		return false
	}
	if (c.locality == nil) != (locality == nil) {
		return false
	}
	for i := 0; i < c.n; i++ {
		if (c.acc.MC[i] > 0) != (acc.MC[i] > 0) {
			return false
		}
		for k := 0; k < c.n; k++ {
			if (c.acc.MI[k][i]+c.acc.OI[k][i] > 0) != (acc.MI[k][i]+acc.OI[k][i] > 0) {
				return false
			}
		}
		if locality != nil && math.IsInf(c.locality[i], 1) != math.IsInf(locality[i], 1) {
			return false
		}
	}
	return true
}

// SetStats wires shared fast-path telemetry (may be nil). Typically called
// by the owning engine right after construction.
func (c *Community) SetStats(s *metrics.SolverStats) { c.stats = s }

// SetLogger wires a structured logger for enforcement-degradation events
// (nil falls back to the process default).
func (c *Community) SetLogger(l *obs.Logger) { c.logger = l }

func (c *Community) log() *obs.Logger {
	if c.logger != nil {
		return c.logger
	}
	return obs.Default().With("sched")
}

// compile builds the constraint template once. It emits rows in exactly the
// order the from-scratch path does for an all-positive queue vector, so the
// fast path's pivot sequence — and therefore its plans — are identical.
func (c *Community) compile() {
	n := c.n
	b := lp.NewBuilder()
	theta := b.NewVar(1)
	b.Bound(theta, 0, 1)
	c.varHiRow = append(c.varHiRow[:0], b.NumConstraints()-1)

	c.xv = make([][]lp.Var, n)
	for i := 0; i < n; i++ {
		c.xv[i] = make([]lp.Var, n)
		for k := 0; k < n; k++ {
			c.xv[i][k] = -1
			if hi := c.acc.MI[k][i] + c.acc.OI[k][i]; hi > 0 {
				v := b.NewVar(0)
				b.Bound(v, 0, hi)
				c.varHiRow = append(c.varHiRow, b.NumConstraints()-1)
				c.xv[i][k] = v
			}
		}
	}

	c.servedRow = filled(n, -1)
	c.demandRow = filled(n, -1)
	c.floorRow = filled(n, -1)
	c.blockRow = filled(n, -1)
	for i := 0; i < n; i++ {
		// Placeholder coefficients/RHS (for n_i = 1) are rewritten by every
		// Schedule call before solving.
		terms := []lp.Term{lp.T(theta, -1)}
		var sum []lp.Term
		for k := 0; k < n; k++ {
			if c.xv[i][k] >= 0 {
				terms = append(terms, lp.T(c.xv[i][k], 1))
				sum = append(sum, lp.T(c.xv[i][k], 1))
			}
		}
		if len(sum) == 0 {
			// No entitlement anywhere: θ must account for an unserved queue.
			c.blockRow[i] = b.NumConstraints()
			b.Constrain(lp.LE, 0, lp.T(theta, 1))
			continue
		}
		c.servedRow[i] = b.NumConstraints()
		b.Constrain(lp.GE, 0, terms...)
		c.demandRow[i] = b.NumConstraints()
		b.Constrain(lp.LE, 1, sum...)
		// Mandatory floor Σ_k x_ik ≥ min(n_i, MC_i) — the paper's lower
		// bound, clipped to demand instead of dropped so a principal whose
		// queue is below its mandatory level is still served in full.
		if c.acc.MC[i] > 0 {
			c.floorRow[i] = b.NumConstraints()
			b.Constrain(lp.GE, 1, sum...)
		}
	}

	// Server capacity: Σ_i x_ik ≤ V_k, and locality caps.
	c.capRow = filled(n, -1)
	c.locRow = filled(n, -1)
	for k := 0; k < n; k++ {
		var load []lp.Term
		for i := 0; i < n; i++ {
			if c.xv[i][k] >= 0 {
				load = append(load, lp.T(c.xv[i][k], 1))
			}
		}
		if len(load) == 0 {
			continue
		}
		c.capRow[k] = b.NumConstraints()
		b.Constrain(lp.LE, c.capacity[k], load...)
		if c.locality != nil && !math.IsInf(c.locality[k], 1) {
			c.locRow[k] = b.NumConstraints()
			b.Constrain(lp.LE, c.locality[k], load...)
		}
	}

	c.tmpl = b.Problem()
	c.obj2 = make([]float64, b.NumVars())
	for j := 1; j < len(c.obj2); j++ {
		c.obj2[j] = 1 // every x variable; θ stays out of the throughput pass
	}
}

func filled(n, v int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = v
	}
	return s
}

// Plan is the result of a community scheduling decision.
type Plan struct {
	// X[i][k] is the number of requests from principal i's queue to forward
	// to owner k's servers this window. Fractional values are expected; the
	// admission layer (internal/window) carries remainders across windows.
	X [][]float64
	// Total[i] = Σ_k X[i][k].
	Total []float64
	// Theta is the achieved minimum served fraction min_i Total[i]/n_i.
	Theta float64
}

// Schedule solves the community LP for the given global queue lengths
// (requests per window, indexed by principal). Distinct queue vectors may be
// scheduled concurrently; each call checks out pooled solver state.
func (c *Community) Schedule(queues []float64) (*Plan, error) {
	if len(queues) != c.n {
		return nil, fmt.Errorf("%w: queues length %d, want %d", ErrInput, len(queues), c.n)
	}
	for i, q := range queues {
		if q < 0 || math.IsNaN(q) || math.IsInf(q, 0) {
			return nil, fmt.Errorf("%w: queue[%d] = %v", ErrInput, i, q)
		}
	}

	st := c.states.Get().(*commState)
	defer c.states.Put(st)
	plan, err := c.solveFast(st, queues, true)
	if err == nil {
		return plan, nil
	}
	// Mandatory floors can only be infeasible if entitlements exceed
	// capacities (possible when the caller's Access and capacity vectors
	// disagree); degrade gracefully rather than stalling the window, but
	// make the disagreement visible: it means some mandatory guarantee is
	// not enforceable as configured.
	total := c.stats.FloorFallback()
	c.log().WarnRate(c.warnLimit, "community window infeasible with mandatory floors; retrying without floors",
		"reason", "entitlements exceed capacities", "err", err, "fallbacks", total)
	return c.solveFast(st, queues, false)
}

// solveFast rewrites the queue-dependent entries of the worker's template in
// place and solves it on the worker's persistent solver.
func (c *Community) solveFast(st *commState, queues []float64, floors bool) (*Plan, error) {
	cons := st.p.Constraints
	for i := 0; i < c.n; i++ {
		q := queues[i]
		if r := c.servedRow[i]; r >= 0 {
			cons[r].Coeffs[0] = -q
			cons[c.demandRow[i]].RHS = q
		}
		if r := c.floorRow[i]; r >= 0 {
			floor := 0.0
			if floors {
				floor = math.Min(q, c.acc.MC[i])
			}
			cons[r].RHS = floor
		}
		if r := c.blockRow[i]; r >= 0 {
			cons[r].Coeffs[0] = q
		}
	}

	sol, err := st.solver.SolveLex(st.p, lexTol, c.obj2)
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("sched: community LP %v", sol.Status)
	}
	return c.extractPlan(sol.X, sol.Primary), nil
}

// extractPlan copies the LP assignment into a Plan (one backing allocation).
func (c *Community) extractPlan(x []float64, theta float64) *Plan {
	n := c.n
	plan := &Plan{
		X:     make([][]float64, n),
		Total: make([]float64, n),
		Theta: theta,
	}
	flat := make([]float64, n*n)
	for i := 0; i < n; i++ {
		plan.X[i], flat = flat[:n:n], flat[n:]
		for k := 0; k < n; k++ {
			if v := c.xv[i][k]; v >= 0 {
				val := x[v]
				if val < 0 {
					val = 0
				}
				plan.X[i][k] = val
				plan.Total[i] += val
			}
		}
	}
	return plan
}

// scheduleSlow is the allocating reference path: it rebuilds the whole
// program through a Builder on every call and solves it on a fresh solver.
// Differential tests assert the fast path matches it byte for byte.
func (c *Community) scheduleSlow(queues []float64) (*Plan, error) {
	plan, err := c.solveSlow(queues, true)
	if err == nil {
		return plan, nil
	}
	return c.solveSlow(queues, false)
}

func (c *Community) solveSlow(queues []float64, floors bool) (*Plan, error) {
	n := c.n
	b := lp.NewBuilder()
	theta := b.NewVar(1)
	b.Bound(theta, 0, 1)

	// x[i][k] variables only where an entitlement exists.
	x := make([][]lp.Var, n)
	for i := 0; i < n; i++ {
		x[i] = make([]lp.Var, n)
		for k := 0; k < n; k++ {
			x[i][k] = -1
			if queues[i] <= 0 {
				continue
			}
			if hi := c.acc.MI[k][i] + c.acc.OI[k][i]; hi > 0 {
				x[i][k] = b.NewVar(0)
				b.Bound(x[i][k], 0, hi)
			}
		}
	}

	for i := 0; i < n; i++ {
		if queues[i] <= 0 {
			continue
		}
		terms := []lp.Term{lp.T(theta, -queues[i])}
		var sum []lp.Term
		for k := 0; k < n; k++ {
			if x[i][k] >= 0 {
				terms = append(terms, lp.T(x[i][k], 1))
				sum = append(sum, lp.T(x[i][k], 1))
			}
		}
		if len(sum) == 0 {
			b.Constrain(lp.LE, 0, lp.T(theta, queues[i]))
			continue
		}
		// Σ_k x_ik − θ n_i ≥ 0.
		b.Constrain(lp.GE, 0, terms...)
		// Σ_k x_ik ≤ n_i.
		b.Constrain(lp.LE, queues[i], sum...)
		if floors {
			if floor := math.Min(queues[i], c.acc.MC[i]); floor > 0 {
				b.Constrain(lp.GE, floor, sum...)
			}
		}
	}

	for k := 0; k < n; k++ {
		var load []lp.Term
		for i := 0; i < n; i++ {
			if x[i][k] >= 0 {
				load = append(load, lp.T(x[i][k], 1))
			}
		}
		if len(load) == 0 {
			continue
		}
		b.Constrain(lp.LE, c.capacity[k], load...)
		if c.locality != nil && !math.IsInf(c.locality[k], 1) {
			b.Constrain(lp.LE, c.locality[k], load...)
		}
	}

	obj2 := make([]float64, b.NumVars())
	for j := 1; j < len(obj2); j++ {
		obj2[j] = 1
	}
	sol, err := lp.SolveLex(b.Problem(), lexTol, obj2)
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("sched: community LP %v", sol.Status)
	}

	plan := &Plan{
		X:     make([][]float64, n),
		Total: make([]float64, n),
		Theta: sol.Primary,
	}
	for i := 0; i < n; i++ {
		plan.X[i] = make([]float64, n)
		for k := 0; k < n; k++ {
			if x[i][k] >= 0 {
				v := sol.X[x[i][k]]
				if v < 0 {
					v = 0
				}
				plan.X[i][k] = v
				plan.Total[i] += v
			}
		}
	}
	return plan, nil
}

// Provider schedules a single service provider's servers across customers.
type Provider struct {
	n        int
	mc, oc   []float64 // per-customer entitlements, requests/window
	prices   []float64
	capacity float64 // aggregate server capacity, requests/window

	// Compiled fast-path structure (see Community for the pattern).
	tmpl  *lp.Problem
	obj2  []float64
	loRow []int // x_i ≥ min(MC_i, n_i)                 (RHS ← lo)
	hiRow []int // x_i ≤ min(MC_i+OC_i, n_i, capacity)  (RHS ← hi)
	// capRow is the aggregate capacity row, recorded so NewProviderFrom can
	// re-derive the template under renegotiated entitlements.
	capRow int

	states sync.Pool

	stats     *metrics.SolverStats
	logger    *obs.Logger
	warnLimit *obs.RateLimit
}

// NewProvider builds a provider scheduler. mc/oc are the customers'
// mandatory/optional processing rates per window (from agreement.Access,
// excluding the provider itself), prices[i] is the per-request price paid by
// customer i beyond its mandatory level, and capacity is the provider's
// total server capacity per window.
func NewProvider(mc, oc, prices []float64, capacity float64) (*Provider, error) {
	n := len(mc)
	if len(oc) != n || len(prices) != n {
		return nil, fmt.Errorf("%w: mc/oc/prices lengths %d/%d/%d", ErrInput, n, len(oc), len(prices))
	}
	if capacity < 0 || math.IsNaN(capacity) || math.IsInf(capacity, 0) {
		return nil, fmt.Errorf("%w: capacity %v", ErrInput, capacity)
	}
	for i := 0; i < n; i++ {
		if mc[i] < 0 || oc[i] < 0 || prices[i] < 0 {
			return nil, fmt.Errorf("%w: negative entitlement or price for customer %d", ErrInput, i)
		}
	}
	p := &Provider{n: n, mc: mc, oc: oc, prices: prices, capacity: capacity}
	p.warnLimit = obs.NewRateLimit(5*time.Second, 1)
	p.compile()
	p.states.New = func() any {
		return &commState{p: p.tmpl.Clone(), solver: lp.NewSolver()}
	}
	return p, nil
}

// NewProviderFrom builds a provider scheduler for renegotiated entitlements
// by re-deriving the bounds of prev's compiled template. Schedule rewrites
// the per-customer lo/hi rows from mc/oc/capacity on every call, so when the
// floor pattern (mc_i > 0) and the compiled price objective are unchanged
// only the aggregate capacity row needs a new right-hand side. Incompatible
// inputs fall back to a full NewProvider; prev remains valid either way.
func NewProviderFrom(prev *Provider, mc, oc, prices []float64, capacity float64) (*Provider, error) {
	if prev == nil || !prev.compatible(mc, prices) {
		return NewProvider(mc, oc, prices, capacity)
	}
	n := len(mc)
	if len(oc) != n || len(prices) != n {
		return nil, fmt.Errorf("%w: mc/oc/prices lengths %d/%d/%d", ErrInput, n, len(oc), len(prices))
	}
	if capacity < 0 || math.IsNaN(capacity) || math.IsInf(capacity, 0) {
		return nil, fmt.Errorf("%w: capacity %v", ErrInput, capacity)
	}
	for i := 0; i < n; i++ {
		if mc[i] < 0 || oc[i] < 0 {
			return nil, fmt.Errorf("%w: negative entitlement for customer %d", ErrInput, i)
		}
	}
	p := &Provider{
		n: n, mc: mc, oc: oc, prices: prices, capacity: capacity,
		obj2: prev.obj2, loRow: prev.loRow, hiRow: prev.hiRow, capRow: prev.capRow,
	}
	p.warnLimit = obs.NewRateLimit(5*time.Second, 1)
	p.tmpl = prev.tmpl.Clone()
	p.tmpl.Constraints[p.capRow].RHS = capacity
	p.states.New = func() any {
		return &commState{p: p.tmpl.Clone(), solver: lp.NewSolver()}
	}
	return p, nil
}

// compatible reports whether mc/prices produce the same compiled row
// structure and objective as the receiver's: the same floor pattern (which
// lo rows exist) and identical per-request prices (compiled into the
// objective, not rewritten per call).
func (p *Provider) compatible(mc, prices []float64) bool {
	if len(mc) != p.n || len(prices) != p.n {
		return false
	}
	for i := 0; i < p.n; i++ {
		if (p.mc[i] > 0) != (mc[i] > 0) || p.prices[i] != prices[i] {
			return false
		}
	}
	return true
}

// SetStats wires shared fast-path telemetry (may be nil).
func (p *Provider) SetStats(s *metrics.SolverStats) { p.stats = s }

// SetLogger wires a structured logger for enforcement-degradation events
// (nil falls back to the process default).
func (p *Provider) SetLogger(l *obs.Logger) { p.logger = l }

func (p *Provider) log() *obs.Logger {
	if p.logger != nil {
		return p.logger
	}
	return obs.Default().With("sched")
}

// compile builds the provider template, mirroring the from-scratch build
// order for an all-positive queue vector.
func (p *Provider) compile() {
	b := lp.NewBuilder()
	p.loRow = filled(p.n, -1)
	p.hiRow = filled(p.n, -1)
	var all []lp.Term
	for i := 0; i < p.n; i++ {
		v := b.NewVar(p.prices[i])
		if p.mc[i] > 0 {
			p.loRow[i] = b.NumConstraints()
			b.Constrain(lp.GE, p.mc[i], lp.T(v, 1))
		}
		p.hiRow[i] = b.NumConstraints()
		b.Constrain(lp.LE, math.Min(p.mc[i]+p.oc[i], p.capacity), lp.T(v, 1))
		all = append(all, lp.T(v, 1))
	}
	p.capRow = b.NumConstraints()
	b.Constrain(lp.LE, p.capacity, all...)

	p.tmpl = b.Problem()
	p.obj2 = make([]float64, p.n)
	for j := range p.obj2 {
		p.obj2[j] = 1
	}
}

// ProviderPlan is the result of a provider scheduling decision.
type ProviderPlan struct {
	// X[i] is the number of customer i's requests to admit this window.
	X []float64
	// Income is Σ_i p_i (X[i] − MC_i), the paper's objective value.
	Income float64
}

// Schedule solves the provider LP for the given per-customer queue lengths.
// Distinct queue vectors may be scheduled concurrently.
func (p *Provider) Schedule(queues []float64) (*ProviderPlan, error) {
	if len(queues) != p.n {
		return nil, fmt.Errorf("%w: queues length %d, want %d", ErrInput, len(queues), p.n)
	}
	for i, q := range queues {
		if q < 0 || math.IsNaN(q) || math.IsInf(q, 0) {
			return nil, fmt.Errorf("%w: queue[%d] = %v", ErrInput, i, q)
		}
	}

	st := p.states.Get().(*commState)
	defer p.states.Put(st)
	cons := st.p.Constraints
	for i := 0; i < p.n; i++ {
		q := queues[i]
		lo := math.Min(p.mc[i], q)                               // mandatory, clipped to demand
		hi := math.Min(math.Min(p.mc[i]+p.oc[i], q), p.capacity) // agreement + demand
		if hi < lo {
			hi = lo
		}
		if r := p.loRow[i]; r >= 0 {
			cons[r].RHS = lo
		}
		cons[p.hiRow[i]].RHS = hi
	}

	sol, err := st.solver.SolveLex(st.p, lexTol, p.obj2)
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		// Mandatory floors exceed capacity: serve mandatory shares scaled
		// proportionally instead of failing the window, and surface the
		// entitlement/capacity disagreement.
		total := p.stats.FloorFallback()
		p.log().WarnRate(p.warnLimit, "provider window not optimal with mandatory floors; scaling mandatory shares to capacity",
			"reason", "entitlements exceed capacity", "status", sol.Status, "fallbacks", total)
		return p.scaledMandatory(queues), nil
	}
	return p.extractPlan(sol.X), nil
}

func (p *Provider) extractPlan(x []float64) *ProviderPlan {
	plan := &ProviderPlan{X: make([]float64, p.n)}
	for i := 0; i < p.n; i++ {
		v := x[i]
		if v < 0 {
			v = 0
		}
		plan.X[i] = v
		plan.Income += p.prices[i] * (v - p.mc[i])
	}
	return plan
}

// scheduleSlow is the allocating reference path for differential tests.
func (p *Provider) scheduleSlow(queues []float64) (*ProviderPlan, error) {
	b := lp.NewBuilder()
	xs := make([]lp.Var, p.n)
	var all []lp.Term
	for i := 0; i < p.n; i++ {
		q := queues[i]
		if q < 0 || math.IsNaN(q) || math.IsInf(q, 0) {
			return nil, fmt.Errorf("%w: queue[%d] = %v", ErrInput, i, q)
		}
		xs[i] = b.NewVar(p.prices[i])
		lo := math.Min(p.mc[i], q)
		hi := math.Min(math.Min(p.mc[i]+p.oc[i], q), p.capacity)
		if hi < lo {
			hi = lo
		}
		b.Bound(xs[i], lo, hi)
		all = append(all, lp.T(xs[i], 1))
	}
	b.Constrain(lp.LE, p.capacity, all...)

	obj2 := make([]float64, p.n)
	for j := range obj2 {
		obj2[j] = 1
	}
	sol, err := lp.SolveLex(b.Problem(), lexTol, obj2)
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		// The same capacity-scaling degradation as the fast path: count and
		// log it here too, so the reference path never falls back invisibly.
		total := p.stats.FloorFallback()
		p.log().WarnRate(p.warnLimit, "provider window not optimal with mandatory floors; scaling mandatory shares to capacity",
			"reason", "entitlements exceed capacity", "status", sol.Status, "fallbacks", total)
		return p.scaledMandatory(queues), nil
	}
	return p.extractPlan(sol.X), nil
}

// scaledMandatory distributes capacity proportionally to clipped mandatory
// demands — the safe fallback when floors alone exceed capacity.
func (p *Provider) scaledMandatory(queues []float64) *ProviderPlan {
	plan := &ProviderPlan{X: make([]float64, p.n)}
	total := 0.0
	for i := 0; i < p.n; i++ {
		total += math.Min(p.mc[i], queues[i])
	}
	if total <= 0 {
		return plan
	}
	scale := math.Min(1, p.capacity/total)
	for i := 0; i < p.n; i++ {
		plan.X[i] = math.Min(p.mc[i], queues[i]) * scale
		plan.Income += p.prices[i] * (plan.X[i] - p.mc[i])
	}
	return plan
}
