// Package sched implements the window schedulers of §3.1.2: given the
// per-principal entitlements computed by internal/agreement and the queue
// lengths observed in the current time window, decide how many requests from
// each principal's queue to forward to each owner's servers.
//
// Two optimization models are provided, matching the paper's two contexts:
//
//   - Community: maximize θ = min_i Σ_k x_ik / n_i, the minimum fraction of
//     any queue served this window (a proxy for minimizing the maximum
//     response time), subject to capacities and agreement bounds.
//   - Provider: maximize the provider's income Σ_i p_i (x_i − MC_i) subject
//     to capacity and agreement bounds.
//
// Both models are solved as linear programs (internal/lp) and then re-solved
// lexicographically to maximize total throughput at the optimal primary
// objective, so the plans are work-conserving: no server capacity is left
// idle while admissible requests wait.
//
// All quantities are in requests per time window: callers scale rate
// entitlements (req/s) by the window duration before building a scheduler.
package sched

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/agreement"
	"repro/internal/lp"
)

// ErrInput reports malformed scheduler input.
var ErrInput = errors.New("sched: invalid input")

// Community schedules a community context. Construct with NewCommunity.
type Community struct {
	n        int
	acc      *agreement.Access
	capacity []float64 // per-owner server capacity, requests/window
	locality []float64 // optional per-owner push caps c_i (nil: none)
}

// NewCommunity builds a community scheduler. capacity[k] is owner k's server
// capacity in requests per window; acc must come from the same principal
// numbering. locality, if non-nil, caps the requests this redirector may
// push to each owner's servers per window (the paper's c_i extension).
func NewCommunity(acc *agreement.Access, capacity, locality []float64) (*Community, error) {
	n := len(acc.MC)
	if len(capacity) != n {
		return nil, fmt.Errorf("%w: capacity length %d, want %d", ErrInput, len(capacity), n)
	}
	if locality != nil && len(locality) != n {
		return nil, fmt.Errorf("%w: locality length %d, want %d", ErrInput, len(locality), n)
	}
	return &Community{n: n, acc: acc, capacity: capacity, locality: locality}, nil
}

// Plan is the result of a community scheduling decision.
type Plan struct {
	// X[i][k] is the number of requests from principal i's queue to forward
	// to owner k's servers this window. Fractional values are expected; the
	// admission layer (internal/window) carries remainders across windows.
	X [][]float64
	// Total[i] = Σ_k X[i][k].
	Total []float64
	// Theta is the achieved minimum served fraction min_i Total[i]/n_i.
	Theta float64
}

// Schedule solves the community LP for the given global queue lengths
// (requests per window, indexed by principal).
func (c *Community) Schedule(queues []float64) (*Plan, error) {
	if len(queues) != c.n {
		return nil, fmt.Errorf("%w: queues length %d, want %d", ErrInput, len(queues), c.n)
	}
	for i, q := range queues {
		if q < 0 || math.IsNaN(q) || math.IsInf(q, 0) {
			return nil, fmt.Errorf("%w: queue[%d] = %v", ErrInput, i, q)
		}
	}

	plan, err := c.solve(queues, true)
	if err == nil {
		return plan, nil
	}
	// Mandatory floors can only be infeasible if entitlements exceed
	// capacities (possible when the caller's Access and capacity vectors
	// disagree); degrade gracefully rather than stalling the window.
	return c.solve(queues, false)
}

func (c *Community) solve(queues []float64, floors bool) (*Plan, error) {
	n := c.n
	b := lp.NewBuilder()
	theta := b.Var("theta", 1)
	b.Bound(theta, 0, 1)

	// x[i][k] variables only where an entitlement exists.
	x := make([][]lp.Var, n)
	for i := 0; i < n; i++ {
		x[i] = make([]lp.Var, n)
		for k := 0; k < n; k++ {
			x[i][k] = -1
			if queues[i] <= 0 {
				continue
			}
			if hi := c.acc.MI[k][i] + c.acc.OI[k][i]; hi > 0 {
				x[i][k] = b.Var(fmt.Sprintf("x_%d_%d", i, k), 0)
				b.Bound(x[i][k], 0, hi)
			}
		}
	}

	for i := 0; i < n; i++ {
		if queues[i] <= 0 {
			continue
		}
		terms := []lp.Term{lp.T(theta, -queues[i])}
		var sum []lp.Term
		for k := 0; k < n; k++ {
			if x[i][k] >= 0 {
				terms = append(terms, lp.T(x[i][k], 1))
				sum = append(sum, lp.T(x[i][k], 1))
			}
		}
		if len(sum) == 0 {
			// No entitlement anywhere: θ must account for an unserved queue.
			b.Constrain(lp.LE, 0, lp.T(theta, queues[i]))
			continue
		}
		// Σ_k x_ik − θ n_i ≥ 0.
		b.Constrain(lp.GE, 0, terms...)
		// Σ_k x_ik ≤ n_i.
		b.Constrain(lp.LE, queues[i], sum...)
		// Mandatory floor Σ_k x_ik ≥ min(n_i, MC_i) — the paper's lower
		// bound, clipped to demand instead of dropped so a principal whose
		// queue is below its mandatory level is still served in full.
		if floors {
			if floor := math.Min(queues[i], c.acc.MC[i]); floor > 0 {
				b.Constrain(lp.GE, floor, sum...)
			}
		}
	}

	// Server capacity: Σ_i x_ik ≤ V_k, and locality caps.
	for k := 0; k < n; k++ {
		var load []lp.Term
		for i := 0; i < n; i++ {
			if x[i][k] >= 0 {
				load = append(load, lp.T(x[i][k], 1))
			}
		}
		if len(load) == 0 {
			continue
		}
		b.Constrain(lp.LE, c.capacity[k], load...)
		if c.locality != nil && !math.IsInf(c.locality[k], 1) {
			b.Constrain(lp.LE, c.locality[k], load...)
		}
	}

	sol, err := b.Solve()
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("sched: community LP %v", sol.Status)
	}
	thetaStar := b.Value(sol, theta)

	// Lexicographic pass: hold θ at its optimum, maximize total throughput.
	b.Constrain(lp.GE, thetaStar-1e-9, lp.T(theta, 1))
	b2 := b.Problem()
	for j := 1; j < len(b2.Objective); j++ {
		b2.Objective[j] = 1 // every x variable
	}
	b2.Objective[0] = 0
	sol2, err := lp.Solve(b2)
	if err == nil && sol2.Status == lp.Optimal {
		sol = sol2
	}

	plan := &Plan{
		X:     make([][]float64, n),
		Total: make([]float64, n),
		Theta: thetaStar,
	}
	for i := 0; i < n; i++ {
		plan.X[i] = make([]float64, n)
		for k := 0; k < n; k++ {
			if x[i][k] >= 0 {
				v := b.Value(sol, x[i][k])
				if v < 0 {
					v = 0
				}
				plan.X[i][k] = v
				plan.Total[i] += v
			}
		}
	}
	return plan, nil
}

// Provider schedules a single service provider's servers across customers.
type Provider struct {
	n        int
	mc, oc   []float64 // per-customer entitlements, requests/window
	prices   []float64
	capacity float64 // aggregate server capacity, requests/window
}

// NewProvider builds a provider scheduler. mc/oc are the customers'
// mandatory/optional processing rates per window (from agreement.Access,
// excluding the provider itself), prices[i] is the per-request price paid by
// customer i beyond its mandatory level, and capacity is the provider's
// total server capacity per window.
func NewProvider(mc, oc, prices []float64, capacity float64) (*Provider, error) {
	n := len(mc)
	if len(oc) != n || len(prices) != n {
		return nil, fmt.Errorf("%w: mc/oc/prices lengths %d/%d/%d", ErrInput, n, len(oc), len(prices))
	}
	if capacity < 0 || math.IsNaN(capacity) || math.IsInf(capacity, 0) {
		return nil, fmt.Errorf("%w: capacity %v", ErrInput, capacity)
	}
	for i := 0; i < n; i++ {
		if mc[i] < 0 || oc[i] < 0 || prices[i] < 0 {
			return nil, fmt.Errorf("%w: negative entitlement or price for customer %d", ErrInput, i)
		}
	}
	return &Provider{n: n, mc: mc, oc: oc, prices: prices, capacity: capacity}, nil
}

// ProviderPlan is the result of a provider scheduling decision.
type ProviderPlan struct {
	// X[i] is the number of customer i's requests to admit this window.
	X []float64
	// Income is Σ_i p_i (X[i] − MC_i), the paper's objective value.
	Income float64
}

// Schedule solves the provider LP for the given per-customer queue lengths.
func (p *Provider) Schedule(queues []float64) (*ProviderPlan, error) {
	if len(queues) != p.n {
		return nil, fmt.Errorf("%w: queues length %d, want %d", ErrInput, len(queues), p.n)
	}
	b := lp.NewBuilder()
	xs := make([]lp.Var, p.n)
	var all []lp.Term
	for i := 0; i < p.n; i++ {
		q := queues[i]
		if q < 0 || math.IsNaN(q) || math.IsInf(q, 0) {
			return nil, fmt.Errorf("%w: queue[%d] = %v", ErrInput, i, q)
		}
		xs[i] = b.Var(fmt.Sprintf("x_%d", i), p.prices[i])
		lo := math.Min(p.mc[i], q)                               // mandatory, clipped to demand
		hi := math.Min(math.Min(p.mc[i]+p.oc[i], q), p.capacity) // agreement + demand
		if hi < lo {
			hi = lo
		}
		b.Bound(xs[i], lo, hi)
		all = append(all, lp.T(xs[i], 1))
	}
	b.Constrain(lp.LE, p.capacity, all...)

	sol, err := b.Solve()
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		// Mandatory floors exceed capacity: serve mandatory shares scaled
		// proportionally instead of failing the window.
		return p.scaledMandatory(queues), nil
	}
	incomeStar := sol.Objective

	// Lexicographic pass: hold income, maximize throughput (relevant when
	// some prices are zero or equal).
	b.Constrain(lp.GE, incomeStar-1e-9, termsFor(xs, p.prices)...)
	b2 := b.Problem()
	for j := range b2.Objective {
		b2.Objective[j] = 1
	}
	if sol2, err := lp.Solve(b2); err == nil && sol2.Status == lp.Optimal {
		sol = sol2
	}

	plan := &ProviderPlan{X: make([]float64, p.n)}
	for i := 0; i < p.n; i++ {
		v := b.Value(sol, xs[i])
		if v < 0 {
			v = 0
		}
		plan.X[i] = v
		plan.Income += p.prices[i] * (v - p.mc[i])
	}
	return plan, nil
}

func termsFor(xs []lp.Var, coeffs []float64) []lp.Term {
	terms := make([]lp.Term, len(xs))
	for i, v := range xs {
		terms[i] = lp.T(v, coeffs[i])
	}
	return terms
}

// scaledMandatory distributes capacity proportionally to clipped mandatory
// demands — the safe fallback when floors alone exceed capacity.
func (p *Provider) scaledMandatory(queues []float64) *ProviderPlan {
	plan := &ProviderPlan{X: make([]float64, p.n)}
	total := 0.0
	for i := 0; i < p.n; i++ {
		total += math.Min(p.mc[i], queues[i])
	}
	if total <= 0 {
		return plan
	}
	scale := math.Min(1, p.capacity/total)
	for i := 0; i < p.n; i++ {
		plan.X[i] = math.Min(p.mc[i], queues[i]) * scale
		plan.Income += p.prices[i] * (plan.X[i] - p.mc[i])
	}
	return plan
}
