package sched_test

import (
	"fmt"

	"repro/internal/sched"
)

// The Figure 10 window decision: a 640 req/s provider, customer A [0.8, 1]
// paying twice B's price [0.2, 1], both overloaded.
func ExampleProvider_Schedule() {
	p, err := sched.NewProvider(
		[]float64{512, 128}, // mandatory rates
		[]float64{128, 512}, // optional rates
		[]float64{2, 1},     // prices beyond mandatory
		640)
	if err != nil {
		panic(err)
	}
	plan, err := p.Schedule([]float64{800, 400})
	if err != nil {
		panic(err)
	}
	fmt.Printf("A=%.0f B=%.0f income=%.0f\n", plan.X[0], plan.X[1], plan.Income)
	// Output: A=512 B=128 income=0
}

// Waterfilling reproduces the Figure 7 community split without an LP
// solver: A has twice B's load, so it is served at twice B's rate.
func ExampleWaterfill_Schedule() {
	w, err := sched.NewWaterfill(
		[]float64{50, 50},   // mandatory
		[]float64{200, 200}, // optional
		250)
	if err != nil {
		panic(err)
	}
	plan, err := w.Schedule([]float64{270, 135})
	if err != nil {
		panic(err)
	}
	fmt.Printf("A=%.1f B=%.1f theta=%.3f\n", plan.X[0], plan.X[1], plan.Theta)
	// Output: A=166.7 B=83.3 theta=0.617
}
