package sched

import (
	"math"
	"math/rand"
	"repro/internal/agreement"
	"testing"
)

// perturbAccess scales every existing entitlement by a random positive
// factor, preserving the sparsity and floor patterns NewCommunityFrom keys
// on — the shape of a pure [lb, ub] renegotiation.
func perturbAccess(rng *rand.Rand, acc *agreement.Access) *agreement.Access {
	n := len(acc.MC)
	out := &agreement.Access{
		MI: make([][]float64, n),
		OI: make([][]float64, n),
		MC: make([]float64, n),
		OC: make([]float64, n),
	}
	for k := 0; k < n; k++ {
		out.MI[k] = make([]float64, n)
		out.OI[k] = make([]float64, n)
		for i := 0; i < n; i++ {
			if acc.MI[k][i] > 0 {
				out.MI[k][i] = acc.MI[k][i] * (0.25 + rng.Float64())
			}
			if acc.OI[k][i] > 0 {
				out.OI[k][i] = acc.OI[k][i] * (0.25 + rng.Float64())
			}
			out.MC[i] += out.MI[k][i]
			out.OC[i] += out.OI[k][i]
		}
	}
	return out
}

func samePlan(a, b *Plan) bool {
	if a.Theta != b.Theta {
		return false
	}
	for i := range a.X {
		for k := range a.X[i] {
			if a.X[i][k] != b.X[i][k] {
				return false
			}
		}
	}
	return true
}

// TestCommunityFromMatchesFresh pins the control plane's re-derivation
// guarantee: a scheduler re-derived from a structurally compatible
// predecessor must produce plans bit-identical to a freshly compiled one,
// and the predecessor must keep producing its own old plans untouched.
func TestCommunityFromMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for iter := 0; iter < 50; iter++ {
		n := 2 + rng.Intn(4)
		acc := randomAccess(rng, n)
		capacity := make([]float64, n)
		for k := range capacity {
			capacity[k] = math.Round(rng.Float64()*400) / 2
		}
		var locality []float64
		if rng.Intn(2) == 0 {
			locality = make([]float64, n)
			for k := range locality {
				locality[k] = math.Round(rng.Float64() * 300)
			}
		}
		prev, err := NewCommunity(acc, capacity, locality)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		queues := make([]float64, n)
		for i := range queues {
			queues[i] = 1 + math.Round(rng.Float64()*500)/2
		}
		prevPlan, err := prev.Schedule(queues)
		if err != nil {
			t.Fatalf("iter %d: prev schedule: %v", iter, err)
		}

		acc2 := perturbAccess(rng, acc)
		capacity2 := make([]float64, n)
		for k := range capacity2 {
			capacity2[k] = math.Round(rng.Float64()*400) / 2
		}
		locality2 := locality
		if locality != nil {
			locality2 = make([]float64, n)
			for k := range locality2 {
				locality2[k] = math.Round(rng.Float64() * 300)
			}
		}
		derived, err := NewCommunityFrom(prev, acc2, capacity2, locality2)
		if err != nil {
			t.Fatalf("iter %d: derive: %v", iter, err)
		}
		fresh, err := NewCommunity(acc2, capacity2, locality2)
		if err != nil {
			t.Fatalf("iter %d: fresh: %v", iter, err)
		}
		for rep := 0; rep < 3; rep++ {
			q := make([]float64, n)
			for i := range q {
				q[i] = 1 + math.Round(rng.Float64()*500)/2
			}
			dp, err := derived.Schedule(q)
			if err != nil {
				t.Fatalf("iter %d: derived schedule: %v", iter, err)
			}
			fp, err := fresh.Schedule(q)
			if err != nil {
				t.Fatalf("iter %d: fresh schedule: %v", iter, err)
			}
			if !samePlan(dp, fp) {
				t.Fatalf("iter %d rep %d: derived plan diverges from fresh compile (queues %v)", iter, rep, q)
			}
		}
		// The previous generation must be untouched: in-flight windows on the
		// old scheduler keep their old plans.
		again, err := prev.Schedule(queues)
		if err != nil {
			t.Fatalf("iter %d: prev re-schedule: %v", iter, err)
		}
		if !samePlan(prevPlan, again) {
			t.Fatalf("iter %d: deriving a new generation mutated the previous scheduler", iter)
		}
	}
}

// TestCommunityFromFallsBack checks structural mismatches (changed
// sparsity) silently take the full-compile path and still schedule
// correctly.
func TestCommunityFromFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	acc := randomAccess(rng, 3)
	capacity := []float64{100, 100, 100}
	prev, err := NewCommunity(acc, capacity, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Kill one entitlement entirely: the variable set changes.
	acc2 := perturbAccess(rng, acc)
	for k := 0; k < 3; k++ {
		for i := 0; i < 3; i++ {
			if acc2.MI[k][i] > 0 || acc2.OI[k][i] > 0 {
				acc2.MC[i] -= acc2.MI[k][i]
				acc2.OC[i] -= acc2.OI[k][i]
				acc2.MI[k][i], acc2.OI[k][i] = 0, 0
				k = 3
				break
			}
		}
	}
	derived, err := NewCommunityFrom(prev, acc2, capacity, nil)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewCommunity(acc2, capacity, nil)
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{50, 60, 70}
	dp, err := derived.Schedule(q)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := fresh.Schedule(q)
	if err != nil {
		t.Fatal(err)
	}
	if !samePlan(dp, fp) {
		t.Fatal("fallback path diverges from fresh compile")
	}
}

// TestProviderFromMatchesFresh is the provider-mode analogue: re-derived
// schedulers must match fresh compiles exactly when the floor pattern and
// prices are unchanged.
func TestProviderFromMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for iter := 0; iter < 50; iter++ {
		n := 2 + rng.Intn(4)
		mc := make([]float64, n)
		oc := make([]float64, n)
		prices := make([]float64, n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				mc[i] = math.Round(rng.Float64()*100) / 2
			}
			oc[i] = math.Round(rng.Float64()*100) / 2
			prices[i] = math.Round(rng.Float64()*10) / 2
		}
		capacity := math.Round(rng.Float64() * 300)
		prev, err := NewProvider(mc, oc, prices, capacity)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		mc2 := make([]float64, n)
		oc2 := make([]float64, n)
		for i := 0; i < n; i++ {
			if mc[i] > 0 {
				mc2[i] = mc[i] * (0.25 + rng.Float64())
			}
			oc2[i] = oc[i] * (0.25 + rng.Float64())
		}
		capacity2 := math.Round(rng.Float64() * 300)
		derived, err := NewProviderFrom(prev, mc2, oc2, prices, capacity2)
		if err != nil {
			t.Fatalf("iter %d: derive: %v", iter, err)
		}
		fresh, err := NewProvider(mc2, oc2, prices, capacity2)
		if err != nil {
			t.Fatalf("iter %d: fresh: %v", iter, err)
		}
		for rep := 0; rep < 3; rep++ {
			q := make([]float64, n)
			for i := range q {
				q[i] = math.Round(rng.Float64() * 200)
			}
			dp, err := derived.Schedule(q)
			if err != nil {
				t.Fatalf("iter %d: derived: %v", iter, err)
			}
			fp, err := fresh.Schedule(q)
			if err != nil {
				t.Fatalf("iter %d: fresh: %v", iter, err)
			}
			if dp.Income != fp.Income {
				t.Fatalf("iter %d rep %d: income %g vs %g", iter, rep, dp.Income, fp.Income)
			}
			for i := range dp.X {
				if dp.X[i] != fp.X[i] {
					t.Fatalf("iter %d rep %d: X[%d] %g vs %g", iter, rep, i, dp.X[i], fp.X[i])
				}
			}
		}
		// Changed prices must fall back to a full compile (objective differs).
		prices2 := make([]float64, n)
		copy(prices2, prices)
		prices2[0] += 1
		fb, err := NewProviderFrom(prev, mc2, oc2, prices2, capacity2)
		if err != nil {
			t.Fatalf("iter %d: price fallback: %v", iter, err)
		}
		freshP, err := NewProvider(mc2, oc2, prices2, capacity2)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		q := make([]float64, n)
		for i := range q {
			q[i] = math.Round(rng.Float64() * 200)
		}
		fbp, err := fb.Schedule(q)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		fpp, err := freshP.Schedule(q)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if fbp.Income != fpp.Income {
			t.Fatalf("iter %d: price-change fallback income %g vs %g", iter, fbp.Income, fpp.Income)
		}
	}
}
