package sched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lp"
)

func TestWaterfillBasicSplit(t *testing.T) {
	// Figure 7 arithmetic: both [0.2,1] of 250, queues 270/135.
	w, err := NewWaterfill([]float64{50, 50}, []float64{200, 200}, 250)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := w.Schedule([]float64{270, 135})
	if err != nil {
		t.Fatal(err)
	}
	wantA, wantB := 250.0*270/405, 250.0*135/405
	if math.Abs(plan.X[0]-wantA) > 1e-6 || math.Abs(plan.X[1]-wantB) > 1e-6 {
		t.Fatalf("X = %v, want [%g %g]", plan.X, wantA, wantB)
	}
	if math.Abs(plan.Theta-250.0/405) > 1e-9 {
		t.Fatalf("theta = %v", plan.Theta)
	}
}

func TestWaterfillFloorsBind(t *testing.T) {
	// Figure 6 arithmetic: B's 135 below its 256 floor, A absorbs the rest.
	w, err := NewWaterfill([]float64{64, 256}, []float64{256, 64}, 320)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := w.Schedule([]float64{270, 135})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.X[1]-135) > 1e-6 || math.Abs(plan.X[0]-185) > 1e-6 {
		t.Fatalf("X = %v, want [185 135]", plan.X)
	}
}

func TestWaterfillOverloadedFloorsScale(t *testing.T) {
	w, err := NewWaterfill([]float64{300, 100}, []float64{0, 0}, 200)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := w.Schedule([]float64{300, 100})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.X[0]-150) > 1e-6 || math.Abs(plan.X[1]-50) > 1e-6 {
		t.Fatalf("X = %v, want proportional [150 50]", plan.X)
	}
}

func TestWaterfillZeroAndEdgeInputs(t *testing.T) {
	w, err := NewWaterfill([]float64{10}, []float64{10}, 100)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := w.Schedule([]float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if plan.X[0] != 0 || plan.Theta != 0 {
		t.Fatalf("plan = %+v", plan)
	}
	if _, err := w.Schedule([]float64{-1}); err == nil {
		t.Fatal("negative queue accepted")
	}
	if _, err := w.Schedule([]float64{1, 2}); err == nil {
		t.Fatal("wrong length accepted")
	}
	if _, err := NewWaterfill([]float64{1}, []float64{1, 2}, 10); err == nil {
		t.Fatal("mismatched entitlements accepted")
	}
	if _, err := NewWaterfill([]float64{-1}, []float64{1}, 10); err == nil {
		t.Fatal("negative mc accepted")
	}
	if _, err := NewWaterfill([]float64{1}, []float64{1}, math.Inf(1)); err == nil {
		t.Fatal("infinite capacity accepted")
	}
}

// lpReference solves the same single-pool max–min problem with the simplex
// solver: an independent oracle for the waterfilling algorithm.
func lpReference(t *testing.T, mc, oc, queues []float64, capacity float64) []float64 {
	t.Helper()
	b := lp.NewBuilder()
	theta := b.Var("theta", 1)
	b.Bound(theta, 0, 1)
	xs := make([]lp.Var, len(queues))
	var sum []lp.Term
	for i, q := range queues {
		xs[i] = b.Var("x", 0)
		lo := math.Min(q, mc[i])
		hi := math.Min(q, mc[i]+oc[i])
		b.Bound(xs[i], lo, hi)
		if q > 0 {
			b.Constrain(lp.GE, 0, lp.T(xs[i], 1), lp.T(theta, -q))
		}
		sum = append(sum, lp.T(xs[i], 1))
	}
	b.Constrain(lp.LE, capacity, sum...)
	sol, err := b.Solve()
	if err != nil || sol.Status != lp.Optimal {
		t.Fatalf("reference LP: %v %v", err, sol)
	}
	// Lexicographic throughput pass at θ*.
	b.Constrain(lp.GE, b.Value(sol, theta)-1e-9, lp.T(theta, 1))
	p2 := b.Problem()
	for j := 1; j < len(p2.Objective); j++ {
		p2.Objective[j] = 1
	}
	p2.Objective[0] = 0
	if sol2, err := lp.Solve(p2); err == nil && sol2.Status == lp.Optimal {
		sol = sol2
	}
	out := make([]float64, len(queues))
	for i := range out {
		out[i] = b.Value(sol, xs[i])
	}
	return out
}

// TestQuickWaterfillMatchesLP differentially tests waterfilling against the
// simplex solution of the identical model.
func TestQuickWaterfillMatchesLP(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		capacity := float64(100 + rng.Intn(400))
		mc := make([]float64, n)
		oc := make([]float64, n)
		queues := make([]float64, n)
		budget := 1.0
		for i := 0; i < n; i++ {
			frac := rng.Float64() * budget
			budget -= frac
			mc[i] = frac * capacity
			oc[i] = rng.Float64() * capacity
			queues[i] = float64(rng.Intn(600))
		}
		w, err := NewWaterfill(mc, oc, capacity)
		if err != nil {
			return false
		}
		plan, err := w.Schedule(queues)
		if err != nil {
			return false
		}
		want := lpReference(t, mc, oc, queues, capacity)
		totalGot, totalWant := 0.0, 0.0
		minGot, minWant := math.Inf(1), math.Inf(1)
		for i := range want {
			totalGot += plan.X[i]
			totalWant += want[i]
			if queues[i] > 0 {
				minGot = math.Min(minGot, plan.X[i]/queues[i])
				minWant = math.Min(minWant, want[i]/queues[i])
			}
		}
		// Same max–min value and same total throughput (the allocation
		// itself may differ at ties).
		if math.Abs(totalGot-totalWant) > 1e-4*(1+totalWant) {
			return false
		}
		if !math.IsInf(minGot, 1) && math.Abs(minGot-minWant) > 1e-5 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWaterfill(b *testing.B) {
	w, err := NewWaterfill(
		[]float64{64, 256, 30, 10}, []float64{256, 64, 100, 40}, 320)
	if err != nil {
		b.Fatal(err)
	}
	q := []float64{270, 135, 50, 400}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := w.Schedule(q); err != nil {
			b.Fatal(err)
		}
	}
}
