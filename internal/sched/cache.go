package sched

import (
	"encoding/binary"
	"math"
	"sync"
	"time"

	"repro/internal/metrics"
)

// DefaultQuantum is the queue-vector quantization step (requests/window)
// plan caches use when the caller does not pick one. Queue estimates that
// differ by less than half a quantum per principal map to the same cached
// plan; 1e-6 of a request is far below any behavioral difference the credit
// scheme can express, so hits are effectively exact.
const DefaultQuantum = 1e-6

// DefaultCacheLimit bounds the number of distinct quantized vectors a plan
// cache holds before it discards its contents and starts over.
const DefaultCacheLimit = 4096

// PlanCache memoizes window scheduling decisions, keyed by the quantized
// global queue vector. The paper's design has every one of the R redirectors
// solve the window LP over the *same* global aggregate; sharing one cache
// turns those R identical solves into one solve plus R−1 lookups. Lookups
// for a vector whose solve is still in flight block until it finishes
// (singleflight), so concurrent windows never duplicate work.
//
// Cached plans are shared; callers must treat them as immutable. The cache
// must be discarded when the scheduler it memoizes is rebuilt (entitlement
// or capacity changes), which is why the engine owns and re-creates it.
type PlanCache[P any] struct {
	quantum float64
	limit   int
	stats   *metrics.SolverStats

	mu      sync.Mutex
	entries map[string]*cacheEntry[P]
}

type cacheEntry[P any] struct {
	done chan struct{} // closed once plan/err are set
	plan P
	err  error
}

// NewPlanCache builds a cache. quantum ≤ 0 selects DefaultQuantum, limit ≤ 0
// selects DefaultCacheLimit. stats may be nil.
func NewPlanCache[P any](quantum float64, limit int, stats *metrics.SolverStats) *PlanCache[P] {
	if quantum <= 0 {
		quantum = DefaultQuantum
	}
	if limit <= 0 {
		limit = DefaultCacheLimit
	}
	return &PlanCache[P]{
		quantum: quantum,
		limit:   limit,
		stats:   stats,
		entries: make(map[string]*cacheEntry[P]),
	}
}

// Quantum reports the quantization step.
func (c *PlanCache[P]) Quantum() float64 { return c.quantum }

// maxQuanta keeps the quantized coordinate inside int64 range; queue lengths
// anywhere near it are saturated to one shared key.
const maxQuanta = float64(1 << 62)

// appendKey appends the quantized fixed-point encoding of queues to dst.
func (c *PlanCache[P]) appendKey(dst []byte, queues []float64) []byte {
	var buf [8]byte
	for _, q := range queues {
		v := math.Round(q / c.quantum)
		if v > maxQuanta {
			v = maxQuanta
		} else if v < -maxQuanta {
			v = -maxQuanta
		}
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		dst = append(dst, buf[:]...)
	}
	return dst
}

// Do returns the plan for queues, invoking solve at most once per distinct
// quantized vector. hit reports whether the plan came from the cache (either
// already present or computed by a concurrent caller). Failed solves are not
// retained, so a transient error does not poison the vector's key.
func (c *PlanCache[P]) Do(queues []float64, solve func() (P, error)) (plan P, hit bool, err error) {
	key := c.appendKey(make([]byte, 0, 8*len(queues)), queues)

	c.mu.Lock()
	if e, ok := c.entries[string(key)]; ok {
		c.mu.Unlock()
		<-e.done
		c.stats.CacheHit()
		return e.plan, true, e.err
	}
	if len(c.entries) >= c.limit {
		// Epoch eviction: wholesale reset is O(1) amortized and keeps the
		// steady-state working set (a handful of vectors) hot again within
		// one window.
		c.entries = make(map[string]*cacheEntry[P])
	}
	e := &cacheEntry[P]{done: make(chan struct{})}
	skey := string(key)
	c.entries[skey] = e
	c.mu.Unlock()

	c.stats.CacheMiss()
	start := time.Now()
	e.plan, e.err = solve()
	c.stats.RecordSolve(time.Since(start))
	close(e.done)
	if e.err != nil {
		c.mu.Lock()
		if c.entries[skey] == e {
			delete(c.entries, skey)
		}
		c.mu.Unlock()
	}
	return e.plan, false, e.err
}

// Len reports the number of cached vectors (diagnostics and tests).
func (c *PlanCache[P]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
