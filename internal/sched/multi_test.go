package sched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/agreement"
)

// multiRig builds a two-dimension (transactions/s, KB/s of bandwidth)
// system: owner S with customers A and B, each holding [0.25, 1].
// A's requests are bandwidth-heavy (10 KB each); B's are light (1 KB).
func multiRig(t testing.TB, txCap, bwCap float64) *MultiCommunity {
	t.Helper()
	s := agreement.New()
	sp := s.MustAddPrincipal("S", 0) // capacities supplied per dimension
	a := s.MustAddPrincipal("A", 0)
	bb := s.MustAddPrincipal("B", 0)
	s.MustSetAgreement(sp, a, 0.25, 1)
	s.MustSetAgreement(sp, bb, 0.25, 1)
	f, err := s.Flows()
	if err != nil {
		t.Fatal(err)
	}
	dims := [][]float64{
		{txCap, 0, 0}, // transactions per window
		{bwCap, 0, 0}, // bandwidth per window
	}
	accs, err := f.MultiAccess(dims)
	if err != nil {
		t.Fatal(err)
	}
	cost := [][]float64{
		{1, 1},  // S itself (unused: no queue)
		{1, 10}, // A: 1 tx + 10 KB per request
		{1, 1},  // B: 1 tx + 1 KB
	}
	m, err := NewMultiCommunity(accs, dims, cost)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMultiBandwidthBound(t *testing.T) {
	// Plenty of transaction capacity (1000) but scarce bandwidth (400 KB):
	// A is bandwidth-bound, B transaction-entitlement-bound.
	m := multiRig(t, 1000, 400)
	plan, err := m.Schedule([]float64{0, 100, 100})
	if err != nil {
		t.Fatal(err)
	}
	// Bandwidth check: 10·x_A + x_B ≤ 400; tx: x_A + x_B ≤ 1000.
	if 10*plan.Total[1]+plan.Total[2] > 400+1e-6 {
		t.Fatalf("bandwidth capacity violated: %v", plan.Total)
	}
	// Mandatory floors: A ≥ min(MC_tx=250, MC_bw/10=10) = 10;
	// B ≥ min(250, 100) = 100 clipped to queue 100.
	if plan.Total[1] < 10-1e-6 {
		t.Fatalf("A below mandatory floor: %v", plan.Total[1])
	}
	if plan.Total[2] < 100-1e-6 {
		t.Fatalf("B below its demand-clipped floor: %v", plan.Total)
	}
	// θ: A limited by bandwidth: (400−100)/10 = 30 ⇒ θ = 0.3.
	if math.Abs(plan.Theta-0.3) > 1e-6 {
		t.Fatalf("theta = %v, want 0.3", plan.Theta)
	}
}

func TestMultiTransactionBound(t *testing.T) {
	// Abundant bandwidth: the schedule degenerates to the single-resource
	// max–min split.
	m := multiRig(t, 200, 1e9)
	plan, err := m.Schedule([]float64{0, 100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.Total[1]-100) > 1e-6 || math.Abs(plan.Total[2]-100) > 1e-6 {
		t.Fatalf("totals = %v, want both 100 (under capacity)", plan.Total)
	}
	plan, err = m.Schedule([]float64{0, 300, 300})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.Total[1]-100) > 1e-6 || math.Abs(plan.Total[2]-100) > 1e-6 {
		t.Fatalf("overload totals = %v, want 100/100 split of 200", plan.Total)
	}
}

func TestMultiValidation(t *testing.T) {
	m := multiRig(t, 100, 100)
	if _, err := m.Schedule([]float64{1}); err == nil {
		t.Error("short queue vector accepted")
	}
	if _, err := m.Schedule([]float64{0, -1, 0}); err == nil {
		t.Error("negative queue accepted")
	}
	if _, err := NewMultiCommunity(nil, nil, nil); err == nil {
		t.Error("no dimensions accepted")
	}

	s := agreement.New()
	s.MustAddPrincipal("S", 10)
	f, _ := s.Flows()
	accs, _ := f.MultiAccess([][]float64{{10}})
	if _, err := NewMultiCommunity(accs, [][]float64{{10}, {10}}, [][]float64{{1}}); err == nil {
		t.Error("mismatched capacity dimensions accepted")
	}
	if _, err := NewMultiCommunity(accs, [][]float64{{10}}, [][]float64{{0}}); err == nil {
		t.Error("all-zero cost accepted")
	}
	if _, err := NewMultiCommunity(accs, [][]float64{{10}}, [][]float64{{-1}}); err == nil {
		t.Error("negative cost accepted")
	}
	if _, err := NewMultiCommunity(accs, [][]float64{{10, 20}}, [][]float64{{1}}); err == nil {
		t.Error("wrong capacity length accepted")
	}
}

// TestQuickMultiInvariants property-checks plans against every dimension's
// capacity and the per-pair entitlement bounds.
func TestQuickMultiInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := agreement.New()
		n := 2 + rng.Intn(3)
		for i := 0; i < n; i++ {
			s.MustAddPrincipal(string(rune('A'+i)), 0)
		}
		for i := 0; i < n; i++ {
			budget := 1.0
			for j := 0; j < n; j++ {
				if j == i || rng.Float64() < 0.5 {
					continue
				}
				lb := rng.Float64() * budget * 0.8
				ub := lb + rng.Float64()*(1-lb)
				if s.SetAgreement(agreement.Principal(i), agreement.Principal(j), lb, ub) != nil {
					continue
				}
				budget -= lb
			}
		}
		flows, err := s.Flows()
		if err != nil {
			return false
		}
		dims := 1 + rng.Intn(3)
		capacity := make([][]float64, dims)
		for d := range capacity {
			capacity[d] = make([]float64, n)
			for k := range capacity[d] {
				capacity[d][k] = float64(rng.Intn(500))
			}
		}
		accs, err := flows.MultiAccess(capacity)
		if err != nil {
			return false
		}
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, dims)
			for d := range cost[i] {
				cost[i][d] = rng.Float64() * 3
			}
			cost[i][rng.Intn(dims)] += 0.1 // ensure some consumption
		}
		m, err := NewMultiCommunity(accs, capacity, cost)
		if err != nil {
			return false
		}
		queues := make([]float64, n)
		for i := range queues {
			queues[i] = float64(rng.Intn(500))
		}
		plan, err := m.Schedule(queues)
		if err != nil {
			return false
		}
		for d := 0; d < dims; d++ {
			for k := 0; k < n; k++ {
				load := 0.0
				for i := 0; i < n; i++ {
					load += plan.X[i][k] * cost[i][d]
				}
				if load > capacity[d][k]+1e-5 {
					return false
				}
			}
		}
		for i := 0; i < n; i++ {
			if plan.Total[i] > queues[i]+1e-5 || plan.Total[i] < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMultiSchedule(b *testing.B) {
	m := multiRig(b, 1000, 400)
	q := []float64{0, 100, 100}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Schedule(q); err != nil {
			b.Fatal(err)
		}
	}
}
