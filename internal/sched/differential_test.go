package sched

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/agreement"
)

// randomAccess builds a consistent random entitlement structure: MI/OI are
// random sparse non-negative matrices and MC/OC are their column sums, the
// invariant agreement.SystemAccess guarantees.
func randomAccess(rng *rand.Rand, n int) *agreement.Access {
	acc := &agreement.Access{
		MI: make([][]float64, n),
		OI: make([][]float64, n),
		MC: make([]float64, n),
		OC: make([]float64, n),
	}
	for k := 0; k < n; k++ {
		acc.MI[k] = make([]float64, n)
		acc.OI[k] = make([]float64, n)
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.7 {
				acc.MI[k][i] = math.Round(rng.Float64()*100) / 4
			}
			if rng.Float64() < 0.5 {
				acc.OI[k][i] = math.Round(rng.Float64()*100) / 4
			}
			acc.MC[i] += acc.MI[k][i]
			acc.OC[i] += acc.OI[k][i]
		}
	}
	return acc
}

// TestCommunityFastMatchesSlow is the tentpole's differential guarantee: the
// compiled fast path (template mutation + pooled warm-started solver) must
// produce the same plan as rebuilding and solving the LP from scratch. Both
// paths share one pivot sequence, so for all-positive queues the match is
// exact; the test asserts the issue's 1e-6 budget.
func TestCommunityFastMatchesSlow(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 120; iter++ {
		n := 2 + rng.Intn(4)
		acc := randomAccess(rng, n)
		capacity := make([]float64, n)
		for k := range capacity {
			// Around the column sums so floors are mostly feasible but the
			// fallback path is exercised too.
			capacity[k] = math.Round(rng.Float64()*400) / 2
		}
		var locality []float64
		if rng.Intn(2) == 0 {
			locality = make([]float64, n)
			for k := range locality {
				locality[k] = math.Round(rng.Float64() * 300)
			}
		}
		c, err := NewCommunity(acc, capacity, locality)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		for rep := 0; rep < 4; rep++ {
			queues := make([]float64, n)
			for i := range queues {
				queues[i] = 1 + math.Round(rng.Float64()*500)/2 // all positive
			}
			fast, err := c.Schedule(queues)
			if err != nil {
				t.Fatalf("iter %d: fast: %v", iter, err)
			}
			slow, err := c.scheduleSlow(queues)
			if err != nil {
				t.Fatalf("iter %d: slow: %v", iter, err)
			}
			if math.Abs(fast.Theta-slow.Theta) > 1e-6 {
				t.Fatalf("iter %d rep %d: theta fast %g slow %g (queues %v)",
					iter, rep, fast.Theta, slow.Theta, queues)
			}
			for i := 0; i < n; i++ {
				for k := 0; k < n; k++ {
					if math.Abs(fast.X[i][k]-slow.X[i][k]) > 1e-6 {
						t.Fatalf("iter %d rep %d: X[%d][%d] fast %g slow %g (queues %v)",
							iter, rep, i, k, fast.X[i][k], slow.X[i][k], queues)
					}
				}
			}
		}
	}
}

// TestCommunityFastMatchesSlowZeroQueues covers the structural divergence:
// for zero queues the slow path omits rows while the fast path keeps them at
// trivial values. Pivot sequences then differ, so only θ and per-cell values
// are compared (both optima), not pivot-order artifacts — the 1e-6 budget of
// the issue still applies because the zero-queue principal's row is forced.
func TestCommunityFastMatchesSlowZeroQueues(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 60; iter++ {
		n := 2 + rng.Intn(3)
		acc := randomAccess(rng, n)
		capacity := make([]float64, n)
		for k := range capacity {
			capacity[k] = 50 + math.Round(rng.Float64()*400)
		}
		c, err := NewCommunity(acc, capacity, nil)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		queues := make([]float64, n)
		for i := range queues {
			if rng.Intn(3) > 0 {
				queues[i] = 1 + math.Round(rng.Float64()*300)
			}
		}
		fast, err := c.Schedule(queues)
		if err != nil {
			t.Fatalf("iter %d: fast: %v", iter, err)
		}
		slow, err := c.scheduleSlow(queues)
		if err != nil {
			t.Fatalf("iter %d: slow: %v", iter, err)
		}
		if math.Abs(fast.Theta-slow.Theta) > 1e-6 {
			t.Fatalf("iter %d: theta fast %g slow %g (queues %v)", iter, fast.Theta, slow.Theta, queues)
		}
		for i := 0; i < n; i++ {
			// A zero queue admits nothing either way; served totals for
			// positive queues must match.
			if math.Abs(fast.Total[i]-slow.Total[i]) > 1e-6 && queues[i] > 0 {
				t.Fatalf("iter %d: total[%d] fast %g slow %g (queues %v)",
					iter, i, fast.Total[i], slow.Total[i], queues)
			}
			if queues[i] == 0 && fast.Total[i] > 1e-9 {
				t.Fatalf("iter %d: zero queue served %g", iter, fast.Total[i])
			}
		}
	}
}

func TestProviderFastMatchesSlow(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 150; iter++ {
		n := 1 + rng.Intn(6)
		mc := make([]float64, n)
		oc := make([]float64, n)
		prices := make([]float64, n)
		for i := 0; i < n; i++ {
			mc[i] = math.Round(rng.Float64()*100) / 2
			oc[i] = math.Round(rng.Float64()*100) / 2
			prices[i] = math.Round(rng.Float64()*10) / 2
		}
		capacity := math.Round(rng.Float64() * 400)
		p, err := NewProvider(mc, oc, prices, capacity)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		for rep := 0; rep < 4; rep++ {
			queues := make([]float64, n)
			for i := range queues {
				queues[i] = 1 + math.Round(rng.Float64()*300)/2
			}
			fast, err := p.Schedule(queues)
			if err != nil {
				t.Fatalf("iter %d: fast: %v", iter, err)
			}
			slow, err := p.scheduleSlow(queues)
			if err != nil {
				t.Fatalf("iter %d: slow: %v", iter, err)
			}
			if math.Abs(fast.Income-slow.Income) > 1e-6 {
				t.Fatalf("iter %d: income fast %g slow %g (queues %v)",
					iter, fast.Income, slow.Income, queues)
			}
			for i := 0; i < n; i++ {
				if math.Abs(fast.X[i]-slow.X[i]) > 1e-6 {
					t.Fatalf("iter %d: X[%d] fast %g slow %g (queues %v)",
						iter, i, fast.X[i], slow.X[i], queues)
				}
			}
		}
	}
}

// TestCommunityScheduleParallel drives one scheduler from many goroutines
// with distinct vectors; the pooled per-worker states must not interfere
// (run with -race).
func TestCommunityScheduleParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	acc := randomAccess(rng, 3)
	c, err := NewCommunity(acc, []float64{200, 150, 100}, nil)
	if err != nil {
		t.Fatal(err)
	}
	queues := make([][]float64, 16)
	want := make([]*Plan, len(queues))
	for g := range queues {
		queues[g] = []float64{1 + float64(g)*7, 30 + float64(g), 5 + 2*float64(g)}
		want[g], err = c.scheduleSlow(queues[g])
		if err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, len(queues))
	for g := range queues {
		go func(g int) {
			for rep := 0; rep < 20; rep++ {
				plan, err := c.Schedule(queues[g])
				if err != nil {
					done <- err
					return
				}
				if math.Abs(plan.Theta-want[g].Theta) > 1e-6 {
					t.Errorf("goroutine %d: theta %g, want %g", g, plan.Theta, want[g].Theta)
				}
			}
			done <- nil
		}(g)
	}
	for range queues {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// FuzzPlanCacheKey checks the quantization invariant: two vectors mapping to
// the same cache key differ by at most one quantum per coordinate, so a
// cache hit can only substitute a plan whose input was within quantization
// distance of the request.
func FuzzPlanCacheKey(f *testing.F) {
	f.Add(80.0, 40.0, 80.0, 40.0)
	f.Add(80.0, 40.0, 80.0000004, 40.0)
	f.Add(0.0, 0.0, 1e-7, 0.0)
	f.Add(1e18, 5.0, 1e18, 5.0)
	f.Fuzz(func(t *testing.T, a0, a1, b0, b1 float64) {
		for _, v := range []float64{a0, a1, b0, b1} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1e12 {
				return // schedulers reject these before any cache lookup
			}
		}
		c := NewPlanCache[int](DefaultQuantum, 16, nil)
		ka := string(c.appendKey(nil, []float64{a0, a1}))
		kb := string(c.appendKey(nil, []float64{b0, b1}))
		same := ka == kb
		if same {
			for i, pair := range [][2]float64{{a0, b0}, {a1, b1}} {
				if math.Abs(pair[0]-pair[1]) > c.Quantum() {
					t.Fatalf("colliding keys but coordinate %d differs by %g > quantum %g",
						i, math.Abs(pair[0]-pair[1]), c.Quantum())
				}
			}
		} else if a0 == b0 && a1 == b1 {
			t.Fatal("identical vectors produced different keys")
		}
	})
}
