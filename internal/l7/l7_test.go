package l7

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/agreement"
	"repro/internal/combining"
	"repro/internal/core"
)

func TestHostOfAndSameEndpoint(t *testing.T) {
	if hostOf("http://1.2.3.4:80/x/y?z=1") != "1.2.3.4:80" {
		t.Fatalf("hostOf = %q", hostOf("http://1.2.3.4:80/x/y?z=1"))
	}
	if hostOf("1.2.3.4:80") != "1.2.3.4:80" {
		t.Fatal("schemeless host parse failed")
	}
	if !sameEndpoint("http://a:1/x", "http://a:1/y?q") || sameEndpoint("http://a:1/x", "http://a:2/x") {
		t.Fatal("sameEndpoint wrong")
	}
}

func TestBackendServesAndLimits(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket test")
	}
	b, err := NewBackend("127.0.0.1:0", 200)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	c := NewClient()
	n, err := c.Fetch(b.URL() + "/file?size=2048")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2048 {
		t.Fatalf("payload = %d bytes", n)
	}
	// 40 sequential requests at 200/s take at least ~190 ms.
	start := time.Now()
	for i := 0; i < 40; i++ {
		if _, err := c.Fetch(b.URL() + "/f?size=1"); err != nil {
			t.Fatal(err)
		}
	}
	if el := time.Since(start); el < 150*time.Millisecond {
		t.Fatalf("40 requests finished in %v; capacity limit not applied", el)
	}
	if b.Served() < 41 {
		t.Fatalf("Served = %d", b.Served())
	}
}

func TestBackendRejectsBadCapacity(t *testing.T) {
	if _, err := NewBackend("127.0.0.1:0", 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

// l7Rig builds a provider system (capacity req/s, shares lbA/lbB) with one
// backend and n redirectors (tree-connected when n > 1).
func l7Rig(t *testing.T, capacity float64, lbA, lbB float64, n int) (*Backend, []*Redirector, agreement.Principal, agreement.Principal) {
	t.Helper()
	s := agreement.New()
	sp := s.MustAddPrincipal("S", capacity)
	a := s.MustAddPrincipal("A", 0)
	b := s.MustAddPrincipal("B", 0)
	s.MustSetAgreement(sp, a, lbA, 1)
	s.MustSetAgreement(sp, b, lbB, 1)
	eng, err := core.NewEngine(core.Config{
		Mode:              core.Provider,
		System:            s,
		ProviderPrincipal: sp,
		NumRedirectors:    n,
		Window:            20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	backend, err := NewBackend("127.0.0.1:0", capacity*1.5)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { backend.Close() })

	orgs := map[string]agreement.Principal{"alpha": a, "beta": b}
	backends := map[agreement.Principal][]string{sp: {backend.URL()}}

	var reds []*Redirector
	if n == 1 {
		r, err := NewRedirector(RedirectorConfig{
			Engine: eng, ID: 0, Addr: "127.0.0.1:0", Orgs: orgs, Backends: backends,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { r.Close() })
		reds = []*Redirector{r}
	} else {
		ids := make([]combining.NodeID, n)
		for i := range ids {
			ids[i] = combining.NodeID(i)
		}
		topo := combining.BuildTree(ids, 2)
		for i := 0; i < n; i++ {
			r, err := NewRedirector(RedirectorConfig{
				Engine: eng, ID: i, Addr: "127.0.0.1:0", Orgs: orgs, Backends: backends,
				Tree: &TreeConfig{
					NodeID:   combining.NodeID(i),
					Parent:   topo.Parent[combining.NodeID(i)],
					Children: topo.Children[combining.NodeID(i)],
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { r.Close() })
			reds = append(reds, r)
		}
		// Exchange tree addresses once every transport is listening.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					reds[i].transport.SetPeer(combining.NodeID(j), reds[j].TreeAddr())
				}
			}
		}
	}
	return backend, reds, a, b
}

// hammer runs workers closed-loop fetches against url until stop; fetches
// after warmup are counted into counter.
func hammer(wg *sync.WaitGroup, stop *atomic.Bool, warm *atomic.Bool, counter *int64, url string, workers int) {
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := NewClient()
			c.RetryDelay = 5 * time.Millisecond
			c.MaxAttempts = 400
			for !stop.Load() {
				if _, err := c.Fetch(url); err != nil {
					continue
				}
				if warm.Load() {
					atomic.AddInt64(counter, 1)
				}
			}
		}()
	}
}

func TestSingleRedirectorEnforcement(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket test")
	}
	_, reds, _, _ := l7Rig(t, 200, 0.75, 0.25, 1)
	r := reds[0]

	var wg sync.WaitGroup
	var stop, warm atomic.Bool
	var gotA, gotB int64
	hammer(&wg, &stop, &warm, &gotA, r.URL()+"/svc/alpha/page?size=512", 3)
	hammer(&wg, &stop, &warm, &gotB, r.URL()+"/svc/beta/page?size=512", 3)

	time.Sleep(700 * time.Millisecond) // estimator and credits settle
	warm.Store(true)
	const measure = 2 * time.Second
	time.Sleep(measure)
	stop.Store(true)
	wg.Wait()

	rateA := float64(gotA) / measure.Seconds()
	rateB := float64(gotB) / measure.Seconds()
	total := rateA + rateB
	if total < 120 || total > 260 {
		t.Fatalf("total = %.1f req/s, want ≈200", total)
	}
	ratio := rateA / rateB
	if ratio < 1.8 || ratio > 4.8 {
		t.Fatalf("A/B = %.1f/%.1f (ratio %.2f), want ≈3", rateA, rateB, ratio)
	}
	adm, rej := r.Stats()
	if adm == 0 || rej == 0 {
		t.Fatalf("stats admitted=%d rejected=%d: expected both under overload", adm, rej)
	}
}

func TestTwoRedirectorsCoordinate(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket test")
	}
	_, reds, _, _ := l7Rig(t, 200, 0.75, 0.25, 2)

	var wg sync.WaitGroup
	var stop, warm atomic.Bool
	var gotA, gotB int64
	// A's clients on redirector 0, B's on redirector 1 — enforcement must
	// hold across admission points.
	hammer(&wg, &stop, &warm, &gotA, reds[0].URL()+"/svc/alpha/p?size=256", 3)
	hammer(&wg, &stop, &warm, &gotB, reds[1].URL()+"/svc/beta/p?size=256", 3)

	time.Sleep(900 * time.Millisecond)
	warm.Store(true)
	const measure = 2 * time.Second
	time.Sleep(measure)
	stop.Store(true)
	wg.Wait()

	rateA := float64(gotA) / measure.Seconds()
	rateB := float64(gotB) / measure.Seconds()
	if rateB > 90 {
		t.Fatalf("B = %.1f req/s exceeds its ≈50 entitlement plus slack", rateB)
	}
	if rateA < rateB {
		t.Fatalf("A (%.1f) below B (%.1f) despite 3× mandatory share", rateA, rateB)
	}
}

func TestStatsEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket test")
	}
	_, reds, _, _ := l7Rig(t, 100, 0.5, 0.5, 1)
	c := NewClient()
	// Generate a little traffic first.
	for i := 0; i < 5; i++ {
		_, _ = c.Fetch(reds[0].URL() + "/svc/alpha/x")
	}
	resp, err := http.Get(reds[0].URL() + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Mode     string `json:"mode"`
		WindowMS int64  `json:"window_ms"`
		Admitted int    `json:"admitted"`
		Windows  int    `json:"windows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Mode != "provider" || stats.WindowMS != 20 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Windows == 0 {
		t.Fatal("window loop not running")
	}
}

func TestRedirectorRejectsUnknownOrg(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket test")
	}
	_, reds, _, _ := l7Rig(t, 100, 0.5, 0.5, 1)
	c := NewClient()
	if _, err := c.Fetch(reds[0].URL() + "/svc/nobody/x"); err == nil {
		t.Fatal("unknown org served")
	}
}

func TestRedirectorConfigErrors(t *testing.T) {
	if _, err := NewRedirector(RedirectorConfig{}); err == nil {
		t.Fatal("nil engine accepted")
	}
	s := agreement.New()
	sp := s.MustAddPrincipal("S", 10)
	eng, err := core.NewEngine(core.Config{Mode: core.Provider, System: s, ProviderPrincipal: sp})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRedirector(RedirectorConfig{Engine: eng}); err == nil {
		t.Fatal("missing org/backend maps accepted")
	}
}

func TestClientGivesUpEventually(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket test")
	}
	// A redirector whose principal never has credits: the client must stop
	// after MaxAttempts self-redirects.
	_, reds, _, _ := l7Rig(t, 100, 0.5, 0.5, 1)
	c := NewClient()
	c.MaxAttempts = 3
	c.RetryDelay = time.Millisecond
	_, err := c.Fetch(reds[0].URL() + "/svc/alpha/x")
	if err == nil {
		// Credits may exist if a window elapsed; retry rapidly to drain.
		for i := 0; i < 50 && err == nil; i++ {
			_, err = c.Fetch(reds[0].URL() + "/svc/alpha/x")
		}
	}
	if c.SelfRedirects == 0 && err == nil {
		t.Skip("never hit the quota edge on this machine")
	}
}

func ExampleClient_Fetch() {
	// See examples/l7live for a complete runnable setup.
	fmt.Println("fetch follows 302s to the assigned backend")
	// Output: fetch follows 302s to the assigned backend
}
