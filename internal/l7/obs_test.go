package l7

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/agreement"
	"repro/internal/combining"
	"repro/internal/core"
)

// staleRig builds a two-redirector tree (root 0 ← child 1) with a tight
// staleness bound so killing the root starves the child of broadcasts. A
// positive failureTimeout arms the reparenter: survivors prune silent
// neighbors and rewire instead of staying conservative forever.
func staleRig(t *testing.T, staleness, failureTimeout time.Duration) (root, child *Redirector) {
	t.Helper()
	s := agreement.New()
	sp := s.MustAddPrincipal("S", 200)
	a := s.MustAddPrincipal("A", 0)
	b := s.MustAddPrincipal("B", 0)
	s.MustSetAgreement(sp, a, 0.75, 1)
	s.MustSetAgreement(sp, b, 0.25, 1)
	eng, err := core.NewEngine(core.Config{
		Mode:              core.Provider,
		System:            s,
		ProviderPrincipal: sp,
		NumRedirectors:    2,
		Window:            20 * time.Millisecond,
		Staleness:         staleness,
	})
	if err != nil {
		t.Fatal(err)
	}
	backend, err := NewBackend("127.0.0.1:0", 300)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { backend.Close() })
	orgs := map[string]agreement.Principal{"alpha": a, "beta": b}
	backends := map[agreement.Principal][]string{sp: {backend.URL()}}

	reds := make([]*Redirector, 2)
	for i := 0; i < 2; i++ {
		parent := combining.NodeID(-1)
		children := []combining.NodeID{1}
		if i == 1 {
			parent, children = 0, nil
		}
		r, err := NewRedirector(RedirectorConfig{
			Engine: eng, ID: i, Addr: "127.0.0.1:0", Orgs: orgs, Backends: backends,
			Tree: &TreeConfig{
				NodeID: combining.NodeID(i), Parent: parent, Children: children,
				Members:        []combining.NodeID{0, 1},
				FailureTimeout: failureTimeout,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { r.Close() })
		reds[i] = r
	}
	reds[0].transport.SetPeer(1, reds[1].TreeAddr())
	reds[1].transport.SetPeer(0, reds[0].TreeAddr())
	return reds[0], reds[1]
}

// TestStalenessFallbackTraced freezes the tree root and asserts the child's
// window trace and auditor record the conservative 1/R fallback: records
// flip to Conservative with global age beyond the staleness bound.
func TestStalenessFallbackTraced(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket test")
	}
	const staleness = 150 * time.Millisecond
	root, child := staleRig(t, staleness, 0)

	// Phase 1: broadcasts flowing — wait until the child audits fresh
	// windows. (The first window or two may legitimately run conservative
	// before the root's first broadcast lands.)
	deadline := time.Now().Add(3 * time.Second)
	aud := child.Observer().Auditor()
	for {
		if time.Now().After(deadline) {
			t.Fatal("child never traced a fresh window")
		}
		recs := child.Observer().Ring().Snapshot(1)
		if aud.Windows() >= 5 && len(recs) == 1 && !recs[0].Conservative && recs[0].HaveGlobal {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Phase 2: kill the root. The child's global view ages past the bound
	// and every subsequent window must fall back to the 1/R mandatory share.
	root.Close()
	markConservative := aud.Conservative()
	deadline = time.Now().Add(3 * time.Second)
	for aud.Conservative() < markConservative+5 {
		if time.Now().After(deadline) {
			t.Fatalf("child audited only %d conservative windows", aud.Conservative())
		}
		time.Sleep(10 * time.Millisecond)
	}

	recs := child.Observer().Ring().Snapshot(6)
	if len(recs) == 0 {
		t.Fatal("empty trace ring")
	}
	// The most recent handful of windows all ran blind; ages keep growing.
	lastAge := int64(0)
	for _, rec := range recs[len(recs)-3:] {
		if !rec.Conservative {
			t.Fatalf("window %d after root failure not conservative", rec.Window)
		}
		if rec.GlobalAgeNanos <= int64(staleness) {
			t.Fatalf("window %d global age %dns within staleness bound", rec.Window, rec.GlobalAgeNanos)
		}
		if rec.GlobalAgeNanos <= lastAge {
			t.Fatalf("global age not growing: %d after %d", rec.GlobalAgeNanos, lastAge)
		}
		lastAge = rec.GlobalAgeNanos
	}
}

// TestRootKillReparentsAndResumesFreshWindows is the recovery counterpart of
// TestStalenessFallbackTraced: with the reparenter armed, killing the tree
// root drives the child conservative only transiently — it prunes the silent
// root from its topology, promotes itself, and resumes fresh
// (non-conservative, global-bearing) windows without a process restart.
func TestRootKillReparentsAndResumesFreshWindows(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket test")
	}
	const staleness = 150 * time.Millisecond
	root, child := staleRig(t, staleness, 300*time.Millisecond)

	// Phase 1: broadcasts flowing — the child audits fresh windows.
	aud := child.Observer().Auditor()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("child never traced a fresh window")
		}
		recs := child.Observer().Ring().Snapshot(1)
		if aud.Windows() >= 5 && len(recs) == 1 && !recs[0].Conservative && recs[0].HaveGlobal {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Phase 2: kill the root. The child must detect the silence, rewire
	// itself into a singleton tree, and — as its own root — escape the
	// conservative fallback with a stream of fresh windows.
	root.Close()
	deadline = time.Now().Add(5 * time.Second)
	for {
		if time.Now().After(deadline) {
			recs := child.Observer().Ring().Snapshot(3)
			t.Fatalf("child never resumed fresh windows after root kill: reparents=%d trace=%+v",
				child.reparent.Reparents(), recs)
		}
		if child.reparent.Reparents() > 0 {
			recs := child.Observer().Ring().Snapshot(3)
			fresh := len(recs) == 3
			for _, rec := range recs {
				if rec.Conservative || !rec.HaveGlobal {
					fresh = false
				}
			}
			if fresh {
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if p := child.reparent.Parent(); p != -1 {
		t.Fatalf("child's parent after reparenting = %d, want -1 (root)", p)
	}
	// The fall back and recovery both left an audit trail: some windows ran
	// conservative during the outage, and the trace has since gone fresh.
	if aud.Conservative() == 0 {
		t.Fatal("no conservative windows audited during the outage")
	}
}

// TestObsEndpointsLive scrapes /metrics and /debug/windows from a running
// Layer-7 redirector.
func TestObsEndpointsLive(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket test")
	}
	_, reds, _, _ := l7Rig(t, 100, 0.5, 0.5, 1)
	r := reds[0]
	c := NewClient()
	for i := 0; i < 10; i++ {
		_, _ = c.Fetch(r.URL() + "/svc/alpha/x")
	}
	// Let a few windows commit so the ring and auditor have records.
	deadline := time.Now().Add(3 * time.Second)
	for r.Observer().Auditor().Windows() < 3 {
		if time.Now().After(deadline) {
			t.Fatal("no windows audited")
		}
		time.Sleep(10 * time.Millisecond)
	}

	body := fetchBody(t, r.URL()+"/metrics")
	for _, want := range []string{
		`rsa_redirector_info{mode="provider",window_ms="20"} 1`,
		"rsa_windows_total",
		`rsa_windows_under_mc_total{principal="A"}`,
		`rsa_served_requests_total{principal="S"}`,
		"rsa_solver_solves_total",
		"rsa_l7_admitted_total",
		"rsa_l7_rejected_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	windows := fetchBody(t, r.URL()+"/debug/windows?n=4")
	if !strings.Contains(windows, `"records"`) || !strings.Contains(windows, `"window"`) {
		t.Fatalf("/debug/windows payload = %.200s", windows)
	}
	if !strings.Contains(windows, `"granted"`) {
		t.Fatal("/debug/windows records lack credit vectors")
	}
}

func fetchBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
