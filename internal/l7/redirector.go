package l7

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/agreement"
	"repro/internal/budget"
	"repro/internal/combining"
	"repro/internal/core"
	"repro/internal/ctrlplane"
	"repro/internal/health"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/topology"
	"repro/internal/treenet"
)

// DefaultRetryBudget is the per-window cap on proxy-mode failover retries
// when RedirectorConfig.RetryBudget is zero: enough to ride out a backend
// dying mid-window, small enough that a dead fleet cannot turn every
// admitted request into a retry storm.
const DefaultRetryBudget = 8

// persistCheckpointEvery is how many durable window appends accumulate
// before the record log is compacted to its newest record.
const persistCheckpointEvery = 256

// TreeConfig wires a redirector into a combining tree of redirector
// processes. Peers maps node ids to treenet addresses.
type TreeConfig = treenet.Spec

// RedirectorConfig parameterizes a Layer-7 redirector.
type RedirectorConfig struct {
	Engine *core.Engine
	// ID distinguishes redirectors of the same engine.
	ID int
	// Addr is the HTTP bind address (use "127.0.0.1:0" for tests).
	Addr string
	// Orgs maps the first URL path segment under /svc/ to a principal,
	// e.g. {"acme": A}. Requests for unknown orgs get 404.
	Orgs map[string]agreement.Principal
	// Backends maps owner principals to backend base URLs.
	Backends map[agreement.Principal][]string
	// Tree, if non-nil, connects this redirector to its peers; when nil the
	// redirector coordinates with nobody (single-node enforcement) and
	// feeds its own estimate back as the global view.
	Tree *TreeConfig
	// Proxy selects single-round-trip operation: instead of answering with
	// a 302, the redirector forwards admitted requests to the backend
	// itself and relays the response. This is the SOAP-redirector variant
	// §4.1 mentions to avoid HTTP's doubled round trips; over-quota
	// requests get 503 + Retry-After instead of a self-redirect.
	Proxy bool
	// TraceDepth is the window-trace ring capacity served at /debug/windows
	// (0 selects obs.DefaultRingDepth).
	TraceDepth int
	// Health, if non-nil, enables active backend health checking: down
	// backends are skipped by backend choice, proxy-mode requests fail over
	// to another backend of the same owner, and every down/up transition
	// re-interprets the agreements against the surviving capacity
	// (Engine.UpdateCapacities, the paper's §2.2 made automatic).
	Health *health.Options
	// Ctrl, if true, attaches the dynamic agreement control plane to this
	// redirector's admin surface (/v1/agreements, /v1/principals/...).
	// With a tree, accepted mutations are epoch-gated and piggybacked on
	// this node's downward broadcasts — enable Ctrl on the tree root only.
	// Without a tree, mutations commit at the next window boundary.
	Ctrl bool
	// CtrlLead is the rollout gate lead in tree epochs (<=0 selects
	// ctrlplane.DefaultLead). Ignored unless Ctrl is set.
	CtrlLead int
	// AdmissionShards sets the admission plane's credit shard count
	// (0 selects GOMAXPROCS; see internal/admission).
	AdmissionShards int
	// Trace, if non-nil, enables request-span tracing: per-request phase
	// timestamps (admit, backend choice, first byte, close) recorded with
	// zero allocations, head-sampled plus slowest-K-per-window, served at
	// /v1/debug/trace; span IDs are attached to the request-latency
	// histogram buckets as exemplars.
	Trace *obs.TraceConfig
	// Flight, if non-nil, arms the SLO flight recorder: an under-floor
	// settled window or a span breaching Flight.SLO freezes a bounded
	// capture served at /v1/debug/flight. Requires Trace.
	Flight *obs.FlightConfig
	// Persist, if non-nil, arms the durable-state plane (internal/persist):
	// at boot the redirector restores its window position, carried credit,
	// demand estimate and newest agreement set from the store, announces a
	// tree rejoin from the durable epoch, and resumes appending one window
	// record per PersistEvery windows. The caller owns the store's
	// lifecycle; Close checkpoints but does not close it.
	Persist *persist.Store
	// PersistEvery is the durable append cadence in windows (<=1 appends
	// every window — the tightest crash-loss bound). Ignored without
	// Persist.
	PersistEvery int
	// RetryBudget caps proxy-mode failover retries per window (0 selects
	// DefaultRetryBudget, negative disables failover): once a window's
	// budget is spent, a failed backend exchange fails fast instead of
	// being retried elsewhere, and rsa_l7_retry_budget_exhausted_total
	// counts the cutoffs.
	RetryBudget int
}

// Redirector is the Layer-7 switch: an HTTP server answering every request
// for /svc/<org>/... with a 302 — either to a backend of the owner chosen
// by the scheduler, or to itself when the principal is over quota this
// window (the implicit-queue self-redirect of §4.1).
type Redirector struct {
	cfg   RedirectorConfig
	srv   *http.Server
	ln    net.Listener
	start time.Time

	// mu guards the window-boundary state only (core redirector, combining
	// tree, estimate buffer). The request path never takes it: admission
	// goes through the sharded admission plane, backend choice through an
	// atomic round-robin cursor.
	mu     sync.Mutex
	red    *core.Redirector
	tree   *combining.Forest
	hop    *combining.HopMetrics
	estBuf []float64 // reused local-estimate buffer (under mu)

	adm *admission.Plane
	rr  []atomic.Uint32 // round-robin cursor per owner principal

	obsv         *obs.Observer
	handler      *obs.Handler
	plane        *ctrlplane.Plane
	lat          *obs.Histogram // per-request handling latency
	tracer       *obs.Tracer
	flight       *obs.FlightRecorder
	names        []string       // principal index → name, for span tags
	warnFailover *obs.RateLimit // proxy-failover warning gate

	checker *health.Checker
	reint   *health.Reinterpreter
	client  *http.Client

	transport *treenet.Transport
	reparent  treenet.Detector
	topoPlane func() *topology.Plane // nil on a flat layout
	ticker    *time.Ticker
	done      chan struct{}
	closeOnce sync.Once

	// Durable-state scratch (window loop only, under mu): export buffers,
	// append cadence, and the newest set version already saved.
	persistM     [][]float64
	persistT     []float64
	persistE     []float64
	persistSince int
	persistSeq   int
	savedSet     uint64

	// Proxy failover budget: refilled at each window boundary, drawn by
	// failover attempts on the request path.
	retryTokens    atomic.Int64
	retryExhausted atomic.Uint64
}

// NewRedirector starts a Layer-7 redirector.
func NewRedirector(cfg RedirectorConfig) (*Redirector, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("l7: nil engine")
	}
	if len(cfg.Orgs) == 0 || len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("l7: need org and backend maps")
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("l7: listen %s: %w", cfg.Addr, err)
	}
	r := &Redirector{
		cfg:   cfg,
		ln:    ln,
		start: time.Now(),
		red:   cfg.Engine.NewRedirector(cfg.ID),
		rr:    make([]atomic.Uint32, cfg.Engine.NumPrincipals()),
		done:  make(chan struct{}),
	}
	r.adm, err = admission.New(admission.Config{
		Redirector: r.red, Engine: cfg.Engine, Shards: cfg.AdmissionShards,
	})
	if err != nil {
		ln.Close()
		return nil, err
	}

	r.names = cfg.Engine.PrincipalNames()
	r.warnFailover = obs.NewRateLimit(5*time.Second, 1)
	if cfg.Trace != nil {
		r.tracer = obs.NewTracer(*cfg.Trace, cfg.ID)
	}

	// Proxy-mode backend client: pooled transport with dial and
	// response-header deadlines, so a dead backend costs a bounded error
	// instead of a request hung on http.DefaultClient forever. With tracing
	// on, dials feed the tracer's dial-phase histogram (the HTTP client
	// dials inside the transport, where no request span is in scope).
	dial := (&net.Dialer{Timeout: 2 * time.Second}).DialContext
	if r.tracer != nil {
		tr, inner := r.tracer, dial
		dial = func(ctx context.Context, network, addr string) (net.Conn, error) {
			dialStart := time.Now()
			conn, derr := inner(ctx, network, addr)
			tr.ObserveDial(time.Since(dialStart))
			return conn, derr
		}
	}
	r.client = &http.Client{
		Transport: &http.Transport{
			DialContext:           dial,
			ResponseHeaderTimeout: 10 * time.Second,
			MaxIdleConns:          256,
			MaxIdleConnsPerHost:   128,
			IdleConnTimeout:       30 * time.Second,
		},
	}

	if cfg.Tree != nil {
		addr := cfg.Tree.ListenAddr
		if addr == "" {
			addr = "127.0.0.1:0"
		}
		wiring, werr := cfg.Tree.Resolve()
		if werr != nil {
			ln.Close()
			return nil, werr
		}
		r.transport, err = treenet.Listen(cfg.Tree.NodeID, addr, r.onTreeMessage)
		if err != nil {
			ln.Close()
			return nil, err
		}
		for id, peerAddr := range cfg.Tree.Peers {
			r.transport.SetPeer(id, peerAddr)
		}
		r.reparent = wiring.Detector
		r.topoPlane = wiring.Plane
		// Principal sharding: under the component policy each disjoint
		// agreement component runs its own tree (independent epochs) over
		// the shared plane; otherwise one tree carries the full vector.
		var comps [][]int
		if top := cfg.Tree.Topology; top != nil {
			if top.Sharding == topology.ShardComponent {
				for _, c := range cfg.Engine.System().Components() {
					ms := make([]int, len(c))
					for i, p := range c {
						ms[i] = int(p)
					}
					comps = append(comps, ms)
				}
			}
			if d := top.Normalize().Delta; d.Enabled() {
				r.transport.EnableDelta(d.Threshold, d.ResyncEvery)
			}
		}
		r.hop = combining.NewHopMetrics()
		r.tree, err = combining.NewForest(combining.ForestConfig{
			ID: cfg.Tree.NodeID, Parent: wiring.Parent, Children: wiring.Children,
			NumPrincipals: cfg.Engine.NumPrincipals(), Components: comps,
			Send: r.transport.TreeSend, Now: r.elapsed, Hop: r.hop,
		})
		if err != nil {
			ln.Close()
			r.transport.Close()
			return nil, err
		}
		// Configuration updates arriving from the parent stage a new
		// scheduling generation on the local engine behind the sender's
		// epoch gate; the window loop swaps once this node's epoch crosses
		// it. Runs on the transport goroutine under r.mu (OnMessage).
		r.tree.SetConfigHandler(func(cu *combining.ConfigUpdate) {
			set, derr := agreement.DecodeSet(cu.Payload)
			if derr != nil {
				cfg.Engine.Logger().Error("bad config payload", "version", cu.Version, "err", derr)
				return
			}
			if _, serr := cfg.Engine.StageSet(set, cu.GateEpoch); serr != nil {
				cfg.Engine.Logger().Error("stage agreement set", "version", cu.Version, "err", serr)
				return
			}
			// Every set the tree delivers becomes durable before the gate
			// can arrive: a crash after this point recovers the newest
			// entitlements instead of rejoining blind.
			if cfg.Persist != nil {
				if perr := cfg.Persist.SaveSet(set); perr != nil {
					cfg.Engine.Logger().Error("persist agreement set", "version", cu.Version, "err", perr)
				}
			}
		})
	}

	// Crash recovery: restore the durable window position, carried credit,
	// demand estimate and newest agreement set before the first window or
	// tree tick, then announce a rejoin so the parent unblocks this node's
	// (rewound) epoch and streams back the current global + configuration.
	var resumeSet *agreement.Set
	if cfg.Persist != nil {
		resumeSet, err = cfg.Persist.LoadNewestSet()
		if err != nil {
			ln.Close()
			if r.transport != nil {
				r.transport.Close()
			}
			return nil, fmt.Errorf("l7: recover agreement set: %w", err)
		}
		if resumeSet != nil {
			// Gate 0: a recovered set the fleet already converged on commits
			// locally at the next window boundary, no quorum round needed.
			if _, serr := cfg.Engine.StageSet(resumeSet, 0); serr != nil {
				cfg.Engine.Logger().Error("restage recovered set", "version", resumeSet.Version, "err", serr)
				resumeSet = nil
			} else {
				r.savedSet = resumeSet.Version
			}
		}
		if ws, ok := cfg.Persist.LastWindow(); ok {
			r.red.RestoreState(ws.WindowSeq, ws.Estimate, ws.Credit, ws.CreditTotal)
			r.red.SetRollout(ws.Epoch, ws.SetVersion)
			if r.tree != nil {
				var cu *combining.ConfigUpdate
				if resumeSet != nil {
					if data, perr := resumeSet.Encode(); perr == nil {
						cu = &combining.ConfigUpdate{
							Version: resumeSet.Version, GateEpoch: ws.Gate, Payload: data,
						}
					}
				}
				r.tree.Reset(ws.Epoch, cu)
				r.tree.AnnounceRejoin()
			}
		}
	}

	if cfg.Ctrl {
		// A restarted control-plane host resumes version numbering from the
		// recovered snapshot, so its next mutation is not discarded
		// fleet-wide as stale.
		opt := ctrlplane.Options{Lead: cfg.CtrlLead, Logger: cfg.Engine.Logger(), Resume: resumeSet}
		if cfg.Persist != nil {
			// Leases ride the same durable store: the table is saved after
			// every lease mutation and recovered on restart, so long-lived
			// reservations survive a crash with bounded loss.
			store := cfg.Persist
			logger := cfg.Engine.Logger()
			opt.SaveLeases = func(t *budget.Table) {
				if perr := store.SaveLeases(t); perr != nil {
					logger.Error("persist lease table", "version", t.Version, "err", perr)
				}
			}
			if lt, perr := store.LoadNewestLeases(); perr == nil {
				opt.ResumeLeases = lt
			} else {
				logger.Error("load lease table", "err", perr)
			}
		}
		if r.tree != nil {
			tree := r.tree
			opt.Epoch = func() int {
				r.mu.Lock()
				defer r.mu.Unlock()
				return tree.Epoch()
			}
			opt.Publish = func(set *agreement.Set, gate int) {
				// Durable before distributed: a root crash between publish
				// and fleet convergence must not lose the renegotiation.
				if cfg.Persist != nil {
					if perr := cfg.Persist.SaveSet(set); perr != nil {
						cfg.Engine.Logger().Error("persist agreement set", "version", set.Version, "err", perr)
					}
				}
				data, perr := set.Encode()
				if perr != nil {
					cfg.Engine.Logger().Error("encode agreement set", "version", set.Version, "err", perr)
					return
				}
				r.mu.Lock()
				tree.SetConfig(&combining.ConfigUpdate{Version: set.Version, GateEpoch: gate, Payload: data})
				r.mu.Unlock()
			}
		} else if cfg.Persist != nil {
			opt.Publish = func(set *agreement.Set, gate int) {
				if perr := cfg.Persist.SaveSet(set); perr != nil {
					cfg.Engine.Logger().Error("persist agreement set", "version", set.Version, "err", perr)
				}
			}
		}
		r.plane, err = ctrlplane.New(cfg.Engine.System(), cfg.Engine, opt)
		if err != nil {
			ln.Close()
			if r.transport != nil {
				r.transport.Close()
			}
			return nil, err
		}
	}

	// Window tracing + exposition: one observer per redirector, scraped from
	// the same mux that serves traffic. The tree snapshot runs inside the
	// window loop under r.mu, so reading the node directly is safe.
	r.obsv = cfg.Engine.NewObserver(cfg.ID, nil, cfg.TraceDepth)
	if r.tree != nil {
		tree := r.tree
		r.obsv.SetTreeInfo(func() obs.TreeInfo {
			reports, broadcasts, sent := tree.MessageCounts()
			return obs.TreeInfo{
				Epoch:       tree.Epoch(),
				GlobalEpoch: tree.GlobalEpoch(),
				MsgsIn:      reports + broadcasts,
				MsgsOut:     sent,
			}
		})
	}
	if cfg.Health != nil {
		owners := make(map[string]agreement.Principal)
		for p, bs := range cfg.Backends {
			for _, b := range bs {
				owners[b] = p
			}
		}
		r.reint = health.NewReinterpreter(cfg.Engine, owners)
		r.checker = health.New(*cfg.Health, health.TCPProber(cfg.Health.Timeout))
		r.checker.OnTransition(r.reint.HandleTransition)
		r.checker.Watch(r.reint.Targets()...)
		r.obsv.SetHealthInfo(r.reint.Degraded)
		r.checker.Start()
	}

	r.red.SetObserver(r.obsv)
	r.lat = obs.NewHistogram()
	hcfg := obs.HandlerConfig{
		Observers: []*obs.Observer{r.obsv},
		Auditor:   r.obsv.Auditor(),
		Solver:    cfg.Engine.Stats(),
		Mode:      cfg.Engine.Mode().String(),
		Window:    cfg.Engine.Window(),
		Extra:     r.extraMetrics,
		Histograms: []obs.NamedHistogram{{
			Name: "rsa_l7_request_seconds",
			Help: "Layer-7 request handling latency (admission + redirect or full proxy exchange).",
			Hist: r.lat,
		}},
		Config: func() obs.ConfigInfo {
			info := cfg.Engine.Rollout()
			return obs.ConfigInfo{
				Active:     uint64(info.Active),
				Staged:     uint64(info.Staged),
				SetVersion: info.SetVersion,
				GateEpoch:  info.GateEpoch,
				Rollouts:   info.Rollouts,
			}
		},
	}
	if r.plane != nil {
		hcfg.Control = r.plane.Handler()
	}
	if r.tree != nil {
		hcfg.Topology = r.topologyInfo
	}
	if r.tracer != nil {
		if cfg.Flight != nil {
			fl := *cfg.Flight
			if fl.Logger == nil {
				fl.Logger = cfg.Engine.Logger().With("flight")
			}
			r.flight = obs.NewFlightRecorder(fl)
			r.flight.BindTracer(r.tracer)
			r.flight.BindWindows(r.obsv.Ring())
			r.flight.BindAuditor(r.obsv.Auditor())
			r.flight.SetCounters(r.adm.CountersSnapshot)
		}
		hcfg.Tracer = r.tracer
		hcfg.Flight = r.flight
	}
	r.handler = obs.NewHandler(hcfg)

	mux := http.NewServeMux()
	mux.HandleFunc("/svc/", r.handle)
	mux.HandleFunc("/stats", r.handleStats)
	r.handler.Register(mux)
	r.srv = &http.Server{Handler: mux}
	go func() { _ = r.srv.Serve(ln) }()

	r.retryTokens.Store(int64(r.retryBudget()))
	r.ticker = time.NewTicker(cfg.Engine.Window())
	go r.windowLoop()
	return r, nil
}

// URL returns the redirector's base URL.
func (r *Redirector) URL() string { return "http://" + r.ln.Addr().String() }

// TreeAddr returns the tree transport address ("" without a tree).
func (r *Redirector) TreeAddr() string {
	if r.transport == nil {
		return ""
	}
	return r.transport.Addr()
}

// SetTreePeer registers a peer address after construction (fleet harnesses
// wire nodes once every ephemeral tree port is known).
func (r *Redirector) SetTreePeer(id combining.NodeID, addr string) {
	if r.transport != nil {
		r.transport.SetPeer(id, addr)
	}
}

// TreeStats snapshots the tree transport's health and delta-compression
// counters (all zero without a tree).
func (r *Redirector) TreeStats() treenet.Stats {
	if r.transport == nil {
		return treenet.Stats{}
	}
	return r.transport.Stats()
}

// BindNode binds a topology node id to the raw backend target currently
// serving it in the health plane, so chaos harnesses can address members
// by stable id across restarts and re-parenting (see
// health.Reinterpreter.BindNode). Errors without health checking.
func (r *Redirector) BindNode(node int, target string) error {
	if r.reint == nil {
		return fmt.Errorf("l7: health checking disabled, no node registry")
	}
	return r.reint.BindNode(node, target)
}

// NodeTarget resolves a bound topology node id to its current raw target
// ("" when unbound or health checking is off).
func (r *Redirector) NodeTarget(node int) (string, bool) {
	if r.reint == nil {
		return "", false
	}
	return r.reint.NodeTarget(node)
}

func (r *Redirector) elapsed() time.Duration { return time.Since(r.start) }

// topologyInfo snapshots the combining plane for GET /v1/topology. On a
// hierarchical layout it reports every member's current placement from the
// (possibly repaired) compiled plane; on a flat layout it reports this
// node's own neighborhood — the authoritative local view either way.
func (r *Redirector) topologyInfo() *obs.TopologyInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.tree == nil {
		return nil
	}
	self := r.tree.ID()
	info := &obs.TopologyInfo{Self: int(self)}
	if r.topoPlane != nil {
		plane := r.topoPlane()
		info.Root = int(plane.Root())
		info.Levels = plane.Levels()
		for _, id := range plane.Members() {
			node := obs.TopologyNode{ID: int(id), Parent: -1, Alive: plane.Alive(id)}
			if pl, ok := plane.Placement(id); ok {
				node.Region, node.Parent = pl.Region, int(pl.Parent)
				node.Level, node.SubRoot = pl.Level, pl.SubRoot
			}
			info.Nodes = append(info.Nodes, node)
		}
	} else {
		// Flat layout: this node only knows its own placement (and, with a
		// detector, which neighbors it pruned).
		parent, children := r.cfg.Tree.Parent, r.cfg.Tree.Children
		if r.reparent != nil {
			parent, children = r.reparent.Parent(), r.reparent.Children()
		}
		info.Levels = 2
		if parent < 0 {
			info.Root = int(self)
		} else {
			info.Root = int(parent)
		}
		removed := make(map[combining.NodeID]bool)
		if r.reparent != nil {
			for _, id := range r.reparent.Removed() {
				removed[id] = true
			}
		}
		level := 0
		if parent >= 0 {
			level = 1
			info.Nodes = append(info.Nodes, obs.TopologyNode{
				ID: int(parent), Region: "flat", Parent: -1, Alive: !removed[parent],
			})
		}
		info.Nodes = append(info.Nodes, obs.TopologyNode{
			ID: int(self), Region: "flat", Parent: int(parent), Level: level, Alive: true,
		})
		for _, c := range children {
			info.Nodes = append(info.Nodes, obs.TopologyNode{
				ID: int(c), Region: "flat", Parent: int(self), Level: level + 1, Alive: !removed[c],
			})
		}
	}
	names := r.names
	for t := 0; t < r.tree.Trees(); t++ {
		comp := obs.TopologyComponent{
			Tree:        t,
			Epoch:       r.tree.Tree(t).Epoch(),
			GlobalEpoch: r.tree.Tree(t).GlobalEpoch(),
		}
		for _, p := range r.tree.Component(t) {
			if p >= 0 && p < len(names) {
				comp.Principals = append(comp.Principals, names[p])
			}
		}
		info.Components = append(info.Components, comp)
	}
	if r.transport != nil {
		st := r.transport.Stats()
		info.DeltaBytesSaved = st.Delta.BytesSaved
		info.DeltaEntriesSuppressed = st.Delta.EntriesSuppressed
		info.DeltaEnabled = r.cfg.Tree.Topology != nil && r.cfg.Tree.Topology.Delta.Enabled()
	}
	return info
}

func (r *Redirector) onTreeMessage(tree int, from combining.NodeID, msg interface{}) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tree.OnMessage(tree, from, msg)
	if _, ok := msg.(combining.Broadcast); ok {
		r.pushGlobalLocked()
		// Pre-solve the plan the next window boundary will need while we
		// are already off the request path; the boundary's solve becomes a
		// plan-cache hit and never stalls admissions.
		r.red.Presolve(r.elapsed())
	}
}

// pushGlobalLocked publishes the settled aggregates to the engine: the
// flat single-tree path keeps the uniform SetGlobal semantics, sharded
// forests stamp each agreement component with its own tree's timestamp.
func (r *Redirector) pushGlobalLocked() {
	if r.tree.Trees() == 1 {
		if agg, at, ok := r.tree.ComponentGlobal(0); ok {
			r.red.SetGlobal(agg.Sum, at)
		}
		return
	}
	for t := 0; t < r.tree.Trees(); t++ {
		if agg, at, ok := r.tree.ComponentGlobal(t); ok {
			r.red.SetGlobalComponent(r.tree.Component(t), agg.Sum, at)
		}
	}
}

func (r *Redirector) windowLoop() {
	for {
		select {
		case <-r.done:
			return
		case <-r.ticker.C:
			r.mu.Lock()
			r.estBuf = r.red.LocalEstimateInto(r.estBuf)
			if r.tree != nil {
				if r.reparent != nil {
					// Failure detection first: a silent neighbor is pruned
					// and this epoch's report already goes to the new parent.
					r.reparent.Check(r.tree, r.elapsed())
				}
				r.tree.SetLocal(r.estBuf)
				r.tree.Tick()
				if r.tree.IsRoot() {
					r.pushGlobalLocked()
				}
			} else {
				// Single redirector: its own estimate is the global truth.
				r.red.SetGlobal(r.estBuf, r.elapsed())
			}
			var epoch, gate int
			var known uint64
			if r.tree != nil {
				// Rollout view for the epoch gate: this node's epoch and
				// the newest agreement-set version the tree delivered.
				epoch = r.tree.Epoch()
				if ge := r.tree.GlobalEpoch(); ge > epoch {
					epoch = ge
				}
				if cu := r.tree.Config(); cu != nil {
					known, gate = cu.Version, cu.GateEpoch
				}
				r.red.SetRollout(epoch, known)
			}
			// The plane folds the shards' arrival/admission counters,
			// schedules the next window, and flips the credit pool —
			// in-flight admits keep draining the old pool until the new
			// one is published, so the boundary never stalls them.
			// Scheduling failures leave last window's credits in place;
			// enforcement degrades gracefully.
			_ = r.adm.StartWindow(r.elapsed())
			r.persistWindowLocked(epoch, known, gate)
			r.tracer.StartWindow(uint64(r.red.Windows), uint64(r.cfg.Engine.Version()))
			r.mu.Unlock()
			// Refill the proxy failover budget for the new window.
			r.retryTokens.Store(int64(r.retryBudget()))
		}
	}
}

// retryBudget resolves the configured per-window failover budget.
func (r *Redirector) retryBudget() int {
	switch {
	case r.cfg.RetryBudget > 0:
		return r.cfg.RetryBudget
	case r.cfg.RetryBudget < 0:
		return 0
	default:
		return DefaultRetryBudget
	}
}

// persistWindowLocked appends the just-started window's durable record —
// carried credit, demand estimate, window sequence, rollout position — to
// the store, compacting the record log every persistCheckpointEvery
// appends. Runs at the window boundary under r.mu; a no-op without a
// store. Persistence errors are logged, never fatal: enforcement continues
// with a wider crash-loss bound.
func (r *Redirector) persistWindowLocked(epoch int, known uint64, gate int) {
	st := r.cfg.Persist
	if st == nil {
		return
	}
	r.persistSince++
	every := r.cfg.PersistEvery
	if every <= 1 {
		every = 1
	}
	if r.persistSince < every {
		return
	}
	r.persistSince = 0
	n := r.cfg.Engine.NumPrincipals()
	if r.persistT == nil {
		r.persistT = make([]float64, n)
		r.persistM = make([][]float64, n)
		for i := range r.persistM {
			r.persistM[i] = make([]float64, n)
		}
	}
	r.red.ExportCredits(r.persistM, r.persistT)
	r.persistE = r.red.ExportEstimate(r.persistE)
	ws := persist.WindowState{
		WindowSeq:  r.red.Windows,
		Epoch:      epoch,
		SetVersion: known,
		Gate:       gate,
		Estimate:   r.persistE,
	}
	if r.cfg.Engine.Mode() == core.Provider {
		ws.CreditTotal = r.persistT
	} else {
		ws.Credit = r.persistM
	}
	if err := st.AppendWindow(ws); err != nil {
		r.cfg.Engine.Logger().Error("persist window record", "window", ws.WindowSeq, "err", err)
		return
	}
	r.persistSeq++
	if r.persistSeq%persistCheckpointEvery == 0 {
		if err := st.Checkpoint(); err != nil {
			r.cfg.Engine.Logger().Error("persist checkpoint", "err", err)
		}
	}
}

// spanVerdict maps an admission outcome to its span verdict.
func spanVerdict(out admission.Outcome) obs.Verdict {
	switch out {
	case admission.OutcomeAdmit:
		return obs.VerdictAdmit
	case admission.OutcomeSteal:
		return obs.VerdictSteal
	case admission.OutcomeDry:
		return obs.VerdictDry
	default:
		return obs.VerdictReject
	}
}

// principalName maps a principal to its span tag.
func (r *Redirector) principalName(p agreement.Principal) string {
	if int(p) >= 0 && int(p) < len(r.names) {
		return r.names[p]
	}
	return ""
}

// handle answers /svc/<org>/<rest> with a redirect (or, in proxy mode, the
// proxied backend response). When tracing is enabled the request may carry
// a pre-allocated span (nil-safe stamps, zero allocations); the finished
// span's ID is attached to the latency histogram bucket as an exemplar.
func (r *Redirector) handle(w http.ResponseWriter, req *http.Request) {
	handleStart := time.Now()
	var sp *obs.Span
	defer func() { r.lat.ObserveExemplar(time.Since(handleStart), sp.Finish()) }()
	rest := strings.TrimPrefix(req.URL.Path, "/svc/")
	org, tail, _ := strings.Cut(rest, "/")
	p, ok := r.cfg.Orgs[org]
	if !ok {
		http.NotFound(w, req)
		return
	}

	// Lock-free request path: one sharded-plane admission, one atomic
	// round-robin backend choice.
	sp = r.tracer.Begin(r.principalName(p))
	d, det := r.adm.AdmitTraced(p, -1, 1)
	sp.StampAdmit(spanVerdict(det.Outcome), det.Shard)
	var target string
	if d.Admitted {
		target = r.chooseBackend(d.Owner, "")
		sp.StampBackend()
	}

	if target == "" {
		if r.cfg.Proxy {
			// Single-round-trip variant: tell the client to retry.
			w.Header().Set("Retry-After", "0")
			http.Error(w, "over quota this window", http.StatusServiceUnavailable)
			return
		}
		// Self-redirect: the client retries the same URL (implicit queuing).
		w.Header().Set("Retry-After", "0")
		http.Redirect(w, req, r.URL()+req.URL.RequestURI(), http.StatusFound)
		return
	}
	if r.cfg.Proxy {
		r.proxy(w, req, d.Owner, target, tail, sp)
		return
	}
	http.Redirect(w, req, destURL(target, tail, req.URL.RawQuery), http.StatusFound)
}

// destURL joins a backend base URL with the request tail and query.
func destURL(target, tail, query string) string {
	dest := target + "/" + tail
	if query != "" {
		dest += "?" + query
	}
	return dest
}

// chooseBackend round-robins over the owner's backends, skipping ones the
// health checker holds down and the one named by skip (the backend a
// failover is escaping). Returns "" when no usable backend exists. Safe
// without the redirector mutex: the cursor is atomic and the checker locks
// internally.
func (r *Redirector) chooseBackend(owner agreement.Principal, skip string) string {
	backends := r.cfg.Backends[owner]
	if len(backends) == 0 {
		return ""
	}
	for range backends {
		idx := int(r.rr[owner].Add(1)-1) % len(backends)
		b := backends[idx]
		if b == skip {
			continue
		}
		if r.checker == nil || r.checker.Up(b) {
			return b
		}
	}
	return ""
}

// proxy relays the request to a backend of owner and the response to the
// client — one client round trip instead of two. A failed backend exchange
// is reported to the health checker and retried once against another
// backend of the same owner (bounded failover, not a retry storm).
func (r *Redirector) proxy(w http.ResponseWriter, req *http.Request, owner agreement.Principal, target, tail string, sp *obs.Span) {
	// Buffer the body so a failover attempt can replay it.
	var body []byte
	if req.Body != nil {
		var err error
		body, err = io.ReadAll(req.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
	}
	var lastErr error
	for attempt := 0; attempt < 2 && target != ""; attempt++ {
		out, err := http.NewRequest(req.Method, destURL(target, tail, req.URL.RawQuery),
			bytes.NewReader(body))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		out.Header = req.Header.Clone()
		resp, err := r.client.Do(out)
		if err == nil {
			defer resp.Body.Close()
			sp.StampFirstByte()
			for k, vs := range resp.Header {
				for _, v := range vs {
					w.Header().Add(k, v)
				}
			}
			w.WriteHeader(resp.StatusCode)
			_, _ = io.Copy(w, resp.Body)
			return
		}
		lastErr = err
		if r.checker != nil {
			r.checker.ReportFailure(target, r.elapsed())
		}
		// Failover is budgeted per window: a dying fleet must not turn
		// every admitted request into a second backend exchange.
		if r.retryTokens.Add(-1) < 0 {
			r.retryExhausted.Add(1)
			break
		}
		r.cfg.Engine.Logger().With("l7").WarnRate(r.warnFailover,
			"proxy exchange failed; failing over",
			"backend", target, "err", err)
		target = r.chooseBackend(owner, target)
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no usable backend")
	}
	http.Error(w, lastErr.Error(), http.StatusBadGateway)
}

// RetryBudgetExhausted reports how many proxy failovers were suppressed
// because the window's retry budget was already spent.
func (r *Redirector) RetryBudgetExhausted() uint64 { return r.retryExhausted.Load() }

// Stats reports admission counters, folded from the plane's shards.
func (r *Redirector) Stats() (admitted, rejected int) {
	a, j := r.adm.Counts()
	return int(a), int(j)
}

// Observer exposes the window-trace observer (auditor counters, trace ring).
func (r *Redirector) Observer() *obs.Observer { return r.obsv }

// Tracer exposes the request-span tracer (nil unless Trace was configured).
func (r *Redirector) Tracer() *obs.Tracer { return r.tracer }

// Flight exposes the SLO flight recorder (nil unless Flight was configured).
func (r *Redirector) Flight() *obs.FlightRecorder { return r.flight }

// Plane exposes the dynamic agreement control plane (nil unless Ctrl was
// set). Its HTTP surface is already mounted under /v1 on the redirector's
// own mux.
func (r *Redirector) Plane() *ctrlplane.Plane { return r.plane }

// ObsHandler exposes the observability handler, already mounted on the
// redirector's own mux; cmd front-ends can additionally serve it on a
// dedicated admin listener.
func (r *Redirector) ObsHandler() *obs.Handler { return r.handler }

// extraMetrics appends the Layer-7 admission counters plus the health and
// tree-transport series to /metrics.
func (r *Redirector) extraMetrics(w io.Writer) {
	admitted, rejected := r.Stats()
	obs.WriteMetric(w, "rsa_l7_admitted_total", "counter",
		"Requests admitted and redirected (or proxied) to a backend.", float64(admitted))
	obs.WriteMetric(w, "rsa_l7_rejected_total", "counter",
		"Requests self-redirected or rejected for lack of window credit.", float64(rejected))
	obs.WriteMetric(w, "rsa_l7_retry_budget_exhausted_total", "counter",
		"Proxy failovers suppressed because the window's retry budget was spent.",
		float64(r.retryExhausted.Load()))
	admission.WriteMetrics(w, r.adm)
	health.WriteMetrics(w, r.checker, r.reint)
	treenet.WriteMetrics(w, r.transport, r.reparent)
	combining.WriteHopMetrics(w, r.hop)
}

// statsPayload is the JSON shape served at /stats.
type statsPayload struct {
	ID           int    `json:"id"`
	Mode         string `json:"mode"`
	WindowMS     int64  `json:"window_ms"`
	Admitted     int    `json:"admitted"`
	Rejected     int    `json:"rejected"`
	Windows      int    `json:"windows"`
	Conservative int    `json:"conservative_windows"`
	HasGlobal    bool   `json:"has_global"`
}

// handleStats serves operational counters for monitoring.
func (r *Redirector) handleStats(w http.ResponseWriter, req *http.Request) {
	admitted, rejected := r.Stats()
	r.mu.Lock()
	p := statsPayload{
		ID:           r.cfg.ID,
		Mode:         r.cfg.Engine.Mode().String(),
		WindowMS:     r.cfg.Engine.Window().Milliseconds(),
		Admitted:     admitted,
		Rejected:     rejected,
		Windows:      r.red.Windows,
		Conservative: r.red.Conservative,
		HasGlobal:    r.red.HasGlobal(),
	}
	r.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(p); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Close stops the redirector.
func (r *Redirector) Close() error {
	var err error
	r.closeOnce.Do(func() {
		close(r.done)
		r.ticker.Stop()
		if r.checker != nil {
			r.checker.Stop()
		}
		err = r.srv.Close()
		if r.transport != nil {
			if cerr := r.transport.Close(); err == nil {
				err = cerr
			}
		}
		r.client.CloseIdleConnections()
		// Compact the durable record log on the way out so the next boot
		// replays one record, not the whole run. The caller owns (and
		// closes) the store itself.
		if r.cfg.Persist != nil {
			if cerr := r.cfg.Persist.Checkpoint(); err == nil {
				err = cerr
			}
		}
	})
	return err
}
