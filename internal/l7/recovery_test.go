package l7

import (
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/agreement"
	"repro/internal/core"
	"repro/internal/persist"
)

// deadAddr returns a loopback URL nothing listens on (instant refusal).
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return "http://" + addr
}

// TestRetryBudgetExhausted pins the bounded-failover satellite: once a
// window's retry budget is spent, further failed proxy exchanges fail fast
// instead of fanning out to another backend, and the cutoff is counted.
func TestRetryBudgetExhausted(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket test")
	}
	s := agreement.New()
	sp := s.MustAddPrincipal("S", 5000)
	a := s.MustAddPrincipal("A", 0)
	s.MustSetAgreement(sp, a, 0.9, 1)
	eng, err := core.NewEngine(core.Config{
		Mode: core.Provider, System: s, ProviderPrincipal: sp,
		Window: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRedirector(RedirectorConfig{
		Engine: eng, Addr: "127.0.0.1:0",
		Orgs:        map[string]agreement.Principal{"acme": a},
		Backends:    map[agreement.Principal][]string{sp: {deadAddr(t), deadAddr(t)}},
		Proxy:       true,
		RetryBudget: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Hammer the dead fleet: early requests are 503 (estimator warm-up);
	// once two admitted requests land in one window, the first spends the
	// single failover token and the second is cut off by the empty budget.
	// Every exchange fails instantly (connection refused), so this loop is
	// tight.
	deadline := time.Now().Add(10 * time.Second)
	for r.RetryBudgetExhausted() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("retry budget never reported exhaustion against dead backends")
		}
		resp, err := http.Get(r.URL() + "/svc/acme/x")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadGateway && resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status %d, want 502 (dead backend) or 503 (no quota yet)", resp.StatusCode)
		}
	}
	resp, err := http.Get(r.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "rsa_l7_retry_budget_exhausted_total") {
		t.Fatal("rsa_l7_retry_budget_exhausted_total missing from /metrics")
	}
}

// TestBootRestore pins the crash-recovery boot path: a redirector handed a
// store holding a window record and a newer agreement set resumes from
// them — window sequence restored, recovered set staged and committed —
// and keeps appending its own records to the same store.
func TestBootRestore(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket test")
	}
	s := agreement.New()
	a := s.MustAddPrincipal("A", 320)
	b := s.MustAddPrincipal("B", 320)
	s.MustSetAgreement(b, a, 0.5, 0.5)
	eng, err := core.NewEngine(core.Config{
		Mode: core.Community, System: s, Window: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	// What the previous process left behind: a renegotiated set (v3) and
	// the last window's state.
	st, err := persist.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	prev := s.Clone()
	if err := prev.SetAgreement(b, a, 0.25, 0.25); err != nil {
		t.Fatal(err)
	}
	set := prev.Snapshot(3)
	if err := st.SaveSet(set); err != nil {
		t.Fatal(err)
	}
	ws := persist.WindowState{
		WindowSeq:  42,
		Epoch:      42,
		SetVersion: 3,
		Estimate:   []float64{7, 5},
		Credit:     [][]float64{{3, 0}, {1, 2}},
	}
	if err := st.AppendWindow(ws); err != nil {
		t.Fatal(err)
	}

	backend, err := NewBackend("127.0.0.1:0", 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer backend.Close()
	r, err := NewRedirector(RedirectorConfig{
		Engine: eng, Addr: "127.0.0.1:0",
		Orgs:     map[string]agreement.Principal{"acme": a},
		Backends: map[agreement.Principal][]string{b: {backend.URL()}},
		Persist:  st,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The recovered set committed (gate 0) and version numbering resumed.
	if got := eng.LastSetVersion(); got != 3 {
		t.Fatalf("recovered set version = %d, want 3", got)
	}
	// The window sequence resumed from the durable record, not from zero.
	r.mu.Lock()
	windows := r.red.Windows
	r.mu.Unlock()
	if windows < 42 {
		t.Fatalf("window sequence = %d, want >= 42 (restored)", windows)
	}

	// The live process keeps extending the same log past the restored seq.
	deadline := time.Now().Add(5 * time.Second)
	for {
		last, ok := st.LastWindow()
		if ok && last.WindowSeq > 42 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no durable window record appended past the restored sequence")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Close checkpointed: the log replays to the newest record.
	last, ok := st.LastWindow()
	if !ok || last.WindowSeq <= 42 {
		t.Fatalf("post-close LastWindow = (%+v, %v), want seq > 42", last, ok)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}
