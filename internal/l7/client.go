package l7

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client fetches URLs through a Layer-7 redirector, following backend
// redirects and retrying self-redirects after a short pause — the behavior
// the paper obtained by putting a redirect-handling proxy in front of
// WebBench.
type Client struct {
	// HTTP is the underlying client; redirect following is handled here,
	// not by net/http.
	HTTP *http.Client
	// RetryDelay is the pause before re-requesting after a self-redirect
	// (default 10 ms).
	RetryDelay time.Duration
	// MaxAttempts bounds total attempts per Fetch (default 50).
	MaxAttempts int

	// Fetched counts completed requests; SelfRedirects counts implicit-queue
	// retries observed.
	Fetched       int64
	SelfRedirects int64
}

// NewClient returns a client with test-friendly defaults.
func NewClient() *Client {
	return &Client{
		HTTP: &http.Client{
			CheckRedirect: func(req *http.Request, via []*http.Request) error {
				return http.ErrUseLastResponse // surface 302s to Fetch
			},
			Timeout: 10 * time.Second,
		},
		RetryDelay:  10 * time.Millisecond,
		MaxAttempts: 50,
	}
}

// Fetch requests url, following redirects until a 200 arrives or attempts
// run out. It returns the number of payload bytes read.
func (c *Client) Fetch(url string) (int, error) {
	cur := url
	for attempt := 0; attempt < c.MaxAttempts; attempt++ {
		resp, err := c.HTTP.Get(cur)
		if err != nil {
			return 0, err
		}
		switch resp.StatusCode {
		case http.StatusOK:
			n, err := io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if err != nil {
				return 0, err
			}
			c.Fetched++
			return int(n), nil
		case http.StatusServiceUnavailable:
			// Proxy-mode over-quota answer: retry like a self-redirect.
			io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
			resp.Body.Close()
			c.SelfRedirects++
			time.Sleep(c.RetryDelay)
		case http.StatusFound, http.StatusMovedPermanently, http.StatusTemporaryRedirect:
			loc := resp.Header.Get("Location")
			io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
			resp.Body.Close()
			if loc == "" {
				return 0, fmt.Errorf("l7: redirect without Location from %s", cur)
			}
			if sameEndpoint(loc, cur) {
				// Implicit queue: wait and retry.
				c.SelfRedirects++
				time.Sleep(c.RetryDelay)
				continue
			}
			cur = loc
		default:
			resp.Body.Close()
			return 0, fmt.Errorf("l7: unexpected status %d from %s", resp.StatusCode, cur)
		}
	}
	return 0, fmt.Errorf("l7: gave up on %s after %d attempts", url, c.MaxAttempts)
}

// sameEndpoint reports whether two URLs share scheme://host (a self-redirect).
func sameEndpoint(a, b string) bool {
	return hostOf(a) == hostOf(b)
}

func hostOf(u string) string {
	rest := u
	if i := strings.Index(rest, "://"); i >= 0 {
		rest = rest[i+3:]
	}
	if i := strings.IndexAny(rest, "/?"); i >= 0 {
		rest = rest[:i]
	}
	return rest
}
