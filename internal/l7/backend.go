// Package l7 is the application-layer (Layer-7) prototype of §4.1 on real
// sockets: an HTTP redirector that enforces sharing agreements by answering
// each request with a 302 redirect — to an assigned backend server when the
// request falls within its principal's window quota, or to the redirector
// itself (an implicit queue: the client retries) when it does not.
//
// The package also provides a capacity-limited backend server standing in
// for the paper's Apache boxes, and a redirect-following client used by the
// load generator.
package l7

import (
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Backend is an HTTP server that serves synthetic payloads at a bounded
// rate (requests per second), modeling the paper's fixed-capacity Apache
// servers. Requests beyond the rate are delayed FIFO-style, exactly like a
// single-threaded server draining a queue.
type Backend struct {
	srv      *http.Server
	ln       net.Listener
	interval time.Duration

	mu       sync.Mutex
	nextSlot time.Time

	served int64 // atomic
}

// NewBackend starts a backend on addr (use "127.0.0.1:0" for an ephemeral
// port) with the given capacity in requests/second.
func NewBackend(addr string, capacity float64) (*Backend, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("l7: backend capacity must be positive, got %v", capacity)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("l7: backend listen %s: %w", addr, err)
	}
	b := &Backend{
		ln:       ln,
		interval: time.Duration(float64(time.Second) / capacity),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", b.handle)
	b.srv = &http.Server{Handler: mux}
	go func() { _ = b.srv.Serve(ln) }()
	return b, nil
}

// URL returns the backend's base URL.
func (b *Backend) URL() string { return "http://" + b.ln.Addr().String() }

// Served reports how many requests completed.
func (b *Backend) Served() int64 { return atomic.LoadInt64(&b.served) }

func (b *Backend) handle(w http.ResponseWriter, r *http.Request) {
	// Reserve the next service slot and wait for it: a deterministic
	// fixed-rate server.
	b.mu.Lock()
	now := time.Now()
	slot := b.nextSlot
	if slot.Before(now) {
		slot = now
	}
	b.nextSlot = slot.Add(b.interval)
	b.mu.Unlock()
	time.Sleep(time.Until(slot))

	size := 1024
	if s := r.URL.Query().Get("size"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 && v <= 1<<20 {
			size = v
		}
	}
	atomic.AddInt64(&b.served, 1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Backend", b.ln.Addr().String())
	payload := make([]byte, size)
	_, _ = w.Write(payload)
}

// Close shuts the backend down.
func (b *Backend) Close() error { return b.srv.Close() }
