package l7

import (
	"net/http"
	"testing"
	"time"

	"repro/internal/agreement"
	"repro/internal/core"
)

// proxyRig builds one backend plus a redirector in the requested mode.
func proxyRig(t testing.TB, proxyMode bool, capacity float64) (*Redirector, agreement.Principal) {
	t.Helper()
	s := agreement.New()
	sp := s.MustAddPrincipal("S", capacity)
	a := s.MustAddPrincipal("A", 0)
	s.MustSetAgreement(sp, a, 0.9, 1)
	eng, err := core.NewEngine(core.Config{
		Mode: core.Provider, System: s, ProviderPrincipal: sp,
		Window: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	backend, err := NewBackend("127.0.0.1:0", capacity*2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { backend.Close() })
	r, err := NewRedirector(RedirectorConfig{
		Engine: eng, Addr: "127.0.0.1:0",
		Orgs:     map[string]agreement.Principal{"acme": a},
		Backends: map[agreement.Principal][]string{sp: {backend.URL()}},
		Proxy:    proxyMode,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r, a
}

func TestProxyModeSingleRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket test")
	}
	r, _ := proxyRig(t, true, 500)
	time.Sleep(150 * time.Millisecond) // let credits accumulate

	// A raw GET must return the payload directly — no redirect involved.
	resp, err := http.Get(r.URL() + "/svc/acme/page?size=333")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusFound {
		t.Fatal("proxy mode answered with a redirect")
	}
	if resp.StatusCode != http.StatusOK {
		// Quota may not have warmed yet; retry through the client.
		c := NewClient()
		n, err := c.Fetch(r.URL() + "/svc/acme/page?size=333")
		if err != nil {
			t.Fatal(err)
		}
		if n != 333 {
			t.Fatalf("payload = %d", n)
		}
		return
	}
	buf := make([]byte, 4096)
	total := 0
	for {
		n, err := resp.Body.Read(buf)
		total += n
		if err != nil {
			break
		}
	}
	if total != 333 {
		t.Fatalf("payload = %d bytes through proxy", total)
	}
	if got := resp.Header.Get("X-Backend"); got == "" {
		t.Fatal("backend headers not relayed")
	}
}

func TestProxyModeOverQuotaRetries(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket test")
	}
	r, _ := proxyRig(t, true, 100)
	c := NewClient()
	c.RetryDelay = 5 * time.Millisecond
	// Hammer sequentially: some requests must hit 503 and be retried, yet
	// all eventually complete.
	for i := 0; i < 30; i++ {
		if _, err := c.Fetch(r.URL() + "/svc/acme/x?size=64"); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if c.Fetched != 30 {
		t.Fatalf("Fetched = %d", c.Fetched)
	}
}

// BenchmarkRedirectVsProxyRoundTrips quantifies §4.1's observation that the
// HTTP 302 scheme doubles round trips: proxy mode should complete a request
// in roughly one client round trip instead of two.
func BenchmarkRedirectVsProxyRoundTrips(b *testing.B) {
	for _, mode := range []struct {
		name  string
		proxy bool
	}{{"redirect", false}, {"proxy", true}} {
		b.Run(mode.name, func(b *testing.B) {
			r, _ := proxyRig(b, mode.proxy, 100000)
			time.Sleep(100 * time.Millisecond)
			c := NewClient()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Fetch(r.URL() + "/svc/acme/x?size=64"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
