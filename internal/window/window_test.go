package window

import "testing"

func TestExplicitQueueFIFORelease(t *testing.T) {
	q := NewExplicitQueue(2)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		q.Enqueue(0, func() { order = append(order, i) })
	}
	q.Enqueue(1, func() { order = append(order, 100) })
	if q.Len(0) != 5 || q.Len(1) != 1 {
		t.Fatalf("lens = %d/%d", q.Len(0), q.Len(1))
	}
	lens := q.Lens()
	if lens[0] != 5 || lens[1] != 1 {
		t.Fatalf("Lens = %v", lens)
	}
	ran := q.Release([]float64{3, 0})
	if ran[0] != 3 || ran[1] != 0 {
		t.Fatalf("ran = %v", ran)
	}
	if len(order) != 3 || order[0] != 0 || order[2] != 2 {
		t.Fatalf("order = %v", order)
	}
	if q.Len(0) != 2 {
		t.Fatalf("remaining = %d", q.Len(0))
	}
	ran = q.Release([]float64{10, 10})
	if ran[0] != 2 || ran[1] != 1 {
		t.Fatalf("second release = %v", ran)
	}
	if order[len(order)-1] != 100 {
		t.Fatalf("order = %v", order)
	}
}

func TestExplicitQueueFractionalQuotaTruncates(t *testing.T) {
	q := NewExplicitQueue(1)
	n := 0
	for i := 0; i < 3; i++ {
		q.Enqueue(0, func() { n++ })
	}
	q.Release([]float64{1.9})
	if n != 1 {
		t.Fatalf("ran %d, want 1", n)
	}
}

func TestExplicitQueueBounds(t *testing.T) {
	q := NewExplicitQueue(1)
	q.Enqueue(-1, func() { t.Fatal("ran") })
	q.Enqueue(5, func() { t.Fatal("ran") })
	if q.Len(-1) != 0 || q.Len(5) != 0 {
		t.Fatal("out-of-range Len not 0")
	}
	// Short quota slice treated as zero for missing principals.
	q.Enqueue(0, func() {})
	ran := q.Release(nil)
	if ran[0] != 0 {
		t.Fatalf("ran = %v", ran)
	}
}

func TestCreditGateTakeAndCarry(t *testing.T) {
	g := NewCreditGate(1)
	g.Refill([]float64{2.5})
	takes := 0
	for g.TryTake(0) {
		takes++
	}
	if takes != 2 {
		t.Fatalf("takes = %d", takes)
	}
	if r := g.Remaining(0); r < 0.49 || r > 0.51 {
		t.Fatalf("remaining = %v", r)
	}
	g.Refill([]float64{0.5}) // 0.5 + 0.5 carried = 1.0
	if !g.TryTake(0) {
		t.Fatal("carried credit not usable")
	}
	if g.TryTake(0) {
		t.Fatal("over-take")
	}
}

func TestCreditGateCarryCappedAtOne(t *testing.T) {
	g := NewCreditGate(1)
	g.Refill([]float64{5})
	g.Refill([]float64{0}) // carry capped at 1
	if !g.TryTake(0) {
		t.Fatal("capped carry should allow one take")
	}
	if g.TryTake(0) {
		t.Fatal("carry exceeded cap")
	}
}

func TestCreditGateBounds(t *testing.T) {
	g := NewCreditGate(1)
	if g.TryTake(-1) || g.TryTake(3) {
		t.Fatal("out-of-range take succeeded")
	}
	if g.Remaining(-1) != 0 || g.Remaining(3) != 0 {
		t.Fatal("out-of-range remaining not 0")
	}
	g.Refill(nil) // short alloc slice
	if g.TryTake(0) {
		t.Fatal("take from empty gate")
	}
}
