// Package window provides the two admission mechanisms contrasted in §4.1:
//
//   - ExplicitQueue: the paper's first implementation — requests are held in
//     per-principal queues and released in a batch at the start of the next
//     time window. This bunches requests and, with closed-loop clients,
//     depresses server throughput (the anomaly the paper reports).
//   - CreditGate: the credit-based implicit scheme the paper switched to —
//     per-window allowances consumed one request at a time, forwarding
//     within-quota requests immediately.
//
// internal/core embeds credit logic directly for its two-dimensional
// (principal × owner) allocation; this package serves the ablation
// experiment and the Layer-4 pending-connection queue, which reinjects held
// work in later windows exactly like the paper's kernel module.
package window

// ExplicitQueue holds deferred work per principal and releases it in window
// batches.
type ExplicitQueue struct {
	queues [][]func()
}

// NewExplicitQueue creates queues for n principals.
func NewExplicitQueue(n int) *ExplicitQueue {
	return &ExplicitQueue{queues: make([][]func(), n)}
}

// Enqueue defers fn (typically "forward this request/connection") under
// principal p. Out-of-range principals are ignored.
func (q *ExplicitQueue) Enqueue(p int, fn func()) {
	if p < 0 || p >= len(q.queues) {
		return
	}
	q.queues[p] = append(q.queues[p], fn)
}

// Len reports the queued work for principal p.
func (q *ExplicitQueue) Len(p int) int {
	if p < 0 || p >= len(q.queues) {
		return 0
	}
	return len(q.queues[p])
}

// Lens returns all queue lengths (the n_i fed to the scheduler).
func (q *ExplicitQueue) Lens() []float64 {
	out := make([]float64, len(q.queues))
	for i, s := range q.queues {
		out[i] = float64(len(s))
	}
	return out
}

// Release pops and runs up to quota[p] deferred items per principal,
// returning how many ran per principal. Fractional quotas are truncated;
// carry fractions in the scheduler if needed.
func (q *ExplicitQueue) Release(quota []float64) []int {
	ran := make([]int, len(q.queues))
	for p := range q.queues {
		allow := 0
		if p < len(quota) {
			allow = int(quota[p])
		}
		if allow > len(q.queues[p]) {
			allow = len(q.queues[p])
		}
		for i := 0; i < allow; i++ {
			q.queues[p][i]()
			q.queues[p][i] = nil
		}
		q.queues[p] = append(q.queues[p][:0], q.queues[p][allow:]...)
		ran[p] = allow
	}
	return ran
}

// CreditGate is a per-principal credit counter with one-request carry-over.
type CreditGate struct {
	credits []float64
}

// NewCreditGate creates a gate for n principals.
func NewCreditGate(n int) *CreditGate {
	return &CreditGate{credits: make([]float64, n)}
}

// Refill installs the new window's allowances, carrying over at most one
// request of unused credit per principal.
func (g *CreditGate) Refill(alloc []float64) {
	for p := range g.credits {
		carry := g.credits[p]
		if carry < 0 {
			carry = 0
		}
		if carry > 1 {
			carry = 1
		}
		add := 0.0
		if p < len(alloc) {
			add = alloc[p]
		}
		g.credits[p] = add + carry
	}
}

// TryTake consumes one credit for principal p, reporting whether the
// request is within quota.
func (g *CreditGate) TryTake(p int) bool {
	if p < 0 || p >= len(g.credits) {
		return false
	}
	if g.credits[p] >= 1-1e-9 {
		g.credits[p]--
		return true
	}
	return false
}

// Remaining reports principal p's unused credit this window.
func (g *CreditGate) Remaining(p int) float64 {
	if p < 0 || p >= len(g.credits) {
		return 0
	}
	return g.credits[p]
}
