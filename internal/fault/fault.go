// Package fault is a deterministic, seedable fault-injection harness for
// the enforcement plane. A Schedule is an ordered list of fault events —
// backend crashes and restarts, tree-link partitions and heals, latency
// spikes, slowed backends — that can be replayed against any clock: the
// virtual-time simulation (sim.Sim.InjectFaults) or wall-clock real-socket
// tests and the CI chaos smoke (Schedule.Play).
//
// Determinism is the point: the same seed and the same builder calls yield
// the same event list, so a chaos run that exposes a convergence bug is
// replayable bit-for-bit. Randomized schedules draw from a rand.Rand seeded
// by the Schedule, never from global state.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Kind enumerates the injectable fault transitions.
type Kind int

const (
	// BackendDown crashes the backend named by Target.
	BackendDown Kind = iota
	// BackendUp restarts the backend named by Target.
	BackendUp
	// PartitionLink cuts the tree link between nodes A and B (both ways).
	PartitionLink
	// HealLink restores the tree link between nodes A and B.
	HealLink
	// LatencySpike sets the one-way delay on link A→B to Delay.
	LatencySpike
	// SlowBackend scales the Target backend's capacity by Value (0 < v ≤ 1).
	SlowBackend
	// RedirectorDown kill -9s the redirector process with tree-node id A:
	// its in-memory window state vanishes and it stops scheduling windows.
	RedirectorDown
	// RedirectorUp restarts redirector A from its durable state
	// (internal/persist), triggering the tree rejoin handshake.
	RedirectorUp
)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case BackendDown:
		return "backend-down"
	case BackendUp:
		return "backend-up"
	case PartitionLink:
		return "partition"
	case HealLink:
		return "heal"
	case LatencySpike:
		return "latency-spike"
	case SlowBackend:
		return "slow-backend"
	case RedirectorDown:
		return "redirector-down"
	case RedirectorUp:
		return "redirector-up"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one fault transition at a point on the harness clock.
type Event struct {
	// At is the injection time, relative to the start of the run.
	At   time.Duration
	Kind Kind
	// Target names a backend (BackendDown/BackendUp/SlowBackend).
	Target string
	// A and B are tree-node ids (link faults).
	A, B int
	// Delay parameterizes LatencySpike.
	Delay time.Duration
	// Value parameterizes SlowBackend (capacity factor).
	Value float64
}

// String renders the event for logs and test failures.
func (e Event) String() string {
	switch e.Kind {
	case BackendDown, BackendUp:
		return fmt.Sprintf("%v %s %s", e.At, e.Kind, e.Target)
	case SlowBackend:
		return fmt.Sprintf("%v %s %s x%.2f", e.At, e.Kind, e.Target, e.Value)
	case LatencySpike:
		return fmt.Sprintf("%v %s %d->%d %v", e.At, e.Kind, e.A, e.B, e.Delay)
	case RedirectorDown, RedirectorUp:
		return fmt.Sprintf("%v %s %d", e.At, e.Kind, e.A)
	default:
		return fmt.Sprintf("%v %s %d--%d", e.At, e.Kind, e.A, e.B)
	}
}

// Hooks receives the events of a schedule as they fire. Nil fields skip the
// corresponding kinds, so an adapter implements only what its layer can
// inject.
type Hooks struct {
	BackendDown func(target string)
	BackendUp   func(target string)
	Partition   func(a, b int)
	Heal        func(a, b int)
	Latency     func(a, b int, d time.Duration)
	SlowBackend func(target string, factor float64)
	// RedirectorDown/RedirectorUp inject enforcer (not server) loss: the
	// crash and durable-state restart of the redirector with tree-node id a.
	RedirectorDown func(a int)
	RedirectorUp   func(a int)
}

// dispatch routes one event to the matching hook.
func (h Hooks) dispatch(e Event) {
	switch e.Kind {
	case BackendDown:
		if h.BackendDown != nil {
			h.BackendDown(e.Target)
		}
	case BackendUp:
		if h.BackendUp != nil {
			h.BackendUp(e.Target)
		}
	case PartitionLink:
		if h.Partition != nil {
			h.Partition(e.A, e.B)
		}
	case HealLink:
		if h.Heal != nil {
			h.Heal(e.A, e.B)
		}
	case LatencySpike:
		if h.Latency != nil {
			h.Latency(e.A, e.B, e.Delay)
		}
	case SlowBackend:
		if h.SlowBackend != nil {
			h.SlowBackend(e.Target, e.Value)
		}
	case RedirectorDown:
		if h.RedirectorDown != nil {
			h.RedirectorDown(e.A)
		}
	case RedirectorUp:
		if h.RedirectorUp != nil {
			h.RedirectorUp(e.A)
		}
	}
}

// Schedule is an ordered fault plan. Builder methods return the schedule for
// chaining; events keep insertion order among equal times, so a crash and a
// restart at the same instant fire in the order they were added.
type Schedule struct {
	seed   int64
	events []Event
}

// NewSchedule creates an empty plan with the given seed. The seed feeds
// Rand and RandomCrashes; fixed plans built purely from explicit events are
// unaffected by it.
func NewSchedule(seed int64) *Schedule {
	return &Schedule{seed: seed}
}

// Seed returns the schedule's seed.
func (s *Schedule) Seed() int64 { return s.seed }

// Add appends one event.
func (s *Schedule) Add(e Event) *Schedule {
	s.events = append(s.events, e)
	return s
}

// CrashBackend schedules a backend crash.
func (s *Schedule) CrashBackend(at time.Duration, target string) *Schedule {
	return s.Add(Event{At: at, Kind: BackendDown, Target: target})
}

// RestartBackend schedules a backend restart.
func (s *Schedule) RestartBackend(at time.Duration, target string) *Schedule {
	return s.Add(Event{At: at, Kind: BackendUp, Target: target})
}

// Partition schedules a tree-link cut between nodes a and b.
func (s *Schedule) Partition(at time.Duration, a, b int) *Schedule {
	return s.Add(Event{At: at, Kind: PartitionLink, A: a, B: b})
}

// Heal schedules a tree-link restore between nodes a and b.
func (s *Schedule) Heal(at time.Duration, a, b int) *Schedule {
	return s.Add(Event{At: at, Kind: HealLink, A: a, B: b})
}

// Latency schedules a one-way delay change on link a→b.
func (s *Schedule) Latency(at time.Duration, a, b int, d time.Duration) *Schedule {
	return s.Add(Event{At: at, Kind: LatencySpike, A: a, B: b, Delay: d})
}

// Slow schedules a capacity scaling of a backend.
func (s *Schedule) Slow(at time.Duration, target string, factor float64) *Schedule {
	return s.Add(Event{At: at, Kind: SlowBackend, Target: target, Value: factor})
}

// CrashRedirector schedules a kill -9 of the redirector with tree-node id.
func (s *Schedule) CrashRedirector(at time.Duration, id int) *Schedule {
	return s.Add(Event{At: at, Kind: RedirectorDown, A: id})
}

// RestartRedirector schedules a durable-state restart of the redirector
// with tree-node id.
func (s *Schedule) RestartRedirector(at time.Duration, id int) *Schedule {
	return s.Add(Event{At: at, Kind: RedirectorUp, A: id})
}

// Rand returns a rand.Rand deterministically derived from the seed, for
// callers composing their own randomized plans.
func (s *Schedule) Rand() *rand.Rand {
	return rand.New(rand.NewSource(s.seed))
}

// RandomCrashes appends n crash/restart pairs over [start, end): targets and
// downtimes (uniform in [minDown, maxDown]) are drawn from the schedule's
// seed, so the same seed always produces the same chaos. Restarts are
// clipped to end.
func (s *Schedule) RandomCrashes(targets []string, n int, start, end, minDown, maxDown time.Duration) *Schedule {
	if len(targets) == 0 || n <= 0 || end <= start {
		return s
	}
	if maxDown < minDown {
		maxDown = minDown
	}
	rng := s.Rand()
	span := end - start
	for i := 0; i < n; i++ {
		target := targets[rng.Intn(len(targets))]
		at := start + time.Duration(rng.Int63n(int64(span)))
		down := minDown
		if maxDown > minDown {
			down += time.Duration(rng.Int63n(int64(maxDown - minDown)))
		}
		up := at + down
		if up > end {
			up = end
		}
		s.CrashBackend(at, target)
		s.RestartBackend(up, target)
	}
	return s
}

// Events returns the plan sorted by time (stable: insertion order breaks
// ties). The returned slice is a copy.
func (s *Schedule) Events() []Event {
	out := append([]Event(nil), s.events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// String renders the sorted plan, one event per line.
func (s *Schedule) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "fault.Schedule(seed=%d):\n", s.seed)
	for _, e := range s.Events() {
		fmt.Fprintf(&sb, "  %s\n", e)
	}
	return sb.String()
}

// Apply hands every event to a caller-supplied scheduler: schedule(at, fn)
// must arrange for fn to run at relative time at. This is the clock-agnostic
// core — the simulation passes its virtual clock, Play passes time.AfterFunc.
func (s *Schedule) Apply(h Hooks, schedule func(at time.Duration, fn func())) {
	for _, e := range s.Events() {
		e := e
		schedule(e.At, func() { h.dispatch(e) })
	}
}

// Play replays the plan on the wall clock. The returned stop function
// cancels events that have not fired yet (it does not wait for in-flight
// hooks).
func (s *Schedule) Play(h Hooks) (stop func()) {
	timers := make([]*time.Timer, 0, len(s.events))
	s.Apply(h, func(at time.Duration, fn func()) {
		timers = append(timers, time.AfterFunc(at, fn))
	})
	return func() {
		for _, t := range timers {
			t.Stop()
		}
	}
}
