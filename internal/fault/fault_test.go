package fault

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestEventsSortedStable(t *testing.T) {
	s := NewSchedule(1).
		RestartBackend(10*time.Second, "b").
		CrashBackend(2*time.Second, "b").
		CrashBackend(2*time.Second, "a"). // same instant: insertion order holds
		Partition(5*time.Second, 0, 1)
	ev := s.Events()
	if len(ev) != 4 {
		t.Fatalf("events = %d, want 4", len(ev))
	}
	if ev[0].Target != "b" || ev[0].Kind != BackendDown {
		t.Fatalf("first event = %v", ev[0])
	}
	if ev[1].Target != "a" {
		t.Fatalf("tie not stable: %v", ev[1])
	}
	if ev[2].Kind != PartitionLink || ev[3].Kind != BackendUp {
		t.Fatalf("order = %v", ev)
	}
}

func TestRandomCrashesDeterministic(t *testing.T) {
	targets := []string{"x", "y", "z"}
	mk := func() []Event {
		return NewSchedule(42).
			RandomCrashes(targets, 5, 10*time.Second, 60*time.Second, time.Second, 5*time.Second).
			Events()
	}
	a, b := mk(), mk()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different plans:\n%v\n%v", a, b)
	}
	if len(a) != 10 {
		t.Fatalf("events = %d, want 10 (5 crash/restart pairs)", len(a))
	}
	for i := 0; i+1 < len(a); i++ {
		if a[i].At > a[i+1].At {
			t.Fatalf("unsorted at %d: %v", i, a)
		}
	}
	for _, e := range a {
		if e.At < 10*time.Second || e.At > 60*time.Second {
			t.Fatalf("event outside window: %v", e)
		}
	}
	other := NewSchedule(7).
		RandomCrashes(targets, 5, 10*time.Second, 60*time.Second, time.Second, 5*time.Second).
		Events()
	if reflect.DeepEqual(a, other) {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestApplyDispatchesToHooks(t *testing.T) {
	s := NewSchedule(0).
		CrashBackend(1*time.Second, "b1").
		RestartBackend(2*time.Second, "b1").
		Partition(3*time.Second, 0, 2).
		Heal(4*time.Second, 0, 2).
		Latency(5*time.Second, 1, 2, 40*time.Millisecond).
		Slow(6*time.Second, "b2", 0.5)
	var got []string
	h := Hooks{
		BackendDown: func(tg string) { got = append(got, "down:"+tg) },
		BackendUp:   func(tg string) { got = append(got, "up:"+tg) },
		Partition:   func(a, b int) { got = append(got, "cut") },
		Heal:        func(a, b int) { got = append(got, "heal") },
		Latency:     func(a, b int, d time.Duration) { got = append(got, "lat:"+d.String()) },
		SlowBackend: func(tg string, f float64) { got = append(got, "slow:"+tg) },
	}
	// Synchronous scheduler: fire immediately in time order.
	s.Apply(h, func(at time.Duration, fn func()) { fn() })
	want := []string{"down:b1", "up:b1", "cut", "heal", "lat:40ms", "slow:b2"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("dispatch order = %v, want %v", got, want)
	}
}

func TestNilHooksAreSkipped(t *testing.T) {
	s := NewSchedule(0).CrashBackend(0, "b").Partition(0, 1, 2)
	// Must not panic with no hooks installed.
	s.Apply(Hooks{}, func(at time.Duration, fn func()) { fn() })
}

func TestPlayFiresAndStopCancels(t *testing.T) {
	var mu sync.Mutex
	fired := map[string]bool{}
	s := NewSchedule(0).
		CrashBackend(5*time.Millisecond, "soon").
		CrashBackend(5*time.Second, "late")
	stop := s.Play(Hooks{BackendDown: func(tg string) {
		mu.Lock()
		fired[tg] = true
		mu.Unlock()
	}})
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		ok := fired["soon"]
		mu.Unlock()
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("near-term event never fired")
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	mu.Lock()
	defer mu.Unlock()
	if fired["late"] {
		t.Fatal("stop did not cancel the far event")
	}
}
