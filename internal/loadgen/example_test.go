package loadgen_test

import (
	"fmt"
	"time"

	"repro/internal/loadgen"
)

// A stream expands into explicit send offsets — a pure function of the
// stream and the horizon, so every run (and every platform) replays the
// same schedule bit-identically.
func ExampleStream_Schedule() {
	s := loadgen.Stream{Principal: 0, Rate: 4, Process: loadgen.Uniform}
	for _, at := range s.Schedule(time.Second) {
		fmt.Println(at)
	}
	// Output:
	// 250ms
	// 500ms
	// 750ms
}
