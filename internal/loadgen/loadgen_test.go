package loadgen

import (
	"fmt"
	"hash/fnv"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// digest folds a schedule into one comparable value.
func digest(sched []time.Duration) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, d := range sched {
		v := uint64(d)
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

func TestScheduleBitIdenticalReplay(t *testing.T) {
	// Every sweep point must expand to bit-identical schedules on replay —
	// the reproducibility contract behind BENCH_scale.json.
	for _, pt := range DefaultSweep() {
		first := make([]uint64, 0, 2)
		for run := 0; run < 2; run++ {
			var all []time.Duration
			for _, s := range pt.Streams(SweepDefaults.Capacity, []string{"alpha", "beta"}) {
				all = append(all, s.Schedule(SweepDefaults.Duration)...)
			}
			if len(all) == 0 {
				t.Fatalf("%s: empty schedule", pt.Name())
			}
			first = append(first, digest(all))
		}
		if first[0] != first[1] {
			t.Fatalf("%s: replay diverged: %x vs %x", pt.Name(), first[0], first[1])
		}
	}
}

func TestScheduleGoldenDigest(t *testing.T) {
	// Pin one point's schedule digest so determinism holds across
	// machines and Go releases, not just within one process.
	s := Stream{Principal: 0, Org: "alpha", Rate: 96, Process: Poisson, Seed: 1}
	sched := s.Schedule(2400 * time.Millisecond)
	const want = uint64(0x066277ec8319d75c)
	if got := digest(sched); got != want {
		t.Fatalf("golden digest = %#x (n=%d), want %#x — the seeded PRNG or "+
			"exponential sampling changed; bit-identical replay is broken",
			got, len(sched), want)
	}
}

func TestScheduleRates(t *testing.T) {
	d := 10 * time.Second
	uni := Stream{Rate: 100, Process: Uniform}.Schedule(d)
	if len(uni) != 999 { // arrivals at 10ms, 20ms, ..., < 10s
		t.Fatalf("uniform schedule has %d arrivals, want 999", len(uni))
	}
	for i := 1; i < len(uni); i++ {
		if uni[i] <= uni[i-1] {
			t.Fatalf("uniform schedule not increasing at %d", i)
		}
	}
	poi := Stream{Rate: 100, Process: Poisson, Seed: 7}.Schedule(d)
	if got := float64(len(poi)); math.Abs(got-1000) > 150 {
		t.Fatalf("poisson schedule has %d arrivals, want ≈1000", len(poi))
	}
	bur := Stream{Rate: 100, Process: Bursty, Seed: 7,
		BurstOn: 500 * time.Millisecond, BurstOff: 500 * time.Millisecond}.Schedule(d)
	if got := float64(len(bur)); math.Abs(got-1000) > 200 {
		t.Fatalf("bursty schedule has %d arrivals, want ≈1000", len(bur))
	}
	for _, at := range bur {
		phase := at % time.Second
		if phase >= 500*time.Millisecond {
			t.Fatalf("bursty arrival at %v falls in the off phase", at)
		}
	}
}

func TestMergeOrdersBySendTime(t *testing.T) {
	reqs := merge([]Stream{
		{Principal: 0, Org: "alpha", Rate: 50, Process: Poisson, Seed: 1},
		{Principal: 1, Org: "beta", Rate: 50, Process: Uniform},
	}, time.Second)
	if len(reqs) == 0 {
		t.Fatal("empty merge")
	}
	for i := 1; i < len(reqs); i++ {
		if reqs[i].SendAt < reqs[i-1].SendAt {
			t.Fatalf("merge not ordered at %d", i)
		}
	}
}

// countTarget classifies by principal: principal 1 is always rejected.
type countTarget struct{ calls atomic.Int64 }

func (c *countTarget) Do(req Request) Outcome {
	c.calls.Add(1)
	if req.Principal == 1 {
		return Rejected
	}
	time.Sleep(time.Millisecond)
	return OK
}

func TestRunCountsAndWarmup(t *testing.T) {
	tgt := &countTarget{}
	res, err := Run(tgt, Options{
		Streams: []Stream{
			{Principal: 0, Org: "a", Rate: 200, Process: Uniform},
			{Principal: 1, Org: "b", Rate: 100, Process: Uniform},
		},
		Duration: 600 * time.Millisecond,
		Warmup:   200 * time.Millisecond,
		Workers:  16,
	})
	if err != nil {
		t.Fatal(err)
	}
	sent, ok, rejected, errs := res.Totals()
	if int64(tgt.calls.Load()) != sent+res.Streams[0].WarmupSent+res.Streams[1].WarmupSent {
		t.Fatalf("target saw %d calls, results account for %d", tgt.calls.Load(),
			sent+res.Streams[0].WarmupSent+res.Streams[1].WarmupSent)
	}
	if errs != 0 {
		t.Fatalf("unexpected errors: %d", errs)
	}
	if ok == 0 || rejected == 0 {
		t.Fatalf("want both outcomes, got ok=%d rejected=%d", ok, rejected)
	}
	if res.Streams[1].OK != 0 || res.Streams[0].Rejected != 0 {
		t.Fatal("outcomes attributed to the wrong stream")
	}
	if res.Streams[0].Hist.Count() != res.Streams[0].OK {
		t.Fatalf("histogram has %d samples for %d OK requests",
			res.Streams[0].Hist.Count(), res.Streams[0].OK)
	}
	if res.Streams[0].WarmupSent == 0 {
		t.Fatal("warmup phase recorded no sends")
	}
	if res.Streams[0].Scheduled != res.Streams[0].Sent {
		t.Fatalf("scheduled %d != sent %d", res.Streams[0].Scheduled, res.Streams[0].Sent)
	}
	// Send-schedule-based latency: ≥ the 1ms the target sleeps.
	if p50 := res.Streams[0].Hist.Quantile(0.5); p50 < time.Millisecond {
		t.Fatalf("p50 %v below the target's service time", p50)
	}
}

func TestHTTPTargetClassification(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	}))
	defer backend.Close()

	var mode atomic.Value // "ok" | "reject503" | "self" | "backend" | "boom"
	mode.Store("ok")
	var srv *httptest.Server
	srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch mode.Load().(string) {
		case "ok":
			fmt.Fprint(w, "ok")
		case "reject503":
			http.Error(w, "over quota", http.StatusServiceUnavailable)
		case "self":
			http.Redirect(w, r, srv.URL+r.URL.Path, http.StatusFound)
		case "backend":
			http.Redirect(w, r, backend.URL+"/page", http.StatusFound)
		default:
			http.Error(w, "boom", http.StatusInternalServerError)
		}
	}))
	defer srv.Close()

	tgt, err := NewHTTPTarget(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Org: "alpha"}
	for _, tc := range []struct {
		mode string
		want Outcome
	}{
		{"ok", OK}, {"reject503", Rejected}, {"self", Rejected},
		{"backend", OK}, {"boom", Errored},
	} {
		mode.Store(tc.mode)
		if got := tgt.Do(req); got != tc.want {
			t.Fatalf("mode %s: outcome %v, want %v", tc.mode, got, tc.want)
		}
	}
}

func TestParseConformance(t *testing.T) {
	text := `# HELP rsa_windows_total Scheduling windows audited.
# TYPE rsa_windows_total counter
rsa_windows_total 120
rsa_windows_conservative_total 3
rsa_windows_mixed_version_total 0
rsa_windows_under_mc_total{principal="A"} 1
rsa_windows_under_mc_total{principal="B"} 2
rsa_windows_over_ub_total{principal="A"} 0
rsa_windows_over_ub_total{principal="B"} 4
`
	c := ConformanceFrom(ParseProm(strings.NewReader(text)))
	if c.Windows != 120 || c.Conservative != 3 || c.UnderFloor != 3 || c.OverCeiling != 4 {
		t.Fatalf("conformance = %+v", c)
	}
	prev := Conformance{Windows: 100, UnderFloor: 3}
	d := c.Sub(prev)
	if d.Windows != 20 || d.UnderFloor != 0 {
		t.Fatalf("delta = %+v", d)
	}
	sum := c.Add(c)
	if sum.Windows != 240 || sum.OverCeiling != 8 {
		t.Fatalf("sum = %+v", sum)
	}
}

func TestFleetSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("boots real sockets")
	}
	fleet, err := StartFleet(FleetConfig{
		Redirectors: 2, Fanout: 2, Capacity: 200,
		Window: 25 * time.Millisecond, Backends: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	tgt, err := fleet.Target()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tgt, Options{
		Streams: SweepPoint{Redirectors: 2, Fanout: 2, Load: 0.5, Process: Poisson, Seed: 9}.
			Streams(fleet.Capacity, fleet.Orgs),
		Duration: 900 * time.Millisecond,
		Warmup:   300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, ok, _, errs := res.Totals()
	if ok == 0 {
		t.Fatalf("no requests completed: %+v", res.Streams)
	}
	if errs > 0 {
		t.Fatalf("%d transport errors against a healthy fleet", errs)
	}
	c := fleet.Conformance()
	if c.Windows == 0 {
		t.Fatal("auditors recorded no windows")
	}
	if c.MixedVersion != 0 {
		t.Fatalf("mixed-version windows: %v", c.MixedVersion)
	}
}
