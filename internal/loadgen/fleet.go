package loadgen

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/agreement"
	"repro/internal/combining"
	"repro/internal/core"
	"repro/internal/l7"
	"repro/internal/obs"
	"repro/internal/topology"
	"repro/internal/treenet"
)

// FleetConfig parameterizes an in-process benchmark fleet.
type FleetConfig struct {
	// Redirectors is the fleet size; each redirector runs its own engine
	// and joins the others over a real treenet combining tree on loopback
	// TCP (exactly the multi-process deployment topology, minus the
	// process boundaries).
	Redirectors int
	// Fanout is the combining-tree arity (default 2).
	Fanout int
	// Capacity is the provider's capacity in requests/second, split evenly
	// over Backends real HTTP backends (default 3200). Keep it high enough
	// that every redirector sees several requests per principal per window:
	// credits are fractional but admissions are whole requests, so a window
	// holding only one or two requests sits within the ≤1-request credit
	// carry of its floor and the under-floor audit becomes noise.
	Capacity float64
	// Backends is the backend server count (default 2).
	Backends int
	// Window is the scheduling window (default 50ms).
	Window time.Duration
	// Regions, when > 1, lays the fleet out hierarchically: the redirectors
	// split into Regions contiguous regional sub-trees under a global tier
	// (compiled by internal/topology) with delta-compressed queue vectors on
	// every tree edge, and peers are wired per tree edge instead of
	// all-pairs — at 256 nodes the O(n²) mesh would cost tens of thousands
	// of idle peer queues. When 0 or 1 the fleet keeps the flat BuildTree
	// layout and the full mesh.
	Regions int
	// Trace, when non-nil, arms request-span tracing on every redirector so
	// sweeps can report per-phase latency alongside end-to-end numbers.
	Trace *obs.TraceConfig
}

// Fleet is a self-contained Layer-7 enforcement plane for macro
// benchmarking: provider S selling capacity to principals A [0.1,1] and
// B [0.05,1], served by proxy-mode redirectors over real sockets so a load
// generator measures full client round trips. The floors sit well below the
// sweep's offered per-principal load on purpose — demand above the
// mandatory share is what arms the auditor's under-floor check, turning
// "zero settled under-floor windows" into a meaningful assertion rather
// than a vacuous one.
type Fleet struct {
	Redirectors []*l7.Redirector
	Backends    []*l7.Backend
	// Orgs holds the Layer-7 org segment for each user principal, index
	// aligned with Users.
	Orgs []string
	// Users holds the load-bearing principals (A, B).
	Users []agreement.Principal
	// Capacity echoes the configured provider capacity.
	Capacity float64
}

// StartFleet boots the fleet and wires the combining tree. Callers must
// Close it.
func StartFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.Redirectors <= 0 {
		return nil, fmt.Errorf("loadgen: fleet needs at least one redirector")
	}
	if cfg.Fanout < 2 {
		cfg.Fanout = 2
	}
	if cfg.Backends <= 0 {
		cfg.Backends = 2
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 3200
	}
	if cfg.Window <= 0 {
		cfg.Window = 50 * time.Millisecond
	}

	f := &Fleet{Orgs: []string{"alpha", "beta"}, Capacity: cfg.Capacity}
	for i := 0; i < cfg.Backends; i++ {
		b, err := l7.NewBackend("127.0.0.1:0", cfg.Capacity/float64(cfg.Backends))
		if err != nil {
			f.Close()
			return nil, err
		}
		f.Backends = append(f.Backends, b)
	}

	ids := make([]combining.NodeID, cfg.Redirectors)
	for i := range ids {
		ids[i] = combining.NodeID(i)
	}
	var (
		topo combining.Topology
		spec *topology.Spec
	)
	if cfg.Regions > 1 {
		spec = fleetTopology(cfg.Redirectors, cfg.Regions, cfg.Fanout)
		plane, err := topology.Compile(*spec)
		if err != nil {
			f.Close()
			return nil, err
		}
		topo = plane.Topology()
	} else {
		topo = combining.BuildTree(ids, cfg.Fanout)
	}

	for i := 0; i < cfg.Redirectors; i++ {
		// One engine per redirector, exactly like separate processes
		// loading the same scenario file.
		sys := agreement.New()
		sp := sys.MustAddPrincipal("S", cfg.Capacity)
		a := sys.MustAddPrincipal("A", 0)
		b := sys.MustAddPrincipal("B", 0)
		sys.MustSetAgreement(sp, a, 0.1, 1)
		sys.MustSetAgreement(sp, b, 0.05, 1)
		eng, err := core.NewEngine(core.Config{
			Mode: core.Provider, System: sys, ProviderPrincipal: sp,
			NumRedirectors: cfg.Redirectors, Window: cfg.Window,
		})
		if err != nil {
			f.Close()
			return nil, err
		}
		if i == 0 {
			f.Users = []agreement.Principal{a, b}
		}
		backends := make([]string, len(f.Backends))
		for j, be := range f.Backends {
			backends[j] = be.URL()
		}
		rcfg := l7.RedirectorConfig{
			Engine: eng, ID: i, Addr: "127.0.0.1:0", Proxy: true,
			Orgs:     map[string]agreement.Principal{"alpha": a, "beta": b},
			Backends: map[agreement.Principal][]string{sp: backends},
			Trace:    cfg.Trace,
		}
		if cfg.Redirectors > 1 {
			rcfg.Tree = &treenet.Spec{
				NodeID:     combining.NodeID(i),
				Parent:     topo.Parent[combining.NodeID(i)],
				Children:   topo.Children[combining.NodeID(i)],
				ListenAddr: "127.0.0.1:0",
				Fanout:     cfg.Fanout,
				// On the hierarchical grid the redirector takes placement
				// (and delta compression) from the plane spec instead.
				Topology: spec,
			}
		}
		r, err := l7.NewRedirector(rcfg)
		if err != nil {
			f.Close()
			return nil, err
		}
		f.Redirectors = append(f.Redirectors, r)
	}

	// Every tree port is ephemeral, so peers are wired after the fact. The
	// flat grid wires the full mesh (repairs can re-parent anywhere); the
	// hierarchical grid wires only the plane's edges, both directions.
	if cfg.Regions > 1 {
		for i, ri := range f.Redirectors {
			id := combining.NodeID(i)
			if p := topo.Parent[id]; p >= 0 {
				ri.SetTreePeer(p, f.Redirectors[p].TreeAddr())
			}
			for _, c := range topo.Children[id] {
				ri.SetTreePeer(c, f.Redirectors[c].TreeAddr())
			}
		}
	} else {
		for i, ri := range f.Redirectors {
			for j, rj := range f.Redirectors {
				if i != j {
					ri.SetTreePeer(combining.NodeID(j), rj.TreeAddr())
				}
			}
		}
	}
	return f, nil
}

// fleetTopology lays n redirectors out as `regions` contiguous equal blocks
// — region-00 {0..k-1}, region-01 {k..2k-1}, … — with delta compression
// tuned for the sweep's demand scale: per-redirector per-principal rates sit
// in the tens of req/s, so a 0.5 req/s threshold suppresses idle entries
// without hiding real movement, and a 16-frame resync bounds drift.
func fleetTopology(n, regions, fanout int) *topology.Spec {
	spec := &topology.Spec{
		Fanout: fanout,
		Delta:  topology.DeltaSpec{Threshold: 0.5, ResyncEvery: 16},
	}
	per := (n + regions - 1) / regions
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		members := make([]int, 0, hi-lo)
		for m := lo; m < hi; m++ {
			members = append(members, m)
		}
		spec.Regions = append(spec.Regions, topology.Region{
			Name:    fmt.Sprintf("region-%02d", len(spec.Regions)),
			Members: members,
		})
	}
	return spec
}

// Target returns a round-robin target over the fleet's redirectors, so
// every admission point carries load and coordination is actually
// exercised.
func (f *Fleet) Target() (Target, error) {
	targets := make([]Target, len(f.Redirectors))
	for i, r := range f.Redirectors {
		t, err := NewHTTPTarget(r.URL())
		if err != nil {
			return nil, err
		}
		targets[i] = t
	}
	if len(targets) == 1 {
		return targets[0], nil
	}
	return &MultiTarget{Targets: targets}, nil
}

// Conformance sums the fleet's live auditor counters (the in-process
// equivalent of scraping every /v1/metrics endpoint).
func (f *Fleet) Conformance() Conformance {
	var c Conformance
	for _, r := range f.Redirectors {
		aud := r.Observer().Auditor()
		c.Windows += float64(aud.Windows())
		c.Conservative += float64(aud.Conservative())
		c.MixedVersion += float64(aud.MixedVersion())
		for i := range aud.Names() {
			c.UnderFloor += float64(aud.UnderMC(i))
			c.OverCeiling += float64(aud.OverUB(i))
		}
	}
	return c
}

// TreeStats folds every redirector's tree-transport counters — including
// the delta-compression codec counters — into one fleet-wide snapshot.
// All zero on a single-redirector fleet (no tree) or when delta compression
// is off (flat layout).
func (f *Fleet) TreeStats() treenet.Stats {
	var sum treenet.Stats
	for _, r := range f.Redirectors {
		st := r.TreeStats()
		sum.SendErrors += st.SendErrors
		sum.QueueDrops += st.QueueDrops
		sum.Dials += st.Dials
		sum.Reconnects += st.Reconnects
		sum.PeersConnected += st.PeersConnected
		sum.Delta.Add(st.Delta)
	}
	return sum
}

// PhaseDurations aggregates the per-phase request latency distributions
// (admit, park, dial, proxy) across the fleet's redirectors. All histograms
// are zero-count when the fleet was started without Trace.
type PhaseDurations struct {
	Admit, Park, Dial, Proxy *obs.Histogram
}

// Phases merges every redirector's tracer phase histograms into one
// fleet-wide PhaseDurations snapshot. Call it after the load stops: Merge
// is not safe against concurrent Observe.
func (f *Fleet) Phases() PhaseDurations {
	pd := PhaseDurations{
		Admit: obs.NewHistogram(), Park: obs.NewHistogram(),
		Dial: obs.NewHistogram(), Proxy: obs.NewHistogram(),
	}
	for _, r := range f.Redirectors {
		admit, park, dial, proxy := r.Tracer().PhaseHistograms()
		pd.Admit.Merge(admit)
		pd.Park.Merge(park)
		pd.Dial.Merge(dial)
		pd.Proxy.Merge(proxy)
	}
	return pd
}

// Close shuts every redirector and backend down.
func (f *Fleet) Close() {
	for _, r := range f.Redirectors {
		_ = r.Close()
	}
	for _, b := range f.Backends {
		_ = b.Close()
	}
}

// MultiTarget round-robins requests over several targets (one per
// redirector of a fleet).
type MultiTarget struct {
	Targets []Target
	next    atomic.Uint64
}

// Do implements Target.
func (m *MultiTarget) Do(req Request) Outcome {
	i := m.next.Add(1) - 1
	return m.Targets[i%uint64(len(m.Targets))].Do(req)
}
