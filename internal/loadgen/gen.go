package loadgen

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Outcome classifies one request's fate.
type Outcome int

const (
	// OK: the request reached a backend and completed.
	OK Outcome = iota
	// Rejected: the enforcement plane turned the request away for lack of
	// window credit (self-redirect or 503) — correct behavior under
	// overload, counted separately from errors.
	Rejected
	// Errored: transport failure, unexpected status, timeout.
	Errored
)

// Target consumes scheduled requests. Do must be safe for concurrent use.
type Target interface {
	Do(req Request) Outcome
}

// Options parameterizes a load generation run.
type Options struct {
	// Streams are the per-principal arrival processes.
	Streams []Stream
	// Duration is the scheduled span of the run.
	Duration time.Duration
	// Warmup excludes requests scheduled before this offset from the
	// counters and histograms (the fleet needs a few windows to converge
	// out of the conservative no-global fallback).
	Warmup time.Duration
	// Workers bounds concurrent in-flight requests (default 256). The
	// pacer never blocks on the pool: queued work keeps its scheduled send
	// time, so pool pressure shows up as system latency, not lost load.
	Workers int
}

// StreamResult accumulates one stream's post-warmup outcomes.
type StreamResult struct {
	// Stream echoes the configuration this result measured.
	Stream Stream
	// Scheduled counts post-warmup scheduled sends; Sent counts the ones
	// actually issued (always equal unless the run was cut short).
	Scheduled, Sent int64
	// OK/Rejected/Errors partition Sent by outcome.
	OK, Rejected, Errors int64
	// WarmupSent counts requests scheduled before the warmup cutoff
	// (issued, classified, but excluded from everything above).
	WarmupSent int64
	// Hist holds send-schedule-based latencies of post-warmup OK requests.
	Hist *obs.Histogram
}

// AchievedQPS reports completed (OK) requests per second of measured time.
func (r *StreamResult) AchievedQPS(measured time.Duration) float64 {
	if measured <= 0 {
		return 0
	}
	return float64(r.OK) / measured.Seconds()
}

// Result is one run's outcome.
type Result struct {
	// Streams holds one result per configured stream, in order.
	Streams []StreamResult
	// Wall is the elapsed real time of the run.
	Wall time.Duration
	// Measured is the post-warmup span latencies and rates refer to.
	Measured time.Duration
}

// Totals sums the per-stream post-warmup counters.
func (r *Result) Totals() (sent, ok, rejected, errors int64) {
	for i := range r.Streams {
		s := &r.Streams[i]
		sent += s.Sent
		ok += s.OK
		rejected += s.Rejected
		errors += s.Errors
	}
	return
}

// Run paces the merged schedule against target in real time. It returns
// after every scheduled request has completed.
func Run(target Target, opts Options) (*Result, error) {
	if target == nil {
		return nil, fmt.Errorf("loadgen: nil target")
	}
	if len(opts.Streams) == 0 {
		return nil, fmt.Errorf("loadgen: no streams")
	}
	if opts.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: duration must be positive")
	}
	if opts.Warmup < 0 || opts.Warmup >= opts.Duration {
		return nil, fmt.Errorf("loadgen: warmup %v outside run duration %v", opts.Warmup, opts.Duration)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 256
	}

	reqs := merge(opts.Streams, opts.Duration)
	if len(reqs) == 0 {
		return nil, fmt.Errorf("loadgen: schedule is empty (rates too low for %v?)", opts.Duration)
	}

	res := &Result{Streams: make([]StreamResult, len(opts.Streams))}
	accum := make([]streamAccum, len(opts.Streams))
	for i := range res.Streams {
		res.Streams[i].Stream = opts.Streams[i]
		res.Streams[i].Hist = obs.NewHistogram()
	}

	// The channel is sized for the whole schedule so the pacer can never
	// block on slow workers: a request delayed in the queue keeps its
	// scheduled send time and the delay is charged to the system.
	work := make(chan Request, len(reqs))
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for req := range work {
				a := &accum[req.Stream]
				warm := req.SendAt >= opts.Warmup
				if warm {
					a.sent.Add(1)
				} else {
					a.warmupSent.Add(1)
				}
				outcome := target.Do(req)
				lat := time.Since(start.Add(req.SendAt))
				if !warm {
					continue
				}
				switch outcome {
				case OK:
					a.ok.Add(1)
					res.Streams[req.Stream].Hist.Observe(lat)
				case Rejected:
					a.rejected.Add(1)
				default:
					a.errors.Add(1)
				}
			}
		}()
	}

	for _, req := range reqs {
		if d := time.Until(start.Add(req.SendAt)); d > 0 {
			time.Sleep(d)
		}
		if req.SendAt >= opts.Warmup {
			accum[req.Stream].scheduled.Add(1)
		}
		work <- req
	}
	close(work)
	wg.Wait()

	res.Wall = time.Since(start)
	res.Measured = opts.Duration - opts.Warmup
	for i := range res.Streams {
		s, a := &res.Streams[i], &accum[i]
		s.Scheduled = a.scheduled.Load()
		s.Sent = a.sent.Load()
		s.OK = a.ok.Load()
		s.Rejected = a.rejected.Load()
		s.Errors = a.errors.Load()
		s.WarmupSent = a.warmupSent.Load()
	}
	return res, nil
}

// streamAccum is the concurrent counter set behind one StreamResult.
type streamAccum struct {
	scheduled, sent, ok, rejected, errors, warmupSent atomic.Int64
}
