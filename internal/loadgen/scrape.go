package loadgen

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// ParseProm decodes Prometheus text exposition into a flat map keyed by the
// sample line's name-plus-labels exactly as exposed
// (e.g. `rsa_windows_under_mc_total{principal="A"}`). Comments, blank lines
// and malformed lines are skipped — only what the conformance check needs.
func ParseProm(r io.Reader) map[string]float64 {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		cut := strings.LastIndexByte(line, ' ')
		if cut <= 0 {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(line[cut+1:]), 64)
		if err != nil {
			continue
		}
		out[strings.TrimSpace(line[:cut])] = v
	}
	return out
}

// Conformance is the slice of the fleet's auditor counters that ties a load
// run to the paper's enforcement guarantees (see obs.Auditor). Values are
// sums over whatever endpoints were scraped.
type Conformance struct {
	// Windows is the number of audited windows.
	Windows float64
	// UnderFloor sums windows in which some principal with sufficient
	// demand was served below its mandatory share — must be zero once the
	// fleet has settled.
	UnderFloor float64
	// OverCeiling sums windows admitted above a principal's
	// mandatory+optional ceiling.
	OverCeiling float64
	// Conservative counts blind MC/R fallback windows.
	Conservative float64
	// MixedVersion counts same-numbered windows run under different
	// configuration versions (must stay zero).
	MixedVersion float64
}

// ConformanceFrom extracts the auditor counters from a parsed scrape.
func ConformanceFrom(m map[string]float64) Conformance {
	c := Conformance{
		Windows:      m["rsa_windows_total"],
		Conservative: m["rsa_windows_conservative_total"],
		MixedVersion: m["rsa_windows_mixed_version_total"],
	}
	for k, v := range m {
		switch {
		case strings.HasPrefix(k, "rsa_windows_under_mc_total{"):
			c.UnderFloor += v
		case strings.HasPrefix(k, "rsa_windows_over_ub_total{"):
			c.OverCeiling += v
		}
	}
	return c
}

// Sub returns the counter deltas since prev (the "settled" view: scrape at
// the warmup boundary, again at the end, subtract).
func (c Conformance) Sub(prev Conformance) Conformance {
	return Conformance{
		Windows:      c.Windows - prev.Windows,
		UnderFloor:   c.UnderFloor - prev.UnderFloor,
		OverCeiling:  c.OverCeiling - prev.OverCeiling,
		Conservative: c.Conservative - prev.Conservative,
		MixedVersion: c.MixedVersion - prev.MixedVersion,
	}
}

// Add accumulates counters from another scrape (summing a fleet).
func (c Conformance) Add(other Conformance) Conformance {
	return Conformance{
		Windows:      c.Windows + other.Windows,
		UnderFloor:   c.UnderFloor + other.UnderFloor,
		OverCeiling:  c.OverCeiling + other.OverCeiling,
		Conservative: c.Conservative + other.Conservative,
		MixedVersion: c.MixedVersion + other.MixedVersion,
	}
}

// Scrape GETs a /v1/metrics endpoint and extracts its conformance counters.
func Scrape(url string) (Conformance, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return Conformance{}, fmt.Errorf("loadgen: scrape %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Conformance{}, fmt.Errorf("loadgen: scrape %s: status %s", url, resp.Status)
	}
	return ConformanceFrom(ParseProm(resp.Body)), nil
}
