// Package loadgen is the macro-benchmark load generator: open-loop request
// streams with deterministic, seeded arrival processes driving a real
// redirector fleet (or the virtual-time simulator) and recording
// coordinated-omission-free latency distributions.
//
// It differs from internal/workload, which models the paper's closed-loop
// WebBench client machines: a closed-loop client slows down when the system
// slows down, hiding tail latency. Here every request has a *scheduled* send
// time fixed before the run starts, and latency is measured from that
// schedule, so a stalled redirector is charged for the stall even if the
// generator could not physically issue the request on time (the standard
// correction for coordinated omission in open-loop load testing).
//
// The three pieces are:
//
//   - Stream: one principal's arrival process (uniform, Poisson, or bursty
//     on/off), expanded by Schedule into an explicit send-time list —
//     bit-identical for a given seed, so any run can be replayed exactly.
//   - Target: where requests go. HTTPTarget speaks to a Layer-7 redirector
//     (302/proxy aware), TCPTarget to a Layer-4 service address; the
//     simulator replays the same schedules in virtual time (sim.PlaySchedule).
//   - Run: paces the merged schedule in real time over a worker pool and
//     folds outcomes into per-stream obs.Histogram latency distributions
//     with p50/p95/p99/p999.
//
// Enforcement conformance is not measured here but pulled from the fleet's
// own obs.Auditor counters (scrape.go), so throughput and latency numbers
// are always tied to "zero under-floor windows", not reported bare.
package loadgen

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Process selects an arrival process shape.
type Process int

const (
	// Uniform spaces arrivals exactly 1/rate apart.
	Uniform Process = iota
	// Poisson draws i.i.d. exponential inter-arrival gaps (memoryless
	// arrivals, the standard open-system model).
	Poisson
	// Bursty is an on/off square wave: Poisson arrivals during BurstOn
	// compressed so the long-run average still meets Rate, silence during
	// BurstOff.
	Bursty
)

// String names the process.
func (p Process) String() string {
	switch p {
	case Uniform:
		return "uniform"
	case Poisson:
		return "poisson"
	case Bursty:
		return "bursty"
	}
	return fmt.Sprintf("process(%d)", int(p))
}

// ParseProcess parses a process name as written by String.
func ParseProcess(s string) (Process, error) {
	switch s {
	case "uniform":
		return Uniform, nil
	case "poisson":
		return Poisson, nil
	case "bursty":
		return Bursty, nil
	}
	return 0, fmt.Errorf("loadgen: unknown arrival process %q (uniform|poisson|bursty)", s)
}

// Stream is one principal's open-loop request stream.
type Stream struct {
	// Principal indexes the principal this stream loads.
	Principal int
	// Org is the Layer-7 organization path segment (/svc/<org>/...);
	// ignored by Layer-4 targets.
	Org string
	// Rate is the long-run offered load in requests/second.
	Rate float64
	// Process shapes the arrivals (default Uniform).
	Process Process
	// Seed makes the schedule reproducible; streams with different seeds
	// are independent.
	Seed uint64
	// BurstOn/BurstOff set the Bursty duty cycle (defaults 1s/1s).
	BurstOn, BurstOff time.Duration
}

// rng is splitmix64: tiny, fast, and — unlike math/rand — guaranteed stable
// across Go releases, which the bit-identical replay contract depends on.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform sample in [0, 1).
func (r *rng) float64() float64 { return float64(r.next()>>11) / (1 << 53) }

// expGap draws an exponential inter-arrival gap for the given rate.
func (r *rng) expGap(rate float64) time.Duration {
	// 1-U is in (0, 1], so the log argument is never zero.
	u := 1 - r.float64()
	return time.Duration(-math.Log(u) / rate * float64(time.Second))
}

// Schedule expands the stream into explicit send offsets over [0, d),
// sorted ascending. The result is a pure function of the stream and d:
// identical inputs yield bit-identical schedules on every platform.
func (s Stream) Schedule(d time.Duration) []time.Duration {
	if s.Rate <= 0 || d <= 0 {
		return nil
	}
	switch s.Process {
	case Poisson:
		r := rng{state: s.Seed}
		out := make([]time.Duration, 0, int(s.Rate*d.Seconds())+16)
		t := r.expGap(s.Rate)
		for t < d {
			out = append(out, t)
			t += r.expGap(s.Rate)
		}
		return out
	case Bursty:
		on, off := s.BurstOn, s.BurstOff
		if on <= 0 {
			on = time.Second
		}
		if off <= 0 {
			off = time.Second
		}
		// Generate Poisson arrivals over compressed "active" time at the
		// burst rate, then stretch active time back onto the wall clock by
		// re-inserting the off intervals.
		burstRate := s.Rate * float64(on+off) / float64(on)
		activeTotal := time.Duration(float64(d) * float64(on) / float64(on+off))
		r := rng{state: s.Seed}
		out := make([]time.Duration, 0, int(s.Rate*d.Seconds())+16)
		a := r.expGap(burstRate)
		for a < activeTotal {
			cycle := a / on
			wall := cycle*(on+off) + a%on
			if wall >= d {
				break
			}
			out = append(out, wall)
			a += r.expGap(burstRate)
		}
		return out
	default: // Uniform
		gap := time.Duration(float64(time.Second) / s.Rate)
		if gap <= 0 {
			gap = time.Nanosecond
		}
		out := make([]time.Duration, 0, int(d/gap)+1)
		for t := gap; t < d; t += gap {
			out = append(out, t)
		}
		return out
	}
}

// Request is one scheduled probe.
type Request struct {
	// Stream indexes Options.Streams; Principal and Org are copied from it.
	Stream    int
	Principal int
	Org       string
	// Seq numbers requests within their stream.
	Seq int
	// SendAt is the scheduled send offset from run start. Latency is
	// measured from here, never from the actual send instant.
	SendAt time.Duration
}

// merge flattens per-stream schedules into one send-ordered request list.
func merge(streams []Stream, d time.Duration) []Request {
	var reqs []Request
	for si, s := range streams {
		sched := s.Schedule(d)
		for i, at := range sched {
			reqs = append(reqs, Request{
				Stream: si, Principal: s.Principal, Org: s.Org,
				Seq: i, SendAt: at,
			})
		}
	}
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].SendAt < reqs[j].SendAt })
	return reqs
}
