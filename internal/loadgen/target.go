package loadgen

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"time"

	"repro/internal/l4"
)

// HTTPTarget drives a Layer-7 redirector. It understands both redirector
// modes: in redirect mode a 302 to a backend is followed (one extra round
// trip, like a browser) while a 302 back to the redirector itself — the
// §4.1 self-redirect — counts as Rejected without being chased; in proxy
// mode 200 is OK and 503 is Rejected.
type HTTPTarget struct {
	base   string
	host   string
	client *http.Client
}

// NewHTTPTarget builds a target for the redirector at base
// (e.g. "http://127.0.0.1:8080"). The shared client uses a pooled transport
// with dial and response-header deadlines sized for load generation.
func NewHTTPTarget(base string) (*HTTPTarget, error) {
	u, err := url.Parse(base)
	if err != nil || u.Host == "" {
		return nil, fmt.Errorf("loadgen: bad target URL %q", base)
	}
	return &HTTPTarget{
		base: base,
		host: u.Host,
		client: &http.Client{
			Transport: &http.Transport{
				DialContext:           (&net.Dialer{Timeout: 2 * time.Second}).DialContext,
				ResponseHeaderTimeout: 10 * time.Second,
				MaxIdleConns:          512,
				MaxIdleConnsPerHost:   256,
				IdleConnTimeout:       30 * time.Second,
			},
			CheckRedirect: func(req *http.Request, via []*http.Request) error {
				return http.ErrUseLastResponse // classify 302s ourselves
			},
		},
	}, nil
}

// Do implements Target.
func (t *HTTPTarget) Do(req Request) Outcome {
	return t.get(fmt.Sprintf("%s/svc/%s/bench?seq=%d", t.base, req.Org, req.Seq), true)
}

// get performs one exchange; followRedirect permits chasing a single 302 to
// a backend (never a second hop).
func (t *HTTPTarget) get(u string, followRedirect bool) Outcome {
	resp, err := t.client.Get(u)
	if err != nil {
		return Errored
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return OK
	case http.StatusServiceUnavailable:
		return Rejected // proxy-mode over-quota answer
	case http.StatusFound:
		loc, err := resp.Location()
		if err != nil {
			return Errored
		}
		if loc.Host == t.host {
			return Rejected // self-redirect: implicit queue, client retries
		}
		if !followRedirect {
			return Errored
		}
		return t.get(loc.String(), false)
	default:
		return Errored
	}
}

// TCPTarget drives a Layer-4 redirector: one TCP connection per request to
// the principal's service address, one request line, one reply. A parked
// (over-quota) connection is simply a slow one — the latency histogram is
// where Layer-4 enforcement shows up.
type TCPTarget struct {
	// Addrs maps principal index to the service listen address.
	Addrs map[int]string
	// Timeout bounds each exchange (default 10s; parked connections are
	// reinjected within the redirector's pending timeout).
	Timeout time.Duration
}

// Do implements Target.
func (t *TCPTarget) Do(req Request) Outcome {
	addr, ok := t.Addrs[req.Principal]
	if !ok {
		return Errored
	}
	timeout := t.Timeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	served, err := l4.Do(addr, fmt.Sprintf("bench-%d-%d", req.Principal, req.Seq), timeout)
	if err != nil || !served {
		return Errored
	}
	return OK
}
