package loadgen

import (
	"fmt"
	"time"
)

// SweepPoint is one cell of the scale sweep grid: fleet shape × offered
// load.
type SweepPoint struct {
	// Redirectors and Fanout shape the fleet (see FleetConfig).
	Redirectors int
	Fanout      int
	// Load is the offered load as a fraction of provider capacity, split
	// evenly over the user principals.
	Load float64
	// Process shapes the arrivals (default Poisson).
	Process Process
	// Seed roots the point's arrival schedules; principal p uses
	// Seed + p so streams stay independent but reproducible.
	Seed uint64
	// Capacity, when positive, overrides SweepDefaults.Capacity for this
	// point. The high-load grid points use it to push absolute offered QPS
	// well past the default grid's ceiling without re-scaling every other
	// point.
	Capacity float64
}

// Name renders the canonical point label used in BENCH_scale.json. Points
// that override the default fleet capacity carry it in the label so the two
// load dimensions (relative fraction, absolute rate) stay distinguishable.
func (p SweepPoint) Name() string {
	if p.Capacity > 0 {
		return fmt.Sprintf("Scale/r=%d/f=%d/load=%.2f/cap=%g", p.Redirectors, p.Fanout, p.Load, p.Capacity)
	}
	return fmt.Sprintf("Scale/r=%d/f=%d/load=%.2f", p.Redirectors, p.Fanout, p.Load)
}

// Streams expands the point into per-principal arrival streams against a
// fleet of the given capacity and org labels. The expansion is
// deterministic: a fixed (point, capacity, orgs) triple always yields
// bit-identical schedules.
func (p SweepPoint) Streams(capacity float64, orgs []string) []Stream {
	rate := p.Load * capacity / float64(len(orgs))
	out := make([]Stream, len(orgs))
	for i, org := range orgs {
		out[i] = Stream{
			Principal: i,
			Org:       org,
			Rate:      rate,
			Process:   p.Process,
			Seed:      p.Seed + uint64(i),
		}
	}
	return out
}

// DefaultSweep is the grid `make bench-scale` runs: redirector count ×
// combining-tree fanout × offered load, six points from a single blind
// redirector at half load to a four-node tree near saturation, plus two
// high-rate points at 4× the default fleet capacity (12800 req/s) that
// push the absolute offered QPS past anything the base grid reaches —
// 6400 and 10240 req/s — to expose contention the fractional points mask.
func DefaultSweep() []SweepPoint {
	return []SweepPoint{
		{Redirectors: 1, Fanout: 2, Load: 0.5, Process: Poisson, Seed: 1},
		{Redirectors: 1, Fanout: 2, Load: 0.8, Process: Poisson, Seed: 2},
		{Redirectors: 2, Fanout: 2, Load: 0.5, Process: Poisson, Seed: 3},
		{Redirectors: 2, Fanout: 2, Load: 0.8, Process: Poisson, Seed: 4},
		{Redirectors: 4, Fanout: 2, Load: 0.8, Process: Poisson, Seed: 5},
		{Redirectors: 4, Fanout: 3, Load: 0.8, Process: Poisson, Seed: 6},
		{Redirectors: 2, Fanout: 2, Load: 0.5, Process: Poisson, Seed: 7, Capacity: 12800},
		{Redirectors: 4, Fanout: 2, Load: 0.8, Process: Poisson, Seed: 8, Capacity: 12800},
	}
}

// SweepDefaults are the per-point run parameters the sweep runner uses
// unless overridden: a short measured span after a convergence warmup keeps
// the full grid under half a minute while still covering dozens of windows
// per point.
var SweepDefaults = struct {
	Capacity float64
	Window   time.Duration
	Duration time.Duration
	Warmup   time.Duration
	Backends int
}{
	Capacity: 3200,
	Window:   50 * time.Millisecond,
	Duration: 2400 * time.Millisecond,
	Warmup:   800 * time.Millisecond,
	Backends: 2,
}
