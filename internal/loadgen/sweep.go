package loadgen

import (
	"fmt"
	"time"
)

// SweepPoint is one cell of the scale sweep grid: fleet shape × offered
// load.
type SweepPoint struct {
	// Redirectors and Fanout shape the fleet (see FleetConfig).
	Redirectors int
	Fanout      int
	// Load is the offered load as a fraction of provider capacity, split
	// evenly over the user principals.
	Load float64
	// Process shapes the arrivals (default Poisson).
	Process Process
	// Seed roots the point's arrival schedules; principal p uses
	// Seed + p so streams stay independent but reproducible.
	Seed uint64
	// Capacity, when positive, overrides SweepDefaults.Capacity for this
	// point. The high-load grid points use it to push absolute offered QPS
	// well past the default grid's ceiling without re-scaling every other
	// point.
	Capacity float64
	// Regions, when > 1, lays the point's fleet out hierarchically — the
	// redirectors split into regional sub-trees under a global tier with
	// delta-compressed queue vectors on every edge (see FleetConfig.Regions).
	Regions int
	// Window/Duration/Warmup, when positive, override SweepDefaults for
	// this point. The hierarchical points stretch the scheduling window
	// with fleet size so each redirector still sees several requests per
	// principal per window (admissions are whole requests; a near-empty
	// window sits inside the credit carry and the under-floor audit turns
	// into noise), and stretch warmup/duration with it so the deeper plane
	// still settles and measures tens of windows.
	Window   time.Duration
	Duration time.Duration
	Warmup   time.Duration
}

// Name renders the canonical point label used in BENCH_scale.json. Points
// that override the default fleet capacity carry it in the label so the two
// load dimensions (relative fraction, absolute rate) stay distinguishable,
// and hierarchical points carry their region count.
func (p SweepPoint) Name() string {
	name := fmt.Sprintf("Scale/r=%d/f=%d/load=%.2f", p.Redirectors, p.Fanout, p.Load)
	if p.Capacity > 0 {
		name += fmt.Sprintf("/cap=%g", p.Capacity)
	}
	if p.Regions > 1 {
		name += fmt.Sprintf("/reg=%d", p.Regions)
	}
	return name
}

// Streams expands the point into per-principal arrival streams against a
// fleet of the given capacity and org labels. The expansion is
// deterministic: a fixed (point, capacity, orgs) triple always yields
// bit-identical schedules.
func (p SweepPoint) Streams(capacity float64, orgs []string) []Stream {
	rate := p.Load * capacity / float64(len(orgs))
	out := make([]Stream, len(orgs))
	for i, org := range orgs {
		out[i] = Stream{
			Principal: i,
			Org:       org,
			Rate:      rate,
			Process:   p.Process,
			Seed:      p.Seed + uint64(i),
		}
	}
	return out
}

// DefaultSweep is the grid `make bench-scale` runs: redirector count ×
// combining-tree fanout × offered load, six points from a single blind
// redirector at half load to a four-node tree near saturation, plus two
// high-rate points at 4× the default fleet capacity (12800 req/s) that
// push the absolute offered QPS past anything the base grid reaches —
// 6400 and 10240 req/s — to expose contention the fractional points mask.
//
// The last three points are the hierarchical-plane scale grid: 64, 128 and
// 256 redirectors laid out as 16-member regional sub-trees under a global
// tier, with delta-compressed queue vectors on every tree edge. Window
// length scales with fleet size (100/200/400 ms) to keep per-redirector
// per-window demand in the audit's meaningful range, so upstream message
// volume (delta entries on the wire) must grow sub-linearly across the
// grid — cmd/loadgen asserts the 64→256 ratio stays under 4×.
func DefaultSweep() []SweepPoint {
	return []SweepPoint{
		{Redirectors: 1, Fanout: 2, Load: 0.5, Process: Poisson, Seed: 1},
		{Redirectors: 1, Fanout: 2, Load: 0.8, Process: Poisson, Seed: 2},
		{Redirectors: 2, Fanout: 2, Load: 0.5, Process: Poisson, Seed: 3},
		{Redirectors: 2, Fanout: 2, Load: 0.8, Process: Poisson, Seed: 4},
		{Redirectors: 4, Fanout: 2, Load: 0.8, Process: Poisson, Seed: 5},
		{Redirectors: 4, Fanout: 3, Load: 0.8, Process: Poisson, Seed: 6},
		{Redirectors: 2, Fanout: 2, Load: 0.5, Process: Poisson, Seed: 7, Capacity: 12800},
		{Redirectors: 4, Fanout: 2, Load: 0.8, Process: Poisson, Seed: 8, Capacity: 12800},
		{Redirectors: 64, Fanout: 2, Load: 0.5, Process: Poisson, Seed: 9, Capacity: 12800,
			Regions: 4, Window: 100 * time.Millisecond, Duration: 5 * time.Second, Warmup: 2 * time.Second},
		{Redirectors: 128, Fanout: 2, Load: 0.5, Process: Poisson, Seed: 10, Capacity: 12800,
			Regions: 8, Window: 200 * time.Millisecond, Duration: 8 * time.Second, Warmup: 4 * time.Second},
		{Redirectors: 256, Fanout: 2, Load: 0.5, Process: Poisson, Seed: 11, Capacity: 12800,
			Regions: 16, Window: 400 * time.Millisecond, Duration: 12 * time.Second, Warmup: 8 * time.Second},
	}
}

// SweepDefaults are the per-point run parameters the sweep runner uses
// unless overridden: a short measured span after a convergence warmup keeps
// the full grid under half a minute while still covering dozens of windows
// per point.
var SweepDefaults = struct {
	Capacity float64
	Window   time.Duration
	Duration time.Duration
	Warmup   time.Duration
	Backends int
}{
	Capacity: 3200,
	Window:   50 * time.Millisecond,
	Duration: 2400 * time.Millisecond,
	Warmup:   800 * time.Millisecond,
	Backends: 2,
}
