package loadgen

import (
	"fmt"
	"time"
)

// SweepPoint is one cell of the scale sweep grid: fleet shape × offered
// load.
type SweepPoint struct {
	// Redirectors and Fanout shape the fleet (see FleetConfig).
	Redirectors int
	Fanout      int
	// Load is the offered load as a fraction of provider capacity, split
	// evenly over the user principals.
	Load float64
	// Process shapes the arrivals (default Poisson).
	Process Process
	// Seed roots the point's arrival schedules; principal p uses
	// Seed + p so streams stay independent but reproducible.
	Seed uint64
}

// Name renders the canonical point label used in BENCH_scale.json.
func (p SweepPoint) Name() string {
	return fmt.Sprintf("Scale/r=%d/f=%d/load=%.2f", p.Redirectors, p.Fanout, p.Load)
}

// Streams expands the point into per-principal arrival streams against a
// fleet of the given capacity and org labels. The expansion is
// deterministic: a fixed (point, capacity, orgs) triple always yields
// bit-identical schedules.
func (p SweepPoint) Streams(capacity float64, orgs []string) []Stream {
	rate := p.Load * capacity / float64(len(orgs))
	out := make([]Stream, len(orgs))
	for i, org := range orgs {
		out[i] = Stream{
			Principal: i,
			Org:       org,
			Rate:      rate,
			Process:   p.Process,
			Seed:      p.Seed + uint64(i),
		}
	}
	return out
}

// DefaultSweep is the grid `make bench-scale` runs: redirector count ×
// combining-tree fanout × offered load, six points from a single blind
// redirector at half load to a four-node tree near saturation.
func DefaultSweep() []SweepPoint {
	return []SweepPoint{
		{Redirectors: 1, Fanout: 2, Load: 0.5, Process: Poisson, Seed: 1},
		{Redirectors: 1, Fanout: 2, Load: 0.8, Process: Poisson, Seed: 2},
		{Redirectors: 2, Fanout: 2, Load: 0.5, Process: Poisson, Seed: 3},
		{Redirectors: 2, Fanout: 2, Load: 0.8, Process: Poisson, Seed: 4},
		{Redirectors: 4, Fanout: 2, Load: 0.8, Process: Poisson, Seed: 5},
		{Redirectors: 4, Fanout: 3, Load: 0.8, Process: Poisson, Seed: 6},
	}
}

// SweepDefaults are the per-point run parameters the sweep runner uses
// unless overridden: a short measured span after a convergence warmup keeps
// the full grid under half a minute while still covering dozens of windows
// per point.
var SweepDefaults = struct {
	Capacity float64
	Window   time.Duration
	Duration time.Duration
	Warmup   time.Duration
	Backends int
}{
	Capacity: 3200,
	Window:   50 * time.Millisecond,
	Duration: 2400 * time.Millisecond,
	Warmup:   800 * time.Millisecond,
	Backends: 2,
}
