package health

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/agreement"
	"repro/internal/core"
)

// Engine is the slice of core.Engine the re-interpreter needs: read the
// current capacity vector and install a new one. UpdateCapacities returns
// the configuration Version the update produced (see core.Engine).
type Engine interface {
	Capacities() []float64
	UpdateCapacities([]float64) (core.Version, error)
}

// Reinterpreter turns backend up/down transitions into the paper's §2.2
// dynamic re-interpretation of agreements. At construction it captures the
// engine's capacity vector as the nominal baseline and counts each owner's
// backends; whenever a backend changes state it scales the owner's capacity
// by the fraction of its backends still alive and calls
// Engine.UpdateCapacities, so every principal's entitlement — mandatory
// floors included — is recomputed from the surviving capacity. Recovery
// restores the baseline the same way.
type Reinterpreter struct {
	eng  Engine
	base []float64

	mu    sync.Mutex
	owner map[string]agreement.Principal // backend target -> owner
	total map[agreement.Principal]int    // backends per owner
	live  map[agreement.Principal]int    // backends currently up
	down  map[string]bool
	nodes map[int]string // topology node id -> current raw target

	degraded  atomic.Uint64 // transitions into a degraded state
	recovered atomic.Uint64 // transitions back to full capacity
}

// NewReinterpreter captures eng's current capacities as the baseline.
// owners maps each backend target to the principal whose capacity it
// provides; every target starts up.
func NewReinterpreter(eng Engine, owners map[string]agreement.Principal) *Reinterpreter {
	r := &Reinterpreter{
		eng:   eng,
		base:  eng.Capacities(),
		owner: make(map[string]agreement.Principal, len(owners)),
		total: make(map[agreement.Principal]int),
		live:  make(map[agreement.Principal]int),
		down:  make(map[string]bool),
		nodes: make(map[int]string),
	}
	for target, p := range owners {
		r.owner[target] = p
		r.total[p]++
		r.live[p]++
	}
	return r
}

// Targets returns the watched backend targets, for feeding Checker.Watch.
func (r *Reinterpreter) Targets() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.owner))
	for t := range r.owner {
		out = append(out, t)
	}
	return out
}

// BindNode binds a topology node id to the raw target currently serving
// it. The first binding must name a watched target; a re-binding (a
// restart that came back on a different address) transfers the old
// target's registration — owner and down state — to the new address. Node
// ids are the stable way to address members of a hierarchical plane:
// re-parenting and restarts change raw addresses, never ids.
func (r *Reinterpreter) BindNode(node int, target string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	prev, bound := r.nodes[node]
	if bound && prev != target {
		p, known := r.owner[prev]
		if !known {
			return fmt.Errorf("health: node %d bound to unknown backend %q", node, prev)
		}
		delete(r.owner, prev)
		r.owner[target] = p
		if r.down[prev] {
			delete(r.down, prev)
			r.down[target] = true
		}
	} else if _, known := r.owner[target]; !known {
		return fmt.Errorf("health: unknown backend %q", target)
	}
	r.nodes[node] = target
	return nil
}

// NodeTarget resolves a topology node id to its current raw target.
func (r *Reinterpreter) NodeTarget(node int) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	target, ok := r.nodes[node]
	return target, ok
}

// SetNodeDown is SetBackendDown addressed by topology node id instead of
// raw target; unbound ids are an error so wiring mistakes surface.
func (r *Reinterpreter) SetNodeDown(node int, isDown bool) error {
	target, ok := r.NodeTarget(node)
	if !ok {
		return fmt.Errorf("health: unbound node id %d", node)
	}
	return r.SetBackendDown(target, isDown)
}

// SetBackendDown marks one backend down (or back up) and re-interprets the
// agreements against the surviving capacity. Idempotent per target; unknown
// targets are an error so wiring mistakes surface in tests.
func (r *Reinterpreter) SetBackendDown(target string, isDown bool) error {
	r.mu.Lock()
	p, ok := r.owner[target]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("health: unknown backend %q", target)
	}
	if r.down[target] == isDown {
		r.mu.Unlock()
		return nil
	}
	wasDegraded := r.anyDownLocked()
	r.down[target] = isDown
	if isDown {
		r.live[p]--
	} else {
		r.live[p]++
		delete(r.down, target)
	}
	caps := make([]float64, len(r.base))
	copy(caps, r.base)
	for owner, total := range r.total {
		if total > 0 {
			caps[owner] = r.base[owner] * float64(r.live[owner]) / float64(total)
		}
	}
	nowDegraded := r.anyDownLocked()
	r.mu.Unlock()

	if nowDegraded && !wasDegraded {
		r.degraded.Add(1)
	}
	if !nowDegraded && wasDegraded {
		r.recovered.Add(1)
	}
	_, err := r.eng.UpdateCapacities(caps)
	return err
}

// HandleTransition adapts Checker.OnTransition to SetBackendDown; engine
// errors (which cannot happen for a well-formed vector) are swallowed since
// the callback has nowhere to return them.
func (r *Reinterpreter) HandleTransition(target string, up bool) {
	_ = r.SetBackendDown(target, !up)
}

// Degraded reports whether any watched backend is currently down.
func (r *Reinterpreter) Degraded() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.anyDownLocked()
}

func (r *Reinterpreter) anyDownLocked() bool {
	for _, d := range r.down {
		if d {
			return true
		}
	}
	return false
}

// Transitions reports cumulative degraded and recovered transitions of the
// plane as a whole (first backend down → degraded; last backend back →
// recovered).
func (r *Reinterpreter) Transitions() (degraded, recovered uint64) {
	return r.degraded.Load(), r.recovered.Load()
}
