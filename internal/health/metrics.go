package health

import (
	"io"
	"sort"

	"repro/internal/obs"
)

// WriteMetrics appends the rsa_health_* Prometheus series for one checker +
// re-interpreter pair to w. Either argument may be nil; both front-ends
// (Layer-7 and Layer-4) call this from their obs.Handler Extra callbacks.
func WriteMetrics(w io.Writer, c *Checker, r *Reinterpreter) {
	if c == nil {
		return
	}
	obs.WriteMetric(w, "rsa_health_probes_total", "counter",
		"Active health probes run.", float64(c.Probes()))
	obs.WriteMetric(w, "rsa_health_probe_failures_total", "counter",
		"Active health probes that failed.", float64(c.Failures()))
	down, up := c.Transitions()
	obs.WriteMetric(w, "rsa_health_down_transitions_total", "counter",
		"Backend up->down transitions.", float64(down))
	obs.WriteMetric(w, "rsa_health_up_transitions_total", "counter",
		"Backend down->up transitions.", float64(up))
	snap := c.Snapshot()
	targets := make([]string, 0, len(snap))
	downNow := 0
	for t, isUp := range snap {
		targets = append(targets, t)
		if !isUp {
			downNow++
		}
	}
	sort.Strings(targets)
	obs.WriteMetric(w, "rsa_health_backends_down", "gauge",
		"Backends currently held down by the health checker.", float64(downNow))
	obs.WriteMetricHeader(w, "rsa_health_backend_up", "gauge",
		"Per-backend health state (1 up, 0 down).")
	for _, t := range targets {
		v := 0.0
		if snap[t] {
			v = 1.0
		}
		obs.WriteLabeled(w, "rsa_health_backend_up", "target", t, v)
	}
	if r != nil {
		deg, rec := r.Transitions()
		obs.WriteMetric(w, "rsa_health_degraded_transitions_total", "counter",
			"Transitions into degraded capacity (first backend lost).", float64(deg))
		obs.WriteMetric(w, "rsa_health_recovered_transitions_total", "counter",
			"Transitions back to full capacity (last backend restored).", float64(rec))
	}
}
