package health

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/agreement"
	"repro/internal/core"
)

// fakeProber scripts probe outcomes per target; tests flip `ok` between
// Advance calls to simulate crashes and recoveries on a fake clock.
type fakeProber struct {
	ok     map[string]bool
	calls  map[string]int
	called []string
}

func newFakeProber(targets ...string) *fakeProber {
	f := &fakeProber{ok: map[string]bool{}, calls: map[string]int{}}
	for _, t := range targets {
		f.ok[t] = true
	}
	return f
}

func (f *fakeProber) probe(target string) error {
	f.calls[target]++
	f.called = append(f.called, target)
	if f.ok[target] {
		return nil
	}
	return errors.New("probe refused")
}

func opts() Options {
	return Options{
		Interval:         100 * time.Millisecond,
		FailThreshold:    3,
		SuccessThreshold: 2,
		BackoffBase:      100 * time.Millisecond,
		BackoffMax:       400 * time.Millisecond,
	}
}

func TestFailThresholdMarksDown(t *testing.T) {
	fp := newFakeProber("b1")
	c := New(opts(), fp.probe)
	var events []string
	c.OnTransition(func(tg string, up bool) {
		events = append(events, fmt.Sprintf("%s:%v", tg, up))
	})
	c.Watch("b1")

	now := time.Duration(0)
	now = c.Advance(now) // healthy probe
	if !c.Up("b1") {
		t.Fatal("healthy target marked down")
	}
	fp.ok["b1"] = false
	for i := 0; i < 2; i++ { // two failures: below threshold
		now = c.Advance(now)
	}
	if !c.Up("b1") {
		t.Fatal("went down before FailThreshold consecutive failures")
	}
	c.Advance(now) // third consecutive failure trips it
	if c.Up("b1") {
		t.Fatal("still up after FailThreshold failures")
	}
	if !reflect.DeepEqual(events, []string{"b1:false"}) {
		t.Fatalf("transitions = %v", events)
	}
	if down, up := c.Transitions(); down != 1 || up != 0 {
		t.Fatalf("counters = (%d,%d), want (1,0)", down, up)
	}
}

func TestSuccessThresholdMarksUpAgain(t *testing.T) {
	fp := newFakeProber("b1")
	fp.ok["b1"] = false
	c := New(opts(), fp.probe)
	var events []string
	c.OnTransition(func(tg string, up bool) {
		events = append(events, fmt.Sprintf("%s:%v", tg, up))
	})
	c.Watch("b1")

	now := time.Duration(0)
	for i := 0; i < 3; i++ {
		now = c.Advance(now)
	}
	if c.Up("b1") {
		t.Fatal("not down yet")
	}
	fp.ok["b1"] = true
	now = c.Advance(now) // one success: below threshold
	if c.Up("b1") {
		t.Fatal("recovered before SuccessThreshold consecutive successes")
	}
	c.Advance(now)
	if !c.Up("b1") {
		t.Fatal("still down after SuccessThreshold successes")
	}
	if !reflect.DeepEqual(events, []string{"b1:false", "b1:true"}) {
		t.Fatalf("transitions = %v", events)
	}
}

func TestFlappingProbeNeverTransitions(t *testing.T) {
	fp := newFakeProber("b1")
	c := New(opts(), fp.probe)
	c.OnTransition(func(tg string, up bool) {
		t.Fatalf("unexpected transition %s:%v", tg, up)
	})
	c.Watch("b1")
	now := time.Duration(0)
	for i := 0; i < 20; i++ { // alternate fail/ok: consecutive counts reset
		fp.ok["b1"] = i%2 == 0
		now = c.Advance(now)
	}
	if !c.Up("b1") {
		t.Fatal("flapping target went down without FailThreshold in a row")
	}
}

func TestDownTargetBacksOffExponentially(t *testing.T) {
	fp := newFakeProber("b1")
	fp.ok["b1"] = false
	c := New(opts(), fp.probe)
	c.Watch("b1")

	// Three base-interval probes trip the threshold; from there the re-probe
	// gap doubles each failure until it clamps at BackoffMax.
	want := []time.Duration{
		100 * time.Millisecond, // up, failure 1
		100 * time.Millisecond, // up, failure 2
		100 * time.Millisecond, // trips threshold -> down, base backoff
		200 * time.Millisecond,
		400 * time.Millisecond,
		400 * time.Millisecond, // clamped at BackoffMax
	}
	now := time.Duration(0)
	for i, w := range want {
		next := c.Advance(now)
		got := next - now
		if got != w {
			t.Fatalf("backoff step %d = %v, want %v", i, got, w)
		}
		now = next
	}
	if c.Up("b1") {
		t.Fatal("not down")
	}
	// Recovery resets the backoff to the base interval.
	fp.ok["b1"] = true
	next := c.Advance(now)
	if got := next - now; got != 100*time.Millisecond {
		t.Fatalf("post-success interval = %v, want 100ms", got)
	}
}

func TestJitterIsSeededAndBounded(t *testing.T) {
	mk := func(seed int64) []time.Duration {
		fp := newFakeProber("b1")
		o := opts()
		o.Jitter = 0.2
		o.Seed = seed
		c := New(o, fp.probe)
		c.Watch("b1")
		var gaps []time.Duration
		now := time.Duration(0)
		for i := 0; i < 8; i++ {
			next := c.Advance(now)
			gaps = append(gaps, next-now)
			now = next
		}
		return gaps
	}
	a, b := mk(1), mk(1)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules:\n%v\n%v", a, b)
	}
	for _, g := range a {
		if g < 80*time.Millisecond || g > 120*time.Millisecond {
			t.Fatalf("jittered gap %v outside ±20%% of 100ms", g)
		}
	}
	if reflect.DeepEqual(a, mk(2)) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestReportFailureAcceleratesDetection(t *testing.T) {
	fp := newFakeProber("b1")
	c := New(opts(), fp.probe)
	c.Watch("b1")
	c.Advance(0) // one healthy probe
	// Three passive data-path failures trip the detector without any
	// scheduled probe running.
	for i := 0; i < 3; i++ {
		c.ReportFailure("b1", 10*time.Millisecond)
	}
	if c.Up("b1") {
		t.Fatal("passive failures did not mark the target down")
	}
	if fp.calls["b1"] != 1 {
		t.Fatalf("probe calls = %d, want 1 (passive reports are not probes)", fp.calls["b1"])
	}
}

func TestUnknownTargetIsUp(t *testing.T) {
	c := New(opts(), newFakeProber().probe)
	if !c.Up("never-watched") {
		t.Fatal("unknown target reported down")
	}
	c.ReportFailure("never-watched", 0) // must be a no-op, not a panic
}

func TestHostPort(t *testing.T) {
	cases := map[string]string{
		"127.0.0.1:8080":                "127.0.0.1:8080",
		"http://127.0.0.1:8080":         "127.0.0.1:8080",
		"http://127.0.0.1:8080/work":    "127.0.0.1:8080",
		"https://example.com:443/a?b=c": "example.com:443",
	}
	for in, want := range cases {
		if got := HostPort(in); got != want {
			t.Errorf("HostPort(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWallClockStartStop(t *testing.T) {
	fp := newFakeProber("b1")
	o := opts()
	o.Interval = 5 * time.Millisecond
	c := New(o, fp.probe)
	c.Watch("b1")
	c.Start()
	deadline := time.Now().Add(2 * time.Second)
	for c.Probes() < 3 {
		if time.Now().After(deadline) {
			t.Fatal("wall-clock loop never probed")
		}
		time.Sleep(time.Millisecond)
	}
	c.Stop()
	c.Stop() // idempotent
}

// fakeEngine records UpdateCapacities calls for Reinterpreter tests.
type fakeEngine struct {
	caps    []float64
	updates [][]float64
}

func (f *fakeEngine) Capacities() []float64 {
	out := make([]float64, len(f.caps))
	copy(out, f.caps)
	return out
}

func (f *fakeEngine) UpdateCapacities(v []float64) (core.Version, error) {
	f.caps = append([]float64(nil), v...)
	f.updates = append(f.updates, f.caps)
	return core.Version(len(f.updates)), nil
}

func TestReinterpreterScalesOwnerCapacity(t *testing.T) {
	eng := &fakeEngine{caps: []float64{320, 0, 0}}
	owners := map[string]agreement.Principal{
		"http://s1:1": 0,
		"http://s2:1": 0,
	}
	r := NewReinterpreter(eng, owners)

	if err := r.SetBackendDown("http://s1:1", true); err != nil {
		t.Fatal(err)
	}
	if !r.Degraded() {
		t.Fatal("not degraded after a backend loss")
	}
	want := []float64{160, 0, 0}
	if !reflect.DeepEqual(eng.caps, want) {
		t.Fatalf("capacities = %v, want %v", eng.caps, want)
	}

	// Idempotent: marking the same backend down again must not re-scale.
	if err := r.SetBackendDown("http://s1:1", true); err != nil {
		t.Fatal(err)
	}
	if len(eng.updates) != 1 {
		t.Fatalf("updates = %d, want 1 (idempotent)", len(eng.updates))
	}

	if err := r.SetBackendDown("http://s2:1", true); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(eng.caps, []float64{0, 0, 0}) {
		t.Fatalf("capacities = %v, want all-zero", eng.caps)
	}

	if err := r.SetBackendDown("http://s1:1", false); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(eng.caps, []float64{160, 0, 0}) {
		t.Fatalf("capacities = %v after partial recovery", eng.caps)
	}
	if err := r.SetBackendDown("http://s2:1", false); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(eng.caps, []float64{320, 0, 0}) {
		t.Fatalf("capacities = %v, want baseline restored", eng.caps)
	}
	if r.Degraded() {
		t.Fatal("still degraded after full recovery")
	}
	if deg, rec := r.Transitions(); deg != 1 || rec != 1 {
		t.Fatalf("transitions = (%d,%d), want (1,1)", deg, rec)
	}
}

func TestReinterpreterUnknownBackend(t *testing.T) {
	eng := &fakeEngine{caps: []float64{100}}
	r := NewReinterpreter(eng, map[string]agreement.Principal{"a": 0})
	if err := r.SetBackendDown("nope", true); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

func TestReinterpreterWithCheckerEndToEnd(t *testing.T) {
	eng := &fakeEngine{caps: []float64{200, 0}}
	r := NewReinterpreter(eng, map[string]agreement.Principal{"b1": 0, "b2": 0})

	fp := newFakeProber("b1", "b2")
	c := New(opts(), fp.probe)
	c.OnTransition(r.HandleTransition)
	c.Watch(r.Targets()...)

	now := time.Duration(0)
	fp.ok["b1"] = false
	for i := 0; i < 3; i++ {
		now = c.Advance(now)
	}
	if !reflect.DeepEqual(eng.caps, []float64{100, 0}) {
		t.Fatalf("capacities = %v, want half", eng.caps)
	}
	fp.ok["b1"] = true
	for i := 0; i < 2; i++ {
		now = c.Advance(now)
	}
	if !reflect.DeepEqual(eng.caps, []float64{200, 0}) {
		t.Fatalf("capacities = %v, want restored", eng.caps)
	}
}

// TestReinterpreterNodeAddressing drives the reinterpreter by topology
// node id: kills by id, rebinds after a restart that changed the raw
// address (transferring owner and down state), and recovers by id.
func TestReinterpreterNodeAddressing(t *testing.T) {
	eng := &fakeEngine{caps: []float64{320, 0, 0}}
	owners := map[string]agreement.Principal{
		"http://s1:1": 0,
		"http://s2:1": 0,
	}
	r := NewReinterpreter(eng, owners)

	if err := r.BindNode(7, "http://s1:1"); err != nil {
		t.Fatal(err)
	}
	if err := r.BindNode(8, "http://nope:1"); err == nil {
		t.Fatal("bound a node to an unwatched target")
	}
	if err := r.SetNodeDown(9, true); err == nil {
		t.Fatal("unbound node id accepted")
	}

	if err := r.SetNodeDown(7, true); err != nil {
		t.Fatal(err)
	}
	if !r.Degraded() || !reflect.DeepEqual(eng.caps, []float64{160, 0, 0}) {
		t.Fatalf("node kill did not degrade: caps = %v", eng.caps)
	}

	// The node restarts on a new address: re-binding transfers the old
	// target's registration, so the id keeps working.
	if err := r.BindNode(7, "http://s1:2"); err != nil {
		t.Fatal(err)
	}
	if got, _ := r.NodeTarget(7); got != "http://s1:2" {
		t.Fatalf("NodeTarget = %q", got)
	}
	if err := r.SetNodeDown(7, false); err != nil {
		t.Fatal(err)
	}
	if r.Degraded() || !reflect.DeepEqual(eng.caps, []float64{320, 0, 0}) {
		t.Fatalf("node recovery by id did not restore: caps = %v", eng.caps)
	}
	deg, rec := r.Transitions()
	if deg != 1 || rec != 1 {
		t.Fatalf("transitions = %d/%d, want 1/1", deg, rec)
	}
	// The old address is gone from the watch set; the new one is live.
	if err := r.SetBackendDown("http://s1:1", true); err == nil {
		t.Fatal("stale address still registered after rebind")
	}
	if err := r.SetBackendDown("http://s1:2", true); err != nil {
		t.Fatal(err)
	}
}
