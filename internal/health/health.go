// Package health implements active per-backend health checking for the
// real-socket enforcement plane, and converts detected failures into the
// paper's §2.2 dynamic re-interpretation of agreements: a backend marked
// down shrinks its owner's physical capacity, Engine.UpdateCapacities
// re-derives every entitlement from the cached flows, and traffic
// re-converges to the surviving capacity — graceful degradation through the
// agreement model itself rather than ad-hoc load shedding.
//
// The Checker's probe loop is deterministic at its core: Advance(now) runs
// every probe due at now and returns the next due time, so unit tests drive
// it with a fake clock and the simulation drives it with virtual time.
// Start/Stop wrap the same core in a wall-clock goroutine for the l7/l4
// front-ends.
package health

import (
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Options parameterizes a Checker. Zero values select the defaults.
type Options struct {
	// Interval is the probe period while a target is (or appears) up
	// (default 500 ms).
	Interval time.Duration
	// Timeout bounds a single probe (default 1 s). It is enforced by the
	// prober, which receives it via TCPProber; custom probers enforce their
	// own.
	Timeout time.Duration
	// FailThreshold is how many consecutive probe failures mark a target
	// down (default 3).
	FailThreshold int
	// SuccessThreshold is how many consecutive probe successes mark a down
	// target up again (default 2).
	SuccessThreshold int
	// BackoffBase is the first re-probe interval after a target goes down;
	// it doubles on every further failure (default Interval).
	BackoffBase time.Duration
	// BackoffMax caps the down-target probe interval (default 8×Interval).
	BackoffMax time.Duration
	// Jitter spreads probe times by ±Jitter fraction of the interval
	// (default 0 — fully deterministic; production configs typically use
	// 0.1–0.3 to avoid synchronized probe storms).
	Jitter float64
	// Seed seeds the jitter RNG so jittered schedules are reproducible.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 500 * time.Millisecond
	}
	if o.Timeout <= 0 {
		o.Timeout = time.Second
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 3
	}
	if o.SuccessThreshold <= 0 {
		o.SuccessThreshold = 2
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = o.Interval
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 8 * o.Interval
	}
	if o.Jitter < 0 {
		o.Jitter = 0
	}
	if o.Jitter > 1 {
		o.Jitter = 1
	}
	return o
}

// Prober checks one target; a nil error means healthy. Probers must bound
// their own latency (see Options.Timeout).
type Prober func(target string) error

// TCPProber returns a Prober that dials the target's TCP endpoint. Targets
// may be bare host:port pairs or URLs ("http://host:port/path"); the
// connection is closed immediately — reachability is the health signal,
// matching the paper's fail-stop cluster model.
func TCPProber(timeout time.Duration) Prober {
	if timeout <= 0 {
		timeout = time.Second
	}
	return func(target string) error {
		conn, err := net.DialTimeout("tcp", HostPort(target), timeout)
		if err != nil {
			return err
		}
		return conn.Close()
	}
}

// HostPort extracts the host:port from a backend target, stripping an
// optional scheme and path.
func HostPort(target string) string {
	rest := target
	if i := strings.Index(rest, "://"); i >= 0 {
		rest = rest[i+3:]
	}
	if i := strings.IndexAny(rest, "/?"); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

// targetState is one backend's detector state.
type targetState struct {
	up         bool
	consecFail int
	consecOK   int
	nextProbe  time.Duration // next due time on the checker clock
	backoff    time.Duration // current down-target re-probe interval
}

// Checker runs active health probes against a set of targets and reports
// up/down transitions. All state transitions happen inside Advance, which a
// wall-clock loop (Start) or a virtual-time driver calls; transition
// callbacks run synchronously from Advance, outside the checker's lock.
type Checker struct {
	opts  Options
	probe Prober

	mu      sync.Mutex
	targets map[string]*targetState
	order   []string // stable probe order for determinism
	rng     *rand.Rand

	onTransition func(target string, up bool)

	probes   atomic.Uint64
	failures atomic.Uint64
	wentDown atomic.Uint64
	wentUp   atomic.Uint64

	stop     chan struct{}
	wake     chan struct{}
	stopOnce sync.Once
	started  time.Time
	wg       sync.WaitGroup
}

// New builds a checker. Targets start in the up state and are probed from
// time zero on the checker's clock.
func New(opts Options, probe Prober) *Checker {
	o := opts.withDefaults()
	return &Checker{
		opts:    o,
		probe:   probe,
		targets: make(map[string]*targetState),
		rng:     rand.New(rand.NewSource(o.Seed + 1)),
		stop:    make(chan struct{}),
		wake:    make(chan struct{}, 1),
	}
}

// OnTransition installs the up/down callback. Install before Start (or the
// first Advance); the callback runs on the probing goroutine.
func (c *Checker) OnTransition(fn func(target string, up bool)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onTransition = fn
}

// Watch adds targets (idempotent). New targets are considered up and become
// due immediately.
func (c *Checker) Watch(targets ...string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, t := range targets {
		if _, ok := c.targets[t]; ok {
			continue
		}
		c.targets[t] = &targetState{up: true, backoff: c.opts.BackoffBase}
		c.order = append(c.order, t)
	}
	c.poke()
}

// Up reports whether the target is currently considered healthy. Unknown
// targets are up: a backend nobody watches is never skipped.
func (c *Checker) Up(target string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.targets[target]
	return !ok || st.up
}

// Snapshot returns the current up/down view of every watched target.
func (c *Checker) Snapshot() map[string]bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]bool, len(c.targets))
	for t, st := range c.targets {
		out[t] = st.up
	}
	return out
}

// Probes reports total probes run.
func (c *Checker) Probes() uint64 { return c.probes.Load() }

// Failures reports how many probes failed.
func (c *Checker) Failures() uint64 { return c.failures.Load() }

// Transitions reports cumulative down and up transitions.
func (c *Checker) Transitions() (down, up uint64) {
	return c.wentDown.Load(), c.wentUp.Load()
}

// ReportFailure feeds a passive failure observation (a data-path dial or
// request error) into the detector, exactly as if a scheduled probe had
// failed at time now. Front-ends use it so real traffic accelerates
// detection between probes.
func (c *Checker) ReportFailure(target string, now time.Duration) {
	c.apply(target, false, now)
}

// Advance runs every probe due at now and returns the next due time
// (now+Interval when nothing is watched). It is the deterministic core:
// virtual-time drivers call it directly; Start calls it from a wall-clock
// loop. Probes run outside the checker lock, sequentially in Watch order.
func (c *Checker) Advance(now time.Duration) time.Duration {
	c.mu.Lock()
	var due []string
	for _, t := range c.order {
		if c.targets[t].nextProbe <= now {
			due = append(due, t)
		}
	}
	c.mu.Unlock()

	for _, t := range due {
		err := c.probe(t)
		c.probes.Add(1)
		if err != nil {
			c.failures.Add(1)
		}
		c.apply(t, err == nil, now)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	next := time.Duration(-1)
	for _, st := range c.targets {
		if next < 0 || st.nextProbe < next {
			next = st.nextProbe
		}
	}
	if next < 0 {
		next = now + c.opts.Interval
	}
	return next
}

// apply folds one probe outcome into the detector and fires the transition
// callback outside the lock.
func (c *Checker) apply(target string, ok bool, now time.Duration) {
	c.mu.Lock()
	st, known := c.targets[target]
	if !known {
		c.mu.Unlock()
		return
	}
	var transitioned bool
	var nowUp bool
	if ok {
		st.consecOK++
		st.consecFail = 0
		st.backoff = c.opts.BackoffBase
		st.nextProbe = now + c.jitteredLocked(c.opts.Interval)
		if !st.up && st.consecOK >= c.opts.SuccessThreshold {
			st.up = true
			transitioned, nowUp = true, true
			c.wentUp.Add(1)
		}
	} else {
		st.consecFail++
		st.consecOK = 0
		if st.up {
			// Still up: keep probing at the base interval until the failure
			// threshold trips.
			st.nextProbe = now + c.jitteredLocked(c.opts.Interval)
			if st.consecFail >= c.opts.FailThreshold {
				st.up = false
				transitioned, nowUp = true, false
				c.wentDown.Add(1)
				st.backoff = c.opts.BackoffBase
				st.nextProbe = now + c.jitteredLocked(st.backoff)
			}
		} else {
			// Already down: exponential backoff keeps dead backends cheap.
			st.backoff *= 2
			if st.backoff > c.opts.BackoffMax {
				st.backoff = c.opts.BackoffMax
			}
			st.nextProbe = now + c.jitteredLocked(st.backoff)
		}
	}
	fn := c.onTransition
	c.mu.Unlock()
	if transitioned && fn != nil {
		fn(target, nowUp)
	}
}

// jitteredLocked spreads d by ±Jitter. Callers hold c.mu.
func (c *Checker) jitteredLocked(d time.Duration) time.Duration {
	if c.opts.Jitter <= 0 || d <= 0 {
		return d
	}
	f := 1 + c.opts.Jitter*(2*c.rng.Float64()-1)
	return time.Duration(float64(d) * f)
}

// Start launches the wall-clock probe loop. Stop terminates it.
func (c *Checker) Start() {
	c.mu.Lock()
	if c.started.IsZero() {
		c.started = time.Now()
	}
	start := c.started
	c.mu.Unlock()
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for {
			next := c.Advance(time.Since(start))
			d := next - time.Since(start)
			if d < time.Millisecond {
				d = time.Millisecond
			}
			timer := time.NewTimer(d)
			select {
			case <-c.stop:
				timer.Stop()
				return
			case <-c.wake:
				timer.Stop()
			case <-timer.C:
			}
		}
	}()
}

// poke wakes the wall-clock loop early (new targets). Callers hold c.mu.
func (c *Checker) poke() {
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// Stop halts the wall-clock loop and waits for it. Idempotent; safe even if
// Start was never called.
func (c *Checker) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
}
