// Package container implements server-side resource containers in the
// style of Cluster Reserves (Aron, Druschel, Zwaenepoel — the mechanism the
// paper names in §2 and §6 as the orthogonal support needed to extend
// agreement enforcement to long-lived requests such as media streams or
// parallel jobs).
//
// A Manager partitions one server's capacity among service classes: each
// class holds a guaranteed share, unused reservations are redistributed
// work-conservingly, and the jobs inside a class progress under processor
// sharing. Combined with the edge admission control in internal/core, this
// closes the loop the paper describes: redirectors shape which requests
// reach a server; containers ensure a long-lived request consumes only its
// class's allocation once there.
package container

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/vclock"
)

// Errors reported by Manager operations.
var (
	ErrShareRange    = errors.New("container: share must be in (0, 1]")
	ErrOverCommitted = errors.New("container: class shares exceed 100%")
	ErrDuplicate     = errors.New("container: duplicate class name")
	ErrBadWork       = errors.New("container: job work must be positive")
)

// Job is one long-lived request executing inside a class.
type Job struct {
	class     *Class
	total     float64
	remaining float64
	onDone    func(at time.Duration)
	done      bool
}

// Done reports whether the job has completed.
func (j *Job) Done() bool { return j.done }

// Progress reports completed work as a fraction in [0, 1].
func (j *Job) Progress() float64 {
	if j.total <= 0 {
		return 1
	}
	return 1 - j.remaining/j.total
}

// Class is one service class: a container with a guaranteed capacity share.
type Class struct {
	name  string
	share float64
	jobs  []*Job

	// ConsumedWork accumulates the capacity·time this class actually used.
	ConsumedWork float64
	// CompletedJobs counts finished jobs.
	CompletedJobs int
}

// Name returns the class display name.
func (c *Class) Name() string { return c.name }

// Share returns the guaranteed capacity fraction.
func (c *Class) Share() float64 { return c.share }

// ActiveJobs reports the number of unfinished jobs.
func (c *Class) ActiveJobs() int { return len(c.jobs) }

// Manager multiplexes one server's capacity among classes over virtual
// time. It is not safe for concurrent use; the simulation loop owns it.
type Manager struct {
	clock    *vclock.Clock
	capacity float64 // work units per second
	window   time.Duration
	classes  []*Class
	ticker   *vclock.Ticker
	lastTick time.Duration
}

// NewManager creates a container manager draining capacity work-units/sec,
// re-dividing allocations every window (the paper's fine-grained
// enforcement granularity, versus Océano's minutes).
func NewManager(clock *vclock.Clock, capacity float64, window time.Duration) *Manager {
	if capacity <= 0 || window <= 0 {
		panic("container: capacity and window must be positive")
	}
	m := &Manager{clock: clock, capacity: capacity, window: window, lastTick: clock.Now()}
	m.ticker = clock.ScheduleEvery(window, m.tick)
	return m
}

// AddClass registers a service class with a guaranteed share of capacity.
// The sum of shares across classes may not exceed 1.
func (m *Manager) AddClass(name string, share float64) (*Class, error) {
	if share <= 0 || share > 1 {
		return nil, fmt.Errorf("%w: %v", ErrShareRange, share)
	}
	total := share
	for _, c := range m.classes {
		if c.name == name {
			return nil, fmt.Errorf("%w: %q", ErrDuplicate, name)
		}
		total += c.share
	}
	if total > 1+1e-12 {
		return nil, fmt.Errorf("%w: %.3f", ErrOverCommitted, total)
	}
	c := &Class{name: name, share: share}
	m.classes = append(m.classes, c)
	return c, nil
}

// SetShare adjusts a class's guarantee at runtime (agreement changes are
// dynamic in the paper's model). The over-commit rule still applies.
func (m *Manager) SetShare(c *Class, share float64) error {
	if share <= 0 || share > 1 {
		return fmt.Errorf("%w: %v", ErrShareRange, share)
	}
	total := share
	for _, other := range m.classes {
		if other != c {
			total += other.share
		}
	}
	if total > 1+1e-12 {
		return fmt.Errorf("%w: %.3f", ErrOverCommitted, total)
	}
	c.share = share
	return nil
}

// Submit enqueues a job of the given total work (in capacity·seconds of
// the whole server — a work of 10 on a 100-unit/s server takes 0.1 s at
// full machine) into class c. onDone may be nil.
func (m *Manager) Submit(c *Class, work float64, onDone func(at time.Duration)) (*Job, error) {
	if work <= 0 {
		return nil, fmt.Errorf("%w: %v", ErrBadWork, work)
	}
	j := &Job{class: c, total: work, remaining: work, onDone: onDone}
	c.jobs = append(c.jobs, j)
	return j, nil
}

// tick advances every class by one window's allocation.
func (m *Manager) tick() {
	now := m.clock.Now()
	elapsed := (now - m.lastTick).Seconds()
	m.lastTick = now
	if elapsed <= 0 {
		return
	}
	budget := m.capacity * elapsed

	demand := make([]float64, len(m.classes))
	shares := make([]float64, len(m.classes))
	for i, c := range m.classes {
		shares[i] = c.share
		for _, j := range c.jobs {
			demand[i] += j.remaining
		}
		if demand[i] > budget {
			demand[i] = budget
		}
	}
	// Cluster-Reserves behavior: guaranteed shares first, unused
	// reservations redistributed to busy classes.
	alloc := cluster.EnforceShares(demand, shares, budget)

	for i, c := range m.classes {
		m.advanceClass(c, alloc[i], now)
	}
}

// advanceClass spends the class's allocation across its jobs under
// processor sharing: equal rates, with early finishers' leftover flowing to
// the rest within the same window.
func (m *Manager) advanceClass(c *Class, alloc float64, now time.Duration) {
	for alloc > 1e-12 && len(c.jobs) > 0 {
		perJob := alloc / float64(len(c.jobs))
		kept := c.jobs[:0]
		for _, j := range c.jobs {
			spend := perJob
			if spend > j.remaining {
				spend = j.remaining
			}
			j.remaining -= spend
			alloc -= spend
			c.ConsumedWork += spend
			if j.remaining <= 1e-12 {
				j.done = true
				c.CompletedJobs++
				if j.onDone != nil {
					j.onDone(now)
				}
				continue
			}
			kept = append(kept, j)
		}
		c.jobs = kept
		// Each pass either spends the whole allocation or completes at
		// least one job, so this loop runs at most len(jobs)+1 times.
	}
}

// RemoveClass deletes a class from the manager, reporting whether it was
// present. Unfinished jobs inside the class are abandoned — the server-side
// half of a lease revocation: the reservation disappears and its share is
// redistributed to the surviving classes from the next window on.
func (m *Manager) RemoveClass(c *Class) bool {
	for i, other := range m.classes {
		if other == c {
			m.classes = append(m.classes[:i], m.classes[i+1:]...)
			c.jobs = nil
			return true
		}
	}
	return false
}

// Reservation is the server-side shadow of a lease: a dedicated service
// class created when the lease is granted, resized when it shrinks, and
// removed (preempting any unfinished jobs) when it is revoked or expires.
type Reservation struct {
	m     *Manager
	class *Class
}

// Reserve carves a dedicated class named name out of the server for a lease
// holder. The usual over-commit rule applies: the reserved share plus
// existing class shares may not exceed 1.
func (m *Manager) Reserve(name string, share float64) (*Reservation, error) {
	c, err := m.AddClass(name, share)
	if err != nil {
		return nil, err
	}
	return &Reservation{m: m, class: c}, nil
}

// Class exposes the reservation's backing service class (job submission,
// consumption telemetry).
func (r *Reservation) Class() *Class { return r.class }

// Shrink lowers the reservation to a smaller share — the cooperative
// reclaim path, mirroring Ledger.Shrink. Growing a reservation is not
// supported; revoke and re-grant instead, so the over-commit check runs
// against current occupancy.
func (r *Reservation) Shrink(share float64) error {
	if share > r.class.share {
		return fmt.Errorf("%w: shrink to %v exceeds reserved %v", ErrShareRange, share, r.class.share)
	}
	return r.m.SetShare(r.class, share)
}

// Release tears the reservation down, abandoning unfinished jobs (lease
// revocation preempts; lease expiry follows the same path after the holder
// drained). Reports whether the reservation was still live.
func (r *Reservation) Release() bool {
	return r.m.RemoveClass(r.class)
}

// Stop halts the manager's window ticker.
func (m *Manager) Stop() { m.ticker.Stop() }

// SharesFromAccess derives class shares from agreement entitlements: each
// principal's guaranteed fraction of this server is its mandatory
// entitlement on owner `owner` divided by the owner's capacity. This is
// the glue between edge enforcement and server containers.
func SharesFromAccess(mi [][]float64, owner int, capacity float64) []float64 {
	shares := make([]float64, len(mi))
	if capacity <= 0 {
		return shares
	}
	for i := range shares {
		shares[i] = mi[owner][i] / capacity
		if shares[i] < 0 {
			shares[i] = 0
		}
		if shares[i] > 1 {
			shares[i] = 1
		}
	}
	return shares
}
