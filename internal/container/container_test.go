package container

import (
	"math"
	"testing"
	"time"

	"repro/internal/agreement"
	"repro/internal/vclock"
)

func TestSharesEnforcedUnderContention(t *testing.T) {
	clock := vclock.New()
	m := NewManager(clock, 100, 100*time.Millisecond)
	gold, err := m.AddClass("gold", 0.7)
	if err != nil {
		t.Fatal(err)
	}
	bronze, err := m.AddClass("bronze", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	// Both classes saturated with long jobs.
	if _, err := m.Submit(gold, 1000, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(bronze, 1000, nil); err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(10 * time.Second)
	// 10 s at 100 units/s: gold 700 units, bronze 300.
	if math.Abs(gold.ConsumedWork-700) > 1 || math.Abs(bronze.ConsumedWork-300) > 1 {
		t.Fatalf("consumed = %.1f/%.1f, want 700/300", gold.ConsumedWork, bronze.ConsumedWork)
	}
}

func TestWorkConservingRedistribution(t *testing.T) {
	clock := vclock.New()
	m := NewManager(clock, 100, 100*time.Millisecond)
	gold, _ := m.AddClass("gold", 0.7)
	bronze, _ := m.AddClass("bronze", 0.3)
	// Only bronze has work: it gets the whole machine.
	done := time.Duration(-1)
	if _, err := m.Submit(bronze, 500, func(at time.Duration) { done = at }); err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(20 * time.Second)
	if gold.ConsumedWork != 0 {
		t.Fatalf("idle gold consumed %v", gold.ConsumedWork)
	}
	// 500 units at the full 100/s: done at ≈5 s (window quantization ≤100 ms).
	if done < 4900*time.Millisecond || done > 5200*time.Millisecond {
		t.Fatalf("bronze finished at %v, want ≈5 s", done)
	}
	if bronze.CompletedJobs != 1 {
		t.Fatalf("CompletedJobs = %d", bronze.CompletedJobs)
	}
}

func TestProcessorSharingWithinClass(t *testing.T) {
	clock := vclock.New()
	m := NewManager(clock, 100, 100*time.Millisecond)
	c, _ := m.AddClass("only", 1.0)
	j1, _ := m.Submit(c, 100, nil)
	j2, _ := m.Submit(c, 300, nil)
	clock.RunUntil(2 * time.Second)
	// 200 units delivered, split equally: j1 (100) done, j2 at 100/300.
	if !j1.Done() {
		t.Fatal("j1 should be done")
	}
	if p := j2.Progress(); math.Abs(p-1.0/3) > 0.02 {
		t.Fatalf("j2 progress = %.3f, want ≈0.333", p)
	}
	clock.RunUntil(4 * time.Second)
	if !j2.Done() {
		t.Fatal("j2 should finish once alone at full class rate")
	}
	if c.ActiveJobs() != 0 {
		t.Fatalf("ActiveJobs = %d", c.ActiveJobs())
	}
}

func TestEarlyFinisherLeftoverFlowsWithinWindow(t *testing.T) {
	clock := vclock.New()
	m := NewManager(clock, 100, 100*time.Millisecond)
	c, _ := m.AddClass("only", 1.0)
	// j1 needs 1 unit; the 10-unit window splits 5/5, j1 finishes with 4
	// spare that must flow to j2 in the same window.
	j1, _ := m.Submit(c, 1, nil)
	j2, _ := m.Submit(c, 100, nil)
	clock.RunUntil(100 * time.Millisecond)
	if !j1.Done() {
		t.Fatal("j1 not done")
	}
	if math.Abs(c.ConsumedWork-10) > 1e-9 {
		t.Fatalf("window consumed %.2f, want 10", c.ConsumedWork)
	}
	if got := j2.Progress() * 100; math.Abs(got-9) > 1e-9 {
		t.Fatalf("j2 got %.2f units, want 9", got)
	}
}

func TestShareValidation(t *testing.T) {
	clock := vclock.New()
	m := NewManager(clock, 100, time.Second)
	if _, err := m.AddClass("x", 0); err == nil {
		t.Error("zero share accepted")
	}
	if _, err := m.AddClass("x", 1.5); err == nil {
		t.Error("share > 1 accepted")
	}
	a, err := m.AddClass("a", 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddClass("a", 0.1); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := m.AddClass("b", 0.5); err == nil {
		t.Error("over-commit accepted")
	}
	b, err := m.AddClass("b", 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetShare(a, 0.7); err == nil {
		t.Error("SetShare over-commit accepted")
	}
	if err := m.SetShare(b, 0.2); err != nil {
		t.Fatal(err)
	}
	if err := m.SetShare(a, 0.8); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(a, -1, nil); err == nil {
		t.Error("negative work accepted")
	}
}

func TestDynamicShareChangeTakesEffect(t *testing.T) {
	clock := vclock.New()
	m := NewManager(clock, 100, 100*time.Millisecond)
	a, _ := m.AddClass("a", 0.5)
	b, _ := m.AddClass("b", 0.5)
	m.Submit(a, 10_000, nil) //nolint:errcheck
	m.Submit(b, 10_000, nil) //nolint:errcheck
	clock.RunUntil(2 * time.Second)
	if math.Abs(a.ConsumedWork-100) > 1 {
		t.Fatalf("a consumed %.1f before change", a.ConsumedWork)
	}
	if err := m.SetShare(b, 0.1); err != nil { // shrink before growing a
		t.Fatal(err)
	}
	if err := m.SetShare(a, 0.9); err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(4 * time.Second)
	// Second 2 s: a gains 180, b gains 20.
	if math.Abs(a.ConsumedWork-280) > 2 || math.Abs(b.ConsumedWork-120) > 2 {
		t.Fatalf("after change consumed = %.1f/%.1f, want 280/120", a.ConsumedWork, b.ConsumedWork)
	}
}

func TestManagerStop(t *testing.T) {
	clock := vclock.New()
	m := NewManager(clock, 100, 100*time.Millisecond)
	c, _ := m.AddClass("a", 1)
	j, _ := m.Submit(c, 50, nil)
	clock.RunUntil(200 * time.Millisecond)
	m.Stop()
	clock.RunUntil(10 * time.Second)
	if j.Done() {
		t.Fatal("job progressed after Stop")
	}
}

func TestSharesFromAccess(t *testing.T) {
	// Figure 9 community: A's mandatory entitlement on B's server is half
	// of B's capacity.
	s := agreement.New()
	a := s.MustAddPrincipal("A", 320)
	b := s.MustAddPrincipal("B", 320)
	s.MustSetAgreement(b, a, 0.5, 0.5)
	acc, err := s.SystemAccess()
	if err != nil {
		t.Fatal(err)
	}
	shares := SharesFromAccess(acc.MI, int(b), 320)
	if math.Abs(shares[a]-0.5) > 1e-9 || math.Abs(shares[b]-0.5) > 1e-9 {
		t.Fatalf("shares = %v, want [0.5 0.5]", shares)
	}
	if got := SharesFromAccess(acc.MI, int(b), 0); got[a] != 0 {
		t.Fatal("zero capacity should yield zero shares")
	}
}

func TestBadManagerConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewManager(vclock.New(), 0, time.Second)
}

func TestReservationLifecycle(t *testing.T) {
	clock := vclock.New()
	m := NewManager(clock, 100, 100*time.Millisecond)
	base, _ := m.AddClass("base", 0.5)
	if _, err := m.Submit(base, 10000, nil); err != nil {
		t.Fatal(err)
	}

	res, err := m.Reserve("lease-1", 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Reserve("lease-2", 0.7); err == nil {
		t.Fatal("over-committed reservation accepted")
	}
	if _, err := m.Submit(res.Class(), 10000, nil); err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(10 * time.Second)
	// Reserved class holds its 0.4 share against the saturated base class
	// (work conservation tops both up pro rata with 0.1 spare).
	if res.Class().ConsumedWork < 400 {
		t.Fatalf("reservation consumed %.1f, want ≥ 400", res.Class().ConsumedWork)
	}

	if err := res.Shrink(0.5); err == nil {
		t.Fatal("growing a reservation accepted")
	}
	if err := res.Shrink(0.1); err != nil {
		t.Fatal(err)
	}
	if got := res.Class().Share(); got != 0.1 {
		t.Fatalf("share after shrink = %v", got)
	}

	jobs := res.Class().ActiveJobs()
	if jobs == 0 {
		t.Fatal("expected an unfinished job before release")
	}
	if !res.Release() {
		t.Fatal("release reported reservation missing")
	}
	if res.Release() {
		t.Fatal("double release succeeded")
	}
	if res.Class().ActiveJobs() != 0 {
		t.Fatal("release kept unfinished jobs")
	}
	// The freed share flows back to the survivors.
	before := base.ConsumedWork
	clock.RunUntil(20 * time.Second)
	if gained := base.ConsumedWork - before; gained < 990 {
		t.Fatalf("base gained %.1f over 10 s after release, want ≈1000", gained)
	}
}
