package container_test

import (
	"fmt"
	"time"

	"repro/internal/container"
	"repro/internal/vclock"
)

// Two service classes share a 100 units/s server 70/30; after ten seconds
// of contention each has consumed exactly its guaranteed share.
func Example() {
	clock := vclock.New()
	m := container.NewManager(clock, 100, 100*time.Millisecond)
	gold, err := m.AddClass("gold", 0.7)
	if err != nil {
		panic(err)
	}
	bronze, err := m.AddClass("bronze", 0.3)
	if err != nil {
		panic(err)
	}
	if _, err := m.Submit(gold, 1e6, nil); err != nil {
		panic(err)
	}
	if _, err := m.Submit(bronze, 1e6, nil); err != nil {
		panic(err)
	}
	clock.RunUntil(10 * time.Second)
	fmt.Printf("gold %.0f, bronze %.0f\n", gold.ConsumedWork, bronze.ConsumedWork)
	// Output: gold 700, bronze 300
}
