package agreement

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

const tol = 1e-9

// figure3System builds the worked example of the paper's Figure 3:
// A (V=1000) grants B [0.4, 0.6]; B (V=1500) grants C [0.6, 1.0].
func figure3System(t testing.TB) (*System, Principal, Principal, Principal) {
	t.Helper()
	s := New()
	a := s.MustAddPrincipal("A", 1000)
	b := s.MustAddPrincipal("B", 1500)
	c := s.MustAddPrincipal("C", 0)
	s.MustSetAgreement(a, b, 0.4, 0.6)
	s.MustSetAgreement(b, c, 0.6, 1.0)
	return s, a, b, c
}

// TestFigure3GoldValues checks the exact currency values the paper derives:
// final (mandatory, optional) = A (600,400), B (760,1340), C (1140,960),
// with B's gross mandatory value 1900.
func TestFigure3GoldValues(t *testing.T) {
	s, a, b, c := figure3System(t)
	acc, err := s.SystemAccess()
	if err != nil {
		t.Fatalf("SystemAccess: %v", err)
	}
	want := []struct {
		p      Principal
		mc, oc float64
	}{{a, 600, 400}, {b, 760, 1340}, {c, 1140, 960}}
	for _, w := range want {
		if math.Abs(acc.MC[w.p]-w.mc) > tol || math.Abs(acc.OC[w.p]-w.oc) > tol {
			t.Errorf("%s: (MC,OC) = (%g,%g), want (%g,%g)",
				s.Name(w.p), acc.MC[w.p], acc.OC[w.p], w.mc, w.oc)
		}
	}
	if math.Abs(acc.Gross[b]-1900) > tol {
		t.Errorf("Gross(B) = %g, want 1900", acc.Gross[b])
	}
}

// TestFigure3TicketValues checks the per-ticket real values from the paper:
// M-Ticket1=400, O-Ticket2=200, M-Ticket3=1140, O-Ticket4=960.
func TestFigure3TicketValues(t *testing.T) {
	s, a, b, _ := figure3System(t)
	curr, err := s.Currencies(100)
	if err != nil {
		t.Fatalf("Currencies: %v", err)
	}
	ca, cb := curr[a], curr[b]
	if len(ca.Issued) != 2 || len(cb.Issued) != 2 {
		t.Fatalf("ticket counts: A=%d B=%d, want 2 and 2", len(ca.Issued), len(cb.Issued))
	}
	checks := []struct {
		tk         Ticket
		face, real float64
		kind       TicketKind
	}{
		{ca.Issued[0], 40, 400, Mandatory},
		{ca.Issued[1], 20, 200, Optional},
		{cb.Issued[0], 60, 1140, Mandatory},
		{cb.Issued[1], 40, 960, Optional},
	}
	for i, c := range checks {
		if c.tk.Kind != c.kind || math.Abs(c.tk.Face-c.face) > tol || math.Abs(c.tk.Real-c.real) > tol {
			t.Errorf("ticket %d = %+v, want kind=%v face=%g real=%g", i, c.tk, c.kind, c.face, c.real)
		}
	}
	if !strings.Contains(ca.String(), "Currency A") {
		t.Errorf("String() = %q", ca.String())
	}
}

// TestFigure3PerPairEntitlements checks the per-owner decomposition:
// entitlements must sum to MC/OC and be located on the right owners.
func TestFigure3PerPairEntitlements(t *testing.T) {
	s, a, b, c := figure3System(t)
	acc, err := s.SystemAccess()
	if err != nil {
		t.Fatalf("SystemAccess: %v", err)
	}
	// B's mandatory 760: 0.4·1000·(1−0.6)=160 on A, 1500·0.4=600 on B.
	if math.Abs(acc.MI[a][b]-160) > tol || math.Abs(acc.MI[b][b]-600) > tol {
		t.Errorf("MI[.][B] = A:%g B:%g, want 160, 600", acc.MI[a][b], acc.MI[b][b])
	}
	// B's optional 1340: from A 200 + reclaim 0.6·400 = 440; from B 0.6·1500 = 900.
	if math.Abs(acc.OI[a][b]-440) > tol || math.Abs(acc.OI[b][b]-900) > tol {
		t.Errorf("OI[.][B] = A:%g B:%g, want 440, 900", acc.OI[a][b], acc.OI[b][b])
	}
	// C's mandatory 1140: 240 backed by A, 900 backed by B.
	if math.Abs(acc.MI[a][c]-240) > tol || math.Abs(acc.MI[b][c]-900) > tol {
		t.Errorf("MI[.][C] = A:%g B:%g, want 240, 900", acc.MI[a][c], acc.MI[b][c])
	}
	for i := 0; i < s.NumPrincipals(); i++ {
		sumM, sumO := 0.0, 0.0
		for k := 0; k < s.NumPrincipals(); k++ {
			sumM += acc.MI[k][i]
			sumO += acc.OI[k][i]
		}
		if math.Abs(sumM-acc.MC[i]) > tol || math.Abs(sumO-acc.OC[i]) > tol {
			t.Errorf("principal %d: Σ MI=%g (MC=%g), Σ OI=%g (OC=%g)",
				i, sumM, acc.MC[i], sumO, acc.OC[i])
		}
	}
}

// TestCurrencyFaceInvariance verifies §2.3's inflation flexibility: ticket
// faces scale with their currency's face value while real values — and
// thus enforcement — stay identical.
func TestCurrencyFaceInvariance(t *testing.T) {
	s, a, b, _ := figure3System(t)
	base, err := s.Currencies(100)
	if err != nil {
		t.Fatal(err)
	}
	inflated, err := s.CurrenciesWithFaces([]float64{1000, 7, 100})
	if err != nil {
		t.Fatal(err)
	}
	// A's currency inflated 10×: faces scale, reals identical.
	if math.Abs(inflated[a].Issued[0].Face-10*base[a].Issued[0].Face) > tol {
		t.Fatalf("face did not scale: %v vs %v", inflated[a].Issued[0], base[a].Issued[0])
	}
	for i := range base {
		if math.Abs(inflated[i].MandatoryValue-base[i].MandatoryValue) > tol ||
			math.Abs(inflated[i].OptionalValue-base[i].OptionalValue) > tol {
			t.Fatalf("real currency values changed with face: %v vs %v", inflated[i], base[i])
		}
		for j := range base[i].Issued {
			if math.Abs(inflated[i].Issued[j].Real-base[i].Issued[j].Real) > tol {
				t.Fatalf("ticket real value changed with face")
			}
		}
	}
	// B deflated to face 7: its M-Ticket3 face is 60% of 7.
	if math.Abs(inflated[b].Issued[0].Face-4.2) > tol {
		t.Fatalf("B ticket face = %v, want 4.2", inflated[b].Issued[0].Face)
	}
	if _, err := s.CurrenciesWithFaces([]float64{1}); err == nil {
		t.Fatal("short face vector accepted")
	}
}

func TestValidationErrors(t *testing.T) {
	s := New()
	a := s.MustAddPrincipal("A", 100)
	b := s.MustAddPrincipal("B", 100)

	if _, err := s.AddPrincipal("A", 5); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := s.AddPrincipal("neg", -1); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, err := s.AddPrincipal("nan", math.NaN()); err == nil {
		t.Error("NaN capacity accepted")
	}
	if err := s.SetAgreement(a, a, 0.1, 0.2); err == nil {
		t.Error("self agreement accepted")
	}
	if err := s.SetAgreement(a, b, 0.5, 0.4); err == nil {
		t.Error("lb > ub accepted")
	}
	if err := s.SetAgreement(a, b, -0.1, 0.4); err == nil {
		t.Error("negative lb accepted")
	}
	if err := s.SetAgreement(a, b, 0.5, 1.5); err == nil {
		t.Error("ub > 1 accepted")
	}
	if err := s.SetAgreement(a, Principal(99), 0.1, 0.2); err == nil {
		t.Error("unknown principal accepted")
	}
	if err := s.SetCapacity(Principal(99), 5); err == nil {
		t.Error("SetCapacity on unknown principal accepted")
	}
	if err := s.SetCapacity(a, math.Inf(1)); err == nil {
		t.Error("infinite capacity accepted")
	}
}

func TestMandatoryOverCommitRejected(t *testing.T) {
	s := New()
	a := s.MustAddPrincipal("A", 100)
	b := s.MustAddPrincipal("B", 100)
	c := s.MustAddPrincipal("C", 100)
	s.MustSetAgreement(a, b, 0.7, 0.9)
	if err := s.SetAgreement(a, c, 0.4, 0.5); err == nil {
		t.Fatal("granting 110% mandatorily should fail")
	}
	// Replacing the same user's agreement must not double count.
	if err := s.SetAgreement(a, b, 0.9, 1.0); err != nil {
		t.Fatalf("replacing an agreement counted against itself: %v", err)
	}
}

func TestAgreementRemoval(t *testing.T) {
	s := New()
	a := s.MustAddPrincipal("A", 100)
	b := s.MustAddPrincipal("B", 100)
	s.MustSetAgreement(a, b, 0.3, 0.5)
	if _, _, ok := s.AgreementBetween(a, b); !ok {
		t.Fatal("agreement not recorded")
	}
	s.MustSetAgreement(a, b, 0, 0)
	if _, _, ok := s.AgreementBetween(a, b); ok {
		t.Fatal("agreement not removed")
	}
	acc, err := s.SystemAccess()
	if err != nil {
		t.Fatal(err)
	}
	if acc.MC[a] != 100 || acc.MC[b] != 100 || acc.OC[a] != 0 {
		t.Fatalf("after removal MC=%v OC=%v, want isolated principals", acc.MC, acc.OC)
	}
}

func TestLookupAndNames(t *testing.T) {
	s := New()
	a := s.MustAddPrincipal("alpha", 10)
	if p, ok := s.Lookup("alpha"); !ok || p != a {
		t.Fatalf("Lookup = %v,%v", p, ok)
	}
	if _, ok := s.Lookup("beta"); ok {
		t.Fatal("Lookup of unknown name succeeded")
	}
	if s.Name(a) != "alpha" || !strings.Contains(s.Name(Principal(9)), "principal") {
		t.Fatalf("Name rendering wrong: %q %q", s.Name(a), s.Name(Principal(9)))
	}
	if s.Capacity(Principal(9)) != 0 {
		t.Fatal("Capacity of unknown principal should be 0")
	}
	if !strings.Contains(s.String(), "alpha") {
		t.Fatalf("String() = %q", s.String())
	}
}

// TestCapacityRescalingWithoutReflow verifies the dynamic-interpretation
// property: flows are capacity independent, so doubling V doubles every
// entitlement without re-enumerating paths.
func TestCapacityRescalingWithoutReflow(t *testing.T) {
	s, _, _, _ := figure3System(t)
	f, err := s.Flows()
	if err != nil {
		t.Fatal(err)
	}
	base, err := f.Access(s.Capacities())
	if err != nil {
		t.Fatal(err)
	}
	doubled := s.Capacities()
	for i := range doubled {
		doubled[i] *= 2
	}
	twice, err := f.Access(doubled)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.MC {
		if math.Abs(twice.MC[i]-2*base.MC[i]) > tol || math.Abs(twice.OC[i]-2*base.OC[i]) > tol {
			t.Fatalf("entitlements not linear in capacity: %v vs %v", base.MC, twice.MC)
		}
	}
	if _, err := f.Access([]float64{1}); err == nil {
		t.Fatal("wrong-length capacity vector accepted")
	}
}

func TestMultiAccess(t *testing.T) {
	s, a, b, _ := figure3System(t)
	f, err := s.Flows()
	if err != nil {
		t.Fatal(err)
	}
	// Two resource dimensions: transaction rate and bandwidth.
	dims := [][]float64{{1000, 1500, 0}, {50, 10, 0}}
	accs, err := f.MultiAccess(dims)
	if err != nil {
		t.Fatal(err)
	}
	if len(accs) != 2 {
		t.Fatalf("got %d dimensions", len(accs))
	}
	if math.Abs(accs[0].MC[a]-600) > tol {
		t.Errorf("dim 0 MC[A] = %g", accs[0].MC[a])
	}
	// Bandwidth: A grants 40% of 50 to B → B gross 10+20=30, MC = 30·0.4 = 12.
	if math.Abs(accs[1].MC[b]-12) > tol {
		t.Errorf("dim 1 MC[B] = %g, want 12", accs[1].MC[b])
	}
	if _, err := f.MultiAccess([][]float64{{1, 2}}); err == nil {
		t.Fatal("wrong-length dimension accepted")
	}
}

// TestCycleSafety checks that cyclic agreement graphs terminate and never
// allocate more mandatory entitlement than physical capacity.
func TestCycleSafety(t *testing.T) {
	s := New()
	a := s.MustAddPrincipal("A", 100)
	b := s.MustAddPrincipal("B", 100)
	s.MustSetAgreement(a, b, 0.5, 0.5)
	s.MustSetAgreement(b, a, 0.5, 0.5)
	acc, err := s.SystemAccess()
	if err != nil {
		t.Fatal(err)
	}
	// Simple-path semantics: G_A = 100 + 50 = 150, MC_A = 75; symmetric.
	if math.Abs(acc.MC[a]-75) > tol || math.Abs(acc.MC[b]-75) > tol {
		t.Fatalf("MC = %v, want [75 75]", acc.MC)
	}
	total := acc.MC[a] + acc.MC[b]
	if total > 200+tol {
		t.Fatalf("cycle over-allocates: ΣMC = %g > ΣV = 200", total)
	}
}

// TestThreeCycle exercises a longer cycle with asymmetric bounds.
func TestThreeCycle(t *testing.T) {
	s := New()
	a := s.MustAddPrincipal("A", 300)
	b := s.MustAddPrincipal("B", 0)
	c := s.MustAddPrincipal("C", 0)
	s.MustSetAgreement(a, b, 0.5, 1.0)
	s.MustSetAgreement(b, c, 0.5, 1.0)
	s.MustSetAgreement(c, a, 0.5, 1.0)
	acc, err := s.SystemAccess()
	if err != nil {
		t.Fatal(err)
	}
	// G_A=300 (path c→a carries 0 capacity), G_B=150, G_C=75.
	// MC = G·(1−0.5).
	want := []float64{150, 75, 37.5}
	for i, w := range want {
		if math.Abs(acc.MC[i]-w) > tol {
			t.Fatalf("MC = %v, want %v", acc.MC, want)
		}
	}
	if sum := acc.MC[a] + acc.MC[b] + acc.MC[c]; sum > 300+tol {
		t.Fatalf("ΣMC = %g exceeds ΣV = 300", sum)
	}
}

// randomDAG builds a random acyclic agreement system (edges only from lower
// to higher principal index), returning it for property tests.
func randomDAG(rng *rand.Rand) *System {
	s := New()
	n := 2 + rng.Intn(5)
	for i := 0; i < n; i++ {
		s.MustAddPrincipal(string(rune('A'+i)), float64(rng.Intn(1000)))
	}
	for i := 0; i < n; i++ {
		// Budget of mandatory grant fractions out of i.
		budget := 1.0
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.5 {
				continue
			}
			lb := rng.Float64() * budget * 0.9
			ub := lb + rng.Float64()*(1-lb)
			if err := s.SetAgreement(Principal(i), Principal(j), lb, ub); err != nil {
				panic(err)
			}
			budget -= lb
		}
	}
	return s
}

// TestQuickDAGConservation: on acyclic graphs the mandatory entitlements
// partition the physical capacity exactly — Σ_i MC_i = Σ_k V_k, and each
// owner's capacity is fully assigned: Σ_i MI[k][i] = V_k.
func TestQuickDAGConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomDAG(rng)
		acc, err := s.SystemAccess()
		if err != nil {
			return false
		}
		n := s.NumPrincipals()
		totalV, totalMC := 0.0, 0.0
		for i := 0; i < n; i++ {
			totalV += s.Capacity(Principal(i))
			totalMC += acc.MC[i]
			if acc.MC[i] < -tol || acc.OC[i] < -tol {
				return false
			}
		}
		if math.Abs(totalV-totalMC) > 1e-6*(1+totalV) {
			return false
		}
		for k := 0; k < n; k++ {
			rowSum := 0.0
			for i := 0; i < n; i++ {
				if acc.MI[k][i] < -tol || acc.OI[k][i] < -tol {
					return false
				}
				rowSum += acc.MI[k][i]
			}
			if math.Abs(rowSum-s.Capacity(Principal(k))) > 1e-6*(1+totalV) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCyclicSafety: arbitrary (possibly cyclic) graphs never allocate
// more total mandatory entitlement than total capacity, and all entitlements
// stay non-negative.
func TestQuickCyclicSafety(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		n := 2 + rng.Intn(5)
		for i := 0; i < n; i++ {
			s.MustAddPrincipal(string(rune('A'+i)), float64(rng.Intn(1000)))
		}
		for i := 0; i < n; i++ {
			budget := 1.0
			for j := 0; j < n; j++ {
				if j == i || rng.Float64() < 0.6 {
					continue
				}
				lb := rng.Float64() * budget * 0.9
				ub := lb + rng.Float64()*(1-lb)
				if s.SetAgreement(Principal(i), Principal(j), lb, ub) != nil {
					continue
				}
				budget -= lb
			}
		}
		acc, err := s.SystemAccess()
		if err != nil {
			return false
		}
		totalV, totalMC := 0.0, 0.0
		for i := 0; i < n; i++ {
			if acc.MC[i] < -tol || acc.OC[i] < -tol || acc.Gross[i] < -tol {
				return false
			}
			totalV += s.Capacity(Principal(i))
			totalMC += acc.MC[i]
		}
		return totalMC <= totalV+1e-6*(1+totalV)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// referenceDAGAccess computes MC/OC by the exact linear recurrence over a
// topological order — valid only for acyclic systems whose edges go from
// lower to higher principal index (randomDAG's invariant):
//
//	G_i   = V_i + Σ_j lb_ji·G_j
//	OIn_i = Σ_j ((ub_ji − lb_ji)·G_j + ub_ji·OIn_j)
//	MC_i  = G_i·(1 − Σ_k lb_ik)
//	OC_i  = OIn_i + Σ_k lb_ik·G_i
//
// It is an independent oracle for the DFS path enumeration in Flows.
func referenceDAGAccess(s *System) (mc, oc []float64) {
	n := s.NumPrincipals()
	g := make([]float64, n)
	oin := make([]float64, n)
	for i := 0; i < n; i++ {
		g[i] = s.Capacity(Principal(i))
	}
	for j := 0; j < n; j++ { // topological: edges only j → i with j < i
		for i := j + 1; i < n; i++ {
			lb, ub, ok := s.AgreementBetween(Principal(j), Principal(i))
			if !ok {
				continue
			}
			g[i] += lb * g[j]
			oin[i] += (ub-lb)*g[j] + ub*oin[j]
		}
	}
	mc = make([]float64, n)
	oc = make([]float64, n)
	for i := 0; i < n; i++ {
		out := s.mandatoryOut(Principal(i))
		mc[i] = g[i] * (1 - out)
		oc[i] = oin[i] + out*g[i]
	}
	return mc, oc
}

// TestQuickDifferentialAgainstDAGRecurrence cross-checks the DFS simple-path
// enumeration against the independent closed-form DAG oracle.
func TestQuickDifferentialAgainstDAGRecurrence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomDAG(rng)
		acc, err := s.SystemAccess()
		if err != nil {
			return false
		}
		mc, oc := referenceDAGAccess(s)
		for i := range mc {
			scale := 1 + math.Abs(mc[i]) + math.Abs(oc[i])
			if math.Abs(acc.MC[i]-mc[i]) > 1e-6*scale {
				return false
			}
			if math.Abs(acc.OC[i]-oc[i]) > 1e-6*scale {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestIntroExampleEntitlements reproduces the SLA arithmetic of the paper's
// introduction: provider S with V=100 (two 50 req/s servers), A 20%, B 80%.
func TestIntroExampleEntitlements(t *testing.T) {
	s := New()
	sp := s.MustAddPrincipal("S", 100)
	a := s.MustAddPrincipal("A", 0)
	b := s.MustAddPrincipal("B", 0)
	s.MustSetAgreement(sp, a, 0.2, 0.2)
	s.MustSetAgreement(sp, b, 0.8, 0.8)
	acc, err := s.SystemAccess()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(acc.MC[a]-20) > tol || math.Abs(acc.MC[b]-80) > tol {
		t.Fatalf("MC = %v, want A=20 B=80", acc.MC)
	}
	if math.Abs(acc.MC[sp]-0) > tol {
		t.Fatalf("provider retains %g mandatorily, want 0", acc.MC[sp])
	}
}

func BenchmarkFlowsChain(b *testing.B) {
	s := New()
	const n = 10
	var ps []Principal
	for i := 0; i < n; i++ {
		ps = append(ps, s.MustAddPrincipal(string(rune('A'+i)), 100))
	}
	for i := 0; i+1 < n; i++ {
		s.MustSetAgreement(ps[i], ps[i+1], 0.4, 0.8)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Flows(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAccessScaling(b *testing.B) {
	s, _, _, _ := figure3System(b)
	f, err := s.Flows()
	if err != nil {
		b.Fatal(err)
	}
	v := s.Capacities()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := f.Access(v); err != nil {
			b.Fatal(err)
		}
	}
}

func TestComponents(t *testing.T) {
	s := New()
	sp := s.MustAddPrincipal("S", 100) // 0
	a := s.MustAddPrincipal("A", 0)    // 1
	b := s.MustAddPrincipal("B", 0)    // 2
	x := s.MustAddPrincipal("X", 50)   // 3
	y := s.MustAddPrincipal("Y", 0)    // 4
	lone := s.MustAddPrincipal("L", 0) // 5
	s.MustSetAgreement(sp, a, 0.1, 1)
	s.MustSetAgreement(sp, b, 0.1, 1)
	s.MustSetAgreement(x, y, 0.2, 1)

	comps := s.Components()
	want := [][]Principal{{sp, a, b}, {x, y}, {lone}}
	if len(comps) != len(want) {
		t.Fatalf("components = %v", comps)
	}
	for i := range want {
		if len(comps[i]) != len(want[i]) {
			t.Fatalf("component %d = %v, want %v", i, comps[i], want[i])
		}
		for j := range want[i] {
			if comps[i][j] != want[i][j] {
				t.Fatalf("component %d = %v, want %v", i, comps[i], want[i])
			}
		}
	}

	// Bridging the two big components merges them.
	s.MustSetAgreement(b, x, 0.05, 1)
	comps = s.Components()
	if len(comps) != 2 || len(comps[0]) != 5 {
		t.Fatalf("merged components = %v", comps)
	}
}
