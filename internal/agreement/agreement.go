// Package agreement implements the paper's uniform representation of
// resource sharing agreements (§2): principals owning rate resources,
// agreements [lb, ub] between them, and the ticket/currency scheme that
// folds direct and transitive agreements into per-principal mandatory and
// optional access levels (MC_i, OC_i) plus per-pair entitlement matrices
// (MI_ki, OI_ki) used by the window schedulers in internal/sched.
//
// The flow computation follows Figure 5 of the paper: mandatory resources
// flow along chains of lower bounds over simple paths in the agreement
// graph; optional resources arise from one optional ticket on the path
// followed by upper bounds; a principal's mandatory value excludes what it
// passes along to others (the leak factor 1−Σ lb), and its optional value
// additionally includes the mandatory value it granted away but may reclaim
// while unused.
package agreement

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Errors reported by System mutation and computation.
var (
	ErrBadBounds       = errors.New("agreement: bounds must satisfy 0 ≤ lb ≤ ub ≤ 1")
	ErrSelfAgreement   = errors.New("agreement: a principal cannot hold an agreement with itself")
	ErrUnknown         = errors.New("agreement: unknown principal")
	ErrOverCommitted   = errors.New("agreement: mandatory grants exceed 100% of a principal's currency")
	ErrBadCapacity     = errors.New("agreement: capacity must be finite and non-negative")
	ErrDuplicateName   = errors.New("agreement: duplicate principal name")
	ErrTooManyPaths    = errors.New("agreement: agreement graph has too many simple paths")
	ErrDimensionLength = errors.New("agreement: capacity vector length does not match principal count")
)

// Principal is a handle to a participant registered in a System.
type Principal int

// Agreement is one direct contract: Owner grants User access to between
// LB·100% and UB·100% of the resources backing Owner's currency.
type Agreement struct {
	Owner Principal `json:"owner"`
	User  Principal `json:"user"`
	LB    float64   `json:"lb"`
	UB    float64   `json:"ub"`
}

// System is a set of principals, their physical capacities, and the direct
// agreements between them. The zero value is unusable; construct with New.
type System struct {
	names      []string
	capacities []float64
	byName     map[string]Principal
	// edges[owner][user] = [lb, ub]; absent means no agreement.
	edges []map[Principal][2]float64
}

// New returns an empty agreement system.
func New() *System {
	return &System{byName: make(map[string]Principal)}
}

// AddPrincipal registers a principal with the given display name and
// physical capacity (in requests per time window, or any rate unit — the
// paper scales capacities "in terms of the average requirements of a
// request").
func (s *System) AddPrincipal(name string, capacity float64) (Principal, error) {
	if math.IsNaN(capacity) || math.IsInf(capacity, 0) || capacity < 0 {
		return -1, fmt.Errorf("%w: %q has capacity %v", ErrBadCapacity, name, capacity)
	}
	if _, dup := s.byName[name]; dup {
		return -1, fmt.Errorf("%w: %q", ErrDuplicateName, name)
	}
	p := Principal(len(s.names))
	s.names = append(s.names, name)
	s.capacities = append(s.capacities, capacity)
	s.edges = append(s.edges, nil)
	s.byName[name] = p
	return p, nil
}

// MustAddPrincipal is AddPrincipal for static configuration; it panics on
// error.
func (s *System) MustAddPrincipal(name string, capacity float64) Principal {
	p, err := s.AddPrincipal(name, capacity)
	if err != nil {
		panic(err)
	}
	return p
}

// NumPrincipals reports how many principals are registered.
func (s *System) NumPrincipals() int { return len(s.names) }

// Name returns the display name of p.
func (s *System) Name(p Principal) string {
	if !s.valid(p) {
		return fmt.Sprintf("principal(%d)", int(p))
	}
	return s.names[p]
}

// Lookup resolves a principal by name.
func (s *System) Lookup(name string) (Principal, bool) {
	p, ok := s.byName[name]
	return p, ok
}

// Capacity returns the physical capacity of p.
func (s *System) Capacity(p Principal) float64 {
	if !s.valid(p) {
		return 0
	}
	return s.capacities[p]
}

// SetCapacity updates p's physical capacity. Flows computed earlier remain
// valid: capacities only scale the entitlements (see Flows.Access), which is
// exactly the dynamic-interpretation property the paper calls out in §2.2.
func (s *System) SetCapacity(p Principal, capacity float64) error {
	if !s.valid(p) {
		return fmt.Errorf("%w: %d", ErrUnknown, int(p))
	}
	if math.IsNaN(capacity) || math.IsInf(capacity, 0) || capacity < 0 {
		return fmt.Errorf("%w: %v", ErrBadCapacity, capacity)
	}
	s.capacities[p] = capacity
	return nil
}

// Capacities returns a copy of the capacity vector indexed by Principal.
func (s *System) Capacities() []float64 {
	v := make([]float64, len(s.capacities))
	copy(v, s.capacities)
	return v
}

func (s *System) valid(p Principal) bool { return p >= 0 && int(p) < len(s.names) }

// SetAgreement installs (or replaces) the direct agreement owner→user with
// bounds [lb, ub]. Setting lb = ub = 0 removes the agreement.
func (s *System) SetAgreement(owner, user Principal, lb, ub float64) error {
	if !s.valid(owner) || !s.valid(user) {
		return fmt.Errorf("%w: %d→%d", ErrUnknown, int(owner), int(user))
	}
	if owner == user {
		return fmt.Errorf("%w: %s", ErrSelfAgreement, s.names[owner])
	}
	if math.IsNaN(lb) || math.IsNaN(ub) || lb < 0 || ub < lb || ub > 1 {
		return fmt.Errorf("%w: [%v, %v]", ErrBadBounds, lb, ub)
	}
	if lb == 0 && ub == 0 {
		delete(s.edges[owner], user)
		return nil
	}
	// The sum of mandatory grants out of a currency cannot exceed its face.
	total := lb
	for u, b := range s.edges[owner] {
		if u != user {
			total += b[0]
		}
	}
	if total > 1+1e-12 {
		return fmt.Errorf("%w: %s would grant %.3f mandatorily", ErrOverCommitted, s.names[owner], total)
	}
	if s.edges[owner] == nil {
		s.edges[owner] = make(map[Principal][2]float64)
	}
	s.edges[owner][user] = [2]float64{lb, ub}
	return nil
}

// MustSetAgreement is SetAgreement for static configuration; it panics on
// error.
func (s *System) MustSetAgreement(owner, user Principal, lb, ub float64) {
	if err := s.SetAgreement(owner, user, lb, ub); err != nil {
		panic(err)
	}
}

// AgreementBetween reports the direct agreement owner→user, if any.
func (s *System) AgreementBetween(owner, user Principal) (lb, ub float64, ok bool) {
	if !s.valid(owner) {
		return 0, 0, false
	}
	b, ok := s.edges[owner][user]
	return b[0], b[1], ok
}

// Agreements returns all direct agreements in a deterministic order
// (by owner, then user).
func (s *System) Agreements() []Agreement {
	var out []Agreement
	for o := range s.edges {
		users := make([]Principal, 0, len(s.edges[o]))
		for u := range s.edges[o] {
			users = append(users, u)
		}
		sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
		for _, u := range users {
			b := s.edges[o][u]
			out = append(out, Agreement{Owner: Principal(o), User: u, LB: b[0], UB: b[1]})
		}
	}
	return out
}

// mandatoryOut is Σ_j lb_pj — the fraction of p's currency granted away
// mandatorily (the "leak" in Figure 5b). Summation runs in sorted user order
// so the float result is identical across calls; fold determinism (and with
// it the control plane's bit-reproducible rollouts) depends on it.
func (s *System) mandatoryOut(p Principal) float64 {
	users := make([]Principal, 0, len(s.edges[p]))
	for u := range s.edges[p] {
		users = append(users, u)
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
	total := 0.0
	for _, u := range users {
		total += s.edges[p][u][0]
	}
	return total
}

// String renders the system for debugging.
func (s *System) String() string {
	out := fmt.Sprintf("agreement.System{%d principals", len(s.names))
	for i, n := range s.names {
		out += fmt.Sprintf("; %s V=%g", n, s.capacities[i])
	}
	for _, a := range s.Agreements() {
		out += fmt.Sprintf("; %s→%s [%g,%g]", s.names[a.Owner], s.names[a.User], a.LB, a.UB)
	}
	return out + "}"
}

// Components partitions the principals into disjoint agreement components:
// two principals share a component when a chain of agreements connects
// them. Principals with no agreements form singleton components. Each
// component's members are ascending; components are ordered by their
// lowest member. The hierarchical aggregation plane gives each component
// its own combining tree and epoch counter.
func (s *System) Components() [][]Principal {
	n := len(s.names)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if rb < ra {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	for o := range s.edges {
		for u := range s.edges[o] {
			union(o, int(u))
		}
	}
	groups := make(map[int][]Principal)
	var roots []int
	for i := 0; i < n; i++ {
		r := find(i)
		if _, ok := groups[r]; !ok {
			roots = append(roots, r)
		}
		groups[r] = append(groups[r], Principal(i))
	}
	sort.Ints(roots)
	out := make([][]Principal, 0, len(roots))
	for _, r := range roots {
		out = append(out, groups[r])
	}
	return out
}
