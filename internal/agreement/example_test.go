package agreement_test

import (
	"fmt"

	"repro/internal/agreement"
)

// The paper's Figure 3: A (1000 u/s) grants B [0.4, 0.6]; B (1500 u/s)
// grants C [0.6, 1.0]. Folding the chain yields each principal's final
// mandatory and optional resource levels.
func Example() {
	s := agreement.New()
	a := s.MustAddPrincipal("A", 1000)
	b := s.MustAddPrincipal("B", 1500)
	c := s.MustAddPrincipal("C", 0)
	s.MustSetAgreement(a, b, 0.4, 0.6)
	s.MustSetAgreement(b, c, 0.6, 1.0)

	acc, err := s.SystemAccess()
	if err != nil {
		panic(err)
	}
	for _, p := range []agreement.Principal{a, b, c} {
		fmt.Printf("%s: mandatory %.0f, optional %.0f\n", s.Name(p), acc.MC[p], acc.OC[p])
	}
	// Output:
	// A: mandatory 600, optional 400
	// B: mandatory 760, optional 1340
	// C: mandatory 1140, optional 960
}

// Capacity changes re-scale entitlements without re-walking the agreement
// graph: flows are capacity independent.
func ExampleFlows_Access() {
	s := agreement.New()
	a := s.MustAddPrincipal("A", 100)
	b := s.MustAddPrincipal("B", 0)
	s.MustSetAgreement(a, b, 0.3, 0.3)

	flows, err := s.Flows()
	if err != nil {
		panic(err)
	}
	for _, v := range []float64{100, 50} { // A's server degrades
		acc, err := flows.Access([]float64{v, 0})
		if err != nil {
			panic(err)
		}
		fmt.Printf("V=%v: B guaranteed %.0f\n", v, acc.MC[b])
	}
	// Output:
	// V=100: B guaranteed 30
	// V=50: B guaranteed 15
}
