package agreement

import (
	"fmt"
	"sort"
)

// Flows holds the capacity-independent path sums of Figure 5, precomputed so
// that entitlements under any capacity vector are a cheap scaling (the paper:
// "MI and OI can be rewritten as V_j × MT_ji and V_j × OT_ji where MT and OT
// can be pre-computed").
//
// MT[k][i] is the unit-capacity gross mandatory flow from owner k into
// principal i's currency: the sum over simple paths k⇝i of the product of
// lower bounds along the path (MT[k][k] = 1 for the empty path).
//
// OT[k][i] is the unit-capacity optional inflow from k into i: the sum over
// simple paths of products with exactly one (ub−lb) optional hop followed by
// upper bounds (formula 2).
type Flows struct {
	n      int
	MT     [][]float64
	OT     [][]float64
	sumLB  []float64 // Σ_j lb_ij per principal i
	system *System
}

// maxPathExpansions bounds the simple-path enumeration. The paper argues the
// principal count "is expected to be small"; this guard turns a pathological
// dense graph into an error instead of an exponential hang.
const maxPathExpansions = 4_000_000

// Flows enumerates simple paths in the agreement graph and returns the
// precomputed MT/OT matrices. The result snapshots the agreement structure:
// later SetAgreement calls require recomputation (see RefoldFrom for the
// incremental form), while capacity changes do not (use Access with a fresh
// capacity vector).
func (s *System) Flows() (*Flows, error) {
	n := len(s.names)
	f := s.emptyFlows()
	w := &folder{f: f, adj: s.flowAdjacency(), visited: make([]bool, n)}
	for k := 0; k < n; k++ {
		if err := w.foldRow(k); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// RefoldFrom recomputes the path sums after a structural change confined to
// the given dirty owners — principals whose *outgoing* agreement edges were
// added, removed, or rebounded — reusing prev's rows for every unaffected
// source. Row k of MT/OT changes only if some simple path from k crosses a
// changed edge, and every changed edge originates at a dirty owner, so the
// affected sources are exactly those that can reach a dirty owner in the
// post-change graph (a removed edge leaves its owner dirty, so no source
// that used it is missed). Refold cost is proportional to the dirty paths,
// not the whole graph; the re-run rows accumulate in the same deterministic
// order as Flows, so refolded and from-scratch results are bit-identical.
//
// A nil prev (or a principal-count mismatch) degrades to a full Flows; an
// empty dirty set returns prev unchanged, since capacity changes never touch
// the path sums (§2.2).
func (s *System) RefoldFrom(prev *Flows, dirty []Principal) (*Flows, error) {
	n := len(s.names)
	if prev == nil || prev.n != n {
		return s.Flows()
	}
	if len(dirty) == 0 {
		return prev, nil
	}
	adj := s.flowAdjacency()
	rev := make([][]int, n)
	for o := range adj {
		for _, e := range adj[o] {
			rev[e.to] = append(rev[e.to], o)
		}
	}
	affected := make([]bool, n)
	queue := make([]int, 0, n)
	for _, d := range dirty {
		if !s.valid(d) {
			return nil, fmt.Errorf("%w: %d", ErrUnknown, int(d))
		}
		if !affected[d] {
			affected[d] = true
			queue = append(queue, int(d))
		}
	}
	for len(queue) > 0 {
		at := queue[0]
		queue = queue[1:]
		for _, src := range rev[at] {
			if !affected[src] {
				affected[src] = true
				queue = append(queue, src)
			}
		}
	}

	f := s.emptyFlows()
	w := &folder{f: f, adj: adj, visited: make([]bool, n)}
	for k := 0; k < n; k++ {
		if !affected[k] {
			copy(f.MT[k], prev.MT[k])
			copy(f.OT[k], prev.OT[k])
			continue
		}
		if err := w.foldRow(k); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// emptyFlows allocates a Flows shell with the system's current sumLB vector
// (cheap; recomputed wholesale on every fold and refold).
func (s *System) emptyFlows() *Flows {
	n := len(s.names)
	f := &Flows{
		n:      n,
		MT:     newMatrix(n),
		OT:     newMatrix(n),
		sumLB:  make([]float64, n),
		system: s,
	}
	for i := 0; i < n; i++ {
		f.sumLB[i] = s.mandatoryOut(Principal(i))
	}
	return f
}

// flowEdge is one directed agreement edge in adjacency-list form.
type flowEdge struct {
	to     int
	lb, ub float64
}

// flowAdjacency builds the adjacency lists sorted by target principal, so
// floating-point path sums always accumulate in the same order: two folds of
// the same graph — full or incremental — are bit-identical. The control
// plane's reproducible-rollout guarantee relies on this.
func (s *System) flowAdjacency() [][]flowEdge {
	n := len(s.names)
	adj := make([][]flowEdge, n)
	for o := 0; o < n; o++ {
		for u, b := range s.edges[o] {
			adj[o] = append(adj[o], flowEdge{to: int(u), lb: b[0], ub: b[1]})
		}
		sort.Slice(adj[o], func(i, j int) bool { return adj[o][i].to < adj[o][j].to })
	}
	return adj
}

// folder runs the Figure-5 simple-path enumeration for one fold (or refold),
// carrying the expansion budget across rows.
type folder struct {
	f          *Flows
	adj        [][]flowEdge
	visited    []bool
	expansions int
}

// foldRow computes MT[k]/OT[k] from scratch.
func (w *folder) foldRow(k int) error {
	w.f.MT[k][k] = 1 // a currency always includes its own physical backing
	w.visited[k] = true
	err := w.dfs(k, k, 1, 0)
	w.visited[k] = false
	return err
}

// dfs walks simple paths from source k carrying two running products:
// mand = Π lb over the path so far, and opt = Σ over choices of the
// optional hop r of (Π_{<r} lb)·(ub_r−lb_r)·(Π_{>r} ub).
func (w *folder) dfs(k, at int, mand, opt float64) error {
	for _, e := range w.adj[at] {
		if w.visited[e.to] {
			continue
		}
		w.expansions++
		if w.expansions > maxPathExpansions {
			return fmt.Errorf("%w: more than %d path expansions", ErrTooManyPaths, maxPathExpansions)
		}
		nm := mand * e.lb
		no := opt*e.ub + mand*(e.ub-e.lb)
		w.f.MT[k][e.to] += nm
		w.f.OT[k][e.to] += no
		if nm == 0 && no == 0 {
			continue // nothing further can flow down this path
		}
		w.visited[e.to] = true
		if err := w.dfs(k, e.to, nm, no); err != nil {
			return err
		}
		w.visited[e.to] = false
	}
	return nil
}

func newMatrix(n int) [][]float64 {
	m := make([][]float64, n)
	flat := make([]float64, n*n)
	for i := range m {
		m[i], flat = flat[:n], flat[n:]
	}
	return m
}

// NumPrincipals reports the number of principals the flows were computed for.
func (f *Flows) NumPrincipals() int { return f.n }

// Access is the per-window entitlement structure consumed by the schedulers:
// who may place how much load on whose servers.
type Access struct {
	// MI[k][i] is i's mandatory entitlement on owner k's servers
	// (guaranteed even under overload). Σ_k MI[k][i] = MC[i].
	MI [][]float64
	// OI[k][i] is i's additional best-effort entitlement on owner k's
	// servers. Σ_k OI[k][i] = OC[i].
	OI [][]float64
	// MC[i] and OC[i] are the aggregate mandatory and optional request
	// processing rates of principal i (formulae 3 and 4).
	MC, OC []float64
	// Gross[i] is the gross mandatory value of i's currency (V_i plus all
	// mandatory inflow, before subtracting outflow) — the "1900" for B in
	// the paper's Figure 3 walkthrough.
	Gross []float64
}

// Access scales the precomputed path sums by the capacity vector V (indexed
// by Principal) into concrete entitlements.
//
// Derivation against Figure 5:
//
//	Gross_i = Σ_k V_k·MT[k][i]
//	MI_ki   = V_k·MT[k][i]·(1 − Σ_j lb_ij)        (leak factor, formula 3)
//	OI_ki   = V_k·(OT[k][i] + Σ_j lb_ij·MT[k][i]) (formula 4: optional inflow
//	          plus the mandatory value i granted away but may reclaim while
//	          its grantees leave it unused)
func (f *Flows) Access(v []float64) (*Access, error) {
	if len(v) != f.n {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrDimensionLength, len(v), f.n)
	}
	a := &Access{
		MI:    newMatrix(f.n),
		OI:    newMatrix(f.n),
		MC:    make([]float64, f.n),
		OC:    make([]float64, f.n),
		Gross: make([]float64, f.n),
	}
	for i := 0; i < f.n; i++ {
		leak := 1 - f.sumLB[i]
		if leak < 0 {
			leak = 0
		}
		for k := 0; k < f.n; k++ {
			gross := v[k] * f.MT[k][i]
			a.Gross[i] += gross
			mi := gross * leak
			oi := v[k]*f.OT[k][i] + f.sumLB[i]*gross
			a.MI[k][i] = mi
			a.OI[k][i] = oi
			a.MC[i] += mi
			a.OC[i] += oi
		}
	}
	return a, nil
}

// SystemAccess recomputes flows and entitlements in one step using the
// system's current capacities. Prefer caching Flows when only capacities
// change between windows.
func (s *System) SystemAccess() (*Access, error) {
	f, err := s.Flows()
	if err != nil {
		return nil, err
	}
	return f.Access(s.capacities)
}

// MultiAccess computes one Access per resource dimension for systems whose
// capacities are vectors (paper §3.1.1: "In case of multiple resource types,
// above quantities should be represented as vectors"). dims[d][p] is
// principal p's capacity in dimension d.
func (f *Flows) MultiAccess(dims [][]float64) ([]*Access, error) {
	out := make([]*Access, len(dims))
	for d, v := range dims {
		a, err := f.Access(v)
		if err != nil {
			return nil, fmt.Errorf("dimension %d: %w", d, err)
		}
		out[d] = a
	}
	return out, nil
}
