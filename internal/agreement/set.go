package agreement

import (
	"encoding/json"
	"fmt"
	"math"
)

// SetPrincipal is one principal's entry in a Set snapshot. A departed
// principal stays in the snapshot with zero capacity and no agreements, so
// Principal indices remain stable across every node applying the same set.
type SetPrincipal struct {
	Name     string  `json:"name"`
	Capacity float64 `json:"capacity"`
}

// Set is an immutable, monotonically versioned snapshot of the whole
// agreement state: the control plane produces one per accepted mutation and
// the combining tree distributes it to every redirector. Snapshots are
// self-contained (full state, not deltas), so a node that missed
// intermediate versions converges by applying only the newest one.
type Set struct {
	Version    uint64         `json:"version"`
	Principals []SetPrincipal `json:"principals"`
	Agreements []Agreement    `json:"agreements"`
}

// Snapshot captures the system's current principals and agreements as a Set
// stamped with the given version. The agreements are in the deterministic
// (owner, user) order of Agreements.
func (s *System) Snapshot(version uint64) *Set {
	set := &Set{Version: version, Principals: make([]SetPrincipal, len(s.names))}
	for i, name := range s.names {
		set.Principals[i] = SetPrincipal{Name: name, Capacity: s.capacities[i]}
	}
	set.Agreements = s.Agreements()
	return set
}

// Encode serializes the set for distribution (the combining-tree piggyback
// payload).
func (s *Set) Encode() ([]byte, error) { return json.Marshal(s) }

// DecodeSet parses a Set produced by Encode.
func DecodeSet(data []byte) (*Set, error) {
	var s Set
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("agreement: decode set: %w", err)
	}
	return &s, nil
}

// Clone returns a deep copy of the system. The control plane validates
// mutations against a clone before committing them to the live engine.
func (s *System) Clone() *System {
	c := &System{
		names:      append([]string(nil), s.names...),
		capacities: append([]float64(nil), s.capacities...),
		byName:     make(map[string]Principal, len(s.byName)),
		edges:      make([]map[Principal][2]float64, len(s.edges)),
	}
	for name, p := range s.byName {
		c.byName[name] = p
	}
	for o, m := range s.edges {
		if m == nil {
			continue
		}
		c.edges[o] = make(map[Principal][2]float64, len(m))
		for u, b := range m {
			c.edges[o][u] = b
		}
	}
	return c
}

// ApplySet reconciles the system in place with the snapshot: capacities are
// updated and the direct agreement edges are replaced wholesale. The
// principal universe is fixed — the set must name the same principals in the
// same order (join/leave are capacity and agreement changes over a
// pre-declared universe, keeping Principal indices stable fleet-wide). The
// whole set is validated before anything is mutated; on error the system is
// unchanged. On success it returns the owners whose outgoing agreements
// changed — the dirty set for RefoldFrom.
func (s *System) ApplySet(set *Set) ([]Principal, error) {
	n := len(s.names)
	if set == nil || len(set.Principals) != n {
		got := 0
		if set != nil {
			got = len(set.Principals)
		}
		return nil, fmt.Errorf("%w: set has %d principals, system has %d", ErrDimensionLength, got, n)
	}
	for i, p := range set.Principals {
		if p.Name != s.names[i] {
			return nil, fmt.Errorf("%w: set principal %d is %q, system has %q", ErrUnknown, i, p.Name, s.names[i])
		}
		if math.IsNaN(p.Capacity) || math.IsInf(p.Capacity, 0) || p.Capacity < 0 {
			return nil, fmt.Errorf("%w: %q has capacity %v", ErrBadCapacity, p.Name, p.Capacity)
		}
	}
	// Build and validate the desired edge maps before touching anything.
	desired := make([]map[Principal][2]float64, n)
	for _, a := range set.Agreements {
		if !s.valid(a.Owner) || !s.valid(a.User) {
			return nil, fmt.Errorf("%w: %d→%d", ErrUnknown, int(a.Owner), int(a.User))
		}
		if a.Owner == a.User {
			return nil, fmt.Errorf("%w: %s", ErrSelfAgreement, s.names[a.Owner])
		}
		if math.IsNaN(a.LB) || math.IsNaN(a.UB) || a.LB < 0 || a.UB < a.LB || a.UB > 1 {
			return nil, fmt.Errorf("%w: [%v, %v]", ErrBadBounds, a.LB, a.UB)
		}
		if a.LB == 0 && a.UB == 0 {
			continue // an explicit removal: simply absent from the desired state
		}
		if desired[a.Owner] == nil {
			desired[a.Owner] = make(map[Principal][2]float64)
		}
		desired[a.Owner][a.User] = [2]float64{a.LB, a.UB}
	}
	for o := 0; o < n; o++ {
		total := 0.0
		for _, b := range desired[o] {
			total += b[0]
		}
		if total > 1+1e-12 {
			return nil, fmt.Errorf("%w: %s would grant %.3f mandatorily", ErrOverCommitted, s.names[o], total)
		}
	}
	// Commit: capacities, then edges, collecting the dirty owners.
	for i, p := range set.Principals {
		s.capacities[i] = p.Capacity
	}
	var dirty []Principal
	for o := 0; o < n; o++ {
		if !edgesEqual(s.edges[o], desired[o]) {
			s.edges[o] = desired[o]
			dirty = append(dirty, Principal(o))
		}
	}
	return dirty, nil
}

func edgesEqual(a, b map[Principal][2]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for u, ba := range a {
		if bb, ok := b[u]; !ok || bb != ba {
			return false
		}
	}
	return true
}
