package agreement

import "fmt"

// TicketKind distinguishes the two ticket types of §2.3.
type TicketKind int

const (
	// Mandatory tickets carry the lower bound of an agreement: a guaranteed
	// reservation during overload.
	Mandatory TicketKind = iota
	// Optional tickets carry ub−lb: best-effort access beyond the guarantee.
	Optional
)

// String names the kind the way the paper labels tickets.
func (k TicketKind) String() string {
	if k == Mandatory {
		return "M-Ticket"
	}
	return "O-Ticket"
}

// Ticket is one transfer of rights from Issuer's currency to Holder,
// denominated in the issuing currency (Face is relative to the currency's
// face value) and carrying a real value derived from physical resources.
type Ticket struct {
	Kind   TicketKind
	Issuer Principal
	Holder Principal
	// Face is the ticket's face value under the issuing currency's face
	// (lb·face for mandatory, (ub−lb)·face for optional).
	Face float64
	// Real is the ticket's real value in resource units: mandatory tickets
	// are worth lb × the gross mandatory value of the issuing currency;
	// optional tickets additionally propagate the issuer's optional inflow
	// at the agreement's upper bound (the paper's O-Ticket4 computation).
	Real float64
}

// Currency is the valuation of one principal's currency: its final
// mandatory and optional values after all inflows and outflows, plus the
// tickets it has issued. This mirrors the worked example of Figure 3.
type Currency struct {
	Principal Principal
	Name      string
	Face      float64
	// Gross is V + all mandatory inflow (before outflow is subtracted).
	Gross float64
	// MandatoryValue is the currency's final mandatory value (MC).
	MandatoryValue float64
	// OptionalValue is the currency's final optional value (OC).
	OptionalValue float64
	Issued        []Ticket
}

// Currencies values every currency and ticket under the system's current
// capacities, using face value `face` for all currencies (the paper uses
// 100, making ticket faces read as percentages).
func (s *System) Currencies(face float64) ([]Currency, error) {
	faces := make([]float64, s.NumPrincipals())
	for i := range faces {
		faces[i] = face
	}
	return s.CurrenciesWithFaces(faces)
}

// CurrenciesWithFaces is Currencies with a per-currency face value — the
// §2.3 flexibility of inflating or deflating an individual currency.
// Ticket face values scale with their issuing currency's face; real values
// (and therefore enforcement) are invariant to the choice of faces.
func (s *System) CurrenciesWithFaces(faces []float64) ([]Currency, error) {
	if len(faces) != s.NumPrincipals() {
		return nil, fmt.Errorf("%w: %d faces for %d principals", ErrDimensionLength, len(faces), s.NumPrincipals())
	}
	f, err := s.Flows()
	if err != nil {
		return nil, err
	}
	acc, err := f.Access(s.capacities)
	if err != nil {
		return nil, err
	}
	// True optional inflow into each currency (excluding the reclaimable
	// mandatory outflow), needed to value optional tickets.
	optIn := make([]float64, f.n)
	for i := 0; i < f.n; i++ {
		for k := 0; k < f.n; k++ {
			optIn[i] += s.capacities[k] * f.OT[k][i]
		}
	}

	out := make([]Currency, f.n)
	for i := 0; i < f.n; i++ {
		c := Currency{
			Principal:      Principal(i),
			Name:           s.names[i],
			Face:           faces[i],
			Gross:          acc.Gross[i],
			MandatoryValue: acc.MC[i],
			OptionalValue:  acc.OC[i],
		}
		for _, a := range s.Agreements() {
			if a.Owner != Principal(i) {
				continue
			}
			if a.LB > 0 {
				c.Issued = append(c.Issued, Ticket{
					Kind: Mandatory, Issuer: a.Owner, Holder: a.User,
					Face: a.LB * faces[i],
					Real: a.LB * acc.Gross[i],
				})
			}
			if a.UB > a.LB {
				c.Issued = append(c.Issued, Ticket{
					Kind: Optional, Issuer: a.Owner, Holder: a.User,
					Face: (a.UB - a.LB) * faces[i],
					Real: (a.UB-a.LB)*acc.Gross[i] + a.UB*optIn[i],
				})
			}
		}
		out[i] = c
	}
	return out, nil
}

// String renders a currency in the style of the paper's Figure 3 discussion.
func (c Currency) String() string {
	return fmt.Sprintf("Currency %s (face %g): gross=%g final=(%g, %g), %d tickets issued",
		c.Name, c.Face, c.Gross, c.MandatoryValue, c.OptionalValue, len(c.Issued))
}
