package agreement

import (
	"math/rand"
	"testing"
)

// randomSystem builds a deterministic pseudo-random agreement graph with
// per-owner mandatory totals kept under 1.
func randomSystem(t *testing.T, rng *rand.Rand, n int) *System {
	t.Helper()
	s := New()
	for i := 0; i < n; i++ {
		s.MustAddPrincipal(string(rune('A'+i)), 100+10*float64(i))
	}
	granted := make([]float64, n)
	for o := 0; o < n; o++ {
		for u := 0; u < n; u++ {
			if o == u || rng.Float64() < 0.5 {
				continue
			}
			lb := rng.Float64() * (0.9 - granted[o]) / float64(n)
			if lb < 0 {
				lb = 0
			}
			ub := lb + rng.Float64()*(1-lb)
			if ub > 1 {
				ub = 1
			}
			if lb == 0 && ub == 0 {
				continue
			}
			s.MustSetAgreement(Principal(o), Principal(u), lb, ub)
			granted[o] += lb
		}
	}
	return s
}

func sameFlows(a, b *Flows) bool {
	if a.n != b.n {
		return false
	}
	for k := 0; k < a.n; k++ {
		for i := 0; i < a.n; i++ {
			if a.MT[k][i] != b.MT[k][i] || a.OT[k][i] != b.OT[k][i] {
				return false
			}
		}
	}
	for i := 0; i < a.n; i++ {
		if a.sumLB[i] != b.sumLB[i] {
			return false
		}
	}
	return true
}

// TestRefoldFromMatchesFullFold is the differential check behind the
// incremental control-plane refold: after any single-owner edge mutation,
// RefoldFrom must be bit-identical to a from-scratch Flows.
func TestRefoldFromMatchesFullFold(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(5)
		s := randomSystem(t, rng, n)
		prev, err := s.Flows()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Mutate one owner: re-bound, add, or remove an edge.
		o := Principal(rng.Intn(n))
		u := Principal((int(o) + 1 + rng.Intn(n-1)) % n)
		var lb, ub float64
		switch rng.Intn(3) {
		case 0: // remove
			lb, ub = 0, 0
		default:
			lb = rng.Float64() * 0.2
			ub = lb + rng.Float64()*(1-lb)
		}
		if err := s.SetAgreement(o, u, lb, ub); err != nil {
			continue // overcommitted draw; the mutation was rejected, nothing changed
		}
		inc, err := s.RefoldFrom(prev, []Principal{o})
		if err != nil {
			t.Fatalf("trial %d: refold: %v", trial, err)
		}
		full, err := s.Flows()
		if err != nil {
			t.Fatalf("trial %d: full fold: %v", trial, err)
		}
		if !sameFlows(inc, full) {
			t.Fatalf("trial %d: incremental refold diverges from full fold\nsystem: %v", trial, s)
		}
	}
}

// TestRefoldFromReusesCleanRows pins the incremental property: sources that
// cannot reach the dirty owner keep their exact row backing arrays.
func TestRefoldFromReusesCleanRows(t *testing.T) {
	s := New()
	a := s.MustAddPrincipal("A", 100)
	b := s.MustAddPrincipal("B", 100)
	c := s.MustAddPrincipal("C", 100)
	d := s.MustAddPrincipal("D", 100)
	s.MustSetAgreement(a, b, 0.2, 0.5) // A→B
	s.MustSetAgreement(c, d, 0.3, 0.6) // C→D, disconnected from A's component
	prev, err := s.Flows()
	if err != nil {
		t.Fatal(err)
	}
	newLB, newUB := 0.1, 0.4
	s.MustSetAgreement(a, b, newLB, newUB)
	inc, err := s.RefoldFrom(prev, []Principal{a})
	if err != nil {
		t.Fatal(err)
	}
	// C cannot reach A, so its row must be copied verbatim.
	if inc.MT[c][d] != prev.MT[c][d] || inc.OT[c][d] != prev.OT[c][d] {
		t.Fatalf("clean row changed: MT %v→%v", prev.MT[c], inc.MT[c])
	}
	// A's own row must reflect the new bounds.
	if inc.MT[a][b] != newLB || inc.OT[a][b] != newUB-newLB {
		t.Fatalf("dirty row not refolded: MT[a][b]=%v OT[a][b]=%v", inc.MT[a][b], inc.OT[a][b])
	}
	// Empty dirty set (capacity-only change) returns prev itself.
	same, err := s.RefoldFrom(inc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if same != inc {
		t.Fatal("empty dirty set should return prev unchanged")
	}
}

// TestSetRoundTrip checks Snapshot → Encode → DecodeSet → ApplySet
// reproduces the source system exactly on a same-universe clone.
func TestSetRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	src := randomSystem(t, rng, 5)
	set := src.Snapshot(42)
	data, err := set.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSet(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 42 {
		t.Fatalf("version %d, want 42", got.Version)
	}

	dst := randomSystem(t, rand.New(rand.NewSource(99)), 5) // same names, different edges
	dirty, err := dst.ApplySet(got)
	if err != nil {
		t.Fatal(err)
	}
	if src.String() != dst.String() {
		t.Fatalf("apply did not reproduce the source:\nsrc: %v\ndst: %v", src, dst)
	}
	// Applying the same set again is a no-op with no dirty owners.
	dirty, err = dst.ApplySet(got)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirty) != 0 {
		t.Fatalf("idempotent re-apply dirtied %v", dirty)
	}
}

// TestApplySetValidation checks the all-or-nothing contract: a bad set must
// leave the system untouched.
func TestApplySetValidation(t *testing.T) {
	s := New()
	s.MustAddPrincipal("A", 100)
	s.MustAddPrincipal("B", 200)
	s.MustSetAgreement(0, 1, 0.2, 0.5)
	before := s.String()

	cases := []*Set{
		nil,
		{Principals: []SetPrincipal{{Name: "A", Capacity: 1}}},                                                                                           // wrong count
		{Principals: []SetPrincipal{{Name: "A", Capacity: 1}, {Name: "X", Capacity: 1}}},                                                                 // wrong name
		{Principals: []SetPrincipal{{Name: "A", Capacity: -1}, {Name: "B", Capacity: 1}}},                                                                // bad capacity
		{Principals: []SetPrincipal{{Name: "A", Capacity: 1}, {Name: "B", Capacity: 1}}, Agreements: []Agreement{{Owner: 0, User: 0, LB: 0.1, UB: 0.2}}}, // self edge
		{Principals: []SetPrincipal{{Name: "A", Capacity: 1}, {Name: "B", Capacity: 1}}, Agreements: []Agreement{{Owner: 0, User: 1, LB: 0.9, UB: 0.8}}}, // bad bounds
		{Principals: []SetPrincipal{{Name: "A", Capacity: 1}, {Name: "B", Capacity: 1}}, Agreements: []Agreement{{Owner: 0, User: 5, LB: 0.1, UB: 0.2}}}, // unknown user
	}
	for i, set := range cases {
		if _, err := s.ApplySet(set); err == nil {
			t.Fatalf("case %d: bad set accepted", i)
		}
		if s.String() != before {
			t.Fatalf("case %d: system mutated by rejected set", i)
		}
	}
}

// TestCloneIsDeep checks mutations of a clone never leak back.
func TestCloneIsDeep(t *testing.T) {
	s := New()
	a := s.MustAddPrincipal("A", 100)
	b := s.MustAddPrincipal("B", 200)
	s.MustSetAgreement(a, b, 0.2, 0.5)
	c := s.Clone()
	c.MustSetAgreement(a, b, 0.4, 0.9)
	if err := c.SetCapacity(b, 999); err != nil {
		t.Fatal(err)
	}
	if lb, ub, _ := s.AgreementBetween(a, b); lb != 0.2 || ub != 0.5 {
		t.Fatalf("clone edge mutation leaked: [%v,%v]", lb, ub)
	}
	if s.Capacity(b) != 200 {
		t.Fatalf("clone capacity mutation leaked: %v", s.Capacity(b))
	}
	if p, ok := c.Lookup("B"); !ok || p != b {
		t.Fatal("clone lost name index")
	}
}
