// Package treenet carries combining-tree messages between redirector
// processes over TCP, one JSON-encoded message per connection. It is the
// wide-area transport behind the real Layer-7/Layer-4 redirectors; the
// virtual-time harness uses internal/simnet instead.
//
// Delivery is best effort, exactly like the paper's scheme assumes: a lost
// report only means the parent aggregates slightly staler data for one
// epoch.
package treenet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/combining"
)

// Spec describes one node's place in a combining tree of redirector
// processes, plus the transport addresses of its peers. Both the Layer-7
// and Layer-4 redirectors take a Spec to join a tree.
type Spec struct {
	NodeID   combining.NodeID
	Parent   combining.NodeID // -1 for the root
	Children []combining.NodeID
	Peers    map[combining.NodeID]string
	// ListenAddr is the tree transport bind address (default 127.0.0.1:0).
	ListenAddr string
}

// Handler receives decoded tree messages. It is called from connection
// goroutines: implementations must synchronize access to the combining
// node.
type Handler func(from combining.NodeID, msg interface{})

type envelope struct {
	From  int                 `json:"from"`
	Kind  string              `json:"kind"` // "report" or "broadcast"
	Epoch int                 `json:"epoch"`
	Agg   combining.Aggregate `json:"agg"`
}

// Transport is one node's endpoint.
type Transport struct {
	self    combining.NodeID
	ln      net.Listener
	handler Handler

	mu     sync.Mutex
	peers  map[combining.NodeID]string
	closed bool

	// SendErrors counts messages dropped because a peer was unreachable or
	// unknown.
	sendErrors int
	wg         sync.WaitGroup
}

// Listen starts a transport for node self on addr (use "127.0.0.1:0" for an
// ephemeral port) and dispatches inbound messages to handler.
func Listen(self combining.NodeID, addr string, handler Handler) (*Transport, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("treenet: listen %s: %w", addr, err)
	}
	t := &Transport{
		self:    self,
		ln:      ln,
		handler: handler,
		peers:   make(map[combining.NodeID]string),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the transport's bound address for peer configuration.
func (t *Transport) Addr() string { return t.ln.Addr().String() }

// SetPeer registers (or updates) the address of a tree neighbor.
func (t *Transport) SetPeer(id combining.NodeID, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[id] = addr
}

// SendErrors reports how many sends were dropped so far.
func (t *Transport) SendErrors() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sendErrors
}

func (t *Transport) dropSend() {
	t.mu.Lock()
	t.sendErrors++
	t.mu.Unlock()
}

// Send transmits a combining.Report or combining.Broadcast to a peer. It
// satisfies combining.SendFunc and never blocks the caller beyond a dial
// timeout; failures are counted, not returned.
func (t *Transport) Send(to combining.NodeID, msg interface{}) {
	t.mu.Lock()
	addr, ok := t.peers[to]
	closed := t.closed
	t.mu.Unlock()
	if !ok || closed {
		t.dropSend()
		return
	}
	env := envelope{From: int(t.self)}
	switch m := msg.(type) {
	case combining.Report:
		env.Kind, env.Epoch, env.Agg = "report", m.Epoch, m.Agg
	case combining.Broadcast:
		env.Kind, env.Epoch, env.Agg = "broadcast", m.Epoch, m.Agg
	default:
		t.dropSend()
		return
	}
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			t.dropSend()
			return
		}
		defer conn.Close()
		_ = conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
		if err := json.NewEncoder(conn).Encode(env); err != nil {
			t.dropSend()
		}
	}()
}

func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			defer conn.Close()
			_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
			var env envelope
			if err := json.NewDecoder(conn).Decode(&env); err != nil {
				return
			}
			var msg interface{}
			switch env.Kind {
			case "report":
				msg = combining.Report{Epoch: env.Epoch, Agg: env.Agg}
			case "broadcast":
				msg = combining.Broadcast{Epoch: env.Epoch, Agg: env.Agg}
			default:
				return
			}
			t.handler(combining.NodeID(env.From), msg)
		}()
	}
}

// Close shuts the listener down and waits for in-flight handlers and sends.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	err := t.ln.Close()
	t.wg.Wait()
	return err
}
