// Package treenet carries combining-tree messages between redirector
// processes over TCP. It is the wide-area transport behind the real
// Layer-7/Layer-4 redirectors; the virtual-time harness uses internal/simnet
// instead.
//
// Each peer gets one persistent connection fed by a bounded send queue and a
// single writer goroutine: a Send never blocks the window loop and never
// spawns a goroutine, a broken connection is redialed with exponential
// backoff, and a slow or dead peer costs at most the queue's buffered
// messages. Delivery stays best effort, exactly like the paper's scheme
// assumes: a lost report only means the parent aggregates slightly staler
// data for one epoch.
package treenet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/combining"
	"repro/internal/topology"
)

const (
	// sendQueueDepth bounds in-flight messages per peer; the window loop
	// produces one report per epoch, so depth buys many epochs of outage.
	sendQueueDepth = 128
	dialTimeout    = 2 * time.Second
	writeTimeout   = 2 * time.Second
	// idleTimeout closes inbound connections with no traffic; peers redial
	// transparently.
	idleTimeout = 60 * time.Second
	// backoffBase/backoffMax bound the redial schedule of a peer writer.
	backoffBase = 50 * time.Millisecond
	backoffMax  = 2 * time.Second
)

// Spec describes one node's place in a combining tree of redirector
// processes, plus the transport addresses of its peers. Both the Layer-7
// and Layer-4 redirectors take a Spec to join a tree.
type Spec struct {
	NodeID   combining.NodeID
	Parent   combining.NodeID // -1 for the root
	Children []combining.NodeID
	Peers    map[combining.NodeID]string
	// ListenAddr is the tree transport bind address (default 127.0.0.1:0).
	ListenAddr string
	// Members lists every tree node id. When set (with Fanout), the
	// redirector can rebuild the topology locally after a peer failure; see
	// Reparenter.
	Members []combining.NodeID
	// Fanout is the tree fan-out Members was laid out with (default 2).
	Fanout int
	// FailureTimeout is how long a tree neighbor may stay silent before the
	// node re-parents around it (0 disables failure detection).
	FailureTimeout time.Duration
	// Topology, when set, supersedes Members/Fanout: the node takes its
	// placement (and its failure repairs) from the hierarchical plane
	// compiled from this spec instead of the flat BuildTree layout.
	Topology *topology.Spec
}

// Handler receives decoded tree messages. tree is the component-tree index
// the sender tagged the frame with (0 on a single flat tree). It is called
// from connection goroutines: implementations must synchronize access to
// the combining node or forest.
type Handler func(tree int, from combining.NodeID, msg interface{})

type envelope struct {
	From int    `json:"from"`
	Kind string `json:"kind"` // "report", "broadcast", or "rejoin"
	// Tree is the component-tree index sharing this transport (see
	// combining.Forest); 0 for a flat single-tree plane.
	Tree  int                 `json:"tree,omitempty"`
	Epoch int                 `json:"epoch"`
	Agg   combining.Aggregate `json:"agg"`
	// Delta replaces Agg when delta compression is enabled: the receiver
	// reconstructs the aggregate from its per-stream decoder state.
	Delta *combining.DeltaFrame `json:"delta,omitempty"`
	// Configuration piggyback (see combining.ConfigUpdate): reports carry
	// the acknowledged version, broadcasts the newest update.
	AckVersion uint64 `json:"ack_version,omitempty"`
	CfgVersion uint64 `json:"cfg_version,omitempty"`
	CfgGate    int    `json:"cfg_gate,omitempty"`
	CfgPayload []byte `json:"cfg_payload,omitempty"`
}

// peer is one neighbor's outbound state: an address, a bounded queue, and a
// writer goroutine that owns the connection.
type peer struct {
	id combining.NodeID
	ch chan envelope

	mu         sync.Mutex
	addr       string
	backoff    time.Duration
	nextDialAt time.Time
	everDialed bool
}

func (p *peer) address() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.addr
}

// Stats is a snapshot of the transport's health counters, exported through
// /metrics as the rsa_treenet_* series.
type Stats struct {
	// SendErrors counts messages dropped for any reason: unknown peer,
	// closed transport, full queue, failed dial or write.
	SendErrors int
	// QueueDrops counts the SendErrors caused by a full per-peer queue.
	QueueDrops int
	// Dials counts connections successfully established.
	Dials int
	// Reconnects counts successful dials beyond the first per peer — each
	// one is a connection that broke and was repaired.
	Reconnects int
	// PeersConnected is the current number of live outbound connections.
	PeersConnected int
	// DeadlineErrorsWrite counts SetWriteDeadline failures on outbound
	// connections; each one also disconnects the peer (a socket whose
	// deadline cannot be armed would otherwise write unbounded).
	DeadlineErrorsWrite int
	// DeadlineErrorsRead counts SetReadDeadline failures on inbound
	// connections; each one ends that read loop.
	DeadlineErrorsRead int
	// WriteTimeouts counts Encode failures classified as deadline expiry —
	// a live but stalled peer, distinguishable from outright peer death
	// (other write errors) in the failure-detector sense.
	WriteTimeouts int
	// Delta aggregates the delta-compression codec counters over every
	// per-(tree,peer) stream (zero when EnableDelta was never called).
	Delta combining.DeltaStats
}

// deltaKey identifies one directed delta stream: a component tree crossed
// with the far-end node.
type deltaKey struct {
	tree int
	node combining.NodeID
}

// Transport is one node's endpoint.
type Transport struct {
	self    combining.NodeID
	ln      net.Listener
	handler Handler

	mu     sync.Mutex
	peers  map[combining.NodeID]*peer
	closed bool
	stats  Stats

	// Delta compression state. Encoders compress outbound aggregates per
	// (tree, peer) stream; decoders rebuild inbound ones per (tree, from).
	// Guarded by deltaMu, never held together with mu.
	deltaMu     sync.Mutex
	deltaOn     bool
	deltaThresh float64
	deltaResync int
	encoders    map[deltaKey]*combining.DeltaEncoder
	decoders    map[deltaKey]*combining.DeltaDecoder

	stop chan struct{}
	wg   sync.WaitGroup
}

// Listen starts a transport for node self on addr (use "127.0.0.1:0" for an
// ephemeral port) and dispatches inbound messages to handler.
func Listen(self combining.NodeID, addr string, handler Handler) (*Transport, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("treenet: listen %s: %w", addr, err)
	}
	t := &Transport{
		self:    self,
		ln:      ln,
		handler: handler,
		peers:   make(map[combining.NodeID]*peer),
		stop:    make(chan struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the transport's bound address for peer configuration.
func (t *Transport) Addr() string { return t.ln.Addr().String() }

// SetPeer registers (or updates) the address of a tree neighbor. The peer's
// writer picks the new address up on its next (re)dial.
func (t *Transport) SetPeer(id combining.NodeID, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if p, ok := t.peers[id]; ok {
		p.mu.Lock()
		if p.addr != addr {
			p.addr = addr
			// New address: dial eagerly, the old backoff no longer applies.
			p.nextDialAt = time.Time{}
			p.backoff = backoffBase
		}
		p.mu.Unlock()
		return
	}
	p := &peer{id: id, ch: make(chan envelope, sendQueueDepth), addr: addr, backoff: backoffBase}
	t.peers[id] = p
	if !t.closed {
		t.wg.Add(1)
		go t.writeLoop(p)
	}
}

// SendErrors reports how many sends were dropped so far.
func (t *Transport) SendErrors() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats.SendErrors
}

// Stats returns a snapshot of the transport counters, including the delta
// codec counters folded over every stream.
func (t *Transport) Stats() Stats {
	t.mu.Lock()
	st := t.stats
	t.mu.Unlock()
	t.deltaMu.Lock()
	for _, enc := range t.encoders {
		st.Delta.Add(enc.Stats())
	}
	for _, dec := range t.decoders {
		st.Delta.Desyncs += dec.Desyncs()
	}
	t.deltaMu.Unlock()
	return st
}

func (t *Transport) dropSend() {
	t.mu.Lock()
	t.stats.SendErrors++
	t.mu.Unlock()
}

// EnableDelta turns on delta compression for outbound aggregates: an
// entry rides the wire only when a statistic moved by more than threshold
// (or went to zero) since the last transmission on that (tree, peer)
// stream, with a full-state resync every resyncEvery frames bounding the
// drift a dropped frame can cause. Call before traffic starts.
func (t *Transport) EnableDelta(threshold float64, resyncEvery int) {
	t.deltaMu.Lock()
	defer t.deltaMu.Unlock()
	t.deltaOn = true
	t.deltaThresh = threshold
	t.deltaResync = resyncEvery
	t.encoders = make(map[deltaKey]*combining.DeltaEncoder)
	t.decoders = make(map[deltaKey]*combining.DeltaDecoder)
}

// encodeDelta compresses agg for the (tree, to) stream, lazily creating
// (or re-sizing) the encoder. Returns nil when compression is off.
func (t *Transport) encodeDelta(tree int, to combining.NodeID, agg combining.Aggregate) *combining.DeltaFrame {
	t.deltaMu.Lock()
	defer t.deltaMu.Unlock()
	if !t.deltaOn {
		return nil
	}
	key := deltaKey{tree, to}
	enc := t.encoders[key]
	if enc == nil || len(agg.Sum) != enc.N() {
		enc = combining.NewDeltaEncoder(len(agg.Sum), t.deltaThresh, t.deltaResync)
		t.encoders[key] = enc
	}
	f := enc.Encode(agg)
	return &f
}

// decodeDelta reconstructs an inbound aggregate from the (tree, from)
// stream decoder. ok is false when the stream is desynced (the message
// must be dropped until a full frame arrives).
func (t *Transport) decodeDelta(tree int, from combining.NodeID, f *combining.DeltaFrame) (combining.Aggregate, bool) {
	t.deltaMu.Lock()
	defer t.deltaMu.Unlock()
	if t.decoders == nil {
		t.decoders = make(map[deltaKey]*combining.DeltaDecoder)
	}
	key := deltaKey{tree, from}
	dec := t.decoders[key]
	if dec == nil || (f.Full && f.N != dec.N()) {
		dec = combining.NewDeltaDecoder(f.N)
		t.decoders[key] = dec
	}
	return dec.Apply(*f)
}

// resetEncoders forces the next frame on every stream toward peer id to be
// a full resync — called after a reconnect, when the far end may have
// restarted and lost its decoder state.
func (t *Transport) resetEncoders(id combining.NodeID) {
	t.deltaMu.Lock()
	defer t.deltaMu.Unlock()
	for key, enc := range t.encoders {
		if key.node == id {
			enc.Reset()
		}
	}
}

// Send transmits a combining.Report, combining.Broadcast, or
// combining.Rejoin to a peer on tree 0. It satisfies combining.SendFunc
// and never blocks: the message is queued for the peer's writer goroutine,
// and dropped (counted) if the queue is full, the peer is unknown, or the
// transport is closed.
func (t *Transport) Send(to combining.NodeID, msg interface{}) {
	t.send(0, to, msg)
}

// TreeSend returns the SendFunc for one component tree: frames it produces
// are tagged with the tree index so the receiving forest can route them.
func (t *Transport) TreeSend(tree int) combining.SendFunc {
	return func(to combining.NodeID, msg interface{}) {
		t.send(tree, to, msg)
	}
}

func (t *Transport) send(tree int, to combining.NodeID, msg interface{}) {
	t.mu.Lock()
	p, ok := t.peers[to]
	closed := t.closed
	t.mu.Unlock()
	if !ok || closed {
		t.dropSend()
		return
	}
	env := envelope{From: int(t.self), Tree: tree}
	switch m := msg.(type) {
	case combining.Report:
		env.Kind, env.Epoch = "report", m.Epoch
		env.AckVersion = m.AckVersion
		if env.Delta = t.encodeDelta(tree, to, m.Agg); env.Delta == nil {
			env.Agg = m.Agg
		}
	case combining.Broadcast:
		env.Kind, env.Epoch = "broadcast", m.Epoch
		if env.Delta = t.encodeDelta(tree, to, m.Agg); env.Delta == nil {
			env.Agg = m.Agg
		}
		if m.Config != nil {
			env.CfgVersion = m.Config.Version
			env.CfgGate = m.Config.GateEpoch
			env.CfgPayload = m.Config.Payload
		}
	case combining.Rejoin:
		env.Kind, env.Epoch = "rejoin", m.Epoch
		env.AckVersion = m.AckVersion
	default:
		t.dropSend()
		return
	}
	select {
	case p.ch <- env:
	default:
		t.mu.Lock()
		t.stats.SendErrors++
		t.stats.QueueDrops++
		t.mu.Unlock()
	}
}

// writeLoop owns peer p's connection: it dials lazily on the first queued
// message, re-dials with exponential backoff after failures, and retries a
// message once on a stale connection (the peer may have restarted since the
// last write).
func (t *Transport) writeLoop(p *peer) {
	defer t.wg.Done()
	var conn net.Conn
	var enc *json.Encoder
	disconnect := func() {
		if conn != nil {
			conn.Close()
			conn, enc = nil, nil
			t.mu.Lock()
			t.stats.PeersConnected--
			t.mu.Unlock()
		}
	}
	defer disconnect()
	for {
		select {
		case <-t.stop:
			return
		case env := <-p.ch:
			sent := false
			for attempt := 0; attempt < 2 && !sent; attempt++ {
				if conn == nil && !t.redial(p, &conn, &enc) {
					break
				}
				if err := conn.SetWriteDeadline(time.Now().Add(writeTimeout)); err != nil {
					// A socket whose write deadline cannot be armed could
					// block the writer forever; treat it as dead.
					t.mu.Lock()
					t.stats.DeadlineErrorsWrite++
					t.mu.Unlock()
					disconnect()
					continue
				}
				if err := enc.Encode(env); err != nil {
					if errors.Is(err, os.ErrDeadlineExceeded) {
						t.mu.Lock()
						t.stats.WriteTimeouts++
						t.mu.Unlock()
					}
					disconnect()
					continue
				}
				sent = true
			}
			if !sent {
				t.dropSend()
			}
		}
	}
}

// redial establishes peer p's connection, respecting the backoff window. It
// reports whether conn is usable afterwards.
func (t *Transport) redial(p *peer, conn *net.Conn, enc **json.Encoder) bool {
	p.mu.Lock()
	addr := p.addr
	wait := !p.nextDialAt.IsZero() && time.Now().Before(p.nextDialAt)
	p.mu.Unlock()
	if wait {
		return false
	}
	c, err := net.DialTimeout("tcp", addr, dialTimeout)
	p.mu.Lock()
	if err != nil {
		p.nextDialAt = time.Now().Add(p.backoff)
		p.backoff *= 2
		if p.backoff > backoffMax {
			p.backoff = backoffMax
		}
		p.mu.Unlock()
		return false
	}
	p.backoff = backoffBase
	p.nextDialAt = time.Time{}
	again := p.everDialed
	p.everDialed = true
	p.mu.Unlock()

	*conn, *enc = c, json.NewEncoder(c)
	t.mu.Lock()
	t.stats.Dials++
	t.stats.PeersConnected++
	if again {
		t.stats.Reconnects++
	}
	t.mu.Unlock()
	if again {
		// The peer may have restarted and lost its decoder state: force a
		// full resync frame on every delta stream toward it.
		t.resetEncoders(p.id)
	}
	return true
}

func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

// readLoop decodes a stream of envelopes from one inbound connection until
// the peer hangs up, a decode fails, or the idle deadline expires.
func (t *Transport) readLoop(conn net.Conn) {
	defer t.wg.Done()
	done := make(chan struct{})
	defer close(done)
	defer conn.Close()
	t.wg.Add(1)
	go func() { // unblock the pending Read when the transport closes
		defer t.wg.Done()
		select {
		case <-t.stop:
			conn.Close()
		case <-done:
		}
	}()
	dec := json.NewDecoder(conn)
	for {
		if err := conn.SetReadDeadline(time.Now().Add(idleTimeout)); err != nil {
			t.mu.Lock()
			t.stats.DeadlineErrorsRead++
			t.mu.Unlock()
			return
		}
		var env envelope
		if err := dec.Decode(&env); err != nil {
			return
		}
		agg := env.Agg
		if env.Delta != nil {
			// Desynced stream: drop the message and wait for the sender's
			// next full frame — the tree just aggregates staler data for a
			// few epochs, exactly like a lost report.
			var ok bool
			if agg, ok = t.decodeDelta(env.Tree, combining.NodeID(env.From), env.Delta); !ok {
				continue
			}
		}
		var msg interface{}
		switch env.Kind {
		case "report":
			msg = combining.Report{Epoch: env.Epoch, Agg: agg, AckVersion: env.AckVersion}
		case "broadcast":
			b := combining.Broadcast{Epoch: env.Epoch, Agg: agg}
			if env.CfgVersion > 0 {
				b.Config = &combining.ConfigUpdate{
					Version:   env.CfgVersion,
					GateEpoch: env.CfgGate,
					Payload:   env.CfgPayload,
				}
			}
			msg = b
		case "rejoin":
			msg = combining.Rejoin{Epoch: env.Epoch, AckVersion: env.AckVersion}
		default:
			continue
		}
		t.handler(env.Tree, combining.NodeID(env.From), msg)
	}
}

// Close shuts the listener down, tears down peer connections, and waits for
// the writer and reader goroutines.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	close(t.stop)
	err := t.ln.Close()
	t.wg.Wait()
	return err
}
