package treenet

import (
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/combining"
	"repro/internal/topology"
)

// TestForestDeltaOverTCP runs a two-node, two-component forest over real
// TCP with delta compression on: component globals must reconstruct
// exactly at both ends, steady-state epochs must suppress entries, and a
// genuine move must still propagate.
func TestForestDeltaOverTCP(t *testing.T) {
	comps := [][]int{{0, 2}, {1}}
	forests := make([]*combining.Forest, 2)
	trs := make([]*Transport, 2)
	var mu sync.Mutex

	for i := 0; i < 2; i++ {
		i := i
		tr, err := Listen(combining.NodeID(i), "127.0.0.1:0", func(tree int, from combining.NodeID, msg interface{}) {
			mu.Lock()
			defer mu.Unlock()
			forests[i].OnMessage(tree, from, msg)
		})
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		tr.EnableDelta(0.5, 4)
		trs[i] = tr
	}
	trs[0].SetPeer(1, trs[1].Addr())
	trs[1].SetPeer(0, trs[0].Addr())
	now := func() time.Duration { return time.Duration(time.Now().UnixNano()) }
	mk := func(i int, parent combining.NodeID, children []combining.NodeID) *combining.Forest {
		f, err := combining.NewForest(combining.ForestConfig{
			ID: combining.NodeID(i), Parent: parent, Children: children,
			NumPrincipals: 3, Components: comps,
			Send: trs[i].TreeSend, Now: now,
		})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	forests[0] = mk(0, -1, []combining.NodeID{1})
	forests[1] = mk(1, 0, nil)

	mu.Lock()
	forests[1].SetLocal([]float64{5, 11, 20})
	mu.Unlock()
	tickUntil := func(want0, want1 float64) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			mu.Lock()
			forests[1].Tick()
			forests[0].Tick()
			g0, _, ok0 := forests[1].ComponentGlobal(0)
			g1, _, ok1 := forests[1].ComponentGlobal(1)
			mu.Unlock()
			if ok0 && ok1 && g0.Sum[0] == want0 && g1.Sum[0] == want1 {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("leaf never saw globals (%v, %v): got %v/%v ok=%v/%v", want0, want1, g0.Sum, g1.Sum, ok0, ok1)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	tickUntil(5, 11)

	// Steady state: many epochs with an unchanged vector must suppress
	// per-principal entries (delta frames go out near-empty).
	for i := 0; i < 20; i++ {
		mu.Lock()
		forests[1].Tick()
		forests[0].Tick()
		mu.Unlock()
		time.Sleep(2 * time.Millisecond)
	}
	st := trs[1].Stats()
	if st.Delta.Frames == 0 || st.Delta.EntriesSuppressed == 0 || st.Delta.BytesSaved == 0 {
		t.Fatalf("no delta suppression in steady state: %+v", st.Delta)
	}
	if st.Delta.FullFrames == 0 {
		t.Fatalf("no periodic resync frames: %+v", st.Delta)
	}

	// A real move must still propagate bit-exactly through the codec.
	mu.Lock()
	forests[1].SetLocal([]float64{7, 13, 20})
	mu.Unlock()
	tickUntil(7, 13)
}

// TestPlaneSubRootKillOverTCP kills a regional sub-root on a real-TCP
// hierarchical plane: the region's survivors must re-parent through the
// promoted member into the global tier — never sideways to a sibling leaf
// — and fresh globals must flow again.
func TestPlaneSubRootKillOverTCP(t *testing.T) {
	spec := topology.Spec{
		Regions: []topology.Region{
			{Name: "east", Members: []int{0, 1, 2}},
			{Name: "west", Members: []int{3, 4, 5}},
		},
		Fanout: 2,
	}
	plane, err := topology.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	ids := plane.Members()
	nodes := make(map[combining.NodeID]*combining.Node)
	trs := make(map[combining.NodeID]*Transport)
	reps := make(map[combining.NodeID]*PlaneReparenter)
	var mu sync.Mutex
	start := time.Now()
	now := func() time.Duration { return time.Since(start) }

	for _, id := range ids {
		id := id
		tr, err := Listen(id, "127.0.0.1:0", func(tree int, from combining.NodeID, msg interface{}) {
			mu.Lock()
			defer mu.Unlock()
			if n, ok := nodes[id]; ok {
				n.OnMessage(from, msg)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		trs[id] = tr
	}
	defer func() {
		for _, tr := range trs {
			tr.Close()
		}
	}()
	for _, id := range ids {
		for _, other := range ids {
			if id != other {
				trs[id].SetPeer(other, trs[other].Addr())
			}
		}
		pl, _ := plane.Placement(id)
		nodes[id] = combining.NewBuilder(id).Parent(pl.Parent).Children(pl.Children...).
			Transport(trs[id].Send).Clock(now).Build()
		rep, err := NewPlaneReparenter(id, spec, 300*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		reps[id] = rep
		nodes[id].SetLocal([]float64{float64(int(id) + 1)})
	}
	// Deepest placements tick first so reports land the same epoch.
	tick := func(live []combining.NodeID) {
		byDepth := append([]combining.NodeID(nil), live...)
		sort.Slice(byDepth, func(i, j int) bool {
			pi, _ := reps[byDepth[i]].Plane().Placement(byDepth[i])
			pj, _ := reps[byDepth[j]].Plane().Placement(byDepth[j])
			return pi.Level > pj.Level
		})
		mu.Lock()
		defer mu.Unlock()
		for _, id := range byDepth {
			nodes[id].Tick()
		}
		for _, id := range live {
			reps[id].Check(nodes[id], now())
		}
	}

	waitGlobal := func(at combining.NodeID, want float64, after time.Duration, live []combining.NodeID) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			tick(live)
			mu.Lock()
			g, ts, ok := nodes[at].Global()
			mu.Unlock()
			if ok && g.Sum[0] == want && ts > after {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %d never saw global %v (got %v ok=%v)", at, want, g.Sum, ok)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	waitGlobal(5, 21, 0, ids) // 1+2+…+6 across both regions

	// Kill the west sub-root (node 3).
	trs[3].Close()
	mu.Lock()
	delete(nodes, 3)
	mu.Unlock()
	survivors := []combining.NodeID{0, 1, 2, 4, 5}
	killedAt := now()

	// Post-repair sum drops node 3's contribution (21-4=17) and must reach
	// a west leaf again.
	waitGlobal(5, 17, killedAt, survivors)

	// The promoted west sub-root (4) must hang off the global tier, and its
	// sibling (5) must stay inside the region under it.
	if p := reps[4].Parent(); p != 0 {
		t.Fatalf("promoted sub-root parent = %d, want global root 0", p)
	}
	if p := reps[5].Parent(); p != 4 {
		t.Fatalf("west leaf parent = %d, want promoted sub-root 4", p)
	}
	pl4, _ := reps[4].Plane().Placement(4)
	if !pl4.SubRoot {
		t.Fatal("node 4 not marked sub-root after promotion")
	}
	if got := reps[4].Removed(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("removed = %v, want [3]", got)
	}
}
