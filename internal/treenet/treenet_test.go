package treenet

import (
	"sync"
	"testing"
	"time"

	"repro/internal/combining"
)

// collector is a thread-safe message sink.
type collector struct {
	mu   sync.Mutex
	msgs []interface{}
	from []combining.NodeID
}

func (c *collector) handle(tree int, from combining.NodeID, msg interface{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgs = append(c.msgs, msg)
	c.from = append(c.from, from)
}

func (c *collector) wait(t *testing.T, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		got := len(c.msgs)
		c.mu.Unlock()
		if got >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d messages", n)
}

func TestReportAndBroadcastRoundTrip(t *testing.T) {
	var c collector
	recv, err := Listen(1, "127.0.0.1:0", c.handle)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	send, err := Listen(0, "127.0.0.1:0", func(int, combining.NodeID, interface{}) {})
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	send.SetPeer(1, recv.Addr())

	agg := combining.FromLocal([]float64{3, 7})
	send.Send(1, combining.Report{Epoch: 4, Agg: agg})
	send.Send(1, combining.Broadcast{Epoch: 5, Agg: agg})
	c.wait(t, 2)

	c.mu.Lock()
	defer c.mu.Unlock()
	var gotReport, gotBroadcast bool
	for i, m := range c.msgs {
		if c.from[i] != 0 {
			t.Fatalf("from = %d", c.from[i])
		}
		switch v := m.(type) {
		case combining.Report:
			gotReport = true
			if v.Epoch != 4 || v.Agg.Sum[0] != 3 || v.Agg.Sum[1] != 7 || v.Agg.Count != 1 {
				t.Fatalf("report = %+v", v)
			}
		case combining.Broadcast:
			gotBroadcast = true
			if v.Epoch != 5 {
				t.Fatalf("broadcast = %+v", v)
			}
		}
	}
	if !gotReport || !gotBroadcast {
		t.Fatalf("kinds missing: report=%v broadcast=%v", gotReport, gotBroadcast)
	}
}

func TestSendToUnknownPeerCounted(t *testing.T) {
	tr, err := Listen(0, "127.0.0.1:0", func(int, combining.NodeID, interface{}) {})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.Send(9, combining.Report{})
	if tr.SendErrors() != 1 {
		t.Fatalf("SendErrors = %d", tr.SendErrors())
	}
	// Unknown message type also counted.
	tr.SetPeer(1, "127.0.0.1:1")
	tr.Send(1, "garbage")
	if tr.SendErrors() != 2 {
		t.Fatalf("SendErrors = %d", tr.SendErrors())
	}
}

func TestSendToDeadPeerCounted(t *testing.T) {
	tr, err := Listen(0, "127.0.0.1:0", func(int, combining.NodeID, interface{}) {})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	// A listener we immediately close: connection refused.
	dead, err := Listen(1, "127.0.0.1:0", func(int, combining.NodeID, interface{}) {})
	if err != nil {
		t.Fatal(err)
	}
	addr := dead.Addr()
	dead.Close()
	tr.SetPeer(1, addr)
	tr.Send(1, combining.Report{Agg: combining.FromLocal([]float64{1})})
	deadline := time.Now().Add(5 * time.Second)
	for tr.SendErrors() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if tr.SendErrors() == 0 {
		t.Fatal("dead peer send not counted")
	}
}

func TestCloseIsIdempotentAndStopsSends(t *testing.T) {
	tr, err := Listen(0, "127.0.0.1:0", func(int, combining.NodeID, interface{}) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	tr.SetPeer(1, "127.0.0.1:1")
	tr.Send(1, combining.Report{})
	if tr.SendErrors() == 0 {
		t.Fatal("send after close not dropped")
	}
}

// TestTreeOverTCP runs a real 3-node combining tree over loopback TCP.
func TestTreeOverTCP(t *testing.T) {
	const n = 3
	nodes := make([]*combining.Node, n)
	trs := make([]*Transport, n)
	var mu sync.Mutex // serializes all tree-node access

	for i := 0; i < n; i++ {
		i := i
		tr, err := Listen(combining.NodeID(i), "127.0.0.1:0", func(tree int, from combining.NodeID, msg interface{}) {
			mu.Lock()
			defer mu.Unlock()
			nodes[i].OnMessage(from, msg)
		})
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		trs[i] = tr
	}
	topo := combining.BuildTree([]combining.NodeID{0, 1, 2}, 2)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				trs[i].SetPeer(combining.NodeID(j), trs[j].Addr())
			}
		}
		nodes[i] = combining.NewBuilder(combining.NodeID(i)).Place(topo).Transport(trs[i].Send).
			Clock(func() time.Duration { return time.Duration(time.Now().UnixNano()) }).Build()
		nodes[i].SetLocal([]float64{float64((i + 1) * 10)})
	}
	// Run several epochs: leaves report, root broadcasts.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		nodes[1].Tick()
		nodes[2].Tick()
		nodes[0].Tick()
		g, _, ok := nodes[1].Global()
		mu.Unlock()
		if ok && g.Sum[0] == 60 {
			return // full aggregate visible at a leaf
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("leaf never saw the full global aggregate 60")
}
