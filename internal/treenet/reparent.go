package treenet

import (
	"sort"
	"sync"
	"time"

	"repro/internal/combining"
)

// TreeNode is the slice of combining.Node (or combining.Forest) a failure
// detector needs: observing neighbor silence and rewiring the placement.
type TreeNode interface {
	LastHeard(nb combining.NodeID) (time.Duration, bool)
	Reconfigure(parent combining.NodeID, children []combining.NodeID)
}

// Detector is a pluggable tree failure detector. Reparenter implements it
// over the flat BuildTree layout, PlaneReparenter over a hierarchical
// topology.Plane. Callers must never store a typed-nil concrete detector
// in a Detector variable — use an untyped nil instead.
type Detector interface {
	// Check inspects self's neighbors at time now and repairs the local
	// topology around a silent one; it reports whether a repair happened.
	Check(node TreeNode, now time.Duration) bool
	// Parent and Children return self's current placement.
	Parent() combining.NodeID
	Children() []combining.NodeID
	// Reparents counts repairs; Removed lists the pruned node ids.
	Reparents() int
	Removed() []combining.NodeID
}

// Reparenter is the failure detector that lets a real-TCP combining tree
// survive dead peers. Every node runs one, seeded with the full member list
// and fan-out, so each survivor holds the same deterministic topology
// (combining.BuildTree) and — on detecting a silent neighbor — independently
// computes the same repaired tree (combining.Topology.RemoveNode) and
// rewires its own combining.Node. No coordination protocol is needed: the
// rebuild is a pure function of (members, fanout, removed set), exactly like
// internal/sim's virtual-time failure handling.
//
// Detection is local: a node only prunes neighbors it can observe (parent
// and children) via combining.Node.LastHeard. If several nodes fail in ways
// only some survivors can see, topologies may diverge until the silent
// peers are observed locally; the paper's single-failure story (§3.2) is
// what this guarantees, and conservative MC/R claiming covers the gap.
type Reparenter struct {
	mu         sync.Mutex
	self       combining.NodeID
	fanout     int
	timeout    time.Duration
	topo       combining.Topology
	removed    map[combining.NodeID]bool
	graceUntil time.Duration
	started    bool
	reparents  int
}

// NewReparenter builds a detector for node self in a tree of members laid
// out by combining.BuildTree(members, fanout). timeout is how long a tree
// neighbor may stay silent before it is declared dead; detection is
// suppressed for one timeout after start and after every repair, giving new
// neighbors a chance to be heard from.
func NewReparenter(self combining.NodeID, members []combining.NodeID, fanout int, timeout time.Duration) *Reparenter {
	return &Reparenter{
		self:    self,
		fanout:  fanout,
		timeout: timeout,
		topo:    combining.BuildTree(members, fanout),
		removed: make(map[combining.NodeID]bool),
	}
}

// Parent returns self's current parent (-1 when self is the root).
func (r *Reparenter) Parent() combining.NodeID {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.topo.Parent[r.self]
}

// Children returns self's current children.
func (r *Reparenter) Children() []combining.NodeID {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]combining.NodeID(nil), r.topo.Children[r.self]...)
}

// Reparents reports how many times this node rewired itself.
func (r *Reparenter) Reparents() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reparents
}

// Removed returns the node ids this detector has pruned, ascending.
func (r *Reparenter) Removed() []combining.NodeID {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]combining.NodeID, 0, len(r.removed))
	for id := range r.removed {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Check inspects self's tree neighbors at time now (on the same clock the
// combining node's `now` callback uses) and, if one has been silent past
// the failure timeout, removes it from the local topology and reconfigures
// node. It reports whether a repair happened. Callers already serialize
// node access (the window loop); Check must run under that same lock.
func (r *Reparenter) Check(node TreeNode, now time.Duration) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.timeout <= 0 {
		return false
	}
	if !r.started {
		r.started = true
		r.graceUntil = now + r.timeout
	}
	if now < r.graceUntil {
		return false
	}
	neighbors := make([]combining.NodeID, 0, 1+len(r.topo.Children[r.self]))
	if p := r.topo.Parent[r.self]; p >= 0 {
		neighbors = append(neighbors, p)
	}
	neighbors = append(neighbors, r.topo.Children[r.self]...)

	var failed combining.NodeID = -1
	for _, nb := range neighbors {
		at, heard := node.LastHeard(nb)
		// A neighbor never heard from is measured from the end of the last
		// grace window; one heard from is measured from its last message.
		silentSince := r.graceUntil - r.timeout
		if heard && at > silentSince {
			silentSince = at
		}
		if now-silentSince > r.timeout {
			failed = nb
			break
		}
	}
	if failed < 0 {
		return false
	}
	r.topo = r.topo.RemoveNode(failed)
	r.removed[failed] = true
	r.graceUntil = now + r.timeout
	r.reparents++
	node.Reconfigure(r.topo.Parent[r.self], r.topo.Children[r.self])
	return true
}
