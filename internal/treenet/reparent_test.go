package treenet

import (
	"sync"
	"testing"
	"time"

	"repro/internal/combining"
)

// TestReconnectAfterPeerRestart kills a peer's listener mid-stream and
// restarts it on the same address; the persistent writer must re-dial and
// deliver again without a new Transport.
func TestReconnectAfterPeerRestart(t *testing.T) {
	var c collector
	recv, err := Listen(1, "127.0.0.1:0", c.handle)
	if err != nil {
		t.Fatal(err)
	}
	addr := recv.Addr()

	send, err := Listen(0, "127.0.0.1:0", func(int, combining.NodeID, interface{}) {})
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	send.SetPeer(1, addr)

	agg := combining.FromLocal([]float64{1})
	send.Send(1, combining.Report{Epoch: 1, Agg: agg})
	c.wait(t, 1)

	// Kill the receiver; the established connection breaks.
	if err := recv.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart on the same address and keep sending until a message lands:
	// the writer re-dials with backoff, so early sends may be dropped.
	recv2, err := Listen(1, addr, c.handle)
	if err != nil {
		t.Fatal(err)
	}
	defer recv2.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		send.Send(1, combining.Report{Epoch: 2, Agg: agg})
		c.mu.Lock()
		got := len(c.msgs)
		c.mu.Unlock()
		if got >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no delivery after peer restart")
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := send.Stats()
	if st.Dials < 2 || st.Reconnects < 1 {
		t.Fatalf("stats = %+v, want >=2 dials and >=1 reconnect", st)
	}
}

func TestQueueOverflowDropsNotBlocks(t *testing.T) {
	tr, err := Listen(0, "127.0.0.1:0", func(int, combining.NodeID, interface{}) {})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	// Peer address that never accepts: reserve a port and close it.
	dead, err := Listen(1, "127.0.0.1:0", func(int, combining.NodeID, interface{}) {})
	if err != nil {
		t.Fatal(err)
	}
	addr := dead.Addr()
	dead.Close()
	tr.SetPeer(1, addr)

	agg := combining.FromLocal([]float64{1})
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Far more sends than the queue holds: all must return immediately.
		for i := 0; i < sendQueueDepth*4; i++ {
			tr.Send(1, combining.Report{Epoch: i, Agg: agg})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Send blocked on a dead peer")
	}
	deadline := time.Now().Add(5 * time.Second)
	for tr.Stats().QueueDrops == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if st := tr.Stats(); st.QueueDrops == 0 || st.SendErrors < st.QueueDrops {
		t.Fatalf("stats = %+v, want queue drops counted in send errors", st)
	}
}

// treeRig is a 3-node combining tree over real TCP with reparenters.
type treeRig struct {
	mu    sync.Mutex
	nodes map[combining.NodeID]*combining.Node
	trs   map[combining.NodeID]*Transport
	reps  map[combining.NodeID]*Reparenter
	start time.Time
}

func (r *treeRig) now() time.Duration { return time.Since(r.start) }

func newTreeRig(t *testing.T, ids []combining.NodeID, timeout time.Duration) *treeRig {
	t.Helper()
	rig := &treeRig{
		nodes: make(map[combining.NodeID]*combining.Node),
		trs:   make(map[combining.NodeID]*Transport),
		reps:  make(map[combining.NodeID]*Reparenter),
		start: time.Now(),
	}
	topo := combining.BuildTree(ids, 2)
	for _, id := range ids {
		id := id
		tr, err := Listen(id, "127.0.0.1:0", func(tree int, from combining.NodeID, msg interface{}) {
			rig.mu.Lock()
			defer rig.mu.Unlock()
			if n, ok := rig.nodes[id]; ok {
				n.OnMessage(from, msg)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		rig.trs[id] = tr
	}
	for _, id := range ids {
		for _, other := range ids {
			if id != other {
				rig.trs[id].SetPeer(other, rig.trs[other].Addr())
			}
		}
		rig.nodes[id] = combining.NewBuilder(id).Place(topo).Transport(rig.trs[id].Send).Clock(rig.now).Build()
		rig.reps[id] = NewReparenter(id, ids, 2, timeout)
	}
	return rig
}

// tick runs one epoch on every live node (children before root so reports
// land the same epoch) and one failure-detector pass.
func (r *treeRig) tick(live []combining.NodeID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := len(live) - 1; i >= 0; i-- {
		r.nodes[live[i]].Tick()
	}
	for _, id := range live {
		r.reps[id].Check(r.nodes[id], r.now())
	}
}

// TestRootKillReparentsOverTCP kills the real-TCP tree root; the surviving
// children must detect the silence, independently promote the same new
// root, and resume exchanging fresh global aggregates — all without any
// process restart.
func TestRootKillReparentsOverTCP(t *testing.T) {
	ids := []combining.NodeID{0, 1, 2}
	rig := newTreeRig(t, ids, 300*time.Millisecond)
	defer func() {
		for _, tr := range rig.trs {
			tr.Close()
		}
	}()
	rig.mu.Lock()
	for _, id := range ids {
		rig.nodes[id].SetLocal([]float64{float64(10 * (int(id) + 1))})
	}
	rig.mu.Unlock()

	// Healthy phase: run epochs until a leaf sees the full aggregate 60.
	deadline := time.Now().Add(5 * time.Second)
	for {
		rig.tick(ids)
		rig.mu.Lock()
		g, _, ok := rig.nodes[1].Global()
		rig.mu.Unlock()
		if ok && g.Sum[0] == 60 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthy tree never converged to 60")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Kill the root (node 0): close its transport and stop ticking it.
	rig.trs[0].Close()
	rig.mu.Lock()
	delete(rig.nodes, 0)
	rig.mu.Unlock()
	survivors := []combining.NodeID{1, 2}

	// Survivors keep ticking; after FailureTimeout both must re-parent
	// (deterministically: node 1 becomes root, node 2 its child) and a fresh
	// global — now summing only 20+30 — must reach the new leaf.
	killedAt := rig.now()
	deadline = time.Now().Add(10 * time.Second)
	for {
		rig.tick(survivors)
		rig.mu.Lock()
		g, at, ok := rig.nodes[2].Global()
		rig.mu.Unlock()
		if ok && g.Sum[0] == 50 && at > killedAt {
			break
		}
		if time.Now().After(deadline) {
			rig.mu.Lock()
			g, at, ok := rig.nodes[2].Global()
			rig.mu.Unlock()
			t.Fatalf("no post-failure global at node 2: got %v (ok=%v, at=%v, killedAt=%v), reparents=%d/%d",
				g.Sum, ok, at, killedAt, rig.reps[1].Reparents(), rig.reps[2].Reparents())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if p := rig.reps[1].Parent(); p != -1 {
		t.Fatalf("node 1 parent = %d, want -1 (new root)", p)
	}
	if p := rig.reps[2].Parent(); p != 1 {
		t.Fatalf("node 2 parent = %d, want 1", p)
	}
	if rig.reps[1].Reparents() == 0 || rig.reps[2].Reparents() == 0 {
		t.Fatal("survivors never recorded a reparent")
	}
}
