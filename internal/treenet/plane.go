package treenet

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/combining"
	"repro/internal/topology"
)

// Wiring is a resolved Spec: the node's concrete placement plus the
// failure detector matching the layout. Plane is nil on a flat layout;
// Detector is nil when failure detection is disabled.
type Wiring struct {
	Parent   combining.NodeID
	Children []combining.NodeID
	Detector Detector
	// Plane returns the current (possibly repaired) hierarchical plane.
	Plane func() *topology.Plane
}

// Resolve turns the spec into concrete tree wiring. With a Topology the
// placement comes from the compiled hierarchical plane (superseding the
// flat Parent/Children/Members fields); otherwise the flat fields are used
// as before. The detector tracks the same layout so repairs and placement
// never diverge.
func (s *Spec) Resolve() (Wiring, error) {
	if s.Topology != nil {
		plane, err := topology.Compile(*s.Topology)
		if err != nil {
			return Wiring{}, err
		}
		pl, ok := plane.Placement(s.NodeID)
		if !ok {
			return Wiring{}, fmt.Errorf("treenet: node %d not in topology", s.NodeID)
		}
		w := Wiring{Parent: pl.Parent, Children: pl.Children, Plane: func() *topology.Plane { return plane }}
		if s.FailureTimeout > 0 {
			rep, err := NewPlaneReparenter(s.NodeID, *s.Topology, s.FailureTimeout)
			if err != nil {
				return Wiring{}, err
			}
			w.Detector = rep
			w.Plane = rep.Plane
		}
		return w, nil
	}
	w := Wiring{Parent: s.Parent, Children: s.Children}
	if s.FailureTimeout > 0 {
		members := s.Members
		if len(members) == 0 {
			members = append(members, s.NodeID)
			for id := range s.Peers {
				members = append(members, id)
			}
		}
		fanout := s.Fanout
		if fanout < 2 {
			fanout = 2
		}
		w.Detector = NewReparenter(s.NodeID, members, fanout, s.FailureTimeout)
	}
	return w, nil
}

// PlaneReparenter is the hierarchical counterpart of Reparenter: the same
// local silent-neighbor detection, but repairs recompile the declarative
// topology.Spec minus the removed set (topology.Plane.Remove) instead of
// pruning a flat BuildTree layout. Because the recompile is a pure
// function of (spec, removed set), every survivor that observes the same
// failure computes the same repaired plane — in particular, when a
// regional sub-root dies its region's survivors re-parent through the
// promoted member into the global tier, never sideways to a sibling leaf.
type PlaneReparenter struct {
	mu         sync.Mutex
	self       combining.NodeID
	timeout    time.Duration
	plane      *topology.Plane
	graceUntil time.Duration
	started    bool
	reparents  int
}

// NewPlaneReparenter builds a detector for node self over the plane
// compiled from spec. timeout is how long a tree neighbor may stay silent
// before it is declared dead (0 disables detection), with the same grace
// windows as Reparenter.
func NewPlaneReparenter(self combining.NodeID, spec topology.Spec, timeout time.Duration) (*PlaneReparenter, error) {
	plane, err := topology.Compile(spec)
	if err != nil {
		return nil, err
	}
	return &PlaneReparenter{self: self, timeout: timeout, plane: plane}, nil
}

// Plane returns the current (possibly repaired) compiled plane.
func (r *PlaneReparenter) Plane() *topology.Plane {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.plane
}

// Parent returns self's current parent (-1 at the global root).
func (r *PlaneReparenter) Parent() combining.NodeID {
	r.mu.Lock()
	defer r.mu.Unlock()
	if pl, ok := r.plane.Placement(r.self); ok {
		return pl.Parent
	}
	return -1
}

// Children returns self's current children.
func (r *PlaneReparenter) Children() []combining.NodeID {
	r.mu.Lock()
	defer r.mu.Unlock()
	if pl, ok := r.plane.Placement(r.self); ok {
		return append([]combining.NodeID(nil), pl.Children...)
	}
	return nil
}

// Reparents reports how many times this node rewired itself.
func (r *PlaneReparenter) Reparents() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reparents
}

// Removed returns the node ids this detector has pruned, ascending.
func (r *PlaneReparenter) Removed() []combining.NodeID {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.plane.Removed()
}

// Check inspects self's plane neighbors at time now and, if one has been
// silent past the failure timeout, recompiles the plane without it and
// reconfigures node to the repaired placement. Same locking contract as
// Reparenter.Check.
func (r *PlaneReparenter) Check(node TreeNode, now time.Duration) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.timeout <= 0 {
		return false
	}
	if !r.started {
		r.started = true
		r.graceUntil = now + r.timeout
	}
	if now < r.graceUntil {
		return false
	}
	pl, ok := r.plane.Placement(r.self)
	if !ok {
		return false
	}
	neighbors := make([]combining.NodeID, 0, 1+len(pl.Children))
	if pl.Parent >= 0 {
		neighbors = append(neighbors, pl.Parent)
	}
	neighbors = append(neighbors, pl.Children...)

	var failed combining.NodeID = -1
	for _, nb := range neighbors {
		at, heard := node.LastHeard(nb)
		silentSince := r.graceUntil - r.timeout
		if heard && at > silentSince {
			silentSince = at
		}
		if now-silentSince > r.timeout {
			failed = nb
			break
		}
	}
	if failed < 0 {
		return false
	}
	r.plane = r.plane.Remove(failed)
	r.graceUntil = now + r.timeout
	r.reparents++
	if repaired, ok := r.plane.Placement(r.self); ok {
		node.Reconfigure(repaired.Parent, repaired.Children)
	}
	return true
}
