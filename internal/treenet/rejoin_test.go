package treenet

import (
	"sync"
	"testing"
	"time"

	"repro/internal/combining"
)

// TestRejoinHandshakeOverTCP pins the crash-recovery handshake end to end
// over loopback TCP: a restarted leaf whose epoch counter rewound announces
// a rejoin, and the parent (a) resets its stale-report gate so the leaf's
// low-epoch reports are accepted again, and (b) immediately streams back
// the current global broadcast with the newest configuration — the leaf
// converges without waiting out an epoch round.
func TestRejoinHandshakeOverTCP(t *testing.T) {
	const n = 2 // node 0 = root/parent, node 1 = leaf
	nodes := make([]*combining.Node, n)
	trs := make([]*Transport, n)
	var mu sync.Mutex

	for i := 0; i < n; i++ {
		i := i
		tr, err := Listen(combining.NodeID(i), "127.0.0.1:0", func(tree int, from combining.NodeID, msg interface{}) {
			mu.Lock()
			defer mu.Unlock()
			nodes[i].OnMessage(from, msg)
		})
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		trs[i] = tr
	}
	trs[0].SetPeer(1, trs[1].Addr())
	trs[1].SetPeer(0, trs[0].Addr())
	now := func() time.Duration { return time.Duration(time.Now().UnixNano()) }
	nodes[0] = combining.NewBuilder(0).Children(1).Transport(trs[0].Send).Clock(now).Build()
	nodes[1] = combining.NewBuilder(1).Parent(0).Transport(trs[1].Send).Clock(now).Build()
	nodes[1].SetLocal([]float64{5})

	cfg := &combining.ConfigUpdate{Version: 3, GateEpoch: 9, Payload: []byte(`{"v":3}`)}
	mu.Lock()
	nodes[0].SetConfig(cfg)
	mu.Unlock()

	// Run epochs until the leaf holds the config and the root has its
	// report: the steady pre-crash state, with the root's child-epoch gate
	// well above zero.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		nodes[1].Tick()
		nodes[0].Tick()
		leafCfg := nodes[1].Config()
		acks := nodes[0].ChildConfigAcks()
		mu.Unlock()
		if leafCfg != nil && leafCfg.Version == 3 && acks[1] == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pre-crash convergence never happened")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Crash + restart the leaf process: the node restarts from durable
	// position epoch 0 with no config (a cold leaf; the durable set, if
	// any, would seed these). Without the handshake its epoch-1 reports
	// would be dropped by the root's stale gate forever.
	mu.Lock()
	nodes[1].Reset(0, nil)
	mu.Unlock()
	nodes[1].AnnounceRejoin()

	// The root's immediate reply must deliver global + config before the
	// leaf ever Ticks again.
	deadline = time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		_, _, haveGlobal := nodes[1].Global()
		leafCfg := nodes[1].Config()
		mu.Unlock()
		if haveGlobal && leafCfg != nil && leafCfg.Version == 3 && leafCfg.GateEpoch == 9 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("rejoin reply never delivered global + config to the leaf")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// And the leaf's fresh (low-epoch) reports must be aggregated again:
	// the root re-learns the leaf's contribution.
	nodes[1].SetLocal([]float64{42})
	deadline = time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		nodes[1].Tick()
		nodes[0].Tick()
		g, _, ok := nodes[0].Global()
		acks := nodes[0].ChildConfigAcks()
		mu.Unlock()
		if ok && g.Sum[0] == 42 && acks[1] == 3 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("root never re-aggregated the rejoined leaf's reports")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
