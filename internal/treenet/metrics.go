package treenet

import (
	"fmt"
	"io"

	"repro/internal/obs"
)

// WriteMetrics appends the rsa_treenet_* and rsa_tree_delta_* Prometheus
// series for one tree transport (and optional failure detector) to w.
// Either argument may be nil; both front-ends call this from their
// obs.Handler Extra callbacks — before this the transport's send errors
// were counted but unscrapeable.
func WriteMetrics(w io.Writer, t *Transport, det Detector) {
	if t == nil {
		return
	}
	st := t.Stats()
	obs.WriteMetric(w, "rsa_treenet_send_errors_total", "counter",
		"Tree messages dropped (unknown peer, full queue, failed dial or write).", float64(st.SendErrors))
	obs.WriteMetric(w, "rsa_treenet_queue_drops_total", "counter",
		"Tree messages dropped because a peer's send queue was full.", float64(st.QueueDrops))
	obs.WriteMetric(w, "rsa_treenet_dials_total", "counter",
		"Peer connections established.", float64(st.Dials))
	obs.WriteMetric(w, "rsa_treenet_reconnects_total", "counter",
		"Peer connections re-established after a break.", float64(st.Reconnects))
	obs.WriteMetric(w, "rsa_treenet_peers_connected", "gauge",
		"Live outbound peer connections.", float64(st.PeersConnected))
	fmt.Fprintf(w, "# HELP rsa_treenet_deadline_errors_total Socket deadline arming failures, by direction.\n")
	fmt.Fprintf(w, "# TYPE rsa_treenet_deadline_errors_total counter\n")
	fmt.Fprintf(w, "rsa_treenet_deadline_errors_total{op=\"read\"} %d\n", st.DeadlineErrorsRead)
	fmt.Fprintf(w, "rsa_treenet_deadline_errors_total{op=\"write\"} %d\n", st.DeadlineErrorsWrite)
	obs.WriteMetric(w, "rsa_treenet_write_timeouts_total", "counter",
		"Peer writes that failed with an expired deadline (stalled but live peer).", float64(st.WriteTimeouts))
	obs.WriteMetric(w, "rsa_tree_delta_frames_total", "counter",
		"Delta-compressed aggregate frames encoded.", float64(st.Delta.Frames))
	obs.WriteMetric(w, "rsa_tree_delta_full_frames_total", "counter",
		"Full-state resync frames among them.", float64(st.Delta.FullFrames))
	obs.WriteMetric(w, "rsa_tree_delta_entries_sent_total", "counter",
		"Per-principal entries transmitted on delta streams.", float64(st.Delta.EntriesSent))
	obs.WriteMetric(w, "rsa_tree_delta_entries_suppressed_total", "counter",
		"Per-principal entries withheld as under-threshold.", float64(st.Delta.EntriesSuppressed))
	obs.WriteMetric(w, "rsa_tree_delta_bytes_saved_total", "counter",
		"Estimated wire bytes avoided by delta suppression.", float64(st.Delta.BytesSaved))
	obs.WriteMetric(w, "rsa_tree_delta_desyncs_total", "counter",
		"Inbound delta streams that hit a sequence gap and waited for a resync.", float64(st.Delta.Desyncs))
	if det != nil {
		obs.WriteMetric(w, "rsa_treenet_reparents_total", "counter",
			"Times this node rewired itself around a silent tree neighbor.", float64(det.Reparents()))
	}
}
