// Lease operations: /v1/leases rides the same versioned, epoch-gated
// rollout machinery as agreement mutations. A grant sets the leased rate
// aside out of the owner's effective capacity (published fleet-wide as the
// next agreement-set version, so the window LP stops handing that capacity
// to siblings) and installs the same rate as dedicated per-window credit for
// the holder on the local engine. Revocation, expiry, and shrink reverse the
// set-aside through the identical path, which is what bounds reclaim: the
// restore set is gated Lead epochs ahead and swaps at the next window
// boundary, so the capacity is back in the shared pool within
// ReclaimBound() = Lead + 1 scheduling windows.
package ctrlplane

import (
	"fmt"

	"repro/internal/budget"
)

// GrantLease opens a lease of rate req/s from owner's capacity to holder for
// the given number of windows (0 = until revoked), publishes the owner's
// lowered effective capacity, and installs the holder's dedicated credit.
func (p *Plane) GrantLease(owner, holder string, rate float64, windows int) (budget.Lease, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.sys.Lookup(owner); !ok {
		return budget.Lease{}, fmt.Errorf("%w: unknown principal %q", ErrPlane, owner)
	}
	if _, ok := p.sys.Lookup(holder); !ok {
		return budget.Lease{}, fmt.Errorf("%w: unknown principal %q", ErrPlane, holder)
	}
	avail := p.nominalLocked(owner) - p.ledger.ReservedBy(owner)
	if rate > avail+1e-9 {
		return budget.Lease{}, fmt.Errorf("%w: lease rate %v exceeds %q's unreserved capacity %v",
			ErrPlane, rate, owner, avail)
	}
	ls, err := p.ledger.Grant(owner, holder, rate, windows)
	if err != nil {
		return budget.Lease{}, err
	}
	if err := p.reapplyLeasesLocked(owner); err != nil {
		_, _ = p.ledger.Revoke(ls.ID)
		return budget.Lease{}, err
	}
	p.log().Info("lease granted", "id", uint64(ls.ID), "owner", owner, "holder", holder,
		"rate", rate, "windows", windows, "version", p.version)
	return ls, nil
}

// RenewLease extends an active finite lease by the given number of windows.
// The reservation is unchanged, so nothing is republished — only the durable
// lease table advances.
func (p *Plane) RenewLease(id budget.LeaseID, windows int) (budget.Lease, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ls, err := p.ledger.Renew(id, windows)
	if err != nil {
		return budget.Lease{}, err
	}
	p.saveLeasesLocked()
	p.log().Info("lease renewed", "id", uint64(ls.ID), "windows", ls.Windows)
	return ls, nil
}

// ShrinkLease lowers an active lease's reserved rate (cooperative reclaim)
// and publishes the owner's partially restored capacity.
func (p *Plane) ShrinkLease(id budget.LeaseID, rate float64) (budget.Lease, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ls, err := p.ledger.Shrink(id, rate)
	if err != nil {
		return budget.Lease{}, err
	}
	if err := p.reapplyLeasesLocked(ls.Owner); err != nil {
		return budget.Lease{}, err
	}
	p.log().Info("lease shrunk", "id", uint64(ls.ID), "rate", rate, "version", p.version)
	return ls, nil
}

// RevokeLease forcibly terminates an active lease and publishes the owner's
// restored capacity — the §2.2 re-interpretation path, so the reclaimed
// capacity is enforceable fleet-wide within ReclaimBound() windows.
func (p *Plane) RevokeLease(id budget.LeaseID) (budget.Lease, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ls, err := p.ledger.Revoke(id)
	if err != nil {
		return budget.Lease{}, err
	}
	// The revocation itself is never rolled back: the reservation is gone
	// even if publishing the restored capacity fails here — the next lease
	// mutation recomputes the owner's capacity from the ledger and retries.
	if err := p.reapplyLeasesLocked(ls.Owner); err != nil {
		return ls, err
	}
	p.log().Info("lease revoked", "id", uint64(ls.ID), "owner", ls.Owner, "version", p.version)
	return ls, nil
}

// TickLeases advances every finite active lease by one scheduling window,
// releasing the reservations of any that expired (same path as revocation).
// Deployments drive it once per window from the goroutine that owns the
// control plane; deployments using only until-revoked leases may skip it.
func (p *Plane) TickLeases() ([]budget.Lease, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	expired := p.ledger.Tick()
	if len(expired) == 0 {
		return nil, nil
	}
	owners := make(map[string]bool)
	for _, ls := range expired {
		owners[ls.Owner] = true
	}
	for o := range owners {
		if err := p.reapplyLeasesLocked(o); err != nil {
			return expired, err
		}
		p.log().Info("lease expiry released capacity", "owner", o, "version", p.version)
	}
	return expired, nil
}

// Leases returns every lease (any state), sorted by id.
func (p *Plane) Leases() []budget.Lease {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ledger.List()
}

// LeaseTable snapshots the ledger at its current durable version.
func (p *Plane) LeaseTable() *budget.Table {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ledger.Snapshot(p.leaseVersion)
}

// ReclaimBound is the documented K-window reclaim bound: a revocation's
// restore set is gated Lead epochs past the current one and each redirector
// swaps at its next window boundary, so the reclaimed capacity is back in
// the shared pool within Lead+1 scheduling windows of the revoke call
// (assuming the tree advances one epoch per window; laggards beyond that run
// the conservative claim and cannot over-admit against the old capacity).
func (p *Plane) ReclaimBound() int { return p.lead + 1 }

// nominalLocked returns owner's pre-lease nominal capacity, capturing it on
// first use. The capture formula (current effective + currently reserved)
// is correct at any point — including right after a crash recovery, where
// the resumed agreement set already carries the set-asides. Callers hold
// p.mu.
func (p *Plane) nominalLocked(owner string) float64 {
	if v, ok := p.nominal[owner]; ok {
		return v
	}
	pr, _ := p.sys.Lookup(owner)
	v := p.sys.Capacity(pr) + p.ledger.ReservedBy(owner)
	p.nominal[owner] = v
	return v
}

// reapplyLeasesLocked recomputes owner's effective capacity from the ledger
// (nominal − reserved), publishes it as the next versioned set, refreshes
// the engine's lease-credit snapshot, and saves the durable lease table.
// Callers hold p.mu.
func (p *Plane) reapplyLeasesLocked(owner string) error {
	pr, ok := p.sys.Lookup(owner)
	if !ok {
		return fmt.Errorf("%w: unknown principal %q", ErrPlane, owner)
	}
	reserved := p.ledger.ReservedBy(owner)
	target := p.nominalLocked(owner) - reserved
	undo := p.sys.Snapshot(0)
	if err := p.sys.SetCapacity(pr, target); err != nil {
		return err
	}
	// Capacity-only change: the fold is capacity independent, no dirty owners.
	if _, err := p.publishLocked(undo, nil); err != nil {
		return err
	}
	if reserved == 0 {
		delete(p.nominal, owner) // fully restored; re-capture on next grant
	}
	p.pushLeaseCreditsLocked()
	p.saveLeasesLocked()
	return nil
}

// pushLeaseCreditsLocked installs the ledger's active leases as the local
// engine's lease-credit snapshot. The credit deposit is engine-local: in a
// multi-process deployment each control-plane host funds its own engine, and
// holders behind other redirectors receive only the published capacity side.
// Callers hold p.mu.
func (p *Plane) pushLeaseCreditsLocked() {
	if p.eng == nil {
		return
	}
	n := p.sys.NumPrincipals()
	var matrix [][]float64
	var total []float64
	for _, ls := range p.ledger.List() {
		if ls.State != budget.LeaseActive {
			continue
		}
		h, ok := p.sys.Lookup(ls.Holder)
		o, ok2 := p.sys.Lookup(ls.Owner)
		if !ok || !ok2 {
			continue
		}
		if matrix == nil {
			matrix = make([][]float64, n)
			for i := range matrix {
				matrix[i] = make([]float64, n)
			}
			total = make([]float64, n)
		}
		matrix[h][o] += ls.Rate
		total[h] += ls.Rate
	}
	if err := p.eng.SetLeaseCredits(matrix, total); err != nil {
		p.log().Warn("lease credit install failed", "err", err)
	}
}

// saveLeasesLocked advances the durable lease version and hands the snapshot
// to the SaveLeases hook. Callers hold p.mu.
func (p *Plane) saveLeasesLocked() {
	p.leaseVersion++
	if p.opt.SaveLeases != nil {
		p.opt.SaveLeases(p.ledger.Snapshot(p.leaseVersion))
	}
}
