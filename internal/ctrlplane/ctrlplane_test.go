package ctrlplane

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/agreement"
	"repro/internal/core"
)

func testEngine(t *testing.T) (*agreement.System, *core.Engine) {
	t.Helper()
	sys := agreement.New()
	a := sys.MustAddPrincipal("A", 320)
	b := sys.MustAddPrincipal("B", 320)
	sys.MustSetAgreement(b, a, 0.5, 0.5)
	eng, err := core.NewEngine(core.Config{
		Mode:   core.Community,
		System: sys,
		Window: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys, eng
}

func post(t *testing.T, srv *httptest.Server, path string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestPlaneRenegotiation drives the full admin path: a renegotiation over
// HTTP produces the next version, re-derives engine entitlements, and a
// rejected one changes nothing anywhere.
func TestPlaneRenegotiation(t *testing.T) {
	sys, eng := testEngine(t)
	plane, err := New(sys, eng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(plane.Handler())
	defer srv.Close()

	// Baseline: B grants A [0.5, 0.5] ⇒ MC_A = 480 req/s·window share.
	mcA := eng.Access().MC[0]

	resp := post(t, srv, "/v1/agreements", agreementJSON{Owner: "B", User: "A", LB: 0.25, UB: 0.25})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("renegotiation status %d", resp.StatusCode)
	}
	var vr struct {
		Version uint64 `json:"version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if vr.Version != 1 {
		t.Fatalf("version %d, want 1", vr.Version)
	}
	if got := eng.Access().MC[0]; got >= mcA {
		t.Fatalf("MC_A %v not reduced from %v after halving the grant", got, mcA)
	}
	if eng.LastSetVersion() != 1 {
		t.Fatalf("engine lastSet %d, want 1", eng.LastSetVersion())
	}

	// Invalid bounds: 400, version unchanged, entitlements unchanged.
	after := eng.Access().MC[0]
	resp = post(t, srv, "/v1/agreements", agreementJSON{Owner: "B", User: "A", LB: 0.9, UB: 0.1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad bounds status %d", resp.StatusCode)
	}
	resp.Body.Close()
	if plane.Version() != 1 || eng.Access().MC[0] != after {
		t.Fatal("rejected mutation leaked")
	}

	// Unknown principal: 400.
	resp = post(t, srv, "/v1/agreements", agreementJSON{Owner: "Z", User: "A", LB: 0.1, UB: 0.2})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown principal status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// DELETE removes the agreement entirely.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/agreements?owner=B&user=A", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", dresp.StatusCode)
	}
	dresp.Body.Close()
	if plane.Version() != 2 {
		t.Fatalf("version %d after delete, want 2", plane.Version())
	}

	// GET reflects the state.
	gresp, err := http.Get(srv.URL + "/v1/agreements")
	if err != nil {
		t.Fatal(err)
	}
	var st statusJSON
	if err := json.NewDecoder(gresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if st.Version != 2 || len(st.Agreements) != 0 || len(st.Principals) != 2 {
		t.Fatalf("status %+v", st)
	}
	if st.Rollout == nil || st.Rollout.SetVersion != 2 {
		t.Fatalf("rollout info %+v", st.Rollout)
	}
}

// TestPlaneJoinLeave exercises principal lifecycle over HTTP: a declared
// zero-capacity principal joins, shares capacity, then leaves again.
func TestPlaneJoinLeave(t *testing.T) {
	sys := agreement.New()
	a := sys.MustAddPrincipal("A", 320)
	c := sys.MustAddPrincipal("C", 0) // declared, not yet in service
	sys.MustSetAgreement(a, c, 0.2, 0.4)
	eng, err := core.NewEngine(core.Config{Mode: core.Community, System: sys, Window: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	plane, err := New(sys, eng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(plane.Handler())
	defer srv.Close()

	resp := post(t, srv, "/v1/principals/join", principalJSON{Name: "C", Capacity: 100})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join status %d", resp.StatusCode)
	}
	resp.Body.Close()
	if got := eng.Access().MC[1]; got <= 0 {
		t.Fatalf("C has no mandatory entitlement after join: %v", got)
	}

	resp = post(t, srv, "/v1/principals/leave", principalJSON{Name: "C"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("leave status %d", resp.StatusCode)
	}
	resp.Body.Close()
	acc := eng.Access()
	if acc.MC[1] != 0 || acc.OC[1] != 0 {
		t.Fatalf("C retains entitlements after leave: MC=%v OC=%v", acc.MC[1], acc.OC[1])
	}
	if plane.Version() != 2 {
		t.Fatalf("version %d, want 2", plane.Version())
	}

	resp = post(t, srv, "/v1/principals/join", principalJSON{Name: "Q", Capacity: 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown join status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestPlaneConcurrentMutators hammers the control plane from every direction
// at once — HTTP renegotiations, direct mutator calls, status reads, and
// parallel per-redirector window scheduling with epoch-gated rollouts in
// flight — and relies on -race to flag unsynchronized access (CI runs this
// package with the race detector on).
func TestPlaneConcurrentMutators(t *testing.T) {
	sys, eng := testEngine(t)
	var epoch atomic.Int64
	plane, err := New(sys, eng, Options{
		Lead:  2,
		Epoch: func() int { return int(epoch.Load()) },
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(plane.Handler())
	defer srv.Close()

	const iters = 100
	var wg sync.WaitGroup
	for id := 0; id < 2; id++ {
		r := eng.NewRedirector(id)
		wg.Add(1)
		go func(id int, r *core.Redirector) {
			defer wg.Done()
			global := []float64{40, 40}
			for w := 1; w <= iters; w++ {
				now := time.Duration(w) * time.Millisecond
				if id == 0 {
					epoch.Store(int64(w))
				}
				r.SetGlobal(global, now)
				r.SetRollout(w, plane.Version())
				if err := r.StartWindow(now); err != nil {
					t.Error(err)
					return
				}
				r.Admit(0)
				r.Admit(1)
			}
		}(id, r)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/4; i++ {
			lb := 0.25
			if i%2 == 1 {
				lb = 0.5
			}
			if _, err := plane.SetAgreement("B", "A", lb, lb); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters/4; i++ {
			resp := post(t, srv, "/v1/agreements", agreementJSON{Owner: "B", User: "A", LB: 0.3, UB: 0.3})
			resp.Body.Close()
			gresp, err := http.Get(srv.URL + "/v1/agreements")
			if err != nil {
				t.Error(err)
				return
			}
			gresp.Body.Close()
		}
	}()
	wg.Wait()
	if plane.Version() == 0 {
		t.Fatal("no mutation landed")
	}
}

// TestPlanePublishGate checks the distribution side: with an Epoch source
// the snapshot is published with gate = epoch + lead, and the engine stages
// rather than committing (no redirector has crossed yet).
func TestPlanePublishGate(t *testing.T) {
	sys, eng := testEngine(t)
	_ = eng.NewRedirector(0) // registered: staging stays gated
	var published *agreement.Set
	var gate int
	plane, err := New(sys, eng, Options{
		Lead:    2,
		Epoch:   func() int { return 7 },
		Publish: func(s *agreement.Set, g int) { published, gate = s, g },
	})
	if err != nil {
		t.Fatal(err)
	}
	activeBefore := eng.Version()
	if _, err := plane.SetAgreement("B", "A", 0.25, 0.25); err != nil {
		t.Fatal(err)
	}
	if published == nil || published.Version != 1 {
		t.Fatalf("published %+v", published)
	}
	if gate != 9 {
		t.Fatalf("gate %d, want 9", gate)
	}
	info := eng.Rollout()
	if info.Active != activeBefore || info.Staged == 0 || info.GateEpoch != 9 {
		t.Fatalf("rollout %+v", info)
	}
	// Round-trip the published payload like treenet would.
	data, err := published.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := agreement.DecodeSet(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 1 || len(got.Agreements) != 1 || got.Agreements[0].LB != 0.25 {
		t.Fatalf("decoded %+v", got)
	}
}

// TestPlaneResume pins crash recovery for the control-plane host: a plane
// rebuilt with Options.Resume set to the newest durable snapshot starts at
// that snapshot's version and agreement state, so the first post-restart
// mutation produces Resume.Version+1 — not a stale version 1 the fleet
// would discard.
func TestPlaneResume(t *testing.T) {
	sys, eng := testEngine(t)
	plane, err := New(sys, eng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plane.SetAgreement("B", "A", 0.25, 0.25); err != nil {
		t.Fatal(err)
	}
	durable := plane.Snapshot() // what persist.SaveSet would have stored

	// The host crashes and re-execs: a fresh plane over the seed config,
	// resumed from the recovered snapshot.
	_, eng2 := testEngine(t)
	restarted, err := New(sys, eng2, Options{Resume: durable})
	if err != nil {
		t.Fatal(err)
	}
	if got := restarted.Version(); got != 1 {
		t.Fatalf("resumed version = %d, want 1", got)
	}
	snap := restarted.Snapshot()
	if len(snap.Agreements) != 1 || snap.Agreements[0].LB != 0.25 {
		t.Fatalf("resumed agreements = %+v, want the renegotiated grant", snap.Agreements)
	}

	// The next mutation numbers monotonically from the durable version.
	v, err := restarted.SetAgreement("B", "A", 0.125, 0.125)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("post-resume mutation version = %d, want 2", v)
	}

	// A snapshot that does not validate against the seed system is refused.
	bad := plane.Snapshot()
	bad.Principals = nil
	if _, err := New(sys, eng2, Options{Resume: bad}); err == nil {
		t.Fatal("resume from an invalid snapshot did not fail")
	}
}
