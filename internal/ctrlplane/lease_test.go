package ctrlplane

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/budget"
)

// TestLeaseGrantRevokeCapacity pins the entitlement half of a lease: a grant
// sets the leased rate aside out of the owner's published capacity, revoke
// restores it, and both ride the versioned set path.
func TestLeaseGrantRevokeCapacity(t *testing.T) {
	sys, eng := testEngine(t)
	var saved []*budget.Table
	plane, err := New(sys, eng, Options{SaveLeases: func(tb *budget.Table) { saved = append(saved, tb) }})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := sys.Lookup("A")
	nominal := eng.Capacities()[a]

	ls, err := plane.GrantLease("A", "B", 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.Capacities()[a]; got != nominal-100 {
		t.Fatalf("capacity after grant = %v, want %v", got, nominal-100)
	}
	// The credit half landed on the engine: B holds 100 req/s of lease credit.
	b, _ := sys.Lookup("B")
	if rates := eng.LeaseCredits(); rates == nil || rates[b] != 100 {
		t.Fatalf("engine lease credits = %v, want 100 for B", rates)
	}
	// Over-reserving beyond the unreserved capacity is rejected.
	if _, err := plane.GrantLease("A", "B", nominal, 0); err == nil {
		t.Fatal("over-reserving grant accepted")
	}

	if _, err := plane.ShrinkLease(ls.ID, 40); err != nil {
		t.Fatal(err)
	}
	if got := eng.Capacities()[a]; got != nominal-40 {
		t.Fatalf("capacity after shrink = %v, want %v", got, nominal-40)
	}

	v := plane.Version()
	if _, err := plane.RevokeLease(ls.ID); err != nil {
		t.Fatal(err)
	}
	if got := eng.Capacities()[a]; got != nominal {
		t.Fatalf("capacity after revoke = %v, want nominal %v", got, nominal)
	}
	if plane.Version() != v+1 {
		t.Fatalf("revoke did not publish a new set version")
	}
	if rates := eng.LeaseCredits(); rates != nil {
		t.Fatalf("lease credits after revoke = %v, want none", rates)
	}
	if len(saved) == 0 || saved[len(saved)-1].Version != plane.LeaseTable().Version {
		t.Fatalf("SaveLeases did not track mutations: %d snapshots", len(saved))
	}
}

// TestLeaseExpiryReleasesCapacity drives TickLeases through a finite lease.
func TestLeaseExpiryReleasesCapacity(t *testing.T) {
	sys, eng := testEngine(t)
	plane, err := New(sys, eng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := sys.Lookup("A")
	nominal := eng.Capacities()[a]
	ls, err := plane.GrantLease("A", "B", 50, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plane.RenewLease(ls.ID, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if exp, err := plane.TickLeases(); err != nil || len(exp) != 0 {
			t.Fatalf("tick %d: expired %v err %v", i, exp, err)
		}
	}
	exp, err := plane.TickLeases()
	if err != nil || len(exp) != 1 || exp[0].ID != ls.ID {
		t.Fatalf("final tick: expired %v err %v", exp, err)
	}
	if got := eng.Capacities()[a]; got != nominal {
		t.Fatalf("capacity after expiry = %v, want nominal %v", got, nominal)
	}
}

// TestLeaseResume restores a ledger from a durable table: id numbering
// continues and the active leases' credit is re-installed on the engine.
func TestLeaseResume(t *testing.T) {
	sys, eng := testEngine(t)
	plane, err := New(sys, eng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plane.GrantLease("A", "B", 60, 0); err != nil {
		t.Fatal(err)
	}
	table := plane.LeaseTable()
	resumedSet := plane.Snapshot()

	// A restarted host: fresh system carrying the resumed agreement set
	// (with the set-aside) plus the resumed lease table.
	sys2, eng2 := testEngine(t)
	if _, err := eng2.StageSet(resumedSet, 0); err != nil {
		t.Fatal(err)
	}
	plane2, err := New(sys2, eng2, Options{Resume: resumedSet, ResumeLeases: table})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := sys2.Lookup("B")
	if rates := eng2.LeaseCredits(); rates == nil || rates[b] != 60 {
		t.Fatalf("resumed engine lease credits = %v, want 60 for B", rates)
	}
	next, err := plane2.GrantLease("A", "B", 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if next.ID != 2 {
		t.Fatalf("post-resume lease id = %d, want 2", next.ID)
	}
	// Nominal capture post-resume: effective (nominal−60) + reserved 60.
	a, _ := sys2.Lookup("A")
	if got := eng2.Capacities()[a]; got != 320-70 {
		t.Fatalf("capacity after resumed grant = %v, want 250", got)
	}
}

// TestLeaseHTTP exercises the /v1/leases admin surface end to end.
func TestLeaseHTTP(t *testing.T) {
	sys, eng := testEngine(t)
	plane, err := New(sys, eng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(plane.Handler())
	defer srv.Close()

	resp := post(t, srv, "/v1/leases", map[string]any{
		"owner": "A", "holder": "B", "rate": 80.0,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("grant status %d", resp.StatusCode)
	}
	var ls budget.Lease
	if err := json.NewDecoder(resp.Body).Decode(&ls); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ls.ID != 1 || ls.State != budget.LeaseActive {
		t.Fatalf("granted lease %+v", ls)
	}

	resp = post(t, srv, "/v1/leases/shrink", map[string]any{"id": 1, "rate": 20.0})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shrink status %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/v1/leases")
	if err != nil {
		t.Fatal(err)
	}
	var st leaseStatusJSON
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(st.Leases) != 1 || st.Leases[0].Rate != 20 || st.ReclaimBound != DefaultLead+1 {
		t.Fatalf("lease status %+v", st)
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/leases?id=1", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("revoke status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Bad requests are 400s that change nothing.
	resp = post(t, srv, "/v1/leases", map[string]any{"owner": "nope", "holder": "B", "rate": 1.0})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown owner status %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = post(t, srv, "/v1/leases/renew", map[string]any{"id": 1, "windows": 2})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("renewing a revoked lease: status %d", resp.StatusCode)
	}
	resp.Body.Close()
}
