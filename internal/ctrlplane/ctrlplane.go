// Package ctrlplane is the dynamic agreement control plane: a versioned
// runtime reconfiguration API over the enforcement engine.
//
// The paper treats the agreement set as static input; real deployments
// renegotiate SLAs, add principals, and retire them while traffic flows.
// This package accepts those mutations (programmatically or over the
// /v1/agreements admin HTTP surface), validates each one against a private
// clone of the agreement system, and turns every accepted mutation into an
// immutable, monotonically versioned agreement.Set snapshot. Snapshots are
// applied to the local engine via core.Engine.StageSet — which refolds only
// the simple paths through the dirty owners — and handed to a Publish hook
// that piggybacks them on the combining tree's epoch broadcasts
// (combining.ConfigUpdate), so every redirector in a distributed deployment
// receives the new entitlements and swaps atomically at a window boundary
// once its epoch passes the rollout gate. No window mixes old and new
// entitlements; redirectors past the gate that missed the update fall back
// to the conservative claim until it arrives.
package ctrlplane

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/agreement"
	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/obs"
)

// DefaultLead is how many combining-tree epochs ahead of the current one a
// rollout is gated by default: one epoch for the update to reach every leaf
// on a broadcast, one of margin for reports in flight.
const DefaultLead = 2

// ErrPlane reports an invalid control-plane request.
var ErrPlane = errors.New("ctrlplane: invalid request")

// Options parameterizes New.
type Options struct {
	// Lead is added to Epoch() to form each rollout's gate epoch
	// (<=0 selects DefaultLead).
	Lead int
	// Epoch reports the combining tree's current root epoch. Nil means no
	// tree: mutations commit immediately (gate 0) instead of being staged.
	Epoch func() int
	// Publish, when non-nil, distributes an accepted snapshot to the rest
	// of the deployment (typically combining.Node.SetConfig on the tree
	// root, encoded with Set.Encode). Called after the local engine has
	// accepted the set, outside any engine lock.
	Publish func(set *agreement.Set, gateEpoch int)
	// Logger receives accepted-mutation events; nil uses obs.Default.
	Logger *obs.Logger
	// Resume, when non-nil, is the newest durable agreement-set snapshot a
	// restarted control-plane host recovered (internal/persist): New applies
	// it to the validation clone and resumes version numbering from
	// Resume.Version, so re-registration after a crash is idempotent — the
	// restarted plane's next mutation produces Resume.Version+1 instead of
	// restarting at 1 and being discarded fleet-wide as stale.
	Resume *agreement.Set
	// SaveLeases, when non-nil, receives the versioned lease table after
	// every lease mutation (internal/persist durably stores it alongside
	// agreement sets). Called under the plane mutex; keep it fast.
	SaveLeases func(t *budget.Table)
	// ResumeLeases, when non-nil, is the newest durable lease table a
	// restarted host recovered: New restores the ledger from it (id sequence
	// included) and re-installs the active leases' credit on the engine, so
	// leases survive a crash with at most one un-synced mutation lost.
	ResumeLeases *budget.Table
}

// Plane is the control plane for one engine. All mutations serialize through
// its mutex; each validates on a private clone of the agreement system
// before anything reaches the engine, so a rejected request leaves every
// component untouched.
type Plane struct {
	mu    sync.Mutex
	sys   *agreement.System // private validation clone
	flows *agreement.Flows  // fold of sys, advanced incrementally
	eng   *core.Engine
	opt   Options
	lead  int
	// version numbers accepted mutations; snapshots carry it as their
	// agreement.Set version.
	version uint64

	// ledger tracks leases (see lease.go); nominal remembers each owner's
	// pre-lease capacity while any of its capacity is set aside, and
	// leaseVersion numbers durable lease-table snapshots.
	ledger       *budget.Ledger
	nominal      map[string]float64
	leaseVersion uint64
}

// New builds a control plane over sys (the authoritative agreement system,
// cloned for validation) and eng (the local engine snapshots are staged on;
// nil for publish-only planes).
func New(sys *agreement.System, eng *core.Engine, opt Options) (*Plane, error) {
	if sys == nil || sys.NumPrincipals() == 0 {
		return nil, fmt.Errorf("%w: nil or empty system", ErrPlane)
	}
	clone := sys.Clone()
	version := uint64(0)
	if opt.Resume != nil {
		if _, err := clone.ApplySet(opt.Resume); err != nil {
			return nil, fmt.Errorf("ctrlplane: resume set v%d: %w", opt.Resume.Version, err)
		}
		version = opt.Resume.Version
	}
	flows, err := clone.Flows()
	if err != nil {
		return nil, err
	}
	lead := opt.Lead
	if lead <= 0 {
		lead = DefaultLead
	}
	p := &Plane{
		sys: clone, flows: flows, eng: eng, opt: opt, lead: lead, version: version,
		ledger:  budget.NewLedger(),
		nominal: make(map[string]float64),
	}
	if opt.ResumeLeases != nil {
		p.ledger.Restore(opt.ResumeLeases)
		p.leaseVersion = opt.ResumeLeases.Version
		// The resumed agreement set already carries the capacity set-asides;
		// the credit side is engine-local state and must be re-installed.
		p.pushLeaseCreditsLocked()
	}
	return p, nil
}

// Version returns the version of the newest accepted mutation (0 before
// any).
func (p *Plane) Version() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.version
}

func (p *Plane) log() *obs.Logger {
	if p.opt.Logger != nil {
		return p.opt.Logger.With("ctrlplane")
	}
	return obs.Default().With("ctrlplane")
}

// SetAgreement renegotiates (or with lb = ub = 0 removes) the direct
// agreement owner→user and rolls the resulting versioned snapshot out.
// Returns the snapshot's version.
func (p *Plane) SetAgreement(owner, user string, lb, ub float64) (uint64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	o, ok := p.sys.Lookup(owner)
	if !ok {
		return p.version, fmt.Errorf("%w: unknown principal %q", ErrPlane, owner)
	}
	u, ok := p.sys.Lookup(user)
	if !ok {
		return p.version, fmt.Errorf("%w: unknown principal %q", ErrPlane, user)
	}
	undo := p.sys.Snapshot(0)
	if err := p.sys.SetAgreement(o, u, lb, ub); err != nil {
		return p.version, err
	}
	v, err := p.publishLocked(undo, []agreement.Principal{o})
	if err != nil {
		return v, err
	}
	p.log().Info("agreement renegotiated", "owner", owner, "user", user,
		"lb", lb, "ub", ub, "version", v)
	return v, nil
}

// Join brings a declared principal into service with the given capacity
// (requests/second). Principals are declared up front in the configuration
// (possibly with capacity 0, i.e. absent); joining re-interprets every
// entitlement against the newly available capacity (§2.2).
func (p *Plane) Join(name string, capacity float64) (uint64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	pr, ok := p.sys.Lookup(name)
	if !ok {
		return p.version, fmt.Errorf("%w: unknown principal %q", ErrPlane, name)
	}
	undo := p.sys.Snapshot(0)
	if err := p.sys.SetCapacity(pr, capacity); err != nil {
		return p.version, err
	}
	// Capacity-only change: the fold is capacity independent, no dirty owners.
	v, err := p.publishLocked(undo, nil)
	if err != nil {
		return v, err
	}
	p.log().Info("principal joined", "principal", name, "capacity", capacity, "version", v)
	return v, nil
}

// Leave takes a principal out of service: its capacity drops to zero and
// every direct agreement it owns or uses is removed, so no entitlement can
// route traffic toward (or on behalf of) the departed principal.
func (p *Plane) Leave(name string) (uint64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	pr, ok := p.sys.Lookup(name)
	if !ok {
		return p.version, fmt.Errorf("%w: unknown principal %q", ErrPlane, name)
	}
	undo := p.sys.Snapshot(0)
	dirtySet := map[agreement.Principal]bool{pr: true}
	for _, a := range p.sys.Agreements() {
		if a.Owner != pr && a.User != pr {
			continue
		}
		if err := p.sys.SetAgreement(a.Owner, a.User, 0, 0); err != nil {
			_, _ = p.sys.ApplySet(undo)
			return p.version, err
		}
		dirtySet[a.Owner] = true
	}
	if err := p.sys.SetCapacity(pr, 0); err != nil {
		_, _ = p.sys.ApplySet(undo)
		return p.version, err
	}
	dirty := make([]agreement.Principal, 0, len(dirtySet))
	for d := range dirtySet {
		dirty = append(dirty, d)
	}
	v, err := p.publishLocked(undo, dirty)
	if err != nil {
		return v, err
	}
	p.log().Info("principal left", "principal", name, "version", v)
	return v, nil
}

// publishLocked completes an accepted mutation: refold the private clone
// incrementally, snapshot it as the next version, stage the snapshot on the
// local engine behind the epoch gate, and hand it to the Publish hook. Any
// failure restores the clone from undo and leaves the engine untouched.
func (p *Plane) publishLocked(undo *agreement.Set, dirty []agreement.Principal) (uint64, error) {
	flows, err := p.sys.RefoldFrom(p.flows, dirty)
	if err != nil {
		_, _ = p.sys.ApplySet(undo)
		return p.version, err
	}
	set := p.sys.Snapshot(p.version + 1)
	gate := 0
	if p.opt.Epoch != nil {
		gate = p.opt.Epoch() + p.lead
	}
	if p.eng != nil {
		if _, err := p.eng.StageSet(set, gate); err != nil {
			_, _ = p.sys.ApplySet(undo)
			return p.version, err
		}
	}
	p.version++
	p.flows = flows
	if p.opt.Publish != nil {
		p.opt.Publish(set, gate)
	}
	return p.version, nil
}

// Snapshot returns the current agreement set at the current version (for
// introspection; the returned set is private to the caller).
func (p *Plane) Snapshot() *agreement.Set {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sys.Snapshot(p.version)
}
