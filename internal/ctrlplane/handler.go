package ctrlplane

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"repro/internal/agreement"
	"repro/internal/budget"
	"repro/internal/core"
)

// agreementJSON is the wire form of one direct agreement on the admin API.
type agreementJSON struct {
	Owner string  `json:"owner"`
	User  string  `json:"user"`
	LB    float64 `json:"lb"`
	UB    float64 `json:"ub"`
}

// principalJSON is the wire form of one principal.
type principalJSON struct {
	Name     string  `json:"name"`
	Capacity float64 `json:"capacity"`
}

// statusJSON is the GET /v1/agreements response body.
type statusJSON struct {
	Version    uint64            `json:"version"`
	Principals []principalJSON   `json:"principals"`
	Agreements []agreementJSON   `json:"agreements"`
	Rollout    *core.RolloutInfo `json:"rollout,omitempty"`
}

// Handler returns the control plane's admin HTTP surface, designed to be
// mounted by obs.Handler under /v1:
//
//	GET    /v1/agreements            current set, version, rollout state
//	POST   /v1/agreements            upsert one agreement {owner,user,lb,ub}
//	                                 (lb = ub = 0 removes it)
//	DELETE /v1/agreements?owner=&user=  remove one agreement
//	POST   /v1/principals/join       {name, capacity}
//	POST   /v1/principals/leave      {name}
//	GET    /v1/leases                lease table, versions, reclaim bound
//	POST   /v1/leases                grant {owner,holder,rate,windows}
//	DELETE /v1/leases?id=N           revoke one lease
//	POST   /v1/leases/renew          {id, windows}
//	POST   /v1/leases/shrink         {id, rate}
//
// Every accepted mutation responds 200 with {"version": N} — the snapshot
// version now rolling out (lease mutations respond with the full lease).
// Validation failures respond 400 and change nothing.
func (p *Plane) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/agreements", p.serveAgreements)
	mux.HandleFunc("/v1/principals/join", p.serveJoin)
	mux.HandleFunc("/v1/principals/leave", p.serveLeave)
	mux.HandleFunc("/v1/leases", p.serveLeases)
	mux.HandleFunc("/v1/leases/renew", p.serveLeaseRenew)
	mux.HandleFunc("/v1/leases/shrink", p.serveLeaseShrink)
	return mux
}

func writeVersion(w http.ResponseWriter, v uint64) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Version uint64 `json:"version"`
	}{v})
}

func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	if !errors.Is(err, ErrPlane) && !errors.Is(err, agreement.ErrBadBounds) &&
		!errors.Is(err, agreement.ErrOverCommitted) && !errors.Is(err, agreement.ErrBadCapacity) &&
		!errors.Is(err, agreement.ErrSelfAgreement) && !errors.Is(err, agreement.ErrUnknown) &&
		!errors.Is(err, budget.ErrLease) && !errors.Is(err, budget.ErrSpec) {
		status = http.StatusInternalServerError
	}
	http.Error(w, err.Error(), status)
}

func (p *Plane) serveAgreements(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		p.serveStatus(w)
	case http.MethodPost:
		var body agreementJSON
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			http.Error(w, "bad body: "+err.Error(), http.StatusBadRequest)
			return
		}
		v, err := p.SetAgreement(body.Owner, body.User, body.LB, body.UB)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeVersion(w, v)
	case http.MethodDelete:
		q := r.URL.Query()
		v, err := p.SetAgreement(q.Get("owner"), q.Get("user"), 0, 0)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeVersion(w, v)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (p *Plane) serveStatus(w http.ResponseWriter) {
	p.mu.Lock()
	set := p.sys.Snapshot(p.version)
	p.mu.Unlock()
	st := statusJSON{Version: set.Version}
	for _, pr := range set.Principals {
		st.Principals = append(st.Principals, principalJSON{Name: pr.Name, Capacity: pr.Capacity})
	}
	for _, a := range set.Agreements {
		st.Agreements = append(st.Agreements, agreementJSON{
			Owner: set.Principals[a.Owner].Name,
			User:  set.Principals[a.User].Name,
			LB:    a.LB,
			UB:    a.UB,
		})
	}
	if p.eng != nil {
		info := p.eng.Rollout()
		st.Rollout = &info
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(st)
}

// leaseReqJSON is the wire form of lease mutations on the admin API.
type leaseReqJSON struct {
	ID      uint64  `json:"id,omitempty"`
	Owner   string  `json:"owner,omitempty"`
	Holder  string  `json:"holder,omitempty"`
	Rate    float64 `json:"rate,omitempty"`
	Windows int     `json:"windows,omitempty"`
}

// leaseStatusJSON is the GET /v1/leases response body.
type leaseStatusJSON struct {
	Version      uint64         `json:"version"`
	SetVersion   uint64         `json:"set_version"`
	ReclaimBound int            `json:"reclaim_bound_windows"`
	Leases       []budget.Lease `json:"leases"`
}

func writeLease(w http.ResponseWriter, ls budget.Lease) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(ls)
}

func (p *Plane) serveLeases(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		p.mu.Lock()
		st := leaseStatusJSON{
			Version:      p.leaseVersion,
			SetVersion:   p.version,
			ReclaimBound: p.lead + 1,
			Leases:       p.ledger.List(),
		}
		p.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(st)
	case http.MethodPost:
		var body leaseReqJSON
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			http.Error(w, "bad body: "+err.Error(), http.StatusBadRequest)
			return
		}
		ls, err := p.GrantLease(body.Owner, body.Holder, body.Rate, body.Windows)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeLease(w, ls)
	case http.MethodDelete:
		id, err := strconv.ParseUint(r.URL.Query().Get("id"), 10, 64)
		if err != nil {
			http.Error(w, "bad id: "+err.Error(), http.StatusBadRequest)
			return
		}
		ls, err := p.RevokeLease(budget.LeaseID(id))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeLease(w, ls)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (p *Plane) serveLeaseRenew(w http.ResponseWriter, r *http.Request) {
	p.serveLeaseMutation(w, r, func(body leaseReqJSON) (budget.Lease, error) {
		return p.RenewLease(budget.LeaseID(body.ID), body.Windows)
	})
}

func (p *Plane) serveLeaseShrink(w http.ResponseWriter, r *http.Request) {
	p.serveLeaseMutation(w, r, func(body leaseReqJSON) (budget.Lease, error) {
		return p.ShrinkLease(budget.LeaseID(body.ID), body.Rate)
	})
}

func (p *Plane) serveLeaseMutation(w http.ResponseWriter, r *http.Request,
	apply func(leaseReqJSON) (budget.Lease, error)) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var body leaseReqJSON
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		http.Error(w, "bad body: "+err.Error(), http.StatusBadRequest)
		return
	}
	ls, err := apply(body)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeLease(w, ls)
}

func (p *Plane) serveJoin(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var body principalJSON
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		http.Error(w, "bad body: "+err.Error(), http.StatusBadRequest)
		return
	}
	v, err := p.Join(body.Name, body.Capacity)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeVersion(w, v)
}

func (p *Plane) serveLeave(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var body principalJSON
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		http.Error(w, "bad body: "+err.Error(), http.StatusBadRequest)
		return
	}
	v, err := p.Leave(body.Name)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeVersion(w, v)
}
