// Package persist is the durable-state plane: an fsync-disciplined store
// that lets a redirector or tree root survive kill -9 without forgetting
// the enforcement state the paper assumes lives in memory — the newest
// agreement-set snapshot, the carried per-principal credit, the demand
// estimator, and the last window/epoch position.
//
// The store keeps two kinds of state in one directory:
//
//   - Agreement-set snapshots, one file per version (set-<version>.json),
//     committed by temp-file + fsync + atomic rename so a crash can never
//     leave a half-written snapshot under the final name. Encoding reuses
//     agreement.Set's Encode/DecodeSet, the same bytes the combining tree
//     piggybacks. Lease tables (internal/budget) follow the identical
//     discipline as leases-<version>.json, so long-lived reservations
//     survive a crash with at most one un-synced mutation lost.
//   - A small append-only window log ("wal") of WindowState records, each
//     framed as [4-byte length][4-byte CRC32][JSON payload] and fsynced on
//     append. Replay at Open validates frames in order and truncates the
//     log at the first torn or corrupt record, so a crash mid-append costs
//     at most the record being written. The newest valid record wins.
//
// Recovery is therefore bounded by the append cadence: a process that
// persists once per scheduling window loses at most one window of carried
// credit on kill -9.
package persist

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"repro/internal/agreement"
	"repro/internal/budget"
)

// ErrClosed reports use of a Store after Close.
var ErrClosed = errors.New("persist: store closed")

// walName is the window log's file name inside the state directory.
const walName = "wal"

// frameHeader is the per-record framing overhead: 4-byte little-endian
// payload length followed by a 4-byte CRC32 (IEEE) of the payload.
const frameHeader = 8

// maxRecordBytes bounds a single window record; a length field beyond it is
// treated as corruption (it would otherwise make replay allocate wildly on
// a torn length word).
const maxRecordBytes = 16 << 20

// WindowState is one durable window record: everything a restarted
// redirector needs to resume enforcement where it left off — its position
// (window sequence, tree epoch, acknowledged set version) and its carried
// scheduling state (credit matrix, provider credit totals, EWMA demand
// estimate).
type WindowState struct {
	// WindowSeq is the redirector's window counter after the recorded
	// window started.
	WindowSeq int `json:"window_seq"`
	// Epoch is the combining-tree epoch the node had reached.
	Epoch int `json:"epoch"`
	// SetVersion is the newest agreement-set version acknowledged.
	SetVersion uint64 `json:"set_version"`
	// Gate is the rollout gate epoch attached to that set version (the
	// combining.ConfigUpdate a restarted node reconstructs and
	// re-broadcasts).
	Gate int `json:"gate,omitempty"`
	// Credit is the Community credit matrix credits[p][k]; nil in
	// Provider mode.
	Credit [][]float64 `json:"credit,omitempty"`
	// CreditTotal is the Provider per-principal credit vector; nil in
	// Community mode.
	CreditTotal []float64 `json:"credit_total,omitempty"`
	// Estimate is the EWMA per-principal demand estimate
	// (requests/window).
	Estimate []float64 `json:"estimate,omitempty"`
}

// Store is a crash-safe state directory. All methods are safe for
// concurrent use; appends and checkpoints serialize on an internal mutex.
type Store struct {
	dir string

	mu     sync.Mutex
	wal    *os.File
	last   WindowState
	have   bool
	closed bool
}

// Open creates (if necessary) and opens the state directory, replaying the
// window log: frames are validated in order, the log is truncated at the
// first torn or corrupt record, and the newest valid record becomes
// LastWindow. An empty or missing directory is a cold start, not an error.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("persist: empty state directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	s := &Store{dir: dir, wal: f}
	if err := s.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// replay scans the window log from the start, remembering the newest valid
// record and truncating the file at the first invalid frame.
func (s *Store) replay() error {
	data, err := io.ReadAll(s.wal)
	if err != nil {
		return fmt.Errorf("persist: replay: %w", err)
	}
	valid := 0
	for valid < len(data) {
		rec, n, ok := decodeFrame(data[valid:])
		if !ok {
			break
		}
		s.last, s.have = rec, true
		valid += n
	}
	if valid < len(data) {
		// Torn or corrupt tail: drop it so the next append lands on a
		// clean frame boundary.
		if err := s.wal.Truncate(int64(valid)); err != nil {
			return fmt.Errorf("persist: truncate torn tail: %w", err)
		}
		if err := s.wal.Sync(); err != nil {
			return fmt.Errorf("persist: %w", err)
		}
	}
	if _, err := s.wal.Seek(int64(valid), io.SeekStart); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	return nil
}

// decodeFrame parses one framed record from the front of data. ok is false
// when the frame is torn (short) or fails its CRC.
func decodeFrame(data []byte) (WindowState, int, bool) {
	var rec WindowState
	if len(data) < frameHeader {
		return rec, 0, false
	}
	length := binary.LittleEndian.Uint32(data[0:4])
	sum := binary.LittleEndian.Uint32(data[4:8])
	if length == 0 || length > maxRecordBytes || frameHeader+int(length) > len(data) {
		return rec, 0, false
	}
	payload := data[frameHeader : frameHeader+int(length)]
	if crc32.ChecksumIEEE(payload) != sum {
		return rec, 0, false
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, 0, false
	}
	return rec, frameHeader + int(length), true
}

// encodeFrame renders one record with its length+CRC frame.
func encodeFrame(ws WindowState) ([]byte, error) {
	payload, err := json.Marshal(ws)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	buf := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[frameHeader:], payload)
	return buf, nil
}

// AppendWindow durably appends one window record (write + fsync). The
// record becomes the new LastWindow.
func (s *Store) AppendWindow(ws WindowState) error {
	buf, err := encodeFrame(ws)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, err := s.wal.Write(buf); err != nil {
		return fmt.Errorf("persist: append: %w", err)
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("persist: append: %w", err)
	}
	s.last, s.have = ws, true
	return nil
}

// LastWindow returns the newest valid window record (replayed at Open or
// appended since); ok is false on a cold start.
func (s *Store) LastWindow() (WindowState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last, s.have
}

// Checkpoint compacts the window log down to its newest record, committing
// the compacted log by atomic rename. Safe to run concurrently with
// AppendWindow; a no-op on a cold store.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if !s.have {
		return nil
	}
	buf, err := encodeFrame(s.last)
	if err != nil {
		return err
	}
	path := filepath.Join(s.dir, walName)
	tmp, err := os.CreateTemp(s.dir, walName+".tmp*")
	if err != nil {
		return fmt.Errorf("persist: checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("persist: checkpoint: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	// Swap the open handle to the compacted log so subsequent appends
	// extend it, not the unlinked original.
	f, err := os.OpenFile(path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("persist: checkpoint: %w", err)
	}
	s.wal.Close()
	s.wal = f
	return nil
}

// SaveSet durably stores an agreement-set snapshot as set-<version>.json
// (temp file + fsync + atomic rename + directory fsync). Snapshots are
// immutable per version; re-saving a version is a cheap no-op.
func (s *Store) SaveSet(set *agreement.Set) error {
	if set == nil {
		return errors.New("persist: nil set")
	}
	path := filepath.Join(s.dir, setFileName(set.Version))
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	data, err := set.Encode()
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	return s.commitFile(path, "set", data)
}

// commitFile durably writes data under path by temp file + fsync + atomic
// rename + directory fsync, the discipline every versioned snapshot shares.
func (s *Store) commitFile(path, kind string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, kind+".tmp*")
	if err != nil {
		return fmt.Errorf("persist: save %s: %w", kind, err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: save %s: %w", kind, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: save %s: %w", kind, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: save %s: %w", kind, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("persist: save %s: %w", kind, err)
	}
	return syncDir(s.dir)
}

// SaveLeases durably stores a lease-table snapshot as leases-<version>.json,
// under the same commit discipline as SaveSet. Tables are immutable per
// version; re-saving a version is a cheap no-op. A crash between a lease
// mutation and this save costs at most that one mutation — the same bounded
// loss as the window log.
func (s *Store) SaveLeases(t *budget.Table) error {
	if t == nil {
		return errors.New("persist: nil lease table")
	}
	path := filepath.Join(s.dir, leaseFileName(t.Version))
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	data, err := budget.EncodeTable(t)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	return s.commitFile(path, "leases", data)
}

// LoadNewestLeases returns the highest-versioned decodable lease table in
// the directory, or (nil, nil) on a cold start. Undecodable files are
// skipped like agreement-set snapshots.
func (s *Store) LoadNewestLeases() (*budget.Table, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	var best *budget.Table
	for _, e := range entries {
		v, ok := versionedFileName(e.Name(), "leases-")
		if !ok {
			continue
		}
		if best != nil && v <= best.Version {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.dir, e.Name()))
		if err != nil {
			continue
		}
		t, err := budget.DecodeTable(data)
		if err != nil || t.Version != v {
			continue
		}
		best = t
	}
	return best, nil
}

// LoadNewestSet returns the highest-versioned decodable agreement-set
// snapshot in the directory, or (nil, nil) on a cold start. Undecodable
// snapshot files are skipped, not fatal: a valid older version beats
// refusing to start.
func (s *Store) LoadNewestSet() (*agreement.Set, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	var best *agreement.Set
	for _, e := range entries {
		v, ok := setFileVersion(e.Name())
		if !ok {
			continue
		}
		if best != nil && v <= best.Version {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.dir, e.Name()))
		if err != nil {
			continue
		}
		set, err := agreement.DecodeSet(data)
		if err != nil || set.Version != v {
			continue
		}
		best = set
	}
	return best, nil
}

// Dir returns the store's state directory.
func (s *Store) Dir() string { return s.dir }

// Close fsyncs and closes the window log. The store is unusable after.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.wal.Sync(); err != nil {
		s.wal.Close()
		return fmt.Errorf("persist: %w", err)
	}
	return s.wal.Close()
}

// setFileName renders the snapshot file name for a set version.
func setFileName(version uint64) string {
	return fmt.Sprintf("set-%d.json", version)
}

// leaseFileName renders the snapshot file name for a lease-table version.
func leaseFileName(version uint64) string {
	return fmt.Sprintf("leases-%d.json", version)
}

// setFileVersion parses a snapshot file name; ok is false for other files.
func setFileVersion(name string) (uint64, bool) {
	return versionedFileName(name, "set-")
}

// versionedFileName parses "<prefix><version>.json"; ok is false otherwise.
func versionedFileName(name, prefix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".json") {
		return 0, false
	}
	v, err := strconv.ParseUint(name[len(prefix):len(name)-len(".json")], 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// syncDir fsyncs a directory so a just-committed rename survives power
// loss. Filesystems that refuse directory fsync (some CI mounts) are
// tolerated.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
