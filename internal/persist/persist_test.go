package persist

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/agreement"
	"repro/internal/budget"
	"repro/internal/core"
)

// openStore opens a store under a test temp dir, failing the test on error.
func openStore(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestColdStart pins the empty/missing-directory contract: Open creates the
// directory, LastWindow reports nothing, and LoadNewestSet is (nil, nil).
func TestColdStart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "does", "not", "exist", "yet")
	s := openStore(t, dir)
	defer s.Close()
	if _, ok := s.LastWindow(); ok {
		t.Fatal("cold store reported a window record")
	}
	set, err := s.LoadNewestSet()
	if err != nil || set != nil {
		t.Fatalf("cold store LoadNewestSet = (%v, %v), want (nil, nil)", set, err)
	}
}

// TestAppendReplay pins the round trip: appended records survive Close and
// reopen, with the newest record winning.
func TestAppendReplay(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	for w := 1; w <= 5; w++ {
		ws := WindowState{
			WindowSeq:  w,
			Epoch:      10 + w,
			SetVersion: uint64(w),
			Gate:       7,
			Credit:     [][]float64{{float64(w), 0}, {0, float64(w)}},
			Estimate:   []float64{float64(w) * 1.5, 2},
		}
		if err := s.AppendWindow(ws); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir)
	defer s2.Close()
	ws, ok := s2.LastWindow()
	if !ok {
		t.Fatal("no record after replay")
	}
	if ws.WindowSeq != 5 || ws.Epoch != 15 || ws.SetVersion != 5 || ws.Gate != 7 {
		t.Fatalf("replayed record %+v, want window 5 / epoch 15 / set 5 / gate 7", ws)
	}
	if ws.Credit[0][0] != 5 || ws.Estimate[0] != 7.5 {
		t.Fatalf("replayed payload %+v", ws)
	}
}

// TestTornFinalRecord pins corruption tolerance: a crash mid-append leaves
// a torn frame at the tail; replay must truncate exactly that frame, keep
// the last complete record, and leave the log appendable.
func TestTornFinalRecord(t *testing.T) {
	tears := map[string]func(full []byte) []byte{
		// Only half the frame header made it out.
		"short-header": func(full []byte) []byte { return full[:4] },
		// Header complete, payload cut off.
		"short-payload": func(full []byte) []byte { return full[:len(full)-3] },
		// Whole frame present but a payload byte flipped (CRC mismatch).
		"bit-flip": func(full []byte) []byte {
			full[len(full)-2] ^= 0x40
			return full
		},
	}
	for name, tear := range tears {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s := openStore(t, dir)
			if err := s.AppendWindow(WindowState{WindowSeq: 1, Epoch: 3}); err != nil {
				t.Fatal(err)
			}
			if err := s.AppendWindow(WindowState{WindowSeq: 2, Epoch: 4}); err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			// Simulate the crash: hand-append a torn third record.
			torn, err := encodeFrame(WindowState{WindowSeq: 3, Epoch: 5})
			if err != nil {
				t.Fatal(err)
			}
			f, err := os.OpenFile(filepath.Join(dir, walName), os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(tear(torn)); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}

			s2 := openStore(t, dir)
			ws, ok := s2.LastWindow()
			if !ok || ws.WindowSeq != 2 || ws.Epoch != 4 {
				t.Fatalf("after torn tail: record %+v ok=%v, want window 2", ws, ok)
			}
			// The tail was truncated: a fresh append then replays cleanly.
			if err := s2.AppendWindow(WindowState{WindowSeq: 7, Epoch: 9}); err != nil {
				t.Fatal(err)
			}
			if err := s2.Close(); err != nil {
				t.Fatal(err)
			}
			s3 := openStore(t, dir)
			defer s3.Close()
			if ws, ok := s3.LastWindow(); !ok || ws.WindowSeq != 7 {
				t.Fatalf("post-truncate append lost: %+v ok=%v", ws, ok)
			}
		})
	}
}

// TestDuplicateRecordsNewestWins pins replay order: re-persisted duplicates
// of the same window (and of the same set version) resolve to the newest
// write, for both the log and the snapshot files.
func TestDuplicateRecordsNewestWins(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.AppendWindow(WindowState{WindowSeq: 4, Epoch: 1, Estimate: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendWindow(WindowState{WindowSeq: 4, Epoch: 2, Estimate: []float64{9}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir)
	defer s2.Close()
	ws, ok := s2.LastWindow()
	if !ok || ws.Epoch != 2 || ws.Estimate[0] != 9 {
		t.Fatalf("duplicate window replay = %+v, want the newest write", ws)
	}

	sys := agreement.New()
	sys.MustAddPrincipal("A", 100)
	sys.MustAddPrincipal("B", 100)
	if err := s2.SaveSet(sys.Snapshot(1)); err != nil {
		t.Fatal(err)
	}
	if err := s2.SaveSet(sys.Snapshot(3)); err != nil {
		t.Fatal(err)
	}
	if err := s2.SaveSet(sys.Snapshot(3)); err != nil { // idempotent re-save
		t.Fatal(err)
	}
	// A corrupt higher-versioned snapshot file must be skipped, not fatal.
	if err := os.WriteFile(filepath.Join(dir, "set-9.json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	set, err := s2.LoadNewestSet()
	if err != nil {
		t.Fatal(err)
	}
	if set == nil || set.Version != 3 {
		t.Fatalf("LoadNewestSet = %+v, want version 3", set)
	}
}

// TestCheckpointCompacts pins the checkpoint contract: the log shrinks to
// one record, the newest state survives reopen, and appends keep working on
// the compacted file.
func TestCheckpointCompacts(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	for w := 1; w <= 50; w++ {
		if err := s.AppendWindow(WindowState{WindowSeq: w, Estimate: []float64{1, 2, 3}}); err != nil {
			t.Fatal(err)
		}
	}
	before, err := os.Stat(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("checkpoint did not compact: %d -> %d bytes", before.Size(), after.Size())
	}
	if err := s.AppendWindow(WindowState{WindowSeq: 51}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir)
	defer s2.Close()
	if ws, ok := s2.LastWindow(); !ok || ws.WindowSeq != 51 {
		t.Fatalf("post-checkpoint state = %+v ok=%v, want window 51", ws, ok)
	}
}

// TestConcurrentWriterCheckpointer hammers AppendWindow from one goroutine
// and Checkpoint from another; run with -race. Afterwards the log must
// replay to the newest appended record.
func TestConcurrentWriterCheckpointer(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	const writes = 200
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for w := 1; w <= writes; w++ {
			if err := s.AppendWindow(WindowState{WindowSeq: w, Estimate: []float64{float64(w)}}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if err := s.Checkpoint(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir)
	defer s2.Close()
	ws, ok := s2.LastWindow()
	if !ok || ws.WindowSeq != writes {
		t.Fatalf("after concurrent writer+checkpointer: %+v ok=%v, want window %d", ws, ok, writes)
	}
}

// TestKillNineLosesAtMostOneWindow is the acceptance bound for crash
// recovery: a redirector persisting its post-schedule state every window
// and then killed -9 mid-window recovers, via RestoreState, exactly the
// credit accounting it persisted at the last window boundary — the only
// state lost is the window in flight.
func TestKillNineLosesAtMostOneWindow(t *testing.T) {
	sys := agreement.New()
	a := sys.MustAddPrincipal("A", 320)
	b := sys.MustAddPrincipal("B", 320)
	sys.MustSetAgreement(b, a, 0.5, 0.5)
	eng, err := core.NewEngine(core.Config{
		Mode:           core.Community,
		System:         sys,
		Window:         100 * time.Millisecond,
		NumRedirectors: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	s := openStore(t, dir)
	n := eng.NumPrincipals()
	red := eng.NewRedirector(0)
	global := []float64{60, 20}
	matrix := make([][]float64, n)
	for i := range matrix {
		matrix[i] = make([]float64, n)
	}
	persisted := WindowState{}
	for w := 1; w <= 6; w++ {
		now := time.Duration(w) * 100 * time.Millisecond
		red.SetGlobal(global, now)
		if err := red.StartWindow(now); err != nil {
			t.Fatal(err)
		}
		// Checkpoint the freshly scheduled window, exactly as the window
		// loop does, then admit traffic (which the checkpoint by design
		// does not see — that is the ≤ 1 window of loss).
		red.ExportCredits(matrix, nil)
		persisted = WindowState{
			WindowSeq: red.Windows,
			Credit:    deepCopy(matrix),
			Estimate:  red.ExportEstimate(nil),
		}
		if err := s.AppendWindow(persisted); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 25; k++ {
			red.Admit(a)
			red.Admit(b)
		}
	}
	// kill -9: nothing else is flushed; the store is reopened by the "new
	// process".
	inMemory := red.CreditsRemaining(a) + red.CreditsRemaining(b)
	s2 := openStore(t, dir)
	defer s2.Close()
	ws, ok := s2.LastWindow()
	if !ok {
		t.Fatal("no durable record after crash")
	}
	if ws.WindowSeq != persisted.WindowSeq {
		t.Fatalf("recovered window %d, want the last persisted %d", ws.WindowSeq, persisted.WindowSeq)
	}

	recovered := eng.NewRedirector(0)
	recovered.RestoreState(ws.WindowSeq, ws.Estimate, ws.Credit, nil)
	if recovered.Windows != persisted.WindowSeq {
		t.Fatalf("recovered window counter %d, want %d", recovered.Windows, persisted.WindowSeq)
	}
	for i := 0; i < n; i++ {
		if got, want := recovered.ExportEstimate(nil)[i], persisted.Estimate[i]; got != want {
			t.Fatalf("estimate[%d] recovered %v, want %v", i, got, want)
		}
	}
	// Credit accounting: recovery equals the last window boundary's
	// snapshot, not the mid-window in-memory state — i.e. the loss is the
	// admissions of exactly the in-flight window, never more.
	var recCredit, snapCredit float64
	for i := 0; i < n; i++ {
		recCredit += recovered.CreditsRemaining(agreement.Principal(i))
		for k := 0; k < n; k++ {
			snapCredit += persisted.Credit[i][k]
		}
	}
	if recCredit != snapCredit {
		t.Fatalf("recovered credit %v, want persisted boundary credit %v", recCredit, snapCredit)
	}
	lost := recCredit - inMemory
	if lost < 0 {
		t.Fatalf("recovery lost credit relative to the crashed process: %v < %v", recCredit, inMemory)
	}
	// One window of this workload admits at most 50 cost units; the
	// recovered-vs-crashed delta is bounded by that single window.
	if lost > 50 {
		t.Fatalf("crash lost %v credits, more than one window's worth", lost)
	}
}

// deepCopy clones a credit matrix so later exports cannot alias it.
func deepCopy(m [][]float64) [][]float64 {
	out := make([][]float64, len(m))
	for i := range m {
		out[i] = append([]float64(nil), m[i]...)
	}
	return out
}

func TestLeaseTableRoundTripAndNewest(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got, err := s.LoadNewestLeases(); err != nil || got != nil {
		t.Fatalf("cold start: %v %v", got, err)
	}
	ledger := budget.NewLedger()
	if _, err := ledger.Grant("org", "svc", 30, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveLeases(ledger.Snapshot(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := ledger.Grant("org", "batch", 10, 5); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveLeases(ledger.Snapshot(2)); err != nil {
		t.Fatal(err)
	}
	// Re-saving an existing version is a no-op, and corrupt higher versions
	// are skipped in favor of the newest decodable table.
	if err := s.SaveLeases(ledger.Snapshot(2)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "leases-3.json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadNewestLeases()
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Version != 2 || len(got.Leases) != 2 || got.Leases[1].Holder != "batch" {
		t.Fatalf("newest lease table: %+v", got)
	}
	restored := budget.NewLedger()
	restored.Restore(got)
	if restored.ReservedBy("org") != 40 {
		t.Fatalf("restored reservation = %v, want 40", restored.ReservedBy("org"))
	}
}
