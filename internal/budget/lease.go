// Lease ledger: long-lived work (media streams, batch jobs — the paper's
// §6 future work) reserves a slice of a node's budget for multiple
// scheduling windows instead of competing request by request. A lease sets
// aside Rate requests/second of the owner's capacity (so the window LP
// stops handing that capacity to siblings) and deposits the same rate as
// dedicated per-window credit for the holder. Revocation releases the
// set-aside; the control plane re-interprets capacities through the §2.2
// path, reclaiming the capacity fleet-wide within a bounded number of
// windows.

package budget

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// LeaseID identifies one lease within a ledger.
type LeaseID uint64

// LeaseState is a lease's lifecycle position.
type LeaseState string

// Lease lifecycle: Active leases reserve capacity; Revoked and Expired
// leases are retained for inspection but reserve nothing.
const (
	LeaseActive  LeaseState = "active"
	LeaseRevoked LeaseState = "revoked"
	LeaseExpired LeaseState = "expired"
)

// Lease is one multi-window reservation: Holder draws Rate req/s of
// dedicated credit, set aside from Owner's capacity.
type Lease struct {
	ID     LeaseID `json:"id"`
	Owner  string  `json:"owner"`
	Holder string  `json:"holder"`
	Rate   float64 `json:"rate"`
	// Windows is the remaining lifetime in scheduling windows; 0 means
	// until revoked. Renew extends it, Tick counts it down.
	Windows int        `json:"windows,omitempty"`
	State   LeaseState `json:"state"`
}

// Ledger tracks leases. Safe for concurrent use; the control plane owns one
// per deployment and snapshots it for persistence after every mutation.
type Ledger struct {
	mu     sync.Mutex
	next   uint64
	leases map[LeaseID]*Lease
}

// NewLedger returns an empty lease ledger.
func NewLedger() *Ledger {
	return &Ledger{next: 1, leases: make(map[LeaseID]*Lease)}
}

// Grant opens a lease of rate req/s from owner's capacity to holder, for
// the given number of windows (0 = until revoked).
func (l *Ledger) Grant(owner, holder string, rate float64, windows int) (Lease, error) {
	if owner == "" || holder == "" {
		return Lease{}, fmt.Errorf("%w: empty owner or holder", ErrLease)
	}
	if rate <= 0 {
		return Lease{}, fmt.Errorf("%w: rate %v must be positive", ErrLease, rate)
	}
	if windows < 0 {
		return Lease{}, fmt.Errorf("%w: windows %d", ErrLease, windows)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	ls := &Lease{
		ID:      LeaseID(l.next),
		Owner:   owner,
		Holder:  holder,
		Rate:    rate,
		Windows: windows,
		State:   LeaseActive,
	}
	l.next++
	l.leases[ls.ID] = ls
	return *ls, nil
}

// Renew extends an active lease by the given number of windows. Renewing an
// until-revoked lease (Windows 0) is a no-op on the lifetime.
func (l *Ledger) Renew(id LeaseID, windows int) (Lease, error) {
	if windows < 0 {
		return Lease{}, fmt.Errorf("%w: windows %d", ErrLease, windows)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	ls, err := l.activeLocked(id)
	if err != nil {
		return Lease{}, err
	}
	if ls.Windows > 0 {
		ls.Windows += windows
	}
	return *ls, nil
}

// Shrink lowers an active lease's reserved rate — the cooperative half of
// reclaim: the holder gives capacity back without losing the lease.
func (l *Ledger) Shrink(id LeaseID, rate float64) (Lease, error) {
	if rate <= 0 {
		return Lease{}, fmt.Errorf("%w: rate %v must be positive", ErrLease, rate)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	ls, err := l.activeLocked(id)
	if err != nil {
		return Lease{}, err
	}
	if rate > ls.Rate {
		return Lease{}, fmt.Errorf("%w: shrink to %v exceeds current rate %v", ErrLease, rate, ls.Rate)
	}
	ls.Rate = rate
	return *ls, nil
}

// Revoke forcibly terminates an active lease. The reservation disappears
// immediately; callers re-interpret capacities to return it to the pool.
func (l *Ledger) Revoke(id LeaseID) (Lease, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	ls, err := l.activeLocked(id)
	if err != nil {
		return Lease{}, err
	}
	ls.State = LeaseRevoked
	return *ls, nil
}

// activeLocked resolves an id to its active lease. Callers hold l.mu.
func (l *Ledger) activeLocked(id LeaseID) (*Lease, error) {
	ls, ok := l.leases[id]
	if !ok {
		return nil, fmt.Errorf("%w: unknown lease %d", ErrLease, id)
	}
	if ls.State != LeaseActive {
		return nil, fmt.Errorf("%w: lease %d is %s", ErrLease, id, ls.State)
	}
	return ls, nil
}

// Tick advances every finite active lease by one scheduling window and
// returns the leases that just expired (their reservations must be
// released like a revocation).
func (l *Ledger) Tick() []Lease {
	l.mu.Lock()
	defer l.mu.Unlock()
	var expired []Lease
	for _, ls := range l.leases {
		if ls.State != LeaseActive || ls.Windows == 0 {
			continue
		}
		ls.Windows--
		if ls.Windows == 0 {
			ls.State = LeaseExpired
			expired = append(expired, *ls)
		}
	}
	sort.Slice(expired, func(i, j int) bool { return expired[i].ID < expired[j].ID })
	return expired
}

// Get returns one lease by id.
func (l *Ledger) Get(id LeaseID) (Lease, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	ls, ok := l.leases[id]
	if !ok {
		return Lease{}, false
	}
	return *ls, true
}

// List returns every lease (any state), sorted by id.
func (l *Ledger) List() []Lease {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Lease, 0, len(l.leases))
	for _, ls := range l.leases {
		out = append(out, *ls)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ReservedBy sums the active reserved rate set aside from one owner's
// capacity (req/s).
func (l *Ledger) ReservedBy(owner string) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	t := 0.0
	for _, ls := range l.leases {
		if ls.State == LeaseActive && ls.Owner == owner {
			t += ls.Rate
		}
	}
	return t
}

// CreditFor sums the active dedicated rate one holder draws across all its
// leases (req/s).
func (l *Ledger) CreditFor(holder string) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	t := 0.0
	for _, ls := range l.leases {
		if ls.State == LeaseActive && ls.Holder == holder {
			t += ls.Rate
		}
	}
	return t
}

// Table is a versioned, immutable lease-ledger snapshot — the durable and
// wire form (persist stores one file per version, like agreement sets).
type Table struct {
	Version uint64  `json:"version"`
	NextID  uint64  `json:"next_id"`
	Leases  []Lease `json:"leases"`
}

// Snapshot captures the ledger as a table stamped with the given version.
func (l *Ledger) Snapshot(version uint64) *Table {
	l.mu.Lock()
	defer l.mu.Unlock()
	t := &Table{Version: version, NextID: l.next}
	for _, ls := range l.leases {
		t.Leases = append(t.Leases, *ls)
	}
	sort.Slice(t.Leases, func(i, j int) bool { return t.Leases[i].ID < t.Leases[j].ID })
	return t
}

// Restore replaces the ledger's contents from a snapshot (crash recovery).
func (l *Ledger) Restore(t *Table) {
	if t == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.next = t.NextID
	if l.next == 0 {
		l.next = 1
	}
	l.leases = make(map[LeaseID]*Lease, len(t.Leases))
	for i := range t.Leases {
		ls := t.Leases[i]
		l.leases[ls.ID] = &ls
		if uint64(ls.ID) >= l.next {
			l.next = uint64(ls.ID) + 1
		}
	}
}

// EncodeTable renders a lease table as canonical JSON.
func EncodeTable(t *Table) ([]byte, error) {
	if t == nil {
		return nil, fmt.Errorf("%w: nil table", ErrLease)
	}
	return json.Marshal(t)
}

// DecodeTable parses EncodeTable's output.
func DecodeTable(data []byte) (*Table, error) {
	var t Table
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("budget: decode lease table: %w", err)
	}
	return &t, nil
}
